// Quickstart — the paper's motivating example (Figures 3, 5 and 6).
//
// Adds two vectors three ways:
//   1. pure software,
//   2. "typical coprocessor": the user stages data into the dual-port
//      RAM at fixed offsets, chunking by hand when it does not fit,
//   3. VIM-based coprocessor: map the objects, call execute — the OS
//      pages data in and out on demand.
//
// The point is the code shape: version 3 reads like version 1.
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/manual_runtime.h"
#include "runtime/report.h"

namespace vcop {
namespace {

constexpr u32 kSize = 12 * 1024;  // 48 KB per vector: 3x the DP-RAM each

// --- version 1: pure software --------------------------------------
std::vector<u32> AddVectorsSoftware(const std::vector<u32>& a,
                                    const std::vector<u32>& b) {
  std::vector<u32> c(a.size());
  for (usize i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

// --- version 2: typical coprocessor (Figure 3, middle) -------------
// The programmer must know DP_SIZE, compute a chunk schedule, stage
// each chunk and collect results — all platform-specific.
Result<std::vector<u32>> AddVectorsManual(const std::vector<u32>& a,
                                          const std::vector<u32>& b) {
  const u32 dp_size = runtime::Epxa1Config().dp_ram_bytes;
  const u32 data_chunk = dp_size / 3 / 4;  // elements per vector chunk
  std::vector<u32> c(a.size());
  runtime::ManualRunner runner(os::CostModel{}, dp_size);

  u32 data_pt = 0;
  while (data_pt < a.size()) {
    const u32 n = std::min<u32>(data_chunk, static_cast<u32>(a.size()) - data_pt);
    // Repack chunk bytes (the manual interface is raw bytes at fixed
    // offsets — exactly the burden §2.2 complains about).
    auto bytes_of = [](const u32* p, u32 count) {
      return std::span<const u8>(reinterpret_cast<const u8*>(p), count * 4);
    };
    std::vector<u8> out_bytes(n * 4);
    runtime::ManualObject oa{cp::VecAddCoprocessor::kObjA, 4, n * 4, false,
                             bytes_of(a.data() + data_pt, n), {}};
    runtime::ManualObject ob{cp::VecAddCoprocessor::kObjB, 4, n * 4, false,
                             bytes_of(b.data() + data_pt, n), {}};
    runtime::ManualObject oc{cp::VecAddCoprocessor::kObjC, 4, n * 4, false,
                             {}, out_bytes};
    const runtime::ManualObject objects[] = {oa, ob, oc};
    const u32 params[] = {n};
    auto run = runner.Run(cp::VecAddBitstream(), objects, params);
    if (!run.ok()) return run.status();
    std::memcpy(c.data() + data_pt, out_bytes.data(), out_bytes.size());
    data_pt += n;
  }
  return c;
}

int Main() {
  std::printf("vcop quickstart: C[i] = A[i] + B[i], %u elements (%u KB "
              "per vector, 16 KB interface memory)\n\n",
              kSize, kSize * 4 / 1024);

  std::vector<u32> a(kSize), b(kSize);
  std::iota(a.begin(), a.end(), 1u);
  std::iota(b.begin(), b.end(), 100u);

  // 1. Software.
  const std::vector<u32> sw = AddVectorsSoftware(a, b);
  std::printf("[1] pure software          : done (reference)\n");

  // 2. Typical coprocessor: explicit chunk schedule.
  auto manual = AddVectorsManual(a, b);
  VCOP_CHECK_MSG(manual.ok(), manual.status().ToString());
  VCOP_CHECK_MSG(manual.value() == sw, "manual coprocessor mismatch");
  std::printf("[2] typical coprocessor    : done — but the application "
              "had to know DP_SIZE,\n"
              "                             slice 3 vectors into %u-element"
              " chunks and stage each one\n",
              runtime::Epxa1Config().dp_ram_bytes / 3 / 4);

  // 3. VIM-based: map + execute. No sizes, no chunks, no addresses.
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto vim = runtime::RunVecAddVim(sys, a, b);
  VCOP_CHECK_MSG(vim.ok(), vim.status().ToString());
  VCOP_CHECK_MSG(vim.value().output == sw, "VIM coprocessor mismatch");
  std::printf("[3] VIM-based coprocessor  : done — three FPGA_MAP_OBJECT "
              "calls and one\n"
              "                             FPGA_EXECUTE(SIZE); the OS "
              "serviced %llu page faults\n\n",
              static_cast<unsigned long long>(
                  vim.value().report.vim.faults));

  std::printf("VIM execution breakdown:\n%s\n",
              runtime::DescribeDetailed(vim.value().report).c_str());
  std::printf("All three versions agree. The VIM version's source looks "
              "like the software\nversion — that is the paper's point "
              "(Figure 3).\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
