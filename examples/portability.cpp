// portability — §4's porting story, executed.
//
// One application function, written once against the vcop API, runs
// unmodified on three Excalibur family members; per platform, only the
// kernel configuration (the paper's "recompiled module") differs. The
// coprocessor model is byte-identical too: it addresses (object,
// element) pairs and never learns the memory size.
#include <cstdio>
#include <numeric>
#include <vector>

#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop {
namespace {

/// The "application": written once, knows nothing about the platform.
Result<os::ExecutionReport> Application(runtime::FpgaSystem& sys) {
  const u32 n = 20'000;  // 80 KB per vector
  std::vector<u32> a(n), b(n);
  std::iota(a.begin(), a.end(), 5u);
  std::iota(b.begin(), b.end(), 9u);
  auto run = runtime::RunVecAddVim(sys, a, b);
  if (!run.ok()) return run.status();
  for (u32 i = 0; i < n; ++i) {
    VCOP_CHECK(run.value().output[i] == a[i] + b[i]);
  }
  return run.value().report;
}

int Main() {
  std::printf("portability: one application binary, three platforms\n\n");

  Table table({"platform", "DP-RAM", "page", "faults", "evictions",
               "total ms"});
  for (const os::KernelConfig& config :
       {runtime::Epxa1Config(), runtime::Epxa4Config(),
        runtime::Epxa10Config()}) {
    runtime::FpgaSystem sys(config);
    auto report = Application(sys);
    VCOP_CHECK_MSG(report.ok(), report.status().ToString());
    table.AddRow(
        {config.platform_name,
         StrFormat("%u KB", config.dp_ram_bytes / 1024),
         StrFormat("%u KB", config.page_bytes / 1024),
         StrFormat("%llu", static_cast<unsigned long long>(
                               report.value().vim.faults)),
         StrFormat("%llu", static_cast<unsigned long long>(
                               report.value().vim.evictions)),
         runtime::Ms(report.value().total)});
  }
  table.Print();

  std::printf(
      "\nNeither Application() nor the coprocessor model mentioned a "
      "memory size,\na page count or a physical address — porting was a "
      "configuration swap.\n'If the same experiments were to be performed "
      "on a different hardware\nplatform this would require porting the "
      "IMU hardware and the VIM software,\nbut would not require any "
      "changes [to] the coprocessor HDL description nor\nto the "
      "application C code.' (§4.1)\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
