// policy_tuning — using the VIM's knobs (§3.3) on an irregular
// workload.
//
// Runs the gather coprocessor (out[i] = in[perm[i]]) under different
// replacement policies and access patterns, showing how a user would
// pick "optimisation hints passed as parameters to the OS services".
#include <cstdio>
#include <numeric>
#include <vector>

#include "base/rng.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop {
namespace {

enum class Pattern { kSequential, kBlockShuffle, kRandom };

const char* Name(Pattern p) {
  switch (p) {
    case Pattern::kSequential: return "sequential";
    case Pattern::kBlockShuffle: return "block-shuffled";
    case Pattern::kRandom: return "random";
  }
  return "?";
}

std::vector<u32> MakePermutation(Pattern pattern, u32 n, u64 seed) {
  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(seed);
  switch (pattern) {
    case Pattern::kSequential:
      break;
    case Pattern::kBlockShuffle: {
      // Shuffle 512-element blocks; locality within each block.
      const u32 block = 512;
      const u32 blocks = n / block;
      std::vector<u32> order(blocks);
      std::iota(order.begin(), order.end(), 0u);
      for (u32 i = blocks - 1; i > 0; --i) {
        std::swap(order[i], order[rng.NextBelow(i + 1)]);
      }
      for (u32 bi = 0; bi < blocks; ++bi) {
        for (u32 j = 0; j < block; ++j) {
          perm[bi * block + j] = order[bi] * block + j;
        }
      }
      break;
    }
    case Pattern::kRandom:
      for (u32 i = n - 1; i > 0; --i) {
        std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
      }
      break;
  }
  return perm;
}

int Main() {
  constexpr u32 kElements = 6144;  // 24 KB in + 24 KB perm + 24 KB out

  std::printf("policy_tuning: gather over %u elements (3 x 24 KB working "
              "set on 16 KB of interface memory)\n\n",
              kElements);

  std::vector<u32> in(kElements);
  Rng rng(5);
  for (u32& v : in) v = static_cast<u32>(rng.Next());

  Table table({"access pattern", "policy", "faults", "evictions",
               "total ms"});
  for (const Pattern pattern :
       {Pattern::kSequential, Pattern::kBlockShuffle, Pattern::kRandom}) {
    const std::vector<u32> perm = MakePermutation(pattern, kElements, 11);
    for (const os::PolicyKind policy :
         {os::PolicyKind::kFifo, os::PolicyKind::kLru,
          os::PolicyKind::kRandom}) {
      os::KernelConfig config = runtime::Epxa1Config();
      config.vim.policy = policy;
      runtime::FpgaSystem sys(config);
      auto run = runtime::RunGatherVim(sys, in, perm);
      VCOP_CHECK_MSG(run.ok(), run.status().ToString());
      for (u32 i = 0; i < kElements; ++i) {
        VCOP_CHECK(run.value().output[i] == in[perm[i]]);
      }
      table.AddRow(
          {Name(pattern), std::string(ToString(policy)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 run.value().report.vim.faults)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 run.value().report.vim.evictions)),
           runtime::Ms(run.value().report.total)});
    }
  }
  table.Print();

  std::printf(
      "\nReading the table:\n"
      " * sequential gathers behave like the paper's streaming kernels — "
      "any\n   policy works;\n"
      " * block-shuffled access keeps locality, where LRU's recency "
      "tracking\n   (fed by the IMU's TLB accessed bits) starts paying "
      "off;\n"
      " * fully random access thrashes every policy — the case for the "
      "paper's\n   §3.3 hints: an application that knows its pattern can "
      "tell the VIM.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
