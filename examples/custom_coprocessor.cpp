// custom_coprocessor — define a brand-new accelerator at runtime.
//
// Writes a dot-product-with-threshold kernel in the microcode assembly
// (no C++, no rebuild), wraps it as a bit-stream and runs it through
// the unchanged VIM machinery on datasets larger than the interface
// memory. This is the library's growth path: the paper's portable
// coprocessor contract, scripted.
#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "base/rng.h"
#include "runtime/config.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"
#include "ucode/assembler.h"
#include "ucode/ucode_cp.h"

namespace vcop {
namespace {

// out[0] = sum(x[i] * w[i]); out[1] = count of products above a
// threshold parameter. Two reductions in one pass.
constexpr const char* kKernel = R"(
        param  r7, 0          ; n
        param  r6, 1          ; threshold
        loadi  r0, 0          ; i
        loadi  r4, 0          ; sum
        loadi  r5, 0          ; count
        loadi  r8, 1          ; constant 1
loop:   bge    r0, r7, done
        read   r1, obj0[r0]   ; x[i]
        read   r2, obj1[r0]   ; w[i]
        mul    r3, r1, r2
        delay  2              ; the multiplier is 3 cycles deep
        add    r4, r4, r3
        blt    r3, r6, skip
        add    r5, r5, r8
skip:   addi   r0, r0, 1
        jmp    loop
done:   loadi  r0, 0
        write  obj2[r0], r4
        addi   r0, r0, 1
        write  obj2[r0], r5
        halt
)";

int Main() {
  constexpr u32 kN = 20'000;  // 80 KB per input vector
  constexpr u32 kThreshold = 1u << 20;

  const std::string_view kernel_text(kKernel);
  std::printf("custom_coprocessor: a new kernel in %zu lines of "
              "microcode, no C++\n\n",
              static_cast<usize>(std::count(kernel_text.begin(),
                                            kernel_text.end(), '\n')));

  auto program = ucode::Assemble(kKernel, /*num_params=*/2);
  VCOP_CHECK_MSG(program.ok(), program.status().ToString());
  std::printf("assembled %zu instructions; objects used: %zu\n",
              program.value().size(),
              program.value().ReferencedObjects().size());
  std::printf("%s\n", program.value().Disassemble().c_str());

  const hw::Bitstream bs = ucode::MakeMicrocodeBitstream(
      "dotprod", std::move(program).value(), Frequency::MHz(40),
      Frequency::MHz(40));

  Rng rng(9);
  std::vector<u32> x(kN), w(kN);
  for (u32 i = 0; i < kN; ++i) {
    x[i] = static_cast<u32>(rng.NextBelow(2048));
    w[i] = static_cast<u32>(rng.NextBelow(2048));
  }

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  VCOP_CHECK(sys.Load(bs).ok());
  auto bx = sys.Allocate<u32>(kN);
  auto bw = sys.Allocate<u32>(kN);
  auto bout = sys.Allocate<u32>(2);
  VCOP_CHECK(bx.ok() && bw.ok() && bout.ok());
  bx.value().Fill(x);
  bw.value().Fill(w);
  VCOP_CHECK(sys.Map(0, bx.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(1, bw.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(2, bout.value(), os::Direction::kOut).ok());

  auto report = sys.Execute({kN, kThreshold});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());

  // Host reference.
  u32 sum = 0, count = 0;
  for (u32 i = 0; i < kN; ++i) {
    const u32 p = x[i] * w[i];
    sum += p;
    count += p >= kThreshold;
  }
  const auto out = bout.value().ToVector();
  VCOP_CHECK_MSG(out[0] == sum && out[1] == count,
                 "coprocessor result mismatch");

  std::printf("dot product = %u, %u products above threshold — matches "
              "the host reference\n\n",
              out[0], out[1]);
  std::printf("execution:\n%s\n",
              runtime::DescribeDetailed(report.value()).c_str());
  std::printf("160 KB of inputs streamed through 16 KB of interface "
              "memory; the kernel's author\nnever saw a physical address "
              "or a page. That is §2.1, as a scripting workflow.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
