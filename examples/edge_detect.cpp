// edge_detect — image processing on the coprocessor.
//
// Runs a Sobel edge detector over a 128x96 synthetic image on the 3x3
// convolution core, renders a small ASCII preview of input and output,
// and shows the strided-access paging behaviour: three source rows and
// one destination row live in the interface memory at once.
#include <cstdio>
#include <fstream>
#include <vector>

#include "apps/conv2d.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop {
namespace {

void PrintAscii(const char* title, std::span<const u8> image, u32 width,
                u32 height) {
  // Downsample to a ~64x24 character cell preview.
  static constexpr char kRamp[] = " .:-=+*#%@";
  const u32 cols = 64, rows = 24;
  std::printf("%s\n", title);
  for (u32 r = 0; r < rows; ++r) {
    char line[cols + 1];
    for (u32 c = 0; c < cols; ++c) {
      const u32 x = c * width / cols;
      const u32 y = r * height / rows;
      const u8 v = image[static_cast<usize>(y) * width + x];
      line[c] = kRamp[v * 9 / 255];
    }
    line[cols] = '\0';
    std::printf("  %s\n", line);
  }
}

int Main() {
  constexpr u32 kWidth = 128, kHeight = 96;

  std::printf("edge_detect: Sobel on a %ux%u image (%u KB in + %u KB "
              "out on 16 KB of interface memory)\n\n",
              kWidth, kHeight, kWidth * kHeight / 1024,
              kWidth * kHeight / 1024);

  const std::vector<u8> image =
      apps::MakeTestImage(kWidth, kHeight, 2026);

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto run = runtime::RunConv3x3Vim(sys, image, kWidth, kHeight,
                                    apps::SobelXKernel(), /*shift=*/0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());

  // Host reference cross-check.
  std::vector<u8> expect(image.size());
  apps::Convolve3x3(image, kWidth, kHeight, apps::SobelXKernel(), 0,
                    expect);
  VCOP_CHECK_MSG(run.value().output == expect,
                 "coprocessor disagrees with reference convolution");

  PrintAscii("input:", image, kWidth, kHeight);
  std::printf("\n");
  PrintAscii("Sobel-x edges (coprocessor output):", run.value().output,
             kWidth, kHeight);

  std::printf("\nexecution:\n%s\n",
              runtime::DescribeDetailed(run.value().report).c_str());

  std::ofstream trace("edge_detect_trace.json");
  trace << sys.kernel().timeline().ToChromeTrace();
  std::printf(
      "wrote edge_detect_trace.json (%zu events — open in "
      "chrome://tracing or Perfetto)\n\n",
      sys.kernel().timeline().events().size());
  std::printf(
      "The 3x3 window keeps a three-row strip of the source resident; "
      "the VIM pages\nrows in and out as the window slides — no "
      "application-side tiling needed.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
