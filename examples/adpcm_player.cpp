// adpcm_player — the paper's multimedia scenario end to end.
//
// Synthesises a stretch of audio, compresses it with the software IMA
// ADPCM encoder (4:1), then decodes it on the 40 MHz coprocessor
// through the VIM, streaming far more data than the 16 KB interface
// memory holds. Verifies the decoded PCM bit-exactly and reports the
// timing decomposition and the audio SNR of the lossy codec itself.
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/adpcm.h"
#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop {
namespace {

int Main() {
  constexpr usize kSeconds = 2;
  constexpr usize kRate = 8000;  // telephone-band audio
  constexpr usize kSamples = kSeconds * kRate;

  std::printf("adpcm_player: decode %zu s of %zu Hz audio (%zu KB ADPCM "
              "-> %zu KB PCM) on the EPXA1 coprocessor\n\n",
              kSeconds, kRate, kSamples / 2 / 1024,
              kSamples * 2 / 1024);

  // Produce source audio and compress it 4:1 in software.
  const std::vector<i16> source = apps::MakeAudioPcm(kSamples, 2026);
  std::vector<u8> compressed(kSamples / 2);
  apps::AdpcmState enc;
  apps::AdpcmEncode(source, compressed, enc);

  // Decode on the coprocessor through the VIM.
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto run = runtime::RunAdpcmVim(sys, compressed);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());

  // Bit-exact against the software decoder.
  std::vector<i16> expect(kSamples);
  apps::AdpcmState dec;
  apps::AdpcmDecode(compressed, expect, dec);
  VCOP_CHECK_MSG(run.value().output == expect,
                 "coprocessor disagrees with the software decoder");

  // Codec quality vs the original (ADPCM is lossy).
  double noise = 0, signal = 0;
  for (usize i = 0; i < kSamples; ++i) {
    const double e = static_cast<double>(source[i]) - run.value().output[i];
    noise += e * e;
    signal += static_cast<double>(source[i]) * source[i];
  }
  const double snr_db = 10.0 * std::log10(signal / noise);

  const apps::ArmTimingModel arm;
  const Picoseconds sw_time = arm.AdpcmDecodeTime(compressed.size());

  std::printf("decoded %zu samples, bit-exact vs software decoder\n",
              kSamples);
  std::printf("codec SNR vs original audio : %.1f dB\n\n", snr_db);
  std::printf("software decode (133 MHz ARM model): %s ms\n",
              runtime::Ms(sw_time).c_str());
  std::printf("VIM coprocessor decode:\n%s\n",
              runtime::DescribeDetailed(run.value().report).c_str());
  std::printf("speedup over software: %s (paper's Figure 8 band: "
              "1.5x-1.6x)\n",
              runtime::Speedup(sw_time, run.value().report.total).c_str());

  const double realtime =
      static_cast<double>(kSeconds) * 1000.0 /
      ToMilliseconds(run.value().report.total);
  std::printf("\nthroughput: %.0fx faster than real time — plenty for "
              "playback while the ARM does other work\n",
              realtime);
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
