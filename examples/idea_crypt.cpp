// idea_crypt — the paper's cryptographic scenario end to end.
//
// Encrypts a message on the IDEA coprocessor (6 MHz core, 24 MHz IMU),
// decrypts it again with the inverted key schedule on the same
// hardware, and verifies the round trip. The dataset (64 KB each way)
// is four times the interface memory; the same program on a "normal"
// coprocessor port would simply not run.
#include <cstdio>
#include <vector>

#include "apps/idea.h"
#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop {
namespace {

int Main() {
  constexpr usize kBytes = 64 * 1024;

  std::printf("idea_crypt: encrypt + decrypt %zu KB on the IDEA "
              "coprocessor (16 KB interface memory)\n\n",
              kBytes / 1024);

  const apps::IdeaKey key = apps::MakeIdeaKey(0xC0FFEE);
  const apps::IdeaSubkeys ek = apps::IdeaExpandKey(key);
  const apps::IdeaSubkeys dk = apps::IdeaInvertKey(ek);
  const std::vector<u8> plaintext = apps::MakeRandomBytes(kBytes, 42);

  runtime::FpgaSystem sys(runtime::Epxa1Config());

  auto enc = runtime::RunIdeaVim(sys, ek, plaintext);
  VCOP_CHECK_MSG(enc.ok(), enc.status().ToString());
  std::printf("encrypt: %s\n",
              runtime::Describe(enc.value().report).c_str());

  auto dec = runtime::RunIdeaVim(sys, dk, enc.value().output);
  VCOP_CHECK_MSG(dec.ok(), dec.status().ToString());
  std::printf("decrypt: %s\n\n",
              runtime::Describe(dec.value().report).c_str());

  VCOP_CHECK_MSG(dec.value().output == plaintext,
                 "round trip failed to recover the plaintext");
  std::printf("round trip OK: decrypt(encrypt(m)) == m\n\n");

  // Cross-check against software IDEA and report the speedup.
  std::vector<u8> sw_ct(kBytes);
  apps::IdeaCryptEcb(ek, plaintext, sw_ct);
  VCOP_CHECK_MSG(sw_ct == enc.value().output,
                 "coprocessor ciphertext disagrees with software IDEA");

  const apps::ArmTimingModel arm;
  const Picoseconds sw_time = arm.IdeaEcbTime(kBytes);
  std::printf("software encrypt (133 MHz ARM model): %s ms\n",
              runtime::Ms(sw_time).c_str());
  std::printf("coprocessor speedup: %s (paper's Figure 9 band: "
              "11x-12x)\n\n",
              runtime::Speedup(sw_time, enc.value().report.total).c_str());

  // Show what a normal coprocessor would have said.
  auto manual = runtime::RunIdeaManual(os::CostModel{},
                                       runtime::Epxa1Config().dp_ram_bytes,
                                       ek, plaintext);
  VCOP_CHECK_MSG(!manual.ok(), "expected the manual port to fail at 64 KB");
  std::printf("the same dataset on the non-virtualised port: %s\n",
              manual.status().ToString().c_str());
  std::printf("-> only the VIM-based system runs it, unchanged (§4.1, "
              "Figure 9).\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
