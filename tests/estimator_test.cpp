// Tests for the synthesis estimator and the platform board files.
#include <gtest/gtest.h>

#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/platform_file.h"
#include "ucode/assembler.h"
#include "ucode/compiler.h"
#include "ucode/estimator.h"

namespace vcop {
namespace {

using ucode::Assemble;
using ucode::EstimateSynthesis;
using ucode::SynthesiseBitstream;

// ----- synthesis estimation -----

ucode::Program MustAssemble(const char* source, u32 params) {
  auto p = Assemble(source, params);
  VCOP_CHECK_MSG(p.ok(), p.status().ToString());
  return std::move(p).value();
}

TEST(EstimatorTest, MinimalProgramHasBaseCost) {
  const auto est = EstimateSynthesis(MustAssemble("halt\n", 0));
  EXPECT_GT(est.logic_elements, 1000u);  // sequencer + regfile + port
  EXPECT_FALSE(est.has_multiplier);
  EXPECT_FALSE(est.has_adder);
  EXPECT_EQ(est.microcode_bits, 64u);
  EXPECT_EQ(est.max_clock.hertz(), 66'000'000u);
}

TEST(EstimatorTest, MultiplierIsExpensiveAndSlow) {
  const auto plain =
      EstimateSynthesis(MustAssemble("add r1, r2, r3\nhalt\n", 0));
  const auto mul =
      EstimateSynthesis(MustAssemble("mul r1, r2, r3\nhalt\n", 0));
  EXPECT_GT(mul.logic_elements, plain.logic_elements + 400);
  EXPECT_LT(mul.max_clock.hertz(), plain.max_clock.hertz());
  EXPECT_TRUE(mul.has_multiplier);
}

TEST(EstimatorTest, StoreGrowsWithProgram) {
  std::string longer = "loadi r1, 1\n";
  for (int i = 0; i < 50; ++i) longer += "addi r1, r1, 1\n";
  longer += "halt\n";
  const auto small = EstimateSynthesis(MustAssemble("halt\n", 0));
  const auto big = EstimateSynthesis(MustAssemble(longer.c_str(), 0));
  EXPECT_GT(big.logic_elements, small.logic_elements);
  EXPECT_EQ(big.microcode_bits, 52u * 64);
}

TEST(EstimatorTest, SynthesiseClampsClockAndChecksFit) {
  ucode::Program mul_prog = MustAssemble("mul r1, r2, r3\nhalt\n", 0);
  // Requesting 40 MHz: clamped to the multiplier's 12 MHz.
  auto bs = SynthesiseBitstream("mulcore", mul_prog, Frequency::MHz(40),
                                /*pld_capacity_les=*/4160);
  ASSERT_TRUE(bs.ok()) << bs.status().ToString();
  EXPECT_EQ(bs.value().cp_clock.hertz(), 12'000'000u);

  // A tiny PLD rejects the design.
  auto too_small = SynthesiseBitstream("mulcore", mul_prog,
                                       Frequency::MHz(12), 500);
  ASSERT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), ErrorCode::kResourceExhausted);
}

TEST(EstimatorTest, SynthesisedCoreActuallyRuns) {
  // End-to-end: compile an expression kernel, synthesise it, run it.
  ucode::MapKernelSpec spec;
  spec.name = "scaled-sum";
  spec.output = 1;
  spec.body = ucode::Expr::Shr(
      ucode::Expr::Input(0) + ucode::Expr::Param(1),
      ucode::Expr::Constant(1));
  auto program = ucode::CompileMapKernel(spec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto bs = SynthesiseBitstream("scaled-sum", program.value(),
                                Frequency::MHz(40), 4160);
  ASSERT_TRUE(bs.ok()) << bs.status().ToString();
  // Shifter-limited: 40 MHz granted? shifter max is 50 -> 40 stands.
  EXPECT_EQ(bs.value().cp_clock.hertz(), 40'000'000u);

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  ASSERT_TRUE(sys.Load(bs.value()).ok());
  const u32 n = 128;
  auto in = sys.Allocate<u32>(n);
  auto out = sys.Allocate<u32>(n);
  ASSERT_TRUE(in.ok() && out.ok());
  for (u32 i = 0; i < n; ++i) in.value().view()[i] = i * 10;
  ASSERT_TRUE(sys.Map(0, in.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, out.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({n, 6u});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (u32 i = 0; i < n; ++i) {
    ASSERT_EQ(out.value().view()[i], (i * 10 + 6) >> 1) << i;
  }
}

// ----- platform board files -----

TEST(PlatformFileTest, DefaultsAreEpxa1) {
  auto config = runtime::ParsePlatformFile("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().dp_ram_bytes, 16u * 1024);
  EXPECT_EQ(config.value().platform_name, "EPXA1");
}

TEST(PlatformFileTest, ParsesFullDescription) {
  const char* text = R"(
; my custom board
name = MYBOARD
dp_ram_kb = 64
page_kb = 4
tlb_entries = 16
cpu_mhz = 200        # faster ARM
imu_latency = 3
pipelined = true
posted_writes = yes
bounds_check = on
pld_les = 16640
policy = lru
copy_mode = dma
prefetch = sequential
prefetch_depth = 2
overlap = true
victim_tlb_entries = 16
coalesce_writeback = yes
iommu = on
iotlb_entries = 64
fastforward = on
service_ring = 128
service_rate = 5000
service_burst = 32
)";
  auto config = runtime::ParsePlatformFile(text);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const os::KernelConfig& c = config.value();
  EXPECT_EQ(c.platform_name, "MYBOARD");
  EXPECT_EQ(c.dp_ram_bytes, 64u * 1024);
  EXPECT_EQ(c.page_bytes, 4u * 1024);
  EXPECT_EQ(c.tlb_entries, 16u);
  EXPECT_EQ(c.costs.cpu_clock.hertz(), 200'000'000u);
  EXPECT_EQ(c.imu_access_latency, 3u);
  EXPECT_TRUE(c.imu_pipelined);
  EXPECT_TRUE(c.imu_posted_writes);
  EXPECT_TRUE(c.imu_bounds_check);
  EXPECT_EQ(c.pld_capacity_les, 16640u);
  EXPECT_EQ(c.vim.policy, os::PolicyKind::kLru);
  EXPECT_EQ(c.vim.copy_mode, mem::CopyMode::kDma);
  EXPECT_EQ(c.vim.prefetch, os::PrefetchKind::kSequential);
  EXPECT_EQ(c.vim.prefetch_depth, 2u);
  EXPECT_TRUE(c.vim.overlap_prefetch);
  EXPECT_EQ(c.vim.victim_tlb_entries, 16u);
  EXPECT_TRUE(c.vim.coalesce_writeback);
  EXPECT_TRUE(c.vim.iommu);
  EXPECT_EQ(c.vim.iotlb_entries, 64u);
  EXPECT_TRUE(c.sim_tuning.fastforward);
  EXPECT_EQ(c.service.ring_entries, 128u);
  EXPECT_EQ(c.service.admit_rate, 5000u);
  EXPECT_EQ(c.service.admit_burst, 32u);
}

TEST(PlatformFileTest, BadServiceValuesRejected) {
  // Ring sizes are virtio-style: power of two, within the u16 index
  // space's half.
  EXPECT_FALSE(runtime::ParsePlatformFile("service_ring = 24\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("service_ring = 1\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("service_ring = 65536\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("service_burst = 0\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("service_rate = lots\n").ok());
}

TEST(PlatformFileTest, IommuIsOffByDefaultAndBadValuesNameTheKey) {
  // Strictly opt-in: with no `iommu` line the seed artifacts must be
  // untouched (DESIGN.md §13).
  auto defaults = runtime::ParsePlatformFile("");
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults.value().vim.iommu);
  EXPECT_EQ(defaults.value().vim.iotlb_entries, 16u);

  // Rejections carry the line and the key, like every other knob.
  auto bad_bool = runtime::ParsePlatformFile("name = X\niommu = maybe\n");
  ASSERT_FALSE(bad_bool.ok());
  EXPECT_NE(bad_bool.status().message().find("line 2"), std::string::npos)
      << bad_bool.status().message();
  EXPECT_NE(bad_bool.status().message().find("iommu"), std::string::npos)
      << bad_bool.status().message();

  // The IO-TLB is fully associative with a round-robin cursor masked by
  // size-1: the size must be a power of two, bounded.
  auto not_pow2 = runtime::ParsePlatformFile("iotlb_entries = 48\n");
  ASSERT_FALSE(not_pow2.ok());
  EXPECT_NE(not_pow2.status().message().find("iotlb_entries"),
            std::string::npos)
      << not_pow2.status().message();
  EXPECT_FALSE(runtime::ParsePlatformFile("iotlb_entries = 0\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("iotlb_entries = 2048\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("iotlb_entries = many\n").ok());

  // All accepted spellings of the boolean.
  for (const char* value : {"on", "true", "yes", "1"}) {
    auto config = runtime::ParsePlatformFile(std::string("iommu = ") +
                                             value + "\n");
    ASSERT_TRUE(config.ok()) << value;
    EXPECT_TRUE(config.value().vim.iommu) << value;
  }
}

TEST(PlatformFileTest, ReconfigKeysDefaultOffAndRoundTrip) {
  // Strictly opt-in (DESIGN.md §15): with none of the three keys the
  // seed artifacts must be untouched.
  auto defaults = runtime::ParsePlatformFile("");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().config_slots, 1u);
  EXPECT_FALSE(defaults.value().design_affinity);
  EXPECT_FALSE(defaults.value().vim.lazy_writeback);

  auto config = runtime::ParsePlatformFile(
      "config_slots = 4\ndesign_affinity = on\nlazy_writeback = yes\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().config_slots, 4u);
  EXPECT_TRUE(config.value().design_affinity);
  EXPECT_TRUE(config.value().vim.lazy_writeback);

  os::KernelConfig original = runtime::Epxa1Config();
  original.config_slots = 3;
  original.design_affinity = true;
  original.vim.lazy_writeback = true;
  auto parsed = runtime::ParsePlatformFile(runtime::WritePlatformFile(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().config_slots, original.config_slots);
  EXPECT_EQ(parsed.value().design_affinity, original.design_affinity);
  EXPECT_EQ(parsed.value().vim.lazy_writeback, original.vim.lazy_writeback);
}

TEST(PlatformFileTest, BadReconfigValuesAreRejectedByName) {
  // A slot count of zero would leave the fabric with nowhere to
  // configure; the cap matches the documented bound.
  for (const char* text : {"config_slots = 0\n", "config_slots = 65\n",
                           "config_slots = lots\n"}) {
    auto bad = runtime::ParsePlatformFile(text);
    ASSERT_FALSE(bad.ok()) << text;
    EXPECT_NE(bad.status().message().find("config_slots"), std::string::npos)
        << bad.status().message();
  }
  auto bad_affinity =
      runtime::ParsePlatformFile("name = X\ndesign_affinity = maybe\n");
  ASSERT_FALSE(bad_affinity.ok());
  EXPECT_NE(bad_affinity.status().message().find("line 2"),
            std::string::npos)
      << bad_affinity.status().message();
  EXPECT_NE(bad_affinity.status().message().find("design_affinity"),
            std::string::npos)
      << bad_affinity.status().message();
  auto bad_lazy = runtime::ParsePlatformFile("lazy_writeback = 2h\n");
  ASSERT_FALSE(bad_lazy.ok());
  EXPECT_NE(bad_lazy.status().message().find("lazy_writeback"),
            std::string::npos)
      << bad_lazy.status().message();
}

TEST(PlatformFileTest, ParsesFastforwardSpellings) {
  // Off by default: the tier is strictly opt-in.
  auto defaults = runtime::ParsePlatformFile("");
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults.value().sim_tuning.fastforward);

  struct Case {
    const char* value;
    bool expect;
  };
  for (const Case c : {Case{"on", true}, Case{"true", true},
                       Case{"yes", true}, Case{"1", true},
                       Case{"off", false}, Case{"false", false},
                       Case{"no", false}, Case{"0", false}}) {
    auto config = runtime::ParsePlatformFile(
        std::string("fastforward = ") + c.value + "\n");
    ASSERT_TRUE(config.ok()) << c.value << ": "
                             << config.status().ToString();
    EXPECT_EQ(config.value().sim_tuning.fastforward, c.expect) << c.value;
  }
}

TEST(PlatformFileTest, BadFastforwardValueRejectedWithLine) {
  auto config =
      runtime::ParsePlatformFile("name = X\nfastforward = turbo\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 2"), std::string::npos)
      << config.status().message();
  EXPECT_NE(config.status().message().find("fastforward"),
            std::string::npos)
      << config.status().message();
}

TEST(PlatformFileTest, ParsesEveryPrefetchKind) {
  struct Case {
    const char* value;
    os::PrefetchKind kind;
  };
  for (const Case c : {Case{"none", os::PrefetchKind::kNone},
                       Case{"sequential", os::PrefetchKind::kSequential},
                       Case{"stride", os::PrefetchKind::kStride},
                       Case{"adaptive", os::PrefetchKind::kAdaptive}}) {
    auto config = runtime::ParsePlatformFile(
        std::string("prefetch = ") + c.value + "\n");
    ASSERT_TRUE(config.ok()) << c.value;
    EXPECT_EQ(config.value().vim.prefetch, c.kind) << c.value;
  }
}

TEST(PlatformFileTest, UnknownPrefetchKindRejectedClearly) {
  auto config = runtime::ParsePlatformFile("prefetch = psychic\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find(
                "prefetch must be none|sequential|stride|adaptive"),
            std::string::npos)
      << config.status().message();
}

TEST(PlatformFileTest, UnknownKeyRejectedWithLine) {
  auto config = runtime::ParsePlatformFile("name = X\ndp_ram_mb = 4\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(config.status().message().find("dp_ram_mb"),
            std::string::npos);
}

TEST(PlatformFileTest, BadValuesRejected) {
  EXPECT_FALSE(runtime::ParsePlatformFile("page_kb = 3\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("pipelined = maybe\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("policy = mru\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("cpu_mhz = fast\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("imu_latency = 1\n").ok());
  // Non-integral page count.
  EXPECT_FALSE(
      runtime::ParsePlatformFile("dp_ram_kb = 3\npage_kb = 2\n").ok());
}

TEST(PlatformFileTest, ParsesFlexibleMemoryKeys) {
  auto config = runtime::ParsePlatformFile(
      "page_size = 1024\n"
      "l1_tlb_entries = 2\n"
      "l2_tlb_entries = 6\n"
      "page_size_obj0 = 4096\n"
      "page_size_obj14 = 512\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const os::KernelConfig& c = config.value();
  EXPECT_EQ(c.page_bytes, 1024u);
  EXPECT_EQ(c.l1_tlb_entries, 2u);
  EXPECT_EQ(c.l2_tlb_entries, 6u);
  EXPECT_EQ(c.object_page_bytes[0], 4096u);
  EXPECT_EQ(c.object_page_bytes[14], 512u);
  EXPECT_EQ(c.object_page_bytes[1], 0u);  // untouched = platform default
}

TEST(PlatformFileTest, FlexibleMemoryDefaultsAreOff) {
  // With no new keys the seed configuration must be untouched: single
  // CAM, platform pages, no per-object overrides.
  auto config = runtime::ParsePlatformFile("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().l1_tlb_entries, 0u);
  EXPECT_EQ(config.value().l2_tlb_entries, 0u);
  for (u32 id = 0; id < hw::kMaxObjects; ++id) {
    EXPECT_EQ(config.value().object_page_bytes[id], 0u);
  }
}

TEST(PlatformFileTest, BadFlexibleMemoryValuesRejectedByName) {
  // Rejection messages name the offending key.
  auto bad_pow2 = runtime::ParsePlatformFile("page_size = 3000\n");
  ASSERT_FALSE(bad_pow2.ok());
  EXPECT_NE(bad_pow2.status().ToString().find("page_size"),
            std::string::npos);
  EXPECT_FALSE(runtime::ParsePlatformFile("page_size = 256\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("page_size = 131072\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("l1_tlb_entries = 2048\n").ok());
  auto bad_l2 = runtime::ParsePlatformFile("l2_tlb_entries = big\n");
  ASSERT_FALSE(bad_l2.ok());
  EXPECT_NE(bad_l2.status().ToString().find("l2_tlb_entries"),
            std::string::npos);
  // Per-object overrides: power of two in [512, 8192], real object ids
  // only (15 is the parameter page; 16+ is out of range).
  auto bad_obj = runtime::ParsePlatformFile("page_size_obj3 = 3000\n");
  ASSERT_FALSE(bad_obj.ok());
  EXPECT_NE(bad_obj.status().ToString().find("page_size_obj3"),
            std::string::npos);
  EXPECT_FALSE(runtime::ParsePlatformFile("page_size_obj0 = 256\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("page_size_obj0 = 16384\n").ok());
  auto param = runtime::ParsePlatformFile("page_size_obj15 = 2048\n");
  ASSERT_FALSE(param.ok());
  EXPECT_NE(param.status().ToString().find("reserved"), std::string::npos);
  EXPECT_FALSE(runtime::ParsePlatformFile("page_size_obj16 = 2048\n").ok());
  EXPECT_FALSE(runtime::ParsePlatformFile("page_size_objx = 2048\n").ok());
}

TEST(PlatformFileTest, FlexibleMemoryKeysRoundTripThroughWriter) {
  os::KernelConfig original = runtime::Epxa1Config();
  original.page_bytes = 1024;
  original.l1_tlb_entries = 2;
  original.l2_tlb_entries = 6;
  original.object_page_bytes[0] = 4096;
  original.object_page_bytes[7] = 512;
  const std::string text = runtime::WritePlatformFile(original);
  // The writer emits the byte-granular key, not the legacy page_kb.
  EXPECT_EQ(text.find("page_kb"), std::string::npos);
  auto parsed = runtime::ParsePlatformFile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().page_bytes, original.page_bytes);
  EXPECT_EQ(parsed.value().l1_tlb_entries, original.l1_tlb_entries);
  EXPECT_EQ(parsed.value().l2_tlb_entries, original.l2_tlb_entries);
  EXPECT_EQ(parsed.value().object_page_bytes, original.object_page_bytes);
}

TEST(PlatformFileTest, RoundTripsThroughWriter) {
  os::KernelConfig original = runtime::Epxa4Config();
  original.vim.policy = os::PolicyKind::kRandom;
  original.vim.copy_mode = mem::CopyMode::kSingleCopy;
  original.imu_pipelined = true;
  original.vim.prefetch = os::PrefetchKind::kAdaptive;
  original.vim.prefetch_depth = 3;
  original.vim.victim_tlb_entries = 8;
  original.vim.coalesce_writeback = true;
  original.vim.iommu = true;
  original.vim.iotlb_entries = 32;
  original.sim_tuning.fastforward = true;
  original.service.ring_entries = 256;
  original.service.admit_rate = 1234;
  original.service.admit_burst = 7;
  const std::string text = runtime::WritePlatformFile(original);
  auto parsed = runtime::ParsePlatformFile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().platform_name, original.platform_name);
  EXPECT_EQ(parsed.value().dp_ram_bytes, original.dp_ram_bytes);
  EXPECT_EQ(parsed.value().tlb_entries, original.tlb_entries);
  EXPECT_EQ(parsed.value().vim.policy, original.vim.policy);
  EXPECT_EQ(parsed.value().vim.copy_mode, original.vim.copy_mode);
  EXPECT_EQ(parsed.value().imu_pipelined, original.imu_pipelined);
  EXPECT_EQ(parsed.value().vim.prefetch, original.vim.prefetch);
  EXPECT_EQ(parsed.value().vim.prefetch_depth, original.vim.prefetch_depth);
  EXPECT_EQ(parsed.value().vim.victim_tlb_entries,
            original.vim.victim_tlb_entries);
  EXPECT_EQ(parsed.value().vim.coalesce_writeback,
            original.vim.coalesce_writeback);
  EXPECT_EQ(parsed.value().vim.iommu, original.vim.iommu);
  EXPECT_EQ(parsed.value().vim.iotlb_entries, original.vim.iotlb_entries);
  EXPECT_EQ(parsed.value().sim_tuning.fastforward,
            original.sim_tuning.fastforward);
  EXPECT_EQ(parsed.value().service.ring_entries,
            original.service.ring_entries);
  EXPECT_EQ(parsed.value().service.admit_rate, original.service.admit_rate);
  EXPECT_EQ(parsed.value().service.admit_burst,
            original.service.admit_burst);
}

TEST(PlatformFileTest, ParsedPlatformRunsApplications) {
  auto config = runtime::ParsePlatformFile(
      "name = TEST\ndp_ram_kb = 32\ntlb_entries = 16\npolicy = lru\n");
  ASSERT_TRUE(config.ok());
  runtime::FpgaSystem sys(config.value());
  const std::vector<u32> a(500, 3), b(500, 4);
  auto run = runtime::RunVecAddVim(sys, a, b);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output[499], 7u);
}

}  // namespace
}  // namespace vcop
