// Kernel and API lifecycle tests: load/unload sequencing, mapping
// rules, re-execution behaviour, and miscellaneous error paths not
// covered by the per-module suites.
#include <gtest/gtest.h>

#include <numeric>

#include "cp/registry.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

TEST(LifecycleTest, DoubleLoadRejected) {
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  const Status again = sys.Load(cp::IdeaBitstream());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), ErrorCode::kResourceExhausted);
}

TEST(LifecycleTest, UnloadWithoutLoadRejected) {
  FpgaSystem sys(Epxa1Config());
  EXPECT_EQ(sys.Unload().code(), ErrorCode::kFailedPrecondition);
}

TEST(LifecycleTest, LoadUnloadLoadCycles) {
  FpgaSystem sys(Epxa1Config());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok()) << round;
    ASSERT_TRUE(sys.Unload().ok()) << round;
  }
}

TEST(LifecycleTest, LoadAdvancesConfigurationTime) {
  FpgaSystem sys(Epxa1Config());
  const Picoseconds before = sys.kernel().simulator().now();
  ASSERT_TRUE(sys.Load(cp::IdeaBitstream()).ok());
  const Picoseconds after = sys.kernel().simulator().now();
  // 192 KB at 4 MiB/s = 46.875 ms of configuration.
  EXPECT_EQ(after - before, sys.kernel().last_load_time());
  EXPECT_NEAR(ToMilliseconds(after - before), 46.875, 0.01);
}

TEST(LifecycleTest, DesignTooBigForPld) {
  os::KernelConfig config = Epxa1Config();
  config.pld_capacity_les = 1000;
  FpgaSystem sys(config);
  const Status load = sys.Load(cp::IdeaBitstream());  // 3900 LEs
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.code(), ErrorCode::kResourceExhausted);
}

TEST(LifecycleTest, MapRequiresAllocatedMemory) {
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  const Status bad = sys.kernel().FpgaMapObject(
      0, /*addr=*/0x100000, /*size=*/64, 4, os::Direction::kIn);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidArgument);
}

TEST(LifecycleTest, ObjectsSurviveAcrossExecutions) {
  // Map once, execute twice with different parameters: the second run
  // sees updated buffer contents (the mapping is by reference, §3.1).
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  const u32 n = 64;
  auto a = sys.Allocate<u32>(n);
  auto b = sys.Allocate<u32>(n);
  auto c = sys.Allocate<u32>(n);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kOut).ok());

  for (u32 round = 1; round <= 2; ++round) {
    for (u32 i = 0; i < n; ++i) {
      a.value().view()[i] = i * round;
      b.value().view()[i] = 100 * round;
    }
    auto report = sys.Execute({n});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    for (u32 i = 0; i < n; ++i) {
      ASSERT_EQ(c.value().view()[i], i * round + 100 * round)
          << "round " << round << " i " << i;
    }
  }
}

TEST(LifecycleTest, SimulatedTimeIsMonotonicAcrossCalls) {
  FpgaSystem sys(Epxa1Config());
  std::vector<u32> a(256, 1), b(256, 2);
  auto r1 = runtime::RunVecAddVim(sys, a, b);
  ASSERT_TRUE(r1.ok());
  const Picoseconds t1 = sys.kernel().simulator().now();
  auto r2 = runtime::RunVecAddVim(sys, a, b);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(sys.kernel().simulator().now(), t1);
}

TEST(LifecycleTest, ReportsAreIndependentPerExecution) {
  FpgaSystem sys(Epxa1Config());
  std::vector<u32> small(64, 1);
  std::vector<u32> large(4096, 1);
  auto r_large = runtime::RunVecAddVim(sys, large, large);
  ASSERT_TRUE(r_large.ok());
  auto r_small = runtime::RunVecAddVim(sys, small, small);
  ASSERT_TRUE(r_small.ok());
  // The second (small) report must not inherit the first run's faults.
  EXPECT_LT(r_small.value().report.vim.faults,
            r_large.value().report.vim.faults);
  EXPECT_LT(r_small.value().report.total, r_large.value().report.total);
}

TEST(LifecycleTest, DeterministicAcrossIdenticalSystems) {
  // Two fresh systems given identical inputs produce identical reports
  // — the whole simulation is bit-reproducible.
  auto run = [] {
    FpgaSystem sys(Epxa1Config());
    std::vector<u32> a(3000), b(3000);
    std::iota(a.begin(), a.end(), 7u);
    std::iota(b.begin(), b.end(), 13u);
    auto r = runtime::RunVecAddVim(sys, a, b);
    VCOP_CHECK(r.ok());
    return r.value().report;
  };
  const os::ExecutionReport r1 = run();
  const os::ExecutionReport r2 = run();
  EXPECT_EQ(r1.total, r2.total);
  EXPECT_EQ(r1.t_hw, r2.t_hw);
  EXPECT_EQ(r1.t_dp, r2.t_dp);
  EXPECT_EQ(r1.vim.faults, r2.vim.faults);
  EXPECT_EQ(r1.cp_cycles, r2.cp_cycles);
}

TEST(LifecycleTest, ZeroElementExecutionCompletes) {
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  auto a = sys.Allocate<u32>(4);
  auto b = sys.Allocate<u32>(4);
  auto c = sys.Allocate<u32>(4);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({0u});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().vim.faults, 0u);
  EXPECT_EQ(report.value().imu.writes, 0u);
}

TEST(LifecycleTest, ManyParametersUpToThePageLimit) {
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  auto a = sys.Allocate<u32>(4);
  auto b = sys.Allocate<u32>(4);
  auto c = sys.Allocate<u32>(4);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kOut).ok());
  // 512 u32 = exactly one 2 KB parameter page; param 0 (SIZE) = 4.
  std::vector<u32> params(512, 0);
  params[0] = 4;
  auto report = sys.Execute(std::span<const u32>(params));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

}  // namespace
}  // namespace vcop
