// End-to-end integration: the Figure 5/6 vector-add flow through the
// full stack — user API -> kernel syscalls -> VIM -> IMU -> coprocessor
// FSM -> dual-port RAM — across dataset sizes that do and do not fit
// the interface memory.
#include <gtest/gtest.h>

#include <numeric>

#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;
using runtime::RunVecAddVim;

std::vector<u32> Iota(u32 n, u32 start) {
  std::vector<u32> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(VecAddIntegrationTest, SmallVectorAddsCorrectly) {
  FpgaSystem sys(Epxa1Config());
  const std::vector<u32> a = Iota(64, 0);
  const std::vector<u32> b = Iota(64, 1000);
  auto run = RunVecAddVim(sys, a, b);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().output.size(), 64u);
  for (u32 i = 0; i < 64; ++i) {
    EXPECT_EQ(run.value().output[i], a[i] + b[i]) << i;
  }
}

TEST(VecAddIntegrationTest, DatasetLargerThanDualPortRam) {
  // Three 16 KB vectors = 48 KB of data on a 16 KB interface memory:
  // impossible without virtualisation, transparent with it.
  FpgaSystem sys(Epxa1Config());
  const u32 n = 4096;  // 16 KB per vector
  const std::vector<u32> a = Iota(n, 3);
  const std::vector<u32> b = Iota(n, 7);
  auto run = RunVecAddVim(sys, a, b);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (u32 i = 0; i < n; ++i) {
    ASSERT_EQ(run.value().output[i], a[i] + b[i]) << i;
  }
  // Page faults must have occurred (the paper's whole point).
  EXPECT_GT(run.value().report.vim.faults, 3u);
  EXPECT_GT(run.value().report.vim.evictions, 0u);
}

TEST(VecAddIntegrationTest, ReportDecompositionIsConsistent) {
  FpgaSystem sys(Epxa1Config());
  const u32 n = 2048;
  auto run = RunVecAddVim(sys, Iota(n, 1), Iota(n, 2));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const os::ExecutionReport& r = run.value().report;
  EXPECT_EQ(r.total, r.t_hw + r.t_dp + r.t_imu + r.t_invoke);
  EXPECT_GT(r.t_hw, 0u);
  EXPECT_GT(r.t_invoke, 0u);
  // 3 accesses per element plus parameter reads.
  EXPECT_GE(r.imu.accesses, 3u * n);
  // Process slept exactly once, for the whole call.
  EXPECT_EQ(sys.kernel().process().wakeups(), 1u);
  EXPECT_GE(sys.kernel().process().total_slept(), r.total);
}

TEST(VecAddIntegrationTest, BackToBackExecutionsReuseTheDesign) {
  FpgaSystem sys(Epxa1Config());
  auto first = RunVecAddVim(sys, Iota(256, 0), Iota(256, 5));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunVecAddVim(sys, Iota(512, 9), Iota(512, 4));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().output[511], (511u + 9) + (511u + 4));
}

TEST(VecAddIntegrationTest, ExecuteWithoutLoadFails) {
  FpgaSystem sys(Epxa1Config());
  auto report = sys.Execute({4});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(VecAddIntegrationTest, UnmappedObjectAbortsTheRun) {
  // Map A and C but not B: the coprocessor's first access to object 1
  // must fault, and the VIM must fail the call instead of hanging.
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  auto a = sys.Allocate<u32>(16);
  auto c = sys.Allocate<u32>(16);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(
      sys.Map(cp::VecAddCoprocessor::kObjA, a.value(), os::Direction::kIn)
          .ok());
  ASSERT_TRUE(
      sys.Map(cp::VecAddCoprocessor::kObjC, c.value(), os::Direction::kOut)
          .ok());
  auto report = sys.Execute({16u});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kNotFound);
}

TEST(VecAddIntegrationTest, SameCodeRunsOnLargerPlatforms) {
  // The paper's portability claim: the identical application code runs
  // after only a platform (module) change.
  for (const os::KernelConfig& config :
       {runtime::Epxa1Config(), runtime::Epxa4Config(),
        runtime::Epxa10Config()}) {
    FpgaSystem sys(config);
    const u32 n = 3000;
    auto run = RunVecAddVim(sys, Iota(n, 11), Iota(n, 22));
    ASSERT_TRUE(run.ok())
        << config.platform_name << ": " << run.status().ToString();
    EXPECT_EQ(run.value().output[n - 1], (n - 1 + 11) + (n - 1 + 22))
        << config.platform_name;
  }
}

}  // namespace
}  // namespace vcop
