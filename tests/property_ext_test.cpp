// Extended property matrix: the full cross-product of the extension
// features (copy modes x IMU microarchitectures x overlap x policies)
// on all three applications, checking bit-exactness and the accounting
// invariants in every cell. This is the suite that guards against
// feature interactions — each knob is tested alone elsewhere; here they
// compose.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

struct FeatureMix {
  mem::CopyMode copy_mode;
  bool pipelined;
  bool posted_writes;
  bool bounds_check;
  bool overlap;
  os::PolicyKind policy;
};

os::KernelConfig ConfigFor(const FeatureMix& mix) {
  os::KernelConfig config = Epxa1Config();
  config.vim.copy_mode = mix.copy_mode;
  config.imu_pipelined = mix.pipelined;
  config.imu_posted_writes = mix.posted_writes;
  config.imu_bounds_check = mix.bounds_check;
  config.vim.policy = mix.policy;
  if (mix.overlap) {
    config.vim.prefetch = os::PrefetchKind::kSequential;
    config.vim.prefetch_depth = 1;
    config.vim.overlap_prefetch = true;
  }
  return config;
}

std::string MixName(const FeatureMix& mix) {
  std::string name(mem::ToString(mix.copy_mode));
  if (mix.pipelined) name += "+piped";
  if (mix.posted_writes) name += "+posted";
  if (mix.bounds_check) name += "+bounds";
  if (mix.overlap) name += "+overlap";
  name += "+";
  name += ToString(mix.policy);
  return name;
}

void CheckInvariants(const os::ExecutionReport& r,
                     const FeatureMix& mix) {
  EXPECT_EQ(r.total, r.t_hw + r.t_dp + r.t_imu + r.t_invoke)
      << MixName(mix);
  EXPECT_EQ(r.tlb.lookups, r.tlb.hits + r.tlb.misses) << MixName(mix);
  EXPECT_EQ(r.imu.accesses, r.imu.reads + r.imu.writes) << MixName(mix);
  EXPECT_EQ(r.vim.dirty_in_pages_dropped, 0u) << MixName(mix);
}

// A representative but affordable sample of the cross-product: every
// feature appears on and off, pairwise combinations covered.
const FeatureMix kMixes[] = {
    {mem::CopyMode::kDoubleCopy, false, false, false, false,
     os::PolicyKind::kFifo},  // the paper platform
    {mem::CopyMode::kSingleCopy, false, false, true, false,
     os::PolicyKind::kLru},
    {mem::CopyMode::kDma, false, true, false, false,
     os::PolicyKind::kRandom},
    {mem::CopyMode::kDoubleCopy, true, false, true, true,
     os::PolicyKind::kLru},
    {mem::CopyMode::kSingleCopy, true, true, false, true,
     os::PolicyKind::kFifo},
    {mem::CopyMode::kDma, true, true, true, true,
     os::PolicyKind::kRandom},
};

class FeatureMatrixTest : public ::testing::TestWithParam<usize> {};

TEST_P(FeatureMatrixTest, AdpcmBitExact) {
  const FeatureMix& mix = kMixes[GetParam()];
  const std::vector<u8> input = apps::MakeAdpcmStream(6000, 501);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState st;
  apps::AdpcmDecode(input, expect, st);

  FpgaSystem sys(ConfigFor(mix));
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << MixName(mix) << ": "
                        << run.status().ToString();
  EXPECT_EQ(run.value().output, expect) << MixName(mix);
  CheckInvariants(run.value().report, mix);
}

TEST_P(FeatureMatrixTest, IdeaCbcBitExact) {
  const FeatureMix& mix = kMixes[GetParam()];
  const auto ek = apps::IdeaExpandKey(apps::MakeIdeaKey(502));
  apps::IdeaIv iv{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<u8> pt = apps::MakeRandomBytes(20480, 503);
  std::vector<u8> expect(pt.size());
  apps::IdeaCbcEncrypt(ek, iv, pt, expect);

  FpgaSystem sys(ConfigFor(mix));
  auto run = runtime::RunIdeaCbcVim(sys, ek, iv, true, pt);
  ASSERT_TRUE(run.ok()) << MixName(mix) << ": "
                        << run.status().ToString();
  EXPECT_EQ(run.value().output, expect) << MixName(mix);
  CheckInvariants(run.value().report, mix);
}

TEST_P(FeatureMatrixTest, ConvolutionBitExact) {
  const FeatureMix& mix = kMixes[GetParam()];
  const u32 w = 160, h = 120;
  const std::vector<u8> image = apps::MakeTestImage(w, h, 504);
  std::vector<u8> expect(image.size());
  apps::Convolve3x3(image, w, h, apps::EmbossKernel(), 0, expect);

  FpgaSystem sys(ConfigFor(mix));
  auto run =
      runtime::RunConv3x3Vim(sys, image, w, h, apps::EmbossKernel(), 0);
  ASSERT_TRUE(run.ok()) << MixName(mix) << ": "
                        << run.status().ToString();
  EXPECT_EQ(run.value().output, expect) << MixName(mix);
  CheckInvariants(run.value().report, mix);
}

TEST_P(FeatureMatrixTest, BackToBackRunsStayClean) {
  // Two consecutive executions under each mix: state from the first
  // (in-flight prefetches, posted writes, dirty tracking) must not
  // leak into the second.
  const FeatureMix& mix = kMixes[GetParam()];
  FpgaSystem sys(ConfigFor(mix));
  for (int round = 0; round < 2; ++round) {
    const std::vector<u8> input =
        apps::MakeAdpcmStream(3000, 600 + round);
    std::vector<i16> expect(input.size() * 2);
    apps::AdpcmState st;
    apps::AdpcmDecode(input, expect, st);
    auto run = runtime::RunAdpcmVim(sys, input);
    ASSERT_TRUE(run.ok()) << MixName(mix) << " round " << round;
    EXPECT_EQ(run.value().output, expect)
        << MixName(mix) << " round " << round;
    EXPECT_EQ(sys.kernel().vim().page_manager().frames_in_use(), 0u)
        << MixName(mix) << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, FeatureMatrixTest,
                         ::testing::Range<usize>(0, 6));

// ----- platform presets x applications -----

class PresetAppTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PresetAppTest, EveryAppOnEveryPreset) {
  const auto [preset_idx, app_idx] = GetParam();
  const os::KernelConfig config =
      preset_idx == 0   ? runtime::Epxa1Config()
      : preset_idx == 1 ? runtime::Epxa4Config()
                        : runtime::Epxa10Config();
  FpgaSystem sys(config);

  switch (app_idx) {
    case 0: {  // vecadd
      std::vector<u32> a(2500), b(2500);
      std::iota(a.begin(), a.end(), 1u);
      std::iota(b.begin(), b.end(), 9u);
      auto run = runtime::RunVecAddVim(sys, a, b);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      for (u32 i = 0; i < 2500; ++i) {
        ASSERT_EQ(run.value().output[i], a[i] + b[i]);
      }
      break;
    }
    case 1: {  // adpcm encode->decode hardware round trip
      const std::vector<i16> pcm = apps::MakeAudioPcm(4096, 700);
      auto enc = runtime::RunAdpcmEncodeVim(sys, pcm);
      ASSERT_TRUE(enc.ok()) << enc.status().ToString();
      auto dec = runtime::RunAdpcmVim(sys, enc.value().output);
      ASSERT_TRUE(dec.ok()) << dec.status().ToString();
      std::vector<u8> sw_coded(pcm.size() / 2);
      apps::AdpcmState es;
      apps::AdpcmEncode(pcm, sw_coded, es);
      EXPECT_EQ(enc.value().output, sw_coded);
      break;
    }
    case 2: {  // IDEA ECB
      const auto ek = apps::IdeaExpandKey(apps::MakeIdeaKey(701));
      const std::vector<u8> pt = apps::MakeRandomBytes(16384, 702);
      std::vector<u8> expect(pt.size());
      apps::IdeaCryptEcb(ek, pt, expect);
      auto run = runtime::RunIdeaVim(sys, ek, pt);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run.value().output, expect);
      break;
    }
    case 3: {  // convolution
      const u32 w = 200, h = 80;
      const std::vector<u8> image = apps::MakeTestImage(w, h, 703);
      std::vector<u8> expect(image.size());
      apps::Convolve3x3(image, w, h, apps::BoxBlurKernel(), 3, expect);
      auto run = runtime::RunConv3x3Vim(sys, image, w, h,
                                        apps::BoxBlurKernel(), 3);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run.value().output, expect);
      break;
    }
    default:
      FAIL();
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PresetAppTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace vcop
