// Unit tests for the IMA ADPCM codec: structural properties, known
// step-table behaviour, encode/decode round-trip quality, and the
// single-sample transition function shared with the coprocessor FSM.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/adpcm.h"
#include "apps/workloads.h"

namespace vcop::apps {
namespace {

TEST(AdpcmTest, DecodeExpandsFourfold) {
  // The §4.1 property the experiments rely on: 4-bit codes become
  // 16-bit samples, so output bytes = 4x input bytes.
  const std::vector<u8> in(100, 0x11);
  std::vector<i16> out(200);
  AdpcmState state;
  AdpcmDecode(in, out, state);
  EXPECT_EQ(out.size() * sizeof(i16), in.size() * 4);
}

TEST(AdpcmTest, ZeroCodeStreamDecaysToSilence) {
  AdpcmState state;
  state.valprev = 1000;
  state.index = 20;
  // Code 0 adds only step>>3 and walks the index down.
  std::vector<i16> out(64);
  const std::vector<u8> in(32, 0x00);
  AdpcmDecode(in, out, state);
  EXPECT_EQ(state.index, 0u);
}

TEST(AdpcmTest, IndexStaysInTableBounds) {
  AdpcmState state;
  // Maximal codes push the index up; it must clamp at 88.
  for (int i = 0; i < 200; ++i) AdpcmDecodeSample(0x7, state);
  EXPECT_LE(state.index, 88u);
  for (int i = 0; i < 400; ++i) AdpcmDecodeSample(0x0, state);
  EXPECT_EQ(state.index, 0u);
}

TEST(AdpcmTest, OutputSaturatesAtInt16Limits) {
  AdpcmState state;
  i16 last = 0;
  for (int i = 0; i < 500; ++i) last = AdpcmDecodeSample(0x7, state);
  EXPECT_EQ(last, 32767);
  for (int i = 0; i < 1000; ++i) last = AdpcmDecodeSample(0xF, state);
  EXPECT_EQ(last, -32768);
}

TEST(AdpcmTest, SignBitNegatesDifference) {
  AdpcmState up;
  AdpcmState down;
  const i16 a = AdpcmDecodeSample(0x3, up);
  const i16 b = AdpcmDecodeSample(0xB, down);  // same magnitude, sign bit
  EXPECT_EQ(a, -b);
}

TEST(AdpcmTest, EncodeDecodeRoundTripTracksSignal) {
  // ADPCM is lossy; decoded audio must track the original within a
  // small RMS error relative to full scale.
  const std::vector<i16> pcm = MakeAudioPcm(4096, 77);
  std::vector<u8> coded(2048);
  AdpcmState enc_state;
  AdpcmEncode(pcm, coded, enc_state);

  std::vector<i16> decoded(4096);
  AdpcmState dec_state;
  AdpcmDecode(coded, decoded, dec_state);

  double err2 = 0;
  double sig2 = 0;
  for (usize i = 0; i < pcm.size(); ++i) {
    const double e = static_cast<double>(pcm[i]) - decoded[i];
    err2 += e * e;
    sig2 += static_cast<double>(pcm[i]) * pcm[i];
  }
  EXPECT_LT(std::sqrt(err2 / sig2), 0.05)
      << "ADPCM should reconstruct within ~5% relative RMS";
}

TEST(AdpcmTest, EncoderAndDecoderPredictorsStayInLockStep) {
  const std::vector<i16> pcm = MakeAudioPcm(1024, 5);
  std::vector<u8> coded(512);
  AdpcmState enc_state;
  AdpcmEncode(pcm, coded, enc_state);

  AdpcmState dec_state;
  std::vector<i16> decoded(1024);
  AdpcmDecode(coded, decoded, dec_state);
  EXPECT_EQ(enc_state.valprev, dec_state.valprev);
  EXPECT_EQ(enc_state.index, dec_state.index);
}

TEST(AdpcmTest, DecodeIsDeterministic) {
  const std::vector<u8> in = MakeAdpcmStream(512, 3);
  std::vector<i16> out1(1024), out2(1024);
  AdpcmState s1, s2;
  AdpcmDecode(in, out1, s1);
  AdpcmDecode(in, out2, s2);
  EXPECT_EQ(out1, out2);
}

TEST(AdpcmTest, StreamingEqualsOneShot) {
  // Decoding in chunks with carried state must equal a single decode —
  // the property that lets the VIM system restart mid-stream.
  const std::vector<u8> in = MakeAdpcmStream(1000, 8);
  std::vector<i16> whole(2000);
  AdpcmState s;
  AdpcmDecode(in, whole, s);

  std::vector<i16> pieces(2000);
  AdpcmState sp;
  usize pos = 0;
  for (const usize chunk : {100u, 400u, 500u}) {
    AdpcmDecode(std::span<const u8>(in).subspan(pos, chunk),
                std::span<i16>(pieces).subspan(2 * pos, 2 * chunk), sp);
    pos += chunk;
  }
  EXPECT_EQ(pieces, whole);
}

TEST(AdpcmTest, KnownVectorFirstSamples) {
  // Pin the exact transition function (guards against table edits):
  // from reset, code 0x7 adds step contributions of step=7.
  AdpcmState state;
  const i16 s = AdpcmDecodeSample(0x7, state);
  // diff = 7 + 3 + 1 + 0 (step>>3 = 0) = 7>>3=0 + 7 + 3 + 1 = 11.
  EXPECT_EQ(s, 11);
  EXPECT_EQ(state.index, 8u);
}

}  // namespace
}  // namespace vcop::apps
