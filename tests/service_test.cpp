// Tests for the ring-transport service layer (os/ring.h, os/service.h):
// split-ring index wrap-around, full-ring backpressure, descriptor
// checksums, the deterministic token bucket, doorbell coalescing,
// completion-interrupt suppression (bit-identical delivery on vs off),
// admission deferral, quarantined-tenant doorbells, and the ring-backed
// VcopdClient end to end.
#include <gtest/gtest.h>

#include <vector>

#include "base/fault.h"
#include "base/units.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/ring.h"
#include "os/service.h"
#include "os/vcopd.h"
#include "runtime/fpga_api.h"

namespace vcop::os {
namespace {

using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

KernelConfig TestConfig() {
  KernelConfig config;  // EPXA1 defaults: 8 x 2KB pages, 8-entry TLB
  return config;
}

// ----- split rings (pure units, no simulator) -----

TEST(SplitRingTest, FullSubmissionRingRejectsWithoutBlocking) {
  SubmissionRing ring(4);
  for (u32 i = 0; i < 4; ++i) {
    RingDescriptor d;
    d.cookie = i + 1;
    ASSERT_TRUE(ring.Publish(d).ok());
  }
  EXPECT_EQ(ring.size(), 4u);
  RingDescriptor extra;
  extra.cookie = 99;
  const Status refused = ring.Publish(extra);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(ring.stats().full_rejections, 1u);
  EXPECT_EQ(ring.stats().published, 4u);

  // Consuming one slot restores admission; order is FIFO.
  EXPECT_EQ(ring.Consume().cookie, 1u);
  EXPECT_TRUE(ring.Publish(extra).ok());
  EXPECT_EQ(ring.Consume().cookie, 2u);
}

/// The free-running u16 indices wrap past 65535 in normal operation;
/// FIFO order and occupancy accounting must survive the wrap.
TEST(SplitRingTest, SubmissionIndexWrapKeepsFifoOrder) {
  SubmissionRing ring(4);
  constexpr u64 kCycles = 70'000;  // > 65536: forces a u16 wrap
  u64 next_publish = 1;
  u64 next_consume = 1;
  // Keep two descriptors in flight so slots are reused at both offsets.
  for (int i = 0; i < 2; ++i) {
    RingDescriptor d;
    d.cookie = next_publish++;
    ASSERT_TRUE(ring.Publish(d).ok());
  }
  while (next_consume <= kCycles) {
    if (next_publish <= kCycles + 2) {
      RingDescriptor d;
      d.cookie = next_publish++;
      ASSERT_TRUE(ring.Publish(d).ok());
    }
    const RingDescriptor head = ring.Consume();
    ASSERT_EQ(head.cookie, next_consume) << "FIFO broke at the wrap";
    ASSERT_TRUE(head.Intact());
    ++next_consume;
  }
  EXPECT_GE(ring.stats().index_wraps, 1u);
  EXPECT_EQ(ring.stats().published, kCycles + 2);
  EXPECT_EQ(ring.stats().consumed, kCycles);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SplitRingTest, CompletionIndexWrapKeepsFifoOrder) {
  CompletionRing ring(2);
  constexpr u64 kCycles = 70'000;
  for (u64 i = 1; i <= kCycles; ++i) {
    CompletionDescriptor c;
    c.cookie = i;
    ASSERT_TRUE(ring.Push(c).ok());
    ASSERT_EQ(ring.Reap().cookie, i);
  }
  EXPECT_GE(ring.stats().index_wraps, 1u);
  EXPECT_TRUE(ring.empty());
}

TEST(SplitRingTest, ChecksumSealsAndDetectsCorruption) {
  SubmissionRing ring(2);
  RingDescriptor d;
  d.cookie = 7;
  d.design = 3;
  d.nparams = 2;
  d.params[0] = 0x1234;
  d.params[1] = 0x5678;
  ASSERT_TRUE(ring.Publish(d).ok());  // Publish seals
  EXPECT_TRUE(ring.Head().Intact());
  ring.Head().params[0] ^= 0xdeadbeefu;  // damage it in "shared memory"
  EXPECT_FALSE(ring.Head().Intact());
  ring.Head().params[0] ^= 0xdeadbeefu;  // repair restores the seal
  EXPECT_TRUE(ring.Head().Intact());
}

TEST(SplitRingTest, RejectsNonPowerOfTwoAndOutOfRangeSizes) {
  EXPECT_DEATH(SubmissionRing ring(3), "");
  EXPECT_DEATH(SubmissionRing ring(0), "");
  EXPECT_DEATH(SubmissionRing ring(65536), "");
  EXPECT_DEATH(CompletionRing ring(6), "");
}

TEST(SplitRingTest, SuppressionLiftReportsPendingCompletions) {
  CompletionRing ring(4);
  EXPECT_FALSE(ring.SetSuppressed(true));  // nothing pending yet
  CompletionDescriptor c;
  c.cookie = 1;
  ASSERT_TRUE(ring.Push(c).ok());
  // Completions arrived during the window: the lift must report them,
  // because their notifications were elided (the virtio re-check).
  EXPECT_TRUE(ring.SetSuppressed(false));
  ring.Reap();
  EXPECT_FALSE(ring.SetSuppressed(false));  // empty ring: no re-check
}

// ----- token bucket -----

TEST(TokenBucketTest, UnlimitedRateAlwaysAdmits) {
  TokenBucket bucket(0, 1, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_EQ(bucket.NextTokenAt(12345), 12345u);
}

TEST(TokenBucketTest, BurstThenExactAccrual) {
  // 2 tokens/s, burst 3; a fresh bucket is full.
  TokenBucket bucket(2, 3, 0);
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_FALSE(bucket.TryTake(0));  // burst exhausted
  // At 2 tokens/s the next token lands exactly half a second out.
  const Picoseconds next = bucket.NextTokenAt(0);
  EXPECT_EQ(next, kPicosecondsPerSecond / 2);
  EXPECT_FALSE(bucket.TryTake(next - 1));
  EXPECT_TRUE(bucket.TryTake(next));
  EXPECT_FALSE(bucket.TryTake(next));
}

TEST(TokenBucketTest, RefundRestoresAndCapacityCaps) {
  TokenBucket bucket(1, 2, 0);
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_FALSE(bucket.TryTake(0));
  bucket.Refund();  // the admitted job bounced off the next stage
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_FALSE(bucket.TryTake(0));
  // A long idle period accrues at most `burst` tokens.
  const Picoseconds much_later = 100 * kPicosecondsPerSecond;
  EXPECT_TRUE(bucket.TryTake(much_later));
  EXPECT_TRUE(bucket.TryTake(much_later));
  EXPECT_FALSE(bucket.TryTake(much_later));
}

// ----- service-layer staging -----

struct VecAddJob {
  TenantId tenant = 0;
  HostBuffer<u32> a, b, c;
  std::vector<u32> expect;
};

VecAddJob StageVecAdd(FpgaSystem& sys, Vcopd& daemon, const char* name,
                      u32 n, u32 seed) {
  VecAddJob job;
  job.tenant = daemon.RegisterTenant(name, 1).value();
  job.a = sys.Allocate<u32>(n).value();
  job.b = sys.Allocate<u32>(n).value();
  job.c = sys.Allocate<u32>(n).value();
  std::vector<u32> a(n), b(n);
  for (u32 i = 0; i < n; ++i) {
    a[i] = seed * 1000003u + i;
    b[i] = seed * 7919u + 3u * i;
  }
  job.a.Fill(a);
  job.b.Fill(b);
  job.expect.resize(n);
  for (u32 i = 0; i < n; ++i) job.expect[i] = a[i] + b[i];
  VcopdClient client(daemon, job.tenant);
  VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjA, job.a,
                        Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjB, job.b,
                        Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjC, job.c,
                        Direction::kOut).ok());
  return job;
}

// ----- ring-backed client end to end -----

TEST(VcopServiceTest, RingBackedSubmitAwaitMatchesExactOutput) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopService service(daemon);
  VecAddJob job = StageVecAdd(sys, daemon, "ringed", 256, 1);
  ASSERT_TRUE(service.AttachTenant(job.tenant).ok());

  VcopdClient client(service, job.tenant);
  EXPECT_TRUE(client.ring_backed());
  const u64 cookie =
      client.SubmitRinged(cp::VecAddBitstream(), {256u}).value();
  const Result<CompletionDescriptor> done = client.Await(cookie);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done.value().cookie, cookie);
  EXPECT_EQ(done.value().code, static_cast<u32>(ErrorCode::kOk));
  EXPECT_GT(done.value().finished_at, done.value().started_at);
  EXPECT_EQ(job.c.ToVector(), job.expect);
  EXPECT_EQ(service.stats().drained_jobs, 1u);
  EXPECT_EQ(service.stats().completions_pushed, 1u);
  EXPECT_EQ(daemon.stats().completed, 1u);
}

TEST(VcopServiceTest, ApiContractOnUnattachedAndDoubleAttach) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopService service(daemon);
  VecAddJob job = StageVecAdd(sys, daemon, "contract", 64, 2);

  RingDescriptor d;
  d.cookie = 1;
  EXPECT_EQ(service.Publish(job.tenant, d).code(), ErrorCode::kNotFound);
  EXPECT_EQ(service.Kick(job.tenant).code(), ErrorCode::kNotFound);
  EXPECT_EQ(service.Reap(job.tenant).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(service.submission_stats(job.tenant), nullptr);

  ASSERT_TRUE(service.AttachTenant(job.tenant).ok());
  EXPECT_EQ(service.AttachTenant(job.tenant).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(service.Reap(job.tenant).status().code(),
            ErrorCode::kFailedPrecondition);  // attached, nothing pending
}

TEST(VcopServiceTest, FullSubmissionRingBackpressuresAtTheEdge) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopServiceConfig config;
  config.ring_entries = 2;
  VcopService service(daemon, config);
  VecAddJob job = StageVecAdd(sys, daemon, "edge", 64, 3);
  ASSERT_TRUE(service.AttachTenant(job.tenant).ok());

  VcopdClient client(service, job.tenant);
  ASSERT_TRUE(client.SubmitRinged(cp::VecAddBitstream(), {64u}).ok());
  // The first kick's drain is still config_.doorbell_latency in the
  // simulated future, so both slots stay occupied right now...
  ASSERT_TRUE(client.SubmitRinged(cp::VecAddBitstream(), {64u}).ok());
  const Result<u64> third =
      client.SubmitRinged(cp::VecAddBitstream(), {64u});
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(service.submission_stats(job.tenant)->full_rejections, 1u);

  // ...and a drained ring admits again.
  ASSERT_TRUE(service.RunUntilQuiescent().ok());
  EXPECT_TRUE(client.SubmitRinged(cp::VecAddBitstream(), {64u}).ok());
  ASSERT_TRUE(service.RunUntilQuiescent().ok());
  EXPECT_EQ(daemon.stats().completed, 3u);
  EXPECT_EQ(job.c.ToVector(), job.expect);
}

TEST(VcopServiceTest, DuplicateDoorbellKicksCoalesceAndRunJobsOnce) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopService service(daemon);
  VecAddJob job = StageVecAdd(sys, daemon, "kicks", 128, 4);
  ASSERT_TRUE(service.AttachTenant(job.tenant).ok());

  const u32 design = service.RegisterDesign(cp::VecAddBitstream());
  for (u64 cookie = 1; cookie <= 3; ++cookie) {
    RingDescriptor d;
    d.cookie = cookie;
    d.design = design;
    d.nparams = 1;
    d.params[0] = 128;
    ASSERT_TRUE(service.Publish(job.tenant, d).ok());
  }
  // One doorbell schedules the drain; the next four are coalesced into
  // it — idempotent, no duplicate drains, no duplicate jobs.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Kick(job.tenant).ok());
  }
  EXPECT_EQ(service.stats().doorbell_kicks, 5u);
  EXPECT_EQ(service.stats().doorbells_coalesced, 4u);

  ASSERT_TRUE(service.RunUntilQuiescent().ok());
  EXPECT_EQ(service.stats().drains, 1u);  // one batch drained all three
  EXPECT_EQ(service.stats().drained_jobs, 3u);
  EXPECT_EQ(service.stats().max_batch, 3u);
  EXPECT_EQ(daemon.stats().submitted, 3u);
  EXPECT_EQ(daemon.stats().completed, 3u);
  EXPECT_EQ(job.c.ToVector(), job.expect);
}

TEST(VcopServiceTest, EmptyTokenBucketDefersDrainUntilAccrual) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopService service(daemon);
  VecAddJob job = StageVecAdd(sys, daemon, "metered", 64, 5);
  // 4 jobs/simulated-second, burst 1: the second and third descriptors
  // must wait out the bucket, not the fabric.
  ASSERT_TRUE(service.AttachTenant(job.tenant, /*admit_rate=*/4,
                                   /*admit_burst=*/1).ok());

  VcopdClient client(service, job.tenant);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.SubmitRinged(cp::VecAddBitstream(), {64u}).ok());
  }
  ASSERT_TRUE(service.RunUntilQuiescent().ok());
  EXPECT_EQ(daemon.stats().completed, 3u);
  EXPECT_GE(service.stats().admission_deferrals, 2u);
  EXPECT_EQ(job.c.ToVector(), job.expect);
  // The admission spacing is visible in the completions: ~250 ms apart.
  VcopdClient reaper(service, job.tenant);
  std::vector<Picoseconds> submitted;
  while (service.HasCompletions(job.tenant)) {
    submitted.push_back(service.Reap(job.tenant).value().submitted_at);
  }
  ASSERT_EQ(submitted.size(), 3u);
  EXPECT_GE(submitted[1] - submitted[0], kPicosecondsPerSecond / 4);
  EXPECT_GE(submitted[2] - submitted[1], kPicosecondsPerSecond / 4);
}

// ----- completion-interrupt suppression -----

struct SuppressionRun {
  std::vector<CompletionDescriptor> completions;
  u64 notifies = 0;
  bool recheck = false;
  VcopServiceStats stats;
};

/// Runs the identical 3-job workload with completion interrupts on or
/// off. The submission schedule is the same either way, so delivery
/// must be bit-identical — suppression elides wake-ups, not content.
SuppressionRun RunSuppression(bool suppressed) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopService service(daemon);
  VecAddJob job = StageVecAdd(sys, daemon, "supp", 128, 6);
  VCOP_CHECK(service.AttachTenant(job.tenant).ok());

  SuppressionRun run;
  service.SetCompletionNotifier(job.tenant, [&run] { ++run.notifies; });
  if (suppressed) service.SetInterruptSuppression(job.tenant, true);

  VcopdClient client(service, job.tenant);
  for (int i = 0; i < 3; ++i) {
    VCOP_CHECK(client.SubmitRinged(cp::VecAddBitstream(), {128u}).ok());
  }
  VCOP_CHECK(service.RunUntilQuiescent().ok());
  if (suppressed) {
    run.recheck = service.SetInterruptSuppression(job.tenant, false);
  }
  while (service.HasCompletions(job.tenant)) {
    run.completions.push_back(service.Reap(job.tenant).value());
  }
  VCOP_CHECK(job.c.ToVector() == job.expect);
  run.stats = service.stats();
  return run;
}

TEST(VcopServiceTest, SuppressionElidesWakeupsButDeliveryIsBitIdentical) {
  const SuppressionRun notified = RunSuppression(/*suppressed=*/false);
  const SuppressionRun silent = RunSuppression(/*suppressed=*/true);

  EXPECT_EQ(notified.notifies, 3u);
  EXPECT_EQ(notified.stats.completions_notified, 3u);
  EXPECT_EQ(notified.stats.completions_suppressed, 0u);
  EXPECT_EQ(silent.notifies, 0u);
  EXPECT_EQ(silent.stats.completions_notified, 0u);
  EXPECT_EQ(silent.stats.completions_suppressed, 3u);
  // Completions landed during the window, so lifting suppression must
  // demand a re-poll before the tenant may sleep.
  EXPECT_TRUE(silent.recheck);

  ASSERT_EQ(notified.completions.size(), 3u);
  ASSERT_EQ(silent.completions.size(), 3u);
  for (usize i = 0; i < 3; ++i) {
    const CompletionDescriptor& a = notified.completions[i];
    const CompletionDescriptor& b = silent.completions[i];
    EXPECT_EQ(a.cookie, b.cookie);
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.submitted_at, b.submitted_at);
    EXPECT_EQ(a.started_at, b.started_at);
    EXPECT_EQ(a.finished_at, b.finished_at);
  }
}

// ----- quarantine -----

/// A wedged datapath quarantines the tenant (vcopd's existing policy);
/// from then on the service ignores its doorbells outright — published
/// descriptors strand in the ring and never reach the daemon.
TEST(VcopServiceTest, QuarantinedTenantDoorbellsAreIgnored) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VcopService service(daemon);
  VecAddJob job = StageVecAdd(sys, daemon, "wedger", 256, 7);
  ASSERT_TRUE(service.AttachTenant(job.tenant).ok());

  FaultPlan plan;
  plan.At(FaultSite::kCpHang, 1);  // wedge the first datapath access
  sys.kernel().InstallFaultPlan(&plan);

  VcopdClient client(service, job.tenant);
  const u64 cookie =
      client.SubmitRinged(cp::VecAddBitstream(), {256u}).value();
  const Result<CompletionDescriptor> done = client.Await(cookie);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done.value().code, static_cast<u32>(ErrorCode::kUnavailable));
  EXPECT_EQ(daemon.stats().quarantined, 1u);

  // The publish still lands in shared memory, but the doorbell is dead.
  ASSERT_TRUE(client.SubmitRinged(cp::VecAddBitstream(), {256u}).ok());
  ASSERT_TRUE(service.Kick(job.tenant).ok());  // and again, directly
  EXPECT_EQ(service.stats().doorbells_ignored, 2u);

  ASSERT_TRUE(service.RunUntilQuiescent().ok());
  EXPECT_EQ(daemon.stats().submitted, 1u);  // the stranded job never ran
  EXPECT_EQ(service.submission_stats(job.tenant)->consumed, 1u);
  sys.kernel().InstallFaultPlan(nullptr);
}

}  // namespace
}  // namespace vcop::os
