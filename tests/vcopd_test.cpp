// Tests for the vcopd service daemon: asynchronous submission,
// admission control, preemptive context switching (dirty pages pending
// at the fault boundary, TLB restore after intervening eviction),
// ASID allocation/wrap, tenant teardown, and the tagged-vs-untagged
// TLB switch policies.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "apps/adpcm.h"
#include "apps/idea.h"
#include "base/fault.h"
#include "cp/adpcm_cp.h"
#include "cp/idea_cp.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/address_space.h"
#include "os/vcopd.h"
#include "runtime/fpga_api.h"

namespace vcop::os {
namespace {

using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

KernelConfig TestConfig() {
  KernelConfig config;  // EPXA1 defaults: 8 x 2KB pages, 8-entry TLB
  return config;
}

// ----- AsidAllocator -----

TEST(AsidAllocatorTest, SkipsReservedZeroAndExhausts) {
  AsidAllocator allocator(4);  // tags {0,1,2,3}, 0 reserved
  EXPECT_EQ(allocator.Allocate().value(), 1u);
  EXPECT_EQ(allocator.Allocate().value(), 2u);
  EXPECT_EQ(allocator.Allocate().value(), 3u);
  const Result<hw::Asid> full = allocator.Allocate();
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), ErrorCode::kResourceExhausted);
}

TEST(AsidAllocatorTest, WrapAroundReuseAfterRelease) {
  AsidAllocator allocator(4);
  EXPECT_EQ(allocator.Allocate().value(), 1u);
  EXPECT_EQ(allocator.Allocate().value(), 2u);
  EXPECT_EQ(allocator.Allocate().value(), 3u);
  allocator.Release(2);
  EXPECT_FALSE(allocator.InUse(2));
  // The cursor keeps advancing: the freed tag is found by wrapping past
  // the reserved 0, not by restarting at the lowest free tag.
  EXPECT_EQ(allocator.Allocate().value(), 2u);
  EXPECT_TRUE(allocator.InUse(2));
  EXPECT_EQ(allocator.in_use(), 4u);  // includes the reserved kernel tag
}

// ----- staging helpers -----

struct VecAddJob {
  TenantId tenant = 0;
  HostBuffer<u32> a, b, c;
  std::vector<u32> expect;
};

VecAddJob StageVecAdd(FpgaSystem& sys, Vcopd& daemon, const char* name,
                      u32 n, u32 seed, u32 weight = 1) {
  VecAddJob job;
  job.tenant = daemon.RegisterTenant(name, weight).value();
  job.a = sys.Allocate<u32>(n).value();
  job.b = sys.Allocate<u32>(n).value();
  job.c = sys.Allocate<u32>(n).value();
  std::vector<u32> a(n), b(n);
  for (u32 i = 0; i < n; ++i) {
    a[i] = seed * 1000003u + i;
    b[i] = seed * 7919u + 3u * i;
  }
  job.a.Fill(a);
  job.b.Fill(b);
  job.expect.resize(n);
  for (u32 i = 0; i < n; ++i) job.expect[i] = a[i] + b[i];
  VcopdClient client(daemon, job.tenant);
  VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjA, job.a,
                        Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjB, job.b,
                        Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjC, job.c,
                        Direction::kOut).ok());
  return job;
}

struct AdpcmJob {
  TenantId tenant = 0;
  HostBuffer<u8> in;
  HostBuffer<i16> out;
  std::vector<i16> expect;
  u32 input_bytes = 0;
};

AdpcmJob StageAdpcm(FpgaSystem& sys, Vcopd& daemon, const char* name,
                    u32 bytes, u32 seed, u32 weight = 1) {
  AdpcmJob job;
  job.tenant = daemon.RegisterTenant(name, weight).value();
  job.input_bytes = bytes;
  std::vector<u8> input(bytes);
  for (u32 i = 0; i < bytes; ++i) {
    input[i] = static_cast<u8>((seed * 2654435761u + i * 97u) >> 13);
  }
  job.in = sys.Allocate<u8>(bytes).value();
  job.in.Fill(input);
  job.out = sys.Allocate<i16>(bytes * 2).value();
  job.expect.resize(bytes * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, job.expect, state);
  VcopdClient client(daemon, job.tenant);
  VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjIn, job.in,
                        Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjOut, job.out,
                        Direction::kOut).ok());
  return job;
}

// ----- asynchronous lifecycle -----

TEST(VcopdTest, SubmitPollWaitRoundTrip) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VecAddJob job = StageVecAdd(sys, daemon, "solo", 512, 1);
  VcopdClient client(daemon, job.tenant);

  const Ticket ticket =
      client.Submit(cp::VecAddBitstream(), {512u}).value();
  EXPECT_EQ(daemon.Poll(ticket), nullptr);  // queued, nothing ran yet
  EXPECT_EQ(daemon.stats().submitted, 1u);

  const Result<JobResult> result = client.Wait(ticket);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().status.ok());
  EXPECT_EQ(job.c.ToVector(), job.expect);

  const JobResult* polled = daemon.Poll(ticket);
  ASSERT_NE(polled, nullptr);
  EXPECT_EQ(polled->ticket, ticket);
  EXPECT_GT(polled->finished_at, polled->started_at);
  EXPECT_EQ(daemon.stats().completed, 1u);
  EXPECT_EQ(polled->preemptions, 0u);  // nobody to preempt for
}

TEST(VcopdTest, CompletionCallbackFiresAtCompletionInstant) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VecAddJob job = StageVecAdd(sys, daemon, "cb", 256, 2);
  VcopdClient client(daemon, job.tenant);

  Picoseconds callback_at = 0;
  std::vector<u32> snapshot;
  const Ticket ticket =
      client
          .Submit(cp::VecAddBitstream(), {256u},
                  [&](const JobResult& r) {
                    callback_at = r.finished_at;
                    // The payload must already be in user memory when
                    // the completion event fires.
                    snapshot = job.c.ToVector();
                  })
          .value();
  ASSERT_TRUE(daemon.RunUntilIdle().ok());

  const JobResult* result = daemon.Poll(ticket);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(callback_at, result->finished_at);
  EXPECT_EQ(snapshot, job.expect);
}

TEST(VcopdTest, BoundedQueueRejectsWithBackpressure) {
  FpgaSystem sys(TestConfig());
  VcopdConfig config;
  config.queue_depth = 2;
  Vcopd daemon(sys.kernel(), config);
  VecAddJob job = StageVecAdd(sys, daemon, "burst", 64, 3);
  VcopdClient client(daemon, job.tenant);

  ASSERT_TRUE(client.Submit(cp::VecAddBitstream(), {64u}).ok());
  ASSERT_TRUE(client.Submit(cp::VecAddBitstream(), {64u}).ok());
  const Result<Ticket> third = client.Submit(cp::VecAddBitstream(), {64u});
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(daemon.stats().rejected, 1u);

  // Draining the queue restores admission.
  ASSERT_TRUE(daemon.RunUntilIdle().ok());
  EXPECT_TRUE(client.Submit(cp::VecAddBitstream(), {64u}).ok());
  ASSERT_TRUE(daemon.RunUntilIdle().ok());
  EXPECT_EQ(daemon.stats().completed, 3u);
}

// ----- preemptive context switching -----

/// Two ADPCM tenants big enough to fault repeatedly, with a time slice
/// far below their runtime: forces preemptions with dirty output pages
/// pending at the fault boundary, TLB snapshots restored after the
/// other tenant evicted entries, and parameter-page re-materialisation.
struct PreemptionRun {
  u64 preemptions = 0;
  VimServiceStats service;
  bool correct = false;
};

PreemptionRun RunContendedAdpcm(bool asid_tagging,
                                bool lazy_writeback = false) {
  KernelConfig kernel_config = TestConfig();
  kernel_config.vim.lazy_writeback = lazy_writeback;
  FpgaSystem sys(kernel_config);
  VcopdConfig config;
  config.policy = ServicePolicy::kFairShare;
  config.time_slice = 50ull * 1000 * 1000;  // 50 us: well below runtime
  config.quantum = 100ull * 1000 * 1000;
  config.asid_tagging = asid_tagging;
  Vcopd daemon(sys.kernel(), config);
  sys.kernel().vim().ResetServiceStats();

  AdpcmJob first = StageAdpcm(sys, daemon, "alpha", 12 * 1024, 1);
  AdpcmJob second = StageAdpcm(sys, daemon, "beta", 12 * 1024, 2);
  VcopdClient c1(daemon, first.tenant);
  VcopdClient c2(daemon, second.tenant);
  const Ticket t1 =
      c1.Submit(cp::AdpcmDecodeBitstream(),
                {first.input_bytes, 0u, 0u}).value();
  const Ticket t2 =
      c2.Submit(cp::AdpcmDecodeBitstream(),
                {second.input_bytes, 0u, 0u}).value();
  VCOP_CHECK(daemon.RunUntilIdle().ok());

  PreemptionRun run;
  run.preemptions = daemon.stats().preemptions;
  run.service = sys.kernel().vim().service_stats();
  run.correct = daemon.Poll(t1)->status.ok() &&
                daemon.Poll(t2)->status.ok() &&
                first.out.ToVector() == first.expect &&
                second.out.ToVector() == second.expect;
  return run;
}

TEST(VcopdTest, PreemptionWithDirtyPagesKeepsResultsExact) {
  const PreemptionRun run = RunContendedAdpcm(/*asid_tagging=*/true);
  EXPECT_TRUE(run.correct);
  EXPECT_GT(run.preemptions, 0u);
  EXPECT_GT(run.service.context_saves, 0u);
  EXPECT_GT(run.service.context_restores, 0u);
  // Dirty output pages were pending at fault boundaries and written
  // back eagerly by SaveContext.
  EXPECT_GT(run.service.pages_written_back_on_save, 0u);
}

TEST(VcopdTest, TaggedTlbAvoidsFullFlushesAndRestoresEntries) {
  const PreemptionRun tagged = RunContendedAdpcm(/*asid_tagging=*/true);
  ASSERT_TRUE(tagged.correct);
  EXPECT_GT(tagged.service.tlb_flushes_avoided, 0u);
  EXPECT_EQ(tagged.service.full_tlb_flushes, 0u);
  // The 8-entry CAM is contended by two streaming tenants, so some
  // snapshot entries must have survived (or been re-installed).
  EXPECT_GT(tagged.service.tlb_entries_restored +
                tagged.service.tlb_flushes_avoided,
            0u);
}

TEST(VcopdTest, UntaggedBaselineFlushesOnEverySwitch) {
  const PreemptionRun untagged = RunContendedAdpcm(/*asid_tagging=*/false);
  ASSERT_TRUE(untagged.correct);  // policy changes timing, never bytes
  EXPECT_GT(untagged.service.full_tlb_flushes, 0u);
  EXPECT_EQ(untagged.service.tlb_flushes_avoided, 0u);
  EXPECT_EQ(untagged.service.tlb_entries_restored, 0u);
}

// ----- mixed multi-tenant correctness -----

TEST(VcopdTest, MixedTenantsMatchSoloByteForByte) {
  FpgaSystem sys(TestConfig());
  VcopdConfig config;
  config.time_slice = 100ull * 1000 * 1000;
  Vcopd daemon(sys.kernel(), config);

  AdpcmJob adpcm = StageAdpcm(sys, daemon, "adpcm", 8 * 1024, 7);
  VecAddJob vecadd = StageVecAdd(sys, daemon, "vecadd", 2048, 8);

  // IDEA tenant staged by hand (in/out are byte buffers the core
  // addresses as 32-bit elements).
  const TenantId idea_tenant = daemon.RegisterTenant("idea").value();
  const u32 idea_bytes = 4 * 1024;
  std::vector<u8> plain(idea_bytes);
  for (u32 i = 0; i < idea_bytes; ++i) {
    plain[i] = static_cast<u8>(i * 131u + 17u);
  }
  apps::IdeaKey key{};
  std::iota(key.begin(), key.end(), u8{1});
  const apps::IdeaSubkeys subkeys = apps::IdeaExpandKey(key);
  std::vector<u8> expect_cipher(idea_bytes);
  apps::IdeaCryptEcb(subkeys, plain, expect_cipher);

  HostBuffer<u8> idea_in = sys.Allocate<u8>(idea_bytes).value();
  idea_in.Fill(plain);
  HostBuffer<u8> idea_out = sys.Allocate<u8>(idea_bytes).value();
  HostBuffer<u16> idea_key =
      sys.Allocate<u16>(static_cast<u32>(subkeys.size())).value();
  idea_key.Fill(std::span<const u16>(subkeys.data(), subkeys.size()));
  VcopdClient idea_client(daemon, idea_tenant);
  ASSERT_TRUE(idea_client.Map(cp::IdeaCoprocessor::kObjIn, idea_in,
                              /*elem_width=*/4, Direction::kIn).ok());
  ASSERT_TRUE(idea_client.Map(cp::IdeaCoprocessor::kObjOut, idea_out,
                              /*elem_width=*/4, Direction::kOut).ok());
  ASSERT_TRUE(idea_client.Map(cp::IdeaCoprocessor::kObjKey, idea_key,
                              Direction::kIn).ok());

  VcopdClient adpcm_client(daemon, adpcm.tenant);
  VcopdClient vecadd_client(daemon, vecadd.tenant);
  ASSERT_TRUE(adpcm_client.Submit(cp::AdpcmDecodeBitstream(),
                                  {adpcm.input_bytes, 0u, 0u}).ok());
  ASSERT_TRUE(idea_client
                  .Submit(cp::IdeaBitstream(),
                          {idea_bytes / 8, cp::IdeaCoprocessor::kModeEcb,
                           0u, 0u})
                  .ok());
  ASSERT_TRUE(vecadd_client.Submit(cp::VecAddBitstream(), {2048u}).ok());

  ASSERT_TRUE(daemon.RunUntilIdle().ok());
  EXPECT_EQ(daemon.stats().completed, 3u);
  EXPECT_EQ(daemon.stats().failed, 0u);
  EXPECT_EQ(adpcm.out.ToVector(), adpcm.expect);
  EXPECT_EQ(vecadd.c.ToVector(), vecadd.expect);
  EXPECT_EQ(idea_out.ToVector(), expect_cipher);
  // Three different designs were time-multiplexed onto the fabric.
  EXPECT_GE(daemon.stats().reconfigurations, 3u);

  const ScheduleReport report = daemon.BuildScheduleReport();
  EXPECT_EQ(report.outcomes.size(), 3u);
  const std::vector<TenantFairness> fairness = report.per_pid();
  EXPECT_EQ(fairness.size(), 3u);
  for (const TenantFairness& f : fairness) {
    EXPECT_EQ(f.jobs, 1u);
    EXPECT_LE(f.p50_turnaround, f.p99_turnaround);
    EXPECT_LE(f.makespan_share, 1.0);
  }
  EXPECT_GE(report.max_wait(), 0u);
}

// ----- tenant lifecycle -----

TEST(VcopdTest, UnregisterTenantLifecycle) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VecAddJob job = StageVecAdd(sys, daemon, "transient", 128, 4);
  VcopdClient client(daemon, job.tenant);

  const Ticket ticket =
      client.Submit(cp::VecAddBitstream(), {128u}).value();
  // Work in flight: teardown must be refused.
  const Status busy = daemon.UnregisterTenant(job.tenant);
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), ErrorCode::kFailedPrecondition);

  ASSERT_TRUE(client.Wait(ticket).ok());
  ASSERT_TRUE(daemon.UnregisterTenant(job.tenant).ok());
  // Gone: further calls fail, and the ASID tag is recyclable.
  EXPECT_EQ(daemon.UnregisterTenant(job.tenant).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(client.Submit(cp::VecAddBitstream(), {128u}).status().code(),
            ErrorCode::kNotFound);
  const TenantId reborn = daemon.RegisterTenant("reborn").value();
  EXPECT_NE(reborn, job.tenant);
}

TEST(VcopdTest, AsidReuseAfterTeardownIsClean) {
  FpgaSystem sys(TestConfig());
  VcopdConfig config;
  config.max_asids = 3;  // tags {0,1,2}: two usable tenants
  Vcopd daemon(sys.kernel(), config);

  VecAddJob first = StageVecAdd(sys, daemon, "first", 256, 5);
  VcopdClient c1(daemon, first.tenant);
  ASSERT_TRUE(c1.Wait(c1.Submit(cp::VecAddBitstream(), {256u}).value())
                  .ok());
  ASSERT_TRUE(daemon.RegisterTenant("second").ok());
  // Tag space full until the first tenant is torn down.
  ASSERT_FALSE(daemon.RegisterTenant("third").ok());
  ASSERT_TRUE(daemon.UnregisterTenant(first.tenant).ok());

  // The recycled tag must start with a clean slate: a new tenant under
  // the reused ASID computes correct results from its own pages.
  VecAddJob reuse = StageVecAdd(sys, daemon, "reuse", 256, 6);
  VcopdClient c3(daemon, reuse.tenant);
  ASSERT_TRUE(c3.Wait(c3.Submit(cp::VecAddBitstream(), {256u}).value())
                  .ok());
  EXPECT_EQ(reuse.c.ToVector(), reuse.expect);
}

// ----- error paths and fault recovery -----

TEST(VcopdTest, UnknownTicketPollsNullAndWaitFailsCleanly) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  EXPECT_EQ(daemon.Poll(1), nullptr);
  const Result<JobResult> wait = daemon.Wait(999);
  ASSERT_FALSE(wait.ok());
  EXPECT_EQ(wait.status().code(), ErrorCode::kNotFound);

  // A retired ticket stays pollable; its neighbour never exists.
  VecAddJob job = StageVecAdd(sys, daemon, "known", 64, 10);
  VcopdClient client(daemon, job.tenant);
  const Ticket ticket = client.Submit(cp::VecAddBitstream(), {64u}).value();
  ASSERT_TRUE(daemon.RunUntilIdle().ok());
  EXPECT_NE(daemon.Poll(ticket), nullptr);
  EXPECT_EQ(daemon.Poll(ticket + 1), nullptr);
}

/// A wedged datapath (injected kCpHang on the victim's first access) is
/// aborted by the VIM watchdog; vcopd quarantines the offending tenant,
/// keeps serving the others, and refuses further submissions from the
/// quarantined one instead of letting it wedge the fabric again.
TEST(VcopdTest, HangAbortQuarantinesTenantAndSparesOthers) {
  FpgaSystem sys(TestConfig());
  Vcopd daemon(sys.kernel());
  VecAddJob victim = StageVecAdd(sys, daemon, "victim", 256, 11);
  VecAddJob bystander = StageVecAdd(sys, daemon, "bystander", 256, 12);
  VcopdClient cv(daemon, victim.tenant);
  VcopdClient cb(daemon, bystander.tenant);

  FaultPlan plan;
  plan.At(FaultSite::kCpHang, 1);  // wedge the first datapath access
  sys.kernel().InstallFaultPlan(&plan);

  const Ticket tv = cv.Submit(cp::VecAddBitstream(), {256u}).value();
  const Ticket tb = cb.Submit(cp::VecAddBitstream(), {256u}).value();
  ASSERT_TRUE(daemon.RunUntilIdle().ok());

  const JobResult* rv = daemon.Poll(tv);
  ASSERT_NE(rv, nullptr);
  ASSERT_FALSE(rv->status.ok());
  EXPECT_EQ(rv->status.code(), ErrorCode::kUnavailable)
      << rv->status.ToString();
  EXPECT_EQ(daemon.stats().quarantined, 1u);
  EXPECT_GE(sys.kernel().vim().service_stats().watchdog_hang_aborts, 1u);

  // The bystander completed exactly despite sharing the fabric.
  const JobResult* rb = daemon.Poll(tb);
  ASSERT_NE(rb, nullptr);
  EXPECT_TRUE(rb->status.ok()) << rb->status.ToString();
  EXPECT_EQ(bystander.c.ToVector(), bystander.expect);

  // Submissions from the quarantined tenant are refused from now on.
  const Result<Ticket> refused = cv.Submit(cp::VecAddBitstream(), {256u});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(daemon.BuildScheduleReport().quarantines, 1u);

  // The healthy tenant keeps full service after the abort.
  const Ticket tb2 = cb.Submit(cp::VecAddBitstream(), {256u}).value();
  ASSERT_TRUE(cb.Wait(tb2).ok());
  EXPECT_EQ(bystander.c.ToVector(), bystander.expect);
}

// ----- coexistence with the blocking kernel path -----

TEST(VcopdTest, KernelBlockingPathStillWorksAfterDaemonIdles) {
  FpgaSystem sys(TestConfig());
  {
    Vcopd daemon(sys.kernel());
    VecAddJob job = StageVecAdd(sys, daemon, "tenant", 256, 9);
    VcopdClient client(daemon, job.tenant);
    ASSERT_TRUE(
        client.Wait(client.Submit(cp::VecAddBitstream(), {256u}).value())
            .ok());
    EXPECT_EQ(job.c.ToVector(), job.expect);
  }  // daemon restores the kernel binding on destruction

  // The classic exclusive blocking path on the very same kernel.
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  HostBuffer<u32> a = sys.Allocate<u32>(128).value();
  HostBuffer<u32> b = sys.Allocate<u32>(128).value();
  HostBuffer<u32> c = sys.Allocate<u32>(128).value();
  std::vector<u32> va(128, 3), vb(128, 4);
  a.Fill(va);
  b.Fill(vb);
  ASSERT_TRUE(sys.Map(cp::VecAddCoprocessor::kObjA, a,
                      Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(cp::VecAddCoprocessor::kObjB, b,
                      Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(cp::VecAddCoprocessor::kObjC, c,
                      Direction::kOut).ok());
  const Result<ExecutionReport> report = sys.Execute({128u});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(c.ToVector(), std::vector<u32>(128, 7));
}

// ----- reconfiguration-aware serving (DESIGN.md §15) -----

KernelConfig SlottedConfig(u32 slots) {
  KernelConfig config = TestConfig();
  config.config_slots = slots;
  return config;
}

/// With one slot per distinct design, only the first use of each
/// design pays a full configuration; every later alternation is a slot
/// activation.
TEST(VcopdReconfigTest, SlotCacheActivatesInsteadOfReconfiguring) {
  FpgaSystem sys(SlottedConfig(3));
  Vcopd daemon(sys.kernel());

  AdpcmJob adpcm = StageAdpcm(sys, daemon, "adpcm", 2 * 1024, 21);
  VecAddJob vecadd = StageVecAdd(sys, daemon, "vecadd", 512, 22);
  VcopdClient ca(daemon, adpcm.tenant);
  VcopdClient cv(daemon, vecadd.tenant);
  // Two designs alternating over three rounds: a, v, a, v, a, v.
  for (u32 round = 0; round < 3; ++round) {
    ASSERT_TRUE(ca.Submit(cp::AdpcmDecodeBitstream(),
                          {adpcm.input_bytes, 0u, 0u}).ok());
    ASSERT_TRUE(cv.Submit(cp::VecAddBitstream(), {512u}).ok());
  }
  ASSERT_TRUE(daemon.RunUntilIdle().ok());

  EXPECT_EQ(daemon.stats().completed, 6u);
  EXPECT_EQ(adpcm.out.ToVector(), adpcm.expect);
  EXPECT_EQ(vecadd.c.ToVector(), vecadd.expect);
  // First use of each design is a miss; every alternation after that
  // activates a resident slot.
  EXPECT_EQ(daemon.stats().reconfigurations, 2u);
  EXPECT_GE(daemon.stats().slot_activations, 4u);
  EXPECT_GT(daemon.stats().total_activation_time, 0u);

  const hw::ConfigSlotStats& slots = sys.kernel().fabric().slot_stats();
  EXPECT_EQ(slots.misses, 2u);
  EXPECT_EQ(slots.evictions, 0u);  // 2 designs never contend for 3 slots
  EXPECT_EQ(slots.hits, daemon.stats().slot_activations);
  // Activating a resident design is orders of magnitude cheaper than
  // configuring it: the whole activation budget stays below a single
  // full configuration.
  EXPECT_LT(slots.activation_time, slots.configure_time / 2);

  const ScheduleReport report = daemon.BuildScheduleReport();
  EXPECT_EQ(report.slot_activations, daemon.stats().slot_activations);
  EXPECT_EQ(report.total_activation_time,
            daemon.stats().total_activation_time);
}

/// A preempted tenant whose design is still resident on resume pays an
/// activation, not a reconfiguration: its job counts exactly the one
/// initial configuration.
TEST(VcopdReconfigTest, ResumeViaActivationWhenDesignStaysResident) {
  FpgaSystem sys(SlottedConfig(3));
  VcopdConfig config;
  config.policy = ServicePolicy::kFairShare;
  config.time_slice = 50ull * 1000 * 1000;  // 50 us: forces preemption
  config.quantum = 100ull * 1000 * 1000;
  Vcopd daemon(sys.kernel(), config);

  AdpcmJob first = StageAdpcm(sys, daemon, "alpha", 12 * 1024, 24);
  AdpcmJob second = StageAdpcm(sys, daemon, "beta", 12 * 1024, 25);
  VecAddJob vecadd = StageVecAdd(sys, daemon, "gamma", 2048, 26);
  VcopdClient c1(daemon, first.tenant);
  VcopdClient c2(daemon, second.tenant);
  VcopdClient c3(daemon, vecadd.tenant);
  const Ticket t1 = c1.Submit(cp::AdpcmDecodeBitstream(),
                              {first.input_bytes, 0u, 0u}).value();
  ASSERT_TRUE(c2.Submit(cp::AdpcmDecodeBitstream(),
                        {second.input_bytes, 0u, 0u}).ok());
  ASSERT_TRUE(c3.Submit(cp::VecAddBitstream(), {2048u}).ok());
  ASSERT_TRUE(daemon.RunUntilIdle().ok());

  EXPECT_GT(daemon.stats().preemptions, 0u);
  const JobResult* r1 = daemon.Poll(t1);
  ASSERT_NE(r1, nullptr);
  ASSERT_TRUE(r1->status.ok());
  EXPECT_GT(r1->preemptions, 0u);
  // Both designs fit the 3-slot cache, so resumed slices re-activate
  // instead of reconfiguring: the job paid exactly one configuration.
  EXPECT_EQ(r1->reconfigurations, 1u);
  EXPECT_EQ(first.out.ToVector(), first.expect);
  EXPECT_EQ(second.out.ToVector(), second.expect);
  EXPECT_EQ(vecadd.c.ToVector(), vecadd.expect);
  EXPECT_EQ(sys.kernel().fabric().slot_stats().evictions, 0u);
}

/// The interleaving the satellite task names: a tenant is preempted,
/// other designs flood a cache smaller than the design working set and
/// evict its slot, and the resumed slice pays a full reconfiguration —
/// visible as reconfigurations > 1 on a single job.
TEST(VcopdReconfigTest, ResumeViaCacheMissAfterEviction) {
  FpgaSystem sys(SlottedConfig(2));
  VcopdConfig config;
  config.policy = ServicePolicy::kFairShare;
  config.time_slice = 50ull * 1000 * 1000;
  config.quantum = 100ull * 1000 * 1000;
  Vcopd daemon(sys.kernel(), config);

  // Three distinct designs against two slots: while alpha is
  // preempted, idea + vecadd occupy both slots and evict adpcm.
  AdpcmJob alpha = StageAdpcm(sys, daemon, "alpha", 12 * 1024, 27);
  VecAddJob vecadd = StageVecAdd(sys, daemon, "vec", 2048, 28);
  const TenantId idea_tenant = daemon.RegisterTenant("idea").value();
  const u32 idea_bytes = 8 * 1024;
  std::vector<u8> plain(idea_bytes);
  for (u32 i = 0; i < idea_bytes; ++i) {
    plain[i] = static_cast<u8>(i * 131u + 17u);
  }
  apps::IdeaKey key{};
  std::iota(key.begin(), key.end(), u8{1});
  const apps::IdeaSubkeys subkeys = apps::IdeaExpandKey(key);
  std::vector<u8> expect_cipher(idea_bytes);
  apps::IdeaCryptEcb(subkeys, plain, expect_cipher);
  HostBuffer<u8> idea_in = sys.Allocate<u8>(idea_bytes).value();
  idea_in.Fill(plain);
  HostBuffer<u8> idea_out = sys.Allocate<u8>(idea_bytes).value();
  HostBuffer<u16> idea_key =
      sys.Allocate<u16>(static_cast<u32>(subkeys.size())).value();
  idea_key.Fill(std::span<const u16>(subkeys.data(), subkeys.size()));
  VcopdClient idea_client(daemon, idea_tenant);
  ASSERT_TRUE(idea_client.Map(cp::IdeaCoprocessor::kObjIn, idea_in,
                              /*elem_width=*/4, Direction::kIn).ok());
  ASSERT_TRUE(idea_client.Map(cp::IdeaCoprocessor::kObjOut, idea_out,
                              /*elem_width=*/4, Direction::kOut).ok());
  ASSERT_TRUE(idea_client.Map(cp::IdeaCoprocessor::kObjKey, idea_key,
                              Direction::kIn).ok());

  VcopdClient ca(daemon, alpha.tenant);
  VcopdClient cv(daemon, vecadd.tenant);
  const Ticket ta = ca.Submit(cp::AdpcmDecodeBitstream(),
                              {alpha.input_bytes, 0u, 0u}).value();
  ASSERT_TRUE(idea_client
                  .Submit(cp::IdeaBitstream(),
                          {idea_bytes / 8, cp::IdeaCoprocessor::kModeEcb,
                           0u, 0u})
                  .ok());
  ASSERT_TRUE(cv.Submit(cp::VecAddBitstream(), {2048u}).ok());
  ASSERT_TRUE(daemon.RunUntilIdle().ok());

  const JobResult* ra = daemon.Poll(ta);
  ASSERT_NE(ra, nullptr);
  ASSERT_TRUE(ra->status.ok());
  EXPECT_GT(ra->preemptions, 0u);
  // The resumed slice found its slot evicted: >= 2 full
  // configurations charged to one job.
  EXPECT_GE(ra->reconfigurations, 2u);
  EXPECT_GT(sys.kernel().fabric().slot_stats().evictions, 0u);
  EXPECT_EQ(alpha.out.ToVector(), alpha.expect);
  EXPECT_EQ(idea_out.ToVector(), expect_cipher);
  EXPECT_EQ(vecadd.c.ToVector(), vecadd.expect);

  // Satellite 1's under-reporting fix: the schedule report rolls the
  // per-slice count up, not just a first-slice bool.
  const ScheduleReport report = daemon.BuildScheduleReport();
  u32 alpha_reconfigs = 0;
  for (const JobOutcome& outcome : report.outcomes) {
    if (outcome.bitstream == cp::AdpcmDecodeBitstream().name) {
      alpha_reconfigs += outcome.reconfigurations;
    }
  }
  EXPECT_GE(alpha_reconfigs, 2u);
}

/// Design-affinity DRR converts design ping-pong into batched service
/// without starving anyone: same fleet, fewer reconfigurations, exact
/// outputs, and every job completes.
TEST(VcopdReconfigTest, AffinityReducesSwitchesAndKeepsOutputsExact) {
  VcopdStats stats_off, stats_on;
  for (const bool affinity : {false, true}) {
    FpgaSystem sys(TestConfig());
    VcopdConfig config;
    config.policy = ServicePolicy::kFairShare;
    config.time_slice = 50ull * 1000 * 1000;
    config.design_affinity = affinity;
    Vcopd daemon(sys.kernel(), config);

    AdpcmJob adpcm = StageAdpcm(sys, daemon, "adpcm", 4 * 1024, 29);
    VecAddJob vecadd = StageVecAdd(sys, daemon, "vecadd", 1024, 30);
    VcopdClient ca(daemon, adpcm.tenant);
    VcopdClient cv(daemon, vecadd.tenant);
    for (u32 round = 0; round < 3; ++round) {
      ASSERT_TRUE(ca.Submit(cp::AdpcmDecodeBitstream(),
                            {adpcm.input_bytes, 0u, 0u}).ok());
      ASSERT_TRUE(cv.Submit(cp::VecAddBitstream(), {1024u}).ok());
    }
    ASSERT_TRUE(daemon.RunUntilIdle().ok());
    EXPECT_EQ(daemon.stats().completed, 6u);
    EXPECT_EQ(daemon.stats().failed, 0u);
    EXPECT_EQ(adpcm.out.ToVector(), adpcm.expect);
    EXPECT_EQ(vecadd.c.ToVector(), vecadd.expect);
    (affinity ? stats_on : stats_off) = daemon.stats();
  }
  // Affinity batches same-design jobs (bounded by the skip budget), so
  // it cannot switch more than strict ring order does.
  EXPECT_LE(stats_on.reconfigurations, stats_off.reconfigurations);
  EXPECT_GT(stats_on.reconfigurations, 0u);
}

/// design_affinity defaults from the kernel platform key when the
/// VcopdConfig leaves it off: both spellings behave identically.
TEST(VcopdReconfigTest, AffinityPlatformKeyMatchesExplicitConfig) {
  VcopdStats by_key, by_config;
  for (const bool via_key : {true, false}) {
    KernelConfig kernel_config = TestConfig();
    VcopdConfig config;
    config.policy = ServicePolicy::kFairShare;
    config.time_slice = 50ull * 1000 * 1000;
    if (via_key) {
      kernel_config.design_affinity = true;
    } else {
      config.design_affinity = true;
    }
    FpgaSystem sys(kernel_config);
    Vcopd daemon(sys.kernel(), config);
    AdpcmJob adpcm = StageAdpcm(sys, daemon, "adpcm", 4 * 1024, 31);
    VecAddJob vecadd = StageVecAdd(sys, daemon, "vecadd", 1024, 32);
    VcopdClient ca(daemon, adpcm.tenant);
    VcopdClient cv(daemon, vecadd.tenant);
    for (u32 round = 0; round < 2; ++round) {
      ASSERT_TRUE(ca.Submit(cp::AdpcmDecodeBitstream(),
                            {adpcm.input_bytes, 0u, 0u}).ok());
      ASSERT_TRUE(cv.Submit(cp::VecAddBitstream(), {1024u}).ok());
    }
    ASSERT_TRUE(daemon.RunUntilIdle().ok());
    EXPECT_EQ(adpcm.out.ToVector(), adpcm.expect);
    EXPECT_EQ(vecadd.c.ToVector(), vecadd.expect);
    (via_key ? by_key : by_config) = daemon.stats();
  }
  EXPECT_EQ(by_key.reconfigurations, by_config.reconfigurations);
  EXPECT_EQ(by_key.preemptions, by_config.preemptions);
  EXPECT_EQ(by_key.dispatches, by_config.dispatches);
}

// ----- lazy context write-back (DESIGN.md §15) -----

TEST(VcopdLazyWritebackTest, DefersSaveTimeSweepAndStaysExact) {
  const PreemptionRun lazy =
      RunContendedAdpcm(/*asid_tagging=*/true, /*lazy_writeback=*/true);
  EXPECT_TRUE(lazy.correct);
  EXPECT_GT(lazy.preemptions, 0u);
  // Every context save deferred its dirty sweep...
  EXPECT_GT(lazy.service.lazy_context_saves, 0u);
  EXPECT_GT(lazy.service.pages_writeback_deferred, 0u);
  EXPECT_EQ(lazy.service.pages_written_back_on_save, 0u);
  // ...and the deferred pages settled on demand (eviction by the other
  // tenant or the end-of-job flush), which is where the bytes reached
  // user memory — `correct` above proves none were lost.
  EXPECT_GT(lazy.service.deferred_writebacks, 0u);
}

TEST(VcopdLazyWritebackTest, MatchesEagerResultsWithFewerSaveWrites) {
  const PreemptionRun eager =
      RunContendedAdpcm(/*asid_tagging=*/true, /*lazy_writeback=*/false);
  const PreemptionRun lazy =
      RunContendedAdpcm(/*asid_tagging=*/true, /*lazy_writeback=*/true);
  ASSERT_TRUE(eager.correct);
  ASSERT_TRUE(lazy.correct);
  // The eager baseline pays its write-backs inside SaveContext; lazy
  // pays none there.
  EXPECT_GT(eager.service.pages_written_back_on_save, 0u);
  EXPECT_EQ(lazy.service.pages_written_back_on_save, 0u);
  EXPECT_EQ(eager.service.lazy_context_saves, 0u);
  EXPECT_EQ(eager.service.deferred_writebacks, 0u);
}

}  // namespace
}  // namespace vcop::os
