// End-to-end integration for the adpcmdecode application (§4.1):
// coprocessor output must be bit-exact against the software reference
// for every input size of Figure 8, including those that overflow the
// dual-port RAM and page-fault their way through.
#include <gtest/gtest.h>

#include "apps/adpcm.h"
#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "cp/adpcm_cp.h"
#include "cp/registry.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;
using runtime::RunAdpcmVim;

std::vector<i16> SoftwareDecode(std::span<const u8> input) {
  std::vector<i16> out(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, out, state);
  return out;
}

TEST(AdpcmIntegrationTest, BitExactAgainstSoftwareSmall) {
  FpgaSystem sys(Epxa1Config());
  const std::vector<u8> input = apps::MakeAdpcmStream(256, /*seed=*/1);
  auto run = RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, SoftwareDecode(input));
}

// The paper's three Figure-8 input sizes. 2 KB fits (1 input page +
// 4 output pages); 4 KB and 8 KB fault.
class AdpcmFigure8SizesTest : public ::testing::TestWithParam<usize> {};

TEST_P(AdpcmFigure8SizesTest, BitExactAndFaultBehaviourMatchesPaper) {
  const usize input_bytes = GetParam();
  FpgaSystem sys(Epxa1Config());
  const std::vector<u8> input = apps::MakeAdpcmStream(input_bytes, 42);
  auto run = RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, SoftwareDecode(input));

  const os::ExecutionReport& r = run.value().report;
  const u64 data_pages = r.vim.faults;
  if (input_bytes <= 2048) {
    // "For an input data size of 2 KB [...] all data can fit the
    // dual-port RAM and the application execution completes without
    // causing page faults" — beyond the compulsory first-touch ones
    // (1 input page + 4 output pages), and crucially no evictions.
    EXPECT_LE(data_pages, 5u);
    EXPECT_EQ(r.vim.evictions, 0u);
  } else {
    // "For all other input sizes, page faults occur."
    EXPECT_GT(r.vim.evictions, 0u);
  }
  // Output = 4x input: every output page must be written back.
  EXPECT_EQ(r.vim.bytes_written_back, input_bytes * 4);
}

INSTANTIATE_TEST_SUITE_P(Figure8Sizes, AdpcmFigure8SizesTest,
                         ::testing::Values(2048, 4096, 8192));

TEST(AdpcmIntegrationTest, SpeedupOverSoftwareInPaperBand) {
  // Figure 8 reports 1.5x-1.6x for the VIM-based coprocessor over pure
  // software. Allow a generous band: the shape matters, not the third
  // decimal.
  FpgaSystem sys(Epxa1Config());
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 7);
  auto run = RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const apps::ArmTimingModel arm;
  const Picoseconds sw = arm.AdpcmDecodeTime(input.size());
  const double speedup = static_cast<double>(sw) /
                         static_cast<double>(run.value().report.total);
  EXPECT_GT(speedup, 1.2) << "coprocessor should beat software";
  EXPECT_LT(speedup, 2.2) << "adpcm speedup should stay modest (paper: 1.6x)";
}

TEST(AdpcmIntegrationTest, ImuManagementShareIsSmall) {
  // §4.1: "the software execution time for IMU management [...] is up
  // to 2.5% of the total execution time."
  FpgaSystem sys(Epxa1Config());
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 3);
  auto run = RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const os::ExecutionReport& r = run.value().report;
  EXPECT_LT(static_cast<double>(r.t_imu) / static_cast<double>(r.total),
            0.025);
}

TEST(AdpcmIntegrationTest, PredictorStateParametersAreHonoured) {
  // Start the coprocessor mid-stream: decode the second half with the
  // predictor state left by the first half, via the scalar parameters.
  const std::vector<u8> input = apps::MakeAdpcmStream(512, 9);
  const auto full = SoftwareDecode(input);

  // Software: state after the first half.
  apps::AdpcmState state;
  std::vector<i16> tmp(512);
  apps::AdpcmDecode(std::span<const u8>(input).subspan(0, 256), tmp, state);

  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::AdpcmDecodeBitstream()).ok());
  auto in = sys.Allocate<u8>(256);
  auto out = sys.Allocate<i16>(512);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(out.ok());
  in.value().Fill(std::span<const u8>(input).subspan(256, 256));
  ASSERT_TRUE(sys.Map(cp::AdpcmDecodeCoprocessor::kObjIn, in.value(),
                      os::Direction::kIn)
                  .ok());
  ASSERT_TRUE(sys.Map(cp::AdpcmDecodeCoprocessor::kObjOut, out.value(),
                      os::Direction::kOut)
                  .ok());
  auto report = sys.Execute(
      {256u, static_cast<u32>(static_cast<u16>(state.valprev)),
       static_cast<u32>(state.index)});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::vector<i16> second_half = out.value().ToVector();
  for (usize i = 0; i < 512; ++i) {
    ASSERT_EQ(second_half[i], full[512 + i]) << i;
  }
}

}  // namespace
}  // namespace vcop
