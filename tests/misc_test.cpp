// Remaining coverage: the DirectPort used by the manual runtime, the
// waveform tracer's rendered formats (golden fragments), and the
// report/describe helpers on manual runs.
#include <gtest/gtest.h>

#include "cp/vecadd_cp.h"
#include "mem/dp_ram.h"
#include "runtime/manual_runtime.h"
#include "runtime/report.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace vcop {
namespace {

// ----- DirectPort -----

class DirectPortTest : public ::testing::Test {
 protected:
  DirectPortTest()
      : dp_(4096),
        port_(sim_, dp_),
        domain_(sim_.AddClockDomain("cp", Frequency::MHz(40))) {
    port_.BindCpDomain(domain_);
  }

  sim::Simulator sim_;
  mem::DualPortRam dp_;
  runtime::DirectPort port_;
  sim::ClockDomain& domain_;
};

TEST_F(DirectPortTest, SingleCycleAccess) {
  port_.SetObject(0, /*base=*/256, /*elem_width=*/4);
  dp_.WriteWord(mem::DualPortRam::Port::kProcessor, 256 + 12, 4, 0xFEED);
  port_.Start();
  ASSERT_TRUE(port_.CanIssue());
  hw::CpAccess access;
  access.object = 0;
  access.index = 3;
  port_.Issue(access);
  EXPECT_FALSE(port_.ResponseReady());  // not until the next edge
  sim_.RunUntilTime(Frequency::MHz(40).EdgeTime(1));
  ASSERT_TRUE(port_.ResponseReady());
  EXPECT_EQ(port_.ConsumeResponse(), 0xFEEDu);
}

TEST_F(DirectPortTest, RegisterObjectsLiveOutsideDpRam) {
  port_.SetRegisterObject(2, /*base=*/0, /*elem_width=*/2);
  const u8 regs[4] = {0x34, 0x12, 0x78, 0x56};
  port_.WriteRegisterFile(0, regs);
  port_.Start();
  hw::CpAccess access;
  access.object = 2;
  access.index = 1;
  port_.Issue(access);
  sim_.RunUntilTime(Frequency::MHz(40).EdgeTime(1));
  EXPECT_EQ(port_.ConsumeResponse(), 0x5678u);
  // The DP-RAM was never touched.
  EXPECT_EQ(dp_.bytes_read(mem::DualPortRam::Port::kCoprocessor), 0u);
}

TEST_F(DirectPortTest, FixedLayoutIsThePortabilityTrap) {
  // The same (object, index) resolves to a *different* physical address
  // when the layout constant changes — the exact coupling the paper's
  // virtual interface removes.
  port_.SetObject(1, 0, 4);
  port_.Start();
  hw::CpAccess access;
  access.object = 1;
  access.index = 0;
  dp_.WriteWord(mem::DualPortRam::Port::kProcessor, 0, 4, 111);
  dp_.WriteWord(mem::DualPortRam::Port::kProcessor, 512, 4, 222);
  port_.Issue(access);
  sim_.RunUntilTime(Frequency::MHz(40).EdgeTime(1));
  EXPECT_EQ(port_.ConsumeResponse(), 111u);
  port_.SetObject(1, 512, 4);  // "ported" to a new layout
  port_.Issue(access);
  sim_.RunUntilTime(Frequency::MHz(40).EdgeTime(3));
  EXPECT_EQ(port_.ConsumeResponse(), 222u);
}

TEST_F(DirectPortTest, FinishHandshake) {
  port_.Start();
  EXPECT_FALSE(port_.finished());
  port_.SignalFinish();
  EXPECT_TRUE(port_.finished());
  EXPECT_FALSE(port_.CanIssue());  // stopped
}

// ----- tracer golden fragments -----

TEST(TraceGoldenTest, AsciiLaneShapes) {
  sim::Tracer tracer;
  const sim::SignalId clk = tracer.AddSignal("clk", 1);
  for (u64 edge = 0; edge < 8; ++edge) {
    tracer.Record(clk, edge * 100, edge % 2);
  }
  const std::string art = tracer.ToAscii(0, 700, 100);
  EXPECT_EQ(art, "clk  _/\\/\\/\\/\n");
}

TEST(TraceGoldenTest, VcdHeaderExact) {
  sim::Tracer tracer;
  tracer.AddSignal("a", 1);
  tracer.Record(0, 5, 1);
  const std::string vcd = tracer.ToVcd();
  EXPECT_EQ(vcd,
            "$timescale 1ps $end\n"
            "$scope module vcop $end\n"
            "$var wire 1 ! a $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#5\n"
            "1!\n");
}

// ----- manual run description -----

TEST(ReportMiscTest, ManualRunDescribe) {
  runtime::ManualRunResult result;
  result.total = 3'000'000'000ULL;
  result.t_hw = 2'000'000'000ULL;
  result.t_copy = 900'000'000ULL;
  const std::string s = runtime::Describe(result);
  EXPECT_NE(s.find("3.00"), std::string::npos);
  EXPECT_NE(s.find("copies 0.90"), std::string::npos);
}

}  // namespace
}  // namespace vcop
