// Unit tests for the IMU's TLB (CAM behaviour, dirty/accessed bits,
// statistics) and the AR/SR register packing helpers.
#include <gtest/gtest.h>

#include "hw/imu_regs.h"
#include "hw/tlb.h"
#include "os/address_space.h"

namespace vcop::hw {
namespace {

TEST(TlbTest, MissOnEmpty) {
  Tlb tlb(8);
  EXPECT_FALSE(tlb.Lookup(0, 0).has_value());
  EXPECT_EQ(tlb.stats().lookups, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
  EXPECT_EQ(tlb.stats().hits, 0u);
}

TEST(TlbTest, InstallThenHit) {
  Tlb tlb(8);
  tlb.Install(3, /*object=*/2, /*vpage=*/5, /*frame=*/7);
  const auto idx = tlb.Lookup(2, 5);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 3u);
  EXPECT_EQ(tlb.entry(3).frame, 7u);
  EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(TlbTest, TagIncludesObjectAndPage) {
  Tlb tlb(8);
  tlb.Install(0, 2, 5, 7);
  EXPECT_FALSE(tlb.Lookup(2, 6).has_value());  // same object, other page
  EXPECT_FALSE(tlb.Lookup(3, 5).has_value());  // other object, same page
  EXPECT_TRUE(tlb.Lookup(2, 5).has_value());
}

TEST(TlbTest, ProbeDoesNotTouchStats) {
  Tlb tlb(4);
  tlb.Install(0, 1, 1, 1);
  EXPECT_TRUE(tlb.Probe(1, 1).has_value());
  EXPECT_FALSE(tlb.Probe(1, 2).has_value());
  EXPECT_EQ(tlb.stats().lookups, 0u);
}

TEST(TlbTest, InvalidateReturnsOldEntry) {
  Tlb tlb(4);
  tlb.Install(1, 3, 9, 2);
  tlb.MarkDirty(1);
  const TlbEntry old = tlb.Invalidate(1);
  EXPECT_TRUE(old.valid);
  EXPECT_TRUE(old.dirty);
  EXPECT_EQ(old.object, 3u);
  EXPECT_EQ(old.vpage, 9u);
  EXPECT_FALSE(tlb.entry(1).valid);
  EXPECT_FALSE(tlb.Lookup(3, 9).has_value());
}

TEST(TlbTest, InstallClearsDirty) {
  Tlb tlb(4);
  tlb.Install(0, 1, 1, 1);
  tlb.MarkDirty(0);
  tlb.Install(0, 1, 2, 1);
  EXPECT_FALSE(tlb.entry(0).dirty);
}

TEST(TlbTest, AccessedBitsHarvest) {
  Tlb tlb(4);
  tlb.Install(0, 1, 0, 5);
  tlb.Install(1, 1, 1, 6);
  tlb.Install(2, 1, 2, 7);
  // Touch entries 0 and 2 via lookups.
  ASSERT_TRUE(tlb.Lookup(1, 0).has_value());
  ASSERT_TRUE(tlb.Lookup(1, 2).has_value());
  const std::vector<mem::FrameId> touched = tlb.HarvestAccessed();
  EXPECT_EQ(touched, (std::vector<mem::FrameId>{5, 7}));
  // Bits cleared: a second harvest is empty.
  EXPECT_TRUE(tlb.HarvestAccessed().empty());
}

TEST(TlbTest, FindByFrameAndFindFree) {
  Tlb tlb(3);
  EXPECT_EQ(tlb.FindFree(), 0u);
  tlb.Install(0, 1, 0, 9);
  tlb.Install(1, 1, 1, 4);
  EXPECT_EQ(tlb.FindByFrame(4), 1u);
  EXPECT_FALSE(tlb.FindByFrame(5).has_value());
  EXPECT_EQ(tlb.FindFree(), 2u);
  tlb.Install(2, 1, 2, 5);
  EXPECT_FALSE(tlb.FindFree().has_value());
}

TEST(TlbTest, InvalidateAllAndResetStats) {
  Tlb tlb(4);
  tlb.Install(0, 1, 0, 0);
  tlb.Lookup(1, 0);
  tlb.InvalidateAll();
  tlb.ResetStats();
  EXPECT_FALSE(tlb.Probe(1, 0).has_value());
  EXPECT_EQ(tlb.stats().lookups, 0u);
}

// ----- ASID tagging -----

TEST(TlbTest, AsidTagsDisambiguateIdenticalVirtualPages) {
  Tlb tlb(8);
  // Two tenants map the same (object, vpage) to different frames.
  tlb.Install(0, /*object=*/2, /*vpage=*/5, /*frame=*/1, /*asid=*/1);
  tlb.Install(1, /*object=*/2, /*vpage=*/5, /*frame=*/6, /*asid=*/2);
  const auto t1 = tlb.Lookup(2, 5, /*asid=*/1);
  const auto t2 = tlb.Lookup(2, 5, /*asid=*/2);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(tlb.entry(*t1).frame, 1u);
  EXPECT_EQ(tlb.entry(*t2).frame, 6u);
  // A third tenant sees neither.
  EXPECT_FALSE(tlb.Lookup(2, 5, /*asid=*/3).has_value());
}

TEST(TlbTest, InvalidateAsidOnlyDropsMatchingEntries) {
  Tlb tlb(8);
  tlb.Install(0, 1, 0, 0, /*asid=*/1);
  tlb.Install(1, 1, 1, 1, /*asid=*/1);
  tlb.Install(2, 1, 0, 2, /*asid=*/2);
  const u64 generation = tlb.generation();
  EXPECT_EQ(tlb.InvalidateAsid(1), 2u);
  EXPECT_FALSE(tlb.Probe(1, 0, 1).has_value());
  EXPECT_FALSE(tlb.Probe(1, 1, 1).has_value());
  EXPECT_TRUE(tlb.Probe(1, 0, 2).has_value());  // other tenant survives
  EXPECT_GT(tlb.generation(), generation);      // cached lookups invalid
  // Nothing left under ASID 1: a repeat is a no-op (generation stable).
  const u64 after = tlb.generation();
  EXPECT_EQ(tlb.InvalidateAsid(1), 0u);
  EXPECT_EQ(tlb.generation(), after);
}

TEST(TlbTest, DefaultAsidZeroKeepsLegacyCallsitesWorking) {
  Tlb tlb(4);
  tlb.Install(0, 3, 7, 2);                      // no ASID argument
  EXPECT_TRUE(tlb.Lookup(3, 7).has_value());    // found under default 0
  EXPECT_EQ(tlb.entry(0).asid, 0u);
  EXPECT_FALSE(tlb.Lookup(3, 7, /*asid=*/1).has_value());
  EXPECT_EQ(tlb.InvalidateAsid(0), 1u);
  EXPECT_FALSE(tlb.Probe(3, 7).has_value());
}

// ----- ASID allocator generation rollover (regression) -----

// After 2^N allocations the allocator's cursor wraps and hands a tag
// out again; TLB entries installed under its previous owner could still
// be live. The allocator must detect the wrap, bump its generation and
// fire the rollover hook (vcopd wires it to a full shared-TLB flush).
TEST(AsidRolloverTest, WrapAroundFiresHookBeforeReusingTags) {
  os::AsidAllocator allocator(4);  // tags {0,1,2,3}, 0 reserved
  u32 rollovers = 0;
  allocator.set_rollover_hook([&rollovers] { ++rollovers; });
  EXPECT_EQ(allocator.Allocate().value(), 1u);
  EXPECT_EQ(allocator.Allocate().value(), 2u);
  EXPECT_EQ(allocator.Allocate().value(), 3u);
  EXPECT_EQ(allocator.generation(), 0u);
  EXPECT_EQ(rollovers, 0u);

  // Regression: the cursor sits past the top after the last tag was
  // handed out. Reallocating a freed tag is a new pass over the tag
  // space and must fire the hook — before the fix the eager cursor
  // modulo hid the crossing and the recycled tag aliased stale entries.
  allocator.Release(1);
  EXPECT_EQ(allocator.Allocate().value(), 1u);
  EXPECT_EQ(allocator.generation(), 1u);
  EXPECT_EQ(rollovers, 1u);

  // Reuse within the same pass (no crossing) stays silent.
  allocator.Release(3);
  EXPECT_EQ(allocator.Allocate().value(), 3u);
  EXPECT_EQ(allocator.generation(), 1u);
  EXPECT_EQ(rollovers, 1u);

  // Every further full trip fires exactly once more.
  allocator.Release(2);
  EXPECT_EQ(allocator.Allocate().value(), 2u);
  EXPECT_EQ(allocator.generation(), 2u);
  EXPECT_EQ(rollovers, 2u);
}

TEST(AsidRolloverTest, HookIsOptional) {
  os::AsidAllocator allocator(3);
  EXPECT_EQ(allocator.Allocate().value(), 1u);
  EXPECT_EQ(allocator.Allocate().value(), 2u);
  allocator.Release(1);
  EXPECT_EQ(allocator.Allocate().value(), 1u);  // wraps, no hook: no crash
  EXPECT_EQ(allocator.generation(), 1u);
}

TEST(TlbDeathTest, MarkDirtyOnInvalidEntryAborts) {
  Tlb tlb(2);
  EXPECT_DEATH(tlb.MarkDirty(0), "invalid entry");
}

// ----- AR packing -----

TEST(ImuRegsTest, ArPackRoundTrip) {
  const u32 ar = PackAr(/*object=*/12, /*index=*/0x0ABCDEF);
  EXPECT_EQ(ArObject(ar), 12u);
  EXPECT_EQ(ArIndex(ar), 0x0ABCDEFu);
}

TEST(ImuRegsTest, IndexTruncatedTo28Bits) {
  const u32 ar = PackAr(1, 0xFFFFFFFF);
  EXPECT_EQ(ArIndex(ar), 0x0FFFFFFFu);
  EXPECT_EQ(ArObject(ar), 1u);
}

TEST(ImuRegsTest, ParamObjectIsReservedTopId) {
  EXPECT_EQ(kParamObject, kMaxObjects - 1);
}

}  // namespace
}  // namespace vcop::hw
