// Unit tests for the IMU: Figure-7 access timing (data on the 4th
// rising edge), fault raising/stalling/resolution, dirty-bit setting,
// parameter-page release, cross-clock operation and pipelined mode.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "hw/coprocessor.h"
#include "hw/imu.h"
#include "hw/imu_regs.h"
#include "hw/interrupt.h"
#include "mem/dp_ram.h"
#include "sim/simulator.h"

namespace vcop::hw {
namespace {

/// A coprocessor that executes a fixed script of element accesses as
/// fast as the interface allows, recording the completion time of each.
class ScriptedCoprocessor final : public Coprocessor {
 public:
  struct Op {
    bool write = false;
    ObjectId object = 0;
    u32 index = 0;
    u32 wdata = 0;
  };

  ScriptedCoprocessor(sim::Simulator& sim, std::vector<Op> script)
      : sim_(sim), script_(std::move(script)) {}

  std::string_view name() const override { return "scripted"; }

  const std::vector<u32>& read_data() const { return read_data_; }
  const std::vector<Picoseconds>& completion_times() const {
    return completion_times_;
  }
  usize completed() const { return completion_times_.size(); }

 protected:
  void OnStart() override { pc_ = 0; }

  void Step() override {
    if (pc_ >= script_.size()) {
      Finish();
      return;
    }
    const Op& op = script_[pc_];
    bool done = false;
    if (op.write) {
      done = TryWrite(op.object, op.index, op.wdata);
    } else {
      u32 value = 0;
      done = TryRead(op.object, op.index, value);
      if (done) read_data_.push_back(value);
    }
    if (done) {
      completion_times_.push_back(sim_.now());
      ++pc_;
    }
  }

 private:
  sim::Simulator& sim_;
  std::vector<Op> script_;
  usize pc_ = 0;
  std::vector<u32> read_data_;
  std::vector<Picoseconds> completion_times_;
};

/// Shared harness: one IMU + one scripted core on configurable clocks.
class ImuHarness {
 public:
  ImuHarness(ImuConfig config, Frequency imu_clock, Frequency cp_clock,
             std::vector<ScriptedCoprocessor::Op> script)
      : dp_ram_(16384),
        imu_(config, mem::PageGeometry(2048, 8), dp_ram_, irq_, sim_),
        cp_(sim_, std::move(script)),
        imu_domain_(sim_.AddClockDomain("imu", imu_clock)),
        cp_domain_(sim_.AddClockDomain("cp", cp_clock)) {
    irq_.set_handler([this](InterruptCause cause) {
      interrupts_.push_back({sim_.now(), cause});
    });
    imu_.BindClocks(imu_domain_, cp_domain_);
    imu_domain_.Attach(imu_);
    cp_domain_.Attach(cp_);
    cp_.BindPort(imu_);
  }

  /// Starts the core with no parameters at simulation time zero.
  void Start() {
    imu_.AssertStart();
    cp_.Start(0);
    cp_domain_.Kick();
  }

  bool RunToFinish(u64 max_events = 1'000'000) {
    return sim_.RunUntil([this] { return cp_.finished(); }, max_events);
  }

  struct Interrupt {
    Picoseconds time;
    InterruptCause cause;
  };

  sim::Simulator sim_;
  hw::InterruptLine irq_;
  mem::DualPortRam dp_ram_;
  Imu imu_;
  ScriptedCoprocessor cp_;
  sim::ClockDomain& imu_domain_;
  sim::ClockDomain& cp_domain_;
  std::vector<Interrupt> interrupts_;
};

ImuConfig DefaultConfig() {
  ImuConfig config;
  config.access_latency_cycles = 4;
  config.tlb_entries = 8;
  return config;
}

constexpr Frequency k40MHz = Frequency::MHz(40);
constexpr Picoseconds k40MHzPeriod = 25'000;

TEST(ImuTest, ReadDataOnFourthRisingEdge) {
  // Figure 7: cp_access asserted on edge 1, data ready on edge 4.
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz,
               {{false, /*object=*/0, /*index=*/5, 0}});
  h.imu_.SetObjectWidth(0, 4);
  h.imu_.tlb().Install(0, 0, 0, /*frame=*/2);
  h.dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor, 2 * 2048 + 20, 4,
                      0xCAFEF00D);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.cp_.completed(), 1u);
  EXPECT_EQ(h.cp_.read_data()[0], 0xCAFEF00Du);

  // Start at t=0 (edge 0): the *core* first steps the script on edge 1
  // (edge 0 ran the empty parameter phase), issuing on edge 1 at 25 ns;
  // data must be consumed on edge 4 at 100 ns — 4 rising edges
  // inclusive, as in Figure 7.
  EXPECT_EQ(h.cp_.completion_times()[0], 4 * k40MHzPeriod);
}

TEST(ImuTest, BackToBackReadsTakeFourCyclesEach) {
  std::vector<ScriptedCoprocessor::Op> script;
  for (u32 i = 0; i < 4; ++i) script.push_back({false, 0, i, 0});
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz, script);
  h.imu_.SetObjectWidth(0, 4);
  h.imu_.tlb().Install(0, 0, 0, 0);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.cp_.completed(), 4u);
  for (usize i = 1; i < 4; ++i) {
    EXPECT_EQ(h.cp_.completion_times()[i] - h.cp_.completion_times()[i - 1],
              4 * k40MHzPeriod)
        << "access " << i;
  }
}

TEST(ImuTest, WriteCommitsAndSetsDirty) {
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz,
               {{true, 0, /*index=*/3, 0xAB}});
  h.imu_.SetObjectWidth(0, 1);
  h.imu_.tlb().Install(5, 0, 0, /*frame=*/1);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  EXPECT_EQ(h.dp_ram_.ReadWord(mem::DualPortRam::Port::kProcessor,
                               2048 + 3, 1),
            0xABu);
  EXPECT_TRUE(h.imu_.tlb().entry(5).dirty);
  EXPECT_EQ(h.imu_.stats().writes, 1u);
}

TEST(ImuTest, MissLatchesArRaisesInterruptAndStalls) {
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz,
               {{false, /*object=*/2, /*index=*/0x123, 0}});
  h.imu_.SetObjectWidth(2, 4);  // programmed but unmapped -> TLB miss
  h.Start();
  ASSERT_FALSE(h.RunToFinish(/*max_events=*/50'000));

  ASSERT_EQ(h.interrupts_.size(), 1u);
  EXPECT_EQ(h.interrupts_[0].cause, InterruptCause::kPageFault);
  const u32 ar = h.imu_.ReadRegister(ImuRegister::kAR);
  EXPECT_EQ(ArObject(ar), 2u);
  EXPECT_EQ(ArIndex(ar), 0x123u);
  EXPECT_TRUE(h.imu_.ReadRegister(ImuRegister::kSR) & kSrFaultPending);
  EXPECT_EQ(h.cp_.completed(), 0u);  // stalled, not completed
  EXPECT_EQ(h.imu_.stats().faults, 1u);
}

TEST(ImuTest, ResolveFaultRestartsTranslationAndCompletes) {
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz,
               {{false, 0, /*index=*/600, 0}});  // offset 2400: page 1
  h.imu_.SetObjectWidth(0, 4);
  h.Start();
  ASSERT_FALSE(h.RunToFinish(50'000));
  ASSERT_EQ(h.interrupts_.size(), 1u);
  const Picoseconds fault_time = h.interrupts_[0].time;

  // OS services the fault 10 us later: map (obj 0, vpage 1) -> frame 6.
  h.dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor,
                      6 * 2048 + (600 * 4 - 2048), 4, 77);
  h.sim_.ScheduleAt(fault_time + 10'000'000, [&h] {
    h.imu_.tlb().Install(0, 0, 1, 6);
    h.imu_.ResolveFault();
  });
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.cp_.completed(), 1u);
  EXPECT_EQ(h.cp_.read_data()[0], 77u);
  EXPECT_FALSE(h.imu_.ReadRegister(ImuRegister::kSR) & kSrFaultPending);
  // Stall time accounted: ~10 us.
  EXPECT_GE(h.imu_.stats().fault_stall_time, 10'000'000u);
  EXPECT_LT(h.imu_.stats().fault_stall_time, 11'000'000u);
}

TEST(ImuTest, AccessToUnprogrammedObjectFaults) {
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz, {{false, 9, 0, 0}});
  h.Start();
  ASSERT_FALSE(h.RunToFinish(50'000));
  ASSERT_EQ(h.interrupts_.size(), 1u);
  EXPECT_EQ(ArObject(h.imu_.ReadRegister(ImuRegister::kAR)), 9u);
}

TEST(ImuTest, EndOfOperationInterrupt) {
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz, {});
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.interrupts_.size(), 1u);
  EXPECT_EQ(h.interrupts_[0].cause, InterruptCause::kEndOfOperation);
  const u32 sr = h.imu_.ReadRegister(ImuRegister::kSR);
  EXPECT_TRUE(sr & kSrEndPending);
  EXPECT_FALSE(sr & kSrBusy);
  h.imu_.AckEnd();
  EXPECT_FALSE(h.imu_.ReadRegister(ImuRegister::kSR) & kSrEndPending);
}

TEST(ImuTest, ParamPageReleaseInvalidatesEntryAndFiresHook) {
  // A coprocessor started with parameters reads them from the param
  // page, then releases it (§3.2).
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz, {});
  h.imu_.SetObjectWidth(kParamObject, 4);
  h.imu_.tlb().Install(0, kParamObject, 0, /*frame=*/0);
  h.dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor, 0, 4, 42);
  h.dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor, 4, 4, 43);
  bool released = false;
  h.imu_.set_param_release_hook([&released] { released = true; });

  h.imu_.AssertStart();
  h.cp_.Start(2);
  h.cp_domain_.Kick();
  ASSERT_TRUE(h.RunToFinish());
  EXPECT_TRUE(released);
  EXPECT_FALSE(h.imu_.tlb().entry(0).valid);
  EXPECT_TRUE(h.imu_.ReadRegister(ImuRegister::kSR) & kSrParamReleased);
}

TEST(ImuTest, CrossClockAccessCompletesAtNextCoreEdge) {
  // IDEA arrangement: IMU @24 MHz, core @6 MHz. The 4-cycle translation
  // fits inside one core period, so each access costs 2 core cycles
  // (issue edge + consume edge) with the FSM's registered issue.
  std::vector<ScriptedCoprocessor::Op> script;
  for (u32 i = 0; i < 3; ++i) script.push_back({false, 0, i, 0});
  ImuHarness h(DefaultConfig(), Frequency::MHz(24), Frequency::MHz(6),
               script);
  h.imu_.SetObjectWidth(0, 4);
  h.imu_.tlb().Install(0, 0, 0, 0);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.cp_.completed(), 3u);
  // Compare core-clock edge indices: 6 MHz periods are not an integer
  // picosecond count, so raw time deltas wobble by ±1 ps on the grid.
  const Frequency core = Frequency::MHz(6);
  for (usize i = 1; i < 3; ++i) {
    EXPECT_EQ(core.CyclesAt(h.cp_.completion_times()[i]) -
                  core.CyclesAt(h.cp_.completion_times()[i - 1]),
              2u);
  }
}

TEST(ImuTest, PipelinedModeSustainsOneAccessPerCycle) {
  ImuConfig config = DefaultConfig();
  config.pipelined = true;
  std::vector<ScriptedCoprocessor::Op> script;
  for (u32 i = 0; i < 6; ++i) script.push_back({false, 0, i, 0});
  ImuHarness h(config, k40MHz, k40MHz, script);
  h.imu_.SetObjectWidth(0, 4);
  h.imu_.tlb().Install(0, 0, 0, 0);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.cp_.completed(), 6u);
  // Steady state: one completion per core cycle.
  for (usize i = 2; i < 6; ++i) {
    EXPECT_EQ(h.cp_.completion_times()[i] - h.cp_.completion_times()[i - 1],
              k40MHzPeriod)
        << "access " << i;
  }
}

TEST(ImuTest, PipelinedIsFasterThanMultiCycle) {
  auto run = [](bool pipelined) {
    ImuConfig config = DefaultConfig();
    config.pipelined = pipelined;
    std::vector<ScriptedCoprocessor::Op> script;
    for (u32 i = 0; i < 64; ++i) script.push_back({false, 0, i, 0});
    ImuHarness h(config, k40MHz, k40MHz, script);
    h.imu_.SetObjectWidth(0, 4);
    h.imu_.tlb().Install(0, 0, 0, 0);
    h.Start();
    EXPECT_TRUE(h.RunToFinish());
    return h.sim_.now();
  };
  const Picoseconds multi = run(false);
  const Picoseconds pipe = run(true);
  EXPECT_LT(pipe * 3, multi) << "pipelining should mask most translation";
}

TEST(ImuTest, PostedWriteAcknowledgedNextEdge) {
  // With the posted-write buffer, a write completes (from the core's
  // view) on the edge after issue instead of the 4th.
  ImuConfig config = DefaultConfig();
  config.posted_writes = true;
  ImuHarness h(config, k40MHz, k40MHz,
               {{true, 0, 1, 0xAA}, {true, 0, 2, 0xBB}});
  h.imu_.SetObjectWidth(0, 1);
  h.imu_.tlb().Install(0, 0, 0, 0);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.cp_.completed(), 2u);
  // Back-to-back posted writes: 2 core cycles apart (ack + next issue),
  // not 4.
  EXPECT_EQ(h.cp_.completion_times()[1] - h.cp_.completion_times()[0],
            2 * k40MHzPeriod);
  // Both writes actually landed in the DP-RAM.
  EXPECT_EQ(h.dp_ram_.ReadWord(mem::DualPortRam::Port::kProcessor, 1, 1),
            0xAAu);
  EXPECT_EQ(h.dp_ram_.ReadWord(mem::DualPortRam::Port::kProcessor, 2, 1),
            0xBBu);
}

TEST(ImuTest, PostedWriteFaultStillPrecise) {
  // A posted write that misses must still fault, stall further
  // accesses, and retire correctly after the OS resolves it.
  ImuConfig config = DefaultConfig();
  config.posted_writes = true;
  ImuHarness h(config, k40MHz, k40MHz,
               {{true, 0, /*index (page 1)*/ 3000, 0x77},
                {false, 0, 0, 0}});
  h.imu_.SetObjectWidth(0, 1);
  h.imu_.tlb().Install(0, 0, 0, 0);  // page 0 mapped, page 1 not
  h.Start();
  ASSERT_FALSE(h.RunToFinish(50'000));
  ASSERT_EQ(h.interrupts_.size(), 1u);
  EXPECT_EQ(h.interrupts_[0].cause, InterruptCause::kPageFault);
  // The core already moved on (the write was acknowledged) but its next
  // access is blocked on the busy interface.
  EXPECT_EQ(h.cp_.completed(), 1u);

  // (The core spun on the busy interface while RunToFinish drained its
  // event budget, so schedule relative to *now*, not the interrupt.)
  h.sim_.ScheduleAt(h.sim_.now() + 1'000'000, [&h] {
    h.imu_.tlb().Install(1, 0, 1, 5);
    h.imu_.ResolveFault();
  });
  ASSERT_TRUE(h.RunToFinish());
  EXPECT_EQ(h.cp_.completed(), 2u);
  EXPECT_EQ(h.dp_ram_.ReadWord(mem::DualPortRam::Port::kProcessor,
                               5 * 2048 + (3000 - 2048), 1),
            0x77u);
}

TEST(ImuTest, PostedWriteDefersEndOfOperation) {
  // CP_FIN immediately after a posted write: the end interrupt must
  // wait for the buffer to drain so the OS sweep sees the final data.
  ImuConfig config = DefaultConfig();
  config.posted_writes = true;
  ImuHarness h(config, k40MHz, k40MHz, {{true, 0, 0, 0x42}});
  h.imu_.SetObjectWidth(0, 1);
  h.imu_.tlb().Install(0, 0, 0, 0);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());
  ASSERT_EQ(h.interrupts_.size(), 1u);
  EXPECT_EQ(h.interrupts_[0].cause, InterruptCause::kEndOfOperation);
  EXPECT_EQ(h.dp_ram_.ReadWord(mem::DualPortRam::Port::kProcessor, 0, 1),
            0x42u);
  EXPECT_TRUE(h.imu_.tlb().entry(0).dirty)
      << "the posted write must set the dirty bit before the end sweep";
}

TEST(ImuTest, HardStopClearsState) {
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz, {{false, 7, 0, 0}});
  h.imu_.SetObjectWidth(7, 4);
  h.Start();
  ASSERT_FALSE(h.RunToFinish(50'000));  // stalled on fault
  h.imu_.HardStop();
  EXPECT_EQ(h.imu_.ReadRegister(ImuRegister::kSR), 0u);
  EXPECT_FALSE(h.imu_.busy());
}

TEST(ImuTest, TracerCapturesFigure7Signals) {
  sim::Tracer tracer;
  ImuHarness h(DefaultConfig(), k40MHz, k40MHz, {{false, 0, 1, 0}});
  h.imu_.AttachTracer(&tracer);
  h.imu_.SetObjectWidth(0, 4);
  h.imu_.tlb().Install(0, 0, 0, 0);
  h.dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor, 4, 4, 0x55);
  h.Start();
  ASSERT_TRUE(h.RunToFinish());

  // cp_access rises at the issue edge (25 ns) and falls at consume.
  const std::string vcd = tracer.ToVcd();
  EXPECT_NE(vcd.find("cp_access"), std::string::npos);
  EXPECT_NE(vcd.find("cp_tlbhit"), std::string::npos);
  // tlbhit asserted exactly at the 4th edge (100 ns = #100000).
  EXPECT_NE(vcd.find("#100000"), std::string::npos);
}

TEST(ImuDeathTest, LatencyBelowTwoRejected) {
  sim::Simulator sim;
  mem::DualPortRam dp(16384);
  InterruptLine irq;
  ImuConfig config;
  config.access_latency_cycles = 1;
  EXPECT_DEATH(Imu(config, mem::PageGeometry(2048, 8), dp, irq, sim),
               "at least 2");
}

}  // namespace
}  // namespace vcop::hw
