// Tests for the FPGA job scheduler: ordering policies, reconfiguration
// accounting, isolation of job mappings, and failure containment.
#include <gtest/gtest.h>

#include <numeric>

#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/scheduler.h"
#include "runtime/config.h"

namespace vcop::os {
namespace {

/// A vecadd job: fills fresh buffers, maps, executes, verifies.
FpgaJob MakeVecAddJob(u32 pid, u32 n) {
  FpgaJob job;
  job.pid = pid;
  job.bitstream = "vecadd";
  job.run = [n](Kernel& kernel) -> Result<ExecutionReport> {
    auto a = kernel.user_memory().Allocate(n * 4);
    auto b = kernel.user_memory().Allocate(n * 4);
    auto c = kernel.user_memory().Allocate(n * 4);
    if (!a.ok() || !b.ok() || !c.ok()) {
      return ResourceExhaustedError("out of user memory");
    }
    auto fill = [&kernel](mem::UserAddr addr, u32 count, u32 start) {
      auto view = kernel.user_memory().View(addr, count * 4);
      for (u32 i = 0; i < count; ++i) {
        const u32 v = start + i;
        for (u32 byte = 0; byte < 4; ++byte) {
          view[4 * i + byte] = static_cast<u8>(v >> (8 * byte));
        }
      }
    };
    fill(a.value(), n, 1);
    fill(b.value(), n, 2);
    VCOP_RETURN_IF_ERROR(
        kernel.FpgaMapObject(0, a.value(), n * 4, 4, Direction::kIn));
    VCOP_RETURN_IF_ERROR(
        kernel.FpgaMapObject(1, b.value(), n * 4, 4, Direction::kIn));
    VCOP_RETURN_IF_ERROR(
        kernel.FpgaMapObject(2, c.value(), n * 4, 4, Direction::kOut));
    const u32 params[] = {n};
    Result<ExecutionReport> report = kernel.FpgaExecute(params);
    if (!report.ok()) return report;
    // Verify in place.
    auto out = kernel.user_memory().View(c.value(), n * 4);
    for (u32 i = 0; i < n; ++i) {
      u32 v = 0;
      for (u32 byte = 0; byte < 4; ++byte) {
        v |= static_cast<u32>(out[4 * i + byte]) << (8 * byte);
      }
      if (v != (1 + i) + (2 + i)) {
        return InternalError("vecadd job produced a wrong element");
      }
    }
    return report;
  };
  return job;
}

FpgaJob MakeGatherJob(u32 pid, u32 n) {
  FpgaJob job;
  job.pid = pid;
  job.bitstream = "gather";
  job.run = [n](Kernel& kernel) -> Result<ExecutionReport> {
    auto in = kernel.user_memory().Allocate(n * 4);
    auto perm = kernel.user_memory().Allocate(n * 4);
    auto out = kernel.user_memory().Allocate(n * 4);
    if (!in.ok() || !perm.ok() || !out.ok()) {
      return ResourceExhaustedError("out of user memory");
    }
    auto view_in = kernel.user_memory().View(in.value(), n * 4);
    auto view_perm = kernel.user_memory().View(perm.value(), n * 4);
    for (u32 i = 0; i < n; ++i) {
      const u32 identity = n - 1 - i;  // reverse permutation
      for (u32 byte = 0; byte < 4; ++byte) {
        view_in[4 * i + byte] = static_cast<u8>((i * 5) >> (8 * byte));
        view_perm[4 * i + byte] = static_cast<u8>(identity >> (8 * byte));
      }
    }
    VCOP_RETURN_IF_ERROR(
        kernel.FpgaMapObject(0, in.value(), n * 4, 4, Direction::kIn));
    VCOP_RETURN_IF_ERROR(
        kernel.FpgaMapObject(1, out.value(), n * 4, 4, Direction::kOut));
    VCOP_RETURN_IF_ERROR(
        kernel.FpgaMapObject(2, perm.value(), n * 4, 4, Direction::kIn));
    const u32 params[] = {n};
    return kernel.FpgaExecute(params);
  };
  return job;
}

std::map<std::string, hw::Bitstream> Library() {
  std::map<std::string, hw::Bitstream> designs;
  designs["vecadd"] = cp::VecAddBitstream();
  designs["gather"] = cp::GatherBitstream();
  return designs;
}

TEST(SchedulerTest, FifoRunsAllJobsInOrder) {
  Kernel kernel(runtime::Epxa1Config());
  FpgaScheduler scheduler(kernel, Library());
  std::vector<FpgaJob> jobs;
  for (u32 pid = 1; pid <= 3; ++pid) jobs.push_back(MakeVecAddJob(pid, 256));

  const ScheduleReport report =
      scheduler.RunAll(std::move(jobs), ScheduleOrder::kFifo);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_EQ(report.failures(), 0u);
  // One configuration for the whole same-design batch.
  EXPECT_EQ(report.reconfigurations, 1u);
  // Ordering and monotonic time.
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(report.outcomes[i].pid, i + 1);
    EXPECT_LE(report.outcomes[i].started_at,
              report.outcomes[i].finished_at);
    if (i > 0) {
      EXPECT_GE(report.outcomes[i].started_at,
                report.outcomes[i - 1].finished_at);
    }
  }
  EXPECT_GT(report.makespan, 0u);
}

TEST(SchedulerTest, AlternatingDesignsReconfigureEveryJobUnderFifo) {
  Kernel kernel(runtime::Epxa1Config());
  FpgaScheduler scheduler(kernel, Library());
  std::vector<FpgaJob> jobs;
  for (u32 i = 0; i < 6; ++i) {
    jobs.push_back(i % 2 == 0 ? MakeVecAddJob(i, 128)
                              : MakeGatherJob(i, 128));
  }
  const ScheduleReport report =
      scheduler.RunAll(std::move(jobs), ScheduleOrder::kFifo);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_EQ(report.reconfigurations, 6u);
}

TEST(SchedulerTest, BatchingAmortisesReconfiguration) {
  auto run = [](ScheduleOrder order) {
    Kernel kernel(runtime::Epxa1Config());
    FpgaScheduler scheduler(kernel, Library());
    std::vector<FpgaJob> jobs;
    for (u32 i = 0; i < 6; ++i) {
      jobs.push_back(i % 2 == 0 ? MakeVecAddJob(i, 128)
                                : MakeGatherJob(i, 128));
    }
    return scheduler.RunAll(std::move(jobs), order);
  };
  const ScheduleReport fifo = run(ScheduleOrder::kFifo);
  const ScheduleReport batched = run(ScheduleOrder::kBatchBitstream);
  EXPECT_EQ(batched.failures(), 0u);
  EXPECT_EQ(batched.reconfigurations, 2u);
  EXPECT_LT(batched.total_config_time, fifo.total_config_time);
  EXPECT_LT(batched.makespan, fifo.makespan);
}

TEST(SchedulerTest, BatchPreservesSubmissionOrderWithinDesign) {
  Kernel kernel(runtime::Epxa1Config());
  FpgaScheduler scheduler(kernel, Library());
  std::vector<FpgaJob> jobs;
  jobs.push_back(MakeVecAddJob(10, 64));
  jobs.push_back(MakeGatherJob(20, 64));
  jobs.push_back(MakeVecAddJob(11, 64));
  jobs.push_back(MakeGatherJob(21, 64));
  const ScheduleReport report =
      scheduler.RunAll(std::move(jobs), ScheduleOrder::kBatchBitstream);
  ASSERT_EQ(report.outcomes.size(), 4u);
  EXPECT_EQ(report.outcomes[0].pid, 10u);
  EXPECT_EQ(report.outcomes[1].pid, 11u);
  EXPECT_EQ(report.outcomes[2].pid, 20u);
  EXPECT_EQ(report.outcomes[3].pid, 21u);
}

TEST(SchedulerTest, UnknownDesignFailsJobOnly) {
  Kernel kernel(runtime::Epxa1Config());
  FpgaScheduler scheduler(kernel, Library());
  std::vector<FpgaJob> jobs;
  jobs.push_back(MakeVecAddJob(1, 64));
  FpgaJob bogus;
  bogus.pid = 2;
  bogus.bitstream = "does-not-exist";
  bogus.run = [](Kernel&) -> Result<ExecutionReport> {
    return InternalError("must not run");
  };
  jobs.push_back(bogus);
  jobs.push_back(MakeVecAddJob(3, 64));

  const ScheduleReport report =
      scheduler.RunAll(std::move(jobs), ScheduleOrder::kFifo);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.outcomes[0].status.ok());
  EXPECT_EQ(report.outcomes[1].status.code(), ErrorCode::kNotFound);
  EXPECT_TRUE(report.outcomes[2].status.ok());
}

TEST(SchedulerTest, FailingJobBodyDoesNotPoisonTheBatch) {
  Kernel kernel(runtime::Epxa1Config());
  FpgaScheduler scheduler(kernel, Library());
  std::vector<FpgaJob> jobs;
  FpgaJob broken;
  broken.pid = 1;
  broken.bitstream = "vecadd";
  broken.run = [](Kernel& k) -> Result<ExecutionReport> {
    // Execute with no objects mapped: the first access aborts the run.
    const u32 params[] = {8};
    return k.FpgaExecute(params);
  };
  jobs.push_back(broken);
  jobs.push_back(MakeVecAddJob(2, 256));
  const ScheduleReport report =
      scheduler.RunAll(std::move(jobs), ScheduleOrder::kFifo);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_FALSE(report.outcomes[0].status.ok());
  EXPECT_TRUE(report.outcomes[1].status.ok())
      << report.outcomes[1].status.ToString();
}

TEST(SchedulerTest, TurnaroundAccountsWaiting) {
  Kernel kernel(runtime::Epxa1Config());
  FpgaScheduler scheduler(kernel, Library());
  std::vector<FpgaJob> jobs;
  jobs.push_back(MakeVecAddJob(1, 2048));
  jobs.push_back(MakeVecAddJob(2, 2048));
  const ScheduleReport report =
      scheduler.RunAll(std::move(jobs), ScheduleOrder::kFifo);
  ASSERT_EQ(report.failures(), 0u);
  // The second job waited for the first: its turnaround is larger.
  EXPECT_GT(report.outcomes[1].turnaround(),
            report.outcomes[0].turnaround());
  EXPECT_GT(report.outcomes[1].wait(), 0u);
  EXPECT_GE(report.mean_turnaround(), report.outcomes[0].turnaround());
}

}  // namespace
}  // namespace vcop::os
