// Property tests for the microcode toolchain: (1) assembler →
// disassembler round-trip on randomized valid programs — the textual
// form is a faithful, re-assemblable encoding of any program the
// validator accepts; (2) the assembler and validator reject mutated,
// truncated or malformed sources with a clean Status instead of
// crashing or accepting garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "hw/tlb.h"
#include "ucode/assembler.h"
#include "ucode/isa.h"

namespace vcop::ucode {
namespace {

/// Ops the generator can emit at any position (kHalt is appended
/// explicitly so every program validates).
constexpr Op kGeneratableOps[] = {
    Op::kLoadImm, Op::kMov,  Op::kAdd,  Op::kSub,   Op::kAnd,
    Op::kOr,      Op::kXor,  Op::kShl,  Op::kShr,   Op::kMul,
    Op::kAddImm,  Op::kParam, Op::kRead, Op::kWrite, Op::kJump,
    Op::kBeq,     Op::kBne,  Op::kBlt,  Op::kBge,   Op::kDelay,
    Op::kHalt,
};

u8 RandomReg(Rng& rng) { return static_cast<u8>(rng.NextBelow(kNumRegisters)); }

/// A random instruction that passes Program::Create's validation, with
/// every unused field left zero (the disassembly cannot represent
/// nonzero unused fields, so the round-trip comparison requires it).
Instruction RandomInstruction(Rng& rng, u32 program_size, u32 num_params) {
  Instruction instr;
  instr.op = kGeneratableOps[rng.NextBelow(std::size(kGeneratableOps))];
  switch (instr.op) {
    case Op::kLoadImm:
      instr.rd = RandomReg(rng);
      instr.imm = static_cast<u32>(rng.Next());
      break;
    case Op::kMov:
      instr.rd = RandomReg(rng);
      instr.rs = RandomReg(rng);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kMul:
      instr.rd = RandomReg(rng);
      instr.rs = RandomReg(rng);
      instr.rt = RandomReg(rng);
      break;
    case Op::kAddImm:
      instr.rd = RandomReg(rng);
      instr.rs = RandomReg(rng);
      instr.imm = static_cast<u32>(rng.Next());
      break;
    case Op::kParam:
      instr.rd = RandomReg(rng);
      instr.imm = static_cast<u32>(rng.NextBelow(num_params));
      break;
    case Op::kRead:
      instr.rd = RandomReg(rng);
      instr.rs = RandomReg(rng);
      instr.imm = static_cast<u32>(rng.NextBelow(hw::kMaxObjects));
      break;
    case Op::kWrite:
      instr.rs = RandomReg(rng);
      instr.rt = RandomReg(rng);
      instr.imm = static_cast<u32>(rng.NextBelow(hw::kMaxObjects));
      break;
    case Op::kJump:
      instr.imm = static_cast<u32>(rng.NextBelow(program_size));
      break;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
      instr.rs = RandomReg(rng);
      instr.rt = RandomReg(rng);
      instr.imm = static_cast<u32>(rng.NextBelow(program_size));
      break;
    case Op::kDelay:
      instr.imm = static_cast<u32>(rng.NextInRange(1, 4096));
      break;
    case Op::kHalt:
      break;
  }
  return instr;
}

Program RandomProgram(u64 seed) {
  Rng rng(seed);
  const u32 num_params = static_cast<u32>(rng.NextInRange(1, 4));
  const u32 body = static_cast<u32>(rng.NextInRange(1, 40));
  std::vector<Instruction> code;
  code.reserve(body + 1);
  for (u32 i = 0; i < body; ++i) {
    code.push_back(RandomInstruction(rng, body + 1, num_params));
  }
  code.push_back(Instruction{});  // kHalt, all fields zero
  Result<Program> program = Program::Create(std::move(code), num_params);
  VCOP_CHECK_MSG(program.ok(), program.status().ToString());
  return std::move(program).value();
}

bool SameInstruction(const Instruction& a, const Instruction& b) {
  return a.op == b.op && a.rd == b.rd && a.rs == b.rs && a.rt == b.rt &&
         a.imm == b.imm;
}

TEST(UcodeFuzzTest, DisassembleAssembleRoundTripOnRandomPrograms) {
  for (u64 seed = 1; seed <= 300; ++seed) {
    const Program original = RandomProgram(seed);
    const std::string text = original.Disassemble();
    const Result<Program> reassembled =
        Assemble(text, original.num_params());
    ASSERT_TRUE(reassembled.ok())
        << "seed " << seed << ": " << reassembled.status().ToString()
        << "\n" << text;
    ASSERT_EQ(reassembled.value().size(), original.size()) << "seed "
                                                           << seed;
    for (usize pc = 0; pc < original.size(); ++pc) {
      ASSERT_TRUE(SameInstruction(reassembled.value().code()[pc],
                                  original.code()[pc]))
          << "seed " << seed << " pc " << pc << "\n" << text;
    }
  }
}

/// Random byte-level mutations of valid sources must never crash the
/// assembler: it either still accepts the text (a benign mutation, e.g.
/// inside a comment) or returns a clean InvalidArgument.
TEST(UcodeFuzzTest, MutatedSourcesFailCleanlyOrStayValid) {
  u32 rejected = 0;
  for (u64 seed = 1; seed <= 300; ++seed) {
    Rng rng(seed * 7919 + 1);
    const Program original = RandomProgram(seed);
    std::string text = original.Disassemble();
    const u32 mutations = static_cast<u32>(rng.NextInRange(1, 8));
    for (u32 m = 0; m < mutations && !text.empty(); ++m) {
      const usize pos = rng.NextBelow(text.size());
      switch (rng.NextBelow(3)) {
        case 0:  // flip a character to random printable garbage
          text[pos] = static_cast<char>(rng.NextInRange(32, 126));
          break;
        case 1:  // truncate
          text.resize(pos);
          break;
        case 2:  // duplicate a slice in place
          text.insert(pos, text.substr(pos / 2, (text.size() - pos) / 2));
          break;
      }
    }
    const Result<Program> result = Assemble(text, original.num_params());
    if (!result.ok()) {
      ++rejected;
      EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument)
          << result.status().ToString();
    }
  }
  // Most mutations break the syntax or validation; if nearly all were
  // silently accepted the mutator (or the validator) is broken.
  EXPECT_GT(rejected, 100u);
}

TEST(UcodeFuzzTest, TruncatedSourceEveryPrefixFailsCleanly) {
  const Program program = RandomProgram(42);
  const std::string text = program.Disassemble();
  for (usize len = 0; len <= text.size(); ++len) {
    const Result<Program> result =
        Assemble(text.substr(0, len), program.num_params());
    // Any prefix that drops the final halt (or cuts a line mid-token)
    // must be rejected; full text must assemble. No prefix may crash.
    if (len == text.size()) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
  }
}

TEST(UcodeFuzzTest, KnownBadSourcesAreRejectedWithCleanStatus) {
  const struct {
    const char* label;
    const char* source;
  } cases[] = {
      {"no halt", "loadi r0, 1\n"},
      {"bad register", "loadi r16, 1\nhalt\n"},
      {"bad object", "read r1, obj99[r0]\nhalt\n"},
      {"branch out of range", "beq r0, r1, 7\nhalt\n"},
      {"jump out of range", "jmp 100\nhalt\n"},
      {"zero delay", "delay 0\nhalt\n"},
      {"param out of range", "param r0, 9\nhalt\n"},
      {"unknown mnemonic", "frobnicate r0\nhalt\n"},
      {"missing operand", "add r0, r1\nhalt\n"},
      {"undefined label", "jmp nowhere\nhalt\n"},
      {"duplicate label", "a: halt\na: halt\n"},
  };
  for (const auto& c : cases) {
    const Result<Program> result = Assemble(c.source, /*num_params=*/1);
    EXPECT_FALSE(result.ok()) << c.label;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument)
          << c.label << ": " << result.status().ToString();
    }
  }
}

}  // namespace
}  // namespace vcop::ucode
