// Tests for the microcode toolkit: program validation, the assembler,
// the interpreter core's semantics, and end-to-end runs through the
// full VIM stack (including equivalence with the hand-written vecadd
// FSM, cycle for cycle).
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "ucode/assembler.h"
#include "ucode/ucode_cp.h"

namespace vcop::ucode {
namespace {

constexpr const char* kVecAddSource = R"(
; C[i] = A[i] + B[i] — the paper's Figure 5, in microcode.
        param  r7, 0          ; r7 = SIZE
        loadi  r0, 0          ; i = 0
loop:   bge    r0, r7, done
        read   r1, obj0[r0]
        read   r2, obj1[r0]
        add    r3, r1, r2
        write  obj2[r0], r3
        addi   r0, r0, 1
        jmp    loop
done:   halt
)";

// ----- Program validation -----

TEST(ProgramTest, RejectsEmpty) {
  auto p = Program::Create({}, 0);
  ASSERT_FALSE(p.ok());
}

TEST(ProgramTest, RejectsMissingHalt) {
  Instruction nop;
  nop.op = Op::kLoadImm;
  auto p = Program::Create({nop}, 0);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("halt"), std::string::npos);
}

TEST(ProgramTest, RejectsBadBranchTarget) {
  Instruction jump;
  jump.op = Op::kJump;
  jump.imm = 99;
  Instruction halt;
  halt.op = Op::kHalt;
  auto p = Program::Create({jump, halt}, 0);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("target"), std::string::npos);
}

TEST(ProgramTest, RejectsUndeclaredParam) {
  Instruction par;
  par.op = Op::kParam;
  par.imm = 2;
  Instruction halt;
  halt.op = Op::kHalt;
  auto p = Program::Create({par, halt}, 2);
  ASSERT_FALSE(p.ok());
}

TEST(ProgramTest, ReferencedObjectsAndDisassembly) {
  auto p = Assemble(kVecAddSource, 1);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().ReferencedObjects(),
            (std::vector<hw::ObjectId>{0, 1, 2}));
  const std::string dis = p.value().Disassemble();
  EXPECT_NE(dis.find("read"), std::string::npos);
  EXPECT_NE(dis.find("obj2[r0]"), std::string::npos);
}

// ----- Assembler -----

TEST(AssemblerTest, AssemblesVecAdd) {
  auto p = Assemble(kVecAddSource, 1);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().size(), 10u);
  EXPECT_EQ(p.value().code()[0].op, Op::kParam);
  EXPECT_EQ(p.value().code()[2].op, Op::kBge);
  EXPECT_EQ(p.value().code()[2].imm, 9u);  // 'done' label
  EXPECT_EQ(p.value().code()[9].op, Op::kHalt);
}

TEST(AssemblerTest, ReportsLineNumbersInErrors) {
  auto p = Assemble("loadi r0, 0\nbogus r1\nhalt\n", 0);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(p.status().message().find("bogus"), std::string::npos);
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  auto p = Assemble("jmp nowhere\nhalt\n", 0);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("nowhere"), std::string::npos);
}

TEST(AssemblerTest, RejectsDuplicateLabel) {
  auto p = Assemble("a: loadi r0, 0\na: halt\n", 0);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("duplicate"), std::string::npos);
}

TEST(AssemblerTest, RejectsBadRegister) {
  auto p = Assemble("loadi r16, 0\nhalt\n", 0);
  ASSERT_FALSE(p.ok());
}

TEST(AssemblerTest, HexImmediatesAndComments) {
  auto p = Assemble("loadi r1, 0xff # trailing comment\nhalt\n", 0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().code()[0].imm, 255u);
}

TEST(AssemblerTest, LabelOnOwnLine) {
  auto p = Assemble("start:\n  jmp start\n  halt\n", 0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().code()[0].imm, 0u);
}

// ----- end-to-end through the VIM -----

TEST(UcodeEndToEndTest, VecAddMatchesHandwrittenCore) {
  const u32 n = 3000;
  std::vector<u32> a(n), b(n);
  std::iota(a.begin(), a.end(), 3u);
  std::iota(b.begin(), b.end(), 11u);

  auto program = Assemble(kVecAddSource, 1);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const hw::Bitstream bs =
      MakeMicrocodeBitstream("uvecadd", std::move(program).value(),
                             Frequency::MHz(40), Frequency::MHz(40));

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  ASSERT_TRUE(sys.Load(bs).ok());
  auto ba = sys.Allocate<u32>(n);
  auto bb = sys.Allocate<u32>(n);
  auto bc = sys.Allocate<u32>(n);
  ASSERT_TRUE(ba.ok() && bb.ok() && bc.ok());
  ba.value().Fill(a);
  bb.value().Fill(b);
  ASSERT_TRUE(sys.Map(0, ba.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, bb.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, bc.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({n});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<u32> c = bc.value().ToVector();
  for (u32 i = 0; i < n; ++i) ASSERT_EQ(c[i], a[i] + b[i]) << i;

  // Fault behaviour matches the hand-written FSM (same access pattern).
  runtime::FpgaSystem ref_sys(runtime::Epxa1Config());
  auto ref = runtime::RunVecAddVim(ref_sys, a, b);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(report.value().vim.faults, ref.value().report.vim.faults);
  EXPECT_EQ(report.value().imu.accesses, ref.value().report.imu.accesses);
}

TEST(UcodeEndToEndTest, SaxpyKernel) {
  // y[i] = a*x[i] + y[i]: a new accelerator with zero C++ — the
  // toolkit's reason to exist.
  constexpr const char* kSaxpy = R"(
          param  r7, 0        ; n
          param  r6, 1        ; a
          loadi  r0, 0
  loop:   bge    r0, r7, done
          read   r1, obj0[r0] ; x[i]
          read   r2, obj1[r0] ; y[i]
          mul    r3, r1, r6
          add    r3, r3, r2
          write  obj1[r0], r3
          addi   r0, r0, 1
          jmp    loop
  done:   halt
  )";
  auto program = Assemble(kSaxpy, 2);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  const u32 n = 2048;
  const u32 a = 7;
  std::vector<u32> x(n), y(n);
  for (u32 i = 0; i < n; ++i) {
    x[i] = i * 3 + 1;
    y[i] = i;
  }

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  ASSERT_TRUE(sys.Load(MakeMicrocodeBitstream(
                           "saxpy", std::move(program).value(),
                           Frequency::MHz(40), Frequency::MHz(40)))
                  .ok());
  auto bx = sys.Allocate<u32>(n);
  auto by = sys.Allocate<u32>(n);
  ASSERT_TRUE(bx.ok() && by.ok());
  bx.value().Fill(x);
  by.value().Fill(y);
  ASSERT_TRUE(sys.Map(0, bx.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, by.value(), os::Direction::kInOut).ok());
  auto report = sys.Execute({n, a});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<u32> out = by.value().ToVector();
  for (u32 i = 0; i < n; ++i) ASSERT_EQ(out[i], a * x[i] + y[i]) << i;
}

TEST(UcodeEndToEndTest, DelayBurnsExactCycles) {
  // Program: delay 10; halt — compare retired cycles with delay 1.
  auto slow = Assemble("delay 10\nhalt\n", 0);
  auto fast = Assemble("delay 1\nhalt\n", 0);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());

  auto run = [](Program program) {
    runtime::FpgaSystem sys(runtime::Epxa1Config());
    VCOP_CHECK(sys.Load(MakeMicrocodeBitstream("t", std::move(program),
                                               Frequency::MHz(40),
                                               Frequency::MHz(40)))
                   .ok());
    auto report = sys.Execute({});
    VCOP_CHECK_MSG(report.ok(), report.status().ToString());
    return report.value().cp_cycles;
  };
  const u64 slow_cycles = run(std::move(slow).value());
  const u64 fast_cycles = run(std::move(fast).value());
  EXPECT_EQ(slow_cycles - fast_cycles, 9u);
}

TEST(UcodeEndToEndTest, OutOfBoundsAccessIsCaughtByTheVim) {
  // A buggy program indexing past its object: the fault machinery must
  // fail the call, not hang or corrupt.
  constexpr const char* kBuggy = R"(
          loadi r0, 4096      ; way past a one-page object
          read  r1, obj0[r0]
          halt
  )";
  auto program = Assemble(kBuggy, 0);
  ASSERT_TRUE(program.ok());
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  ASSERT_TRUE(sys.Load(MakeMicrocodeBitstream(
                           "buggy", std::move(program).value(),
                           Frequency::MHz(40), Frequency::MHz(40)))
                  .ok());
  auto buf = sys.Allocate<u32>(512);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(sys.Map(0, buf.value(), os::Direction::kIn).ok());
  auto report = sys.Execute({});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace vcop::ucode
