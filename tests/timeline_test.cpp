// Tests for the execution timeline recorder and its Chrome-trace export.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "os/timeline.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

TEST(TimelineTest, RecordsAndExports) {
  os::TimelineRecorder timeline;
  timeline.Record("fault obj0 page1", "fault", 1'000'000, 2'000'000, 0);
  timeline.Record("execute adpcm", "exec", 0, 10'000'000, 1);
  ASSERT_EQ(timeline.events().size(), 2u);

  const std::string json = timeline.ToChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault obj0 page1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"exec\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 1e6 ps = 1 us timestamps.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
}

TEST(TimelineTest, EscapesJsonSpecials) {
  os::TimelineRecorder timeline;
  timeline.Record("quote\"back\\slash", "cat", 0, 1, 0);
  const std::string json = timeline.ToChromeTrace();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TimelineTest, KernelPopulatesTimelineDuringRuns) {
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 7);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const auto& events = sys.kernel().timeline().events();
  usize configs = 0, execs = 0, faults = 0, sweeps = 0;
  for (const auto& event : events) {
    configs += event.category == "config";
    execs += event.category == "exec";
    faults += event.category == "fault";
    sweeps += event.category == "transfer";
  }
  EXPECT_EQ(configs, 1u);
  EXPECT_EQ(execs, 1u);
  EXPECT_EQ(faults, run.value().report.vim.faults +
                        run.value().report.vim.tlb_refills);
  EXPECT_EQ(sweeps, 1u);

  // Every fault span lies inside the execute span.
  Picoseconds exec_start = 0, exec_end = 0;
  for (const auto& event : events) {
    if (event.category == "exec") {
      exec_start = event.start;
      exec_end = event.start + event.duration;
    }
  }
  for (const auto& event : events) {
    if (event.category != "fault") continue;
    EXPECT_GE(event.start, exec_start);
    EXPECT_LE(event.start + event.duration, exec_end);
  }
}

TEST(TimelineTest, OverlappedUnitsLandOnBackgroundTrack) {
  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  runtime::FpgaSystem sys(config);
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 9);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  usize overlap_units = 0;
  for (const auto& event : sys.kernel().timeline().events()) {
    if (event.category == "overlap") {
      EXPECT_EQ(event.track, 2u);
      ++overlap_units;
    }
  }
  EXPECT_GT(overlap_units, 0u);
}

}  // namespace
}  // namespace vcop
