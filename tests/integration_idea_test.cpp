// End-to-end integration for the IDEA application (§4.1): VIM-based and
// manual ("normal coprocessor") runs, bit-exactness, the Figure 9
// exceeds-available-memory behaviour, and the cross-clock-domain
// arrangement (core @6 MHz, IMU @24 MHz).
#include <gtest/gtest.h>

#include "apps/idea.h"
#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "cp/registry.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;
using runtime::RunIdeaManual;
using runtime::RunIdeaVim;

std::vector<u8> SoftwareEncrypt(const apps::IdeaSubkeys& keys,
                                std::span<const u8> input) {
  std::vector<u8> out(input.size());
  apps::IdeaCryptEcb(keys, input, out);
  return out;
}

TEST(IdeaIntegrationTest, VimRunBitExactSmall) {
  FpgaSystem sys(Epxa1Config());
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(1));
  const std::vector<u8> input = apps::MakeRandomBytes(512, 2);
  auto run = RunIdeaVim(sys, keys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, SoftwareEncrypt(keys, input));
}

class IdeaFigure9SizesTest : public ::testing::TestWithParam<usize> {};

TEST_P(IdeaFigure9SizesTest, VimHandlesAllSizes) {
  const usize bytes = GetParam();
  FpgaSystem sys(Epxa1Config());
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(3));
  const std::vector<u8> input = apps::MakeRandomBytes(bytes, 4);
  auto run = RunIdeaVim(sys, keys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, SoftwareEncrypt(keys, input));
  // In + out = 2x input; beyond 8 KB input this cannot fit 16 KB and
  // evictions must appear.
  if (bytes > 8 * 1024) {
    EXPECT_GT(run.value().report.vim.evictions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Figure9Sizes, IdeaFigure9SizesTest,
                         ::testing::Values(4096, 8192, 16384, 32768));

TEST(IdeaIntegrationTest, ManualRunnerBitExactWhenItFits) {
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(5));
  const std::vector<u8> input = apps::MakeRandomBytes(4096, 6);
  auto run = RunIdeaManual(os::CostModel{}, 16 * 1024, keys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, SoftwareEncrypt(keys, input));
}

TEST(IdeaIntegrationTest, ManualRunnerExceedsAvailableMemory) {
  // Figure 9's crossed-out columns: with 16 KB of interface memory the
  // normal coprocessor cannot run 16 KB or 32 KB datasets (in+out+key
  // exceed the DP-RAM), while the VIM-based one can.
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(7));
  for (const usize bytes : {16384u, 32768u}) {
    const std::vector<u8> input = apps::MakeRandomBytes(bytes, 8);
    auto run = RunIdeaManual(os::CostModel{}, 16 * 1024, keys, input);
    ASSERT_FALSE(run.ok()) << bytes;
    EXPECT_EQ(run.status().code(), ErrorCode::kResourceExhausted) << bytes;
    EXPECT_NE(run.status().message().find("exceeds available memory"),
              std::string::npos);
  }
}

TEST(IdeaIntegrationTest, ManualBeatsVimWhichBeatsSoftware) {
  // Figure 9 ordering at 4 KB/8 KB: SW (slowest) > VIM > normal
  // coprocessor (fastest; no OS overhead).
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(9));
  const std::vector<u8> input = apps::MakeRandomBytes(8192, 10);

  FpgaSystem sys(Epxa1Config());
  auto vim = RunIdeaVim(sys, keys, input);
  ASSERT_TRUE(vim.ok()) << vim.status().ToString();
  auto manual = RunIdeaManual(os::CostModel{}, 16 * 1024, keys, input);
  ASSERT_TRUE(manual.ok()) << manual.status().ToString();
  const apps::ArmTimingModel arm;
  const Picoseconds sw = arm.IdeaEcbTime(input.size());

  EXPECT_LT(manual.value().result.total, vim.value().report.total);
  EXPECT_LT(vim.value().report.total, sw);
}

TEST(IdeaIntegrationTest, SpeedupBandsMatchFigure9) {
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(11));
  const apps::ArmTimingModel arm;

  // VIM speedup ~11-12x at every size (paper: 11x, 12x, 11x, 11x).
  for (const usize bytes : {4096u, 8192u, 16384u, 32768u}) {
    FpgaSystem sys(Epxa1Config());
    const std::vector<u8> input = apps::MakeRandomBytes(bytes, 12);
    auto vim = RunIdeaVim(sys, keys, input);
    ASSERT_TRUE(vim.ok()) << vim.status().ToString();
    const double speedup =
        static_cast<double>(arm.IdeaEcbTime(bytes)) /
        static_cast<double>(vim.value().report.total);
    EXPECT_GT(speedup, 8.0) << bytes;
    EXPECT_LT(speedup, 16.0) << bytes;
  }

  // Normal coprocessor ~18x where it fits (paper: 18x at 4/8 KB).
  for (const usize bytes : {4096u, 8192u}) {
    const std::vector<u8> input = apps::MakeRandomBytes(bytes, 13);
    auto manual = RunIdeaManual(os::CostModel{}, 16 * 1024, keys, input);
    ASSERT_TRUE(manual.ok()) << manual.status().ToString();
    const double speedup =
        static_cast<double>(arm.IdeaEcbTime(bytes)) /
        static_cast<double>(manual.value().result.total);
    EXPECT_GT(speedup, 13.0) << bytes;
    EXPECT_LT(speedup, 24.0) << bytes;
  }
}

TEST(IdeaIntegrationTest, DecryptionRoundTripsThroughCoprocessor) {
  // Encrypt on the coprocessor, decrypt on the coprocessor with the
  // inverted key schedule, recover the plaintext.
  const apps::IdeaKey key = apps::MakeIdeaKey(21);
  const apps::IdeaSubkeys ek = apps::IdeaExpandKey(key);
  const apps::IdeaSubkeys dk = apps::IdeaInvertKey(ek);
  const std::vector<u8> plaintext = apps::MakeRandomBytes(2048, 22);

  FpgaSystem sys(Epxa1Config());
  auto enc = RunIdeaVim(sys, ek, plaintext);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  EXPECT_NE(enc.value().output, plaintext);
  auto dec = RunIdeaVim(sys, dk, enc.value().output);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec.value().output, plaintext);
}

TEST(IdeaIntegrationTest, CoreAndImuRunOnDifferentClocks) {
  // The bit-stream declares the paper's 6/24 MHz split; a run must
  // consume roughly 4 IMU edges per core edge.
  const hw::Bitstream bs = cp::IdeaBitstream();
  EXPECT_EQ(bs.cp_clock.hertz(), 6'000'000u);
  EXPECT_EQ(bs.imu_clock.hertz(), 24'000'000u);
}

}  // namespace
}  // namespace vcop
