// Histogram coprocessor tests: read-modify-write consistency on an
// INOUT object under data-dependent addressing — increments must
// survive eviction/write-back/reload cycles of the bins' pages, under
// every replacement policy and with overlapped speculation racing the
// core.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "cp/histogram_cp.h"
#include "cp/registry.h"
#include "runtime/config.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::FpgaSystem;

struct HistogramRun {
  std::vector<u32> bins;
  os::ExecutionReport report;
};

HistogramRun RunHistogram(const os::KernelConfig& config,
                          std::span<const u32> values, u32 num_bins,
                          std::span<const u32> initial_bins = {}) {
  VCOP_CHECK(IsPowerOfTwo(num_bins));
  FpgaSystem sys(config);
  VCOP_CHECK(sys.Load(cp::HistogramBitstream()).ok());
  auto in = sys.Allocate<u32>(static_cast<u32>(values.size()));
  auto bins = sys.Allocate<u32>(num_bins);
  VCOP_CHECK(in.ok() && bins.ok());
  in.value().Fill(values);
  if (!initial_bins.empty()) bins.value().Fill(initial_bins);
  VCOP_CHECK(sys.Map(cp::HistogramCoprocessor::kObjIn, in.value(),
                     os::Direction::kIn)
                 .ok());
  VCOP_CHECK(sys.Map(cp::HistogramCoprocessor::kObjBins, bins.value(),
                     os::Direction::kInOut)
                 .ok());
  auto report = sys.Execute(
      {static_cast<u32>(values.size()), num_bins - 1});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  return HistogramRun{bins.value().ToVector(), report.value()};
}

std::vector<u32> HostHistogram(std::span<const u32> values, u32 num_bins) {
  std::vector<u32> bins(num_bins, 0);
  for (const u32 v : values) bins[v & (num_bins - 1)]++;
  return bins;
}

TEST(HistogramTest, SmallExact) {
  const std::vector<u32> values = {0, 1, 1, 2, 2, 2, 7, 7, 7, 7};
  const HistogramRun run =
      RunHistogram(runtime::Epxa1Config(), values, 8);
  EXPECT_EQ(run.bins, HostHistogram(values, 8));
  EXPECT_EQ(run.bins[2], 3u);
  EXPECT_EQ(run.bins[7], 4u);
}

TEST(HistogramTest, InitialBinContentsAreAccumulatedInto) {
  // INOUT semantics: the coprocessor continues from the host's counts.
  const std::vector<u32> values = {1, 1, 3};
  const std::vector<u32> initial = {10, 20, 30, 40};
  const HistogramRun run =
      RunHistogram(runtime::Epxa1Config(), values, 4, initial);
  EXPECT_EQ(run.bins, (std::vector<u32>{10, 22, 30, 41}));
}

class HistogramStressTest
    : public ::testing::TestWithParam<os::PolicyKind> {};

TEST_P(HistogramStressTest, RmwSurvivesEvictionUnderEveryPolicy) {
  // 8192 bins (32 KB of INOUT data, twice the interface memory) and
  // uniformly random values: bin pages are constantly evicted dirty,
  // written back and reloaded mid-run. Any lost increment fails the
  // exact comparison.
  Rng rng(91);
  std::vector<u32> values(20'000);
  for (u32& v : values) v = static_cast<u32>(rng.Next());

  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.policy = GetParam();
  const HistogramRun run = RunHistogram(config, values, 8192);
  EXPECT_EQ(run.bins, HostHistogram(values, 8192))
      << ToString(GetParam());
  EXPECT_GT(run.report.vim.evictions, 10u);
  EXPECT_GT(run.report.vim.writebacks, 10u);
  // Sum of all bins equals the number of inputs (mass conservation).
  u64 sum = 0;
  for (const u32 bin : run.bins) sum += bin;
  EXPECT_EQ(sum, values.size());
}

INSTANTIATE_TEST_SUITE_P(Policies, HistogramStressTest,
                         ::testing::Values(os::PolicyKind::kFifo,
                                           os::PolicyKind::kLru,
                                           os::PolicyKind::kRandom));

TEST(HistogramTest, OverlappedSpeculationDoesNotLoseIncrements) {
  // Background cleaning writes bins pages back *while the core keeps
  // incrementing them* — the cleaned page's dirty bit must re-arm on
  // the next write or increments vanish.
  Rng rng(92);
  std::vector<u32> values(12'000);
  for (u32& v : values) v = static_cast<u32>(rng.Next());

  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  const HistogramRun run = RunHistogram(config, values, 4096);
  EXPECT_EQ(run.bins, HostHistogram(values, 4096));
}

TEST(HistogramTest, SkewedDistributionKeepsHotPageResident) {
  // 99% of values hit one bin page: after the compulsory faults the
  // hot page should stay put (policies must not evict it under LRU).
  Rng rng(93);
  std::vector<u32> values(8'000);
  for (u32& v : values) {
    v = rng.NextBool(0.99) ? static_cast<u32>(rng.NextBelow(64))
                           : static_cast<u32>(rng.Next());
  }
  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.policy = os::PolicyKind::kLru;
  const HistogramRun run = RunHistogram(config, values, 8192);
  EXPECT_EQ(run.bins, HostHistogram(values, 8192));
  // Far fewer faults than inputs: the hot page amortises.
  EXPECT_LT(run.report.vim.faults, values.size() / 20);
}

}  // namespace
}  // namespace vcop
