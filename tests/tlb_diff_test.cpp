// Differential harness for the flexible-memory work (per-object page
// sizes + two-level TLB hierarchy), in the style of
// fastforward_diff_test:
//
//  * With every new knob at its default (single CAM, platform page
//    size), the engine must be BIT-identical to the seed behaviour —
//    outputs, the full ExecutionReport decomposition, TlbStats and the
//    final simulated timestamp. The same holds for the trivial
//    non-default spellings of the defaults (l1_tlb_entries without an
//    L2; a per-object page override equal to the frame granule), which
//    must take the exact same code paths and RNG draws.
//
//  * With the hierarchy and superpages ON, outputs stay byte-identical
//    while only timing and statistics may diverge.
//
// The sweep covers 128 seeds x the four workloads (adpcm / IDEA /
// conv2d / gather) across the same platform ablations the fast-forward
// suite uses.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "hw/tlb.h"
#include "os/kernel.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "sim/fleet.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

/// How the flexible-memory knobs are set for a run.
enum class MemMode {
  kDefault,         // seed behaviour: single CAM, platform pages
  kExplicitSingle,  // l1_tlb_entries spelled out, still no L2
  kGranulePages,    // per-object override == the frame granule
  kHierarchy,       // L1/L2 split at the same total entry budget
  kHierarchySuper,  // hierarchy + 4 KB superpages on every object
};

os::KernelConfig VariantConfig(u64 seed) {
  os::KernelConfig config = Epxa1Config();
  switch (seed % 4) {
    case 0:  // plain EPXA1
      break;
    case 1:  // victim TLB + adaptive prefetch
      config.vim.victim_tlb_entries = 4;
      config.vim.prefetch = os::PrefetchKind::kAdaptive;
      config.vim.prefetch_depth = 2;
      break;
    case 2:  // overlapped prefetch + coalesced write-back
      config.vim.prefetch = os::PrefetchKind::kSequential;
      config.vim.overlap_prefetch = true;
      config.vim.coalesce_writeback = true;
      break;
    default:  // posted writes + bounds check
      config.imu_posted_writes = true;
      config.imu_bounds_check = true;
      break;
  }
  return config;
}

os::KernelConfig MakeConfig(u64 seed, MemMode mode) {
  os::KernelConfig config = VariantConfig(seed / 4);
  switch (mode) {
    case MemMode::kDefault:
      break;
    case MemMode::kExplicitSingle:
      // No L2 means l1_tlb_entries is ignored; nothing may change.
      config.l1_tlb_entries = config.tlb_entries;
      break;
    case MemMode::kGranulePages:
      // Overrides equal to the frame granule are span-1 pages: the
      // allocator, prefetcher and RNG draws must be untouched.
      for (u32 id = 0; id + 1 < hw::kMaxObjects; ++id) {
        config.object_page_bytes[id] = config.page_bytes;
      }
      break;
    case MemMode::kHierarchy:
      config.l1_tlb_entries = 2;
      config.l2_tlb_entries = 6;
      break;
    case MemMode::kHierarchySuper:
      config.l1_tlb_entries = 2;
      config.l2_tlb_entries = 6;
      for (u32 id = 0; id + 1 < hw::kMaxObjects; ++id) {
        config.object_page_bytes[id] = 4096;
      }
      break;
  }
  return config;
}

struct DiffOutcome {
  std::vector<u8> output;
  os::ExecutionReport report;
  Picoseconds sim_now = 0;
  u64 l1_fills = 0;
};

template <typename T>
std::vector<u8> AsBytes(const std::vector<T>& v) {
  std::vector<u8> bytes(v.size() * sizeof(T));
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

/// Runs workload `seed % 4` (adpcm / IDEA / conv2d / gather) on a fresh
/// system configured by MakeConfig(seed, mode).
DiffOutcome RunPoint(u64 seed, MemMode mode) {
  FpgaSystem sys(MakeConfig(seed, mode));
  DiffOutcome out;
  switch (seed % 4) {
    case 0: {
      const std::vector<u8> input =
          apps::MakeAdpcmStream(512 + (seed % 3) * 512, seed);
      auto run = runtime::RunAdpcmVim(sys, input);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
    case 1: {
      const std::vector<u8> plain = apps::MakeRandomBytes(1024, seed);
      const apps::IdeaSubkeys subkeys =
          apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
      auto run = runtime::RunIdeaVim(sys, subkeys, plain);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
    case 2: {
      const u32 width = 32, height = 16;
      const std::vector<u8> image = apps::MakeTestImage(width, height, seed);
      auto run = runtime::RunConv3x3Vim(sys, image, width, height,
                                        apps::BoxBlurKernel(), /*shift=*/3);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
    default: {
      std::vector<u32> in(512), perm(512);
      Rng rng(seed);
      for (u32 i = 0; i < 512; ++i) {
        in[i] = static_cast<u32>(seed) * 2654435761u + i;
        perm[i] = static_cast<u32>(rng.NextInRange(0, 511));
      }
      auto run = runtime::RunGatherVim(sys, in, perm);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
  }
  out.sim_now = sys.kernel().simulator().now();
  if (hw::Imu* imu = sys.kernel().imu()) {
    out.l1_fills = imu->xlat().stats().l1_fills;
  }
  return out;
}

void ExpectBitIdentical(const DiffOutcome& got, const DiffOutcome& ref,
                        u64 seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  EXPECT_EQ(got.output, ref.output);
  EXPECT_EQ(got.sim_now, ref.sim_now);
  const os::ExecutionReport& a = got.report;
  const os::ExecutionReport& b = ref.report;
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.t_hw, b.t_hw);
  EXPECT_EQ(a.t_dp, b.t_dp);
  EXPECT_EQ(a.t_imu, b.t_imu);
  EXPECT_EQ(a.t_invoke, b.t_invoke);
  EXPECT_EQ(a.cp_cycles, b.cp_cycles);
  EXPECT_EQ(a.tlb.lookups, b.tlb.lookups);
  EXPECT_EQ(a.tlb.hits, b.tlb.hits);
  EXPECT_EQ(a.tlb.misses, b.tlb.misses);
  EXPECT_EQ(a.tlb.parity_errors, b.tlb.parity_errors);
  EXPECT_EQ(a.tlb.installs, b.tlb.installs);
  EXPECT_EQ(a.imu.accesses, b.imu.accesses);
  EXPECT_EQ(a.imu.reads, b.imu.reads);
  EXPECT_EQ(a.imu.writes, b.imu.writes);
  EXPECT_EQ(a.imu.faults, b.imu.faults);
  EXPECT_EQ(a.imu.fault_stall_time, b.imu.fault_stall_time);
  EXPECT_EQ(a.imu.access_latency_time, b.imu.access_latency_time);
  EXPECT_EQ(a.vim.t_dp, b.vim.t_dp);
  EXPECT_EQ(a.vim.t_imu, b.vim.t_imu);
  EXPECT_EQ(a.vim.t_wakeup, b.vim.t_wakeup);
  EXPECT_EQ(a.vim.faults, b.vim.faults);
  EXPECT_EQ(a.vim.tlb_refills, b.vim.tlb_refills);
  EXPECT_EQ(a.vim.evictions, b.vim.evictions);
  EXPECT_EQ(a.vim.writebacks, b.vim.writebacks);
  EXPECT_EQ(a.vim.loads, b.vim.loads);
  EXPECT_EQ(a.vim.prefetched_pages, b.vim.prefetched_pages);
  EXPECT_EQ(a.vim.cleaned_pages, b.vim.cleaned_pages);
  EXPECT_EQ(a.vim.bytes_loaded, b.vim.bytes_loaded);
  EXPECT_EQ(a.vim.bytes_written_back, b.vim.bytes_written_back);
  EXPECT_EQ(a.vim.t_dp_overlapped, b.vim.t_dp_overlapped);
  EXPECT_EQ(a.vim.t_dp_wait, b.vim.t_dp_wait);
  EXPECT_EQ(a.vim.dirty_in_pages_dropped, b.vim.dirty_in_pages_dropped);
  EXPECT_EQ(a.vim.preemptions, b.vim.preemptions);
  EXPECT_EQ(a.vim.fault_recoveries, b.vim.fault_recoveries);
  EXPECT_EQ(a.vim.prefetch_useful, b.vim.prefetch_useful);
  EXPECT_EQ(a.vim.prefetch_wasted, b.vim.prefetch_wasted);
  EXPECT_EQ(a.vim.prefetch_suggestions_dropped,
            b.vim.prefetch_suggestions_dropped);
  EXPECT_EQ(a.vim.victim_tlb_hits, b.vim.victim_tlb_hits);
  EXPECT_EQ(a.vim.victim_tlb_misses, b.vim.victim_tlb_misses);
  EXPECT_EQ(a.vim.coalesced_bursts, b.vim.coalesced_bursts);
  EXPECT_EQ(a.vim.coalesced_pages, b.vim.coalesced_pages);
  EXPECT_EQ(a.vim.fault_service_us.count(), b.vim.fault_service_us.count());
  EXPECT_EQ(a.vim.fault_service_us.sum(), b.vim.fault_service_us.sum());
  EXPECT_EQ(a.vim.fault_service_us.min(), b.vim.fault_service_us.min());
  EXPECT_EQ(a.vim.fault_service_us.max(), b.vim.fault_service_us.max());
}

constexpr u64 kDiffSeeds = 128;

struct SeedRuns {
  DiffOutcome base;
  DiffOutcome explicit_single;
  DiffOutcome granule_pages;
  DiffOutcome hierarchy;
  DiffOutcome hierarchy_super;
};

TEST(TlbDiffTest, FlexibleMemoryOffIsBitIdenticalAndOnIsOutputIdentical) {
  const std::vector<SeedRuns> runs = sim::FleetMap<SeedRuns>(
      kDiffSeeds, [](usize i) -> SeedRuns {
        const u64 seed = static_cast<u64>(i) + 1;
        return SeedRuns{RunPoint(seed, MemMode::kDefault),
                        RunPoint(seed, MemMode::kExplicitSingle),
                        RunPoint(seed, MemMode::kGranulePages),
                        RunPoint(seed, MemMode::kHierarchy),
                        RunPoint(seed, MemMode::kHierarchySuper)};
      });
  u64 total_l1_fills = 0;
  for (usize i = 0; i < runs.size(); ++i) {
    const u64 seed = static_cast<u64>(i) + 1;
    // The trivial spellings must be indistinguishable from the seed
    // engine down to every timestamp and counter.
    ExpectBitIdentical(runs[i].explicit_single, runs[i].base, seed);
    ExpectBitIdentical(runs[i].granule_pages, runs[i].base, seed);
    // The hierarchy and superpages may only change timing and stats.
    {
      SCOPED_TRACE("seed " + std::to_string(seed));
      EXPECT_EQ(runs[i].hierarchy.output, runs[i].base.output);
      EXPECT_EQ(runs[i].hierarchy_super.output, runs[i].base.output);
      EXPECT_EQ(runs[i].base.l1_fills, 0u);
    }
    total_l1_fills += runs[i].hierarchy.l1_fills;
  }
  // The hierarchy must actually engage across the sweep: the tiny L1
  // spills and refills from L2.
  EXPECT_GT(total_l1_fills, 0u);
}

}  // namespace
}  // namespace vcop
