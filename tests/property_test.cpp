// Property-based suites: randomised workloads and platform
// configurations, checking that coprocessor results are always
// bit-exact against the software reference and that the VIM's internal
// invariants hold in every configuration.
//
// These are the tests that caught the out-page-reload bug during
// development: an OUT page evicted mid-run must be reloaded on its next
// fault or its earlier write-back gets clobbered.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "apps/adpcm.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

/// Consistency assertions every successful execution must satisfy.
void CheckReportInvariants(const os::ExecutionReport& r) {
  EXPECT_EQ(r.total, r.t_hw + r.t_dp + r.t_imu + r.t_invoke);
  EXPECT_EQ(r.tlb.lookups, r.tlb.hits + r.tlb.misses);
  EXPECT_EQ(r.imu.accesses, r.imu.reads + r.imu.writes);
  // Every hard fault either used a free frame or evicted something.
  EXPECT_GE(r.vim.faults, r.vim.evictions);
  // Loads and write-backs only happen on faults/evictions/end sweep.
  EXPECT_LE(r.vim.loads, r.vim.faults + r.vim.prefetched_pages);
  EXPECT_EQ(r.vim.dirty_in_pages_dropped, 0u)
      << "shipped coprocessors never write IN objects";
}

// ----- Gather under randomised permutations and policies -----

struct GatherParam {
  u32 elements;
  os::PolicyKind policy;
  u64 seed;
};

class GatherPropertyTest
    : public ::testing::TestWithParam<GatherParam> {};

TEST_P(GatherPropertyTest, MatchesHostGather) {
  const GatherParam p = GetParam();
  Rng rng(p.seed);
  std::vector<u32> in(p.elements);
  for (u32& v : in) v = static_cast<u32>(rng.Next());
  std::vector<u32> perm(p.elements);
  std::iota(perm.begin(), perm.end(), 0u);
  // Deterministic shuffle.
  for (u32 i = p.elements - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
  }

  os::KernelConfig config = Epxa1Config();
  config.vim.policy = p.policy;
  config.vim.seed = p.seed;
  FpgaSystem sys(config);
  auto run = runtime::RunGatherVim(sys, in, perm);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (u32 i = 0; i < p.elements; ++i) {
    ASSERT_EQ(run.value().output[i], in[perm[i]]) << i;
  }
  CheckReportInvariants(run.value().report);
  // A random permutation over >16 KB of data on a 16 KB interface
  // memory must thrash.
  if (p.elements * 4 * 3 > 16 * 1024) {
    EXPECT_GT(run.value().report.vim.evictions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, GatherPropertyTest,
    ::testing::Values(
        GatherParam{256, os::PolicyKind::kFifo, 1},
        GatherParam{256, os::PolicyKind::kLru, 2},
        GatherParam{256, os::PolicyKind::kRandom, 3},
        GatherParam{3000, os::PolicyKind::kFifo, 4},
        GatherParam{3000, os::PolicyKind::kLru, 5},
        GatherParam{3000, os::PolicyKind::kRandom, 6},
        GatherParam{8192, os::PolicyKind::kFifo, 7},
        GatherParam{8192, os::PolicyKind::kLru, 8},
        GatherParam{8192, os::PolicyKind::kRandom, 9}));

// ----- ADPCM across randomised platform configurations -----

struct PlatformParam {
  u32 page_bytes;
  u32 num_frames;
  u32 tlb_entries;
  bool pipelined;
  os::PolicyKind policy;
  mem::CopyMode copy_mode;
  os::PrefetchKind prefetch;
};

class AdpcmPlatformPropertyTest
    : public ::testing::TestWithParam<PlatformParam> {};

TEST_P(AdpcmPlatformPropertyTest, BitExactOnEveryPlatformShape) {
  const PlatformParam p = GetParam();
  os::KernelConfig config = Epxa1Config();
  config.page_bytes = p.page_bytes;
  config.dp_ram_bytes = p.page_bytes * p.num_frames;
  config.tlb_entries = p.tlb_entries;
  config.imu_pipelined = p.pipelined;
  config.vim.policy = p.policy;
  config.vim.copy_mode = p.copy_mode;
  config.vim.prefetch = p.prefetch;

  const std::vector<u8> input = apps::MakeAdpcmStream(3000, 99);
  std::vector<i16> expect(6000);
  apps::AdpcmState s;
  apps::AdpcmDecode(input, expect, s);

  FpgaSystem sys(config);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
  CheckReportInvariants(run.value().report);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdpcmPlatformPropertyTest,
    ::testing::Values(
        // Tiny pages, many frames.
        PlatformParam{512, 8, 8, false, os::PolicyKind::kFifo,
                      mem::CopyMode::kDoubleCopy, os::PrefetchKind::kNone},
        // Two frames only: maximal thrash (out needs 4x in!).
        PlatformParam{2048, 3, 3, false, os::PolicyKind::kLru,
                      mem::CopyMode::kDoubleCopy, os::PrefetchKind::kNone},
        // TLB smaller than frames: soft refills.
        PlatformParam{1024, 16, 4, false, os::PolicyKind::kFifo,
                      mem::CopyMode::kSingleCopy, os::PrefetchKind::kNone},
        // Pipelined IMU.
        PlatformParam{2048, 8, 8, true, os::PolicyKind::kFifo,
                      mem::CopyMode::kDoubleCopy, os::PrefetchKind::kNone},
        // Prefetching on, random policy.
        PlatformParam{2048, 8, 8, false, os::PolicyKind::kRandom,
                      mem::CopyMode::kDoubleCopy,
                      os::PrefetchKind::kSequential},
        // Big pages.
        PlatformParam{8192, 4, 4, false, os::PolicyKind::kLru,
                      mem::CopyMode::kSingleCopy,
                      os::PrefetchKind::kSequential}));

// ----- IDEA sizes x pipelining sweep -----

class IdeaSizePipelineTest
    : public ::testing::TestWithParam<std::tuple<usize, bool>> {};

TEST_P(IdeaSizePipelineTest, BitExactAndFasterWhenPipelined) {
  const auto [bytes, pipelined] = GetParam();
  os::KernelConfig config = Epxa1Config();
  config.imu_pipelined = pipelined;

  const auto keys = apps::IdeaExpandKey(apps::MakeIdeaKey(17));
  const std::vector<u8> input = apps::MakeRandomBytes(bytes, 18);
  std::vector<u8> expect(bytes);
  apps::IdeaCryptEcb(keys, input, expect);

  FpgaSystem sys(config);
  auto run = runtime::RunIdeaVim(sys, keys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
  CheckReportInvariants(run.value().report);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndModes, IdeaSizePipelineTest,
    ::testing::Combine(::testing::Values<usize>(1024, 4096, 24576),
                       ::testing::Bool()));

// ----- Randomised vecadd sizes, including page-boundary straddlers -----

class VecAddSizeTest : public ::testing::TestWithParam<u32> {};

TEST_P(VecAddSizeTest, ExactAtAwkwardSizes) {
  const u32 n = GetParam();
  std::vector<u32> a(n), b(n);
  Rng rng(n);
  for (u32 i = 0; i < n; ++i) {
    a[i] = static_cast<u32>(rng.Next());
    b[i] = static_cast<u32>(rng.Next());
  }
  FpgaSystem sys(Epxa1Config());
  auto run = runtime::RunVecAddVim(sys, a, b);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (u32 i = 0; i < n; ++i) {
    ASSERT_EQ(run.value().output[i], a[i] + b[i]) << i;
  }
  CheckReportInvariants(run.value().report);
}

INSTANTIATE_TEST_SUITE_P(AwkwardSizes, VecAddSizeTest,
                         ::testing::Values(1, 2, 511, 512, 513, 1023, 1024,
                                           1025, 2047, 5000));

}  // namespace
}  // namespace vcop
