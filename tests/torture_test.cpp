// Randomized fault-injection torture harness — the headline test of the
// fault substrate (DESIGN.md §9).
//
// Thousands of seeded FaultPlans run the four reference workloads
// (adpcmdecode, IDEA, vecadd, conv3x3) against the software model. The
// invariant under torture is absolute: every run either completes with
// output byte-identical to the software reference, or fails with a
// clean non-OK Status — no hangs, no unbounded simulated time, no
// silently corrupted results. Each failure is replayable from its seed
// alone (base/fault.h).
//
// TORTURE_SEEDS in the environment overrides the seed count (CI's
// sanitizer job runs a reduced smoke; the default is the acceptance
// floor of 1000).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "cp/adpcm_cp.h"
#include "base/fault.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/service.h"
#include "os/vcopd.h"
#include "os/vim.h"
#include "sim/fleet.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

u32 TortureSeeds() {
  if (const char* env = std::getenv("TORTURE_SEEDS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<u32>(n);
  }
  return 1000;
}

/// Any run that pushes the simulated clock past this is considered hung
/// (the workloads finish in well under a simulated second; the watchdog
/// bounds every recovery path in single-digit milliseconds).
constexpr Picoseconds kSimTimeBound = 10ull * 1000 * 1000 * 1000 * 1000;

template <typename T>
std::vector<u8> AsBytes(const std::vector<T>& v) {
  std::vector<u8> bytes(v.size() * sizeof(T));
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

struct TortureOutcome {
  Status status = Status::Ok();
  bool exact = false;             // output == software reference
  std::vector<u8> output;         // raw bytes, for bit-identity checks
  os::ExecutionReport report;     // valid when status.ok()
  os::VimServiceStats service;
  Picoseconds sim_now = 0;
};

/// Runs workload `seed % 4` on a fresh EPXA1 platform under `plan`
/// (nullptr = no plan installed at all). Input data derives from the
/// same seed, so reference and coprocessor always agree on the dataset.
/// With `iommu` the zero-copy DMA path (DESIGN.md §13) replaces the CPU
/// page copies — the deterministic IOMMU-site tests below run on it.
TortureOutcome TortureRun(u64 seed, FaultPlan* plan, bool iommu = false,
                          bool two_level = false) {
  os::KernelConfig config = Epxa1Config();
  config.vim.iommu = iommu;
  if (two_level) {
    // Tiny L1 backed by a shared L2 at the same total entry budget:
    // every fault plan now exercises installs and parity on two CAMs.
    config.l1_tlb_entries = 2;
    config.l2_tlb_entries = 6;
  }
  FpgaSystem sys(config);
  if (plan != nullptr) sys.kernel().InstallFaultPlan(plan);

  TortureOutcome out;
  switch (seed % 4) {
    case 0: {  // ADPCM decode, sequential byte stream
      const std::vector<u8> input = apps::MakeAdpcmStream(2048, seed);
      std::vector<i16> expect(input.size() * 2);
      apps::AdpcmState state;
      apps::AdpcmDecode(input, expect, state);
      auto run = runtime::RunAdpcmVim(sys, input);
      out.status = run.status();
      if (run.ok()) {
        out.exact = run.value().output == expect;
        out.output = AsBytes(run.value().output);
        out.report = run.value().report;
      }
      break;
    }
    case 1: {  // IDEA ECB, random payload
      const std::vector<u8> plain = apps::MakeRandomBytes(1024, seed);
      const apps::IdeaSubkeys subkeys =
          apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
      std::vector<u8> expect(plain.size());
      apps::IdeaCryptEcb(subkeys, plain, expect);
      auto run = runtime::RunIdeaVim(sys, subkeys, plain);
      out.status = run.status();
      if (run.ok()) {
        out.exact = run.value().output == expect;
        out.output = AsBytes(run.value().output);
        out.report = run.value().report;
      }
      break;
    }
    case 2: {  // vecadd, streaming three objects
      std::vector<u32> a(512), b(512), expect(512);
      for (u32 i = 0; i < 512; ++i) {
        a[i] = static_cast<u32>(seed) * 1000003u + i;
        b[i] = static_cast<u32>(seed) * 7919u + 3u * i;
        expect[i] = a[i] + b[i];
      }
      auto run = runtime::RunVecAddVim(sys, a, b);
      out.status = run.status();
      if (run.ok()) {
        out.exact = run.value().output == expect;
        out.output = AsBytes(run.value().output);
        out.report = run.value().report;
      }
      break;
    }
    default: {  // 3x3 convolution, strided three-row window
      const u32 width = 48, height = 24;
      const std::vector<u8> image = apps::MakeTestImage(width, height, seed);
      const apps::Conv3x3Kernel kernel = apps::BoxBlurKernel();
      const u32 shift = 3;
      std::vector<u8> expect(image.size());
      apps::Convolve3x3(image, width, height, kernel, shift, expect);
      auto run = runtime::RunConv3x3Vim(sys, image, width, height, kernel,
                                        shift);
      out.status = run.status();
      if (run.ok()) {
        out.exact = run.value().output == expect;
        out.output = AsBytes(run.value().output);
        out.report = run.value().report;
      }
      break;
    }
  }
  out.service = sys.kernel().vim().service_stats();
  out.sim_now = sys.kernel().simulator().now();
  return out;
}

// ----- the randomized harness -----

TEST(TortureTest, SeededFaultPlansCompleteExactlyOrFailCleanly) {
  const u32 seeds = TortureSeeds();
  // Every seed is an isolated simulation, so the sweep fans out over
  // the fleet runner; results land by seed index and the verdicts below
  // are evaluated in seed order, identical to the old sequential loop.
  struct SeedVerdict {
    bool ok = false;
    bool exact = false;
    u64 injected = 0;
    Picoseconds sim_now = 0;
  };
  const std::vector<SeedVerdict> verdicts = sim::FleetMap<SeedVerdict>(
      seeds, [](usize i) -> SeedVerdict {
        const u64 seed = static_cast<u64>(i) + 1;
        FaultPlan plan = FaultPlan::Random(seed);
        const TortureOutcome out = TortureRun(seed, &plan);
        return SeedVerdict{out.status.ok(), out.exact, plan.total_injected(),
                           out.sim_now};
      });
  u32 completed = 0;
  u32 failed = 0;
  u64 injected_total = 0;
  for (usize i = 0; i < verdicts.size(); ++i) {
    const u64 seed = static_cast<u64>(i) + 1;
    const SeedVerdict& v = verdicts[i];
    injected_total += v.injected;
    ASSERT_LT(v.sim_now, kSimTimeBound) << "seed " << seed << " hung";
    if (v.ok) {
      ++completed;
      ASSERT_TRUE(v.exact)
          << "seed " << seed << ": run reported success with output "
          << "differing from the software reference (" << v.injected
          << " faults injected)";
    } else {
      ++failed;  // a clean, replayable failure is an accepted outcome
    }
  }
  EXPECT_EQ(completed + failed, seeds);
  // The mix must actually exercise both paths: most plans are
  // recoverable, some (hangs, config errors, saturated buses) are not.
  EXPECT_GT(completed, seeds / 4);
  if (seeds >= 200) {
    EXPECT_GT(failed, 0u);
    EXPECT_GT(injected_total, 0u);
  }
  RecordProperty("completed", static_cast<int>(completed));
  RecordProperty("failed", static_cast<int>(failed));
}

TEST(TortureTest, FailuresAreReplayableFromSeedAlone) {
  for (const u64 seed : {5ull, 13ull, 21ull, 34ull, 55ull}) {
    FaultPlan first_plan = FaultPlan::Random(seed);
    FaultPlan second_plan = FaultPlan::Random(seed);
    const TortureOutcome first = TortureRun(seed, &first_plan);
    const TortureOutcome second = TortureRun(seed, &second_plan);
    EXPECT_EQ(first.status.code(), second.status.code()) << "seed " << seed;
    EXPECT_EQ(first.output, second.output) << "seed " << seed;
    EXPECT_EQ(first.sim_now, second.sim_now) << "seed " << seed;
    EXPECT_EQ(first_plan.total_injected(), second_plan.total_injected())
        << "seed " << seed;
  }
}

// ----- the acceptance invariant: an empty plan is exactly free -----

TEST(TortureTest, EmptyPlanIsBitIdenticalToTheFaultFreeEngine) {
  for (u64 workload = 0; workload < 4; ++workload) {
    const u64 seed = 100 + workload;  // seed % 4 selects the workload
    const TortureOutcome bare = TortureRun(seed, nullptr);
    FaultPlan empty;
    ASSERT_TRUE(empty.empty());
    const TortureOutcome with_plan = TortureRun(seed, &empty);

    ASSERT_TRUE(bare.status.ok()) << bare.status.ToString();
    ASSERT_TRUE(with_plan.status.ok()) << with_plan.status.ToString();
    EXPECT_TRUE(bare.exact);
    EXPECT_TRUE(with_plan.exact);
    EXPECT_EQ(bare.output, with_plan.output) << "workload " << workload;
    // The whole report — wall time included — must be bit-identical:
    // with nothing armed, not a single extra event may be scheduled.
    EXPECT_EQ(bare.report.total, with_plan.report.total);
    EXPECT_EQ(bare.report.t_hw, with_plan.report.t_hw);
    EXPECT_EQ(bare.report.t_dp, with_plan.report.t_dp);
    EXPECT_EQ(bare.report.t_imu, with_plan.report.t_imu);
    EXPECT_EQ(bare.report.t_invoke, with_plan.report.t_invoke);
    EXPECT_EQ(bare.report.cp_cycles, with_plan.report.cp_cycles);
    EXPECT_EQ(bare.report.vim.faults, with_plan.report.vim.faults);
    EXPECT_EQ(bare.report.vim.tlb_refills, with_plan.report.vim.tlb_refills);
    EXPECT_EQ(bare.report.vim.evictions, with_plan.report.vim.evictions);
    EXPECT_EQ(bare.report.imu.accesses, with_plan.report.imu.accesses);
    EXPECT_EQ(bare.sim_now, with_plan.sim_now);
    // And no recovery machinery may have woken up.
    EXPECT_EQ(with_plan.service.watchdog_wakeups, 0u);
    EXPECT_EQ(with_plan.service.transfer_retries, 0u);
  }
}

// ----- targeted deterministic recovery paths -----

TEST(TortureTest, TransferBusErrorIsRetriedToExactCompletion) {
  FaultPlan plan;
  plan.At(FaultSite::kAhbError, 1);  // first page transfer bus-errors
  const TortureOutcome out = TortureRun(2, &plan);  // vecadd
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_GE(out.service.transfer_retries, 1u);
  EXPECT_EQ(out.service.transfer_retry_failures, 0u);
}

TEST(TortureTest, SaturatedBusFailsCleanlyAfterRetryExhaustion) {
  FaultPlan plan;
  plan.WithProbability(FaultSite::kAhbError, 1.0);  // every transfer dies
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_FALSE(out.status.ok());
  EXPECT_GE(out.service.transfer_retry_failures, 1u);
  ASSERT_LT(out.sim_now, kSimTimeBound);
}

TEST(TortureTest, AllInterruptsDroppedIsRecoveredByTheWatchdog) {
  FaultPlan plan;
  plan.WithProbability(FaultSite::kIrqDrop, 1.0);  // CPU never sees an IRQ
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_GT(out.service.watchdog_recoveries, 0u);
  EXPECT_GT(out.service.watchdog_wakeups, 0u);
}

TEST(TortureTest, DuplicateInterruptsAreServicedIdempotently) {
  FaultPlan plan;
  plan.WithProbability(FaultSite::kIrqDuplicate, 1.0);  // every IRQ twice
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_GT(out.service.duplicate_irqs_ignored, 0u);
}

TEST(TortureTest, SpuriousFaultInterruptsAreIgnored) {
  FaultPlan plan;
  plan.WithProbability(FaultSite::kSpuriousFault, 1.0);
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_GT(out.service.spurious_faults_ignored +
                out.service.duplicate_irqs_ignored,
            0u);
}

TEST(TortureTest, TlbParityCorruptionIsDetectedAndRefilled) {
  FaultPlan plan;
  plan.At(FaultSite::kTlbParity, 1);  // first installed entry corrupted
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_GE(out.service.tlb_parity_drops, 1u);
}

TEST(TortureTest, TlbParityOnL1InstallRecoversViaL2Refill) {
  // Two-level mode, first TLB write corrupted. OS installs write L1
  // first, so the damaged entry sits in the micro-TLB while its L2 twin
  // is intact: the lookup drops the corrupt L1 entry and the hardware
  // refills it from L2 without a full fault service.
  FaultPlan plan;
  plan.At(FaultSite::kTlbParity, 1);
  const TortureOutcome out =
      TortureRun(2, &plan, /*iommu=*/false, /*two_level=*/true);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(plan.stats(FaultSite::kTlbParity).injected, 1u);
  EXPECT_GE(out.service.tlb_parity_drops, 1u);
}

TEST(TortureTest, TlbParityOnL2InstallRecoversViaFaultService) {
  // The second TLB write of a run is the L2 half of the first OS
  // install: L1 keeps translating until it recycles the entry, after
  // which the corrupt L2 twin is dropped on match and the access takes
  // the ordinary OS fault path. Either way the run must complete
  // exactly.
  FaultPlan plan;
  plan.At(FaultSite::kTlbParity, 2);
  const TortureOutcome out =
      TortureRun(2, &plan, /*iommu=*/false, /*two_level=*/true);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(plan.stats(FaultSite::kTlbParity).injected, 1u);
}

TEST(TortureTest, SeededTlbWritePlansAreDeterministicUnderHierarchy) {
  // Seeded fault plans against both levels replay bit-identically:
  // same outputs, same final timestamp, same injection counts.
  for (const u64 seed : {1ull, 2ull, 3ull, 5ull, 8ull}) {
    FaultPlan plan_a;
    plan_a.WithProbability(FaultSite::kTlbParity, 0.25);
    FaultPlan plan_b;
    plan_b.WithProbability(FaultSite::kTlbParity, 0.25);
    const TortureOutcome a =
        TortureRun(seed, &plan_a, /*iommu=*/false, /*two_level=*/true);
    const TortureOutcome b =
        TortureRun(seed, &plan_b, /*iommu=*/false, /*two_level=*/true);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    EXPECT_TRUE(a.exact);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.sim_now, b.sim_now);
    EXPECT_EQ(plan_a.stats(FaultSite::kTlbParity).injected,
              plan_b.stats(FaultSite::kTlbParity).injected);
  }
}

TEST(TortureTest, IommuTranslationFaultIsRetriedToExactCompletion) {
  FaultPlan plan;
  plan.At(FaultSite::kIommuTranslationFault, 1);  // first walk faults
  const TortureOutcome out = TortureRun(2, &plan, /*iommu=*/true);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  EXPECT_GE(out.report.vim.iommu_faults, 1u);
  EXPECT_GE(out.service.transfer_retries, 1u);
  EXPECT_EQ(out.service.transfer_retry_failures, 0u);
  EXPECT_EQ(plan.stats(FaultSite::kIommuTranslationFault).injected, 1u);
}

TEST(TortureTest, SaturatedIommuWalksFailCleanlyAfterRetryExhaustion) {
  FaultPlan plan;
  plan.WithProbability(FaultSite::kIommuTranslationFault, 1.0);
  const TortureOutcome out = TortureRun(2, &plan, /*iommu=*/true);
  ASSERT_FALSE(out.status.ok());
  EXPECT_GE(out.service.transfer_retry_failures, 1u);
  ASSERT_LT(out.sim_now, kSimTimeBound);
}

TEST(TortureTest, IotlbCorruptionIsDroppedAndRewalkedTransparently) {
  FaultPlan plan;
  plan.At(FaultSite::kIotlbCorrupt, 1);  // first IO-TLB hit is damaged
  const TortureOutcome out = TortureRun(2, &plan, /*iommu=*/true);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_TRUE(out.exact);
  // Parity recovery is invisible to the service layer: no retries, no
  // recovered faults — only the plan's counter knows it fired.
  EXPECT_EQ(out.report.vim.iommu_faults, 0u);
  EXPECT_EQ(plan.stats(FaultSite::kIotlbCorrupt).injected, 1u);
}

TEST(TortureTest, RandomPlansNeverArmTheIommuSites) {
  // FaultPlan::Random deliberately excludes the IOMMU sites (they only
  // present opportunities when the subsystem is on). Pin that: even on
  // the iommu path, random plans give them opportunities but never fire.
  for (const u64 seed : {3ull, 8ull, 17ull}) {
    FaultPlan plan = FaultPlan::Random(seed);
    const TortureOutcome out = TortureRun(seed * 4 + 2, &plan, true);
    ASSERT_LT(out.sim_now, kSimTimeBound);
    EXPECT_EQ(plan.stats(FaultSite::kIommuTranslationFault).injected, 0u);
    EXPECT_EQ(plan.stats(FaultSite::kIotlbCorrupt).injected, 0u);
    EXPECT_GT(plan.stats(FaultSite::kIommuTranslationFault).opportunities,
              0u);
  }
}

TEST(TortureTest, CoprocessorHangIsAbortedByTheWatchdog) {
  FaultPlan plan;
  plan.At(FaultSite::kCpHang, 1);  // first translation never answers
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), ErrorCode::kUnavailable)
      << out.status.ToString();
  EXPECT_GE(out.service.watchdog_hang_aborts, 1u);
  // The hang is detected within a small number of watchdog periods,
  // not at the event-budget backstop.
  ASSERT_LT(out.sim_now, kSimTimeBound);
}

TEST(TortureTest, ConfigurationFaultFailsTheLoadCleanly) {
  FaultPlan plan;
  plan.At(FaultSite::kConfigError, 1);
  const TortureOutcome out = TortureRun(2, &plan);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), ErrorCode::kUnavailable)
      << out.status.ToString();
}

// ----- configuration-cache fault sites (hw/fabric.h, DESIGN.md §15) --

/// Two designs alternating on a two-slot fabric under vcopd. With a
/// giant time slice the dispatch order is the DRR ring verbatim —
/// adpcm, vecadd, adpcm, vecadd — so kConfigError opportunities are
/// deterministic: 1 = configure adpcm, 2 = configure vecadd,
/// 3 = activate adpcm (resident hit), 4 = activate vecadd.
struct SlotRig {
  FpgaSystem sys;
  os::Vcopd daemon;
  os::TenantId adpcm_tenant = 0, vec_tenant = 0;
  runtime::HostBuffer<u8> adpcm_in;
  runtime::HostBuffer<i16> adpcm_out;
  std::vector<i16> adpcm_expect;
  runtime::HostBuffer<u32> a, b, c;
  std::vector<u32> vec_expect;
  static constexpr u32 kAdpcmBytes = 512;
  static constexpr u32 kVecN = 128;

  static os::KernelConfig Config() {
    os::KernelConfig config = Epxa1Config();
    config.config_slots = 2;
    return config;
  }
  static os::VcopdConfig DaemonConfig() {
    os::VcopdConfig config;
    config.policy = os::ServicePolicy::kFairShare;
    config.time_slice = 1ull * 1000 * 1000 * 1000 * 1000;  // never preempt
    return config;
  }

  SlotRig() : sys(Config()), daemon(sys.kernel(), DaemonConfig()) {
    adpcm_tenant = daemon.RegisterTenant("adpcm").value();
    std::vector<u8> input(kAdpcmBytes);
    for (u32 i = 0; i < kAdpcmBytes; ++i) {
      input[i] = static_cast<u8>((i * 2654435761u) >> 13);
    }
    adpcm_in = sys.Allocate<u8>(kAdpcmBytes).value();
    adpcm_in.Fill(input);
    adpcm_out = sys.Allocate<i16>(kAdpcmBytes * 2).value();
    adpcm_expect.resize(kAdpcmBytes * 2);
    apps::AdpcmState state;
    apps::AdpcmDecode(input, adpcm_expect, state);
    runtime::VcopdClient ac(daemon, adpcm_tenant);
    VCOP_CHECK(ac.Map(cp::AdpcmDecodeCoprocessor::kObjIn, adpcm_in,
                      os::Direction::kIn).ok());
    VCOP_CHECK(ac.Map(cp::AdpcmDecodeCoprocessor::kObjOut, adpcm_out,
                      os::Direction::kOut).ok());

    vec_tenant = daemon.RegisterTenant("vec").value();
    a = sys.Allocate<u32>(kVecN).value();
    b = sys.Allocate<u32>(kVecN).value();
    c = sys.Allocate<u32>(kVecN).value();
    std::vector<u32> va(kVecN), vb(kVecN);
    for (u32 i = 0; i < kVecN; ++i) {
      va[i] = 1000003u + i;
      vb[i] = 7919u + 3u * i;
    }
    a.Fill(va);
    b.Fill(vb);
    vec_expect.resize(kVecN);
    for (u32 i = 0; i < kVecN; ++i) vec_expect[i] = va[i] + vb[i];
    runtime::VcopdClient vc(daemon, vec_tenant);
    VCOP_CHECK(vc.Map(cp::VecAddCoprocessor::kObjA, a,
                      os::Direction::kIn).ok());
    VCOP_CHECK(vc.Map(cp::VecAddCoprocessor::kObjB, b,
                      os::Direction::kIn).ok());
    VCOP_CHECK(vc.Map(cp::VecAddCoprocessor::kObjC, c,
                      os::Direction::kOut).ok());
  }

  /// Submits adpcm/vecadd jobs interleaved and drains; returns the
  /// per-ticket statuses in submission order.
  std::vector<Status> Drain(u32 rounds) {
    std::vector<os::Ticket> tickets;
    runtime::VcopdClient ac(daemon, adpcm_tenant);
    runtime::VcopdClient vc(daemon, vec_tenant);
    for (u32 round = 0; round < rounds; ++round) {
      tickets.push_back(
          ac.Submit(cp::AdpcmDecodeBitstream(), {kAdpcmBytes, 0u, 0u})
              .value());
      tickets.push_back(
          vc.Submit(cp::VecAddBitstream(), {kVecN}).value());
    }
    VCOP_CHECK(daemon.RunUntilIdle().ok());
    std::vector<Status> statuses;
    for (const os::Ticket ticket : tickets) {
      const os::JobResult* result = daemon.Poll(ticket);
      VCOP_CHECK(result != nullptr);
      statuses.push_back(result->status);
    }
    return statuses;
  }

  /// The absolute invariant: any job that completed left the exact
  /// reference bytes (its jobs are idempotent over the same input).
  void CheckOutputs(const std::vector<Status>& statuses) {
    bool adpcm_ok = false, vec_ok = false;
    for (usize i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) {
        EXPECT_EQ(statuses[i].code(), ErrorCode::kUnavailable)
            << statuses[i].ToString();
        continue;
      }
      (i % 2 == 0 ? adpcm_ok : vec_ok) = true;
    }
    if (adpcm_ok) {
      EXPECT_EQ(adpcm_out.ToVector(), adpcm_expect);
    }
    if (vec_ok) {
      EXPECT_EQ(c.ToVector(), vec_expect);
    }
  }
};

/// A CRC fault on the 256-byte activation stream of a resident design
/// fails that job cleanly, evicts the damaged slot, and the next use
/// of the design recovers with a full reconfiguration.
TEST(TortureTest, SlotActivationCrcFaultFailsCleanlyAndEvictsTheSlot) {
  SlotRig rig;
  FaultPlan plan;
  plan.At(FaultSite::kConfigError, 3);  // adpcm's re-activation
  rig.sys.kernel().InstallFaultPlan(&plan);
  const std::vector<Status> statuses = rig.Drain(2);
  rig.sys.kernel().InstallFaultPlan(nullptr);

  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_TRUE(statuses[0].ok());   // configure adpcm
  EXPECT_TRUE(statuses[1].ok());   // configure vecadd
  ASSERT_FALSE(statuses[2].ok());  // adpcm activation hits the CRC fault
  EXPECT_EQ(statuses[2].code(), ErrorCode::kUnavailable)
      << statuses[2].ToString();
  EXPECT_TRUE(statuses[3].ok());   // vecadd is still the active design
  rig.CheckOutputs(statuses);
  EXPECT_EQ(rig.daemon.stats().failed, 1u);
  // The damaged slot was evicted, not left claiming a broken design...
  EXPECT_FALSE(rig.sys.kernel().fabric().DesignResident(
      cp::AdpcmDecodeBitstream().name));
  // ...so the tenant recovers by paying a fresh full configuration.
  const std::vector<Status> retry = rig.Drain(1);
  EXPECT_TRUE(retry[0].ok()) << retry[0].ToString();
  EXPECT_TRUE(retry[1].ok());
  EXPECT_EQ(rig.adpcm_out.ToVector(), rig.adpcm_expect);
  EXPECT_GE(rig.daemon.stats().reconfigurations, 3u);
  ASSERT_LT(rig.sys.kernel().simulator().now(), kSimTimeBound);
}

/// Seeded sweep over every configuration-port opportunity in the
/// alternating fleet (configures and activations alike): each plan
/// either completes every job exactly or fails the struck job cleanly,
/// and the outcome is replayable from the opportunity index alone.
TEST(TortureTest, SeededConfigFaultsAtSlotSitesFailCleanOrComplete) {
  for (u32 opportunity = 1; opportunity <= 5; ++opportunity) {
    std::vector<std::vector<Status>> outcomes;
    for (u32 replay = 0; replay < 2; ++replay) {
      SlotRig rig;
      FaultPlan plan;
      plan.At(FaultSite::kConfigError, opportunity);
      rig.sys.kernel().InstallFaultPlan(&plan);
      const std::vector<Status> statuses = rig.Drain(2);
      rig.sys.kernel().InstallFaultPlan(nullptr);
      rig.CheckOutputs(statuses);
      u32 failed = 0;
      for (const Status& status : statuses) failed += status.ok() ? 0 : 1;
      // Opportunity 5 is past the last configuration-port transfer of
      // the fleet: nothing fires.  Otherwise exactly one job is hit.
      EXPECT_EQ(failed, opportunity <= 4 ? 1u : 0u)
          << "opportunity " << opportunity;
      ASSERT_LT(rig.sys.kernel().simulator().now(), kSimTimeBound);
      outcomes.push_back(statuses);
    }
    ASSERT_EQ(outcomes[0].size(), outcomes[1].size());
    for (usize i = 0; i < outcomes[0].size(); ++i) {
      EXPECT_EQ(outcomes[0][i].code(), outcomes[1][i].code())
          << "opportunity " << opportunity << " job " << i;
    }
  }
}

// ----- ring-transport fault sites (os/service.h) -----

/// Shared staging for the transport sites: one vecadd tenant attached
/// to a VcopService over vcopd.
struct ServiceRig {
  FpgaSystem sys;
  os::Vcopd daemon;
  os::VcopService service;
  os::TenantId tenant;
  runtime::HostBuffer<u32> a, b, c;
  std::vector<u32> expect;

  ServiceRig()
      : sys(Epxa1Config()), daemon(sys.kernel()), service(daemon) {
    constexpr u32 n = 128;
    tenant = daemon.RegisterTenant("transport", 1).value();
    a = sys.Allocate<u32>(n).value();
    b = sys.Allocate<u32>(n).value();
    c = sys.Allocate<u32>(n).value();
    std::vector<u32> va(n), vb(n);
    for (u32 i = 0; i < n; ++i) {
      va[i] = 1000003u + i;
      vb[i] = 7919u + 3u * i;
    }
    a.Fill(va);
    b.Fill(vb);
    expect.resize(n);
    for (u32 i = 0; i < n; ++i) expect[i] = va[i] + vb[i];
    runtime::VcopdClient direct(daemon, tenant);
    VCOP_CHECK(direct.Map(cp::VecAddCoprocessor::kObjA, a,
                          os::Direction::kIn).ok());
    VCOP_CHECK(direct.Map(cp::VecAddCoprocessor::kObjB, b,
                          os::Direction::kIn).ok());
    VCOP_CHECK(direct.Map(cp::VecAddCoprocessor::kObjC, c,
                          os::Direction::kOut).ok());
    VCOP_CHECK(service.AttachTenant(tenant).ok());
  }
};

/// The doorbell write vanishes between tenant and service. The
/// descriptor survives in shared memory and the service's re-poll
/// watchdog (armed because a fault plan is installed) rescues it within
/// one period — the job still completes exactly once, exactly right.
TEST(TortureTest, LostDoorbellIsRecoveredByServiceRepoll) {
  ServiceRig rig;
  FaultPlan plan;
  plan.At(FaultSite::kDoorbellLost, 1);
  rig.sys.kernel().InstallFaultPlan(&plan);

  runtime::VcopdClient client(rig.service, rig.tenant);
  const u64 cookie =
      client.SubmitRinged(cp::VecAddBitstream(), {128u}).value();
  EXPECT_EQ(rig.service.stats().doorbells_lost, 1u);
  EXPECT_EQ(rig.daemon.stats().submitted, 0u);  // the kick never landed

  const Result<os::CompletionDescriptor> done = client.Await(cookie);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done.value().code, static_cast<u32>(ErrorCode::kOk));
  EXPECT_GE(rig.service.stats().doorbells_recovered, 1u);
  EXPECT_GE(rig.service.stats().repoll_ticks, 1u);
  EXPECT_EQ(rig.daemon.stats().completed, 1u);
  EXPECT_EQ(rig.c.ToVector(), rig.expect);
  ASSERT_LT(rig.sys.kernel().simulator().now(), kSimTimeBound);
  rig.sys.kernel().InstallFaultPlan(nullptr);
}

/// A descriptor damaged in shared memory between publish and drain is
/// caught by the drain-time checksum and completed with a clean
/// InvalidArgument — it never reaches the fabric; later descriptors in
/// the same ring are unaffected.
TEST(TortureTest, CorruptedDescriptorFailsCleanlyAndSparesTheRest) {
  ServiceRig rig;
  FaultPlan plan;
  plan.At(FaultSite::kDescriptorCorrupt, 1);
  rig.sys.kernel().InstallFaultPlan(&plan);

  runtime::VcopdClient client(rig.service, rig.tenant);
  const u64 doomed =
      client.SubmitRinged(cp::VecAddBitstream(), {128u}).value();
  const u64 healthy =
      client.SubmitRinged(cp::VecAddBitstream(), {128u}).value();

  const Result<os::CompletionDescriptor> bad = client.Await(doomed);
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad.value().code,
            static_cast<u32>(ErrorCode::kInvalidArgument));
  EXPECT_EQ(rig.service.stats().descriptors_rejected, 1u);

  const Result<os::CompletionDescriptor> good = client.Await(healthy);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good.value().code, static_cast<u32>(ErrorCode::kOk));
  EXPECT_EQ(rig.daemon.stats().submitted, 1u);  // only the intact one ran
  EXPECT_EQ(rig.daemon.stats().completed, 1u);
  EXPECT_EQ(rig.c.ToVector(), rig.expect);
  ASSERT_LT(rig.sys.kernel().simulator().now(), kSimTimeBound);
  rig.sys.kernel().InstallFaultPlan(nullptr);
}

}  // namespace
}  // namespace vcop
