// Tests for the DESIGN.md §10 speculation-and-batching features: the
// stride and adaptive prefetch detectors, the VIM's central suggestion
// clamp, the software victim TLB, and the coalesced scatter-gather
// write-back (cost parity, DMA amortisation, mid-burst fault
// recovery).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/adpcm.h"
#include "apps/workloads.h"
#include "base/fault.h"
#include "cp/adpcm_cp.h"
#include "cp/registry.h"
#include "mem/ahb.h"
#include "mem/dp_ram.h"
#include "mem/transfer.h"
#include "mem/user_memory.h"
#include "os/prefetch.h"
#include "os/vcopd.h"
#include "os/vim.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop::os {
namespace {

using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

// ----- stride detector (unit level) -----

std::vector<mem::VirtPage> Pages(
    const std::vector<PrefetchSuggestion>& suggestions) {
  std::vector<mem::VirtPage> pages;
  for (const PrefetchSuggestion& s : suggestions) pages.push_back(s.vpage);
  return pages;
}

TEST(StridePrefetcherTest, LearnsForwardStrideAfterTwoConfirmations) {
  auto p = MakePrefetcher(PrefetchKind::kStride, /*depth=*/2);
  EXPECT_TRUE(p->Suggest(0, 0, 100).empty());   // first touch: no delta
  EXPECT_TRUE(p->Suggest(0, 3, 100).empty());   // stride 3 seen once
  EXPECT_EQ(Pages(p->Suggest(0, 6, 100)),       // confirmed: follow it
            (std::vector<mem::VirtPage>{9, 12}));
  EXPECT_EQ(Pages(p->Suggest(0, 9, 100)),
            (std::vector<mem::VirtPage>{12, 15}));
}

TEST(StridePrefetcherTest, LearnsBackwardStride) {
  auto p = MakePrefetcher(PrefetchKind::kStride, /*depth=*/2);
  EXPECT_TRUE(p->Suggest(0, 90, 100).empty());
  EXPECT_TRUE(p->Suggest(0, 87, 100).empty());
  EXPECT_EQ(Pages(p->Suggest(0, 84, 100)),
            (std::vector<mem::VirtPage>{81, 78}));
}

TEST(StridePrefetcherTest, NoisyTraceNeverReachesConfidence) {
  auto p = MakePrefetcher(PrefetchKind::kStride, /*depth=*/2);
  // Every inter-fault delta is distinct, so the confidence counter
  // oscillates between 0 and 1 and never reaches the threshold.
  for (const mem::VirtPage page : {0u, 2u, 5u, 9u, 14u, 20u, 27u, 35u}) {
    EXPECT_TRUE(p->Suggest(0, page, 100).empty()) << "page " << page;
  }
}

TEST(StridePrefetcherTest, ResetForgetsLearnedStride) {
  auto p = MakePrefetcher(PrefetchKind::kStride, /*depth=*/2);
  p->Suggest(0, 0, 100);
  p->Suggest(0, 3, 100);
  EXPECT_FALSE(p->Suggest(0, 6, 100).empty());
  p->Reset();
  EXPECT_TRUE(p->Suggest(0, 9, 100).empty());   // history gone
  EXPECT_TRUE(p->Suggest(0, 12, 100).empty());  // stride 3 seen once
  EXPECT_FALSE(p->Suggest(0, 15, 100).empty()); // re-learned
}

TEST(StridePrefetcherTest, TracksObjectsIndependently) {
  auto p = MakePrefetcher(PrefetchKind::kStride, /*depth=*/1);
  // Object 0 walks +2, object 1 walks +5; interleaved faults must not
  // bleed one object's stride into the other.
  p->Suggest(0, 0, 100);
  p->Suggest(1, 0, 100);
  p->Suggest(0, 2, 100);
  p->Suggest(1, 5, 100);
  EXPECT_EQ(Pages(p->Suggest(0, 4, 100)), (std::vector<mem::VirtPage>{6}));
  EXPECT_EQ(Pages(p->Suggest(1, 10, 100)),
            (std::vector<mem::VirtPage>{15}));
}

TEST(StridePrefetcherTest, SuggestionsStopAtObjectEnd) {
  auto p = MakePrefetcher(PrefetchKind::kStride, /*depth=*/4);
  p->Suggest(0, 0, 8);
  p->Suggest(0, 2, 8);
  // Steady +2 from page 4: depth 4 would reach pages 6, 8, 10, 12, but
  // only 6 is inside the 8-page object.
  EXPECT_EQ(Pages(p->Suggest(0, 4, 8)), (std::vector<mem::VirtPage>{6}));
}

// ----- adaptive (reference-prediction table) detector -----

TEST(AdaptivePrefetcherTest, TracksInterleavedStreamsIndependently) {
  auto p = MakePrefetcher(PrefetchKind::kAdaptive, /*depth=*/2);
  // Three interleaved unit-stride streams — the conv2d shape (three
  // live image rows, each a stream of consecutive pages). A single
  // stride detector would lock onto the +100 cross-stream delta; the
  // stream slots keep them apart.
  EXPECT_TRUE(p->Suggest(0, 0, 1000).empty());
  EXPECT_TRUE(p->Suggest(0, 100, 1000).empty());
  EXPECT_TRUE(p->Suggest(0, 200, 1000).empty());
  EXPECT_TRUE(p->Suggest(0, 1, 1000).empty());    // stride learned
  EXPECT_TRUE(p->Suggest(0, 101, 1000).empty());
  EXPECT_TRUE(p->Suggest(0, 201, 1000).empty());
  // Third fault of each stream: the automaton reaches steady state and
  // follows each stream's own +1 stride.
  EXPECT_EQ(Pages(p->Suggest(0, 2, 1000)),
            (std::vector<mem::VirtPage>{3, 4}));
  EXPECT_EQ(Pages(p->Suggest(0, 102, 1000)),
            (std::vector<mem::VirtPage>{103, 104}));
  EXPECT_EQ(Pages(p->Suggest(0, 202, 1000)),
            (std::vector<mem::VirtPage>{203, 204}));
}

TEST(AdaptivePrefetcherTest, IrregularTraceDegradesToNoop) {
  auto p = MakePrefetcher(PrefetchKind::kAdaptive, /*depth=*/2);
  // Every fault lands outside the association window of every stream,
  // so each one just starts (or recycles) a slot and predicts nothing.
  for (const mem::VirtPage page :
       {0u, 20u, 41u, 63u, 86u, 110u, 135u, 161u}) {
    EXPECT_TRUE(p->Suggest(0, page, 1000).empty()) << "page " << page;
  }
}

TEST(AdaptivePrefetcherTest, ReFaultOnCurrentPositionIsNotNoise) {
  auto p = MakePrefetcher(PrefetchKind::kAdaptive, /*depth=*/1);
  p->Suggest(0, 0, 100);
  p->Suggest(0, 1, 100);
  EXPECT_EQ(Pages(p->Suggest(0, 2, 100)), (std::vector<mem::VirtPage>{3}));
  // A repeated fault on the stream's current page (eviction + re-touch)
  // must not demote the automaton: the stream keeps suggesting.
  EXPECT_TRUE(p->Suggest(0, 2, 100).empty());
  EXPECT_EQ(Pages(p->Suggest(0, 3, 100)), (std::vector<mem::VirtPage>{4}));
}

// ----- the VIM's central Suggest-contract clamp -----

/// Violates every clause of the Prefetcher contract on purpose, plus
/// one legitimate suggestion so the test can see valid ones survive.
class HostilePrefetcher final : public Prefetcher {
 public:
  std::string_view name() const override { return "hostile"; }
  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                          mem::VirtPage vpage,
                                          u32 num_pages) override {
    std::vector<PrefetchSuggestion> out;
    out.push_back({static_cast<hw::ObjectId>(object + 1), vpage});  // wrong object
    out.push_back({object, vpage});                                 // the faulting page
    out.push_back({object, num_pages + 5});                         // out of range
    if (vpage + 1 < num_pages) out.push_back({object, vpage + 1});  // legitimate
    return out;
  }
};

TEST(VimPrefetchContractTest, HostileSuggestionsAreDroppedCentrally) {
  KernelConfig config = runtime::Epxa1Config();
  config.vim.prefetch = PrefetchKind::kNone;  // replaced below
  FpgaSystem sys(config);
  sys.kernel().vim().SetPrefetcher(std::make_unique<HostilePrefetcher>());

  const std::vector<u8> input = apps::MakeAdpcmStream(4096, 5);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // A buggy strategy cannot corrupt a run or crash the VIM: the clamp
  // drops every contract violation and counts them...
  EXPECT_EQ(run.value().output, expect);
  EXPECT_GT(run.value().report.vim.prefetch_suggestions_dropped, 0u);
  // ...while the legitimate suggestions still get prefetched.
  EXPECT_GT(run.value().report.vim.prefetched_pages, 0u);
}

// ----- software victim TLB -----

struct VictimRun {
  VimServiceStats service;
  u32 live_entries = 0;
  bool correct = false;
};

/// Two ADPCM tenants under untagged fair-share with a short slice: every
/// switch fully flushes the interface, so the switched-out tenant's
/// mid-page in/out pages re-fault at resume — the victim TLB's case.
VictimRun RunContendedAdpcm(u32 victim_entries) {
  KernelConfig kernel_config;  // EPXA1 defaults
  kernel_config.vim.victim_tlb_entries = victim_entries;
  FpgaSystem sys(kernel_config);
  VcopdConfig config;
  config.policy = ServicePolicy::kFairShare;
  config.time_slice = 50ull * 1000 * 1000;  // 50 us: far below runtime
  config.quantum = 100ull * 1000 * 1000;
  config.asid_tagging = false;
  Vcopd daemon(sys.kernel(), config);
  sys.kernel().vim().ResetServiceStats();

  struct Tenant {
    TenantId id = 0;
    HostBuffer<u8> in;
    HostBuffer<i16> out;
    std::vector<i16> expect;
    u32 bytes = 0;
  };
  std::vector<Tenant> tenants(2);
  std::vector<Ticket> tickets;
  for (u32 t = 0; t < 2; ++t) {
    Tenant& tenant = tenants[t];
    tenant.bytes = 12 * 1024;
    tenant.id = daemon.RegisterTenant(t == 0 ? "alpha" : "beta").value();
    const std::vector<u8> input =
        apps::MakeAdpcmStream(tenant.bytes, /*seed=*/t + 1);
    tenant.in = sys.Allocate<u8>(tenant.bytes).value();
    tenant.in.Fill(input);
    tenant.out = sys.Allocate<i16>(tenant.bytes * 2).value();
    tenant.expect.resize(tenant.bytes * 2);
    apps::AdpcmState state;
    apps::AdpcmDecode(input, tenant.expect, state);
    VcopdClient client(daemon, tenant.id);
    VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjIn, tenant.in,
                          Direction::kIn).ok());
    VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjOut, tenant.out,
                          Direction::kOut).ok());
    tickets.push_back(client.Submit(cp::AdpcmDecodeBitstream(),
                                    {tenant.bytes, 0u, 0u}).value());
  }
  VCOP_CHECK(daemon.RunUntilIdle().ok());

  VictimRun run;
  run.service = sys.kernel().vim().service_stats();
  run.live_entries = sys.kernel().vim().victim_tlb_live_entries();
  run.correct = true;
  for (u32 t = 0; t < 2; ++t) {
    run.correct = run.correct && daemon.Poll(tickets[t])->status.ok() &&
                  tenants[t].out.ToVector() == tenants[t].expect;
  }
  return run;
}

TEST(VictimTlbTest, HitsUnderUntaggedContention) {
  const VictimRun run = RunContendedAdpcm(/*victim_entries=*/16);
  ASSERT_TRUE(run.correct);  // the cache changes timing, never bytes
  EXPECT_GT(run.service.victim_tlb_hits, 0u);
  EXPECT_GT(run.service.victim_tlb_misses, 0u);
}

TEST(VictimTlbTest, DisabledCountsNothing) {
  const VictimRun run = RunContendedAdpcm(/*victim_entries=*/0);
  ASSERT_TRUE(run.correct);
  EXPECT_EQ(run.service.victim_tlb_hits, 0u);
  EXPECT_EQ(run.service.victim_tlb_misses, 0u);
  EXPECT_EQ(run.live_entries, 0u);
}

TEST(VictimTlbTest, FlushAsidInvalidatesRecords) {
  KernelConfig config = runtime::Epxa1Config();
  config.vim.victim_tlb_entries = 16;
  FpgaSystem sys(config);
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 3);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  Vim& vim = sys.kernel().vim();
  ASSERT_GT(vim.victim_tlb_live_entries(), 0u);
  // "This ASID's interface state is gone" must extend to the cached
  // eviction records: a flush that left them live could later redeem a
  // frame for a mapping that no longer exists.
  vim.FlushAsid(sys.kernel().default_space().asid(), /*write_back=*/false);
  EXPECT_EQ(vim.victim_tlb_live_entries(), 0u);
}

// ----- coalesced scatter-gather write-back (mem level) -----

constexpr u32 kPage = 2048;

class StoreBurstTest : public ::testing::Test {
 protected:
  StoreBurstTest()
      : user_(1 << 16),
        dp_(16384),
        // 100 MHz on both clocks: an integer 10000 ps period, so every
        // cycles->time conversion is exact and cycle-level equalities
        // show up as picosecond-level equalities.
        engine_(mem::AhbModel(mem::AhbTiming{}, Frequency::MHz(100)),
                Frequency::MHz(100), mem::CopyMode::kDoubleCopy,
                /*sdram_cycles_per_word=*/12) {}

  /// Fills DP-RAM with a pattern and returns `n` page-sized segments
  /// targeting freshly allocated user buffers.
  std::vector<mem::StoreSegment> MakePageSegments(u32 n) {
    std::vector<u8> pattern(kPage);
    std::vector<mem::StoreSegment> segments;
    for (u32 i = 0; i < n; ++i) {
      for (u32 b = 0; b < kPage; ++b) {
        pattern[b] = static_cast<u8>(i * 37 + b * 11);
      }
      dp_.Write(mem::DualPortRam::Port::kProcessor, i * kPage, pattern);
      const mem::UserAddr dst = user_.Allocate(kPage).value();
      segments.push_back({i * kPage, dst, kPage});
    }
    return segments;
  }

  void ExpectSegmentLanded(const mem::StoreSegment& seg, u32 index) {
    std::vector<u8> back(seg.len);
    user_.ReadBytes(seg.dst, back);
    for (u32 b = 0; b < seg.len; ++b) {
      ASSERT_EQ(back[b], static_cast<u8>(index * 37 + b * 11))
          << "segment " << index << " byte " << b;
    }
  }

  mem::UserMemory user_;
  mem::DualPortRam dp_;
  mem::TransferEngine engine_;
};

TEST_F(StoreBurstTest, SingleSegmentMatchesStorePage) {
  const std::vector<mem::StoreSegment> segments = MakePageSegments(1);
  const mem::BurstResult r = engine_.StoreBurst(dp_, user_, segments);
  EXPECT_FALSE(r.bus_error);
  EXPECT_EQ(r.bytes, kPage);
  EXPECT_EQ(r.completed_segments, 1u);
  EXPECT_EQ(r.time, engine_.PriceTransfer(kPage));
  ExpectSegmentLanded(segments[0], 0);
}

TEST_F(StoreBurstTest, AlignedPagesPriceExactlyAsPerPageInCpuModes) {
  // 2 KB pages are whole multiples of the 16-beat burst, so packing
  // them into one transaction saves no bus work in the CPU copy modes:
  // at an integer clock period the burst price equals the per-page sum
  // to the picosecond.
  for (const mem::CopyMode mode :
       {mem::CopyMode::kDoubleCopy, mem::CopyMode::kSingleCopy}) {
    engine_.set_mode(mode);
    EXPECT_EQ(engine_.PriceBurst(4 * kPage), 4 * engine_.PriceTransfer(kPage))
        << ToString(mode);
  }
}

TEST_F(StoreBurstTest, DmaBurstAmortisesChannelSetup) {
  engine_.set_mode(mem::CopyMode::kDma);
  // One channel programming (200 CPU cycles) instead of four: the burst
  // is cheaper by exactly the three saved setups.
  const Picoseconds setup = Frequency::MHz(100).Duration(200);
  EXPECT_EQ(4 * engine_.PriceTransfer(kPage) - engine_.PriceBurst(4 * kPage),
            3 * setup);

  const std::vector<mem::StoreSegment> segments = MakePageSegments(4);
  const mem::BurstResult r = engine_.StoreBurst(dp_, user_, segments);
  EXPECT_FALSE(r.bus_error);
  EXPECT_EQ(r.completed_segments, 4u);
  EXPECT_EQ(r.time, engine_.PriceBurst(4 * kPage));
  for (u32 i = 0; i < 4; ++i) ExpectSegmentLanded(segments[i], i);
}

TEST_F(StoreBurstTest, PartialTailSegmentsPackIntoSharedBursts) {
  // Two 20-byte segments: 5 words each, so separately each pays a full
  // 16-beat burst setup; packed, their 10 words share ONE burst — the
  // combined price is strictly cheaper than the per-segment sum.
  std::vector<u8> data(20, 0xAB);
  dp_.Write(mem::DualPortRam::Port::kProcessor, 0, data);
  dp_.Write(mem::DualPortRam::Port::kProcessor, 4096, data);
  const mem::UserAddr a = user_.Allocate(20).value();
  const mem::UserAddr b = user_.Allocate(20).value();
  const std::vector<mem::StoreSegment> segments{{0, a, 20}, {4096, b, 20}};
  const mem::BurstResult r = engine_.StoreBurst(dp_, user_, segments);
  EXPECT_FALSE(r.bus_error);
  EXPECT_EQ(r.bytes, 40u);
  EXPECT_LT(r.time, 2 * engine_.PriceTransfer(20));
  std::vector<u8> back(20);
  user_.ReadBytes(a, back);
  EXPECT_EQ(back, data);
  user_.ReadBytes(b, back);
  EXPECT_EQ(back, data);
}

TEST_F(StoreBurstTest, ErrorMidBurstKeepsEarlierSegments) {
  FaultPlan plan;
  plan.At(FaultSite::kAhbError, 3);  // third segment of the burst
  engine_.set_fault_plan(&plan);
  const std::vector<mem::StoreSegment> segments = MakePageSegments(4);
  // Pre-fill the targets so "never written" is observable.
  const std::vector<u8> sentinel(kPage, 0xEE);
  for (const mem::StoreSegment& seg : segments) {
    user_.WriteBytes(seg.dst, sentinel);
  }

  const mem::BurstResult r = engine_.StoreBurst(dp_, user_, segments);
  EXPECT_TRUE(r.bus_error);
  EXPECT_EQ(r.completed_segments, 2u);
  EXPECT_EQ(r.bytes, 2u * kPage);
  ExpectSegmentLanded(segments[0], 0);
  ExpectSegmentLanded(segments[1], 1);
  // The failing and never-started segments left user memory untouched.
  for (u32 i = 2; i < 4; ++i) {
    std::vector<u8> back(kPage);
    user_.ReadBytes(segments[i].dst, back);
    EXPECT_EQ(back, sentinel) << "segment " << i;
  }
}

TEST_F(StoreBurstTest, RetriedBeatCostsTimeNotData) {
  FaultPlan plan;
  plan.At(FaultSite::kAhbRetry, 1);
  engine_.set_fault_plan(&plan);
  const std::vector<mem::StoreSegment> segments = MakePageSegments(2);
  const mem::BurstResult r = engine_.StoreBurst(dp_, user_, segments);
  EXPECT_FALSE(r.bus_error);
  EXPECT_EQ(r.completed_segments, 2u);
  EXPECT_GE(r.retried_beats, 1u);
  EXPECT_GT(r.time, engine_.PriceBurst(2 * kPage));
  ExpectSegmentLanded(segments[0], 0);
  ExpectSegmentLanded(segments[1], 1);
}

// ----- coalesced write-back through the VIM, with and without faults -----

struct CoalesceRun {
  bool ok = false;
  bool exact = false;
  VimServiceStats service;
};

CoalesceRun RunAdpcmCoalesced(bool coalesce, FaultPlan* plan) {
  KernelConfig config = runtime::Epxa1Config();
  config.vim.coalesce_writeback = coalesce;
  FpgaSystem sys(config);
  if (plan != nullptr) sys.kernel().InstallFaultPlan(plan);
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 9);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);

  CoalesceRun out;
  auto run = runtime::RunAdpcmVim(sys, input);
  out.ok = run.ok();
  out.exact = run.ok() && run.value().output == expect;
  out.service = sys.kernel().vim().service_stats();
  return out;
}

TEST(CoalesceVimTest, BurstFlushIsExactAndCounted) {
  const CoalesceRun off = RunAdpcmCoalesced(false, nullptr);
  const CoalesceRun on = RunAdpcmCoalesced(true, nullptr);
  ASSERT_TRUE(off.ok && off.exact);
  ASSERT_TRUE(on.ok && on.exact);
  EXPECT_EQ(off.service.coalesced_bursts, 0u);
  EXPECT_GT(on.service.coalesced_bursts, 0u);
  EXPECT_GE(on.service.coalesced_pages, 2u);
}

TEST(CoalesceVimTest, InjectedBusErrorsRetryOrAbortCleanly) {
  u64 retries = 0;
  u64 exact_runs = 0;
  for (u64 seed = 1; seed <= 10; ++seed) {
    FaultPlan plan;
    // The plan's Rng is fixed; varying the probability across runs
    // varies where (and whether) the errors land.
    plan.WithProbability(FaultSite::kAhbError, 0.02 * static_cast<double>(seed));
    const CoalesceRun run = RunAdpcmCoalesced(true, &plan);
    // Every outcome must be clean: either the retry chain absorbed the
    // errors and the output is exact, or the run failed with a status —
    // never a silently truncated result.
    if (run.ok) {
      EXPECT_TRUE(run.exact) << "seed " << seed;
      ++exact_runs;
    }
    retries += run.service.transfer_retries;
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(exact_runs, 0u);
}

TEST(CoalesceVimTest, DeterministicMidBurstErrorIsRetriedInPlace) {
  // First pass: an armed-but-unreachable plan counts the run's AHB
  // opportunities without perturbing it. Second pass: arm the error at
  // the LAST opportunity — with coalescing on, that is a segment of the
  // end-of-operation burst flush, the exact path the bounded retry
  // chain must recover in place.
  FaultPlan probe;
  probe.At(FaultSite::kAhbError, ~0ull);
  const CoalesceRun clean = RunAdpcmCoalesced(true, &probe);
  ASSERT_TRUE(clean.ok && clean.exact);
  const u64 opportunities = probe.stats(FaultSite::kAhbError).opportunities;
  ASSERT_GT(opportunities, 0u);

  FaultPlan plan;
  plan.At(FaultSite::kAhbError, opportunities);
  const CoalesceRun run = RunAdpcmCoalesced(true, &plan);
  ASSERT_TRUE(run.ok);
  EXPECT_TRUE(run.exact);
  EXPECT_EQ(run.service.transfer_retries, 1u);
  EXPECT_GT(run.service.coalesced_bursts, 0u);
}

}  // namespace
}  // namespace vcop::os
