// VIM-focused behavioural tests: replacement policies, copy modes,
// soft TLB refills when the TLB is smaller than the frame count,
// prefetching, direction hints and abort paths — all exercised through
// the kernel on real coprocessor runs.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "apps/workloads.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;
using runtime::RunVecAddVim;

std::vector<u32> Iota(u32 n, u32 start) {
  std::vector<u32> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

os::ExecutionReport RunLargeVecAdd(const os::KernelConfig& config,
                                   u32 n = 4096) {
  FpgaSystem sys(config);
  auto run = RunVecAddVim(sys, Iota(n, 1), Iota(n, 2));
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  // Functional correctness in every configuration.
  for (u32 i = 0; i < n; ++i) {
    VCOP_CHECK(run.value().output[i] == (i + 1) + (i + 2));
  }
  return run.value().report;
}

TEST(VimPolicyTest, AllPoliciesProduceCorrectResults) {
  for (const os::PolicyKind kind :
       {os::PolicyKind::kFifo, os::PolicyKind::kLru,
        os::PolicyKind::kRandom}) {
    os::KernelConfig config = Epxa1Config();
    config.vim.policy = kind;
    const os::ExecutionReport r = RunLargeVecAdd(config);
    EXPECT_GT(r.vim.evictions, 0u) << ToString(kind);
  }
}

TEST(VimPolicyTest, PoliciesDifferInFaultCounts) {
  // With a thrashing working set the three policies should not all
  // behave identically.
  std::set<u64> fault_counts;
  for (const os::PolicyKind kind :
       {os::PolicyKind::kFifo, os::PolicyKind::kLru,
        os::PolicyKind::kRandom}) {
    os::KernelConfig config = Epxa1Config();
    config.vim.policy = kind;
    fault_counts.insert(RunLargeVecAdd(config).vim.faults);
  }
  EXPECT_GE(fault_counts.size(), 2u)
      << "policies produced identical fault counts on a thrashing run";
}

TEST(VimCopyModeTest, SingleCopyReducesDpTime) {
  os::KernelConfig dbl = Epxa1Config();
  dbl.vim.copy_mode = mem::CopyMode::kDoubleCopy;
  os::KernelConfig sgl = Epxa1Config();
  sgl.vim.copy_mode = mem::CopyMode::kSingleCopy;
  const os::ExecutionReport rd = RunLargeVecAdd(dbl);
  const os::ExecutionReport rs = RunLargeVecAdd(sgl);
  EXPECT_LT(rs.t_dp, rd.t_dp);
  EXPECT_EQ(rs.vim.faults, rd.vim.faults) << "copy mode must not change paging";
  // Hardware time is unchanged up to per-fault clock-grid realignment
  // (the coprocessor resumes on its next rising edge after service).
  const double hw_ratio =
      static_cast<double>(rs.t_hw) / static_cast<double>(rd.t_hw);
  EXPECT_NEAR(hw_ratio, 1.0, 0.01);
}

TEST(VimTlbTest, TlbSmallerThanFramesCausesSoftRefills) {
  os::KernelConfig config = Epxa1Config();
  config.tlb_entries = 2;  // 8 frames but only 2 translations cached
  const os::ExecutionReport r = RunLargeVecAdd(config, /*n=*/1024);
  // vecadd cycles A/B/C pages; with 2 TLB entries the third object's
  // translation keeps falling out while its page stays resident.
  EXPECT_GT(r.vim.tlb_refills, 0u);
}

TEST(VimTlbTest, FullSizeTlbHasNoSoftRefills) {
  const os::ExecutionReport r = RunLargeVecAdd(Epxa1Config(), 1024);
  EXPECT_EQ(r.vim.tlb_refills, 0u);
}

TEST(VimPrefetchTest, SequentialPrefetchReducesFaults) {
  os::KernelConfig off = Epxa1Config();
  os::KernelConfig on = Epxa1Config();
  on.vim.prefetch = os::PrefetchKind::kSequential;
  on.vim.prefetch_depth = 1;
  const os::ExecutionReport r_off = RunLargeVecAdd(off);
  const os::ExecutionReport r_on = RunLargeVecAdd(on);
  EXPECT_LT(r_on.vim.faults, r_off.vim.faults);
  EXPECT_GT(r_on.vim.prefetched_pages, 0u);
}

TEST(VimDirectionTest, InPagesAreNeverWrittenBack) {
  const os::ExecutionReport r = RunLargeVecAdd(Epxa1Config());
  // Write-back volume must equal the OUT object's size exactly:
  // 4096 u32 = 16 KB; the two IN vectors are never written back.
  EXPECT_EQ(r.vim.bytes_written_back, 4096u * 4);
  EXPECT_EQ(r.vim.dirty_in_pages_dropped, 0u);
}

TEST(VimDirectionTest, OutPagesAreNeverLoaded) {
  const os::ExecutionReport r = RunLargeVecAdd(Epxa1Config());
  // Loads cover the two IN objects (2 x 16 KB) plus nothing for OUT.
  EXPECT_EQ(r.vim.bytes_loaded, 2u * 4096 * 4);
}

TEST(VimDirectionTest, InOutObjectsLoadAndWriteBack) {
  // Map the output as INOUT instead: its pages are now also loaded.
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  const u32 n = 4096;
  auto a = sys.Allocate<u32>(n);
  auto b = sys.Allocate<u32>(n);
  auto c = sys.Allocate<u32>(n);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  a.value().Fill(Iota(n, 1));
  b.value().Fill(Iota(n, 2));
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kInOut).ok());
  auto report = sys.Execute({n});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().vim.bytes_loaded, 3u * n * 4);
  EXPECT_EQ(report.value().vim.bytes_written_back, n * 4);
  EXPECT_EQ(c.value().ToVector()[7], (7u + 1) + (7u + 2));
}

TEST(VimAbortTest, OutOfBoundsAccessFailsExecution) {
  // Lie about the size: map exactly one page worth of elements but ask
  // the coprocessor to process one more. The overrunning access lands
  // on the *next* page, faults, and the VIM detects it is beyond the
  // object. (An overrun *within* the mapped page is invisible to the
  // translation hardware — same as on the real system.)
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  const u32 n = 2048 / 4;  // exactly one 2 KB page per vector
  auto a = sys.Allocate<u32>(n);
  auto b = sys.Allocate<u32>(n);
  auto c = sys.Allocate<u32>(n);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({n + 1});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kOutOfRange);
  // The system recovers: a correct execution afterwards succeeds.
  auto retry = sys.Execute({n});
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(VimAbortTest, TooManyParametersRejectedUpFront) {
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  // 2 KB parameter page = 512 u32 params max.
  std::vector<u32> params(513, 0);
  auto report = sys.Execute(std::span<const u32>(params));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST(VimParamTest, ParamPageFrameIsReusedAfterRelease) {
  // With 8 frames and a 3x16KB dataset, the frame the parameters
  // occupied must return to circulation once the coprocessor releases
  // it (§3.2) — otherwise only 7 frames would serve data.
  const os::ExecutionReport r = RunLargeVecAdd(Epxa1Config());
  // All 8 frames end free after the run (end-of-operation sweep).
  FpgaSystem sys(Epxa1Config());
  auto run = RunVecAddVim(sys, Iota(64, 0), Iota(64, 0));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(sys.kernel().vim().page_manager().frames_in_use(), 0u);
  (void)r;
}

TEST(VimAccountingTest, TransferVolumesScaleWithFaults) {
  const os::ExecutionReport small = RunLargeVecAdd(Epxa1Config(), 1024);
  const os::ExecutionReport large = RunLargeVecAdd(Epxa1Config(), 8192);
  EXPECT_GT(large.vim.faults, small.vim.faults);
  EXPECT_GT(large.t_dp, small.t_dp);
  EXPECT_GT(large.vim.bytes_loaded, small.vim.bytes_loaded);
}

}  // namespace
}  // namespace vcop
