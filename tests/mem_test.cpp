// Unit tests for the memory substrate: page geometry, dual-port RAM,
// user memory, the AHB cost model and the transfer engine.
#include <gtest/gtest.h>

#include "mem/ahb.h"
#include "mem/dp_ram.h"
#include "mem/page.h"
#include "mem/transfer.h"
#include "mem/user_memory.h"

namespace vcop::mem {
namespace {

// ----- PageGeometry -----

TEST(PageGeometryTest, Epxa1Shape) {
  // "eight 2KB pages (the total size is therefore of 16KB)" (§4).
  PageGeometry g(2048, 8);
  EXPECT_EQ(g.total_bytes(), 16384u);
  EXPECT_EQ(g.page_shift(), 11u);
  EXPECT_EQ(g.offset_mask(), 2047u);
}

TEST(PageGeometryTest, PageArithmetic) {
  PageGeometry g(2048, 8);
  EXPECT_EQ(g.PageOf(0), 0u);
  EXPECT_EQ(g.PageOf(2047), 0u);
  EXPECT_EQ(g.PageOf(2048), 1u);
  EXPECT_EQ(g.OffsetIn(2049), 1u);
  EXPECT_EQ(g.FrameBase(3), 6144u);
  EXPECT_EQ(g.PagesFor(1), 1u);
  EXPECT_EQ(g.PagesFor(2048), 1u);
  EXPECT_EQ(g.PagesFor(2049), 2u);
  EXPECT_EQ(g.PagesFor(32768), 16u);
}

TEST(PageGeometryDeathTest, RejectsNonPowerOfTwoPages) {
  EXPECT_DEATH(PageGeometry(1000, 8), "2\\^k");
}

// ----- DualPortRam -----

TEST(DualPortRamTest, BulkReadWriteRoundTrip) {
  DualPortRam ram(4096);
  const std::vector<u8> data = {1, 2, 3, 4, 5};
  ram.Write(DualPortRam::Port::kProcessor, 100, data);
  std::vector<u8> back(5);
  ram.Read(DualPortRam::Port::kCoprocessor, 100, back);
  EXPECT_EQ(back, data);
}

TEST(DualPortRamTest, WordAccessIsLittleEndian) {
  DualPortRam ram(64);
  ram.WriteWord(DualPortRam::Port::kProcessor, 0, 4, 0x11223344);
  std::vector<u8> bytes(4);
  ram.Read(DualPortRam::Port::kProcessor, 0, bytes);
  EXPECT_EQ(bytes, (std::vector<u8>{0x44, 0x33, 0x22, 0x11}));
  EXPECT_EQ(ram.ReadWord(DualPortRam::Port::kCoprocessor, 0, 2), 0x3344u);
  EXPECT_EQ(ram.ReadWord(DualPortRam::Port::kCoprocessor, 2, 2), 0x1122u);
  EXPECT_EQ(ram.ReadWord(DualPortRam::Port::kCoprocessor, 3, 1), 0x11u);
}

TEST(DualPortRamTest, NarrowWritesDoNotClobberNeighbours) {
  DualPortRam ram(64);
  ram.WriteWord(DualPortRam::Port::kProcessor, 0, 4, 0xAABBCCDD);
  ram.WriteWord(DualPortRam::Port::kCoprocessor, 2, 2, 0x1234);
  EXPECT_EQ(ram.ReadWord(DualPortRam::Port::kProcessor, 0, 4), 0x1234CCDDu);
}

TEST(DualPortRamTest, PerPortTrafficCounters) {
  DualPortRam ram(64);
  ram.WriteWord(DualPortRam::Port::kProcessor, 0, 4, 1);
  ram.ReadWord(DualPortRam::Port::kCoprocessor, 0, 2);
  ram.ReadWord(DualPortRam::Port::kCoprocessor, 0, 4);
  EXPECT_EQ(ram.bytes_written(DualPortRam::Port::kProcessor), 4u);
  EXPECT_EQ(ram.bytes_read(DualPortRam::Port::kProcessor), 0u);
  EXPECT_EQ(ram.bytes_read(DualPortRam::Port::kCoprocessor), 6u);
}

TEST(DualPortRamDeathTest, OutOfBoundsAborts) {
  DualPortRam ram(64);
  EXPECT_DEATH(ram.ReadWord(DualPortRam::Port::kProcessor, 64, 4),
               "out of bounds");
}

TEST(DualPortRamDeathTest, UnalignedWordAborts) {
  DualPortRam ram(64);
  EXPECT_DEATH(ram.ReadWord(DualPortRam::Port::kProcessor, 2, 4),
               "unaligned");
}

// ----- UserMemory -----

TEST(UserMemoryTest, AllocationsAreDisjointAndAligned) {
  UserMemory mem(1 << 16);
  auto a = mem.Allocate(100);
  auto b = mem.Allocate(100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value() % 16, 0u);
  EXPECT_EQ(b.value() % 16, 0u);
  EXPECT_GE(b.value(), a.value() + 100);
}

TEST(UserMemoryTest, AddressZeroNeverAllocated) {
  UserMemory mem(1 << 16);
  auto a = mem.Allocate(8);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a.value(), 0u);
  EXPECT_FALSE(mem.Contains(0, 1));
}

TEST(UserMemoryTest, ContainsTracksRegions) {
  UserMemory mem(1 << 16);
  auto a = mem.Allocate(64);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(mem.Contains(a.value(), 64));
  EXPECT_TRUE(mem.Contains(a.value() + 10, 54));
  EXPECT_FALSE(mem.Contains(a.value(), 65));
}

TEST(UserMemoryTest, ReadWriteRoundTrip) {
  UserMemory mem(1 << 16);
  auto a = mem.Allocate(16);
  ASSERT_TRUE(a.ok());
  const std::vector<u8> data = {9, 8, 7};
  mem.WriteBytes(a.value() + 4, data);
  std::vector<u8> back(3);
  mem.ReadBytes(a.value() + 4, back);
  EXPECT_EQ(back, data);
}

TEST(UserMemoryTest, ExhaustionReportsError) {
  UserMemory mem(1024);
  auto a = mem.Allocate(2048);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), ErrorCode::kResourceExhausted);
}

TEST(UserMemoryTest, ZeroAllocationRejected) {
  UserMemory mem(1024);
  EXPECT_FALSE(mem.Allocate(0).ok());
}

// ----- AhbModel -----

TEST(AhbModelTest, CyclesScaleWithBursts) {
  AhbTiming timing;
  timing.setup_cycles = 2;
  timing.cycles_per_beat = 1;
  timing.max_burst_beats = 16;
  timing.cpu_cycles_per_word = 8;
  AhbModel ahb(timing, Frequency::MHz(100));
  // 64 bytes = 16 words = 1 burst: 2 + 16*(1+8) = 146 cycles.
  EXPECT_EQ(ahb.CyclesFor(64), 146u);
  // 65 bytes = 17 words = 2 bursts: 4 + 17*9 = 157.
  EXPECT_EQ(ahb.CyclesFor(65), 157u);
  EXPECT_EQ(ahb.CyclesFor(0), 0u);
}

TEST(AhbModelTest, TimeMatchesClock) {
  AhbTiming timing;
  AhbModel ahb(timing, Frequency::MHz(100));
  // 10ns per cycle.
  EXPECT_EQ(ahb.TimeFor(64), ahb.CyclesFor(64) * 10'000);
}

TEST(AhbModelTest, ThroughputIsAsymptotic) {
  AhbTiming timing;
  AhbModel ahb(timing, Frequency::MHz(133));
  const double bps = ahb.ThroughputBytesPerSecond();
  // 16-beat burst: 2 + 16*9 = 146 cycles for 64 bytes at 133 MHz.
  EXPECT_NEAR(bps, 64.0 / 146.0 * 133e6, 1.0);
}

// ----- TransferEngine -----

class TransferEngineTest : public ::testing::Test {
 protected:
  TransferEngineTest()
      : user_(1 << 16),
        dp_(16384),
        engine_(AhbModel(AhbTiming{}, Frequency::MHz(133)),
                Frequency::MHz(133), CopyMode::kDoubleCopy,
                /*sdram_cycles_per_word=*/12) {}

  UserMemory user_;
  DualPortRam dp_;
  TransferEngine engine_;
};

TEST_F(TransferEngineTest, LoadMovesDataAndCharges) {
  auto addr = user_.Allocate(2048);
  ASSERT_TRUE(addr.ok());
  auto span = user_.View(addr.value(), 2048);
  for (u32 i = 0; i < 2048; ++i) span[i] = static_cast<u8>(i * 7);

  const TransferResult r =
      engine_.LoadPage(user_, addr.value(), dp_, 4096, 2048);
  EXPECT_EQ(r.bytes, 2048u);
  EXPECT_GT(r.time, 0u);
  std::vector<u8> back(2048);
  dp_.Read(DualPortRam::Port::kProcessor, 4096, back);
  for (u32 i = 0; i < 2048; ++i) ASSERT_EQ(back[i], static_cast<u8>(i * 7));
  EXPECT_EQ(engine_.total_bytes_loaded(), 2048u);
}

TEST_F(TransferEngineTest, StoreMovesDataBack) {
  auto addr = user_.Allocate(256);
  ASSERT_TRUE(addr.ok());
  std::vector<u8> data(256);
  for (u32 i = 0; i < 256; ++i) data[i] = static_cast<u8>(255 - i);
  dp_.Write(DualPortRam::Port::kProcessor, 0, data);

  engine_.StorePage(dp_, 0, user_, addr.value(), 256);
  std::vector<u8> back(256);
  user_.ReadBytes(addr.value(), back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(engine_.total_bytes_stored(), 256u);
}

TEST_F(TransferEngineTest, DoubleCopyCostsMoreThanSingle) {
  const Picoseconds dbl = engine_.PriceTransfer(2048);
  engine_.set_mode(CopyMode::kSingleCopy);
  const Picoseconds sgl = engine_.PriceTransfer(2048);
  EXPECT_GT(dbl, sgl);
  // The double-copy pass touches the data twice on the SDRAM side; the
  // ratio must be meaningfully above 1 but below 3.
  const double ratio = static_cast<double>(dbl) / static_cast<double>(sgl);
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);
}

TEST_F(TransferEngineTest, PriceIsMonotonicInLength) {
  Picoseconds prev = 0;
  for (u32 len = 256; len <= 4096; len += 256) {
    const Picoseconds t = engine_.PriceTransfer(len);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(TransferEngineTest, AccumulatesTotalTime) {
  auto addr = user_.Allocate(512);
  ASSERT_TRUE(addr.ok());
  const Picoseconds t0 = engine_.total_time();
  engine_.LoadPage(user_, addr.value(), dp_, 0, 512);
  engine_.StorePage(dp_, 0, user_, addr.value(), 512);
  EXPECT_EQ(engine_.total_time() - t0, 2 * engine_.PriceTransfer(512));
}

}  // namespace
}  // namespace vcop::mem
