// Unit tests for the OS building blocks: object table, replacement
// policies, prefetchers, page manager, process lifecycle and cost model.
#include <gtest/gtest.h>

#include "os/calibration.h"
#include "os/object_table.h"
#include "os/page_manager.h"
#include "os/policy.h"
#include "os/prefetch.h"
#include "os/process.h"

namespace vcop::os {
namespace {

// ----- ObjectTable -----

MappedObject MakeObject(hw::ObjectId id, u32 size = 1024, u32 width = 4) {
  MappedObject object;
  object.id = id;
  object.user_addr = 0x1000;
  object.size_bytes = size;
  object.elem_width = width;
  object.direction = Direction::kInOut;
  return object;
}

TEST(ObjectTableTest, MapFindUnmap) {
  ObjectTable table;
  EXPECT_TRUE(table.Map(MakeObject(3)).ok());
  ASSERT_NE(table.Find(3), nullptr);
  EXPECT_EQ(table.Find(3)->size_bytes, 1024u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Unmap(3).ok());
  EXPECT_EQ(table.Find(3), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(ObjectTableTest, DuplicateIdRejected) {
  ObjectTable table;
  EXPECT_TRUE(table.Map(MakeObject(1)).ok());
  const Status s = table.Map(MakeObject(1));
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
}

TEST(ObjectTableTest, ReservedParamIdRejected) {
  ObjectTable table;
  const Status s = table.Map(MakeObject(hw::kParamObject));
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(s.message().find("reserved"), std::string::npos);
}

TEST(ObjectTableTest, ValidationOfSizeAndWidth) {
  ObjectTable table;
  EXPECT_FALSE(table.Map(MakeObject(1, /*size=*/0)).ok());
  EXPECT_FALSE(table.Map(MakeObject(1, 1024, /*width=*/3)).ok());
  EXPECT_FALSE(table.Map(MakeObject(1, /*size=*/1022, /*width=*/4)).ok());
  EXPECT_TRUE(table.Map(MakeObject(1, 1022, 2)).ok());
}

TEST(ObjectTableTest, UnmapMissingIsNotFound) {
  ObjectTable table;
  EXPECT_EQ(table.Unmap(5).code(), ErrorCode::kNotFound);
}

TEST(ObjectTableTest, AllReturnsInIdOrder) {
  ObjectTable table;
  EXPECT_TRUE(table.Map(MakeObject(7)).ok());
  EXPECT_TRUE(table.Map(MakeObject(2)).ok());
  EXPECT_TRUE(table.Map(MakeObject(5)).ok());
  const auto all = table.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, 2u);
  EXPECT_EQ(all[1].id, 5u);
  EXPECT_EQ(all[2].id, 7u);
}

// ----- Replacement policies -----

std::vector<bool> AllEvictable(u32 n) { return std::vector<bool>(n, true); }

TEST(PolicyTest, FifoEvictsOldestInstall) {
  auto policy = MakePolicy(PolicyKind::kFifo, 0);
  policy->Reset(4);
  for (mem::FrameId f : {2u, 0u, 3u, 1u}) policy->OnInstalled(f);
  EXPECT_EQ(policy->PickVictim(AllEvictable(4)), 2u);
  // Touches do not matter to FIFO.
  policy->OnTouched(2);
  EXPECT_EQ(policy->PickVictim(AllEvictable(4)), 2u);
}

TEST(PolicyTest, FifoReinstallMovesToBack) {
  auto policy = MakePolicy(PolicyKind::kFifo, 0);
  policy->Reset(3);
  policy->OnInstalled(0);
  policy->OnInstalled(1);
  policy->OnInstalled(2);
  policy->OnFreed(0);
  policy->OnInstalled(0);
  EXPECT_EQ(policy->PickVictim(AllEvictable(3)), 1u);
}

TEST(PolicyTest, LruHonoursTouches) {
  auto policy = MakePolicy(PolicyKind::kLru, 0);
  policy->Reset(3);
  policy->OnInstalled(0);
  policy->OnInstalled(1);
  policy->OnInstalled(2);
  policy->OnTouched(0);  // 1 is now least recently used
  EXPECT_EQ(policy->PickVictim(AllEvictable(3)), 1u);
  policy->OnTouched(1);
  EXPECT_EQ(policy->PickVictim(AllEvictable(3)), 2u);
}

TEST(PolicyTest, VictimRespectsEvictableMask) {
  for (const PolicyKind kind :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kRandom}) {
    auto policy = MakePolicy(kind, 42);
    policy->Reset(4);
    for (mem::FrameId f = 0; f < 4; ++f) policy->OnInstalled(f);
    std::vector<bool> mask = {false, false, true, false};
    EXPECT_EQ(policy->PickVictim(mask), 2u) << ToString(kind);
  }
}

TEST(PolicyTest, RandomIsDeterministicInSeed) {
  auto a = MakePolicy(PolicyKind::kRandom, 7);
  auto b = MakePolicy(PolicyKind::kRandom, 7);
  a->Reset(8);
  b->Reset(8);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a->PickVictim(AllEvictable(8)), b->PickVictim(AllEvictable(8)));
  }
}

TEST(PolicyTest, RandomCoversCandidates) {
  auto policy = MakePolicy(PolicyKind::kRandom, 3);
  policy->Reset(4);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 100; ++i) seen[policy->PickVictim(AllEvictable(4))] = true;
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 4);
}

TEST(PolicyTest, NamesMatchKinds) {
  EXPECT_EQ(MakePolicy(PolicyKind::kFifo, 0)->name(), "fifo");
  EXPECT_EQ(MakePolicy(PolicyKind::kLru, 0)->name(), "lru");
  EXPECT_EQ(MakePolicy(PolicyKind::kRandom, 0)->name(), "random");
}

// ----- Prefetchers -----

TEST(PrefetchTest, NoneSuggestsNothing) {
  auto p = MakePrefetcher(PrefetchKind::kNone);
  EXPECT_TRUE(p->Suggest(0, 3, 100).empty());
}

TEST(PrefetchTest, SequentialSuggestsNextPages) {
  auto p = MakePrefetcher(PrefetchKind::kSequential, 2);
  const auto s = p->Suggest(1, 3, 100);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].object, 1u);
  EXPECT_EQ(s[0].vpage, 4u);
  EXPECT_EQ(s[1].vpage, 5u);
}

TEST(PrefetchTest, SequentialStopsAtObjectEnd) {
  auto p = MakePrefetcher(PrefetchKind::kSequential, 4);
  EXPECT_EQ(p->Suggest(0, 8, 10).size(), 1u);  // only page 9 exists
  EXPECT_TRUE(p->Suggest(0, 9, 10).empty());
}

// ----- PageManager -----

TEST(PageManagerTest, InstallFindRelease) {
  PageManager pm(mem::PageGeometry(2048, 4));
  EXPECT_EQ(pm.frames_free(), 4u);
  pm.Install(1, /*object=*/2, /*vpage=*/5);
  EXPECT_EQ(pm.FindResident(2, 5), 1u);
  EXPECT_FALSE(pm.FindResident(2, 6).has_value());
  EXPECT_EQ(pm.frames_in_use(), 1u);
  const FrameState old = pm.Release(1);
  EXPECT_TRUE(old.in_use);
  EXPECT_EQ(old.vpage, 5u);
  EXPECT_EQ(pm.frames_free(), 4u);
}

TEST(PageManagerTest, FindFreeSkipsUsed) {
  PageManager pm(mem::PageGeometry(1024, 3));
  pm.Install(0, 1, 0);
  pm.Install(1, 1, 1);
  EXPECT_EQ(pm.FindFree(), 2u);
  pm.Install(2, 1, 2);
  EXPECT_FALSE(pm.FindFree().has_value());
}

TEST(PageManagerTest, PinnedFramesNotEvictable) {
  PageManager pm(mem::PageGeometry(1024, 3));
  pm.Install(0, 1, 0, /*pinned=*/true);
  pm.Install(1, 1, 1);
  const std::vector<bool> mask = pm.EvictableMask();
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);  // free, not evictable
  pm.Unpin(0);
  EXPECT_TRUE(pm.EvictableMask()[0]);
}

TEST(PageManagerTest, DirtyTracking) {
  PageManager pm(mem::PageGeometry(1024, 2));
  pm.Install(0, 1, 0);
  EXPECT_FALSE(pm.frame(0).dirty);
  pm.MarkDirty(0);
  EXPECT_TRUE(pm.frame(0).dirty);
  pm.Release(0);
  pm.Install(0, 1, 1);
  EXPECT_FALSE(pm.frame(0).dirty) << "dirty must not leak across installs";
}

TEST(PageManagerTest, ResetFreesEverything) {
  PageManager pm(mem::PageGeometry(1024, 2));
  pm.Install(0, 1, 0, true);
  pm.Install(1, 2, 0);
  pm.Reset();
  EXPECT_EQ(pm.frames_in_use(), 0u);
  EXPECT_FALSE(pm.FindResident(1, 0).has_value());
}

TEST(PageManagerTest, InUseFramesEnumerates) {
  PageManager pm(mem::PageGeometry(1024, 4));
  pm.Install(3, 1, 0);
  pm.Install(1, 1, 1);
  EXPECT_EQ(pm.InUseFrames(), (std::vector<mem::FrameId>{1, 3}));
}

TEST(PageManagerDeathTest, DoubleInstallAborts) {
  PageManager pm(mem::PageGeometry(1024, 2));
  pm.Install(0, 1, 0);
  EXPECT_DEATH(pm.Install(0, 2, 0), "occupied");
}

TEST(PageManagerDeathTest, DuplicateResidencyAborts) {
  PageManager pm(mem::PageGeometry(1024, 2));
  pm.Install(0, 1, 5);
  EXPECT_DEATH(pm.Install(1, 1, 5), "already resident");
}

// ----- Process -----

TEST(ProcessTest, SleepWakeAccounting) {
  Process p(1);
  EXPECT_EQ(p.state(), ProcessState::kRunning);
  p.Sleep(1000);
  EXPECT_TRUE(p.sleeping());
  p.Wake(5000);
  EXPECT_EQ(p.state(), ProcessState::kRunning);
  EXPECT_EQ(p.total_slept(), 4000u);
  p.Sleep(6000);
  p.Wake(7000);
  EXPECT_EQ(p.total_slept(), 5000u);
  EXPECT_EQ(p.wakeups(), 2u);
}

TEST(ProcessDeathTest, DoubleSleepAborts) {
  Process p(1);
  p.Sleep(0);
  EXPECT_DEATH(p.Sleep(1), "double sleep");
}

// ----- CostModel -----

TEST(CostModelTest, CyclesConvertOnCpuClock) {
  CostModel costs;
  // 133 cycles at 133 MHz = 1 us.
  EXPECT_EQ(costs.Cycles(133), 1'000'000u);
}

TEST(CostModelTest, FaultServiceShareIsSmall) {
  // Sanity on the calibration: one fault's IMU-management cost must be
  // around 10 us (see calibration.h derivation).
  CostModel costs;
  const Picoseconds per_fault =
      costs.Cycles(costs.interrupt_entry_cycles + costs.fault_decode_cycles +
                   costs.tlb_update_cycles + costs.page_table_cycles);
  EXPECT_GT(ToMicroseconds(per_fault), 5.0);
  EXPECT_LT(ToMicroseconds(per_fault), 20.0);
}

}  // namespace
}  // namespace vcop::os
