// Unit tests for the IDEA cipher: group-operation algebra, official
// test vector, key-schedule structure, inversion, and ECB behaviour.
#include <gtest/gtest.h>

#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/rng.h"

namespace vcop::apps {
namespace {

// ----- mul / inv algebra -----

TEST(IdeaMulTest, MatchesDirectModularDefinition) {
  // Against the defining formula on a sample of the space: operands 0
  // represent 2^16 in Z*_{2^16+1}.
  Rng rng(1);
  for (int i = 0; i < 20'000; ++i) {
    const u16 a = static_cast<u16>(rng.NextBelow(65536));
    const u16 b = static_cast<u16>(rng.NextBelow(65536));
    const u64 aa = a == 0 ? 65536 : a;
    const u64 bb = b == 0 ? 65536 : b;
    const u64 expect = (aa * bb) % 65537 % 65536;  // 65536 -> encoded as 0
    EXPECT_EQ(IdeaMul(a, b), static_cast<u16>(expect))
        << a << " * " << b;
  }
}

TEST(IdeaMulTest, IdentityAndZeroRepresentation) {
  EXPECT_EQ(IdeaMul(1, 12345), 12345u);
  EXPECT_EQ(IdeaMul(12345, 1), 12345u);
  // 0 represents 2^16 = -1 mod 2^16+1, so 0*0 = 1.
  EXPECT_EQ(IdeaMul(0, 0), 1u);
  // 0 * x = -x mod 2^16+1.
  EXPECT_EQ(IdeaMul(0, 2), static_cast<u16>(65537 - 2));
}

TEST(IdeaMulInvTest, InverseForAllRepresentativeValues) {
  Rng rng(2);
  for (int i = 0; i < 5'000; ++i) {
    const u16 x = static_cast<u16>(rng.NextBelow(65536));
    EXPECT_EQ(IdeaMul(x, IdeaMulInv(x)), 1u) << "x=" << x;
  }
  EXPECT_EQ(IdeaMul(0, IdeaMulInv(0)), 1u);
  EXPECT_EQ(IdeaMul(65535, IdeaMulInv(65535)), 1u);
}

// ----- official test vector -----

TEST(IdeaTest, CanonicalTestVector) {
  // The classic IDEA reference vector: key 0001 0002 ... 0008,
  // plaintext 0000 0001 0002 0003 -> ciphertext 11FB ED2B 0198 6DE5.
  IdeaKey key{};
  for (u8 i = 0; i < 8; ++i) {
    key[2 * i] = 0;
    key[2 * i + 1] = static_cast<u8>(i + 1);
  }
  u8 block[8] = {0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03};
  const IdeaSubkeys ek = IdeaExpandKey(key);
  IdeaCryptBlock(ek, std::span<u8, 8>(block));
  const u8 expect[8] = {0x11, 0xFB, 0xED, 0x2B, 0x01, 0x98, 0x6D, 0xE5};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(block[i], expect[i]) << i;
}

TEST(IdeaTest, CanonicalVectorDecrypts) {
  IdeaKey key{};
  for (u8 i = 0; i < 8; ++i) {
    key[2 * i] = 0;
    key[2 * i + 1] = static_cast<u8>(i + 1);
  }
  u8 block[8] = {0x11, 0xFB, 0xED, 0x2B, 0x01, 0x98, 0x6D, 0xE5};
  const IdeaSubkeys dk = IdeaInvertKey(IdeaExpandKey(key));
  IdeaCryptBlock(dk, std::span<u8, 8>(block));
  const u8 expect[8] = {0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(block[i], expect[i]) << i;
}

// ----- key schedule -----

TEST(IdeaKeyScheduleTest, FirstEightSubkeysAreTheKey) {
  const IdeaKey key = MakeIdeaKey(4);
  const IdeaSubkeys ek = IdeaExpandKey(key);
  for (usize i = 0; i < 8; ++i) {
    EXPECT_EQ(ek[i], static_cast<u16>((key[2 * i] << 8) | key[2 * i + 1]));
  }
}

TEST(IdeaKeyScheduleTest, RotationProperty) {
  // Subkey 8 = bits 25..40 of the key (left-rotate by 25).
  const IdeaKey key = MakeIdeaKey(5);
  const IdeaSubkeys ek = IdeaExpandKey(key);
  // Build the 128-bit value as bytes and extract bits 25..41 manually.
  auto bit = [&key](usize i) {
    return (key[(i / 8) % 16] >> (7 - i % 8)) & 1;
  };
  u16 expect = 0;
  for (usize b = 0; b < 16; ++b) {
    expect = static_cast<u16>((expect << 1) | bit(25 + b));
  }
  EXPECT_EQ(ek[8], expect);
}

TEST(IdeaKeyScheduleTest, InvertTwiceIsIdentity) {
  const IdeaSubkeys ek = IdeaExpandKey(MakeIdeaKey(6));
  EXPECT_EQ(IdeaInvertKey(IdeaInvertKey(ek)), ek);
}

// ----- ECB -----

TEST(IdeaEcbTest, RoundTripRandomBuffers) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const usize blocks = 1 + rng.NextBelow(64);
    const std::vector<u8> pt = MakeRandomBytes(blocks * 8, trial);
    const IdeaSubkeys ek = IdeaExpandKey(MakeIdeaKey(trial));
    const IdeaSubkeys dk = IdeaInvertKey(ek);
    std::vector<u8> ct(pt.size()), rt(pt.size());
    IdeaCryptEcb(ek, pt, ct);
    IdeaCryptEcb(dk, ct, rt);
    EXPECT_EQ(rt, pt) << "trial " << trial;
    EXPECT_NE(ct, pt);
  }
}

TEST(IdeaEcbTest, EqualBlocksEncryptEqually) {
  // ECB determinism (and why real systems use other modes).
  const IdeaSubkeys ek = IdeaExpandKey(MakeIdeaKey(8));
  std::vector<u8> pt(16, 0x42);
  std::vector<u8> ct(16);
  IdeaCryptEcb(ek, pt, ct);
  EXPECT_TRUE(std::equal(ct.begin(), ct.begin() + 8, ct.begin() + 8));
}

TEST(IdeaEcbTest, InPlaceOperation) {
  const IdeaSubkeys ek = IdeaExpandKey(MakeIdeaKey(9));
  std::vector<u8> buf = MakeRandomBytes(64, 10);
  const std::vector<u8> orig = buf;
  IdeaCryptEcb(ek, buf, buf);
  EXPECT_NE(buf, orig);
  std::vector<u8> expect(64);
  IdeaCryptEcb(ek, orig, expect);
  EXPECT_EQ(buf, expect);
}

TEST(IdeaEcbTest, AvalancheOnPlaintextBit) {
  const IdeaSubkeys ek = IdeaExpandKey(MakeIdeaKey(11));
  std::vector<u8> a = MakeRandomBytes(8, 12);
  std::vector<u8> b = a;
  b[0] ^= 0x01;
  std::vector<u8> ca(8), cb(8);
  IdeaCryptEcb(ek, a, ca);
  IdeaCryptEcb(ek, b, cb);
  int differing_bits = 0;
  for (usize i = 0; i < 8; ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(ca[i] ^ cb[i]));
  }
  EXPECT_GE(differing_bits, 16) << "one flipped bit should avalanche";
}

}  // namespace
}  // namespace vcop::apps
