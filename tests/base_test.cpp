// Unit tests for src/base: Status/Result, bit operations, units,
// deterministic RNG, logging, and the table formatter.
#include <gtest/gtest.h>

#include <set>

#include "base/bitops.h"
#include "base/log.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/table.h"
#include "base/units.h"

namespace vcop {
namespace {

// ----- Status / Result -----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad width");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(OutOfRangeError("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(NotFoundError("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(UnavailableError("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ----- bitops -----

TEST(BitopsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 63) + 1));
}

TEST(BitopsTest, Log2OfPowers) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(2048), 11u);
  EXPECT_EQ(Log2(1ULL << 63), 63u);
}

TEST(BitopsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(16), 0xFFFFu);
  EXPECT_EQ(LowMask(64), ~u64{0});
}

TEST(BitopsTest, ExtractAndDeposit) {
  const u64 v = 0xDEADBEEFCAFEF00DULL;
  EXPECT_EQ(ExtractBits(v, 0, 16), 0xF00Du);
  EXPECT_EQ(ExtractBits(v, 32, 16), 0xBEEFu);
  EXPECT_EQ(DepositBits(0, 8, 8, 0xAB), 0xAB00u);
  // Round trip: deposit then extract.
  const u64 w = DepositBits(v, 20, 12, 0x123);
  EXPECT_EQ(ExtractBits(w, 20, 12), 0x123u);
  // Other bits untouched.
  EXPECT_EQ(ExtractBits(w, 0, 20), ExtractBits(v, 0, 20));
  EXPECT_EQ(ExtractBits(w, 32, 32), ExtractBits(v, 32, 32));
}

TEST(BitopsTest, AlignHelpers) {
  EXPECT_EQ(AlignUp(0, 16), 0u);
  EXPECT_EQ(AlignUp(1, 16), 16u);
  EXPECT_EQ(AlignUp(16, 16), 16u);
  EXPECT_EQ(AlignDown(17, 16), 16u);
  EXPECT_EQ(DivCeil(0, 4), 0u);
  EXPECT_EQ(DivCeil(1, 4), 1u);
  EXPECT_EQ(DivCeil(8, 4), 2u);
  EXPECT_EQ(DivCeil(9, 4), 3u);
}

// ----- units -----

TEST(UnitsTest, EdgeTimesAreMonotonicAndDriftFree) {
  // 133 MHz has a non-integer picosecond period; ensure edge k is always
  // floor(k e12 / f) with no cumulative drift.
  const Frequency f = Frequency::MHz(133);
  EXPECT_EQ(f.EdgeTime(0), 0u);
  // After exactly 133e6 cycles, exactly one second must have elapsed.
  EXPECT_EQ(f.EdgeTime(133'000'000), kPicosecondsPerSecond);
  Picoseconds prev = 0;
  for (u64 k = 1; k < 1000; ++k) {
    const Picoseconds t = f.EdgeTime(k);
    EXPECT_GT(t, prev);
    // Each period is 7518 or 7519 ps — never drifts further.
    EXPECT_GE(t - prev, 7518u);
    EXPECT_LE(t - prev, 7519u);
    prev = t;
  }
}

TEST(UnitsTest, CyclesAtInvertsEdgeTime) {
  for (const u64 mhz : {6u, 24u, 40u, 133u}) {
    const Frequency f = Frequency::MHz(mhz);
    for (u64 k : {0ULL, 1ULL, 7ULL, 1000ULL, 123456ULL}) {
      EXPECT_EQ(f.CyclesAt(f.EdgeTime(k)), k) << mhz << " MHz, k=" << k;
      // Just before edge k+1 we are still in cycle k.
      EXPECT_EQ(f.CyclesAt(f.EdgeTime(k + 1) - 1), k);
    }
  }
}

TEST(UnitsTest, FourToOneClockRatioAligns) {
  // The IDEA platform: 24 MHz IMU, 6 MHz core — every 4th IMU edge
  // coincides exactly with a core edge.
  const Frequency imu = Frequency::MHz(24);
  const Frequency cp = Frequency::MHz(6);
  for (u64 k = 0; k < 100; ++k) {
    EXPECT_EQ(cp.EdgeTime(k), imu.EdgeTime(4 * k));
  }
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(Frequency::MHz(40).ToString(), "40 MHz");
  EXPECT_EQ(Frequency::KHz(500).ToString(), "500 kHz");
  EXPECT_DOUBLE_EQ(ToMilliseconds(1'000'000'000ULL), 1.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(2'000'000ULL), 2.0);
  EXPECT_EQ(FormatDuration(1'500'000'000ULL), "1.50 ms");
  EXPECT_EQ(FormatDuration(500ULL), "500 ps");
}

// ----- rng -----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysBelow) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<u64> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<u64> seen;
  for (int i = 0; i < 200; ++i) {
    const u64 v = rng.NextInRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ----- logging -----

TEST(LogTest, SinkReceivesEnabledLevelsOnly) {
  std::vector<std::string> captured;
  Logger::Get().set_sink([&](LogLevel level, std::string_view msg) {
    captured.push_back(std::string(ToString(level)) + ":" +
                       std::string(msg));
  });
  Logger::Get().set_min_level(LogLevel::kInfo);
  VCOP_LOG(kDebug, "hidden");
  VCOP_LOG(kInfo, "shown");
  VCOP_LOG(kError, "loud");
  Logger::Get().set_sink(nullptr);
  Logger::Get().set_min_level(LogLevel::kWarning);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "INFO:shown");
  EXPECT_EQ(captured[1], "ERROR:loud");
}

// ----- table -----

TEST(TableTest, AlignsColumnsAndRightAlignsNumbers) {
  Table t({"name", "ms"});
  t.AddRow({"sw", "18.00"});
  t.AddRow({"vim", "11.25"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name  ms"), std::string::npos);
  EXPECT_NE(s.find("sw"), std::string::npos);
  // Numeric column is right-aligned to the header width.
  EXPECT_NE(s.find("18.00"), std::string::npos);
}

TEST(TableTest, TitleAndRuleRendered) {
  Table t({"a"});
  t.set_title("Figure 8");
  t.AddRow({"1"});
  const std::string s = t.ToString();
  EXPECT_EQ(s.find("Figure 8"), 0u);
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace vcop
