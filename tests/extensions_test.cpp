// Tests for the extension features beyond the paper's prototype:
// overlapped prefetching, the DMA transfer mode, the IMU's per-object
// limit registers, the ADPCM encoder core, and the Belady oracle.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "apps/adpcm.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/oracle.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

// ----- overlapped prefetch -----

TEST(OverlapPrefetchTest, BitExactAndFewerFaults) {
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 31);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState st;
  apps::AdpcmDecode(input, expect, st);

  os::KernelConfig off = Epxa1Config();
  off.vim.prefetch = os::PrefetchKind::kSequential;
  off.vim.prefetch_depth = 2;
  os::KernelConfig on = off;
  on.vim.overlap_prefetch = true;

  FpgaSystem sys_off(off);
  auto r_off = runtime::RunAdpcmVim(sys_off, input);
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
  EXPECT_EQ(r_off.value().output, expect);

  FpgaSystem sys_on(on);
  auto r_on = runtime::RunAdpcmVim(sys_on, input);
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
  EXPECT_EQ(r_on.value().output, expect);

  // Overlap moves transfer time off the critical path: total shrinks.
  EXPECT_LT(r_on.value().report.total, r_off.value().report.total);
  // And its transfers are accounted as overlapped, not serial.
  EXPECT_GT(r_on.value().report.vim.t_dp_overlapped, 0u);
  EXPECT_LT(r_on.value().report.vim.faults,
            Epxa1Config().dp_ram_bytes ? 25u : 0u);
}

TEST(OverlapPrefetchTest, BeatsSynchronousPrefetchOnIdea) {
  const auto keys = apps::IdeaExpandKey(apps::MakeIdeaKey(33));
  const std::vector<u8> input = apps::MakeRandomBytes(32768, 34);
  std::vector<u8> expect(input.size());
  apps::IdeaCryptEcb(keys, input, expect);

  Picoseconds totals[2];
  int i = 0;
  for (const bool overlap : {false, true}) {
    os::KernelConfig config = Epxa1Config();
    config.vim.prefetch = os::PrefetchKind::kSequential;
    config.vim.prefetch_depth = 1;
    config.vim.overlap_prefetch = overlap;
    FpgaSystem sys(config);
    auto run = runtime::RunIdeaVim(sys, keys, input);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().output, expect);
    totals[i++] = run.value().report.total;
  }
  EXPECT_LT(totals[1], totals[0]);
}

TEST(OverlapPrefetchTest, GatherStaysCorrectUnderOverlap) {
  // Random access + speculation racing the coprocessor: the strongest
  // consistency test for the in-flight machinery.
  Rng rng(35);
  const u32 n = 6000;
  std::vector<u32> in(n);
  for (u32& v : in) v = static_cast<u32>(rng.Next());
  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (u32 i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
  }

  os::KernelConfig config = Epxa1Config();
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.prefetch_depth = 2;
  config.vim.overlap_prefetch = true;
  FpgaSystem sys(config);
  auto run = runtime::RunGatherVim(sys, in, perm);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (u32 i = 0; i < n; ++i) {
    ASSERT_EQ(run.value().output[i], in[perm[i]]) << i;
  }
}

TEST(OverlapPrefetchTest, RepeatedExecutionsDoNotLeakInFlightState) {
  os::KernelConfig config = Epxa1Config();
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  FpgaSystem sys(config);
  for (int round = 0; round < 3; ++round) {
    const std::vector<u8> input = apps::MakeAdpcmStream(4096, 40 + round);
    auto run = runtime::RunAdpcmVim(sys, input);
    ASSERT_TRUE(run.ok()) << round << ": " << run.status().ToString();
    std::vector<i16> expect(input.size() * 2);
    apps::AdpcmState st;
    apps::AdpcmDecode(input, expect, st);
    EXPECT_EQ(run.value().output, expect) << round;
    EXPECT_EQ(sys.kernel().vim().page_manager().frames_in_use(), 0u);
  }
}

// ----- DMA transfer mode -----

TEST(DmaTest, CheaperThanAnyCpuCopy) {
  mem::TransferEngine engine(
      mem::AhbModel(mem::AhbTiming{}, Frequency::MHz(133)),
      Frequency::MHz(133), mem::CopyMode::kDoubleCopy, 12);
  const Picoseconds dbl = engine.PriceTransfer(2048);
  engine.set_mode(mem::CopyMode::kSingleCopy);
  const Picoseconds sgl = engine.PriceTransfer(2048);
  engine.set_mode(mem::CopyMode::kDma);
  const Picoseconds dma = engine.PriceTransfer(2048);
  EXPECT_LT(dma, sgl);
  EXPECT_LT(sgl, dbl);
}

TEST(DmaTest, EndToEndCorrectAndFaster) {
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 50);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState st;
  apps::AdpcmDecode(input, expect, st);

  Picoseconds dp_times[2];
  int i = 0;
  for (const mem::CopyMode mode :
       {mem::CopyMode::kDoubleCopy, mem::CopyMode::kDma}) {
    os::KernelConfig config = Epxa1Config();
    config.vim.copy_mode = mode;
    FpgaSystem sys(config);
    auto run = runtime::RunAdpcmVim(sys, input);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().output, expect);
    dp_times[i++] = run.value().report.t_dp;
  }
  EXPECT_LT(dp_times[1] * 3, dp_times[0]);
}

// ----- IMU limit registers -----

TEST(BoundsCheckTest, WithinPageOverrunCaughtWhenEnabled) {
  // Map 8 elements (well inside one page) and run 16: element 8 stays
  // in the mapped page, so the paper's IMU cannot see the overrun —
  // the limit-register extension can.
  os::KernelConfig config = Epxa1Config();
  config.imu_bounds_check = true;
  FpgaSystem sys(config);
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  auto a = sys.Allocate<u32>(8);
  auto b = sys.Allocate<u32>(8);
  auto c = sys.Allocate<u32>(8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kOut).ok());

  auto report = sys.Execute({16u});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kOutOfRange);
  EXPECT_NE(report.status().message().find("limit register"),
            std::string::npos);
}

TEST(BoundsCheckTest, WithinPageOverrunInvisibleWhenDisabled) {
  // The same overrun on the paper-faithful IMU completes "successfully"
  // reading stale bytes — documenting the baseline's blind spot.
  FpgaSystem sys(Epxa1Config());
  ASSERT_TRUE(sys.Load(cp::VecAddBitstream()).ok());
  auto a = sys.Allocate<u32>(8);
  auto b = sys.Allocate<u32>(8);
  auto c = sys.Allocate<u32>(16);  // room for the overrun's writes
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sys.Map(0, a.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(1, b.value(), os::Direction::kIn).ok());
  ASSERT_TRUE(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({16u});
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

TEST(BoundsCheckTest, LegitimateRunsUnaffected) {
  os::KernelConfig config = Epxa1Config();
  config.imu_bounds_check = true;
  FpgaSystem sys(config);
  const std::vector<u8> input = apps::MakeAdpcmStream(4096, 60);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState st;
  apps::AdpcmDecode(input, expect, st);
  EXPECT_EQ(run.value().output, expect);
}

// ----- ADPCM encoder core -----

TEST(AdpcmEncoderCoreTest, BitExactAgainstSoftwareEncoder) {
  const std::vector<i16> pcm = apps::MakeAudioPcm(8192, 70);
  std::vector<u8> expect(pcm.size() / 2);
  apps::AdpcmState st;
  apps::AdpcmEncode(pcm, expect, st);

  FpgaSystem sys(Epxa1Config());
  auto run = runtime::RunAdpcmEncodeVim(sys, pcm);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
}

TEST(AdpcmEncoderCoreTest, HardwareCodecRoundTrip) {
  // Encode on the PLD, decode on the PLD, compare against a pure
  // software round trip.
  const std::vector<i16> pcm = apps::MakeAudioPcm(4096, 71);

  FpgaSystem sys(Epxa1Config());
  auto enc = runtime::RunAdpcmEncodeVim(sys, pcm);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  auto dec = runtime::RunAdpcmVim(sys, enc.value().output);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();

  std::vector<u8> sw_coded(pcm.size() / 2);
  apps::AdpcmState es;
  apps::AdpcmEncode(pcm, sw_coded, es);
  std::vector<i16> sw_decoded(pcm.size());
  apps::AdpcmState ds;
  apps::AdpcmDecode(sw_coded, sw_decoded, ds);
  EXPECT_EQ(dec.value().output, sw_decoded);
}

// ----- Belady oracle -----

TEST(OracleTest, NextUseEvictionBeatsOnlinePoliciesOnGather) {
  // Record pass -> replay with the oracle; it must produce at most as
  // many faults as the best online policy.
  Rng rng(80);
  const u32 n = 6000;
  std::vector<u32> in(n);
  for (u32& v : in) v = static_cast<u32>(rng.Next());
  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (u32 i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
  }

  auto run_with = [&](os::PolicyKind kind,
                      std::shared_ptr<const os::PageRefTrace> trace,
                      std::shared_ptr<os::PageRefTrace> record)
      -> u64 {
    os::KernelConfig config = Epxa1Config();
    config.vim.policy = kind;
    FpgaSystem sys(config);
    // Load first so the IMU exists, then attach probe/policy.
    auto ensure = sys.Load(cp::GatherBitstream());
    VCOP_CHECK_MSG(ensure.ok(), ensure.ToString());
    os::OraclePolicy* oracle = nullptr;
    if (trace != nullptr) {
      auto policy = std::make_unique<os::OraclePolicy>(trace);
      oracle = policy.get();
      sys.kernel().vim().SetPolicy(std::move(policy));
    }
    sys.kernel().imu()->set_page_ref_probe(
        [record, oracle](hw::ObjectId object, mem::VirtPage vpage) {
          if (record != nullptr) {
            record->push_back(os::PageRef{object, vpage});
          }
          if (oracle != nullptr) oracle->OnReference(object, vpage);
        });
    auto run = runtime::RunGatherVim(sys, in, perm);
    VCOP_CHECK_MSG(run.ok(), run.status().ToString());
    for (u32 i = 0; i < n; ++i) {
      VCOP_CHECK(run.value().output[i] == in[perm[i]]);
    }
    return run.value().report.vim.faults;
  };

  auto trace = std::make_shared<os::PageRefTrace>();
  const u64 fifo_faults =
      run_with(os::PolicyKind::kFifo, nullptr, trace);
  const u64 lru_faults =
      run_with(os::PolicyKind::kLru, nullptr, nullptr);
  const u64 oracle_faults = run_with(
      os::PolicyKind::kFifo,
      std::shared_ptr<const os::PageRefTrace>(trace), nullptr);

  EXPECT_LE(oracle_faults, fifo_faults);
  EXPECT_LE(oracle_faults, lru_faults);
  EXPECT_LT(oracle_faults, fifo_faults) << "oracle should strictly win "
                                           "on a thrashing pattern";
}

TEST(OracleTest, DivergentReplayAborts) {
  auto trace = std::make_shared<os::PageRefTrace>();
  trace->push_back(os::PageRef{1, 0});
  os::OraclePolicy oracle(trace);
  oracle.Reset(4);
  EXPECT_DEATH(oracle.OnReference(2, 5), "diverged");
}

TEST(OracleTest, PicksFarthestNextUse) {
  auto trace = std::make_shared<os::PageRefTrace>();
  // Reference string: A B C A B (pages as (obj=0, vpage)).
  for (const u32 p : {0u, 1u, 2u, 0u, 1u}) {
    trace->push_back(os::PageRef{0, p});
  }
  os::OraclePolicy oracle(trace);
  oracle.Reset(3);
  oracle.OnInstalledAt(0, 0, 0);  // A in frame 0
  oracle.OnInstalledAt(1, 0, 1);  // B in frame 1
  oracle.OnInstalledAt(2, 0, 2);  // C in frame 2
  // After the first three references, the future is A, B: C is never
  // used again -> evict frame 2.
  oracle.OnReference(0, 0);
  oracle.OnReference(0, 1);
  oracle.OnReference(0, 2);
  EXPECT_EQ(oracle.PickVictim({true, true, true}), 2u);
  // With C excluded, B (position 4) is farther than A (position 3).
  EXPECT_EQ(oracle.PickVictim({true, true, false}), 1u);
}

}  // namespace
}  // namespace vcop
