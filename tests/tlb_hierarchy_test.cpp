// Unit tests for the two-level TLB hierarchy (hw::TlbHierarchy) and the
// per-object page-size machinery: per-level hit/miss/fill accounting,
// dirty-merge vs orphan eviction on L1 fills, both-level invalidation
// invariants, the PageGeometry superpage helpers, and mixed page sizes
// inside one address space producing byte-identical outputs.
#include <gtest/gtest.h>

#include <vector>

#include "apps/conv2d.h"
#include "apps/workloads.h"
#include "hw/tlb.h"
#include "mem/page.h"
#include "os/kernel.h"
#include "os/object_table.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using hw::Tlb;
using hw::TlbHierarchy;

// ----- single-level pass-through -----

TEST(TlbHierarchyTest, PassThroughWithoutL2) {
  Tlb l1(4);
  TlbHierarchy h(&l1, nullptr);
  EXPECT_FALSE(h.two_level());
  EXPECT_FALSE(h.Lookup(1, 0).has_value());
  l1.Install(0, 1, 0, 3);
  const auto idx = h.Lookup(1, 0);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  EXPECT_FALSE(h.last_fill_from_l2());
  // No fill machinery engaged; per-level stats land in the single CAM.
  EXPECT_EQ(h.stats().l1_fills, 0u);
  EXPECT_EQ(l1.stats().lookups, 2u);
  EXPECT_EQ(l1.stats().hits, 1u);
  EXPECT_EQ(l1.stats().misses, 1u);
}

// ----- per-level accounting -----

TEST(TlbHierarchyTest, L2HitFillsL1AndCountsPerLevel) {
  Tlb l1(2), l2(8);
  TlbHierarchy h(&l1, &l2);
  l2.Install(0, /*object=*/1, /*vpage=*/4, /*frame=*/6);

  const auto idx = h.Lookup(1, 4);
  ASSERT_TRUE(idx.has_value());
  EXPECT_TRUE(h.last_fill_from_l2());
  EXPECT_EQ(l1.entry(*idx).frame, 6u);
  EXPECT_FALSE(l1.entry(*idx).dirty);  // fills start clean in L1
  EXPECT_EQ(h.stats().l1_fills, 1u);
  EXPECT_EQ(h.stats().l1_fill_evictions, 0u);
  EXPECT_EQ(l1.stats().misses, 1u);
  EXPECT_EQ(l2.stats().hits, 1u);

  // The fill is a real L1 entry: the next access hits L1 directly.
  const auto again = h.Lookup(1, 4);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(h.last_fill_from_l2());
  EXPECT_EQ(l1.stats().hits, 1u);
  EXPECT_EQ(l2.stats().lookups, 1u);  // L2 not consulted on an L1 hit
}

TEST(TlbHierarchyTest, BothLevelsMissReturnsNothing) {
  Tlb l1(2), l2(4);
  TlbHierarchy h(&l1, &l2);
  EXPECT_FALSE(h.Lookup(3, 9).has_value());
  EXPECT_FALSE(h.last_fill_from_l2());
  EXPECT_EQ(l1.stats().misses, 1u);
  EXPECT_EQ(l2.stats().misses, 1u);
  EXPECT_EQ(h.stats().l1_fills, 0u);
}

// ----- fill evictions: dirty merge vs orphan -----

TEST(TlbHierarchyTest, DirtyFillVictimMergesIntoL2Twin) {
  Tlb l1(1), l2(4);
  TlbHierarchy h(&l1, &l2);
  // Object 1 mapped in both levels (the normal OS install), then the
  // coprocessor dirties the L1 copy.
  l2.Install(0, 1, 0, 2);
  l2.Install(1, 2, 0, 3);
  l1.Install(0, 1, 0, 2);
  l1.MarkDirty(0);

  // Touching object 2 forces a fill into the only L1 slot.
  const auto idx = h.Lookup(2, 0);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(l1.entry(*idx).object, 2u);
  EXPECT_EQ(h.stats().l1_fill_evictions, 1u);
  EXPECT_EQ(h.stats().dirty_merges, 1u);
  EXPECT_EQ(h.stats().orphan_evictions, 0u);
  // The victim's dirtiness lives on in its L2 twin.
  EXPECT_TRUE(l2.entry(0).dirty);
}

TEST(TlbHierarchyTest, DirtyFillVictimWithoutTwinGoesToEvictHook) {
  Tlb l1(1), l2(4);
  TlbHierarchy h(&l1, &l2);
  std::vector<hw::TlbEntry> dropped;
  h.set_evict_hook([&](const hw::TlbEntry& e) { dropped.push_back(e); });
  l2.Install(0, 2, 0, 3);
  // L1 holds a dirty mapping L2 knows nothing about.
  l1.Install(0, 7, 5, 1);
  l1.MarkDirty(0);

  ASSERT_TRUE(h.Lookup(2, 0).has_value());
  EXPECT_EQ(h.stats().l1_fill_evictions, 1u);
  EXPECT_EQ(h.stats().dirty_merges, 0u);
  EXPECT_EQ(h.stats().orphan_evictions, 1u);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].object, 7u);
  EXPECT_EQ(dropped[0].vpage, 5u);
  EXPECT_TRUE(dropped[0].dirty);
}

TEST(TlbHierarchyTest, CleanFillVictimIsDroppedSilently) {
  Tlb l1(1), l2(4);
  TlbHierarchy h(&l1, &l2);
  bool hook_ran = false;
  h.set_evict_hook([&](const hw::TlbEntry&) { hook_ran = true; });
  l2.Install(0, 2, 0, 3);
  l1.Install(0, 7, 5, 1);  // clean: nothing to preserve

  ASSERT_TRUE(h.Lookup(2, 0).has_value());
  EXPECT_EQ(h.stats().l1_fill_evictions, 1u);
  EXPECT_EQ(h.stats().dirty_merges, 0u);
  EXPECT_EQ(h.stats().orphan_evictions, 0u);
  EXPECT_FALSE(hook_ran);
}

// ----- parity-corrupt fills fault instead of mistranslating -----

TEST(TlbHierarchyTest, ParityCorruptFillFaults) {
  Tlb l1(2), l2(4);
  TlbHierarchy h(&l1, &l2);
  FaultPlan plan;
  plan.At(FaultSite::kTlbParity, 1);  // corrupt the first L1 install
  l1.set_fault_plan(&plan);
  l2.Install(0, 1, 0, 2);

  // The fill lands corrupted: the access must fault (nullopt) so the OS
  // repairs the mapping, rather than the coprocessor using a bad match.
  EXPECT_FALSE(h.Lookup(1, 0).has_value());
  EXPECT_FALSE(h.last_fill_from_l2());
  EXPECT_EQ(h.stats().l1_fills, 1u);
}

// ----- invalidation spans both levels -----

TEST(TlbHierarchyTest, InvalidateAsidDropsBothLevels) {
  Tlb l1(2), l2(4);
  TlbHierarchy h(&l1, &l2);
  l1.Install(0, 1, 0, 0, /*asid=*/5);
  l1.Install(1, 1, 1, 1, /*asid=*/6);
  l2.Install(0, 1, 0, 0, /*asid=*/5);
  l2.Install(1, 1, 2, 2, /*asid=*/5);
  l2.Install(2, 1, 3, 3, /*asid=*/6);

  EXPECT_EQ(h.InvalidateAsid(5), 3u);
  // Nothing of ASID 5 survives in either level...
  EXPECT_FALSE(l1.Probe(1, 0, 5).has_value());
  EXPECT_FALSE(l2.Probe(1, 0, 5).has_value());
  EXPECT_FALSE(l2.Probe(1, 2, 5).has_value());
  // ...while ASID 6 is untouched.
  EXPECT_TRUE(l1.Probe(1, 1, 6).has_value());
  EXPECT_TRUE(l2.Probe(1, 3, 6).has_value());
}

TEST(TlbHierarchyTest, InvalidateAllDropsBothLevels) {
  Tlb l1(2), l2(4);
  TlbHierarchy h(&l1, &l2);
  l1.Install(0, 1, 0, 0);
  l2.Install(0, 2, 0, 1);
  h.InvalidateAll();
  EXPECT_FALSE(l1.Probe(1, 0).has_value());
  EXPECT_FALSE(l2.Probe(2, 0).has_value());
}

// ----- page-size geometry helpers -----

TEST(PageGeometryTest, SpanOfCountsFrameMultiples) {
  const mem::PageGeometry g(2048, 8);
  EXPECT_EQ(g.SpanOf(2048), 1u);
  EXPECT_EQ(g.SpanOf(4096), 2u);
  EXPECT_EQ(g.SpanOf(8192), 4u);
}

TEST(PageGeometryDeathTest, SpanOfRejectsBadSizes) {
  const mem::PageGeometry g(2048, 8);
  EXPECT_DEATH(g.SpanOf(3000), "2\\^k");       // not a power of two
  EXPECT_DEATH(g.SpanOf(1024), "granule");     // below the frame size
}

TEST(PageGeometryTest, ObjectPageBytesValidation) {
  EXPECT_TRUE(mem::IsValidObjectPageBytes(512));
  EXPECT_TRUE(mem::IsValidObjectPageBytes(2048));
  EXPECT_TRUE(mem::IsValidObjectPageBytes(8192));
  EXPECT_FALSE(mem::IsValidObjectPageBytes(0));
  EXPECT_FALSE(mem::IsValidObjectPageBytes(256));      // below range
  EXPECT_FALSE(mem::IsValidObjectPageBytes(3000));     // not 2^k
  EXPECT_FALSE(mem::IsValidObjectPageBytes(16384));    // above range
}

TEST(PageGeometryTest, UserPageConstantsLiveInPageHeader) {
  // The host-MMU granule is deliberately distinct from the DP-RAM frame
  // granule; both now come from mem/page.h.
  EXPECT_EQ(mem::kUserPageShift, 12u);
  EXPECT_EQ(mem::kUserPageBytes, 4096u);
}

TEST(ObjectTableTest, RejectsNonPowerOfTwoPageSize) {
  os::ObjectTable table;
  os::MappedObject object;
  object.id = 1;
  object.user_addr = 0;
  object.size_bytes = 4096;
  object.page_bytes = 3000;
  const Status s = table.Map(object);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  object.page_bytes = 4096;
  EXPECT_TRUE(table.Map(object).ok());
}

// ----- end-to-end: page sizes and hierarchy change nothing but timing -----

TEST(TlbHierarchySystemTest, MixedPageSizesProduceIdenticalOutput) {
  const u32 width = 32, height = 16;
  const std::vector<u8> image = apps::MakeTestImage(width, height, 11);

  auto run = [&](const os::KernelConfig& config) {
    runtime::FpgaSystem sys(config);
    auto r = runtime::RunConv3x3Vim(sys, image, width, height,
                                    apps::BoxBlurKernel(), /*shift=*/3);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value().output;
  };

  const std::vector<u8> baseline = run(runtime::Epxa1Config());

  // One object on 4 KB superpages, the rest on the 2 KB default: mixed
  // sizes inside a single address space.
  os::KernelConfig mixed = runtime::Epxa1Config();
  mixed.object_page_bytes[0] = 4096;
  EXPECT_EQ(run(mixed), baseline);

  // Superpages under the two-level hierarchy at the same entry budget.
  os::KernelConfig two_level = runtime::Epxa1Config();
  two_level.object_page_bytes[0] = 4096;
  two_level.l1_tlb_entries = 2;
  two_level.l2_tlb_entries = 6;
  EXPECT_EQ(run(two_level), baseline);
}

TEST(TlbHierarchySystemTest, HierarchyReportsPerLevelTraffic) {
  // Wide enough that the source spans several pages: a 32x16 image's
  // two-page working set would sit entirely inside the 2-entry L1.
  const u32 width = 96, height = 48;
  const std::vector<u8> image = apps::MakeTestImage(width, height, 3);
  os::KernelConfig config = runtime::Epxa1Config();
  config.l1_tlb_entries = 2;
  config.l2_tlb_entries = 6;
  runtime::FpgaSystem sys(config);
  auto r = runtime::RunConv3x3Vim(sys, image, width, height,
                                  apps::BoxBlurKernel(), /*shift=*/3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  hw::Imu* imu = sys.kernel().imu();
  ASSERT_NE(imu, nullptr);
  ASSERT_TRUE(imu->xlat().two_level());
  // The L1 is tiny: a real conv working set must spill into L2 and be
  // refilled from there.
  EXPECT_GT(imu->xlat().stats().l1_fills, 0u);
  EXPECT_GT(sys.kernel().shared_tlb().stats().hits, 0u);
}

}  // namespace
}  // namespace vcop
