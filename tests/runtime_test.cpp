// Unit tests for the runtime layer: platform presets, host buffers,
// the manual runner / direct port, and report formatting.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/manual_runtime.h"
#include "runtime/report.h"

namespace vcop::runtime {
namespace {

// ----- presets -----

TEST(ConfigTest, Epxa1MatchesPaper) {
  const os::KernelConfig config = Epxa1Config();
  EXPECT_EQ(config.dp_ram_bytes, 16u * 1024);
  EXPECT_EQ(config.page_bytes, 2u * 1024);
  EXPECT_EQ(config.dp_ram_bytes / config.page_bytes, 8u);  // eight pages
  EXPECT_EQ(config.tlb_entries, 8u);
  EXPECT_EQ(config.imu_access_latency, 4u);
  EXPECT_FALSE(config.imu_pipelined);
  EXPECT_EQ(config.costs.cpu_clock.hertz(), 133'000'000u);
}

TEST(ConfigTest, FamilyGrowsMonotonically) {
  EXPECT_LT(Epxa1Config().dp_ram_bytes, Epxa4Config().dp_ram_bytes);
  EXPECT_LT(Epxa4Config().dp_ram_bytes, Epxa10Config().dp_ram_bytes);
  EXPECT_LT(Epxa1Config().pld_capacity_les, Epxa4Config().pld_capacity_les);
}

// ----- HostBuffer -----

TEST(HostBufferTest, FillViewRoundTrip) {
  FpgaSystem sys(Epxa1Config());
  auto buf = sys.Allocate<u32>(16);
  ASSERT_TRUE(buf.ok());
  std::vector<u32> data(16);
  for (u32 i = 0; i < 16; ++i) data[i] = i * i;
  buf.value().Fill(data);
  EXPECT_EQ(buf.value().ToVector(), data);
  EXPECT_EQ(buf.value().view()[3], 9u);
  buf.value().view()[3] = 42;
  EXPECT_EQ(buf.value().ToVector()[3], 42u);
}

TEST(HostBufferTest, TypedSizes) {
  FpgaSystem sys(Epxa1Config());
  auto b16 = sys.Allocate<i16>(10);
  ASSERT_TRUE(b16.ok());
  EXPECT_EQ(b16.value().size(), 10u);
  EXPECT_EQ(b16.value().size_bytes(), 20u);
}

// ----- DirectPort / ManualRunner -----

TEST(ManualRunnerTest, VecAddThroughDirectPort) {
  // Run the *same* portable FSM against the manual platform layout.
  const u32 n = 32;
  std::vector<u8> a_bytes(n * 4), b_bytes(n * 4), c_bytes(n * 4);
  for (u32 i = 0; i < n; ++i) {
    for (u32 byte = 0; byte < 4; ++byte) {
      a_bytes[4 * i + byte] = static_cast<u8>((i + 1) >> (8 * byte));
      b_bytes[4 * i + byte] = static_cast<u8>((2 * i) >> (8 * byte));
    }
  }
  ManualObject a{cp::VecAddCoprocessor::kObjA, 4, n * 4, false, a_bytes, {}};
  ManualObject b{cp::VecAddCoprocessor::kObjB, 4, n * 4, false, b_bytes, {}};
  ManualObject c{cp::VecAddCoprocessor::kObjC, 4, n * 4, false, {}, c_bytes};
  const ManualObject objects[] = {a, b, c};
  const u32 params[] = {n};
  ManualRunner runner(os::CostModel{}, 16 * 1024);
  auto result = runner.Run(cp::VecAddBitstream(), objects, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (u32 i = 0; i < n; ++i) {
    u32 v = 0;
    for (u32 byte = 0; byte < 4; ++byte) {
      v |= static_cast<u32>(c_bytes[4 * i + byte]) << (8 * byte);
    }
    ASSERT_EQ(v, (i + 1) + 2 * i) << i;
  }
  EXPECT_GT(result.value().t_hw, 0u);
  EXPECT_GT(result.value().t_copy, 0u);
}

TEST(ManualRunnerTest, LayoutOverflowReported) {
  ManualObject big{0, 4, 20 * 1024, false, {}, {}};
  const ManualObject objects[] = {big};
  ManualRunner runner(os::CostModel{}, 16 * 1024);
  auto result = runner.Run(cp::VecAddBitstream(), objects, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kResourceExhausted);
}

TEST(ManualRunnerTest, RegisterObjectsDoNotCountAgainstDpRam) {
  // A 512-byte register object + 16 KB of data: fits because the
  // register file is separate.
  std::vector<u8> reg_data(512, 1);
  ManualObject regs{2, 2, 512, true, reg_data, {}};
  ManualObject data{0, 4, 16 * 1024, false, {}, {}};
  const ManualObject objects[] = {regs, data};
  ManualRunner runner(os::CostModel{}, 16 * 1024);
  // SIZE=0: the vecadd core finishes without touching its vectors, so
  // the run succeeds iff the layout was accepted.
  const u32 params[] = {0};
  auto result = runner.Run(cp::VecAddBitstream(), objects, params);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ManualRunnerTest, RegisterFileOverflowReported) {
  std::vector<u8> reg_data(2048, 1);
  ManualObject regs{2, 2, 2048, true, reg_data, {}};
  const ManualObject objects[] = {regs};
  ManualRunner runner(os::CostModel{}, 16 * 1024);
  auto result = runner.Run(cp::VecAddBitstream(), objects, {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("register file"),
            std::string::npos);
}

// ----- report formatting -----

TEST(ReportTest, MsAndSpeedupFormat) {
  EXPECT_EQ(Ms(1'500'000'000ULL), "1.50");
  EXPECT_EQ(Speedup(2'000'000'000ULL, 1'000'000'000ULL), "2.0x");
  EXPECT_EQ(Speedup(100, 0), "inf");
}

TEST(ReportTest, DescribeMentionsComponents) {
  os::ExecutionReport r;
  r.total = 4'000'000'000ULL;
  r.t_hw = 2'000'000'000ULL;
  r.t_dp = 1'500'000'000ULL;
  r.t_imu = 300'000'000ULL;
  r.t_invoke = 200'000'000ULL;
  r.vim.faults = 12;
  const std::string s = Describe(r);
  EXPECT_NE(s.find("4.00"), std::string::npos);
  EXPECT_NE(s.find("12 faults"), std::string::npos);
  const std::string d = DescribeDetailed(r);
  EXPECT_NE(d.find("DP management"), std::string::npos);
  EXPECT_NE(d.find("IMU management"), std::string::npos);
}

// ----- EnsureLoaded behaviour through drivers -----

TEST(DriversTest, SwitchingApplicationsReloadsTheFabric) {
  FpgaSystem sys(Epxa1Config());
  const std::vector<u32> a(64, 1), b(64, 2);
  auto add = RunVecAddVim(sys, a, b);
  ASSERT_TRUE(add.ok()) << add.status().ToString();
  EXPECT_EQ(sys.kernel().fabric().current_bitstream().name, "vecadd");

  const auto keys = apps::IdeaExpandKey(apps::MakeIdeaKey(1));
  const std::vector<u8> input = apps::MakeRandomBytes(256, 2);
  auto idea = RunIdeaVim(sys, keys, input);
  ASSERT_TRUE(idea.ok()) << idea.status().ToString();
  EXPECT_EQ(sys.kernel().fabric().current_bitstream().name, "idea");
}

}  // namespace
}  // namespace vcop::runtime
