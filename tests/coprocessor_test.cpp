// Unit tests for the portable Coprocessor base class (parameter phase,
// TryRead/TryWrite handshake discipline, CP_FIN) against a mock port,
// and for the FPGA fabric / bit-stream machinery.
#include <gtest/gtest.h>

#include <deque>

#include "cp/registry.h"
#include "hw/coprocessor.h"
#include "hw/cp_port.h"
#include "hw/fabric.h"

namespace vcop::hw {
namespace {

/// A mock port that answers every access after a fixed number of polls,
/// recording the traffic. Not clocked: the test drives OnRisingEdge.
class MockPort final : public CoprocessorPort {
 public:
  explicit MockPort(u32 polls_until_ready = 0)
      : polls_until_ready_(polls_until_ready) {}

  bool CanIssue() const override { return !outstanding_; }

  void Issue(const CpAccess& access) override {
    VCOP_CHECK(CanIssue());
    outstanding_ = true;
    polls_left_ = polls_until_ready_;
    current_ = access;
    issued.push_back(access);
  }

  bool ResponseReady() const override {
    return outstanding_ && polls_left_ == 0;
  }

  u32 ConsumeResponse() override {
    VCOP_CHECK(ResponseReady());
    outstanding_ = false;
    if (current_.write) return 0;
    const u32 v = read_values.empty() ? 0xDEAD : read_values.front();
    if (!read_values.empty()) read_values.pop_front();
    return v;
  }

  bool BackToBack() const override { return back_to_back; }
  void ReleaseParamPage() override { ++param_releases; }
  void SignalFinish() override { ++finishes; }

  /// Advances the "translation": call once per simulated edge.
  void TickTranslation() {
    if (outstanding_ && polls_left_ > 0) --polls_left_;
  }

  std::vector<CpAccess> issued;
  std::deque<u32> read_values;
  int param_releases = 0;
  int finishes = 0;
  bool back_to_back = false;

 private:
  u32 polls_until_ready_;
  u32 polls_left_ = 0;
  bool outstanding_ = false;
  CpAccess current_{};
};

/// Reads params then writes their sum to object 0 element 0.
class SumParamsCoprocessor final : public Coprocessor {
 public:
  std::string_view name() const override { return "sumparams"; }

 protected:
  void OnStart() override {
    sum_ = 0;
    for (usize i = 0; i < num_params(); ++i) sum_ += param(i);
  }

  void Step() override {
    if (TryWrite(0, 0, sum_)) Finish();
  }

 private:
  u32 sum_ = 0;
};

TEST(CoprocessorBaseTest, ParamPhaseReadsParamObjectThenReleases) {
  MockPort port;
  port.read_values = {10, 20, 30};
  SumParamsCoprocessor cp;
  cp.BindPort(port);
  cp.Start(3);
  EXPECT_TRUE(cp.running());

  for (int edge = 0; edge < 20 && !cp.finished(); ++edge) {
    port.TickTranslation();
    cp.OnRisingEdge();
  }
  ASSERT_TRUE(cp.finished());
  EXPECT_EQ(port.param_releases, 1);
  EXPECT_EQ(port.finishes, 1);
  // 3 param reads from the reserved object, then the sum write.
  ASSERT_EQ(port.issued.size(), 4u);
  for (u32 i = 0; i < 3; ++i) {
    EXPECT_EQ(port.issued[i].object, kParamObject);
    EXPECT_EQ(port.issued[i].index, i);
    EXPECT_FALSE(port.issued[i].write);
  }
  EXPECT_TRUE(port.issued[3].write);
  EXPECT_EQ(port.issued[3].wdata, 60u);
}

TEST(CoprocessorBaseTest, ZeroParamsStillReleasesParamPage) {
  MockPort port;
  SumParamsCoprocessor cp;
  cp.BindPort(port);
  cp.Start(0);
  for (int edge = 0; edge < 10 && !cp.finished(); ++edge) {
    port.TickTranslation();
    cp.OnRisingEdge();
  }
  ASSERT_TRUE(cp.finished());
  EXPECT_EQ(port.param_releases, 1);
  EXPECT_EQ(port.issued.size(), 1u);  // only the write
}

TEST(CoprocessorBaseTest, MultiCycleAccessOccupiesFsm) {
  MockPort port(/*polls_until_ready=*/3);
  SumParamsCoprocessor cp;
  cp.BindPort(port);
  cp.Start(0);
  int edges = 0;
  while (!cp.finished() && edges < 50) {
    port.TickTranslation();
    cp.OnRisingEdge();
    ++edges;
  }
  ASSERT_TRUE(cp.finished());
  // Param release edge + issue + 3 wait edges + consume ~ 5-6 edges.
  EXPECT_GE(edges, 5);
}

TEST(CoprocessorBaseTest, CyclesRunCountsEdges) {
  MockPort port;
  SumParamsCoprocessor cp;
  cp.BindPort(port);
  cp.Start(0);
  port.TickTranslation();
  cp.OnRisingEdge();
  port.TickTranslation();
  cp.OnRisingEdge();
  EXPECT_EQ(cp.cycles_run(), 2u);
  // A restart resets the counter.
  while (!cp.finished()) {
    port.TickTranslation();
    cp.OnRisingEdge();
  }
  cp.Start(0);
  EXPECT_EQ(cp.cycles_run(), 0u);
}

TEST(CoprocessorBaseTest, AbortStopsWithoutFinish) {
  MockPort port(/*polls_until_ready=*/100);
  SumParamsCoprocessor cp;
  cp.BindPort(port);
  cp.Start(0);
  cp.OnRisingEdge();  // param phase done; write issued next edge
  cp.OnRisingEdge();
  cp.Abort();
  EXPECT_FALSE(cp.running());
  EXPECT_FALSE(cp.finished());
  EXPECT_EQ(port.finishes, 0);
}

TEST(CoprocessorBaseDeathTest, StartWithoutPortAborts) {
  SumParamsCoprocessor cp;
  EXPECT_DEATH(cp.Start(0), "no port bound");
}

TEST(CoprocessorBaseDeathTest, DoubleStartAborts) {
  MockPort port;
  SumParamsCoprocessor cp;
  cp.BindPort(port);
  cp.Start(0);
  EXPECT_DEATH(cp.Start(0), "already running");
}

// ----- FpgaFabric -----

TEST(FabricTest, ConfigureCreatesCoreAndPricesTime) {
  FpgaFabric fabric(/*capacity_les=*/5000, /*bytes_per_second=*/1 << 20);
  const Bitstream bs = cp::VecAddBitstream();
  auto t = fabric.Configure(bs);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(fabric.loaded());
  EXPECT_NE(fabric.coprocessor(), nullptr);
  EXPECT_EQ(fabric.coprocessor()->name(), "vecadd");
  // 48 KB at 1 MB/s = 46.875 ms.
  EXPECT_NEAR(ToMilliseconds(t.value()), 46.875, 0.01);
}

TEST(FabricTest, ExclusiveUse) {
  FpgaFabric fabric(5000, 1 << 20);
  ASSERT_TRUE(fabric.Configure(cp::VecAddBitstream()).ok());
  const auto second = fabric.Configure(cp::AdpcmDecodeBitstream());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kResourceExhausted);
  fabric.Release();
  EXPECT_FALSE(fabric.loaded());
  EXPECT_TRUE(fabric.Configure(cp::AdpcmDecodeBitstream()).ok());
}

TEST(FabricTest, ResourceFitChecked) {
  FpgaFabric small(/*capacity_les=*/100, 1 << 20);
  const auto r = small.Configure(cp::IdeaBitstream());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("LEs"), std::string::npos);
}

TEST(FabricTest, IdeaNearlyFillsEpxa1) {
  // The paper: "Exploiting IDEA's parallelism in hardware was limited
  // by the limited PLD resources of the device used."
  const Bitstream idea = cp::IdeaBitstream();
  EXPECT_GT(idea.logic_elements, 4160u * 8 / 10);
  EXPECT_LE(idea.logic_elements, 4160u);
}

TEST(FabricTest, InvalidBitstreamRejected) {
  FpgaFabric fabric(5000, 1 << 20);
  Bitstream bad = cp::VecAddBitstream();
  bad.create = nullptr;
  EXPECT_FALSE(fabric.Configure(bad).ok());
  Bitstream no_clock = cp::VecAddBitstream();
  no_clock.cp_clock = Frequency();
  EXPECT_FALSE(fabric.Configure(no_clock).ok());
}

}  // namespace
}  // namespace vcop::hw
