// Differential test for the fast-forward execution tier: with
// `fastforward=on` the simulation must be bit-identical — outputs,
// the full ExecutionReport (ScheduleReport decomposition, VimAccounting,
// ImuStats, TlbStats) and the final simulated timestamp — to the
// cycle-stepped engine, across every workload and platform ablation.
//
// The sweep runs 200 seeded (workload × config) points through both
// engines via the parallel fleet runner; the configs deliberately
// include victim-TLB + adaptive-prefetch and overlapped-prefetch
// variants whose fault-time machinery forces the tier onto its
// fallback edges, and posted-write variants whose writes are never
// eligible at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "os/kernel.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "sim/fleet.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

os::KernelConfig VariantConfig(u64 seed, bool fastforward) {
  os::KernelConfig config = Epxa1Config();
  switch (seed % 4) {
    case 0:  // plain EPXA1: long hit streaks, maximal fast-forwarding
      break;
    case 1:  // victim TLB + adaptive prefetch: fault-heavy fallback edges
      config.vim.victim_tlb_entries = 4;
      config.vim.prefetch = os::PrefetchKind::kAdaptive;
      config.vim.prefetch_depth = 2;
      break;
    case 2:  // overlapped prefetch + coalesced write-back: the VIM's
             // in-flight transfers veto the tier through its OS gate
      config.vim.prefetch = os::PrefetchKind::kSequential;
      config.vim.overlap_prefetch = true;
      config.vim.coalesce_writeback = true;
      break;
    default:  // posted writes + bounds check: writes never eligible
      config.imu_posted_writes = true;
      config.imu_bounds_check = true;
      break;
  }
  config.sim_tuning.fastforward = fastforward;
  return config;
}

struct DiffOutcome {
  std::vector<u8> output;
  os::ExecutionReport report;
  Picoseconds sim_now = 0;
  u64 events = 0;
  u64 residual_events = 0;
};

template <typename T>
std::vector<u8> AsBytes(const std::vector<T>& v) {
  std::vector<u8> bytes(v.size() * sizeof(T));
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

/// Runs workload `seed % 4` (adpcm / IDEA / conv2d / gather) on a fresh
/// system configured by VariantConfig(seed / 4, fastforward).
DiffOutcome RunPoint(u64 seed, bool fastforward) {
  FpgaSystem sys(VariantConfig(seed / 4, fastforward));
  DiffOutcome out;
  switch (seed % 4) {
    case 0: {
      const std::vector<u8> input =
          apps::MakeAdpcmStream(512 + (seed % 3) * 512, seed);
      auto run = runtime::RunAdpcmVim(sys, input);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
    case 1: {
      const std::vector<u8> plain = apps::MakeRandomBytes(1024, seed);
      const apps::IdeaSubkeys subkeys =
          apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
      auto run = runtime::RunIdeaVim(sys, subkeys, plain);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
    case 2: {
      const u32 width = 32, height = 16;
      const std::vector<u8> image = apps::MakeTestImage(width, height, seed);
      auto run = runtime::RunConv3x3Vim(sys, image, width, height,
                                        apps::BoxBlurKernel(), /*shift=*/3);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
    default: {
      // Random permutation gather: data-dependent page hopping, the
      // worst case for hit streaks (and the translation cache).
      std::vector<u32> in(512), perm(512);
      Rng rng(seed);
      for (u32 i = 0; i < 512; ++i) {
        in[i] = static_cast<u32>(seed) * 2654435761u + i;
        perm[i] = static_cast<u32>(rng.NextInRange(0, 511));
      }
      auto run = runtime::RunGatherVim(sys, in, perm);
      if (!run.ok()) throw std::runtime_error(run.status().ToString());
      out.output = AsBytes(run.value().output);
      out.report = run.value().report;
      break;
    }
  }
  out.sim_now = sys.kernel().simulator().now();
  out.events = sys.kernel().simulator().events_dispatched();
  // End-of-run quiescence audit (satellite): whatever is still queued
  // must drain as no-ops — no clock domain may tick another edge.
  out.residual_events = sys.kernel().simulator().DrainAssertQuiescent();
  return out;
}

void ExpectBitIdentical(const DiffOutcome& ff, const DiffOutcome& cyc,
                        u64 seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  EXPECT_EQ(ff.output, cyc.output);
  EXPECT_EQ(ff.sim_now, cyc.sim_now);
  const os::ExecutionReport& a = ff.report;
  const os::ExecutionReport& b = cyc.report;
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.t_hw, b.t_hw);
  EXPECT_EQ(a.t_dp, b.t_dp);
  EXPECT_EQ(a.t_imu, b.t_imu);
  EXPECT_EQ(a.t_invoke, b.t_invoke);
  EXPECT_EQ(a.cp_cycles, b.cp_cycles);
  EXPECT_EQ(a.tlb.lookups, b.tlb.lookups);
  EXPECT_EQ(a.tlb.hits, b.tlb.hits);
  EXPECT_EQ(a.tlb.misses, b.tlb.misses);
  EXPECT_EQ(a.tlb.parity_errors, b.tlb.parity_errors);
  EXPECT_EQ(a.tlb.installs, b.tlb.installs);
  EXPECT_EQ(a.imu.accesses, b.imu.accesses);
  EXPECT_EQ(a.imu.reads, b.imu.reads);
  EXPECT_EQ(a.imu.writes, b.imu.writes);
  EXPECT_EQ(a.imu.faults, b.imu.faults);
  EXPECT_EQ(a.imu.fault_stall_time, b.imu.fault_stall_time);
  EXPECT_EQ(a.imu.access_latency_time, b.imu.access_latency_time);
  EXPECT_EQ(a.vim.t_dp, b.vim.t_dp);
  EXPECT_EQ(a.vim.t_imu, b.vim.t_imu);
  EXPECT_EQ(a.vim.t_wakeup, b.vim.t_wakeup);
  EXPECT_EQ(a.vim.faults, b.vim.faults);
  EXPECT_EQ(a.vim.tlb_refills, b.vim.tlb_refills);
  EXPECT_EQ(a.vim.evictions, b.vim.evictions);
  EXPECT_EQ(a.vim.writebacks, b.vim.writebacks);
  EXPECT_EQ(a.vim.loads, b.vim.loads);
  EXPECT_EQ(a.vim.prefetched_pages, b.vim.prefetched_pages);
  EXPECT_EQ(a.vim.cleaned_pages, b.vim.cleaned_pages);
  EXPECT_EQ(a.vim.bytes_loaded, b.vim.bytes_loaded);
  EXPECT_EQ(a.vim.bytes_written_back, b.vim.bytes_written_back);
  EXPECT_EQ(a.vim.t_dp_overlapped, b.vim.t_dp_overlapped);
  EXPECT_EQ(a.vim.t_dp_wait, b.vim.t_dp_wait);
  EXPECT_EQ(a.vim.dirty_in_pages_dropped, b.vim.dirty_in_pages_dropped);
  EXPECT_EQ(a.vim.preemptions, b.vim.preemptions);
  EXPECT_EQ(a.vim.fault_recoveries, b.vim.fault_recoveries);
  EXPECT_EQ(a.vim.prefetch_useful, b.vim.prefetch_useful);
  EXPECT_EQ(a.vim.prefetch_wasted, b.vim.prefetch_wasted);
  EXPECT_EQ(a.vim.prefetch_suggestions_dropped,
            b.vim.prefetch_suggestions_dropped);
  EXPECT_EQ(a.vim.victim_tlb_hits, b.vim.victim_tlb_hits);
  EXPECT_EQ(a.vim.victim_tlb_misses, b.vim.victim_tlb_misses);
  EXPECT_EQ(a.vim.coalesced_bursts, b.vim.coalesced_bursts);
  EXPECT_EQ(a.vim.coalesced_pages, b.vim.coalesced_pages);
  EXPECT_EQ(a.vim.fault_service_us.count(), b.vim.fault_service_us.count());
  EXPECT_EQ(a.vim.fault_service_us.sum(), b.vim.fault_service_us.sum());
  EXPECT_EQ(a.vim.fault_service_us.min(), b.vim.fault_service_us.min());
  EXPECT_EQ(a.vim.fault_service_us.max(), b.vim.fault_service_us.max());
}

constexpr u64 kDiffSeeds = 200;

TEST(FastForwardDiffTest, TwoHundredSeedsAreBitIdenticalAcrossEngines) {
  struct Pair {
    DiffOutcome ff;
    DiffOutcome cyc;
  };
  // Both engines for each seed run in one fleet task, fanned out over
  // all cores; results land by index, so the comparison order (and any
  // failure message) is deterministic regardless of thread count.
  const std::vector<Pair> pairs = sim::FleetMap<Pair>(
      kDiffSeeds, [](usize i) -> Pair {
        const u64 seed = static_cast<u64>(i) + 1;
        return Pair{RunPoint(seed, /*fastforward=*/true),
                    RunPoint(seed, /*fastforward=*/false)};
      });
  u64 ff_events = 0, cyc_events = 0;
  for (usize i = 0; i < pairs.size(); ++i) {
    ExpectBitIdentical(pairs[i].ff, pairs[i].cyc, static_cast<u64>(i) + 1);
    ff_events += pairs[i].ff.events;
    cyc_events += pairs[i].cyc.events;
  }
  // The tier must actually engage: across the sweep the analytic path
  // eliminates a large share of the dispatched events.
  EXPECT_LT(2 * ff_events, cyc_events)
      << "ff=" << ff_events << " cycle=" << cyc_events;
  RecordProperty("ff_events", static_cast<int>(ff_events));
  RecordProperty("cycle_events", static_cast<int>(cyc_events));
}

TEST(FastForwardDiffTest, FaultPlansStayReplayableUnderFastForward) {
  // An armed plan on non-CP sites must inject at the exact same
  // opportunities under both engines (the opportunity streams are
  // ordered identically), and the CP-port sites veto the tier outright.
  for (const u64 seed : {3ull, 7ull, 11ull}) {
    for (u64 workload = 0; workload < 4; ++workload) {
      FaultPlan plan_ff;
      plan_ff.At(FaultSite::kTlbParity, 1);
      plan_ff.At(FaultSite::kAhbRetry, 2);
      // CP-port sites do not veto the tier: TranslateAt replays their
      // draws at the analytic time, so a stall must land identically.
      plan_ff.WithProbability(FaultSite::kCpStall, 0.02);
      FaultPlan plan_cyc = plan_ff;

      os::KernelConfig ff_config = Epxa1Config();
      ff_config.sim_tuning.fastforward = true;
      os::KernelConfig cyc_config = Epxa1Config();

      auto run = [&](const os::KernelConfig& config,
                     FaultPlan* plan) -> DiffOutcome {
        FpgaSystem sys(config);
        sys.kernel().InstallFaultPlan(plan);
        DiffOutcome out;
        const std::vector<u8> input =
            apps::MakeAdpcmStream(512, seed + workload);
        auto r = runtime::RunAdpcmVim(sys, input);
        if (!r.ok()) throw std::runtime_error(r.status().ToString());
        out.output = AsBytes(r.value().output);
        out.report = r.value().report;
        out.sim_now = sys.kernel().simulator().now();
        return out;
      };
      const DiffOutcome ff = run(ff_config, &plan_ff);
      const DiffOutcome cyc = run(cyc_config, &plan_cyc);
      ExpectBitIdentical(ff, cyc, seed * 10 + workload);
      for (usize s = 0; s < kNumFaultSites; ++s) {
        const FaultSite site = static_cast<FaultSite>(s);
        EXPECT_EQ(plan_ff.stats(site).opportunities,
                  plan_cyc.stats(site).opportunities)
            << FaultSiteName(site);
        EXPECT_EQ(plan_ff.stats(site).injected, plan_cyc.stats(site).injected)
            << FaultSiteName(site);
      }
    }
  }
}

TEST(FastForwardDiffTest, RandomFaultPlansAreBitIdenticalAcrossEngines) {
  // The torture generator arms arbitrary site mixes — including the
  // CP-port hang/stall sites and plans that abort the run. Whatever the
  // outcome, both engines must tell exactly the same story: status,
  // bytes, final simulated time, and every per-site opportunity and
  // injection count.
  struct FaultRun {
    ErrorCode code = ErrorCode::kOk;
    std::vector<u8> output;
    Picoseconds sim_now = 0;
    u64 injected = 0;
    std::array<u64, 2 * kNumFaultSites> site_counts{};
  };
  auto run_one = [](u64 seed, bool fastforward) -> FaultRun {
    os::KernelConfig config = Epxa1Config();
    config.sim_tuning.fastforward = fastforward;
    FpgaSystem sys(config);
    FaultPlan plan = FaultPlan::Random(seed);
    sys.kernel().InstallFaultPlan(&plan);
    FaultRun out;
    const std::vector<u8> input = apps::MakeAdpcmStream(1024, seed);
    auto r = runtime::RunAdpcmVim(sys, input);
    out.code = r.status().code();
    if (r.ok()) out.output = AsBytes(r.value().output);
    out.sim_now = sys.kernel().simulator().now();
    out.injected = plan.total_injected();
    for (usize s = 0; s < kNumFaultSites; ++s) {
      out.site_counts[2 * s] = plan.stats(static_cast<FaultSite>(s)).opportunities;
      out.site_counts[2 * s + 1] = plan.stats(static_cast<FaultSite>(s)).injected;
    }
    return out;
  };
  struct FaultPair {
    FaultRun ff;
    FaultRun cyc;
  };
  const std::vector<FaultPair> pairs = sim::FleetMap<FaultPair>(
      64, [&](usize i) -> FaultPair {
        const u64 seed = static_cast<u64>(i) + 1;
        return FaultPair{run_one(seed, true), run_one(seed, false)};
      });
  for (usize i = 0; i < pairs.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(i + 1));
    EXPECT_EQ(pairs[i].ff.code, pairs[i].cyc.code);
    EXPECT_EQ(pairs[i].ff.output, pairs[i].cyc.output);
    EXPECT_EQ(pairs[i].ff.sim_now, pairs[i].cyc.sim_now);
    EXPECT_EQ(pairs[i].ff.injected, pairs[i].cyc.injected);
    EXPECT_EQ(pairs[i].ff.site_counts, pairs[i].cyc.site_counts);
  }
}

// ----- the fleet runner itself -----

TEST(FleetRunnerTest, ResultsLandByIndexRegardlessOfThreadCount) {
  auto square = [](usize i) { return static_cast<u64>(i) * i; };
  const std::vector<u64> ref = sim::FleetMap<u64>(257, square, /*threads=*/1);
  for (const u32 threads : {2u, 3u, 8u, 16u}) {
    const std::vector<u64> got = sim::FleetMap<u64>(257, square, threads);
    EXPECT_EQ(got, ref) << threads << " threads";
  }
}

TEST(FleetRunnerTest, FirstExceptionIsRethrownInTheCaller) {
  std::atomic<u32> ran{0};
  EXPECT_THROW(
      sim::RunFleet(
          64,
          [&](usize i) {
            ran.fetch_add(1);
            if (i == 5) throw std::runtime_error("task 5 failed");
          },
          /*threads=*/4),
      std::runtime_error);
  // Workers stop claiming after the failure; not every index ran.
  EXPECT_GE(ran.load(), 1u);
}

TEST(FleetRunnerTest, ZeroAndOneCountsRunInline) {
  u32 hits = 0;
  sim::RunFleet(0, [&](usize) { ++hits; }, 8);
  EXPECT_EQ(hits, 0u);
  sim::RunFleet(1, [&](usize) { ++hits; }, 8);
  EXPECT_EQ(hits, 1u);
}

}  // namespace
}  // namespace vcop
