// Tests for the IDEA CBC mode: software reference properties and the
// coprocessor's in-core chaining register.
#include <gtest/gtest.h>

#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using apps::IdeaCbcDecrypt;
using apps::IdeaCbcEncrypt;
using apps::IdeaExpandKey;
using apps::IdeaInvertKey;
using apps::IdeaIv;
using apps::IdeaSubkeys;

IdeaIv MakeIv(u64 seed) {
  IdeaIv iv{};
  Rng rng(seed);
  for (u8& b : iv) b = static_cast<u8>(rng.NextBelow(256));
  return iv;
}

TEST(IdeaCbcTest, SoftwareRoundTrip) {
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(1));
  const IdeaSubkeys dk = IdeaInvertKey(ek);
  const IdeaIv iv = MakeIv(2);
  const std::vector<u8> pt = apps::MakeRandomBytes(256, 3);
  std::vector<u8> ct(pt.size()), rt(pt.size());
  IdeaCbcEncrypt(ek, iv, pt, ct);
  IdeaCbcDecrypt(dk, iv, ct, rt);
  EXPECT_EQ(rt, pt);
  EXPECT_NE(ct, pt);
}

TEST(IdeaCbcTest, EqualBlocksEncryptDifferently) {
  // The property ECB lacks (see IdeaEcbTest.EqualBlocksEncryptEqually).
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(4));
  const IdeaIv iv = MakeIv(5);
  std::vector<u8> pt(24, 0x42);
  std::vector<u8> ct(24);
  IdeaCbcEncrypt(ek, iv, pt, ct);
  EXPECT_FALSE(std::equal(ct.begin(), ct.begin() + 8, ct.begin() + 8));
  EXPECT_FALSE(std::equal(ct.begin() + 8, ct.begin() + 16,
                          ct.begin() + 16));
}

TEST(IdeaCbcTest, IvChangesCiphertext) {
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(6));
  const std::vector<u8> pt = apps::MakeRandomBytes(64, 7);
  std::vector<u8> a(64), b(64);
  IdeaCbcEncrypt(ek, MakeIv(1), pt, a);
  IdeaCbcEncrypt(ek, MakeIv(2), pt, b);
  EXPECT_NE(a, b);
}

TEST(IdeaCbcTest, FirstBlockMatchesEcbOfWhitenedInput) {
  // C_0 = E(P_0 ^ IV): pin the chaining definition.
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(8));
  const IdeaIv iv = MakeIv(9);
  const std::vector<u8> pt = apps::MakeRandomBytes(8, 10);
  std::vector<u8> whitened(8);
  for (usize i = 0; i < 8; ++i) {
    whitened[i] = static_cast<u8>(pt[i] ^ iv[i]);
  }
  std::vector<u8> cbc(8), ecb(8);
  IdeaCbcEncrypt(ek, iv, pt, cbc);
  apps::IdeaCryptEcb(ek, whitened, ecb);
  EXPECT_EQ(cbc, ecb);
}

TEST(IdeaCbcTest, CoprocessorMatchesSoftwareCbc) {
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(11));
  const IdeaIv iv = MakeIv(12);
  const std::vector<u8> pt = apps::MakeRandomBytes(24576, 13);
  std::vector<u8> expect(pt.size());
  IdeaCbcEncrypt(ek, iv, pt, expect);

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto run = runtime::RunIdeaCbcVim(sys, ek, iv, /*encrypt=*/true, pt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
}

TEST(IdeaCbcTest, CoprocessorRoundTrip) {
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(14));
  const IdeaSubkeys dk = IdeaInvertKey(ek);
  const IdeaIv iv = MakeIv(15);
  const std::vector<u8> pt = apps::MakeRandomBytes(4096, 16);

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto enc = runtime::RunIdeaCbcVim(sys, ek, iv, true, pt);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  auto dec = runtime::RunIdeaCbcVim(sys, dk, iv, false,
                                    enc.value().output);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec.value().output, pt);
}

TEST(IdeaCbcTest, EcbPathUnchangedByModeParameters) {
  // Regression: the 4-parameter protocol must leave ECB bit-identical.
  const IdeaSubkeys ek = IdeaExpandKey(apps::MakeIdeaKey(17));
  const std::vector<u8> pt = apps::MakeRandomBytes(512, 18);
  std::vector<u8> expect(pt.size());
  apps::IdeaCryptEcb(ek, pt, expect);
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto run = runtime::RunIdeaVim(sys, ek, pt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
}

}  // namespace
}  // namespace vcop
