// Tests for the map-kernel compiler: structural properties of the
// emitted microcode (hoisting, read deduplication), a host-side
// expression evaluator for differential checking, and randomised
// expression fuzzing executed on the full VIM stack.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "base/rng.h"
#include "runtime/config.h"
#include "runtime/fpga_api.h"
#include "ucode/compiler.h"
#include "ucode/ucode_cp.h"

namespace vcop::ucode {
namespace {

/// Host-side evaluation of an Expr at index i (the differential oracle).
u32 Eval(const Expr::Node& node, u32 i,
         const std::vector<std::vector<u32>>& inputs,
         const std::vector<u32>& params) {
  using Kind = Expr::Node::Kind;
  switch (node.kind) {
    case Kind::kConstant: return node.value;
    case Kind::kParam: return params[node.value];
    case Kind::kIndex: return i;
    case Kind::kInput: return inputs[node.object][i];
    case Kind::kBinary: {
      const u32 a = Eval(*node.lhs, i, inputs, params);
      const u32 b = Eval(*node.rhs, i, inputs, params);
      switch (node.op) {
        case Op::kAdd: return a + b;
        case Op::kSub: return a - b;
        case Op::kMul: return a * b;
        case Op::kAnd: return a & b;
        case Op::kOr: return a | b;
        case Op::kXor: return a ^ b;
        case Op::kShl: return a << (b & 31);
        case Op::kShr: return a >> (b & 31);
        default: VCOP_CHECK(false);
      }
    }
  }
  VCOP_CHECK(false);
  return 0;
}

/// Runs a compiled kernel on the VIM platform over `inputs` (object k =
/// inputs[k]) and returns the output object's contents.
std::vector<u32> RunKernel(const Program& program, hw::ObjectId out_obj,
                           const std::vector<std::vector<u32>>& inputs,
                           const std::vector<u32>& params) {
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  const hw::Bitstream bs = MakeMicrocodeBitstream(
      "kernel", program, Frequency::MHz(40), Frequency::MHz(40));
  VCOP_CHECK(sys.Load(bs).ok());

  const u32 n = params[0];
  std::vector<runtime::HostBuffer<u32>> buffers(hw::kMaxObjects);
  for (usize obj = 0; obj < inputs.size(); ++obj) {
    if (inputs[obj].empty()) continue;
    auto buf = sys.Allocate<u32>(static_cast<u32>(inputs[obj].size()));
    VCOP_CHECK(buf.ok());
    buf.value().Fill(inputs[obj]);
    buffers[obj] = buf.value();
    VCOP_CHECK(sys.Map(static_cast<hw::ObjectId>(obj), buf.value(),
                       os::Direction::kIn)
                   .ok());
  }
  auto out = sys.Allocate<u32>(n);
  VCOP_CHECK(out.ok());
  if (buffers[out_obj].valid()) {
    VCOP_CHECK(sys.Unmap(out_obj).ok());
  }
  VCOP_CHECK(sys.Map(out_obj, out.value(), os::Direction::kOut).ok());

  auto report = sys.Execute(std::span<const u32>(params));
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  return out.value().ToVector();
}

TEST(CompilerTest, SaxpyStructureAndResult) {
  // out1[i] = p1 * in0[i] + in2[i]
  MapKernelSpec spec;
  spec.name = "saxpy";
  spec.output = 1;
  spec.body = Expr::Param(1) * Expr::Input(0) + Expr::Input(2);
  auto program = CompileMapKernel(spec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // Structure: exactly one read per input object per iteration.
  u32 reads = 0;
  for (const Instruction& instr : program.value().code()) {
    reads += instr.op == Op::kRead;
  }
  EXPECT_EQ(reads, 2u);

  const u32 n = 512;
  std::vector<std::vector<u32>> inputs(hw::kMaxObjects);
  inputs[0].resize(n);
  inputs[2].resize(n);
  std::iota(inputs[0].begin(), inputs[0].end(), 10u);
  std::iota(inputs[2].begin(), inputs[2].end(), 99u);
  const std::vector<u32> params = {n, 7};
  const std::vector<u32> out =
      RunKernel(program.value(), 1, inputs, params);
  for (u32 i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], 7u * inputs[0][i] + inputs[2][i]) << i;
  }
}

TEST(CompilerTest, RepeatedInputReadOnce) {
  // (in0 + in0*in0): one read per iteration despite three uses.
  MapKernelSpec spec;
  spec.name = "poly";
  spec.output = 1;
  spec.body =
      Expr::Input(0) + Expr::Input(0) * Expr::Input(0);
  auto program = CompileMapKernel(spec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  u32 reads = 0;
  for (const Instruction& instr : program.value().code()) {
    reads += instr.op == Op::kRead;
  }
  EXPECT_EQ(reads, 1u);
}

TEST(CompilerTest, InvariantsHoistedOutOfLoop) {
  // Constants/params must load before the loop: no kLoadImm or kParam
  // between the backward jump target and the jump.
  MapKernelSpec spec;
  spec.name = "affine";
  spec.output = 1;
  spec.body = Expr::Input(0) * Expr::Constant(3) + Expr::Param(1) +
              Expr::Constant(3);
  auto program = CompileMapKernel(spec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& code = program.value().code();
  // Find the backward jump; everything from its target onward is loop.
  u32 loop_top = 0;
  for (const Instruction& instr : code) {
    if (instr.op == Op::kJump) loop_top = instr.imm;
  }
  for (usize pc = loop_top; pc < code.size(); ++pc) {
    EXPECT_NE(code[pc].op, Op::kLoadImm) << "constant inside the loop";
    EXPECT_NE(code[pc].op, Op::kParam) << "param fetch inside the loop";
  }
  // The duplicate Constant(3) must share one register: exactly one
  // kLoadImm in the prologue besides the index init (value 0).
  u32 loadi_three = 0;
  for (const Instruction& instr : code) {
    loadi_three += instr.op == Op::kLoadImm && instr.imm == 3;
  }
  EXPECT_EQ(loadi_three, 1u);
}

TEST(CompilerTest, InPlaceUpdateKernel) {
  // out0[i] = in0[i] ^ p1: reads and writes the same object.
  MapKernelSpec spec;
  spec.name = "xor-in-place";
  spec.output = 0;
  spec.body = Expr::Input(0) ^ Expr::Param(1);
  auto program = CompileMapKernel(spec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // Run with object 0 mapped INOUT.
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  VCOP_CHECK(sys.Load(MakeMicrocodeBitstream("xip", program.value(),
                                             Frequency::MHz(40),
                                             Frequency::MHz(40)))
                 .ok());
  const u32 n = 600;
  auto buf = sys.Allocate<u32>(n);
  ASSERT_TRUE(buf.ok());
  std::vector<u32> data(n);
  std::iota(data.begin(), data.end(), 5u);
  buf.value().Fill(data);
  ASSERT_TRUE(sys.Map(0, buf.value(), os::Direction::kInOut).ok());
  auto report = sys.Execute({n, 0xA5A5A5A5u});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto out = buf.value().ToVector();
  for (u32 i = 0; i < n; ++i) ASSERT_EQ(out[i], data[i] ^ 0xA5A5A5A5u);
}

TEST(CompilerTest, DeepExpressionExhaustsRegistersGracefully) {
  // A pathologically right-deep tree of distinct constants overflows
  // the hoist space -> clean error, no crash.
  Expr body = Expr::Input(0);
  for (u32 k = 1; k <= 20; ++k) {
    body = body + Expr::Constant(1000 + k);
  }
  MapKernelSpec spec;
  spec.name = "deep";
  spec.output = 1;
  spec.body = body;
  auto program = CompileMapKernel(spec);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), ErrorCode::kResourceExhausted);
}

TEST(CompilerTest, Param0Rejected) {
  MapKernelSpec spec;
  spec.name = "bad";
  spec.output = 1;
  spec.body = Expr::Param(0);
  auto program = CompileMapKernel(spec);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("reserved"),
            std::string::npos);
}

// ----- randomised differential fuzzing -----

Expr RandomExpr(Rng& rng, u32 depth, u32 num_inputs) {
  if (depth == 0 || rng.NextBool(0.3)) {
    switch (rng.NextBelow(4)) {
      case 0: return Expr::Input(static_cast<hw::ObjectId>(
          rng.NextBelow(num_inputs)));
      case 1: return Expr::Constant(static_cast<u32>(rng.Next()));
      case 2: return Expr::Param(1 + static_cast<u32>(rng.NextBelow(3)));
      default: return Expr::Index();
    }
  }
  const Expr a = RandomExpr(rng, depth - 1, num_inputs);
  const Expr b = RandomExpr(rng, depth - 1, num_inputs);
  switch (rng.NextBelow(8)) {
    case 0: return a + b;
    case 1: return a - b;
    case 2: return a * b;
    case 3: return a & b;
    case 4: return a | b;
    case 5: return a ^ b;
    case 6: return Expr::Shl(a, Expr::Constant(
        static_cast<u32>(rng.NextBelow(31))));
    default: return Expr::Shr(a, Expr::Constant(
        static_cast<u32>(rng.NextBelow(31))));
  }
}

class CompilerFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(CompilerFuzzTest, CompiledKernelMatchesHostEvaluation) {
  Rng rng(GetParam());
  const u32 num_inputs = 2;
  const Expr body = RandomExpr(rng, 3, num_inputs);

  MapKernelSpec spec;
  spec.name = "fuzz";
  spec.output = 3;
  spec.body = body;
  auto program = CompileMapKernel(spec);
  if (!program.ok()) {
    // Register exhaustion is a legal outcome for a random tree.
    EXPECT_EQ(program.status().code(), ErrorCode::kResourceExhausted);
    return;
  }

  const u32 n = 700;  // > one page of u32s: paging in play
  std::vector<std::vector<u32>> inputs(hw::kMaxObjects);
  for (u32 obj = 0; obj < num_inputs; ++obj) {
    inputs[obj].resize(n);
    for (u32& v : inputs[obj]) v = static_cast<u32>(rng.Next());
  }
  const std::vector<u32> params = {n, static_cast<u32>(rng.Next()),
                                   static_cast<u32>(rng.Next()),
                                   static_cast<u32>(rng.Next())};

  const std::vector<u32> out =
      RunKernel(program.value(), 3, inputs, params);
  for (u32 i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], Eval(body.node(), i, inputs, params))
        << "seed " << GetParam() << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzzTest,
                         ::testing::Range<u64>(1, 13));

}  // namespace
}  // namespace vcop::ucode
