// Tests for the 2D convolution domain: reference implementation
// properties, coprocessor bit-exactness across image shapes (including
// widths whose three-row window stresses the interface memory), and
// the streaming ADPCM decoder built on the same runtime.
#include <gtest/gtest.h>

#include "apps/conv2d.h"
#include "apps/workloads.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/streaming.h"

namespace vcop {
namespace {

using apps::Conv3x3Kernel;
using apps::Convolve3x3;
using apps::MakeTestImage;

// ----- reference implementation -----

TEST(Conv2dReferenceTest, IdentityKernelCopies) {
  const Conv3x3Kernel identity{0, 0, 0, 0, 1, 0, 0, 0, 0};
  const std::vector<u8> img = MakeTestImage(16, 12, 1);
  std::vector<u8> out(img.size());
  Convolve3x3(img, 16, 12, identity, 0, out);
  EXPECT_EQ(out, img);
}

TEST(Conv2dReferenceTest, BordersCopiedThrough) {
  const std::vector<u8> img = MakeTestImage(20, 10, 2);
  std::vector<u8> out(img.size());
  Convolve3x3(img, 20, 10, apps::SobelXKernel(), 0, out);
  for (u32 x = 0; x < 20; ++x) {
    EXPECT_EQ(out[x], img[x]);
    EXPECT_EQ(out[9 * 20 + x], img[9 * 20 + x]);
  }
  for (u32 y = 0; y < 10; ++y) {
    EXPECT_EQ(out[y * 20], img[y * 20]);
    EXPECT_EQ(out[y * 20 + 19], img[y * 20 + 19]);
  }
}

TEST(Conv2dReferenceTest, BoxBlurOfConstantIsConstant) {
  std::vector<u8> img(15 * 15, 72);
  std::vector<u8> out(img.size());
  // Sum of 9 * 72 = 648; shift 3 -> 81. A true /9 would give 72, the
  // shift-8ths approximation gives 81: verify the exact arithmetic.
  Convolve3x3(img, 15, 15, apps::BoxBlurKernel(), 3, out);
  EXPECT_EQ(out[7 * 15 + 7], 81);
}

TEST(Conv2dReferenceTest, SobelFlatRegionsAreZero) {
  std::vector<u8> img(12 * 12, 100);
  std::vector<u8> out(img.size());
  Convolve3x3(img, 12, 12, apps::SobelXKernel(), 0, out);
  EXPECT_EQ(out[5 * 12 + 5], 0);  // no gradient, clamped at 0
}

TEST(Conv2dReferenceTest, SobelDetectsVerticalEdge) {
  // Left half dark, right half bright: strong response on the seam.
  const u32 w = 16, h = 8;
  std::vector<u8> img(w * h, 0);
  for (u32 y = 0; y < h; ++y) {
    for (u32 x = w / 2; x < w; ++x) img[y * w + x] = 200;
  }
  std::vector<u8> out(img.size());
  Convolve3x3(img, w, h, apps::SobelXKernel(), 0, out);
  EXPECT_EQ(out[3 * w + (w / 2 - 1)], 255);  // clamped strong edge
  EXPECT_EQ(out[3 * w + 2], 0);              // flat region
}

TEST(Conv2dReferenceTest, ClampsBothEnds) {
  std::vector<u8> img(9, 255);
  std::vector<u8> out(9);
  // All-positive kernel overflows 255 -> clamp high.
  Convolve3x3(img, 3, 3, apps::BoxBlurKernel(), 0, out);
  EXPECT_EQ(out[4], 255);
  // Negative kernel on bright image -> clamp low.
  const Conv3x3Kernel negative{-1, -1, -1, -1, -1, -1, -1, -1, -1};
  Convolve3x3(img, 3, 3, negative, 0, out);
  EXPECT_EQ(out[4], 0);
}

// ----- coprocessor vs reference across shapes -----

struct ConvShape {
  u32 width;
  u32 height;
};

class ConvCoprocessorTest : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvCoprocessorTest, BitExactAgainstReference) {
  const auto [width, height] = GetParam();
  const std::vector<u8> img = MakeTestImage(width, height, 7);
  const Conv3x3Kernel kernel = apps::EmbossKernel();

  std::vector<u8> expect(img.size());
  Convolve3x3(img, width, height, kernel, 0, expect);

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto run = runtime::RunConv3x3Vim(sys, img, width, height, kernel, 0);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvCoprocessorTest,
    ::testing::Values(ConvShape{3, 3},      // minimal: border only + 1
                      ConvShape{16, 16},    // small
                      ConvShape{64, 64},    // 4 KB image
                      ConvShape{100, 37},   // non-power-of-two
                      ConvShape{2048, 8},   // one row = one page
                      ConvShape{4096, 6},   // row spans two pages
                      ConvShape{128, 128}   // 16 KB image = whole DP-RAM
                      ));

TEST(ConvCoprocessorTest, StridedWorkingSetPagesSanely) {
  // 2048-wide image: each row is exactly one 2 KB page, so the 3x3
  // window holds 3 source pages + 1 destination page live at once.
  const u32 w = 2048, h = 12;
  const std::vector<u8> img = MakeTestImage(w, h, 9);
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto run = runtime::RunConv3x3Vim(sys, img, w, h,
                                    apps::SharpenKernel(), 0);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const os::ExecutionReport& r = run.value().report;
  // 24 KB of image + 24 KB out on 16 KB of DP-RAM: must fault and
  // evict, but with an LRU-friendly window it must not thrash
  // per-pixel: faults stay around the page count, not the pixel count.
  EXPECT_GT(r.vim.faults, 10u);
  EXPECT_LT(r.vim.faults, 200u);
}

// ----- streaming decoder -----

TEST(StreamingTest, ChunkedDecodeEqualsOneShot) {
  const std::vector<u8> stream = apps::MakeAdpcmStream(10'000, 77);
  std::vector<i16> expect(stream.size() * 2);
  apps::AdpcmState st;
  apps::AdpcmDecode(stream, expect, st);

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto decoder = runtime::AdpcmStreamDecoder::Create(sys, 1536);
  ASSERT_TRUE(decoder.ok()) << decoder.status().ToString();

  // Feed in awkward pieces.
  std::vector<i16> got;
  usize pos = 0;
  for (const usize piece : {100u, 999u, 2048u, 1u, 5000u}) {
    const usize n = std::min(piece, stream.size() - pos);
    auto out = decoder.value().Feed(
        std::span<const u8>(stream).subspan(pos, n));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    got.insert(got.end(), out.value().begin(), out.value().end());
    pos += n;
  }
  auto rest = decoder.value().Feed(
      std::span<const u8>(stream).subspan(pos));
  ASSERT_TRUE(rest.ok());
  got.insert(got.end(), rest.value().begin(), rest.value().end());
  auto tail = decoder.value().Finish();
  ASSERT_TRUE(tail.ok());
  got.insert(got.end(), tail.value().begin(), tail.value().end());

  EXPECT_EQ(got, expect);
  EXPECT_GT(decoder.value().stats().chunks, 5u);
  EXPECT_EQ(decoder.value().stats().samples, stream.size() * 2);
}

TEST(StreamingTest, FinishOnEmptyIsNoop) {
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto decoder = runtime::AdpcmStreamDecoder::Create(sys, 512);
  ASSERT_TRUE(decoder.ok());
  auto out = decoder.value().Finish();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(StreamingTest, StatsAccumulateAcrossChunks) {
  const std::vector<u8> stream = apps::MakeAdpcmStream(4096, 5);
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  auto decoder = runtime::AdpcmStreamDecoder::Create(sys, 1024);
  ASSERT_TRUE(decoder.ok());
  ASSERT_TRUE(decoder.value().Feed(stream).ok());
  EXPECT_EQ(decoder.value().stats().chunks, 4u);
  EXPECT_GT(decoder.value().stats().total_time, 0u);
}

}  // namespace
}  // namespace vcop
