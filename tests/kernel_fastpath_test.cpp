// Simulation-kernel fast-path tests: the inline-callback event queue,
// edge batching (NextInterestingEdge / OnEdgesSkipped), demand wakes
// (KickAt), and the end-to-end guarantee that the fast engine produces
// bit-identical ExecutionReports to the event-per-edge reference
// engine on the Figure 8 / Figure 9 workload points.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/idea.h"
#include "apps/workloads.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/inline_function.h"
#include "sim/simulator.h"

namespace vcop {
namespace {

using sim::ClockDomain;
using sim::ClockedModule;
using sim::EventQueue;
using sim::InlineFunction;
using sim::Simulator;

// ----- InlineFunction -----

struct CountingPayload {
  static int copies;
  static int moves;
  static int destroys;
  int tag;
  int* hits;

  CountingPayload(int tag, int* hits) : tag(tag), hits(hits) {}
  CountingPayload(const CountingPayload& o) noexcept
      : tag(o.tag), hits(o.hits) {
    ++copies;
  }
  CountingPayload(CountingPayload&& o) noexcept : tag(o.tag), hits(o.hits) {
    ++moves;
  }
  ~CountingPayload() { ++destroys; }
  void operator()() { *hits += tag; }

  static void ResetCounters() { copies = moves = destroys = 0; }
};
int CountingPayload::copies = 0;
int CountingPayload::moves = 0;
int CountingPayload::destroys = 0;

TEST(InlineFunctionTest, SmallCaptureRuns) {
  int hit = 0;
  InlineFunction f([&hit] { hit = 7; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hit, 7);
}

TEST(InlineFunctionTest, LargeCaptureSpillsToHeapAndRuns) {
  std::array<u8, 2 * InlineFunction::kInlineBytes> big{};
  for (usize i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i);
  static_assert(sizeof(big) > InlineFunction::kInlineBytes);
  int sum = 0;
  InlineFunction f([big, &sum] {
    for (const u8 b : big) sum += b;
  });
  f();
  int expect = 0;
  for (usize i = 0; i < big.size(); ++i) expect += static_cast<int>(i & 0xFF);
  EXPECT_EQ(sum, expect);
}

TEST(InlineFunctionTest, MoveTransfersThePayloadWithoutCopying) {
  CountingPayload::ResetCounters();
  int hits = 0;
  {
    InlineFunction a{CountingPayload(3, &hits)};
    InlineFunction b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    b();
  }
  EXPECT_EQ(CountingPayload::copies, 0);
  EXPECT_GE(CountingPayload::moves, 1);
  EXPECT_EQ(hits, 3);
  // Every constructed payload was destroyed exactly once.
  EXPECT_EQ(CountingPayload::destroys, 1 + CountingPayload::moves);
}

TEST(InlineFunctionTest, HoldsMoveOnlyCaptures) {
  // std::function could not store this lambda at all (it requires
  // copyability); the queue's action type must.
  auto value = std::make_unique<int>(41);
  int out = 0;
  InlineFunction f([v = std::move(value), &out] { out = *v + 1; });
  f();
  EXPECT_EQ(out, 42);
}

// ----- EventQueue -----

TEST(EventQueueTest, ActionsAreMovedNotCopied) {
  // Regression for the old priority_queue engine, which const_cast-
  // moved actions out of top() and copied on every heap adjustment.
  CountingPayload::ResetCounters();
  int hits = 0;
  {
    EventQueue q;
    for (int i = 0; i < 16; ++i) {
      q.ScheduleAt(static_cast<Picoseconds>(100 * (16 - i)),
                   CountingPayload(1 << (i % 8), &hits));
    }
    while (!q.empty()) q.DispatchOne();
  }
  EXPECT_EQ(CountingPayload::copies, 0);
  EXPECT_EQ(hits, 2 * ((1 << 8) - 1));
  EXPECT_EQ(CountingPayload::destroys, 16 + CountingPayload::moves);
}

TEST(EventQueueTest, SameTimePriorityThenFifo) {
  EventQueue q;
  std::string log;
  q.ScheduleAt(500, /*priority=*/7, [&log] { log += 'd'; });
  q.ScheduleAt(500, /*priority=*/2, [&log] { log += 'b'; });
  q.ScheduleAt(500, /*priority=*/2, [&log] { log += 'c'; });  // FIFO after b
  q.ScheduleAt(500, /*priority=*/0, [&log] { log += 'a'; });
  q.ScheduleAt(400, /*priority=*/9, [&log] { log += '0'; });  // earlier time
  EXPECT_EQ(q.NextTime(), 400u);
  EXPECT_EQ(q.NextPriority(), 9u);
  while (!q.empty()) q.DispatchOne();
  EXPECT_EQ(log, "0abcd");
}

TEST(EventQueueTest, SpilledAndInlineActionsInterleave) {
  EventQueue q;
  std::vector<int> order;
  std::array<u8, 100> big{};
  big[99] = 2;
  q.ScheduleAt(10, [&order] { order.push_back(1); });  // inline
  q.ScheduleAt(20, [&order, big] { order.push_back(big[99]); });  // spilled
  q.ScheduleAt(30, [&order] { order.push_back(3); });  // inline
  while (!q.empty()) q.DispatchOne();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, AdvanceNowMovesTimeWithoutDispatching) {
  EventQueue q;
  bool ran = false;
  q.ScheduleAt(1000, [&ran] { ran = true; });
  q.AdvanceNow(999);
  EXPECT_EQ(q.now(), 999u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.dispatched(), 0u);
  q.DispatchOne();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 1000u);
}

// ----- Edge batching -----

/// Scripted module shaped like the coprocessor's compute-delay pattern:
/// its first edge starts a fixed delay of `delay` edges that carry no
/// work, the edge after the delay completes the work, and the module
/// then goes inactive. The delay burns tick-by-tick under the reference
/// engine and via skip credits under batching.
class ScriptedModule : public ClockedModule {
 public:
  ScriptedModule(Simulator& sim, u32 delay) : sim_(sim), delay_left_(delay) {}

  void OnRisingEdge() override {
    ticks.push_back(sim_.now());
    if (!started_) {
      started_ = true;
      return;
    }
    if (delay_left_ > 0) {
      --delay_left_;
      return;
    }
    done_ = true;
  }

  bool active() const override { return !done_; }

  u64 NextInterestingEdge(Picoseconds) const override {
    if (done_) return kNeverInteresting;
    if (started_ && delay_left_ > 0) {
      return static_cast<u64>(delay_left_) + 1;
    }
    return 1;
  }

  void OnEdgesSkipped(u64 count, Picoseconds first_edge_time) override {
    skips.push_back({count, first_edge_time});
    const u64 burned = count < delay_left_ ? count : delay_left_;
    delay_left_ -= static_cast<u32>(burned);
  }

  std::vector<Picoseconds> ticks;
  std::vector<std::pair<u64, Picoseconds>> skips;

 private:
  Simulator& sim_;
  u32 delay_left_;
  bool started_ = false;
  bool done_ = false;
};

constexpr Picoseconds kPeriod40MHz = 25'000;

TEST(EdgeBatchingTest, DelayHintSkipsToTheInterestingEdgeInOneEvent) {
  Simulator sim;
  ClockDomain& dom = sim.AddClockDomain("d", Frequency::MHz(40));
  ScriptedModule m(sim, /*delay=*/5);
  dom.Attach(m);
  sim.RunToIdle();

  // Edge 0 starts the delay, edges 1..5 burn silently, edge 6 finishes.
  ASSERT_EQ(m.ticks.size(), 2u);
  EXPECT_EQ(m.ticks[0], 0u);
  EXPECT_EQ(m.ticks[1], 6 * kPeriod40MHz);
  // The five burnt edges arrived as one credit, stamped with the first
  // skipped edge's timestamp.
  ASSERT_EQ(m.skips.size(), 1u);
  EXPECT_EQ(m.skips[0].first, 5u);
  EXPECT_EQ(m.skips[0].second, 1 * kPeriod40MHz);
  // All seven edges elapsed, in far fewer dispatched events (with tick
  // coalescing the whole run fits in one).
  EXPECT_EQ(dom.edges_ticked(), 7u);
  EXPECT_LE(sim.events_dispatched(), 3u);
}

TEST(EdgeBatchingTest, ReferenceTuningTicksEveryEdge) {
  Simulator sim;
  sim::SimTuning ref;
  ref.batch_edges = false;
  ref.coalesce_ticks = false;
  sim.set_tuning(ref);
  ClockDomain& dom = sim.AddClockDomain("d", Frequency::MHz(40));
  ScriptedModule m(sim, /*delay=*/5);
  dom.Attach(m);
  sim.RunToIdle();
  // Every one of the 7 edges ticked in its own event; no skip credits.
  ASSERT_EQ(m.ticks.size(), 7u);
  for (usize i = 0; i < m.ticks.size(); ++i) {
    EXPECT_EQ(m.ticks[i], i * kPeriod40MHz);
  }
  EXPECT_TRUE(m.skips.empty());
  EXPECT_EQ(sim.events_dispatched(), 7u);
  EXPECT_EQ(dom.edges_ticked(), 7u);
}

TEST(EdgeBatchingTest, KickPullsABatchedAheadEventBack) {
  Simulator sim;
  ClockDomain& dom = sim.AddClockDomain("d", Frequency::MHz(40));
  ScriptedModule m(sim, /*delay=*/20);  // next tick batched to edge 21
  dom.Attach(m);

  // An external event at edge 3's timestamp demands an earlier look.
  sim.ScheduleAt(3 * kPeriod40MHz, [&dom] { dom.Kick(); });
  const bool fired = sim.RunUntil([&m] { return m.ticks.size() >= 2; });
  ASSERT_TRUE(fired);

  // The pulled-back tick lands exactly on edge 3, with exactly the two
  // intervening edges credited — batching cancelled early, never late.
  EXPECT_EQ(m.ticks[1], 3 * kPeriod40MHz);
  ASSERT_EQ(m.skips.size(), 1u);
  EXPECT_EQ(m.skips[0].first, 2u);  // edges 1 and 2
  EXPECT_EQ(m.skips[0].second, 1 * kPeriod40MHz);
}

/// Module that goes inactive immediately and records its tick times:
/// used to observe demand wakes (KickAt) on a dormant domain.
class SleeperModule : public ClockedModule {
 public:
  explicit SleeperModule(Simulator& sim) : sim_(sim) {}
  void OnRisingEdge() override { ticks.push_back(sim_.now()); }
  bool active() const override { return false; }
  u64 NextInterestingEdge(Picoseconds) const override {
    return kNeverInteresting;
  }
  std::vector<Picoseconds> ticks;

 private:
  Simulator& sim_;
};

TEST(EdgeBatchingTest, KickAtWakesADormantDomainOnTheGrid) {
  Simulator sim;
  ClockDomain& dom = sim.AddClockDomain("d", Frequency::MHz(40));
  SleeperModule m(sim);
  dom.Attach(m);
  sim.RunToIdle();  // ticks edge 0, goes dormant
  ASSERT_EQ(m.ticks.size(), 1u);

  // Wake strictly between edges 4 and 5: the tick lands on edge 5 (the
  // clock's phase is unchanged by the dormant stretch).
  sim.ScheduleAt(4 * kPeriod40MHz + 1,
                 [&dom, &sim] { dom.KickAt(sim.now()); });
  sim.RunToIdle();
  ASSERT_EQ(m.ticks.size(), 2u);
  EXPECT_EQ(m.ticks[1], 5 * kPeriod40MHz);

  // A future-time KickAt arms the wake without a trampoline event: the
  // demanded edge ticks in the only other dispatched event.
  const u64 events_before = sim.events_dispatched();
  sim.ScheduleAt(m.ticks[1] + 1,
                 [&dom] { dom.KickAt(9 * kPeriod40MHz); });
  sim.RunToIdle();
  ASSERT_EQ(m.ticks.size(), 3u);
  EXPECT_EQ(m.ticks[2], 9 * kPeriod40MHz);
  EXPECT_EQ(sim.events_dispatched() - events_before, 2u);
}

TEST(EdgeBatchingTest, FutureDemandSurvivesAnEarlierTickAndSleep) {
  // Regression: a promised KickAt wake must neither be lost when the
  // domain ticks an earlier edge and goes back to sleep, nor swallow an
  // earlier kick arriving while the promise is armed.
  Simulator sim;
  ClockDomain& dom = sim.AddClockDomain("d", Frequency::MHz(40));
  SleeperModule m(sim);
  dom.Attach(m);
  sim.RunToIdle();  // edge 0, then dormant

  // Demand a wake at edge 8; then an unrelated kick asks for edge 2.
  sim.ScheduleAt(1, [&dom] { dom.KickAt(8 * kPeriod40MHz); });
  sim.ScheduleAt(2 * kPeriod40MHz, [&dom] { dom.Kick(); });
  sim.RunToIdle();
  ASSERT_EQ(m.ticks.size(), 3u);
  EXPECT_EQ(m.ticks[1], 2 * kPeriod40MHz);  // the earlier kick ticked
  EXPECT_EQ(m.ticks[2], 8 * kPeriod40MHz);  // the promise was kept
}

TEST(EdgeBatchingTest, CoincidentEdgesKeepCreationOrderUnderBatching) {
  // 24 MHz domain created first, 6 MHz second (the IMU / IDEA-core
  // arrangement): wherever their edges coincide, the 24 MHz domain must
  // tick first — Figure 7's "data on the 4th rising edge" depends on it
  // — even when batching jumps straight between coincident edges.
  Simulator sim;
  ClockDomain& fast = sim.AddClockDomain("imu", Frequency::MHz(24));
  ClockDomain& slow = sim.AddClockDomain("cp", Frequency::MHz(6));

  struct HintedLogger : ClockedModule {
    Simulator* sim = nullptr;
    std::vector<std::pair<Picoseconds, char>>* log = nullptr;
    char id = '?';
    Frequency freq;
    u64 stride = 1;  // tick only edges whose index is a multiple of this
    u32 left = 0;
    void OnRisingEdge() override {
      log->push_back({sim->now(), id});
      if (left > 0) --left;
    }
    bool active() const override { return left > 0; }
    u64 NextInterestingEdge(Picoseconds next_edge_time) const override {
      const u64 m = freq.CyclesAt(next_edge_time) % stride;
      return m == 0 ? 1 : stride - m + 1;
    }
    void OnEdgesSkipped(u64 count, Picoseconds) override {
      left -= static_cast<u32>(count < left ? count : left);
    }
  };

  std::vector<std::pair<Picoseconds, char>> log;
  HintedLogger f;  // ticks every 4th edge: exactly the coincident ones
  f.sim = &sim;
  f.log = &log;
  f.id = 'f';
  f.freq = fast.frequency();
  f.stride = 4;
  f.left = 16;
  HintedLogger s;
  s.sim = &sim;
  s.log = &log;
  s.id = 's';
  s.freq = slow.frequency();
  s.left = 4;
  fast.Attach(f);
  slow.Attach(s);
  sim.RunToIdle();

  // At every shared timestamp the fast (earlier-created) domain logged
  // first; the 24/6 MHz grids coincide on every slow edge despite the
  // non-integral periods (drift-free EdgeTime).
  usize shared = 0;
  for (usize i = 0; i + 1 < log.size(); ++i) {
    if (log[i].first == log[i + 1].first) {
      ++shared;
      EXPECT_EQ(log[i].second, 'f') << "at t=" << log[i].first;
      EXPECT_EQ(log[i + 1].second, 's') << "at t=" << log[i].first;
    }
  }
  EXPECT_GE(shared, 4u);
}

// ----- Engine equivalence on the paper's workload points -----

os::KernelConfig FastConfig() { return runtime::Epxa1Config(); }

os::KernelConfig ReferenceConfig() {
  os::KernelConfig c = runtime::Epxa1Config();
  c.sim_tuning.batch_edges = false;
  c.sim_tuning.coalesce_ticks = false;
  c.imu_translation_cache = false;
  return c;
}

void ExpectReportsIdentical(const os::ExecutionReport& a,
                            const os::ExecutionReport& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.t_hw, b.t_hw);
  EXPECT_EQ(a.t_dp, b.t_dp);
  EXPECT_EQ(a.t_imu, b.t_imu);
  EXPECT_EQ(a.t_invoke, b.t_invoke);
  EXPECT_EQ(a.cp_cycles, b.cp_cycles);
  EXPECT_EQ(a.tlb.lookups, b.tlb.lookups);
  EXPECT_EQ(a.tlb.hits, b.tlb.hits);
  EXPECT_EQ(a.tlb.misses, b.tlb.misses);
  EXPECT_EQ(a.imu.accesses, b.imu.accesses);
  EXPECT_EQ(a.imu.reads, b.imu.reads);
  EXPECT_EQ(a.imu.writes, b.imu.writes);
  EXPECT_EQ(a.imu.faults, b.imu.faults);
  EXPECT_EQ(a.imu.fault_stall_time, b.imu.fault_stall_time);
  EXPECT_EQ(a.imu.access_latency_time, b.imu.access_latency_time);
  EXPECT_EQ(a.vim.t_dp, b.vim.t_dp);
  EXPECT_EQ(a.vim.t_imu, b.vim.t_imu);
  EXPECT_EQ(a.vim.t_wakeup, b.vim.t_wakeup);
  EXPECT_EQ(a.vim.faults, b.vim.faults);
  EXPECT_EQ(a.vim.tlb_refills, b.vim.tlb_refills);
  EXPECT_EQ(a.vim.evictions, b.vim.evictions);
  EXPECT_EQ(a.vim.writebacks, b.vim.writebacks);
  EXPECT_EQ(a.vim.loads, b.vim.loads);
  EXPECT_EQ(a.vim.prefetched_pages, b.vim.prefetched_pages);
  EXPECT_EQ(a.vim.cleaned_pages, b.vim.cleaned_pages);
  EXPECT_EQ(a.vim.bytes_loaded, b.vim.bytes_loaded);
  EXPECT_EQ(a.vim.bytes_written_back, b.vim.bytes_written_back);
  EXPECT_EQ(a.vim.t_dp_overlapped, b.vim.t_dp_overlapped);
  EXPECT_EQ(a.vim.t_dp_wait, b.vim.t_dp_wait);
  EXPECT_EQ(a.vim.dirty_in_pages_dropped, b.vim.dirty_in_pages_dropped);
  EXPECT_EQ(a.vim.fault_service_us.count(), b.vim.fault_service_us.count());
  EXPECT_EQ(a.vim.fault_service_us.sum(), b.vim.fault_service_us.sum());
  EXPECT_EQ(a.vim.fault_service_us.min(), b.vim.fault_service_us.min());
  EXPECT_EQ(a.vim.fault_service_us.max(), b.vim.fault_service_us.max());
}

class AdpcmEquivalenceTest : public ::testing::TestWithParam<usize> {};

TEST_P(AdpcmEquivalenceTest, FastEngineMatchesReferenceBitForBit) {
  const usize bytes = GetParam();
  const std::vector<u8> input =
      apps::MakeRandomBytes(bytes, /*seed=*/20040216);

  runtime::FpgaSystem fast(FastConfig());
  auto fast_run = runtime::RunAdpcmVim(fast, input);
  ASSERT_TRUE(fast_run.ok()) << fast_run.status().ToString();
  const u64 fast_events = fast.kernel().simulator().events_dispatched();

  runtime::FpgaSystem ref(ReferenceConfig());
  auto ref_run = runtime::RunAdpcmVim(ref, input);
  ASSERT_TRUE(ref_run.ok()) << ref_run.status().ToString();
  const u64 ref_events = ref.kernel().simulator().events_dispatched();

  EXPECT_EQ(fast_run.value().output, ref_run.value().output);
  ExpectReportsIdentical(fast_run.value().report, ref_run.value().report);
  // The whole point: identical results from far fewer events.
  EXPECT_GE(static_cast<double>(ref_events),
            3.0 * static_cast<double>(fast_events))
      << "ref=" << ref_events << " fast=" << fast_events;
}

INSTANTIATE_TEST_SUITE_P(Figure8Sizes, AdpcmEquivalenceTest,
                         ::testing::Values(2048, 4096, 8192));

class IdeaEquivalenceTest : public ::testing::TestWithParam<usize> {};

TEST_P(IdeaEquivalenceTest, FastEngineMatchesReferenceBitForBit) {
  const usize bytes = GetParam();
  const apps::IdeaSubkeys keys = apps::IdeaExpandKey(apps::MakeIdeaKey(16));
  const std::vector<u8> input =
      apps::MakeRandomBytes(bytes, /*seed=*/20040216);

  runtime::FpgaSystem fast(FastConfig());
  auto fast_run = runtime::RunIdeaVim(fast, keys, input);
  ASSERT_TRUE(fast_run.ok()) << fast_run.status().ToString();
  const u64 fast_events = fast.kernel().simulator().events_dispatched();

  runtime::FpgaSystem ref(ReferenceConfig());
  auto ref_run = runtime::RunIdeaVim(ref, keys, input);
  ASSERT_TRUE(ref_run.ok()) << ref_run.status().ToString();
  const u64 ref_events = ref.kernel().simulator().events_dispatched();

  EXPECT_EQ(fast_run.value().output, ref_run.value().output);
  ExpectReportsIdentical(fast_run.value().report, ref_run.value().report);
  EXPECT_GE(static_cast<double>(ref_events),
            3.0 * static_cast<double>(fast_events))
      << "ref=" << ref_events << " fast=" << fast_events;
}

INSTANTIATE_TEST_SUITE_P(Figure9Sizes, IdeaEquivalenceTest,
                         ::testing::Values(4096, 8192, 16384, 32768));

}  // namespace
}  // namespace vcop
