// Unit tests for workload generation and the ARM software-time model.
#include <gtest/gtest.h>

#include "apps/sw_model.h"
#include "apps/workloads.h"

namespace vcop::apps {
namespace {

TEST(WorkloadsTest, AudioIsDeterministicPerSeed) {
  EXPECT_EQ(MakeAudioPcm(256, 1), MakeAudioPcm(256, 1));
  EXPECT_NE(MakeAudioPcm(256, 1), MakeAudioPcm(256, 2));
}

TEST(WorkloadsTest, AudioUsesWideDynamicRange) {
  const std::vector<i16> pcm = MakeAudioPcm(4096, 3);
  i16 lo = 0, hi = 0;
  for (const i16 s : pcm) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LT(lo, -8000);
  EXPECT_GT(hi, 8000);
}

TEST(WorkloadsTest, AdpcmStreamHasRequestedSize) {
  EXPECT_EQ(MakeAdpcmStream(2048, 4).size(), 2048u);
  EXPECT_EQ(MakeAdpcmStream(1, 4).size(), 1u);
}

TEST(WorkloadsTest, RandomBytesDeterministicAndSpread) {
  const std::vector<u8> a = MakeRandomBytes(4096, 5);
  EXPECT_EQ(a, MakeRandomBytes(4096, 5));
  // All byte values should appear in 4 KB of uniform bytes.
  std::vector<bool> seen(256, false);
  for (const u8 b : a) seen[b] = true;
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 256);
}

TEST(WorkloadsTest, IdeaKeyDependsOnSeed) {
  EXPECT_EQ(MakeIdeaKey(1), MakeIdeaKey(1));
  EXPECT_NE(MakeIdeaKey(1), MakeIdeaKey(2));
}

// ----- ARM timing model: calibration anchors from the paper -----

TEST(ArmTimingModelTest, AdpcmMatchesFigure8SoftwareTimes) {
  // 18 ms at 8 KB (the derivation anchor), scaling linearly.
  const ArmTimingModel arm;
  EXPECT_NEAR(ToMilliseconds(arm.AdpcmDecodeTime(8192)), 18.0, 0.3);
  EXPECT_NEAR(ToMilliseconds(arm.AdpcmDecodeTime(4096)), 9.0, 0.2);
  EXPECT_NEAR(ToMilliseconds(arm.AdpcmDecodeTime(2048)), 4.5, 0.1);
}

TEST(ArmTimingModelTest, IdeaMatchesFigure9SoftwareTimes) {
  // The paper's axis labels: 26/53/105/211 ms for 4/8/16/32 KB.
  const ArmTimingModel arm;
  EXPECT_NEAR(ToMilliseconds(arm.IdeaEcbTime(4096)), 26.0, 0.5);
  EXPECT_NEAR(ToMilliseconds(arm.IdeaEcbTime(8192)), 53.0, 1.5);
  EXPECT_NEAR(ToMilliseconds(arm.IdeaEcbTime(16384)), 105.0, 2.0);
  EXPECT_NEAR(ToMilliseconds(arm.IdeaEcbTime(32768)), 211.0, 3.0);
}

TEST(ArmTimingModelTest, RunnersProduceCorrectOutput) {
  const ArmTimingModel arm;
  const std::vector<u8> in = MakeAdpcmStream(128, 6);
  std::vector<i16> out(256), expect(256);
  AdpcmState s;
  AdpcmDecode(in, expect, s);
  const SwRunResult r = RunSoftwareAdpcmDecode(arm, in, out);
  EXPECT_EQ(out, expect);
  EXPECT_EQ(r.time, arm.AdpcmDecodeTime(128));
}

TEST(ArmTimingModelTest, TimeScalesWithClock) {
  ArmTimingModel fast;
  fast.cpu_clock = Frequency::MHz(266);
  const ArmTimingModel slow;  // 133 MHz
  EXPECT_NEAR(static_cast<double>(slow.IdeaEcbTime(8192)) /
                  static_cast<double>(fast.IdeaEcbTime(8192)),
              2.0, 0.01);
}

}  // namespace
}  // namespace vcop::apps
