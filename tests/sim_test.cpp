// Unit tests for the simulation kernel: event queue ordering, clock
// domains (drift-free grids, dormancy + Kick semantics, multi-domain
// coincident-edge ordering) and the waveform tracer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace vcop::sim {
namespace {

// ----- EventQueue -----

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  while (!q.empty()) q.DispatchOne();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.DispatchOne();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1, [&] {
    ++fired;
    q.ScheduleAt(2, [&] { ++fired; });
  });
  while (!q.empty()) q.DispatchOne();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SchedulingAtNowFromHandlerRuns) {
  EventQueue q;
  bool ran = false;
  q.ScheduleAt(7, [&] { q.ScheduleAt(7, [&] { ran = true; }); });
  while (!q.empty()) q.DispatchOne();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueueDeathTest, PastSchedulingAborts) {
  EventQueue q;
  q.ScheduleAt(10, [] {});
  q.DispatchOne();
  EXPECT_DEATH(q.ScheduleAt(5, [] {}), "past");
}

// ----- ClockDomain -----

/// Counts its own ticks; goes inactive after a budget is exhausted.
class CountingModule : public ClockedModule {
 public:
  explicit CountingModule(u64 budget) : budget_(budget) {}

  void OnRisingEdge() override {
    ++ticks_;
    times_.push_back(current_time_ ? *current_time_ : 0);
  }
  bool active() const override { return ticks_ < budget_; }

  void set_time_source(const Picoseconds* t) { current_time_ = t; }
  u64 ticks() const { return ticks_; }
  const std::vector<Picoseconds>& times() const { return times_; }
  void extend(u64 budget) { budget_ = budget; }

 private:
  u64 budget_;
  u64 ticks_ = 0;
  const Picoseconds* current_time_ = nullptr;
  std::vector<Picoseconds> times_;
};

TEST(ClockDomainTest, TicksUntilInactiveThenSleeps) {
  Simulator sim;
  ClockDomain& clk = sim.AddClockDomain("test", Frequency::MHz(100));
  CountingModule mod(5);
  clk.Attach(mod);
  EXPECT_TRUE(sim.RunToIdle());
  EXPECT_EQ(mod.ticks(), 5u);
  // 5 edges at 10 ns period starting at t=0.
  EXPECT_EQ(sim.now(), 40'000u);
}

TEST(ClockDomainTest, KickResumesOnTheGlobalGrid) {
  Simulator sim;
  ClockDomain& clk = sim.AddClockDomain("test", Frequency::MHz(100));
  CountingModule mod(3);
  clk.Attach(mod);
  ASSERT_TRUE(sim.RunToIdle());
  const Picoseconds slept_at = sim.now();

  // Wake the clock later, off-grid: the next edge must land on the
  // grid (multiple of 10 ns), not at the kick time.
  sim.ScheduleAt(slept_at + 12'345, [&] {
    mod.extend(4);
    clk.Kick();
  });
  ASSERT_TRUE(sim.RunToIdle());
  EXPECT_EQ(mod.ticks(), 4u);
  EXPECT_EQ(sim.now() % 10'000, 0u) << "edge off the 10ns grid";
  EXPECT_GT(sim.now(), slept_at + 12'345);
}

TEST(ClockDomainTest, KickWhileScheduledIsIdempotent) {
  Simulator sim;
  ClockDomain& clk = sim.AddClockDomain("test", Frequency::MHz(1));
  CountingModule mod(2);
  clk.Attach(mod);
  clk.Kick();
  clk.Kick();
  ASSERT_TRUE(sim.RunToIdle());
  EXPECT_EQ(mod.ticks(), 2u);  // not double-ticked
}

TEST(ClockDomainTest, CoincidentEdgesOrderedByCreation) {
  // 24 MHz and 6 MHz share every 4th edge; the domain created first
  // (the IMU's, by convention) must tick first at shared timestamps.
  Simulator sim;
  ClockDomain& fast = sim.AddClockDomain("imu", Frequency::MHz(24));
  ClockDomain& slow = sim.AddClockDomain("cp", Frequency::MHz(6));

  std::vector<std::string> log;
  class Logger : public ClockedModule {
   public:
    Logger(std::vector<std::string>& log, std::string tag, u64 budget)
        : log_(log), tag_(std::move(tag)), budget_(budget) {}
    void OnRisingEdge() override {
      ++ticks_;
      log_.push_back(tag_);
    }
    bool active() const override { return ticks_ < budget_; }

   private:
    std::vector<std::string>& log_;
    std::string tag_;
    u64 budget_;
    u64 ticks_ = 0;
  };
  Logger fast_mod(log, "imu", 8);
  Logger slow_mod(log, "cp", 2);
  fast.Attach(fast_mod);
  slow.Attach(slow_mod);
  ASSERT_TRUE(sim.RunToIdle());
  // t=0 is shared: imu then cp. Then 3 imu-only edges, then shared again.
  ASSERT_GE(log.size(), 6u);
  EXPECT_EQ(log[0], "imu");
  EXPECT_EQ(log[1], "cp");
  EXPECT_EQ(log[2], "imu");
  EXPECT_EQ(log[3], "imu");
  EXPECT_EQ(log[4], "imu");
  EXPECT_EQ(log[5], "imu");
  EXPECT_EQ(log[6], "cp");
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(static_cast<Picoseconds>(i * 100), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntil([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 400u);
  EXPECT_TRUE(sim.RunToIdle());
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, RunUntilTimeStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(static_cast<Picoseconds>(i * 100), [&] { ++count; });
  }
  sim.RunUntilTime(350);
  EXPECT_EQ(count, 3);
  sim.RunUntilTime(400);  // inclusive
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, RunUntilGivesUpAfterMaxEvents) {
  Simulator sim;
  // Self-perpetuating event chain that never satisfies the predicate.
  std::function<void()> reschedule = [&] {
    sim.ScheduleAfter(10, reschedule);
  };
  sim.ScheduleAfter(10, reschedule);
  EXPECT_FALSE(sim.RunUntil([] { return false; }, /*max_events=*/1000));
}

// ----- Tracer -----

TEST(TracerTest, RecordsChangesAndAnswersValueAt) {
  Tracer t;
  const SignalId s = t.AddSignal("sig", 8);
  EXPECT_FALSE(t.ValueAt(s, 0).has_value());
  t.Record(s, 100, 0xAB);
  t.Record(s, 200, 0xCD);
  EXPECT_FALSE(t.ValueAt(s, 99).has_value());
  EXPECT_EQ(t.ValueAt(s, 100), 0xABu);
  EXPECT_EQ(t.ValueAt(s, 150), 0xABu);
  EXPECT_EQ(t.ValueAt(s, 200), 0xCDu);
  EXPECT_EQ(t.ValueAt(s, 10'000), 0xCDu);
}

TEST(TracerTest, DuplicateValueIsNotStored) {
  Tracer t;
  const SignalId s = t.AddSignal("sig", 1);
  t.Record(s, 10, 1);
  t.Record(s, 20, 1);
  t.Record(s, 30, 0);
  EXPECT_EQ(t.num_changes(), 2u);
}

TEST(TracerTest, SameTimestampOverwrites) {
  Tracer t;
  const SignalId s = t.AddSignal("sig", 4);
  t.Record(s, 10, 1);
  t.Record(s, 10, 3);
  EXPECT_EQ(t.ValueAt(s, 10), 3u);
}

TEST(TracerTest, ValuesMaskedToWidth) {
  Tracer t;
  const SignalId s = t.AddSignal("sig", 4);
  t.Record(s, 10, 0xFF);
  EXPECT_EQ(t.ValueAt(s, 10), 0xFu);
}

TEST(TracerTest, VcdContainsHeaderAndChanges) {
  Tracer t;
  const SignalId clk = t.AddSignal("clk", 1);
  const SignalId bus = t.AddSignal("bus", 8);
  t.Record(clk, 0, 0);
  t.Record(clk, 100, 1);
  t.Record(bus, 100, 0x5A);
  const std::string vcd = t.ToVcd();
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 8 \" bus $end"), std::string::npos);
  EXPECT_NE(vcd.find("#100"), std::string::npos);
  EXPECT_NE(vcd.find("b01011010 \""), std::string::npos);
}

TEST(TracerTest, AsciiRendersLanes) {
  Tracer t;
  const SignalId s = t.AddSignal("cp_tlbhit", 1);
  t.Record(s, 0, 0);
  t.Record(s, 300, 1);
  const std::string art = t.ToAscii(0, 500, 100);
  EXPECT_NE(art.find("cp_tlbhit"), std::string::npos);
  EXPECT_NE(art.find('_'), std::string::npos);  // low phase
  EXPECT_NE(art.find('/'), std::string::npos);  // rising edge
  EXPECT_NE(art.find('^'), std::string::npos);  // high phase
}

// ----- stats -----

TEST(SummaryTest, TracksMinMaxMean) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  s.Add(2.0);
  s.Add(6.0);
  s.Add(4.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(/*bucket_width=*/10.0, /*num_buckets=*/3);
  h.Add(0.0);
  h.Add(9.9);
  h.Add(15.0);
  h.Add(25.0);
  h.Add(99.0);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.summary().count(), 5u);
}

}  // namespace
}  // namespace vcop::sim
