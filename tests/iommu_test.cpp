// IOMMU subsystem tests (DESIGN.md §13): IO-TLB behaviour, the
// pin/reclaim contract, translation-fault recovery, and the zero-copy
// data path end to end through the VIM.
#include <gtest/gtest.h>

#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/workloads.h"
#include "base/fault.h"
#include "mem/iommu.h"
#include "mem/transfer.h"
#include "os/vim.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"

namespace vcop {
namespace {

using mem::AhbModel;
using mem::AhbTiming;
using mem::CopyMode;
using mem::DualPortRam;
using mem::Iommu;
using mem::kUserPageBytes;
using mem::TransferEngine;
using mem::TransferResult;
using mem::UserMemory;
using runtime::Epxa1Config;
using runtime::FpgaSystem;

// ----- unit rig: a bare IOMMU over a trusting walker -----

class IommuTest : public ::testing::Test {
 protected:
  IommuTest()
      : user_(1 << 20),
        dp_(16384),
        engine_(AhbModel(AhbTiming{}, Frequency::MHz(133)),
                Frequency::MHz(133), CopyMode::kDoubleCopy,
                /*sdram_cycles_per_word=*/12),
        iommu_(engine_, Frequency::MHz(133)) {
    iommu_.Configure(/*enabled=*/true, /*iotlb_entries=*/8,
                     /*walk_cycles=*/120);
    iommu_.set_walker([](mem::IommuAsid, mem::UserAddr) { return true; });
  }

  /// Allocates `bytes` and fills them with a seeded pattern.
  mem::UserAddr Stage(u32 bytes, u8 seed) {
    const mem::UserAddr addr = user_.Allocate(bytes).value();
    auto view = user_.View(addr, bytes);
    for (u32 i = 0; i < bytes; ++i)
      view[i] = static_cast<u8>(seed + i * 13);
    return addr;
  }

  /// As Stage, but returns a 4 KB-aligned address inside the region —
  /// for tests whose page-count arithmetic assumes aligned DMA windows.
  /// (Allocate itself is only 16-byte aligned, like malloc.)
  mem::UserAddr StageAligned(u32 pages, u8 seed) {
    const u32 bytes = (pages + 1) * kUserPageBytes;
    const mem::UserAddr addr = Stage(bytes, seed);
    return (addr + kUserPageBytes - 1) & ~(kUserPageBytes - 1);
  }

  std::vector<u8> DpBytes(u32 offset, u32 len) {
    std::vector<u8> out(len);
    dp_.Read(DualPortRam::Port::kProcessor, offset, out);
    return out;
  }

  UserMemory user_;
  DualPortRam dp_;
  TransferEngine engine_;
  Iommu iommu_;
};

TEST_F(IommuTest, IotlbHitsAfterCompulsoryMissAndEvictsRoundRobin) {
  // One 4 KB user page, accessed twice: miss + walk, then hit.
  const mem::UserAddr a = Stage(kUserPageBytes, 1);
  ASSERT_FALSE(iommu_.LoadToDp(1, user_, a, dp_, 0, 2048).iommu_fault);
  EXPECT_EQ(iommu_.stats().iotlb_misses, 1u);
  EXPECT_EQ(iommu_.stats().walks, 1u);
  ASSERT_FALSE(iommu_.LoadToDp(1, user_, a, dp_, 0, 2048).iommu_fault);
  EXPECT_EQ(iommu_.stats().iotlb_hits, 1u);
  EXPECT_EQ(iommu_.stats().iotlb_misses, 1u);

  // Touch 9 distinct pages through the 8-entry IO-TLB: at least one
  // valid entry must be displaced.
  const mem::UserAddr big = Stage(9 * kUserPageBytes, 2);
  for (u32 p = 0; p < 9; ++p) {
    ASSERT_FALSE(iommu_
                     .LoadToDp(1, user_, big + p * kUserPageBytes, dp_, 0,
                               256)
                     .iommu_fault);
  }
  EXPECT_GT(iommu_.stats().iotlb_evictions, 0u);
  EXPECT_EQ(iommu_.live_entries(), 8u);
}

TEST_F(IommuTest, InvalidateAsidRemovesExactlyTheTenantsEntries) {
  // This is the primitive FlushAsid/SaveContext/UnregisterTenant all
  // delegate to, so exactness here is exactness of the OS shootdowns.
  const mem::UserAddr a = Stage(3 * kUserPageBytes, 3);
  const mem::UserAddr b = Stage(2 * kUserPageBytes, 4);
  for (u32 p = 0; p < 3; ++p)
    ASSERT_FALSE(iommu_
                     .LoadToDp(7, user_, a + p * kUserPageBytes, dp_, 0, 64)
                     .iommu_fault);
  for (u32 p = 0; p < 2; ++p)
    ASSERT_FALSE(iommu_
                     .LoadToDp(9, user_, b + p * kUserPageBytes, dp_, 0, 64)
                     .iommu_fault);
  ASSERT_EQ(iommu_.live_entries_of(7), 3u);
  ASSERT_EQ(iommu_.live_entries_of(9), 2u);

  EXPECT_EQ(iommu_.InvalidateAsid(7), 3u);
  EXPECT_EQ(iommu_.live_entries_of(7), 0u);
  EXPECT_EQ(iommu_.live_entries_of(9), 2u);  // the other tenant survives
  EXPECT_EQ(iommu_.stats().entries_shot_down, 3u);

  // The surviving tenant still hits; the flushed one re-walks.
  const u64 hits = iommu_.stats().iotlb_hits;
  const u64 walks = iommu_.stats().walks;
  ASSERT_FALSE(iommu_.LoadToDp(9, user_, b, dp_, 0, 64).iommu_fault);
  EXPECT_EQ(iommu_.stats().iotlb_hits, hits + 1);
  ASSERT_FALSE(iommu_.LoadToDp(7, user_, a, dp_, 0, 64).iommu_fault);
  EXPECT_EQ(iommu_.stats().walks, walks + 1);
}

TEST_F(IommuTest, PinRefcountsStackAcrossOverlappingDmas) {
  const mem::UserAddr region = user_.Allocate(3 * kUserPageBytes).value();
  const mem::UserAddr base =
      (region + kUserPageBytes - 1) & ~(kUserPageBytes - 1);

  // Two in-flight DMAs overlap on the second page: it is pinned twice,
  // the first page once.
  iommu_.PinRange(user_, base, kUserPageBytes + 512);       // pages 0, 1
  iommu_.PinRange(user_, base + kUserPageBytes, 512);       // page 1 only
  EXPECT_EQ(user_.PinCount(base), 1u);
  EXPECT_EQ(user_.PinCount(base + kUserPageBytes), 2u);

  // Reclaim must refuse while either DMA is outstanding.
  EXPECT_EQ(user_.Reclaim(region).code(), ErrorCode::kFailedPrecondition);
  iommu_.UnpinRange(user_, base, kUserPageBytes + 512);
  EXPECT_EQ(user_.PinCount(base), 0u);
  EXPECT_EQ(user_.PinCount(base + kUserPageBytes), 1u);
  EXPECT_EQ(user_.Reclaim(region).code(), ErrorCode::kFailedPrecondition);

  // Last unpin releases the region for reclaim.
  iommu_.UnpinRange(user_, base + kUserPageBytes, 512);
  EXPECT_EQ(user_.pinned_pages(), 0u);
  EXPECT_TRUE(user_.Reclaim(region).ok());
  EXPECT_EQ(iommu_.stats().pages_pinned, iommu_.stats().pages_unpinned);
}

TEST_F(IommuTest, SynchronousDmaPinsOnlyForItsOwnDuration) {
  const mem::UserAddr a = Stage(kUserPageBytes, 6);
  ASSERT_FALSE(iommu_.LoadToDp(1, user_, a, dp_, 0, 2048).iommu_fault);
  // LoadToDp pins around the bus transaction and unpins before
  // returning — nothing may stay pinned afterwards.
  EXPECT_EQ(user_.pinned_pages(), 0u);
  EXPECT_GT(iommu_.stats().pages_pinned, 0u);
  EXPECT_EQ(iommu_.stats().pages_pinned, iommu_.stats().pages_unpinned);
}

TEST_F(IommuTest, TranslationFaultMovesNothingAndRetrySucceeds) {
  const mem::UserAddr a = Stage(2048, 7);
  FaultPlan plan;
  plan.At(FaultSite::kIommuTranslationFault, 1);
  iommu_.set_fault_plan(&plan);

  const TransferResult r = iommu_.LoadToDp(1, user_, a, dp_, 0, 2048);
  EXPECT_TRUE(r.iommu_fault);
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_GT(r.time, 0u);  // the wasted walk was still paid for
  EXPECT_EQ(iommu_.stats().translation_faults, 1u);
  EXPECT_EQ(user_.pinned_pages(), 0u);

  // The injected fault was transient: the retry walks and completes.
  const TransferResult again = iommu_.LoadToDp(1, user_, a, dp_, 0, 2048);
  EXPECT_FALSE(again.iommu_fault);
  EXPECT_EQ(again.bytes, 2048u);
  std::vector<u8> expect(user_.View(a, 2048).begin(),
                         user_.View(a, 2048).end());
  EXPECT_EQ(DpBytes(0, 2048), expect);
  iommu_.set_fault_plan(nullptr);
}

TEST_F(IommuTest, UnmappedPageIsRefusedByTheWalker) {
  iommu_.set_walker([](mem::IommuAsid, mem::UserAddr) { return false; });
  const mem::UserAddr a = Stage(2048, 8);
  const TransferResult r = iommu_.LoadToDp(1, user_, a, dp_, 0, 2048);
  EXPECT_TRUE(r.iommu_fault);
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_EQ(iommu_.stats().translation_faults, 1u);
  EXPECT_EQ(iommu_.live_entries(), 0u);  // nothing was installed
}

TEST_F(IommuTest, IotlbCorruptionIsDetectedAndRewalkedTransparently) {
  const mem::UserAddr a = Stage(kUserPageBytes, 9);
  ASSERT_FALSE(iommu_.LoadToDp(1, user_, a, dp_, 0, 2048).iommu_fault);

  FaultPlan plan;
  plan.At(FaultSite::kIotlbCorrupt, 1);
  iommu_.set_fault_plan(&plan);
  const TransferResult r = iommu_.LoadToDp(1, user_, a, dp_, 0, 2048);
  // Parity drops the damaged entry and the access re-walks: success,
  // correct bytes, one parity drop, one extra walk.
  EXPECT_FALSE(r.iommu_fault);
  EXPECT_EQ(r.bytes, 2048u);
  EXPECT_EQ(iommu_.stats().iotlb_parity_drops, 1u);
  EXPECT_EQ(iommu_.stats().walks, 2u);
  std::vector<u8> expect(user_.View(a, 2048).begin(),
                         user_.View(a, 2048).end());
  EXPECT_EQ(DpBytes(0, 2048), expect);
  iommu_.set_fault_plan(nullptr);
}

TEST_F(IommuTest, BurstStoreFaultKeepsThePrefixAndReportsResumePoint) {
  std::vector<u8> page(2048, 0xAB);
  dp_.Write(DualPortRam::Port::kProcessor, 0, page);

  FaultPlan plan;
  plan.At(FaultSite::kIommuTranslationFault, 2);  // second page's walk
  iommu_.set_fault_plan(&plan);
  // Three segments to three distinct, page-aligned user pages: exactly
  // one walk each, so the scheduled fault hits segment 1's translation.
  const mem::UserAddr big = StageAligned(3, 11);
  std::vector<Iommu::BurstSegment> segs;
  for (u32 i = 0; i < 3; ++i)
    segs.push_back({1, {0, big + i * kUserPageBytes, 2048}});
  const mem::BurstResult r = iommu_.StoreBurstFromDp(dp_, user_, segs);
  EXPECT_TRUE(r.iommu_fault);
  EXPECT_EQ(r.completed_segments, 1u);  // the prefix landed
  auto first = user_.View(big, 2048);
  EXPECT_TRUE(std::equal(first.begin(), first.end(), page.begin()));
  EXPECT_EQ(user_.pinned_pages(), 0u);
  iommu_.set_fault_plan(nullptr);
}

// ----- end to end through the VIM -----

TEST(IommuVimTest, ZeroCopyAdpcmIsByteExactWithZeroBounceCopies) {
  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 42);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);

  os::KernelConfig off = Epxa1Config();  // worst-case CPU path underneath
  off.vim.copy_mode = CopyMode::kDoubleCopy;
  FpgaSystem sys_off(off);
  auto run_off = runtime::RunAdpcmVim(sys_off, input);
  ASSERT_TRUE(run_off.ok()) << run_off.status().ToString();
  ASSERT_EQ(run_off.value().output, expect);
  EXPECT_GT(sys_off.kernel().vim().transfer_engine().bounce_copies(), 0u);

  os::KernelConfig on = off;
  on.vim.iommu = true;
  FpgaSystem sys_on(on);
  auto run_on = runtime::RunAdpcmVim(sys_on, input);
  ASSERT_TRUE(run_on.ok()) << run_on.status().ToString();
  EXPECT_EQ(run_on.value().output, expect);

  os::Vim& vim = sys_on.kernel().vim();
  EXPECT_EQ(vim.transfer_engine().bounce_copies(), 0u);
  EXPECT_GT(vim.iommu().stats().zero_copy_bytes, 0u);
  EXPECT_GT(vim.iommu().stats().iotlb_hits + vim.iommu().stats().iotlb_misses,
            0u);
  // Zero-copy must be no slower than the CPU-copy run it replaces.
  EXPECT_LE(run_on.value().report.total, run_off.value().report.total);
  // And every synchronous pin was released.
  EXPECT_EQ(sys_on.kernel().user_memory().pinned_pages(), 0u);
  EXPECT_EQ(vim.iommu().stats().pages_pinned,
            vim.iommu().stats().pages_unpinned);
}

TEST(IommuVimTest, TransientTranslationFaultRecoversToExactOutput) {
  const std::vector<u8> input = apps::MakeAdpcmStream(4096, 7);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);

  os::KernelConfig config = Epxa1Config();
  config.vim.iommu = true;
  FpgaSystem sys(config);
  FaultPlan plan;
  plan.At(FaultSite::kIommuTranslationFault, 1);
  sys.kernel().InstallFaultPlan(&plan);

  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);
  EXPECT_GE(run.value().report.vim.iommu_faults, 1u);
  EXPECT_GE(sys.kernel().vim().service_stats().transfer_retries, 1u);
  EXPECT_EQ(plan.stats(FaultSite::kIommuTranslationFault).injected, 1u);
  sys.kernel().InstallFaultPlan(nullptr);
}

TEST(IommuVimTest, ShootdownFiresAtEndOfOperationAndLeavesNoLiveEntries) {
  os::KernelConfig config = Epxa1Config();
  config.vim.iommu = true;
  FpgaSystem sys(config);
  const std::vector<u8> input = apps::MakeAdpcmStream(4096, 11);
  auto run = runtime::RunAdpcmVim(sys, input);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const mem::IommuStats& s = sys.kernel().vim().iommu().stats();
  // End-of-operation shot the tenant's entries down after the final
  // write-back sweep — the IO-TLB holds nothing stale across runs.
  EXPECT_GT(s.shootdowns, 0u);
  EXPECT_GT(s.entries_shot_down, 0u);
  EXPECT_EQ(sys.kernel().vim().iommu().live_entries(), 0u);
}

TEST(IommuVimTest, AbortDuringOverlappedDmaLeavesNoPinnedPages) {
  // Overlapped prefetch pins source pages at schedule time; a
  // coprocessor hang aborts the run with transfers still in flight.
  // AbandonInFlight must return every pin, or the tenant's buffers
  // could never be reclaimed.
  os::KernelConfig config = Epxa1Config();
  config.vim.iommu = true;
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  FpgaSystem sys(config);
  FaultPlan plan;
  plan.At(FaultSite::kCpHang, 1);
  sys.kernel().InstallFaultPlan(&plan);

  const std::vector<u8> input = apps::MakeAdpcmStream(8192, 13);
  auto run = runtime::RunAdpcmVim(sys, input);
  EXPECT_FALSE(run.ok());

  os::Vim& vim = sys.kernel().vim();
  EXPECT_EQ(sys.kernel().user_memory().pinned_pages(), 0u);
  EXPECT_EQ(vim.iommu().stats().pages_pinned,
            vim.iommu().stats().pages_unpinned);
  sys.kernel().InstallFaultPlan(nullptr);
}

TEST(IommuVimTest, OverlappedZeroCopyRunBalancesAsyncPins) {
  os::KernelConfig config = Epxa1Config();
  config.vim.iommu = true;
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  FpgaSystem sys(config);

  const u32 width = 96, height = 24;
  const std::vector<u8> image = apps::MakeTestImage(width, height, 3);
  std::vector<u8> expect(image.size());
  apps::Convolve3x3(image, width, height, apps::SharpenKernel(), 0, expect);
  auto run = runtime::RunConv3x3Vim(sys, image, width, height,
                                    apps::SharpenKernel(), 0);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().output, expect);

  os::Vim& vim = sys.kernel().vim();
  EXPECT_EQ(sys.kernel().user_memory().pinned_pages(), 0u);
  EXPECT_EQ(vim.iommu().stats().pages_pinned,
            vim.iommu().stats().pages_unpinned);
  EXPECT_EQ(vim.transfer_engine().bounce_copies(), 0u);
}

}  // namespace
}  // namespace vcop
