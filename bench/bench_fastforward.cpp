// Headline bench for the fast-forward execution tier (DESIGN.md §11)
// and the parallel fleet runner. Writes BENCH_fastforward.json.
//
// Two sweeps, each run three ways — cycle engine on one thread,
// fast-forward on one thread, fast-forward over the fleet:
//
//   torture  N randomized FaultPlans (FF_PLANS, default 1000) over the
//            four reference workloads, exactly the torture harness's
//            grid. Fault injection exercises the tier's fallback edges
//            on roughly every other seed.
//   conv2d   the prefetch bench's shape × strategy grid (sharpen
//            kernel, overlapped transfers): long TLB-hit streaks, the
//            tier's best case.
//
// Exit-code gates cover only *deterministic* properties:
//   - bit-identity: an order-independent digest of every run's status,
//     output bytes, final simulated time and full ExecutionReport must
//     match across all three modes;
//   - event reduction: the fast-forward engine must dispatch at most
//     1/2 (torture) resp. 1/4 (conv2d) of the cycle engine's events;
//   - artifact identity: the Figure-7 VCD and the conv2d Chrome-trace
//     timeline must be byte-identical with fastforward on and off.
// Wall-clock speedups are printed and recorded in the JSON with the
// thread count and hardware concurrency, but — like bench_kernel —
// they depend on the host and are reported, not gated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/fault.h"
#include "base/log.h"
#include "bench/common.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/vim.h"
#include "sim/fleet.h"
#include "sim/trace.h"

namespace vcop {
namespace {

using bench::MeasureWall;
using bench::WallMeasurement;
using runtime::Epxa1Config;
using runtime::FpgaSystem;

u32 EnvCount(const char* name, u32 fallback) {
  if (const char* env = std::getenv(name)) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<u32>(n);
  }
  return fallback;
}

// ----- run digests -----

/// FNV-1a over everything a simulation run *computes* (as opposed to
/// what the host *spends*): status, output bytes, simulated end time,
/// the full ExecutionReport, and the fault plan's per-site counters.
/// Host-side event counts are deliberately excluded — reducing them is
/// the tier's whole point.
class Digest {
 public:
  void Mix(u64 v) {
    for (int i = 0; i < 8; ++i) MixByte(static_cast<u8>(v >> (8 * i)));
  }
  void MixDouble(double v) {
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  void MixBytes(std::span<const u8> bytes) {
    for (u8 b : bytes) MixByte(b);
  }
  u64 value() const { return h_; }

 private:
  void MixByte(u8 b) {
    h_ ^= b;
    h_ *= 1099511628211ull;
  }
  u64 h_ = 1469598103934665603ull;
};

void MixReport(Digest& d, const os::ExecutionReport& r) {
  d.Mix(static_cast<u64>(r.total));
  d.Mix(static_cast<u64>(r.t_hw));
  d.Mix(static_cast<u64>(r.t_dp));
  d.Mix(static_cast<u64>(r.t_imu));
  d.Mix(static_cast<u64>(r.t_invoke));
  d.Mix(r.cp_cycles);
  const os::VimAccounting& v = r.vim;
  d.Mix(static_cast<u64>(v.t_dp));
  d.Mix(static_cast<u64>(v.t_imu));
  d.Mix(static_cast<u64>(v.t_wakeup));
  d.Mix(v.faults);
  d.Mix(v.tlb_refills);
  d.Mix(v.evictions);
  d.Mix(v.writebacks);
  d.Mix(v.loads);
  d.Mix(v.prefetched_pages);
  d.Mix(v.cleaned_pages);
  d.Mix(v.bytes_loaded);
  d.Mix(v.bytes_written_back);
  d.Mix(static_cast<u64>(v.t_dp_overlapped));
  d.Mix(static_cast<u64>(v.t_dp_wait));
  d.Mix(v.dirty_in_pages_dropped);
  d.Mix(v.preemptions);
  d.Mix(v.fault_recoveries);
  d.Mix(v.prefetch_useful);
  d.Mix(v.prefetch_wasted);
  d.Mix(v.prefetch_suggestions_dropped);
  d.Mix(v.victim_tlb_hits);
  d.Mix(v.victim_tlb_misses);
  d.Mix(v.coalesced_bursts);
  d.Mix(v.coalesced_pages);
  d.Mix(v.fault_service_us.count());
  d.MixDouble(v.fault_service_us.sum());
  d.MixDouble(v.fault_service_us.min());
  d.MixDouble(v.fault_service_us.max());
  d.Mix(r.imu.accesses);
  d.Mix(r.imu.reads);
  d.Mix(r.imu.writes);
  d.Mix(r.imu.faults);
  d.Mix(static_cast<u64>(r.imu.fault_stall_time));
  d.Mix(static_cast<u64>(r.imu.access_latency_time));
  d.Mix(r.tlb.lookups);
  d.Mix(r.tlb.hits);
  d.Mix(r.tlb.misses);
  d.Mix(r.tlb.parity_errors);
  d.Mix(r.tlb.installs);
}

template <typename T>
std::span<const u8> AsBytes(const std::vector<T>& v) {
  return std::span<const u8>(reinterpret_cast<const u8*>(v.data()),
                             v.size() * sizeof(T));
}

struct RunResult {
  u64 digest = 0;
  u64 events = 0;
};

// ----- sweep A: the torture grid -----

RunResult TortureRunPoint(u64 seed, bool fastforward) {
  os::KernelConfig config = Epxa1Config();
  config.sim_tuning.fastforward = fastforward;
  FpgaSystem sys(config);
  FaultPlan plan = FaultPlan::Random(seed);
  sys.kernel().InstallFaultPlan(&plan);

  Digest d;
  auto digest_run = [&](const auto& run) {
    d.Mix(run.ok() ? 1 : 0);
    if (run.ok()) {
      d.MixBytes(AsBytes(run.value().output));
      MixReport(d, run.value().report);
    } else {
      d.MixBytes(std::span<const u8>(
          reinterpret_cast<const u8*>(run.status().ToString().data()),
          run.status().ToString().size()));
    }
  };
  switch (seed % 4) {
    case 0:
      digest_run(runtime::RunAdpcmVim(sys, apps::MakeAdpcmStream(2048, seed)));
      break;
    case 1: {
      const apps::IdeaSubkeys subkeys =
          apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
      digest_run(
          runtime::RunIdeaVim(sys, subkeys, apps::MakeRandomBytes(1024, seed)));
      break;
    }
    case 2: {
      std::vector<u32> a(512), b(512);
      for (u32 i = 0; i < 512; ++i) {
        a[i] = static_cast<u32>(seed) * 1000003u + i;
        b[i] = static_cast<u32>(seed) * 7919u + 3u * i;
      }
      digest_run(runtime::RunVecAddVim(sys, a, b));
      break;
    }
    default: {
      const std::vector<u8> image = apps::MakeTestImage(48, 24, seed);
      digest_run(runtime::RunConv3x3Vim(sys, image, 48, 24,
                                        apps::BoxBlurKernel(), 3));
      break;
    }
  }
  d.Mix(static_cast<u64>(sys.kernel().simulator().now()));
  d.Mix(plan.total_injected());
  for (usize s = 0; s < kNumFaultSites; ++s) {
    const FaultSiteStats& st = plan.stats(static_cast<FaultSite>(s));
    d.Mix(st.opportunities);
    d.Mix(st.injected);
  }
  sys.kernel().simulator().DrainAssertQuiescent();
  return RunResult{d.value(), sys.kernel().simulator().events_dispatched()};
}

// ----- sweep B: the conv2d prefetch grid -----

constexpr os::PrefetchKind kKinds[] = {
    os::PrefetchKind::kNone, os::PrefetchKind::kSequential,
    os::PrefetchKind::kStride, os::PrefetchKind::kAdaptive};
constexpr struct {
  u32 width;
  u32 height;
} kShapes[] = {{256, 24}, {512, 24}, {1024, 24}, {2048, 24}};
constexpr usize kConvPoints = std::size(kShapes) * std::size(kKinds);

RunResult ConvRunPoint(usize index, bool fastforward) {
  const auto shape = kShapes[index / std::size(kKinds)];
  os::KernelConfig config = Epxa1Config();
  config.vim.prefetch = kKinds[index % std::size(kKinds)];
  config.vim.prefetch_depth = 2;
  config.vim.overlap_prefetch = true;
  config.sim_tuning.fastforward = fastforward;
  FpgaSystem sys(config);

  const std::vector<u8> image =
      apps::MakeTestImage(shape.width, shape.height, 11);
  std::vector<u8> expect(image.size());
  apps::Convolve3x3(image, shape.width, shape.height, apps::SharpenKernel(),
                    0, expect);
  const auto run = runtime::RunConv3x3Vim(sys, image, shape.width,
                                          shape.height, apps::SharpenKernel(),
                                          0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  VCOP_CHECK_MSG(run.value().output == expect, "conv2d output mismatch");

  Digest d;
  d.MixBytes(AsBytes(run.value().output));
  MixReport(d, run.value().report);
  d.Mix(static_cast<u64>(sys.kernel().simulator().now()));
  sys.kernel().simulator().DrainAssertQuiescent();
  return RunResult{d.value(), sys.kernel().simulator().events_dispatched()};
}

// ----- mode runner -----

struct ModeRow {
  std::string name;
  u32 threads = 1;
  WallMeasurement wall;
  u64 events = 0;
  u64 digest = 0;
};

template <typename PointFn>
ModeRow RunMode(const char* name, usize count, bool fastforward, u32 threads,
                int repeats, PointFn&& point) {
  ModeRow row;
  row.name = name;
  row.threads = sim::FleetThreadCount(threads);
  auto pass = [&] {
    const std::vector<RunResult> results = sim::FleetMap<RunResult>(
        count, [&](usize i) { return point(i, fastforward); }, threads);
    // Order-independent only across *identical orderings*: results land
    // by index, so this fold is deterministic for any thread count.
    Digest d;
    u64 events = 0;
    for (const RunResult& r : results) {
      d.Mix(r.digest);
      events += r.events;
    }
    row.digest = d.value();
    row.events = events;
  };
  row.wall = MeasureWall(repeats, pass);
  std::printf("  %-22s threads=%-2u wall %8.1f ms  (warm-up %8.1f ms)  "
              "events %12llu\n",
              name, row.threads, row.wall.best_ms, row.wall.warmup_ms,
              static_cast<unsigned long long>(row.events));
  return row;
}

struct Sweep {
  std::string name;
  usize runs = 0;
  std::vector<ModeRow> modes;  // [0]=cycle 1t, [1]=ff 1t, [2]=ff fleet
  bool bit_identical() const {
    return modes[0].digest == modes[1].digest &&
           modes[0].digest == modes[2].digest;
  }
  double event_reduction() const {
    return modes[1].events == 0
               ? 0.0
               : static_cast<double>(modes[0].events) /
                     static_cast<double>(modes[1].events);
  }
};

// ----- artifact identity -----

/// The Figure-7 waveform: a one-element vecadd with the tracer
/// attached. An attached tracer vetoes the fast-forward tier by
/// construction (DESIGN.md §11) — this check pins that contract: the
/// VCD text must come out byte-identical either way.
std::string VecAddVcd(bool fastforward) {
  os::KernelConfig config = Epxa1Config();
  config.sim_tuning.fastforward = fastforward;
  FpgaSystem sys(config);
  sim::Tracer tracer;
  VCOP_CHECK(sys.Load(cp::VecAddBitstream()).ok());
  sys.kernel().imu()->AttachTracer(&tracer);
  auto a = sys.Allocate<u32>(1);
  auto b = sys.Allocate<u32>(1);
  auto c = sys.Allocate<u32>(1);
  VCOP_CHECK(a.ok() && b.ok() && c.ok());
  a.value().view()[0] = 0x0000CAFE;
  b.value().view()[0] = 0x00000001;
  VCOP_CHECK(sys.Map(0, a.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(1, b.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({1u});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  VCOP_CHECK(c.value().view()[0] == 0x0000CAFF);
  return tracer.ToVcd();
}

/// The edge-detect-style Chrome trace: conv2d with the timeline
/// recorder. Unlike the VCD, the timeline does NOT veto the tier, so
/// every recorded fault-service and transfer span must carry the exact
/// same simulated timestamps under analytic jumps.
std::string ConvChromeTrace(bool fastforward) {
  os::KernelConfig config = Epxa1Config();
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  config.sim_tuning.fastforward = fastforward;
  FpgaSystem sys(config);
  const std::vector<u8> image = apps::MakeTestImage(96, 24, 7);
  const auto run = runtime::RunConv3x3Vim(sys, image, 96, 24,
                                          apps::SharpenKernel(), 0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  return sys.kernel().timeline().ToChromeTrace();
}

// ----- JSON -----

void WriteJson(const std::vector<Sweep>& sweeps, bool vcd_identical,
               bool trace_identical, bool all_gates) {
  std::FILE* f = std::fopen("BENCH_fastforward.json", "w");
  VCOP_CHECK_MSG(f != nullptr,
                 "cannot open BENCH_fastforward.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fastforward\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"sweeps\": [\n");
  for (usize s = 0; s < sweeps.size(); ++s) {
    const Sweep& sw = sweeps[s];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", sw.name.c_str());
    std::fprintf(f, "      \"runs\": %zu,\n", sw.runs);
    std::fprintf(f, "      \"modes\": [\n");
    for (usize m = 0; m < sw.modes.size(); ++m) {
      const ModeRow& row = sw.modes[m];
      std::fprintf(f,
                   "        {\"mode\": \"%s\", \"threads\": %u, "
                   "\"wall_ms\": %.3f, \"warmup_ms\": %.3f, "
                   "\"repeats\": %d, \"events\": %llu}%s\n",
                   row.name.c_str(), row.threads, row.wall.best_ms,
                   row.wall.warmup_ms, row.wall.repeats,
                   static_cast<unsigned long long>(row.events),
                   m + 1 < sw.modes.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f, "      \"bit_identical\": %s,\n",
                 sw.bit_identical() ? "true" : "false");
    std::fprintf(f, "      \"event_reduction\": %.2f,\n",
                 sw.event_reduction());
    std::fprintf(f, "      \"wall_speedup_1thread\": %.2f,\n",
                 sw.modes[1].wall.best_ms > 0.0
                     ? sw.modes[0].wall.best_ms / sw.modes[1].wall.best_ms
                     : 0.0);
    std::fprintf(f, "      \"wall_speedup_fleet\": %.2f\n",
                 sw.modes[2].wall.best_ms > 0.0
                     ? sw.modes[0].wall.best_ms / sw.modes[2].wall.best_ms
                     : 0.0);
    std::fprintf(f, "    }%s\n", s + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"artifacts\": {\"fig7_vcd_identical\": %s, "
                  "\"timeline_trace_identical\": %s},\n",
               vcd_identical ? "true" : "false",
               trace_identical ? "true" : "false");
  std::fprintf(f, "  \"gates_pass\": %s\n", all_gates ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main() {
  // Hung-coprocessor plans are an expected slice of the torture grid;
  // their per-run VIM abort warnings would drown the tables. Configured
  // up front, before any fleet runs (the Logger contract in base/log.h).
  Logger::Get().set_min_level(LogLevel::kError);
  const u32 plans = EnvCount("FF_PLANS", 1000);
  const int repeats = static_cast<int>(EnvCount("FF_REPEATS", 1));
  const u32 fleet_threads = sim::FleetThreadCount();
  std::printf("== fast-forward tier + fleet runner ==\n");
  std::printf("torture plans: %u   conv2d points: %zu   repeats: %d   "
              "fleet threads: %u (hardware: %u)\n\n",
              plans, kConvPoints, repeats, fleet_threads,
              std::thread::hardware_concurrency());

  std::vector<Sweep> sweeps;

  {
    std::printf("torture sweep (%u randomized fault plans):\n", plans);
    Sweep sw;
    sw.name = "torture";
    sw.runs = plans;
    auto point = [](usize i, bool ff) {
      return TortureRunPoint(static_cast<u64>(i) + 1, ff);
    };
    sw.modes.push_back(
        RunMode("cycle 1-thread", plans, false, 1, repeats, point));
    sw.modes.push_back(
        RunMode("fastforward 1-thread", plans, true, 1, repeats, point));
    sw.modes.push_back(
        RunMode("fastforward fleet", plans, true, 0, repeats, point));
    sweeps.push_back(std::move(sw));
  }
  {
    std::printf("conv2d sweep (%zu shape x strategy points):\n", kConvPoints);
    Sweep sw;
    sw.name = "conv2d";
    sw.runs = kConvPoints;
    auto point = [](usize i, bool ff) { return ConvRunPoint(i, ff); };
    sw.modes.push_back(
        RunMode("cycle 1-thread", kConvPoints, false, 1, repeats, point));
    sw.modes.push_back(
        RunMode("fastforward 1-thread", kConvPoints, true, 1, repeats, point));
    sw.modes.push_back(
        RunMode("fastforward fleet", kConvPoints, true, 0, repeats, point));
    sweeps.push_back(std::move(sw));
  }

  const bool vcd_identical = VecAddVcd(true) == VecAddVcd(false);
  const bool trace_identical = ConvChromeTrace(true) == ConvChromeTrace(false);

  std::printf("\nsummary:\n");
  bool pass = true;
  auto gate = [&](const char* name, bool ok) {
    std::printf("  %-44s %s\n", name, ok ? "pass" : "FAIL");
    if (!ok) pass = false;
  };
  for (const Sweep& sw : sweeps) {
    std::printf("  %s: event reduction %.1fx, wall speedup %.2fx "
                "(1 thread) / %.2fx (fleet, %u threads)\n",
                sw.name.c_str(), sw.event_reduction(),
                sw.modes[0].wall.best_ms / sw.modes[1].wall.best_ms,
                sw.modes[0].wall.best_ms / sw.modes[2].wall.best_ms,
                sw.modes[2].threads);
  }
  gate("torture: bit-identical across engines+fleet",
       sweeps[0].bit_identical());
  gate("torture: event reduction >= 2x", sweeps[0].event_reduction() >= 2.0);
  gate("conv2d: bit-identical across engines+fleet",
       sweeps[1].bit_identical());
  gate("conv2d: event reduction >= 4x", sweeps[1].event_reduction() >= 4.0);
  gate("fig7 VCD byte-identical (tracer vetoes tier)", vcd_identical);
  gate("conv2d Chrome trace byte-identical", trace_identical);
  std::printf("  (wall-clock speedup depends on the host and is reported, "
              "not gated)\n");

  WriteJson(sweeps, vcd_identical, trace_identical, pass);
  std::printf("wrote BENCH_fastforward.json\n");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
