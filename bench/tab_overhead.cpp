// Reproduces the in-text overhead claims of §4.1:
//
//  * "the software execution time for IMU management [...] is up to
//    2.5% of the total execution time"
//  * "the hardware execution time includes address translation, whose
//    overhead is unfortunately not always negligible (in the IDEA case
//    around 20%)"
//  * "the largest fraction of overhead is actually due to managing the
//    dual-port memory"
//
// Translation overhead is measured the honest way: the same run with a
// pipelined IMU isolates the multi-cycle-translation share of t_hw.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf("== In-text overhead decomposition (Section 4.1) ==\n\n");

  Table table({"app", "input", "IMU-mgmt %", "DP-mgmt %", "translation %",
               "largest overhead"});
  table.set_title(
      "overhead shares of total execution time (translation % of t_hw, "
      "via pipelined-IMU differencing)");

  const os::KernelConfig base = runtime::Epxa1Config();
  os::KernelConfig pipelined = base;
  pipelined.imu_pipelined = true;

  double max_imu_share = 0.0;

  auto add_rows = [&](const char* app, const std::vector<usize>& sizes,
                      auto&& runner) {
    for (const usize bytes : sizes) {
      const bench::Point p = runner(base, bytes);
      const bench::Point fast = runner(pipelined, bytes);
      const double imu_share =
          100.0 * static_cast<double>(p.vim.t_imu) /
          static_cast<double>(p.vim.total);
      const double dp_share = 100.0 * static_cast<double>(p.vim.t_dp) /
                              static_cast<double>(p.vim.total);
      const double translation =
          100.0 *
          (static_cast<double>(p.vim.t_hw) -
           static_cast<double>(fast.vim.t_hw)) /
          static_cast<double>(p.vim.t_hw);
      max_imu_share = std::max(max_imu_share, imu_share);
      table.AddRow({app, bench::SizeLabel(bytes),
                    StrFormat("%.2f%%", imu_share),
                    StrFormat("%.1f%%", dp_share),
                    StrFormat("%.1f%%", translation),
                    dp_share > imu_share ? "DP management" : "IMU mgmt"});
    }
  };

  add_rows("adpcmdecode", {2048u, 4096u, 8192u}, bench::RunAdpcmPoint);
  add_rows("IDEA", {4096u, 8192u, 16384u, 32768u}, bench::RunIdeaPoint);
  table.Print();

  // Per-fault service latency distribution (interrupt entry to
  // coprocessor restart) at the largest sizes.
  std::printf("\n");
  Table services({"app", "input", "faults", "service us min", "mean",
                  "max"});
  services.set_title("individual fault-service latencies");
  for (const auto& [app, bytes, point] :
       {std::tuple<const char*, usize, bench::Point>{
            "adpcmdecode", 8192u, bench::RunAdpcmPoint(base, 8192)},
        std::tuple<const char*, usize, bench::Point>{
            "IDEA", 32768u, bench::RunIdeaPoint(base, 32768)}}) {
    const sim::Summary& s = point.vim.vim.fault_service_us;
    services.AddRow({app, bench::SizeLabel(bytes),
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           s.count())),
                     StrFormat("%.1f", s.min()), StrFormat("%.1f", s.mean()),
                     StrFormat("%.1f", s.max())});
  }
  services.Print();

  std::printf(
      "\nPaper claims vs measured:\n"
      " * IMU management <= 2.5%% of total: measured max %.2f%% -> %s\n"
      " * IDEA translation overhead 'around 20%%': see IDEA rows above\n"
      " * largest overhead fraction is DP management: see last column\n",
      max_imu_share, max_imu_share <= 2.5 ? "PASS" : "CHECK");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
