// Ablation E7b — prefetching (§3.3): "speculative actions as
// prefetching could be used in order to avoid translation misses [...]
// the latter allowing overlapping of processor and coprocessor
// execution."
//
// Sweeps the sequential prefetcher's look-ahead depth on both streaming
// kernels.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf(
      "== Ablation: sequential page prefetching (Section 3.3 future "
      "work) ==\n\n");

  Table table({"app", "input", "mode", "faults", "prefetched", "cleaned",
               "SW(DP) ms", "overlapped ms", "total ms"});
  table.set_title(
      "synchronous prefetch vs overlapped prefetch + background "
      "cleaning");

  auto add = [&](const char* app, usize bytes, auto&& runner) {
    struct Mode {
      const char* name;
      os::PrefetchKind kind;
      u32 depth;
      bool overlap;
    };
    using enum os::PrefetchKind;
    for (const Mode mode : {Mode{"off", kNone, 0, false},
                            Mode{"sync depth 1", kSequential, 1, false},
                            Mode{"sync depth 2", kSequential, 2, false},
                            Mode{"overlap depth 0", kNone, 0, true},
                            Mode{"overlap depth 1", kSequential, 1, true},
                            Mode{"overlap depth 2", kSequential, 2, true},
                            Mode{"stride depth 2", kStride, 2, true},
                            Mode{"adaptive depth 2", kAdaptive, 2, true}}) {
      os::KernelConfig config = runtime::Epxa1Config();
      config.vim.prefetch = mode.kind;
      config.vim.prefetch_depth = mode.depth == 0 ? 1 : mode.depth;
      config.vim.overlap_prefetch = mode.overlap;
      const bench::Point p = runner(config, bytes);
      table.AddRow({app, bench::SizeLabel(bytes), mode.name,
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.faults)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.prefetched_pages)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.cleaned_pages)),
                    runtime::Ms(p.vim.t_dp),
                    runtime::Ms(p.vim.vim.t_dp_overlapped),
                    runtime::Ms(p.vim.total)});
    }
  };
  add("adpcmdecode", 8192, bench::RunAdpcmPoint);
  add("IDEA", 32768, bench::RunIdeaPoint);
  table.Print();

  std::printf(
      "\nSynchronous prefetch only moves transfers between fault "
      "services — total\ntime barely moves. The overlapped mode is the "
      "paper's actual vision\n(§3.3: 'prefetching [...] allowing "
      "overlapping of processor and\ncoprocessor execution'): speculative "
      "loads AND eager write-backs of cold\ndirty pages run while the "
      "coprocessor computes, collapsing the serial\nDP-management "
      "column.\n\nBoth apps walk their objects strictly sequentially, so "
      "the stride and\nadaptive detectors (DESIGN.md §10) converge on the "
      "same +1 stride after a\nshort learning window — they trade a few "
      "prefetches at the start for\nimmunity to the irregular access "
      "patterns where blind sequential\nprefetching thrashes (see "
      "bench_prefetch's conv2d sweep).\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
