// Shared helpers for the bench binaries: one function per (application,
// platform-config, size) measurement point, returning both the VIM
// execution report and the software-model baseline so every bench
// prints consistent numbers.
#pragma once

#include <string>
#include <vector>

#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "base/status.h"
#include "base/table.h"
#include "os/kernel.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop::bench {

inline constexpr u64 kWorkloadSeed = 20040216;  // DATE'04 week, Paris

struct Point {
  usize input_bytes = 0;
  Picoseconds sw = 0;               // pure-software baseline
  os::ExecutionReport vim;          // VIM-based coprocessor
  bool manual_fits = false;         // IDEA only: normal coprocessor ran
  runtime::ManualRunResult manual;  // valid when manual_fits
};

/// Runs adpcmdecode at `input_bytes` on a fresh system with `config`;
/// verifies bit-exactness against the reference as it goes.
inline Point RunAdpcmPoint(const os::KernelConfig& config,
                           usize input_bytes) {
  Point point;
  point.input_bytes = input_bytes;

  const std::vector<u8> input =
      apps::MakeAdpcmStream(input_bytes, kWorkloadSeed);
  apps::ArmTimingModel arm;
  arm.cpu_clock = config.costs.cpu_clock;
  point.sw = arm.AdpcmDecodeTime(input_bytes);

  runtime::FpgaSystem sys(config);
  auto run = runtime::RunAdpcmVim(sys, input);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);
  VCOP_CHECK_MSG(run.value().output == expect,
                 "adpcm coprocessor output mismatch");
  point.vim = run.value().report;
  return point;
}

/// Runs IDEA at `input_bytes`: software, VIM, and the manual "normal
/// coprocessor" (which may fail to fit).
inline Point RunIdeaPoint(const os::KernelConfig& config,
                          usize input_bytes) {
  Point point;
  point.input_bytes = input_bytes;

  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(kWorkloadSeed));
  const std::vector<u8> input =
      apps::MakeRandomBytes(input_bytes, kWorkloadSeed + 1);
  std::vector<u8> expect(input.size());
  apps::IdeaCryptEcb(keys, input, expect);

  apps::ArmTimingModel arm;
  arm.cpu_clock = config.costs.cpu_clock;
  point.sw = arm.IdeaEcbTime(input_bytes);

  runtime::FpgaSystem sys(config);
  auto vim = runtime::RunIdeaVim(sys, keys, input);
  VCOP_CHECK_MSG(vim.ok(), vim.status().ToString());
  VCOP_CHECK_MSG(vim.value().output == expect,
                 "IDEA coprocessor output mismatch");
  point.vim = vim.value().report;

  auto manual = runtime::RunIdeaManual(config.costs, config.dp_ram_bytes,
                                       keys, input);
  if (manual.ok()) {
    VCOP_CHECK_MSG(manual.value().output == expect,
                   "manual IDEA output mismatch");
    point.manual_fits = true;
    point.manual = manual.value().result;
  }
  return point;
}

/// "8 KB" / "512 B" labels for size columns.
inline std::string SizeLabel(usize bytes) {
  if (bytes % 1024 == 0) return StrFormat("%zu KB", bytes / 1024);
  return StrFormat("%zu B", bytes);
}

}  // namespace vcop::bench
