// Shared helpers for the bench binaries: one function per (application,
// platform-config, size) measurement point, returning both the VIM
// execution report and the software-model baseline so every bench
// prints consistent numbers.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "base/status.h"
#include "base/table.h"
#include "cp/adpcm_cp.h"
#include "cp/idea_cp.h"
#include "os/kernel.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop::bench {

inline constexpr u64 kWorkloadSeed = 20040216;  // DATE'04 week, Paris

/// Monotonic wall-clock timer for host-side measurements. Always
/// steady_clock: system_clock can be slewed by NTP mid-run, which
/// silently corrupts speedup ratios.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct WallMeasurement {
  double warmup_ms = 0.0;  // first run: cold allocator, cold caches
  double best_ms = 0.0;    // fastest of the post-warm-up repeats
  int repeats = 0;
};

/// Times fn() once as warm-up and then `repeats` more times, keeping
/// the fastest. The warm-up run is reported separately, never mixed
/// into best_ms (with repeats == 0, best_ms falls back to the warm-up
/// time so callers always get a usable number).
template <typename Fn>
WallMeasurement MeasureWall(int repeats, Fn&& fn) {
  WallMeasurement m;
  m.repeats = repeats;
  WallTimer timer;
  fn();
  m.warmup_ms = timer.ElapsedMs();
  m.best_ms = m.warmup_ms;
  for (int i = 0; i < repeats; ++i) {
    timer.Reset();
    fn();
    const double ms = timer.ElapsedMs();
    if (i == 0 || ms < m.best_ms) m.best_ms = ms;
  }
  return m;
}

struct Point {
  usize input_bytes = 0;
  Picoseconds sw = 0;               // pure-software baseline
  os::ExecutionReport vim;          // VIM-based coprocessor
  bool manual_fits = false;         // IDEA only: normal coprocessor ran
  runtime::ManualRunResult manual;  // valid when manual_fits
};

/// Runs adpcmdecode at `input_bytes` on a fresh system with `config`;
/// verifies bit-exactness against the reference as it goes.
inline Point RunAdpcmPoint(const os::KernelConfig& config,
                           usize input_bytes) {
  Point point;
  point.input_bytes = input_bytes;

  const std::vector<u8> input =
      apps::MakeAdpcmStream(input_bytes, kWorkloadSeed);
  apps::ArmTimingModel arm;
  arm.cpu_clock = config.costs.cpu_clock;
  point.sw = arm.AdpcmDecodeTime(input_bytes);

  runtime::FpgaSystem sys(config);
  auto run = runtime::RunAdpcmVim(sys, input);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);
  VCOP_CHECK_MSG(run.value().output == expect,
                 "adpcm coprocessor output mismatch");
  point.vim = run.value().report;
  // End-of-run audit: anything still queued must drain without ticking
  // another clock edge (Debug builds abort otherwise).
  sys.kernel().simulator().DrainAssertQuiescent();
  return point;
}

/// Runs IDEA at `input_bytes`: software, VIM, and the manual "normal
/// coprocessor" (which may fail to fit).
inline Point RunIdeaPoint(const os::KernelConfig& config,
                          usize input_bytes) {
  Point point;
  point.input_bytes = input_bytes;

  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(kWorkloadSeed));
  const std::vector<u8> input =
      apps::MakeRandomBytes(input_bytes, kWorkloadSeed + 1);
  std::vector<u8> expect(input.size());
  apps::IdeaCryptEcb(keys, input, expect);

  apps::ArmTimingModel arm;
  arm.cpu_clock = config.costs.cpu_clock;
  point.sw = arm.IdeaEcbTime(input_bytes);

  runtime::FpgaSystem sys(config);
  auto vim = runtime::RunIdeaVim(sys, keys, input);
  VCOP_CHECK_MSG(vim.ok(), vim.status().ToString());
  VCOP_CHECK_MSG(vim.value().output == expect,
                 "IDEA coprocessor output mismatch");
  point.vim = vim.value().report;

  auto manual = runtime::RunIdeaManual(config.costs, config.dp_ram_bytes,
                                       keys, input);
  if (manual.ok()) {
    VCOP_CHECK_MSG(manual.value().output == expect,
                   "manual IDEA output mismatch");
    point.manual_fits = true;
    point.manual = manual.value().result;
  }
  sys.kernel().simulator().DrainAssertQuiescent();
  return point;
}

// ----- shared multi-tenant staging (bench_vcopd, bench_service) -----
//
// Both fleet benches register tenants that run adpcm or IDEA against a
// software reference; the buffer allocation, input synthesis, expected
// output, and object mapping are identical and live here once.

/// An adpcm tenant's buffers and reference expectation.
struct StagedAdpcm {
  runtime::HostBuffer<u8> in;
  runtime::HostBuffer<i16> out;
  std::vector<i16> expect;
};

/// Allocates and fills an adpcm input stream of `bytes`, allocates the
/// output, computes the software reference, and maps both objects
/// through `client`.
inline StagedAdpcm StageAdpcmTenant(runtime::FpgaSystem& sys,
                                    runtime::VcopdClient& client, u32 bytes,
                                    u64 seed) {
  StagedAdpcm s;
  const std::vector<u8> input = apps::MakeAdpcmStream(bytes, seed);
  s.in = sys.Allocate<u8>(bytes).value();
  s.in.Fill(input);
  s.out = sys.Allocate<i16>(bytes * 2).value();
  s.expect.resize(bytes * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, s.expect, state);
  VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjIn, s.in,
                        os::Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjOut, s.out,
                        os::Direction::kOut).ok());
  return s;
}

/// An IDEA tenant's buffers and reference expectation.
struct StagedIdea {
  runtime::HostBuffer<u8> in;
  runtime::HostBuffer<u8> out;
  runtime::HostBuffer<u16> key;
  std::vector<u8> expect;
};

/// As StageAdpcmTenant, for IDEA ECB: input, output, expanded key, and
/// the three object mappings.
inline StagedIdea StageIdeaTenant(runtime::FpgaSystem& sys,
                                  runtime::VcopdClient& client, u32 bytes,
                                  u64 seed) {
  StagedIdea s;
  const apps::IdeaSubkeys keys = apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
  const std::vector<u8> input = apps::MakeRandomBytes(bytes, seed + 1);
  s.expect.resize(bytes);
  apps::IdeaCryptEcb(keys, input, s.expect);
  s.in = sys.Allocate<u8>(bytes).value();
  s.in.Fill(input);
  s.out = sys.Allocate<u8>(bytes).value();
  s.key = sys.Allocate<u16>(static_cast<u32>(keys.size())).value();
  s.key.Fill(std::span<const u16>(keys.data(), keys.size()));
  VCOP_CHECK(client.Map(cp::IdeaCoprocessor::kObjIn, s.in,
                        /*elem_width=*/4, os::Direction::kIn).ok());
  VCOP_CHECK(client.Map(cp::IdeaCoprocessor::kObjOut, s.out,
                        /*elem_width=*/4, os::Direction::kOut).ok());
  VCOP_CHECK(client.Map(cp::IdeaCoprocessor::kObjKey, s.key,
                        os::Direction::kIn).ok());
  return s;
}

/// "8 KB" / "512 B" labels for size columns.
inline std::string SizeLabel(usize bytes) {
  if (bytes % 1024 == 0) return StrFormat("%zu KB", bytes / 1024);
  return StrFormat("%zu B", bytes);
}

}  // namespace vcop::bench
