// E21 — flexible memory: per-object page sizes + the two-level TLB
// hierarchy (DESIGN.md §14). Writes BENCH_tlb.json.
//
// Runs conv2d, IDEA, and adpcm under four interface-memory
// configurations at an equal total TLB-entry budget (8 entries):
//
//   cam8      single 8-entry CAM, 2 KB pages       (the seed platform)
//   cam8+sp   single 8-entry CAM, 4 KB superpages on the streaming
//             objects
//   l1l2      2-entry per-coprocessor micro-TLB backed by a 6-entry
//             shared L2, 2 KB pages
//   l1l2+sp   the hierarchy plus the superpages  (the gated config)
//
// Exit-code gates:
//
//   1. byte-exact outputs: every configuration must reproduce the
//      software reference bit-for-bit — page geometry and TLB layering
//      change *when* translations are serviced, never *which* bytes
//      the applications produce;
//   2. conv2d faults under l1l2+sp strictly below the cam8 baseline;
//   3. IDEA faults under l1l2+sp strictly below the cam8 baseline;
//   4. defaults are inert: the Figure-7 VCD and the conv2d Chrome
//      trace must come out byte-identical whether the flexible-memory
//      knobs are at their defaults or explicitly spelled in their
//      inert forms (granule-sized overrides, l1 sizing with no L2).
//      (Byte-identity against the *seed* artifacts is pinned
//      separately in CI via tests/golden/trace_artifacts.sha256.)
#include <cstdio>
#include <string>
#include <vector>

#include "apps/conv2d.h"
#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "base/log.h"
#include "bench/common.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "hw/imu.h"
#include "hw/tlb.h"
#include "os/vim.h"
#include "runtime/drivers.h"
#include "sim/trace.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

struct Mode {
  const char* label;
  bool hierarchy;   // 2-entry L1 + 6-entry shared L2 (else one 8-CAM)
  bool superpages;  // 4 KB pages on the streaming objects (ids 0, 1)
};

constexpr Mode kModes[] = {
    {"cam8", false, false},
    {"cam8+sp", false, true},
    {"l1l2", true, false},
    {"l1l2+sp", true, true},
};

constexpr u32 kSuperPageBytes = 4096;

struct Row {
  std::string app;
  usize bytes = 0;
  std::string mode;
  bool gated = false;  // the l1l2+sp row the fault gates compare
  bool output_exact = false;
  os::ExecutionReport report;
  hw::TlbHierarchyStats hier;
  u64 l2_hits = 0;  // shared-CAM hits (the L2 in hierarchy modes)
};

/// `sp_ids` selects which objects take the 4 KB superpage in 'sp'
/// modes — per-object sizing is the whole point: the purely-streaming
/// in/out buffers of IDEA and adpcm both take it, while conv2d's
/// strided three-row source window leaves only the source upgraded
/// (superpaging the destination too pushes the boundary-row working
/// set past the eight frames and thrashes).
os::KernelConfig ModeConfig(const Mode& m,
                            std::initializer_list<u32> sp_ids) {
  os::KernelConfig config = Epxa1Config();
  if (m.hierarchy) {
    config.l1_tlb_entries = 2;
    config.l2_tlb_entries = 6;
  }
  if (m.superpages) {
    for (const u32 id : sp_ids) config.object_page_bytes[id] = kSuperPageBytes;
  }
  return config;
}

void FinishRow(Row& row, const Mode& m, FpgaSystem& sys) {
  row.mode = m.label;
  row.gated = m.hierarchy && m.superpages;
  row.hier = sys.kernel().imu()->xlat().stats();
  row.l2_hits = sys.kernel().shared_tlb().stats().hits;
  sys.kernel().simulator().DrainAssertQuiescent();
}

Row RunConv(const Mode& m, u32 width, u32 height) {
  Row row;
  row.app = "conv2d";
  row.bytes = static_cast<usize>(width) * height;

  const std::vector<u8> image =
      apps::MakeTestImage(width, height, bench::kWorkloadSeed);
  std::vector<u8> expect(image.size());
  apps::Convolve3x3(image, width, height, apps::BoxBlurKernel(), 3, expect);

  FpgaSystem sys(ModeConfig(m, {0}));
  auto run = runtime::RunConv3x3Vim(sys, image, width, height,
                                    apps::BoxBlurKernel(), 3);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  row.output_exact = run.value().output == expect;
  row.report = run.value().report;
  FinishRow(row, m, sys);
  return row;
}

Row RunIdea(const Mode& m, usize bytes) {
  Row row;
  row.app = "IDEA";
  row.bytes = bytes;

  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(bench::kWorkloadSeed));
  const std::vector<u8> input =
      apps::MakeRandomBytes(bytes, bench::kWorkloadSeed + 1);
  std::vector<u8> expect(input.size());
  apps::IdeaCryptEcb(keys, input, expect);

  FpgaSystem sys(ModeConfig(m, {0, 1}));
  auto run = runtime::RunIdeaVim(sys, keys, input);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  row.output_exact = run.value().output == expect;
  row.report = run.value().report;
  FinishRow(row, m, sys);
  return row;
}

Row RunAdpcm(const Mode& m, usize bytes) {
  Row row;
  row.app = "adpcmdecode";
  row.bytes = bytes;

  const std::vector<u8> input =
      apps::MakeAdpcmStream(bytes, bench::kWorkloadSeed);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);

  FpgaSystem sys(ModeConfig(m, {0, 1}));
  auto run = runtime::RunAdpcmVim(sys, input);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  row.output_exact = run.value().output == expect;
  row.report = run.value().report;
  FinishRow(row, m, sys);
  return row;
}

// ----- defaults inertness -----

os::KernelConfig OffConfig(bool touch_knobs) {
  os::KernelConfig config = Epxa1Config();
  if (touch_knobs) {
    // Every flexible-memory knob, spelled in its inert form: granule-
    // sized per-object overrides (identical geometry to the default)
    // and an L1 size with no L2 (l2_tlb_entries == 0 keeps the single-
    // level CAM, so l1_tlb_entries must not be read at all).
    for (u32 id = 0; id < hw::kMaxObjects - 1; ++id)
      config.object_page_bytes[id] = config.page_bytes;
    config.l1_tlb_entries = 4;
    config.l2_tlb_entries = 0;
  }
  return config;
}

/// The Figure-7 waveform (one-element vecadd with the tracer attached),
/// as fig7_timing writes it.
std::string VecAddVcd(bool touch_knobs) {
  FpgaSystem sys(OffConfig(touch_knobs));
  sim::Tracer tracer;
  VCOP_CHECK(sys.Load(cp::VecAddBitstream()).ok());
  sys.kernel().imu()->AttachTracer(&tracer);
  auto a = sys.Allocate<u32>(1);
  auto b = sys.Allocate<u32>(1);
  auto c = sys.Allocate<u32>(1);
  VCOP_CHECK(a.ok() && b.ok() && c.ok());
  a.value().view()[0] = 0x0000CAFE;
  b.value().view()[0] = 0x00000001;
  VCOP_CHECK(sys.Map(0, a.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(1, b.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({1u});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  VCOP_CHECK(c.value().view()[0] == 0x0000CAFF);
  return tracer.ToVcd();
}

/// The edge-detect-style Chrome trace: conv2d with the timeline
/// recorder, prefetch overlapped — the busiest DMA schedule the
/// examples produce.
std::string ConvChromeTrace(bool touch_knobs) {
  os::KernelConfig config = OffConfig(touch_knobs);
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  FpgaSystem sys(config);
  const std::vector<u8> image = apps::MakeTestImage(96, 24, 7);
  const auto run = runtime::RunConv3x3Vim(sys, image, 96, 24,
                                          apps::SharpenKernel(), 0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  return sys.kernel().timeline().ToChromeTrace();
}

// ----- JSON -----

void WriteJson(const std::vector<Row>& rows, bool exact, u64 conv_base,
               u64 conv_flex, u64 idea_base, u64 idea_flex, bool off_inert,
               bool all_gates) {
  std::FILE* f = std::fopen("BENCH_tlb.json", "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_tlb.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"tlb\",\n");
  std::fprintf(f, "  \"tlb_entry_budget\": 8,\n");
  std::fprintf(f, "  \"points\": [\n");
  for (usize i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"bytes\": %zu, \"mode\": \"%s\", "
        "\"output_exact\": %s, \"faults\": %llu, \"tlb_refills\": %llu, "
        "\"evictions\": %llu, \"total_ps\": %llu, \"l1_fills\": %llu, "
        "\"l1_fill_evictions\": %llu, \"dirty_merges\": %llu, "
        "\"orphan_evictions\": %llu, \"l2_hits\": %llu}%s\n",
        r.app.c_str(), r.bytes, r.mode.c_str(),
        r.output_exact ? "true" : "false",
        static_cast<unsigned long long>(r.report.vim.faults),
        static_cast<unsigned long long>(r.report.vim.tlb_refills),
        static_cast<unsigned long long>(r.report.vim.evictions),
        static_cast<unsigned long long>(r.report.total),
        static_cast<unsigned long long>(r.hier.l1_fills),
        static_cast<unsigned long long>(r.hier.l1_fill_evictions),
        static_cast<unsigned long long>(r.hier.dirty_merges),
        static_cast<unsigned long long>(r.hier.orphan_evictions),
        static_cast<unsigned long long>(r.l2_hits),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gates\": {\"outputs_byte_exact\": %s, "
               "\"conv2d_faults_baseline\": %llu, "
               "\"conv2d_faults_flexible\": %llu, "
               "\"conv2d_faults_below_baseline\": %s, "
               "\"idea_faults_baseline\": %llu, "
               "\"idea_faults_flexible\": %llu, "
               "\"idea_faults_below_baseline\": %s, "
               "\"defaults_inert\": %s},\n",
               exact ? "true" : "false",
               static_cast<unsigned long long>(conv_base),
               static_cast<unsigned long long>(conv_flex),
               conv_flex < conv_base ? "true" : "false",
               static_cast<unsigned long long>(idea_base),
               static_cast<unsigned long long>(idea_flex),
               idea_flex < idea_base ? "true" : "false",
               off_inert ? "true" : "false");
  std::fprintf(f, "  \"gates_pass\": %s\n", all_gates ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main() {
  std::printf("== flexible memory: page sizes + TLB hierarchy "
              "(DESIGN.md §14, E21) ==\n\n");

  constexpr u32 kConvWidth = 96;
  constexpr u32 kConvHeight = 85;
  constexpr usize kIdeaBytes = 32768;
  constexpr usize kAdpcmBytes = 32768;

  Table table({"app", "input", "mode", "faults", "refills", "L1 fills",
               "L2 hits", "total ms"});
  table.set_title(
      "equal 8-entry TLB budget; 'sp' = 4 KB superpages on the streaming "
      "objects, 'l1l2' = 2-entry micro-TLB + 6-entry shared L2");

  std::vector<Row> rows;
  auto add = [&](const Row& row) {
    table.AddRow({row.app, bench::SizeLabel(row.bytes), row.mode,
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        row.report.vim.faults)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        row.report.vim.tlb_refills)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        row.hier.l1_fills)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(row.l2_hits)),
                  runtime::Ms(row.report.total)});
    rows.push_back(row);
  };
  for (const Mode& m : kModes) add(RunConv(m, kConvWidth, kConvHeight));
  for (const Mode& m : kModes) add(RunIdea(m, kIdeaBytes));
  for (const Mode& m : kModes) add(RunAdpcm(m, kAdpcmBytes));
  table.Print();

  const bool vcd_inert = VecAddVcd(false) == VecAddVcd(true);
  const bool trace_inert = ConvChromeTrace(false) == ConvChromeTrace(true);
  const bool off_inert = vcd_inert && trace_inert;

  bool exact = true;
  u64 conv_base = 0, conv_flex = 0, idea_base = 0, idea_flex = 0;
  for (const Row& r : rows) {
    if (!r.output_exact) exact = false;
    const bool baseline = r.mode == "cam8";
    if (r.app == "conv2d" && baseline) conv_base = r.report.vim.faults;
    if (r.app == "conv2d" && r.gated) conv_flex = r.report.vim.faults;
    if (r.app == "IDEA" && baseline) idea_base = r.report.vim.faults;
    if (r.app == "IDEA" && r.gated) idea_flex = r.report.vim.faults;
  }

  std::printf("\nsummary:\n");
  bool pass = true;
  auto gate = [&](const char* name, bool ok) {
    std::printf("  %-52s %s\n", name, ok ? "pass" : "FAIL");
    if (!ok) pass = false;
  };
  gate("outputs byte-exact across all configurations", exact);
  std::printf("  conv2d faults, cam8 -> l1l2+sp:                  "
              "%llu -> %llu\n",
              static_cast<unsigned long long>(conv_base),
              static_cast<unsigned long long>(conv_flex));
  gate("conv2d faults strictly below the cam8 baseline",
       conv_flex < conv_base);
  std::printf("  IDEA faults, cam8 -> l1l2+sp:                    "
              "%llu -> %llu\n",
              static_cast<unsigned long long>(idea_base),
              static_cast<unsigned long long>(idea_flex));
  gate("IDEA faults strictly below the cam8 baseline",
       idea_flex < idea_base);
  gate("defaults inert (fig7 VCD byte-identical)", vcd_inert);
  gate("defaults inert (conv2d Chrome trace identical)", trace_inert);

  WriteJson(rows, exact, conv_base, conv_flex, idea_base, idea_flex,
            off_inert, pass);
  std::printf("wrote BENCH_tlb.json\n");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
