// Ablation: sharing the PLD across tasks (§5's complementary problem).
//
// A mixed stream of adpcmdecode and IDEA jobs contends for the single
// fabric. Reconfiguration costs tens of milliseconds on the EPXA1's
// configuration port — the same order as whole executions — so the
// schedule decides how much of the machine the configuration port eats:
// FIFO reconfigures at every design switch; batching by bit-stream
// amortises it at the cost of per-job latency fairness.
#include <cstdio>

#include "apps/adpcm.h"
#include "apps/idea.h"
#include "apps/workloads.h"
#include "base/table.h"
#include "cp/adpcm_cp.h"
#include "cp/idea_cp.h"
#include "cp/registry.h"
#include "os/scheduler.h"
#include "runtime/config.h"
#include "runtime/report.h"

namespace vcop {
namespace {

os::FpgaJob MakeAdpcmJob(u32 pid, usize bytes, u64 seed) {
  os::FpgaJob job;
  job.pid = pid;
  job.bitstream = "adpcmdecode";
  job.run = [bytes, seed](os::Kernel& kernel)
      -> Result<os::ExecutionReport> {
    const std::vector<u8> input = apps::MakeAdpcmStream(bytes, seed);
    auto in = kernel.user_memory().Allocate(static_cast<u32>(bytes));
    auto out = kernel.user_memory().Allocate(static_cast<u32>(bytes * 4));
    if (!in.ok() || !out.ok()) {
      return ResourceExhaustedError("out of user memory");
    }
    kernel.user_memory().WriteBytes(in.value(), input);
    VCOP_RETURN_IF_ERROR(kernel.FpgaMapObject(
        cp::AdpcmDecodeCoprocessor::kObjIn, in.value(),
        static_cast<u32>(bytes), 1, os::Direction::kIn));
    VCOP_RETURN_IF_ERROR(kernel.FpgaMapObject(
        cp::AdpcmDecodeCoprocessor::kObjOut, out.value(),
        static_cast<u32>(bytes * 4), 2, os::Direction::kOut));
    const u32 params[] = {static_cast<u32>(bytes), 0, 0};
    return kernel.FpgaExecute(params);
  };
  return job;
}

os::FpgaJob MakeIdeaJob(u32 pid, usize bytes, u64 seed) {
  os::FpgaJob job;
  job.pid = pid;
  job.bitstream = "idea";
  job.run = [bytes, seed](os::Kernel& kernel)
      -> Result<os::ExecutionReport> {
    const apps::IdeaSubkeys keys =
        apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
    const std::vector<u8> input = apps::MakeRandomBytes(bytes, seed);
    auto in = kernel.user_memory().Allocate(static_cast<u32>(bytes));
    auto out = kernel.user_memory().Allocate(static_cast<u32>(bytes));
    auto key = kernel.user_memory().Allocate(
        static_cast<u32>(keys.size() * 2));
    if (!in.ok() || !out.ok() || !key.ok()) {
      return ResourceExhaustedError("out of user memory");
    }
    kernel.user_memory().WriteBytes(in.value(), input);
    std::vector<u8> key_bytes(keys.size() * 2);
    for (usize i = 0; i < keys.size(); ++i) {
      key_bytes[2 * i] = static_cast<u8>(keys[i]);
      key_bytes[2 * i + 1] = static_cast<u8>(keys[i] >> 8);
    }
    kernel.user_memory().WriteBytes(key.value(), key_bytes);
    VCOP_RETURN_IF_ERROR(kernel.FpgaMapObject(
        cp::IdeaCoprocessor::kObjIn, in.value(),
        static_cast<u32>(bytes), 4, os::Direction::kIn));
    VCOP_RETURN_IF_ERROR(kernel.FpgaMapObject(
        cp::IdeaCoprocessor::kObjOut, out.value(),
        static_cast<u32>(bytes), 4, os::Direction::kOut));
    VCOP_RETURN_IF_ERROR(kernel.FpgaMapObject(
        cp::IdeaCoprocessor::kObjKey, key.value(),
        static_cast<u32>(key_bytes.size()), 2, os::Direction::kIn));
    const u32 params[] = {
        static_cast<u32>(bytes / apps::kIdeaBlockBytes)};
    return kernel.FpgaExecute(params);
  };
  return job;
}

std::vector<os::FpgaJob> MakeJobStream() {
  std::vector<os::FpgaJob> jobs;
  // Two processes interleaving audio and crypto work.
  for (u32 round = 0; round < 4; ++round) {
    jobs.push_back(MakeAdpcmJob(1, 8192, 100 + round));
    jobs.push_back(MakeIdeaJob(2, 16384, 200 + round));
  }
  return jobs;
}

int Main() {
  std::printf(
      "== Ablation: sharing the PLD across tasks (Section 5's "
      "complementary problem) ==\n\n");

  Table table({"schedule", "jobs", "reconfigs", "config ms",
               "busy (exec) ms", "makespan ms", "mean turnaround ms",
               "config share"});
  table.set_title(
      "8 jobs from 2 processes (4x adpcm 8 KB + 4x IDEA 16 KB), one "
      "EPXA1 fabric");

  std::map<std::string, hw::Bitstream> designs;
  designs["adpcmdecode"] = cp::AdpcmDecodeBitstream();
  designs["idea"] = cp::IdeaBitstream();

  for (const os::ScheduleOrder order :
       {os::ScheduleOrder::kFifo, os::ScheduleOrder::kBatchBitstream}) {
    os::Kernel kernel(runtime::Epxa1Config());
    os::FpgaScheduler scheduler(kernel, designs);
    const os::ScheduleReport report =
        scheduler.RunAll(MakeJobStream(), order);
    VCOP_CHECK_MSG(report.failures() == 0, "a job failed");

    Picoseconds busy = 0;
    for (const os::JobOutcome& o : report.outcomes) {
      busy += o.report.total;
    }
    const double config_share =
        100.0 * static_cast<double>(report.total_config_time) /
        static_cast<double>(report.makespan);
    table.AddRow({std::string(ToString(order)),
                  StrFormat("%zu", report.outcomes.size()),
                  StrFormat("%u", report.reconfigurations),
                  runtime::Ms(report.total_config_time),
                  runtime::Ms(busy), runtime::Ms(report.makespan),
                  runtime::Ms(report.mean_turnaround()),
                  StrFormat("%.0f%%", config_share)});
  }
  table.Print();

  std::printf(
      "\nFIFO pays a full reconfiguration at every design switch — on "
      "this job mix\nthe configuration port consumes a large share of "
      "the machine. Batching by\nbit-stream cuts it to one load per "
      "design. The paper calls lattice sharing\n'orthogonal and "
      "complementary' to interface virtualisation (§5); this bench\n"
      "shows the two compose: the jobs themselves run through the "
      "unchanged VIM.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
