// Gates the §10 speculation/batching machinery (DESIGN.md §10,
// EXPERIMENTS.md E17) and writes BENCH_prefetch.json for CI. Four
// deterministic scenarios:
//
//   conv2d     the interleaved-stream workload (three live image rows
//              plus the output row, each advancing +1 page) swept over
//              every prefetch kind. The adaptive reference-prediction
//              table must strictly beat the sequential prefetcher on
//              both fault count and fault-service time.
//   streaming  adpcm + IDEA walk their objects purely sequentially, so
//              the stride/adaptive detectors must degrade gracefully:
//              within 1% of the sequential prefetcher end to end.
//   victim     two vcopd tenants on an untagged (flush-on-switch) TLB:
//              switch-out evicts every frame, and faults at resume must
//              be answered from the software victim TLB without a load.
//   coalesce   end-of-operation dirty flush as one scatter-gather
//              burst: byte- and cycle-identical to the per-page sweep
//              in the CPU copy modes (2 KB pages tile INCR16 exactly),
//              strictly faster under kDma (one channel setup).
//
// Every run must stay byte-identical to its software reference under
// every configuration; any gate failure exits 1.
#include <cstdio>
#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "bench/common.h"
#include "cp/adpcm_cp.h"
#include "cp/registry.h"
#include "os/vcopd.h"
#include "os/vim.h"
#include "sim/fleet.h"

namespace vcop {
namespace {

using bench::kWorkloadSeed;
using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

constexpr os::PrefetchKind kKinds[] = {
    os::PrefetchKind::kNone, os::PrefetchKind::kSequential,
    os::PrefetchKind::kStride, os::PrefetchKind::kAdaptive};

/// Per-kind aggregate over the conv2d shape sweep.
struct KindTotals {
  u64 faults = 0;
  u64 issued = 0;
  u64 useful = 0;
  u64 wasted = 0;
  Picoseconds service = 0;  // t_dp + t_imu: the VIM's software time
  Picoseconds total = 0;
  bool exact = true;
};

struct ConvOutcome {
  os::ExecutionReport report;
  bool exact = false;
};

ConvOutcome RunConvPoint(const os::KernelConfig& config, u32 width,
                         u32 height) {
  FpgaSystem sys(config);
  const std::vector<u8> image = apps::MakeTestImage(width, height, 11);
  std::vector<u8> expect(image.size());
  apps::Convolve3x3(image, width, height, apps::SharpenKernel(), 0, expect);
  const auto run = runtime::RunConv3x3Vim(sys, image, width, height,
                                          apps::SharpenKernel(), 0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  ConvOutcome out;
  out.report = run.value().report;
  out.exact = run.value().output == expect;
  return out;
}

os::KernelConfig KindConfig(os::PrefetchKind kind) {
  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.prefetch = kind;
  config.vim.prefetch_depth = 2;
  // Overlap for every kind (including none, where it only background-
  // cleans), so the sweep isolates the suggestion strategy itself.
  config.vim.overlap_prefetch = true;
  return config;
}

// ----- scenario 3: victim TLB under vcopd flush-on-switch -----

/// One adpcm streaming tenant: staged input, mapped buffers, reference.
struct StreamTenant {
  os::TenantId id = 0;
  HostBuffer<u8> in;
  HostBuffer<i16> out;
  std::vector<i16> expect;
  u32 completed = 0;
  bool exact = true;
};

struct FleetOutcome {
  Picoseconds makespan = 0;
  os::VimServiceStats service;
  bool exact = true;
};

FleetOutcome RunVictimFleet(u32 victim_entries) {
  os::KernelConfig kcfg = runtime::Epxa1Config();
  kcfg.vim.victim_tlb_entries = victim_entries;
  FpgaSystem sys(kcfg);

  os::VcopdConfig vcfg;
  vcfg.policy = os::ServicePolicy::kFairShare;
  vcfg.time_slice = 50ull * 1000 * 1000;  // many switches
  // Flush-on-switch: switch-out evicts every frame, so a resumed
  // tenant's first faults are exactly the victim TLB's target.
  vcfg.asid_tagging = false;
  os::Vcopd daemon(sys.kernel(), vcfg);
  sys.kernel().vim().ResetServiceStats();

  constexpr u32 kBytes = 12 * 1024;
  constexpr u32 kJobs = 2;
  std::vector<std::unique_ptr<StreamTenant>> tenants;
  for (u32 t = 0; t < 2; ++t) {
    auto tenant = std::make_unique<StreamTenant>();
    tenant->id =
        daemon.RegisterTenant(StrFormat("stream-%u", t), 1).value();
    const std::vector<u8> input =
        apps::MakeAdpcmStream(kBytes, kWorkloadSeed + t);
    tenant->in = sys.Allocate<u8>(kBytes).value();
    tenant->in.Fill(input);
    tenant->out = sys.Allocate<i16>(kBytes * 2).value();
    tenant->expect.resize(kBytes * 2);
    apps::AdpcmState state;
    apps::AdpcmDecode(input, tenant->expect, state);
    VcopdClient client(daemon, tenant->id);
    VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjIn, tenant->in,
                          os::Direction::kIn).ok());
    VCOP_CHECK(client.Map(cp::AdpcmDecodeCoprocessor::kObjOut, tenant->out,
                          os::Direction::kOut).ok());
    tenants.push_back(std::move(tenant));
  }
  for (u32 round = 0; round < kJobs; ++round) {
    for (auto& tenant : tenants) {
      StreamTenant* t = tenant.get();
      VcopdClient client(daemon, t->id);
      const auto ticket = client.Submit(
          cp::AdpcmDecodeBitstream(), {kBytes, 0u, 0u},
          [t](const os::JobResult& r) {
            ++t->completed;
            if (!r.status.ok()) {
              t->exact = false;
              return;
            }
            t->exact &= t->out.ToVector() == t->expect;
          });
      VCOP_CHECK_MSG(ticket.ok(), ticket.status().ToString());
    }
  }
  const Status status = daemon.RunUntilIdle();
  VCOP_CHECK_MSG(status.ok(), status.ToString());

  FleetOutcome out;
  out.makespan = daemon.BuildScheduleReport().makespan;
  out.service = sys.kernel().vim().service_stats();
  for (const auto& tenant : tenants) {
    out.exact &= tenant->exact && tenant->completed == kJobs;
  }
  return out;
}

// ----- scenario 4: coalesced write-back -----

bench::Point RunCoalescePoint(mem::CopyMode mode, bool coalesce) {
  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.copy_mode = mode;
  config.vim.coalesce_writeback = coalesce;
  return bench::RunAdpcmPoint(config, 8192);
}

int Main() {
  std::printf(
      "== speculation and batching: adaptive prefetch, victim TLB, "
      "coalesced write-back ==\n\n");
  int rc = 0;

  // ----- scenario 1: conv2d prefetch-kind sweep -----
  struct Shape {
    u32 width, height;
  };
  const Shape shapes[] = {{1024, 48}, {2048, 24}, {4096, 12}, {8192, 6}};

  Table conv_table({"image", "mode", "faults", "issued", "useful", "wasted",
                    "service ms", "total ms"});
  conv_table.set_title(
      "conv2d 3x3 (sharpen), overlap prefetch depth 2, by strategy");
  KindTotals totals[4];
  // All 16 (shape, strategy) points are independent simulations: fan
  // them out over the fleet, then aggregate in the original loop order.
  const std::vector<ConvOutcome> conv_runs = sim::FleetMap<ConvOutcome>(
      std::size(shapes) * 4, [&shapes](usize i) {
        const Shape& shape = shapes[i / 4];
        return RunConvPoint(KindConfig(kKinds[i % 4]), shape.width,
                            shape.height);
      });
  for (usize s = 0; s < std::size(shapes); ++s) {
    const Shape& shape = shapes[s];
    for (usize k = 0; k < 4; ++k) {
      const ConvOutcome& out = conv_runs[s * 4 + k];
      const os::VimAccounting& vim = out.report.vim;
      totals[k].faults += vim.faults;
      totals[k].issued += vim.prefetched_pages;
      totals[k].useful += vim.prefetch_useful;
      totals[k].wasted += vim.prefetch_wasted;
      totals[k].service += out.report.t_dp + out.report.t_imu;
      totals[k].total += out.report.total;
      totals[k].exact &= out.exact;
      conv_table.AddRow(
          {StrFormat("%ux%u", shape.width, shape.height),
           std::string(ToString(kKinds[k])),
           StrFormat("%llu", static_cast<unsigned long long>(vim.faults)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(vim.prefetched_pages)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(vim.prefetch_useful)),
           StrFormat("%llu",
                     static_cast<unsigned long long>(vim.prefetch_wasted)),
           runtime::Ms(out.report.t_dp + out.report.t_imu),
           runtime::Ms(out.report.total)});
    }
  }
  conv_table.Print();
  const KindTotals& seq = totals[1];
  const KindTotals& adp = totals[3];
  std::printf(
      "\n  aggregate faults: none %llu, sequential %llu, stride %llu, "
      "adaptive %llu\n  aggregate service: %.3f ms sequential vs %.3f ms "
      "adaptive\n\n",
      static_cast<unsigned long long>(totals[0].faults),
      static_cast<unsigned long long>(seq.faults),
      static_cast<unsigned long long>(totals[2].faults),
      static_cast<unsigned long long>(adp.faults),
      static_cast<double>(seq.service) / 1e9,
      static_cast<double>(adp.service) / 1e9);
  for (usize k = 0; k < 4; ++k) {
    if (!totals[k].exact) {
      std::printf("FAIL: conv2d outputs diverged under %s prefetch\n",
                  std::string(ToString(kKinds[k])).c_str());
      rc = 1;
    }
  }
  if (adp.faults >= seq.faults) {
    std::printf(
        "FAIL: adaptive prefetch did not reduce conv2d faults "
        "(%llu vs %llu sequential)\n",
        static_cast<unsigned long long>(adp.faults),
        static_cast<unsigned long long>(seq.faults));
    rc = 1;
  }
  if (adp.service >= seq.service) {
    std::printf(
        "FAIL: adaptive prefetch did not reduce conv2d fault-service "
        "time\n");
    rc = 1;
  }

  // ----- scenario 2: streaming apps must stay within noise -----
  Table stream_table({"app", "mode", "faults", "issued", "total ms",
                      "vs sequential"});
  stream_table.set_title(
      "sequential workloads: stride/adaptive must match the sequential "
      "prefetcher");
  struct StreamPoint {
    Picoseconds total = 0;
  };
  StreamPoint stream[2][4];
  const char* stream_names[2] = {"adpcmdecode", "IDEA"};
  struct StreamRun {
    bench::Point adpcm;
    bench::Point idea;
  };
  const std::vector<StreamRun> stream_runs =
      sim::FleetMap<StreamRun>(4, [](usize k) {
        return StreamRun{bench::RunAdpcmPoint(KindConfig(kKinds[k]), 8192),
                         bench::RunIdeaPoint(KindConfig(kKinds[k]), 32768)};
      });
  for (usize k = 0; k < 4; ++k) {
    stream[0][k].total = stream_runs[k].adpcm.vim.total;
    stream[1][k].total = stream_runs[k].idea.vim.total;
    const bench::Point* points[2] = {&stream_runs[k].adpcm,
                                     &stream_runs[k].idea};
    for (usize w = 0; w < 2; ++w) {
      const double ratio =
          stream[w][1].total > 0
              ? static_cast<double>(stream[w][k].total) /
                    static_cast<double>(stream[w][1].total)
              : 0.0;
      stream_table.AddRow(
          {stream_names[w], std::string(ToString(kKinds[k])),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 points[w]->vim.vim.faults)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 points[w]->vim.vim.prefetched_pages)),
           runtime::Ms(points[w]->vim.total),
           k >= 1 ? StrFormat("%.4fx", ratio) : std::string("-")});
    }
  }
  stream_table.Print();
  std::printf("\n");
  for (usize w = 0; w < 2; ++w) {
    for (usize k = 2; k < 4; ++k) {
      const double ratio = static_cast<double>(stream[w][k].total) /
                           static_cast<double>(stream[w][1].total);
      if (ratio > 1.01) {
        std::printf(
            "FAIL: %s under %s prefetch is %.4fx the sequential time "
            "(> 1.01 tolerance)\n",
            stream_names[w], std::string(ToString(kKinds[k])).c_str(),
            ratio);
        rc = 1;
      }
    }
  }

  // ----- scenario 3: victim TLB -----
  const std::vector<FleetOutcome> victim_runs = sim::FleetMap<FleetOutcome>(
      2, [](usize i) { return RunVictimFleet(i == 0 ? 16 : 0); });
  const FleetOutcome& with_victims = victim_runs[0];
  const FleetOutcome& no_victims = victim_runs[1];
  std::printf(
      "victim TLB (vcopd, untagged flush-on-switch, 2 adpcm tenants):\n"
      "  16 entries: %llu hits / %llu misses, makespan %.1f us\n"
      "   0 entries: %llu hits / %llu misses, makespan %.1f us\n\n",
      static_cast<unsigned long long>(with_victims.service.victim_tlb_hits),
      static_cast<unsigned long long>(
          with_victims.service.victim_tlb_misses),
      ToMicroseconds(with_victims.makespan),
      static_cast<unsigned long long>(no_victims.service.victim_tlb_hits),
      static_cast<unsigned long long>(no_victims.service.victim_tlb_misses),
      ToMicroseconds(no_victims.makespan));
  if (!with_victims.exact || !no_victims.exact) {
    std::printf("FAIL: victim-TLB fleet outputs diverged\n");
    rc = 1;
  }
  if (with_victims.service.victim_tlb_hits == 0) {
    std::printf("FAIL: the victim TLB never hit across the switches\n");
    rc = 1;
  }
  if (no_victims.service.victim_tlb_hits != 0 ||
      no_victims.service.victim_tlb_misses != 0) {
    std::printf("FAIL: disabled victim TLB still counted lookups\n");
    rc = 1;
  }
  if (with_victims.makespan > no_victims.makespan) {
    std::printf("FAIL: victim TLB made the fleet slower end to end\n");
    rc = 1;
  }

  // ----- scenario 4: coalesced write-back -----
  const std::vector<bench::Point> coalesce_runs =
      sim::FleetMap<bench::Point>(4, [](usize i) {
        const mem::CopyMode mode =
            i < 2 ? mem::CopyMode::kDoubleCopy : mem::CopyMode::kDma;
        return RunCoalescePoint(mode, i % 2 == 1);
      });
  const bench::Point& cpu_off = coalesce_runs[0];
  const bench::Point& cpu_on = coalesce_runs[1];
  const bench::Point& dma_off = coalesce_runs[2];
  const bench::Point& dma_on = coalesce_runs[3];
  std::printf(
      "coalesced write-back (adpcm 8 KB, end-of-operation flush):\n"
      "  double-copy: %.3f ms per-page vs %.3f ms coalesced "
      "(%llu pages in %llu bursts)\n"
      "  dma:         %.3f ms per-page vs %.3f ms coalesced "
      "(%llu pages in %llu bursts)\n\n",
      static_cast<double>(cpu_off.vim.total) / 1e9,
      static_cast<double>(cpu_on.vim.total) / 1e9,
      static_cast<unsigned long long>(cpu_on.vim.vim.coalesced_pages),
      static_cast<unsigned long long>(cpu_on.vim.vim.coalesced_bursts),
      static_cast<double>(dma_off.vim.total) / 1e9,
      static_cast<double>(dma_on.vim.total) / 1e9,
      static_cast<unsigned long long>(dma_on.vim.vim.coalesced_pages),
      static_cast<unsigned long long>(dma_on.vim.vim.coalesced_bursts));
  if (cpu_on.vim.vim.coalesced_pages < 2) {
    std::printf("FAIL: the end-of-operation flush never coalesced\n");
    rc = 1;
  }
  // 2 KB pages tile INCR16 exactly, so the burst is cycle-for-cycle the
  // sum of the per-page stores; only the floor in each cycles->ps
  // conversion (once per pass vs once per page) may leak through.
  const Picoseconds cpu_delta =
      cpu_on.vim.total > cpu_off.vim.total
          ? cpu_on.vim.total - cpu_off.vim.total
          : cpu_off.vim.total - cpu_on.vim.total;
  std::printf("  double-copy coalescing delta: %llu ps (clock-edge "
              "rounding only)\n\n",
              static_cast<unsigned long long>(cpu_delta));
  if (cpu_delta > 1000) {
    std::printf(
        "FAIL: coalescing changed the CPU-copy cost beyond clock "
        "rounding (%llu ps)\n",
        static_cast<unsigned long long>(cpu_delta));
    rc = 1;
  }
  if (dma_on.vim.vim.coalesced_bursts == 0 ||
      dma_on.vim.total >= dma_off.vim.total) {
    std::printf(
        "FAIL: coalescing did not amortise the DMA channel setup\n");
    rc = 1;
  }

  // ----- JSON -----
  std::FILE* f = std::fopen("BENCH_prefetch.json", "w");
  VCOP_CHECK_MSG(f != nullptr,
                 "cannot open BENCH_prefetch.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"prefetch\",\n  \"conv2d\": [");
  for (usize k = 0; k < 4; ++k) {
    std::fprintf(
        f,
        "%s\n    {\"mode\": \"%s\", \"faults\": %llu, \"issued\": %llu, "
        "\"useful\": %llu, \"wasted\": %llu, \"service_us\": %.3f, "
        "\"total_us\": %.3f, \"outputs_exact\": %s}",
        k == 0 ? "" : ",", std::string(ToString(kKinds[k])).c_str(),
        static_cast<unsigned long long>(totals[k].faults),
        static_cast<unsigned long long>(totals[k].issued),
        static_cast<unsigned long long>(totals[k].useful),
        static_cast<unsigned long long>(totals[k].wasted),
        ToMicroseconds(totals[k].service), ToMicroseconds(totals[k].total),
        totals[k].exact ? "true" : "false");
  }
  std::fprintf(f, "\n  ],\n  \"streaming\": {");
  for (usize w = 0; w < 2; ++w) {
    std::fprintf(f, "%s\n    \"%s\": {", w == 0 ? "" : ",",
                 stream_names[w]);
    for (usize k = 0; k < 4; ++k) {
      std::fprintf(f, "%s\"%s_us\": %.3f", k == 0 ? "" : ", ",
                   std::string(ToString(kKinds[k])).c_str(),
                   ToMicroseconds(stream[w][k].total));
    }
    std::fprintf(f, "}");
  }
  std::fprintf(
      f,
      "\n  },\n  \"victim_tlb\": {\"hits\": %llu, \"misses\": %llu, "
      "\"makespan_us\": %.3f, \"baseline_makespan_us\": %.3f},\n",
      static_cast<unsigned long long>(with_victims.service.victim_tlb_hits),
      static_cast<unsigned long long>(
          with_victims.service.victim_tlb_misses),
      ToMicroseconds(with_victims.makespan),
      ToMicroseconds(no_victims.makespan));
  std::fprintf(
      f,
      "  \"coalesce\": {\"double_copy_us\": %.3f, "
      "\"double_copy_coalesced_us\": %.3f, \"dma_us\": %.3f, "
      "\"dma_coalesced_us\": %.3f, \"pages\": %llu, \"bursts\": %llu}\n",
      ToMicroseconds(cpu_off.vim.total), ToMicroseconds(cpu_on.vim.total),
      ToMicroseconds(dma_off.vim.total), ToMicroseconds(dma_on.vim.total),
      static_cast<unsigned long long>(dma_on.vim.vim.coalesced_pages),
      static_cast<unsigned long long>(dma_on.vim.vim.coalesced_bursts));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_prefetch.json\n");
  return rc;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
