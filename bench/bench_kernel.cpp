// Benchmarks the simulation kernel itself: the fast engine (edge
// batching + tick coalescing + inline-callback event queue + IMU
// translation cache) against the event-per-edge reference engine, on
// the paper's Figure 8 (adpcmdecode) and Figure 9 (IDEA) workload
// points. Both engines produce bit-identical ExecutionReports (enforced
// by tests/kernel_fastpath_test); this binary measures the host-side
// cost difference and writes BENCH_kernel.json next to the working
// directory for CI to archive.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

namespace vcop {
namespace {

struct Measurement {
  std::string app;
  usize input_bytes = 0;
  std::string engine;  // "fast" or "reference"
  double wall_ms = 0.0;    // best post-warm-up repeat
  double warmup_ms = 0.0;  // first run, cold allocator/caches
  u64 events = 0;             // dispatched events (host-side work metric)
  Picoseconds sim_time = 0;   // simulated execution time (identical
                              // across engines — checked)
};

os::KernelConfig EngineConfig(bool fast) {
  os::KernelConfig config = runtime::Epxa1Config();
  if (!fast) {
    config.sim_tuning.batch_edges = false;
    config.sim_tuning.coalesce_ticks = false;
    config.imu_translation_cache = false;
  }
  return config;
}

double EventsPerSec(const Measurement& m) {
  return m.wall_ms > 0.0 ? static_cast<double>(m.events) / (m.wall_ms / 1e3)
                         : 0.0;
}

/// Simulated microseconds advanced per host millisecond spent.
double SimThroughput(const Measurement& m) {
  return m.wall_ms > 0.0 ? ToMicroseconds(m.sim_time) / m.wall_ms : 0.0;
}

/// Runs `run` once as warm-up and then kRepeats times, keeping the
/// fastest post-warm-up wall time; the warm-up time is reported
/// separately, never folded into the ratio inputs (events and sim_time
/// are deterministic across repeats — checked).
template <typename RunFn>
Measurement Measure(const std::string& app, usize input_bytes, bool fast,
                    RunFn run) {
  constexpr int kRepeats = 3;
  Measurement m;
  m.app = app;
  m.input_bytes = input_bytes;
  m.engine = fast ? "fast" : "reference";
  m.wall_ms = 1e300;
  for (int i = 0; i <= kRepeats; ++i) {
    // System construction (dominated by allocating the 16 MB user memory)
    // is identical for both engines and not what this bench measures, so
    // it stays outside the timed region.
    runtime::FpgaSystem sys(EngineConfig(fast));
    bench::WallTimer timer;
    const os::ExecutionReport report = run(sys);
    const double wall_ms = timer.ElapsedMs();
    const u64 events = sys.kernel().simulator().events_dispatched();
    if (i > 0) {
      VCOP_CHECK_MSG(events == m.events && report.total == m.sim_time,
                     "nondeterministic repeat");
    }
    m.events = events;
    m.sim_time = report.total;
    if (i == 0) {
      m.warmup_ms = wall_ms;
    } else if (wall_ms < m.wall_ms) {
      m.wall_ms = wall_ms;
    }
  }
  return m;
}

Measurement MeasureAdpcm(usize input_bytes, bool fast) {
  const std::vector<u8> input =
      apps::MakeAdpcmStream(input_bytes, bench::kWorkloadSeed);
  return Measure("adpcm", input_bytes, fast,
                 [&input](runtime::FpgaSystem& sys) {
                   auto run = runtime::RunAdpcmVim(sys, input);
                   VCOP_CHECK_MSG(run.ok(), run.status().ToString());
                   return run.value().report;
                 });
}

Measurement MeasureIdea(usize input_bytes, bool fast) {
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(bench::kWorkloadSeed));
  const std::vector<u8> input =
      apps::MakeRandomBytes(input_bytes, bench::kWorkloadSeed + 1);
  return Measure("idea", input_bytes, fast,
                 [&keys, &input](runtime::FpgaSystem& sys) {
                   auto run = runtime::RunIdeaVim(sys, keys, input);
                   VCOP_CHECK_MSG(run.ok(), run.status().ToString());
                   return run.value().report;
                 });
}

void WriteJson(const std::vector<std::pair<Measurement, Measurement>>& pairs,
               const char* path) {
  std::FILE* f = std::fopen(path, "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_kernel.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"kernel\",\n  \"points\": [\n");
  bool first = true;
  for (const auto& [fast, ref] : pairs) {
    for (const Measurement* m : {&fast, &ref}) {
      std::fprintf(
          f,
          "%s    {\"app\": \"%s\", \"input_bytes\": %zu, \"engine\": "
          "\"%s\", \"wall_ms\": %.3f, \"warmup_ms\": %.3f, "
          "\"events_dispatched\": %llu, "
          "\"events_per_sec\": %.0f, \"sim_time_us\": %.3f, "
          "\"sim_us_per_wall_ms\": %.1f}",
          first ? "" : ",\n", m->app.c_str(), m->input_bytes,
          m->engine.c_str(), m->wall_ms, m->warmup_ms,
          static_cast<unsigned long long>(m->events), EventsPerSec(*m),
          ToMicroseconds(m->sim_time), SimThroughput(*m));
      first = false;
    }
  }
  std::fprintf(f, "\n  ],\n  \"summary\": [\n");
  first = true;
  for (const auto& [fast, ref] : pairs) {
    std::fprintf(f,
                 "%s    {\"app\": \"%s\", \"input_bytes\": %zu, "
                 "\"wall_speedup\": %.2f, \"event_reduction\": %.2f}",
                 first ? "" : ",\n", fast.app.c_str(), fast.input_bytes,
                 ref.wall_ms / fast.wall_ms,
                 static_cast<double>(ref.events) /
                     static_cast<double>(fast.events));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

int Main() {
  std::printf(
      "== Simulation-kernel benchmark: fast engine vs event-per-edge "
      "reference ==\n(identical simulated results; host cost only)\n\n");

  std::vector<std::pair<Measurement, Measurement>> pairs;
  for (const usize bytes : {2048u, 4096u, 8192u}) {
    pairs.emplace_back(MeasureAdpcm(bytes, true), MeasureAdpcm(bytes, false));
  }
  for (const usize bytes : {4096u, 8192u, 16384u, 32768u}) {
    pairs.emplace_back(MeasureIdea(bytes, true), MeasureIdea(bytes, false));
  }

  Table table({"app", "input", "ref ms", "fast ms", "speedup", "ref events",
               "fast events", "reduction", "fast ev/s", "sim us/ms"});
  table.set_title("host wall time and dispatched events per execution");
  for (const auto& [fast, ref] : pairs) {
    VCOP_CHECK_MSG(fast.sim_time == ref.sim_time,
                   "engines disagree on simulated time");
    table.AddRow(
        {fast.app, bench::SizeLabel(fast.input_bytes),
         StrFormat("%.2f", ref.wall_ms), StrFormat("%.2f", fast.wall_ms),
         StrFormat("%.2fx", ref.wall_ms / fast.wall_ms),
         StrFormat("%llu", static_cast<unsigned long long>(ref.events)),
         StrFormat("%llu", static_cast<unsigned long long>(fast.events)),
         StrFormat("%.2fx", static_cast<double>(ref.events) /
                                static_cast<double>(fast.events)),
         StrFormat("%.0fk", EventsPerSec(fast) / 1e3),
         StrFormat("%.0f", SimThroughput(fast))});
  }
  table.Print();

  WriteJson(pairs, "BENCH_kernel.json");
  std::printf("\nwrote BENCH_kernel.json (%zu measurement points)\n",
              pairs.size() * 2);

  // The event reduction is deterministic — gate on it so a batching
  // regression fails the bench smoke loudly. Wall-clock speedup depends
  // on the host and is reported, not gated.
  int rc = 0;
  for (const auto& [fast, ref] : pairs) {
    const bool largest =
        (fast.app == "adpcm" && fast.input_bytes == 8192) ||
        (fast.app == "idea" && fast.input_bytes == 32768);
    if (!largest) continue;
    const double reduction = static_cast<double>(ref.events) /
                             static_cast<double>(fast.events);
    const double speedup = ref.wall_ms / fast.wall_ms;
    std::printf("%s %zu B: %.2fx fewer events, %.2fx wall speedup\n",
                fast.app.c_str(), fast.input_bytes, reduction, speedup);
    if (reduction < 3.0) {
      std::printf("FAIL: event reduction below 3x on %s %zu B\n",
                  fast.app.c_str(), fast.input_bytes);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
