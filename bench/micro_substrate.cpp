// E10 — google-benchmark microbenchmarks of the substrate itself:
// host-side throughput of the event kernel, the CAM TLB, the dual-port
// RAM model and a full simulated execution. These track the cost of
// *running* the simulator (useful when sweeping large design spaces),
// not modelled time.
#include <benchmark/benchmark.h>

#include <numeric>

#include "apps/workloads.h"
#include "base/rng.h"
#include "hw/tlb.h"
#include "mem/dp_ram.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "sim/simulator.h"

namespace vcop {
namespace {

void BM_EventQueueDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    u64 count = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(static_cast<Picoseconds>(i), [&count] { ++count; });
    }
    sim.RunToIdle();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueDispatch);

void BM_ClockDomainTicks(benchmark::State& state) {
  class Spinner : public sim::ClockedModule {
   public:
    explicit Spinner(u64 budget) : budget_(budget) {}
    void OnRisingEdge() override { ++ticks_; }
    bool active() const override { return ticks_ < budget_; }
    u64 ticks_ = 0;

   private:
    u64 budget_;
  };
  const u64 edges = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::ClockDomain& clk = sim.AddClockDomain("spin", Frequency::MHz(40));
    Spinner spinner(edges);
    clk.Attach(spinner);
    sim.RunToIdle();
    benchmark::DoNotOptimize(spinner.ticks_);
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_ClockDomainTicks)->Arg(1000)->Arg(10000);

void BM_TlbLookup(benchmark::State& state) {
  hw::Tlb tlb(static_cast<u32>(state.range(0)));
  for (u32 i = 0; i < tlb.num_entries(); ++i) {
    tlb.Install(i, static_cast<hw::ObjectId>(i % 3), i, i);
  }
  Rng rng(1);
  u64 hits = 0;
  for (auto _ : state) {
    const u32 i = static_cast<u32>(rng.NextBelow(tlb.num_entries()));
    hits += tlb.Lookup(static_cast<hw::ObjectId>(i % 3), i).has_value();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup)->Arg(8)->Arg(32);

void BM_DualPortRamWord(benchmark::State& state) {
  mem::DualPortRam ram(16384);
  u32 addr = 0;
  u64 sum = 0;
  for (auto _ : state) {
    ram.WriteWord(mem::DualPortRam::Port::kProcessor, addr, 4, addr);
    sum += ram.ReadWord(mem::DualPortRam::Port::kCoprocessor, addr, 4);
    addr = (addr + 4) & 16383;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualPortRamWord);

void BM_FullAdpcmExecution(benchmark::State& state) {
  const usize bytes = static_cast<usize>(state.range(0));
  const std::vector<u8> input = apps::MakeAdpcmStream(bytes, 1);
  for (auto _ : state) {
    runtime::FpgaSystem sys(runtime::Epxa1Config());
    auto run = runtime::RunAdpcmVim(sys, input);
    VCOP_CHECK(run.ok());
    benchmark::DoNotOptimize(run.value().report.total);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_FullAdpcmExecution)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_FullVecAddExecution(benchmark::State& state) {
  const u32 n = static_cast<u32>(state.range(0));
  std::vector<u32> a(n), b(n);
  std::iota(a.begin(), a.end(), 0u);
  std::iota(b.begin(), b.end(), 1u);
  for (auto _ : state) {
    runtime::FpgaSystem sys(runtime::Epxa1Config());
    auto run = runtime::RunVecAddVim(sys, a, b);
    VCOP_CHECK(run.ok());
    benchmark::DoNotOptimize(run.value().report.total);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullVecAddExecution)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vcop

BENCHMARK_MAIN();
