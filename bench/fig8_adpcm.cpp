// Reproduces Figure 8: "Measurements on adpcmdecode kernel. A software
// implementation, and hardware VIM-based implementation (the
// coprocessor and the IMU)."
//
// Sweeps the paper's input sizes (2/4/8 KB) on the EPXA1 platform,
// printing the same stacked decomposition as the figure — SW (IMU) =
// OS time managing the IMU, SW (DP) = OS time managing the dual-port
// RAM, HW = coprocessor + IMU time — plus the speedup over pure
// software. Paper speedups: 1.5x / 1.5x / 1.6x, faults from 4 KB on.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf(
      "== Figure 8: adpcmdecode, pure SW vs VIM-based coprocessor "
      "(EPXA1, CP+IMU @40 MHz) ==\n\n");

  Table table({"input", "SW ms", "VIM total ms", "HW ms", "SW(DP) ms",
               "SW(IMU) ms", "invoke ms", "faults", "speedup",
               "paper speedup"});
  table.set_title("execution time vs input size (output = 4x input)");

  const os::KernelConfig config = runtime::Epxa1Config();
  const char* paper_speedup[] = {"1.5x", "1.5x", "1.6x"};
  int i = 0;
  for (const usize bytes : {2048u, 4096u, 8192u}) {
    const bench::Point p = bench::RunAdpcmPoint(config, bytes);
    table.AddRow({bench::SizeLabel(bytes), runtime::Ms(p.sw),
                  runtime::Ms(p.vim.total), runtime::Ms(p.vim.t_hw),
                  runtime::Ms(p.vim.t_dp), runtime::Ms(p.vim.t_imu),
                  runtime::Ms(p.vim.t_invoke),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        p.vim.vim.faults)),
                  runtime::Speedup(p.sw, p.vim.total), paper_speedup[i++]});
  }
  table.Print();

  std::printf(
      "\nShape checks vs the paper:\n"
      " * 2 KB input (1 input page + 4 output pages) fits the 16 KB "
      "DP-RAM:\n   only compulsory faults, no evictions; faults/evictions "
      "appear from 4 KB on.\n"
      " * VIM-based version wins at every size with a modest (~1.5x) "
      "speedup.\n"
      " * The dominant overhead component is SW (DP), as §4.1 notes.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
