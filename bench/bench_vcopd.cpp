// Benchmarks the vcopd service daemon: multi-tenant throughput and
// tail latency under the two service policies, and the ASID-tagged TLB
// against the flush-on-switch baseline. Three scenarios, each gated on
// a deterministic property and written to BENCH_vcopd.json for CI:
//
//   mixed-8   8 tenants (adpcm / IDEA / vecadd) x 3 jobs each under
//             fair share; every output byte-identical to the software
//             reference despite preemptive time-multiplexing.
//   fairness  a saturating large tenant vs a small interactive tenant;
//             fair share must bound the small tenant's p99 turnaround
//             below the FIFO-batch figure.
//   asid      two contended streaming tenants, tagged vs untagged TLB:
//             tagging avoids full flushes entirely and must not be
//             slower end to end.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/latency_histogram.h"
#include "bench/common.h"
#include "sim/fleet.h"
#include "cp/adpcm_cp.h"
#include "cp/idea_cp.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/vcopd.h"

namespace vcop {
namespace {

using bench::kWorkloadSeed;
using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

enum class App : u8 { kAdpcm, kIdea, kVecAdd };

const char* AppName(App app) {
  switch (app) {
    case App::kAdpcm: return "adpcm";
    case App::kIdea: return "idea";
    case App::kVecAdd: return "vecadd";
  }
  return "?";
}

struct TenantSpec {
  App app = App::kVecAdd;
  std::string name;
  u32 weight = 1;
  usize input_bytes = 0;
  u32 jobs = 1;
};

/// One registered tenant with staged buffers, its software-reference
/// expectation, and the turnaround samples collected at completion.
struct TenantRun {
  TenantSpec spec;
  os::TenantId id = 0;
  std::vector<Picoseconds> turnarounds;
  u32 completed = 0;
  u32 preemptions = 0;
  bool outputs_exact = true;

  // App-specific staging (only the members for spec.app are live).
  HostBuffer<u8> in_u8;
  HostBuffer<i16> out_i16;
  HostBuffer<u8> out_u8;
  HostBuffer<u16> key_u16;
  HostBuffer<u32> a_u32, b_u32, c_u32;
  std::vector<i16> expect_i16;
  std::vector<u8> expect_u8;
  std::vector<u32> expect_u32;

  /// Submits one job; the completion callback checks bytes and samples
  /// the turnaround. (Jobs of one tenant run sequentially, so checking
  /// the shared output buffer at the completion instant is race-free.)
  Status SubmitOne(os::Vcopd& daemon) {
    VcopdClient client(daemon, id);
    auto on_complete = [this](const os::JobResult& r) {
      turnarounds.push_back(r.turnaround());
      preemptions += r.preemptions;
      ++completed;
      if (!r.status.ok()) {
        outputs_exact = false;
        return;
      }
      switch (spec.app) {
        case App::kAdpcm:
          outputs_exact &= out_i16.ToVector() == expect_i16;
          break;
        case App::kIdea:
          outputs_exact &= out_u8.ToVector() == expect_u8;
          break;
        case App::kVecAdd:
          outputs_exact &= c_u32.ToVector() == expect_u32;
          break;
      }
    };
    const u32 n = static_cast<u32>(spec.input_bytes);
    switch (spec.app) {
      case App::kAdpcm:
        return client
            .Submit(cp::AdpcmDecodeBitstream(), {n, 0u, 0u}, on_complete)
            .status();
      case App::kIdea:
        return client
            .Submit(cp::IdeaBitstream(),
                    {n / 8, cp::IdeaCoprocessor::kModeEcb, 0u, 0u},
                    on_complete)
            .status();
      case App::kVecAdd:
        return client
            .Submit(cp::VecAddBitstream(),
                    {n / static_cast<u32>(sizeof(u32))}, on_complete)
            .status();
    }
    return InternalError("unreachable");
  }
};

TenantRun Stage(FpgaSystem& sys, os::Vcopd& daemon, const TenantSpec& spec,
                u64 seed) {
  TenantRun run;
  run.spec = spec;
  run.id = daemon.RegisterTenant(spec.name, spec.weight).value();
  VcopdClient client(daemon, run.id);
  const u32 bytes = static_cast<u32>(spec.input_bytes);
  switch (spec.app) {
    case App::kAdpcm: {
      bench::StagedAdpcm s = bench::StageAdpcmTenant(sys, client, bytes, seed);
      run.in_u8 = s.in;
      run.out_i16 = s.out;
      run.expect_i16 = std::move(s.expect);
      break;
    }
    case App::kIdea: {
      bench::StagedIdea s = bench::StageIdeaTenant(sys, client, bytes, seed);
      run.in_u8 = s.in;
      run.out_u8 = s.out;
      run.key_u16 = s.key;
      run.expect_u8 = std::move(s.expect);
      break;
    }
    case App::kVecAdd: {
      const u32 n = bytes / static_cast<u32>(sizeof(u32));
      std::vector<u32> a(n), b(n);
      for (u32 i = 0; i < n; ++i) {
        a[i] = static_cast<u32>(seed) * 1000003u + i;
        b[i] = static_cast<u32>(seed) * 7919u + 3u * i;
      }
      run.a_u32 = sys.Allocate<u32>(n).value();
      run.b_u32 = sys.Allocate<u32>(n).value();
      run.c_u32 = sys.Allocate<u32>(n).value();
      run.a_u32.Fill(a);
      run.b_u32.Fill(b);
      run.expect_u32.resize(n);
      for (u32 i = 0; i < n; ++i) run.expect_u32[i] = a[i] + b[i];
      VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjA, run.a_u32,
                            os::Direction::kIn).ok());
      VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjB, run.b_u32,
                            os::Direction::kIn).ok());
      VCOP_CHECK(client.Map(cp::VecAddCoprocessor::kObjC, run.c_u32,
                            os::Direction::kOut).ok());
      break;
    }
  }
  return run;
}

/// Result of driving one fleet of tenants to completion.
struct FleetResult {
  std::vector<TenantRun> tenants;
  os::VcopdStats stats;
  os::VimServiceStats service;
  Picoseconds makespan = 0;
  bool outputs_exact = true;

  u64 jobs() const {
    u64 n = 0;
    for (const TenantRun& t : tenants) n += t.completed;
    return n;
  }
  /// Completed jobs per simulated millisecond.
  double throughput() const {
    const double ms = static_cast<double>(makespan) / 1e9;
    return ms > 0.0 ? static_cast<double>(jobs()) / ms : 0.0;
  }
};

/// Stages every tenant, submits round-robin (interleaved tickets so
/// FIFO order genuinely mixes tenants), and drives the daemon to idle.
FleetResult RunFleet(const std::vector<TenantSpec>& specs,
                     const os::VcopdConfig& config) {
  FpgaSystem sys(runtime::Epxa1Config());
  os::Vcopd daemon(sys.kernel(), config);
  sys.kernel().vim().ResetServiceStats();

  FleetResult result;
  u64 seed = kWorkloadSeed;
  for (const TenantSpec& spec : specs) {
    result.tenants.push_back(Stage(sys, daemon, spec, seed++));
  }
  u32 remaining = 0;
  for (const TenantSpec& spec : specs) remaining += spec.jobs;
  for (u32 round = 0; remaining > 0; ++round) {
    for (TenantRun& tenant : result.tenants) {
      if (round >= tenant.spec.jobs) continue;
      VCOP_CHECK_MSG(tenant.SubmitOne(daemon).ok(), "submit failed");
      --remaining;
    }
  }
  const Status status = daemon.RunUntilIdle();
  VCOP_CHECK_MSG(status.ok(), status.ToString());

  result.stats = daemon.stats();
  result.service = sys.kernel().vim().service_stats();
  result.makespan = daemon.BuildScheduleReport().makespan;
  for (const TenantRun& tenant : result.tenants) {
    result.outputs_exact &= tenant.outputs_exact &&
                            tenant.completed == tenant.spec.jobs;
  }
  return result;
}

void PrintFleetTable(const char* title, const FleetResult& fleet) {
  Table table({"tenant", "app", "w", "input", "jobs", "preempt", "p50 us",
               "p99 us", "exact"});
  table.set_title(title);
  for (const TenantRun& t : fleet.tenants) {
    table.AddRow(
        {t.spec.name, AppName(t.spec.app), StrFormat("%u", t.spec.weight),
         bench::SizeLabel(t.spec.input_bytes), StrFormat("%u", t.completed),
         StrFormat("%u", t.preemptions),
         StrFormat("%.1f", ToMicroseconds(PercentileNearestRank(t.turnarounds, 0.5))),
         StrFormat("%.1f", ToMicroseconds(PercentileNearestRank(t.turnarounds, 0.99))),
         t.outputs_exact ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "  makespan %.1f us, %.2f jobs/sim-ms, %llu dispatches, "
      "%llu preemptions, %llu reconfigs (%.1f us config time)\n\n",
      ToMicroseconds(fleet.makespan), fleet.throughput(),
      static_cast<unsigned long long>(fleet.stats.dispatches),
      static_cast<unsigned long long>(fleet.stats.preemptions),
      static_cast<unsigned long long>(fleet.stats.reconfigurations),
      ToMicroseconds(fleet.stats.total_config_time));
}

void JsonTenants(std::FILE* f, const FleetResult& fleet) {
  std::fprintf(f, "[");
  for (usize i = 0; i < fleet.tenants.size(); ++i) {
    const TenantRun& t = fleet.tenants[i];
    std::fprintf(
        f,
        "%s\n      {\"tenant\": \"%s\", \"app\": \"%s\", \"weight\": %u, "
        "\"input_bytes\": %zu, \"jobs\": %u, \"preemptions\": %u, "
        "\"p50_turnaround_us\": %.3f, \"p99_turnaround_us\": %.3f, "
        "\"outputs_exact\": %s}",
        i == 0 ? "" : ",", t.spec.name.c_str(), AppName(t.spec.app),
        t.spec.weight, t.spec.input_bytes, t.completed, t.preemptions,
        ToMicroseconds(PercentileNearestRank(t.turnarounds, 0.5)),
        ToMicroseconds(PercentileNearestRank(t.turnarounds, 0.99)),
        t.outputs_exact ? "true" : "false");
  }
  std::fprintf(f, "\n    ]");
}

int Main() {
  std::printf(
      "== vcopd service daemon: multi-tenant throughput, fairness, and "
      "ASID-tagged TLB ==\n\n");
  int rc = 0;

  // ----- scenario 1: 8 mixed tenants, fair share, tagged -----
  std::vector<TenantSpec> mixed;
  for (u32 i = 0; i < 3; ++i) {
    mixed.push_back({App::kAdpcm, StrFormat("adpcm-%u", i), 1,
                     (4u + 2 * i) * 1024, 3});
  }
  for (u32 i = 0; i < 3; ++i) {
    mixed.push_back({App::kIdea, StrFormat("idea-%u", i), 1,
                     (8u + 4 * i) * 1024, 3});
  }
  for (u32 i = 0; i < 2; ++i) {
    mixed.push_back({App::kVecAdd, StrFormat("vecadd-%u", i), 1, 2048, 3});
  }
  os::VcopdConfig fair;
  fair.policy = os::ServicePolicy::kFairShare;
  fair.time_slice = 100ull * 1000 * 1000;  // 100 us: forces preemption
  const FleetResult mixed8 = RunFleet(mixed, fair);
  PrintFleetTable("mixed-8: fair share, ASID-tagged TLB", mixed8);
  if (!mixed8.outputs_exact) {
    std::printf("FAIL: mixed-8 outputs diverged from software reference\n");
    rc = 1;
  }
  if (mixed8.stats.preemptions == 0) {
    std::printf("FAIL: mixed-8 never preempted (slice too generous?)\n");
    rc = 1;
  }

  // ----- scenario 2: saturating tenant vs small tenant, both policies --
  // Both tenants use the same design so the experiment isolates the
  // scheduling policy from reconfiguration cost (under mixed designs
  // the config ping-pong dominates either policy — scenario 1 shows
  // that cost explicitly). Submissions are interleaved, but each large
  // job runs far longer than a small one: under FIFO every small job
  // waits behind a large job per round, while fair share preempts the
  // large jobs at fault boundaries and must bound the small p99.
  const std::vector<TenantSpec> contended = {
      {App::kAdpcm, "large", 1, 24 * 1024, 6},
      {App::kAdpcm, "small", 1, 512, 6},
  };
  os::VcopdConfig fifo;
  fifo.policy = os::ServicePolicy::kFifoBatch;
  // The two policies are independent simulations of the same tenant
  // spec — run them side by side on the fleet runner.
  const std::vector<FleetResult> policy_runs = sim::FleetMap<FleetResult>(
      2, [&](usize i) { return RunFleet(contended, i == 0 ? fair : fifo); });
  const FleetResult& under_fair = policy_runs[0];
  const FleetResult& under_fifo = policy_runs[1];
  PrintFleetTable("fairness: fair share", under_fair);
  PrintFleetTable("fairness: FIFO + bit-stream batching", under_fifo);
  const Picoseconds small_fair =
      PercentileNearestRank(under_fair.tenants[1].turnarounds, 0.99);
  const Picoseconds small_fifo =
      PercentileNearestRank(under_fifo.tenants[1].turnarounds, 0.99);
  std::printf(
      "  small-tenant p99: %.1f us (fair share) vs %.1f us (FIFO) — "
      "%.2fx better\n\n",
      ToMicroseconds(small_fair), ToMicroseconds(small_fifo),
      small_fair > 0
          ? static_cast<double>(small_fifo) / static_cast<double>(small_fair)
          : 0.0);
  if (!under_fair.outputs_exact || !under_fifo.outputs_exact) {
    std::printf("FAIL: fairness outputs diverged\n");
    rc = 1;
  }
  if (small_fair >= small_fifo) {
    std::printf(
        "FAIL: fair share did not improve the small tenant's p99\n");
    rc = 1;
  }

  // ----- scenario 3: ASID tagging vs flush-on-switch -----
  const std::vector<TenantSpec> streaming = {
      {App::kAdpcm, "stream-a", 1, 12 * 1024, 2},
      {App::kAdpcm, "stream-b", 1, 12 * 1024, 2},
  };
  os::VcopdConfig tagged = fair;
  tagged.time_slice = 50ull * 1000 * 1000;  // many switches
  os::VcopdConfig untagged = tagged;
  untagged.asid_tagging = false;
  const std::vector<FleetResult> tag_runs = sim::FleetMap<FleetResult>(
      2,
      [&](usize i) { return RunFleet(streaming, i == 0 ? tagged : untagged); });
  const FleetResult& with_tags = tag_runs[0];
  const FleetResult& no_tags = tag_runs[1];
  PrintFleetTable("asid: tagged TLB", with_tags);
  PrintFleetTable("asid: flush-on-switch baseline", no_tags);
  std::printf(
      "  tagged:   %llu full flushes, %llu avoided, %llu entries restored, "
      "%llu eager write-backs\n"
      "  untagged: %llu full flushes, %llu avoided\n"
      "  makespan: %.1f us tagged vs %.1f us untagged\n\n",
      static_cast<unsigned long long>(with_tags.service.full_tlb_flushes),
      static_cast<unsigned long long>(with_tags.service.tlb_flushes_avoided),
      static_cast<unsigned long long>(with_tags.service.tlb_entries_restored),
      static_cast<unsigned long long>(
          with_tags.service.pages_written_back_on_save),
      static_cast<unsigned long long>(no_tags.service.full_tlb_flushes),
      static_cast<unsigned long long>(no_tags.service.tlb_flushes_avoided),
      ToMicroseconds(with_tags.makespan), ToMicroseconds(no_tags.makespan));
  if (!with_tags.outputs_exact || !no_tags.outputs_exact) {
    std::printf("FAIL: asid outputs diverged\n");
    rc = 1;
  }
  if (with_tags.service.tlb_flushes_avoided == 0 ||
      with_tags.service.full_tlb_flushes != 0) {
    std::printf("FAIL: tagging did not eliminate full flushes\n");
    rc = 1;
  }
  if (no_tags.service.full_tlb_flushes == 0) {
    std::printf("FAIL: untagged baseline never fully flushed\n");
    rc = 1;
  }
  if (with_tags.makespan > no_tags.makespan) {
    std::printf("FAIL: tagged TLB slower end to end than flush-on-switch\n");
    rc = 1;
  }

  // ----- JSON -----
  std::FILE* f = std::fopen("BENCH_vcopd.json", "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_vcopd.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"vcopd\",\n");
  std::fprintf(
      f,
      "  \"mixed8\": {\n    \"policy\": \"fair_share\", "
      "\"makespan_us\": %.3f, \"jobs_per_sim_ms\": %.3f, "
      "\"preemptions\": %llu, \"reconfigurations\": %llu, "
      "\"config_time_us\": %.3f, \"config_share\": %.4f, "
      "\"outputs_exact\": %s,\n    \"tenants\": ",
      ToMicroseconds(mixed8.makespan), mixed8.throughput(),
      static_cast<unsigned long long>(mixed8.stats.preemptions),
      static_cast<unsigned long long>(mixed8.stats.reconfigurations),
      ToMicroseconds(mixed8.stats.total_config_time),
      mixed8.makespan > 0
          ? static_cast<double>(mixed8.stats.total_config_time) /
                static_cast<double>(mixed8.makespan)
          : 0.0,
      mixed8.outputs_exact ? "true" : "false");
  JsonTenants(f, mixed8);
  std::fprintf(f, "\n  },\n");
  std::fprintf(
      f,
      "  \"fairness\": {\n    \"small_p99_us_fair\": %.3f, "
      "\"small_p99_us_fifo\": %.3f, \"improvement\": %.3f,\n"
      "    \"fair_tenants\": ",
      ToMicroseconds(small_fair), ToMicroseconds(small_fifo),
      small_fair > 0
          ? static_cast<double>(small_fifo) / static_cast<double>(small_fair)
          : 0.0);
  JsonTenants(f, under_fair);
  std::fprintf(f, ",\n    \"fifo_tenants\": ");
  JsonTenants(f, under_fifo);
  std::fprintf(f, "\n  },\n");
  std::fprintf(
      f,
      "  \"asid\": {\n    \"tagged\": {\"makespan_us\": %.3f, "
      "\"full_tlb_flushes\": %llu, \"tlb_flushes_avoided\": %llu, "
      "\"tlb_entries_restored\": %llu, \"pages_written_back_on_save\": "
      "%llu},\n    \"untagged\": {\"makespan_us\": %.3f, "
      "\"full_tlb_flushes\": %llu, \"tlb_flushes_avoided\": %llu}\n  }\n",
      ToMicroseconds(with_tags.makespan),
      static_cast<unsigned long long>(with_tags.service.full_tlb_flushes),
      static_cast<unsigned long long>(with_tags.service.tlb_flushes_avoided),
      static_cast<unsigned long long>(with_tags.service.tlb_entries_restored),
      static_cast<unsigned long long>(
          with_tags.service.pages_written_back_on_save),
      ToMicroseconds(no_tags.makespan),
      static_cast<unsigned long long>(no_tags.service.full_tlb_flushes),
      static_cast<unsigned long long>(no_tags.service.tlb_flushes_avoided));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_vcopd.json\n");
  return rc;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
