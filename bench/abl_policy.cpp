// Ablation E7a — replacement policies (§3.3): "When no page is
// available for allocation, several replacement policies are possible
// (e.g., first-in first-out, least recently used, random)."
//
// Compares FIFO / LRU / random on the two streaming kernels and on the
// gather stressor (random permutation: data-dependent page reuse, where
// the policies actually separate).
#include <cstdio>
#include <numeric>

#include "bench/common.h"
#include "base/rng.h"

namespace vcop {
namespace {

struct PolicyNumbers {
  u64 faults = 0;
  u64 evictions = 0;
  Picoseconds total = 0;
};

PolicyNumbers RunGather(os::PolicyKind policy, u32 elements, u64 seed) {
  Rng rng(seed);
  std::vector<u32> in(elements);
  for (u32& v : in) v = static_cast<u32>(rng.Next());
  std::vector<u32> perm(elements);
  std::iota(perm.begin(), perm.end(), 0u);
  for (u32 i = elements - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
  }
  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.policy = policy;
  config.vim.seed = seed;
  runtime::FpgaSystem sys(config);
  auto run = runtime::RunGatherVim(sys, in, perm);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  for (u32 i = 0; i < elements; ++i) {
    VCOP_CHECK(run.value().output[i] == in[perm[i]]);
  }
  return PolicyNumbers{run.value().report.vim.faults,
                       run.value().report.vim.evictions,
                       run.value().report.total};
}

int Main() {
  std::printf("== Ablation: page replacement policies (Section 3.3) ==\n\n");

  constexpr os::PolicyKind kPolicies[] = {
      os::PolicyKind::kFifo, os::PolicyKind::kLru, os::PolicyKind::kRandom};

  {
    Table table({"workload", "policy", "faults", "evictions", "total ms"});
    table.set_title(
        "streaming kernels (sequential access: policies nearly tie)");
    for (const os::PolicyKind policy : kPolicies) {
      os::KernelConfig config = runtime::Epxa1Config();
      config.vim.policy = policy;
      const bench::Point a = bench::RunAdpcmPoint(config, 8192);
      table.AddRow({"adpcmdecode 8KB", std::string(ToString(policy)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          a.vim.vim.faults)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          a.vim.vim.evictions)),
                    runtime::Ms(a.vim.total)});
    }
    for (const os::PolicyKind policy : kPolicies) {
      os::KernelConfig config = runtime::Epxa1Config();
      config.vim.policy = policy;
      const bench::Point p = bench::RunIdeaPoint(config, 32768);
      table.AddRow({"IDEA 32KB", std::string(ToString(policy)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.faults)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.evictions)),
                    runtime::Ms(p.vim.total)});
    }
    table.Print();
  }

  std::printf("\n");
  {
    Table table({"workload", "policy", "faults", "evictions", "total ms"});
    table.set_title(
        "gather stressor (random permutation over 3x dataset vs DP-RAM)");
    for (const u32 elements : {4096u, 8192u}) {
      for (const os::PolicyKind policy : kPolicies) {
        const PolicyNumbers n = RunGather(policy, elements, 7);
        table.AddRow(
            {StrFormat("gather %u KB", elements * 4 / 1024),
             std::string(ToString(policy)),
             StrFormat("%llu", static_cast<unsigned long long>(n.faults)),
             StrFormat("%llu",
                       static_cast<unsigned long long>(n.evictions)),
             runtime::Ms(n.total)});
      }
    }
    table.Print();
  }

  std::printf(
      "\nSequential kernels barely distinguish the policies (every page "
      "is used\nonce or twice); the data-dependent gather pattern "
      "separates them —\nmotivating §3.3's 'several replacement policies "
      "are possible' and the\noptimisation hints passed through "
      "FPGA_MAP_OBJECT flags.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
