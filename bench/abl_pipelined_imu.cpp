// Ablation E5 — the paper's announced follow-up (§4.1): "we are now
// working on a pipelined implementation of the IMU which is expected to
// mask almost completely the translation overhead."
//
// Runs both applications at every Figure-8/9 size with the 4-cycle IMU
// and with the pipelined IMU, reporting hardware time, total time and
// the recovered speedup.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf(
      "== Ablation: 4-cycle IMU vs pipelined IMU (paper's future work, "
      "Section 4.1) ==\n\n");

  struct Mode {
    const char* name;
    bool pipelined;
    bool posted;
  };
  constexpr Mode kModes[] = {
      {"4-cycle (paper)", false, false},
      {"posted writes", false, true},
      {"pipelined", true, false},
      {"pipelined+posted", true, true},
  };

  Table table({"app", "input", "IMU mode", "HW ms", "total ms",
               "speedup"});
  table.set_title("IMU translation-path microarchitecture");

  auto add = [&](const char* app, const std::vector<usize>& sizes,
                 auto&& runner) {
    for (const usize bytes : sizes) {
      for (const Mode& mode : kModes) {
        os::KernelConfig config = runtime::Epxa1Config();
        config.imu_pipelined = mode.pipelined;
        config.imu_posted_writes = mode.posted;
        const bench::Point p = runner(config, bytes);
        table.AddRow({app, bench::SizeLabel(bytes), mode.name,
                      runtime::Ms(p.vim.t_hw), runtime::Ms(p.vim.total),
                      runtime::Speedup(p.sw, p.vim.total)});
      }
    }
  };
  add("adpcmdecode", {2048u, 8192u}, bench::RunAdpcmPoint);
  add("IDEA", {8192u, 32768u}, bench::RunIdeaPoint);
  table.Print();

  std::printf(
      "\nExpectation from the paper: pipelining masks the translation\n"
      "overhead almost completely — the pipelined HW column approaches "
      "the\nnormal coprocessor's hardware time (Figure 9 bench), and the "
      "residual\ngap to software shrinks to the DP/IMU management "
      "costs.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
