// Ablation: what does programmability cost?
//
// The same C[i] = A[i] + B[i] kernel three ways — the hand-written FSM
// (Figure 5), hand-written microcode on the sequencer core, and the
// expression-compiler's output — plus the sequencer's synthesis
// estimate. The microcoded core spends extra cycles on loop control
// (branch, index increment, jump) that a dedicated FSM folds into its
// states; the IMU, VIM and application code are identical.
#include <cstdio>

#include "bench/common.h"
#include "cp/registry.h"
#include "ucode/assembler.h"
#include "ucode/compiler.h"
#include "ucode/estimator.h"

namespace vcop {
namespace {

constexpr const char* kHandWrittenSource = R"(
        param  r7, 0
        loadi  r0, 0
loop:   bge    r0, r7, done
        read   r1, obj0[r0]
        read   r2, obj1[r0]
        add    r3, r1, r2
        write  obj2[r0], r3
        addi   r0, r0, 1
        jmp    loop
done:   halt
)";

struct Row {
  std::string variant;
  u32 logic_elements;
  os::ExecutionReport report;
};

Row RunVariant(const std::string& variant, const hw::Bitstream& bs,
               u32 n) {
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  VCOP_CHECK(sys.Load(bs).ok());
  auto a = sys.Allocate<u32>(n);
  auto b = sys.Allocate<u32>(n);
  auto c = sys.Allocate<u32>(n);
  VCOP_CHECK(a.ok() && b.ok() && c.ok());
  for (u32 i = 0; i < n; ++i) {
    a.value().view()[i] = i;
    b.value().view()[i] = 2 * i + 1;
  }
  VCOP_CHECK(sys.Map(0, a.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(1, b.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({n});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  for (u32 i = 0; i < n; ++i) {
    VCOP_CHECK(c.value().view()[i] == i + (2 * i + 1));
  }
  return Row{variant, bs.logic_elements, report.value()};
}

int Main() {
  std::printf(
      "== Ablation: hand FSM vs microcoded sequencer vs compiled kernel "
      "(vecadd, 8192 elements) ==\n\n");

  const u32 n = 8192;
  std::vector<Row> rows;

  rows.push_back(RunVariant("hand-written FSM", cp::VecAddBitstream(), n));

  auto assembled = ucode::Assemble(kHandWrittenSource, 1);
  VCOP_CHECK_MSG(assembled.ok(), assembled.status().ToString());
  auto asm_bs = ucode::SynthesiseBitstream(
      "vecadd-asm", std::move(assembled).value(), Frequency::MHz(40),
      4160);
  VCOP_CHECK_MSG(asm_bs.ok(), asm_bs.status().ToString());
  rows.push_back(RunVariant("hand-written microcode", asm_bs.value(), n));

  ucode::MapKernelSpec spec;
  spec.name = "vecadd-compiled";
  spec.output = 2;
  spec.body = ucode::Expr::Input(0) + ucode::Expr::Input(1);
  auto compiled = ucode::CompileMapKernel(spec);
  VCOP_CHECK_MSG(compiled.ok(), compiled.status().ToString());
  auto cc_bs = ucode::SynthesiseBitstream(
      "vecadd-compiled", compiled.value(), Frequency::MHz(40), 4160);
  VCOP_CHECK_MSG(cc_bs.ok(), cc_bs.status().ToString());
  rows.push_back(RunVariant("compiled expression", cc_bs.value(), n));

  Table table({"variant", "LEs", "active CP cycles", "HW ms", "total ms",
               "active cycles/elem", "vs FSM"});
  table.set_title("same kernel, three authoring levels (40 MHz core)");
  const double fsm_total =
      static_cast<double>(rows[0].report.total);
  for (const Row& row : rows) {
    table.AddRow(
        {row.variant, StrFormat("%u", row.logic_elements),
         StrFormat("%llu",
                   static_cast<unsigned long long>(row.report.cp_cycles)),
         runtime::Ms(row.report.t_hw), runtime::Ms(row.report.total),
         StrFormat("%.1f", static_cast<double>(row.report.cp_cycles) / n),
         StrFormat("%.2fx", static_cast<double>(row.report.total) /
                                fsm_total)});
  }
  table.Print();

  std::printf(
      "\nThe sequencer pays ~4 extra active cycles per element for loop control "
      "the FSM\ngets for free, and a few hundred LEs for its generality. "
      "The compiled\nkernel matches hand-written microcode — the "
      "expression compiler's loop\nskeleton is the same code a human "
      "writes. That is the paper's §2 toolchain\n(OS + compiler + "
      "synthesiser) trading a bounded cost for zero-HDL authoring.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
