// Ablation E9 — IMU design space (§3.2): TLB entry count and page size.
//
// The EPXA1 system pairs an 8-entry TLB with eight 2 KB pages (one
// entry per frame). This bench separates the two dimensions:
//   * fewer TLB entries than frames -> soft refills (the page is
//     resident but its translation fell out of the CAM),
//   * page size trades fault count against per-fault transfer size.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf("== Ablation: TLB entries and page size (IMU design space) "
              "==\n\n");

  {
    Table table({"TLB entries", "faults", "TLB refills", "SW(IMU) ms",
                 "total ms"});
    table.set_title(
        "adpcmdecode 8 KB, 8 x 2 KB frames, varying CAM size");
    for (const u32 entries : {2u, 3u, 4u, 8u, 16u}) {
      os::KernelConfig config = runtime::Epxa1Config();
      config.tlb_entries = entries;
      const bench::Point p = bench::RunAdpcmPoint(config, 8192);
      table.AddRow({StrFormat("%u", entries),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.faults)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.tlb_refills)),
                    runtime::Ms(p.vim.t_imu), runtime::Ms(p.vim.total)});
    }
    table.Print();
  }

  std::printf("\n");
  {
    Table table({"page size", "frames", "faults", "bytes moved",
                 "SW(DP) ms", "total ms"});
    table.set_title("IDEA 32 KB, 16 KB DP-RAM, varying page size");
    for (const u32 page : {512u, 1024u, 2048u, 4096u, 8192u}) {
      os::KernelConfig config = runtime::Epxa1Config();
      config.page_bytes = page;
      // Keep the total interface memory fixed at 16 KB.
      config.tlb_entries = std::max(8u, config.dp_ram_bytes / page);
      const bench::Point p = bench::RunIdeaPoint(config, 32768);
      table.AddRow(
          {StrFormat("%u B", page),
           StrFormat("%u", config.dp_ram_bytes / page),
           StrFormat("%llu",
                     static_cast<unsigned long long>(p.vim.vim.faults)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 p.vim.vim.bytes_loaded +
                                 p.vim.vim.bytes_written_back)),
           runtime::Ms(p.vim.t_dp), runtime::Ms(p.vim.total)});
    }
    table.Print();
  }

  std::printf("\n");
  {
    // Flexible memory (DESIGN.md §14): the page size becomes per-object
    // and the CAM splits into a 2-entry micro-TLB over a shared L2 at
    // the same 8-entry budget. Only the streaming in/out objects (ids
    // 0 and 1) take the override; the key object keeps the granule.
    Table table({"object pages", "TLB layout", "faults", "TLB refills",
                 "total ms"});
    table.set_title(
        "IDEA 32 KB, per-object page size x TLB hierarchy, 8-entry budget");
    for (const u32 page : {2048u, 4096u, 8192u}) {
      for (const bool hierarchy : {false, true}) {
        os::KernelConfig config = runtime::Epxa1Config();
        config.object_page_bytes[0] = page;
        config.object_page_bytes[1] = page;
        if (hierarchy) {
          config.l1_tlb_entries = 2;
          config.l2_tlb_entries = 6;
        }
        const bench::Point p = bench::RunIdeaPoint(config, 32768);
        table.AddRow(
            {StrFormat("%u B", page), hierarchy ? "L1(2)+L2(6)" : "CAM(8)",
             StrFormat("%llu",
                       static_cast<unsigned long long>(p.vim.vim.faults)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   p.vim.vim.tlb_refills)),
             runtime::Ms(p.vim.total)});
      }
    }
    table.Print();
  }

  std::printf(
      "\nObservations:\n"
      " * a CAM smaller than the frame count converts some hard faults "
      "into\n   cheap TLB refills but pays one interrupt per refill — the "
      "EPXA1's\n   one-entry-per-frame choice avoids refills entirely.\n"
      " * smaller pages mean more faults but the same data volume; "
      "per-fault\n   fixed costs (interrupt, decode, burst setup) favour "
      "the 2 KB point\n   for these streaming kernels.\n"
      " * per-object 4 KB superpages on the streaming buffers halve the "
      "fault\n   count without shrinking the small objects' residency, and "
      "the L1/L2\n   split holds the fault count at the single-CAM level "
      "while its\n   micro-TLB misses are absorbed by hardware L2 fills "
      "instead of\n   interrupts. 8 KB pages overshoot: two 4-frame spans "
      "plus the key and\n   parameter pages exceed the eight frames and the "
      "working set thrashes\n   — the right page size is a per-object, "
      "per-working-set choice.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
