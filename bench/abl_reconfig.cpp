// Ablation E22 — reconfiguration-aware serving (DESIGN.md §15):
// configuration-cache slot count x design-affinity scheduling x lazy
// context write-back, over a design-alternating three-tenant fleet.
//
// The interesting regime is slots < distinct designs: the cache then
// behaves like a real cache (hits, misses, LRU evictions) instead of
// pinning every design. Affinity reorders the DRR ring toward resident
// designs; lazy write-back removes the save-time dirty sweep from
// every preemption.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "cp/adpcm_cp.h"
#include "cp/idea_cp.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "os/vcopd.h"

namespace vcop {
namespace {

using bench::kWorkloadSeed;
using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

constexpr u32 kBytes = 8 * 1024;
constexpr u32 kJobs = 4;

/// One point of the ablation grid: three tenants on three distinct
/// designs, interleaved submission, fair share with a 100 us slice.
struct Point {
  Picoseconds makespan = 0;
  u64 reconfigurations = 0;
  u64 slot_activations = 0;
  Picoseconds config_time = 0;
  u64 deferred = 0;
  bool exact = true;
};

Point Run(u32 config_slots, bool affinity, bool lazy) {
  os::KernelConfig kernel_config = runtime::Epxa1Config();
  kernel_config.config_slots = config_slots;
  kernel_config.vim.lazy_writeback = lazy;
  FpgaSystem sys(kernel_config);

  os::VcopdConfig config;
  config.policy = os::ServicePolicy::kFairShare;
  config.time_slice = 100ull * 1000 * 1000;
  config.design_affinity = affinity;
  os::Vcopd daemon(sys.kernel(), config);
  sys.kernel().vim().ResetServiceStats();

  Point point;

  // adpcm tenant.
  const os::TenantId adpcm_id = daemon.RegisterTenant("adpcm").value();
  VcopdClient adpcm_client(daemon, adpcm_id);
  bench::StagedAdpcm adpcm =
      bench::StageAdpcmTenant(sys, adpcm_client, kBytes, kWorkloadSeed);

  // IDEA tenant.
  const os::TenantId idea_id = daemon.RegisterTenant("idea").value();
  VcopdClient idea_client(daemon, idea_id);
  bench::StagedIdea idea =
      bench::StageIdeaTenant(sys, idea_client, kBytes, kWorkloadSeed + 1);

  // vecadd tenant.
  const os::TenantId vec_id = daemon.RegisterTenant("vecadd").value();
  VcopdClient vec_client(daemon, vec_id);
  const u32 n = kBytes / static_cast<u32>(sizeof(u32));
  std::vector<u32> a(n), b(n), expect(n);
  for (u32 i = 0; i < n; ++i) {
    a[i] = 1000003u * i + 7u;
    b[i] = 7919u * i + 3u;
    expect[i] = a[i] + b[i];
  }
  HostBuffer<u32> va = sys.Allocate<u32>(n).value();
  HostBuffer<u32> vb = sys.Allocate<u32>(n).value();
  HostBuffer<u32> vc = sys.Allocate<u32>(n).value();
  va.Fill(a);
  vb.Fill(b);
  VCOP_CHECK(vec_client.Map(cp::VecAddCoprocessor::kObjA, va,
                            os::Direction::kIn).ok());
  VCOP_CHECK(vec_client.Map(cp::VecAddCoprocessor::kObjB, vb,
                            os::Direction::kIn).ok());
  VCOP_CHECK(vec_client.Map(cp::VecAddCoprocessor::kObjC, vc,
                            os::Direction::kOut).ok());

  auto check = [&point](bool ok) { point.exact &= ok; };
  for (u32 round = 0; round < kJobs; ++round) {
    VCOP_CHECK(adpcm_client
                   .Submit(cp::AdpcmDecodeBitstream(), {kBytes, 0u, 0u},
                           [&, check](const os::JobResult& r) {
                             check(r.status.ok() &&
                                   adpcm.out.ToVector() == adpcm.expect);
                           })
                   .ok());
    VCOP_CHECK(idea_client
                   .Submit(cp::IdeaBitstream(),
                           {kBytes / 8, cp::IdeaCoprocessor::kModeEcb, 0u, 0u},
                           [&, check](const os::JobResult& r) {
                             check(r.status.ok() &&
                                   idea.out.ToVector() == idea.expect);
                           })
                   .ok());
    VCOP_CHECK(vec_client
                   .Submit(cp::VecAddBitstream(), {n},
                           [&, check, expect](const os::JobResult& r) {
                             check(r.status.ok() &&
                                   vc.ToVector() == expect);
                           })
                   .ok());
  }
  VCOP_CHECK(daemon.RunUntilIdle().ok());

  const os::VcopdStats& stats = daemon.stats();
  point.makespan = daemon.BuildScheduleReport().makespan;
  point.reconfigurations = stats.reconfigurations;
  point.slot_activations = stats.slot_activations;
  point.config_time = stats.total_config_time + stats.total_activation_time;
  point.deferred = sys.kernel().vim().service_stats().deferred_writebacks;
  return point;
}

int Main() {
  std::printf(
      "== Ablation: configuration slots x design affinity x lazy "
      "write-back ==\n\n");

  Table table({"slots", "affinity", "lazy", "makespan us", "reconf", "activ",
               "cfg us", "defer wb", "exact"});
  table.set_title(
      "3 tenants x 3 designs x 4 jobs, fair share, 100 us slice");
  for (const u32 slots : {1u, 2u, 3u}) {
    for (const bool affinity : {false, true}) {
      for (const bool lazy : {false, true}) {
        const Point p = Run(slots, affinity, lazy);
        table.AddRow({StrFormat("%u", slots), affinity ? "on" : "off",
                      lazy ? "on" : "off",
                      StrFormat("%.1f", ToMicroseconds(p.makespan)),
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            p.reconfigurations)),
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            p.slot_activations)),
                      StrFormat("%.1f", ToMicroseconds(p.config_time)),
                      StrFormat("%llu",
                                static_cast<unsigned long long>(p.deferred)),
                      p.exact ? "yes" : "NO"});
      }
    }
  }
  table.Print();
  std::printf(
      "\nslots=1 is the seed fabric: every design switch is a full "
      "reconfiguration.\nslots=3 pins all three designs after their first "
      "load; affinity then mostly\nrides the active design and lazy "
      "write-back settles dirty pages on demand.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
