// Ablation E8 — the portability claim of §4: "Using the module on the
// system with different size of the dual-port memory (e.g., the Altera
// devices EPXA4 and EPXA10) would require only recompiling the module.
// The user application would immediately benefit without need to
// recompile."
//
// Runs byte-identical application + coprocessor code on the three
// family presets; only the kernel configuration (the "module
// recompile") changes.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf(
      "== Ablation: same application code across the Excalibur family "
      "==\n\n");

  Table table({"platform", "DP-RAM", "pages", "app", "input", "faults",
               "evictions", "total ms", "speedup"});
  table.set_title("portability: only the platform preset changes");

  for (const os::KernelConfig& config :
       {runtime::Epxa1Config(), runtime::Epxa4Config(),
        runtime::Epxa10Config()}) {
    const std::string dp = StrFormat("%u KB", config.dp_ram_bytes / 1024);
    const std::string pages =
        StrFormat("%u x %u KB", config.dp_ram_bytes / config.page_bytes,
                  config.page_bytes / 1024);
    {
      const bench::Point p = bench::RunAdpcmPoint(config, 8192);
      table.AddRow({config.platform_name, dp, pages, "adpcmdecode", "8 KB",
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.faults)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.evictions)),
                    runtime::Ms(p.vim.total),
                    runtime::Speedup(p.sw, p.vim.total)});
    }
    {
      const bench::Point p = bench::RunIdeaPoint(config, 32768);
      table.AddRow({config.platform_name, dp, pages, "IDEA", "32 KB",
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.faults)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          p.vim.vim.evictions)),
                    runtime::Ms(p.vim.total),
                    runtime::Speedup(p.sw, p.vim.total)});
    }
  }
  table.Print();

  std::printf(
      "\nLarger interface memories absorb the working set: evictions "
      "vanish on\nEPXA4/EPXA10 and only compulsory faults remain, so the "
      "same binaries get\nfaster 'without need to recompile' the "
      "application (§4).\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
