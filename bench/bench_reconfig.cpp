// Benchmarks reconfiguration-aware serving (DESIGN.md §15): the
// multi-slot configuration cache, design-affinity fair share, and lazy
// context write-back, alone and combined, against the single-slot
// eager seed baseline. One design-alternating fleet (adpcm / IDEA /
// conv2d — three distinct bit-streams) is driven through six modes:
//
//   baseline  config_slots=1, affinity off, lazy off (seed behaviour)
//   explicit  same values set explicitly (defaults-inertness digest)
//   slots     config_slots=3: misses become slot activations
//   affinity  slots=3 + design-affinity DRR (bounded skip budget)
//   lazy      slots=1 + lazy context write-back (deferred dirty sweep)
//   combined  slots=3 + affinity + lazy
//
// Gates (rc=1 on failure), written to BENCH_reconfig.json for CI:
//   * every mode's outputs byte-identical to the software reference;
//   * the explicit run is bit-identical to the baseline (defaults are
//     inert);
//   * slots / combined pay strictly fewer full reconfigurations than
//     the baseline, and slot activations actually happen;
//   * affinity / combined hold fairness: Jain index over per-tenant
//     fabric time within kJainSlack of the baseline;
//   * lazy defers its save-time dirty sweep (zero eager write-backs on
//     save) and still settles every page (outputs stay exact);
//   * combined improves makespan over the baseline.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "cp/adpcm_cp.h"
#include "cp/idea_cp.h"
#include "apps/conv2d.h"
#include "cp/conv_cp.h"
#include "cp/registry.h"
#include "os/vcopd.h"
#include "sim/fleet.h"

namespace vcop {
namespace {

using bench::kWorkloadSeed;
using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

/// Fairness slack: toggling design affinity may not drop the Jain
/// index over per-tenant fabric time more than this below the
/// same-slot-count no-affinity run. (The slot cache itself shifts the
/// busy-time distribution — config time stops padding every slice — so
/// the affinity gate compares like for like, not against slots=1.)
constexpr double kJainSlack = 0.02;
/// Absolute fairness floor for every mode.
constexpr double kJainFloor = 0.85;

// Conv2d tenant geometry: width fixed, height = input_bytes / width.
constexpr u32 kConvWidth = 64;
constexpr u32 kConvShift = 3;  // box blur: sum 9, >> 3

enum class App : u8 { kAdpcm, kIdea, kConv };

struct TenantSpec {
  App app = App::kConv;
  std::string name;
  u32 weight = 1;
  usize input_bytes = 0;
  u32 jobs = 1;
};

struct TenantRun {
  TenantSpec spec;
  os::TenantId id = 0;
  std::vector<Picoseconds> turnarounds;
  u32 completed = 0;
  bool outputs_exact = true;

  HostBuffer<u8> in_u8;
  HostBuffer<i16> out_i16;
  HostBuffer<u8> out_u8;
  HostBuffer<u16> key_u16;
  HostBuffer<u32> coeffs_u32;
  std::vector<i16> expect_i16;
  std::vector<u8> expect_u8;

  Status SubmitOne(os::Vcopd& daemon) {
    VcopdClient client(daemon, id);
    auto on_complete = [this](const os::JobResult& r) {
      turnarounds.push_back(r.turnaround());
      ++completed;
      if (!r.status.ok()) {
        outputs_exact = false;
        return;
      }
      switch (spec.app) {
        case App::kAdpcm:
          outputs_exact &= out_i16.ToVector() == expect_i16;
          break;
        case App::kIdea:
          outputs_exact &= out_u8.ToVector() == expect_u8;
          break;
        case App::kConv:
          outputs_exact &= out_u8.ToVector() == expect_u8;
          break;
      }
    };
    const u32 n = static_cast<u32>(spec.input_bytes);
    switch (spec.app) {
      case App::kAdpcm:
        return client
            .Submit(cp::AdpcmDecodeBitstream(), {n, 0u, 0u}, on_complete)
            .status();
      case App::kIdea:
        return client
            .Submit(cp::IdeaBitstream(),
                    {n / 8, cp::IdeaCoprocessor::kModeEcb, 0u, 0u},
                    on_complete)
            .status();
      case App::kConv:
        return client
            .Submit(cp::Conv3x3Bitstream(),
                    {kConvWidth, n / kConvWidth, kConvShift}, on_complete)
            .status();
    }
    return InternalError("unreachable");
  }
};

TenantRun Stage(FpgaSystem& sys, os::Vcopd& daemon, const TenantSpec& spec,
                u64 seed) {
  TenantRun run;
  run.spec = spec;
  run.id = daemon.RegisterTenant(spec.name, spec.weight).value();
  VcopdClient client(daemon, run.id);
  const u32 bytes = static_cast<u32>(spec.input_bytes);
  switch (spec.app) {
    case App::kAdpcm: {
      bench::StagedAdpcm s = bench::StageAdpcmTenant(sys, client, bytes, seed);
      run.in_u8 = s.in;
      run.out_i16 = s.out;
      run.expect_i16 = std::move(s.expect);
      break;
    }
    case App::kIdea: {
      bench::StagedIdea s = bench::StageIdeaTenant(sys, client, bytes, seed);
      run.in_u8 = s.in;
      run.out_u8 = s.out;
      run.key_u16 = s.key;
      run.expect_u8 = std::move(s.expect);
      break;
    }
    case App::kConv: {
      const u32 height = bytes / kConvWidth;
      const std::vector<u8> image = apps::MakeTestImage(kConvWidth, height, seed);
      const apps::Conv3x3Kernel kernel = apps::BoxBlurKernel();
      run.expect_u8.resize(image.size());
      apps::Convolve3x3(image, kConvWidth, height, kernel, kConvShift,
                        run.expect_u8);
      run.in_u8 = sys.Allocate<u8>(static_cast<u32>(image.size())).value();
      run.in_u8.Fill(image);
      run.out_u8 = sys.Allocate<u8>(static_cast<u32>(image.size())).value();
      run.coeffs_u32 = sys.Allocate<u32>(9).value();
      {
        auto view = run.coeffs_u32.view();
        for (usize i = 0; i < 9; ++i) view[i] = static_cast<u32>(kernel[i]);
      }
      VCOP_CHECK(client.Map(cp::Conv3x3Coprocessor::kObjSrc, run.in_u8,
                            os::Direction::kIn).ok());
      VCOP_CHECK(client.Map(cp::Conv3x3Coprocessor::kObjDst, run.out_u8,
                            os::Direction::kOut).ok());
      VCOP_CHECK(client.Map(cp::Conv3x3Coprocessor::kObjKernel, run.coeffs_u32,
                            os::Direction::kIn).ok());
      break;
    }
  }
  return run;
}

// ----- modes -----

struct Mode {
  const char* name;
  u32 slots = 1;
  bool affinity = false;
  bool lazy = false;
  /// Defaults-inertness probe: route the seed values through the new
  /// platform keys instead of leaving the fields untouched.
  bool explicit_defaults = false;
};

struct FleetResult {
  std::vector<TenantRun> tenants;
  os::VcopdStats stats;
  os::VimServiceStats service;
  os::ScheduleReport report;
  bool outputs_exact = true;

  u64 jobs() const {
    u64 n = 0;
    for (const TenantRun& t : tenants) n += t.completed;
    return n;
  }
  /// Jain index over per-tenant fabric time (busy spans): 1.0 = every
  /// tenant held the PLD equally long.
  double jain() const {
    double sum = 0.0, sum_sq = 0.0;
    usize n = 0;
    for (const os::TenantFairness& t : report.per_pid()) {
      const double busy = static_cast<double>(t.busy);
      sum += busy;
      sum_sq += busy * busy;
      ++n;
    }
    return sum_sq > 0.0
               ? (sum * sum) / (static_cast<double>(n) * sum_sq)
               : 0.0;
  }
};

/// Stages every tenant, submits round-robin (interleaved tickets so
/// consecutive jobs alternate designs), and drives the daemon to idle.
FleetResult RunFleet(const std::vector<TenantSpec>& specs, const Mode& mode) {
  os::KernelConfig kernel_config = runtime::Epxa1Config();
  if (mode.slots != 1 || mode.explicit_defaults) {
    kernel_config.config_slots = mode.slots;
  }
  if (mode.lazy || mode.explicit_defaults) {
    kernel_config.vim.lazy_writeback = mode.lazy;
  }
  if (mode.explicit_defaults) kernel_config.design_affinity = mode.affinity;
  FpgaSystem sys(kernel_config);

  os::VcopdConfig config;
  config.policy = os::ServicePolicy::kFairShare;
  config.time_slice = 100ull * 1000 * 1000;  // 100 us: forces preemption
  config.design_affinity = mode.affinity;
  os::Vcopd daemon(sys.kernel(), config);
  sys.kernel().vim().ResetServiceStats();

  FleetResult result;
  u64 seed = kWorkloadSeed;
  for (const TenantSpec& spec : specs) {
    result.tenants.push_back(Stage(sys, daemon, spec, seed++));
  }
  u32 remaining = 0;
  for (const TenantSpec& spec : specs) remaining += spec.jobs;
  for (u32 round = 0; remaining > 0; ++round) {
    for (TenantRun& tenant : result.tenants) {
      if (round >= tenant.spec.jobs) continue;
      VCOP_CHECK_MSG(tenant.SubmitOne(daemon).ok(), "submit failed");
      --remaining;
    }
  }
  const Status status = daemon.RunUntilIdle();
  VCOP_CHECK_MSG(status.ok(), status.ToString());

  result.stats = daemon.stats();
  result.service = sys.kernel().vim().service_stats();
  result.report = daemon.BuildScheduleReport();
  for (const TenantRun& tenant : result.tenants) {
    result.outputs_exact &= tenant.outputs_exact &&
                            tenant.completed == tenant.spec.jobs;
  }
  return result;
}

void PrintModeRow(Table& table, const Mode& mode, const FleetResult& r) {
  table.AddRow(
      {mode.name, StrFormat("%u", mode.slots), mode.affinity ? "on" : "off",
       mode.lazy ? "on" : "off",
       StrFormat("%.1f", ToMicroseconds(r.report.makespan)),
       StrFormat("%llu", static_cast<unsigned long long>(
                             r.stats.reconfigurations)),
       StrFormat("%llu",
                 static_cast<unsigned long long>(r.stats.slot_activations)),
       StrFormat("%.1f", ToMicroseconds(r.stats.total_config_time)),
       StrFormat("%llu", static_cast<unsigned long long>(
                             r.service.pages_written_back_on_save)),
       StrFormat("%llu", static_cast<unsigned long long>(
                             r.service.deferred_writebacks)),
       StrFormat("%.3f", r.jain()), r.outputs_exact ? "yes" : "NO"});
}

void JsonMode(std::FILE* f, const char* key, const Mode& mode,
              const FleetResult& r, bool last) {
  const double makespan = static_cast<double>(r.report.makespan);
  std::fprintf(
      f,
      "  \"%s\": {\"config_slots\": %u, \"design_affinity\": %s, "
      "\"lazy_writeback\": %s,\n"
      "    \"makespan_us\": %.3f, \"jobs\": %llu, "
      "\"reconfigurations\": %llu, \"slot_activations\": %llu,\n"
      "    \"config_time_us\": %.3f, \"activation_time_us\": %.3f, "
      "\"config_share\": %.4f,\n"
      "    \"pages_written_back_on_save\": %llu, "
      "\"lazy_context_saves\": %llu, \"pages_writeback_deferred\": %llu, "
      "\"deferred_writebacks\": %llu,\n"
      "    \"jain\": %.4f, \"outputs_exact\": %s}%s\n",
      key, mode.slots, mode.affinity ? "true" : "false",
      mode.lazy ? "true" : "false", ToMicroseconds(r.report.makespan),
      static_cast<unsigned long long>(r.jobs()),
      static_cast<unsigned long long>(r.stats.reconfigurations),
      static_cast<unsigned long long>(r.stats.slot_activations),
      ToMicroseconds(r.stats.total_config_time),
      ToMicroseconds(r.stats.total_activation_time),
      makespan > 0
          ? static_cast<double>(r.stats.total_config_time +
                                r.stats.total_activation_time) /
                makespan
          : 0.0,
      static_cast<unsigned long long>(r.service.pages_written_back_on_save),
      static_cast<unsigned long long>(r.service.lazy_context_saves),
      static_cast<unsigned long long>(r.service.pages_writeback_deferred),
      static_cast<unsigned long long>(r.service.deferred_writebacks),
      r.jain(), r.outputs_exact ? "true" : "false", last ? "" : ",");
}

int Main() {
  std::printf(
      "== reconfiguration-aware serving: slot cache, design affinity, "
      "lazy write-back ==\n\n");
  int rc = 0;

  // Design-alternating fleet: interleaved submission means consecutive
  // tickets nearly always want a different bit-stream, the worst case
  // for a single-slot fabric. Equal per-tenant footprints keep the
  // fabric-time Jain index meaningful.
  std::vector<TenantSpec> specs;
  for (u32 i = 0; i < 3; ++i) {
    specs.push_back({App::kAdpcm, StrFormat("adpcm-%u", i), 1, 8 * 1024, 3});
  }
  for (u32 i = 0; i < 3; ++i) {
    specs.push_back({App::kIdea, StrFormat("idea-%u", i), 1, 8 * 1024, 3});
  }
  for (u32 i = 0; i < 2; ++i) {
    specs.push_back({App::kConv, StrFormat("conv-%u", i), 1, 8 * 1024, 3});
  }

  const Mode kBaseline{"baseline", 1, false, false, false};
  const Mode kExplicit{"explicit", 1, false, false, true};
  const Mode kSlots{"slots", 3, false, false, false};
  const Mode kAffinity{"affinity", 3, true, false, false};
  const Mode kLazy{"lazy", 1, false, true, false};
  const Mode kCombined{"combined", 3, true, true, false};
  const std::vector<const Mode*> modes = {&kBaseline, &kExplicit, &kSlots,
                                          &kAffinity, &kLazy, &kCombined};

  // The modes are independent simulations of the same tenant spec —
  // run them side by side on the fleet runner.
  const std::vector<FleetResult> runs = sim::FleetMap<FleetResult>(
      modes.size(), [&](usize i) { return RunFleet(specs, *modes[i]); });
  const FleetResult& baseline = runs[0];
  const FleetResult& explicit_run = runs[1];
  const FleetResult& slots = runs[2];
  const FleetResult& affinity = runs[3];
  const FleetResult& lazy = runs[4];
  const FleetResult& combined = runs[5];

  Table table({"mode", "slots", "affin", "lazy", "makespan us", "reconf",
               "activ", "cfg us", "eager wb", "defer wb", "jain", "exact"});
  table.set_title("8 tenants x 3 designs x 3 jobs, fair share, 100 us slice");
  for (usize i = 0; i < modes.size(); ++i) PrintModeRow(table, *modes[i], runs[i]);
  table.Print();
  std::printf("\n");

  // ----- gate: byte-exact outputs in every mode -----
  for (usize i = 0; i < modes.size(); ++i) {
    if (!runs[i].outputs_exact) {
      std::printf("FAIL: %s outputs diverged from software reference\n",
                  modes[i]->name);
      rc = 1;
    }
  }

  // ----- gate: defaults are inert -----
  // Routing the seed values through the new platform keys (slots=1,
  // affinity off, lazy off, set explicitly) must be bit-identical to
  // not touching them at all.
  if (explicit_run.report.makespan != baseline.report.makespan ||
      explicit_run.stats.reconfigurations != baseline.stats.reconfigurations ||
      explicit_run.stats.slot_activations != baseline.stats.slot_activations ||
      explicit_run.stats.preemptions != baseline.stats.preemptions ||
      explicit_run.stats.dispatches != baseline.stats.dispatches ||
      explicit_run.service.pages_written_back_on_save !=
          baseline.service.pages_written_back_on_save) {
    std::printf("FAIL: explicit default keys changed the schedule\n");
    rc = 1;
  }

  // ----- gate: the slot cache converts reconfigurations -----
  const std::pair<const char*, const FleetResult*> cached[] = {
      {"slots", &slots}, {"affinity", &affinity}, {"combined", &combined}};
  for (const auto& [name, rp] : cached) {
    const FleetResult& r = *rp;
    if (r.stats.reconfigurations >= baseline.stats.reconfigurations) {
      std::printf(
          "FAIL: %s paid %llu full reconfigurations, not strictly below "
          "the baseline's %llu\n",
          name, static_cast<unsigned long long>(r.stats.reconfigurations),
          static_cast<unsigned long long>(baseline.stats.reconfigurations));
      rc = 1;
    }
    if (r.stats.slot_activations == 0) {
      std::printf("FAIL: %s never activated a cached slot\n", name);
      rc = 1;
    }
  }

  // ----- gate: affinity holds fairness -----
  const double jain_ref = slots.jain();
  const std::pair<const char*, const FleetResult*> affine[] = {
      {"affinity", &affinity}, {"combined", &combined}};
  for (const auto& [name, rp] : affine) {
    if (rp->jain() + kJainSlack < jain_ref) {
      std::printf("FAIL: %s Jain %.3f fell below the slots run's %.3f - "
                  "%.2f\n",
                  name, rp->jain(), jain_ref, kJainSlack);
      rc = 1;
    }
  }
  for (usize i = 0; i < modes.size(); ++i) {
    if (runs[i].jain() < kJainFloor) {
      std::printf("FAIL: %s Jain %.3f below the %.2f floor\n",
                  modes[i]->name, runs[i].jain(), kJainFloor);
      rc = 1;
    }
  }

  // ----- gate: lazy write-back defers the save-time sweep -----
  if (baseline.service.pages_written_back_on_save == 0) {
    std::printf("FAIL: baseline never wrote back on save (no preemption "
                "pressure?)\n");
    rc = 1;
  }
  const std::pair<const char*, const FleetResult*> lazies[] = {
      {"lazy", &lazy}, {"combined", &combined}};
  for (const auto& [name, rp] : lazies) {
    const FleetResult& r = *rp;
    if (r.service.lazy_context_saves == 0 ||
        r.service.pages_writeback_deferred == 0) {
      std::printf("FAIL: %s never deferred a context write-back\n", name);
      rc = 1;
    }
    if (r.service.pages_written_back_on_save != 0) {
      std::printf("FAIL: %s still wrote %llu pages back eagerly on save\n",
                  name,
                  static_cast<unsigned long long>(
                      r.service.pages_written_back_on_save));
      rc = 1;
    }
  }

  // ----- gate: combined improves makespan -----
  if (combined.report.makespan >= baseline.report.makespan) {
    std::printf("FAIL: combined makespan %.1f us not below baseline %.1f us\n",
                ToMicroseconds(combined.report.makespan),
                ToMicroseconds(baseline.report.makespan));
    rc = 1;
  }

  std::printf(
      "  reconfigurations: %u baseline -> %u combined (%llu activations, "
      "%.1f us saved)\n"
      "  makespan: %.1f us baseline -> %.1f us combined (%.2fx)\n"
      "  jain: %.3f baseline, %.3f affinity, %.3f combined\n\n",
      baseline.report.reconfigurations, combined.report.reconfigurations,
      static_cast<unsigned long long>(combined.stats.slot_activations),
      ToMicroseconds(baseline.stats.total_config_time -
                     combined.stats.total_config_time -
                     combined.stats.total_activation_time),
      ToMicroseconds(baseline.report.makespan),
      ToMicroseconds(combined.report.makespan),
      combined.report.makespan > 0
          ? static_cast<double>(baseline.report.makespan) /
                static_cast<double>(combined.report.makespan)
          : 0.0,
      baseline.jain(), affinity.jain(), combined.jain());

  // ----- JSON -----
  std::FILE* f = std::fopen("BENCH_reconfig.json", "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_reconfig.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"reconfig\",\n");
  for (usize i = 0; i < modes.size(); ++i) {
    JsonMode(f, modes[i]->name, *modes[i], runs[i], false);
  }
  std::fprintf(
      f,
      "  \"gates\": {\"outputs_exact\": %s, \"defaults_inert\": %s, "
      "\"reconfigs_below_baseline\": %s, \"fairness_held\": %s, "
      "\"lazy_deferred\": %s, \"makespan_improved\": %s, \"pass\": %s}\n}\n",
      combined.outputs_exact && baseline.outputs_exact ? "true" : "false",
      explicit_run.report.makespan == baseline.report.makespan ? "true"
                                                               : "false",
      combined.stats.reconfigurations < baseline.stats.reconfigurations
          ? "true"
          : "false",
      combined.jain() + kJainSlack >= jain_ref ? "true" : "false",
      combined.service.pages_written_back_on_save == 0 ? "true" : "false",
      combined.report.makespan < baseline.report.makespan ? "true" : "false",
      rc == 0 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_reconfig.json\n");
  return rc;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
