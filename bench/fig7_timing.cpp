// Reproduces Figure 7: "The coprocessor read access. Data is ready on
// the fourth rising edge of the clock."
//
// Drives a single translated read through the IMU at 40 MHz with the
// waveform tracer attached, prints the ASCII timing diagram of the
// CP_ADDR / CP_ACCESS / CP_TLBHIT / CP_DIN lanes, verifies the 4-edge
// latency, and writes a GTKWave-compatible VCD next to the binary.
#include <cstdio>
#include <fstream>

#include "base/table.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "runtime/config.h"
#include "runtime/fpga_api.h"
#include "sim/trace.h"

namespace vcop {
namespace {

int Main() {
  std::printf("== Figure 7: coprocessor read access through the IMU ==\n\n");

  runtime::FpgaSystem sys(runtime::Epxa1Config());
  sim::Tracer tracer;

  VCOP_CHECK(sys.Load(cp::VecAddBitstream()).ok());
  sys.kernel().imu()->AttachTracer(&tracer);

  // One-element vector add: one read of A, one of B, one write of C.
  auto a = sys.Allocate<u32>(1);
  auto b = sys.Allocate<u32>(1);
  auto c = sys.Allocate<u32>(1);
  VCOP_CHECK(a.ok() && b.ok() && c.ok());
  a.value().view()[0] = 0x0000CAFE;
  b.value().view()[0] = 0x00000001;
  VCOP_CHECK(sys.Map(0, a.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(1, b.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({1u});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  VCOP_CHECK(c.value().view()[0] == 0x0000CAFF);

  // Find the read of A[0] after the fault that mapped it: the last
  // rising of cp_access with cp_obj==0 before the final write.
  // Simpler: render the whole run; the interesting window is short.
  const Picoseconds period = 25'000;  // 40 MHz

  // Locate the access that hit in the TLB (tlbhit rising edges).
  // Print the window around the very last read (object 1 = B[0], which
  // translates without a fault because A's fault already ran).
  // We scan tlbhit changes through ValueAt over the run.
  std::printf("%s\n",
              "Full-run CP-port waveform available in fig7_timing.vcd;\n"
              "window below shows one translated read access\n"
              "(one column per half clock period, 40 MHz):\n");

  // The B[0] read is the 2nd data access; find its issue time by
  // scanning cp_access low->high transitions.
  // Signals were registered in Imu::AttachTracer order:
  const sim::SignalId sig_access = 0, sig_tlbhit = 4, sig_din = 5;
  std::vector<Picoseconds> issue_times;
  std::optional<u64> prev;
  const Picoseconds end = sys.kernel().simulator().now();
  for (Picoseconds t = 0; t <= end; t += period) {
    const auto v = tracer.ValueAt(sig_access, t);
    if (v.has_value() && v == 1 && (!prev.has_value() || *prev == 0)) {
      issue_times.push_back(t);
    }
    prev = v;
  }
  // Back-to-back accesses hold CP_ACCESS high, so distinct rising edges
  // appear only after idle gaps (start-up, fault stalls).
  VCOP_CHECK_MSG(!issue_times.empty(), "expected at least one access");

  // Pick an access whose translation hit directly (no fault): the last
  // read (B[0]) after both pages are mapped. Find the one whose tlbhit
  // rises 3 periods after issue.
  Picoseconds window_start = 0;
  Picoseconds consume_time = 0;
  for (const Picoseconds t : issue_times) {
    const auto hit_at_4th = tracer.ValueAt(sig_tlbhit, t + 3 * period);
    const auto hit_before = tracer.ValueAt(sig_tlbhit, t + 2 * period);
    if (hit_at_4th == 1 && hit_before == 0) {
      window_start = t >= period ? t - period : 0;
      consume_time = t + 3 * period;
      break;
    }
  }
  VCOP_CHECK_MSG(consume_time != 0, "no fault-free 4-cycle access found");

  std::printf("%s\n",
              tracer
                  .ToAscii(window_start, consume_time + 2 * period,
                           period / 2)
                  .c_str());

  // The Figure-7 check: data valid on the 4th rising edge after issue.
  const Picoseconds issue = window_start == 0 ? 0 : window_start + period;
  std::printf("issue on rising edge 1 (t+%s), CP_TLBHIT+CP_DIN valid on "
              "rising edge 4 (t+%s):\n4 rising edges inclusive — matches "
              "Figure 7\n",
              FormatDuration(0).c_str(),
              FormatDuration(consume_time - issue).c_str());
  VCOP_CHECK(consume_time - issue == 3 * period);
  const auto din = tracer.ValueAt(sig_din, consume_time);
  VCOP_CHECK(din.has_value());

  std::ofstream vcd("fig7_timing.vcd");
  vcd << tracer.ToVcd();
  std::printf("\nwrote fig7_timing.vcd (%zu signal changes)\n",
              tracer.num_changes());
  std::printf("\nPaper: 'four cycles are needed from the moment when the "
              "coprocessor generates an access\nto the moment when the "
              "data is read or written' — reproduced: PASS\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
