// Ablation E6 — the paper's known VIM limitation (§4.1): "the
// significant overhead in the dual-port RAM management [...] is largely
// caused by our simple implementation of the VIM which makes two
// transfers each time a page is loaded or unloaded from the dual-port
// memory. We are currently removing this limitation."
//
// Compares the double-copy VIM (paper's implementation) against the
// single-copy VIM (the fix) on both applications, plus the zero-copy
// IOMMU path (DESIGN.md §13) that takes the CPU out of the data path
// entirely.
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf(
      "== Ablation: page-transfer implementations (double copy / single "
      "copy / DMA / IOMMU) ==\n\n");

  Table table({"app", "input", "transfer mode", "SW(DP) ms", "total ms",
               "speedup"});
  table.set_title(
      "page-transfer implementations: the paper's double copy, their "
      "announced single-copy fix, a DMA engine, and the zero-copy IOMMU");

  auto add = [&](const char* app, const std::vector<usize>& sizes,
                 auto&& runner) {
    for (const usize bytes : sizes) {
      for (const mem::CopyMode mode :
           {mem::CopyMode::kDoubleCopy, mem::CopyMode::kSingleCopy,
            mem::CopyMode::kDma}) {
        os::KernelConfig config = runtime::Epxa1Config();
        config.vim.copy_mode = mode;
        const bench::Point p = runner(config, bytes);
        table.AddRow({app, bench::SizeLabel(bytes),
                      std::string(mem::ToString(mode)),
                      runtime::Ms(p.vim.t_dp), runtime::Ms(p.vim.total),
                      runtime::Speedup(p.sw, p.vim.total)});
      }
      {
        // Zero-copy: the copy_mode is irrelevant once the IOMMU owns
        // the data path — transfers stream at the direct bus price.
        os::KernelConfig config = runtime::Epxa1Config();
        config.vim.iommu = true;
        const bench::Point p = runner(config, bytes);
        table.AddRow({app, bench::SizeLabel(bytes), "iommu",
                      runtime::Ms(p.vim.t_dp), runtime::Ms(p.vim.total),
                      runtime::Speedup(p.sw, p.vim.total)});
      }
    }
  };
  add("adpcmdecode", {8192u}, bench::RunAdpcmPoint);
  add("IDEA", {8192u, 32768u}, bench::RunIdeaPoint);
  table.Print();

  std::printf(
      "\nThe single-copy VIM recovers about half of the DP-management "
      "time —\nexactly the fix §4.1 says the authors are 'currently "
      "removing'. A DMA\nengine (not present on the EPXA1 path) removes "
      "most of the rest, pushing\nthe VIM-based system towards the "
      "normal coprocessor's numbers while\nkeeping full "
      "virtualisation.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
