// E20 — zero-copy virtual-address DMA through the IOMMU (DESIGN.md
// §13). Writes BENCH_iommu.json.
//
// Sweeps adpcm and IDEA over the four transfer implementations (the
// paper's double copy, the announced single-copy fix, the DMA engine,
// and the zero-copy IOMMU path) at several input sizes, then gates the
// subsystem's whole contract on the exit code:
//
//   1. byte-exact outputs: every mode, every size, both applications
//      must reproduce the software reference bit-for-bit — the IOMMU
//      changes *when* bytes move, never *which* bytes;
//   2. zero bounce-buffer copies: with `iommu = on` no transfer may
//      fall back to a CPU-staged bounce buffer, even though the copy
//      mode underneath is the worst-case double copy;
//   3. transfer time at the bus bound: the large-input adpcm run's DP
//      management time must be <= 1.2x the raw AHB/DMA analytic bound
//      for the bytes it actually moved (the slack covers IO-TLB walks
//      and page-table bookkeeping);
//   4. `iommu = off` is inert: the Figure-7 VCD and the conv2d Chrome
//      trace must come out byte-identical whether the IOMMU knobs are
//      at their defaults or explicitly touched while the subsystem is
//      off. (Byte-identity against the *seed* artifacts is pinned
//      separately in CI via tests/golden/trace_artifacts.sha256.)
#include <cstdio>
#include <string>
#include <vector>

#include "apps/sw_model.h"
#include "apps/workloads.h"
#include "base/log.h"
#include "bench/common.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"
#include "mem/iommu.h"
#include "os/vim.h"
#include "runtime/drivers.h"
#include "sim/trace.h"

namespace vcop {
namespace {

using runtime::Epxa1Config;
using runtime::FpgaSystem;

struct Mode {
  const char* label;
  mem::CopyMode copy_mode;
  bool iommu;
};

// The iommu row deliberately keeps kDoubleCopy underneath: if the
// zero-copy path ever fell through to the legacy engine, gate 2 would
// catch the bounce copies immediately.
constexpr Mode kModes[] = {
    {"double", mem::CopyMode::kDoubleCopy, false},
    {"single", mem::CopyMode::kSingleCopy, false},
    {"dma", mem::CopyMode::kDma, false},
    {"iommu", mem::CopyMode::kDoubleCopy, true},
};

struct Row {
  std::string app;
  usize bytes = 0;
  std::string mode;
  bool iommu = false;
  bool output_exact = false;
  u64 bounce_copies = 0;
  Picoseconds sw = 0;
  os::ExecutionReport report;
  mem::IommuStats iommu_stats;
  // DP management time over the raw AHB price of the bytes moved.
  double bound_ratio = 0.0;
};

os::KernelConfig ModeConfig(const Mode& m) {
  os::KernelConfig config = Epxa1Config();
  config.vim.copy_mode = m.copy_mode;
  config.vim.iommu = m.iommu;
  return config;
}

/// Raw AHB/DMA streaming price for `bytes`, paged like the VIM moves
/// them (whole DP pages plus one tail).
Picoseconds DirectBound(const mem::TransferEngine& engine, u32 page_bytes,
                        u64 bytes) {
  Picoseconds bound = 0;
  const u64 pages = bytes / page_bytes;
  bound += static_cast<Picoseconds>(pages) * engine.PriceDirect(page_bytes);
  if (bytes % page_bytes != 0)
    bound += engine.PriceDirect(static_cast<u32>(bytes % page_bytes));
  return bound;
}

void FinishRow(Row& row, FpgaSystem& sys, const os::KernelConfig& config) {
  os::Vim& vim = sys.kernel().vim();
  row.bounce_copies = vim.transfer_engine().bounce_copies();
  row.iommu_stats = vim.iommu().stats();
  const u64 moved =
      row.report.vim.bytes_loaded + row.report.vim.bytes_written_back;
  const Picoseconds bound =
      DirectBound(vim.transfer_engine(), config.page_bytes, moved);
  row.bound_ratio = bound > 0 ? static_cast<double>(row.report.vim.t_dp) /
                                    static_cast<double>(bound)
                              : 0.0;
  sys.kernel().simulator().DrainAssertQuiescent();
}

Row RunAdpcm(const Mode& m, usize bytes) {
  Row row;
  row.app = "adpcmdecode";
  row.bytes = bytes;
  row.mode = m.label;
  row.iommu = m.iommu;

  const os::KernelConfig config = ModeConfig(m);
  const std::vector<u8> input =
      apps::MakeAdpcmStream(bytes, bench::kWorkloadSeed);
  std::vector<i16> expect(input.size() * 2);
  apps::AdpcmState state;
  apps::AdpcmDecode(input, expect, state);
  apps::ArmTimingModel arm;
  arm.cpu_clock = config.costs.cpu_clock;
  row.sw = arm.AdpcmDecodeTime(bytes);

  FpgaSystem sys(config);
  auto run = runtime::RunAdpcmVim(sys, input);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  row.output_exact = run.value().output == expect;
  row.report = run.value().report;
  FinishRow(row, sys, config);
  return row;
}

Row RunIdea(const Mode& m, usize bytes) {
  Row row;
  row.app = "IDEA";
  row.bytes = bytes;
  row.mode = m.label;
  row.iommu = m.iommu;

  const os::KernelConfig config = ModeConfig(m);
  const apps::IdeaSubkeys keys =
      apps::IdeaExpandKey(apps::MakeIdeaKey(bench::kWorkloadSeed));
  const std::vector<u8> input =
      apps::MakeRandomBytes(bytes, bench::kWorkloadSeed + 1);
  std::vector<u8> expect(input.size());
  apps::IdeaCryptEcb(keys, input, expect);
  apps::ArmTimingModel arm;
  arm.cpu_clock = config.costs.cpu_clock;
  row.sw = arm.IdeaEcbTime(bytes);

  FpgaSystem sys(config);
  auto run = runtime::RunIdeaVim(sys, keys, input);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  row.output_exact = run.value().output == expect;
  row.report = run.value().report;
  FinishRow(row, sys, config);
  return row;
}

// ----- `iommu = off` inertness -----

os::KernelConfig OffConfig(bool touch_knobs) {
  os::KernelConfig config = Epxa1Config();
  if (touch_knobs) {
    // Everything the subsystem exposes, set away from the defaults —
    // with iommu = off none of it may reach the artifact bytes.
    config.vim.iommu = false;
    config.vim.iotlb_entries = 1024;
  }
  return config;
}

/// The Figure-7 waveform (one-element vecadd with the tracer attached),
/// as fig7_timing writes it.
std::string VecAddVcd(bool touch_knobs) {
  FpgaSystem sys(OffConfig(touch_knobs));
  sim::Tracer tracer;
  VCOP_CHECK(sys.Load(cp::VecAddBitstream()).ok());
  sys.kernel().imu()->AttachTracer(&tracer);
  auto a = sys.Allocate<u32>(1);
  auto b = sys.Allocate<u32>(1);
  auto c = sys.Allocate<u32>(1);
  VCOP_CHECK(a.ok() && b.ok() && c.ok());
  a.value().view()[0] = 0x0000CAFE;
  b.value().view()[0] = 0x00000001;
  VCOP_CHECK(sys.Map(0, a.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(1, b.value(), os::Direction::kIn).ok());
  VCOP_CHECK(sys.Map(2, c.value(), os::Direction::kOut).ok());
  auto report = sys.Execute({1u});
  VCOP_CHECK_MSG(report.ok(), report.status().ToString());
  VCOP_CHECK(c.value().view()[0] == 0x0000CAFF);
  return tracer.ToVcd();
}

/// The edge-detect-style Chrome trace: conv2d with the timeline
/// recorder, prefetch overlapped — the busiest DMA schedule the
/// examples produce.
std::string ConvChromeTrace(bool touch_knobs) {
  os::KernelConfig config = OffConfig(touch_knobs);
  config.vim.prefetch = os::PrefetchKind::kSequential;
  config.vim.overlap_prefetch = true;
  FpgaSystem sys(config);
  const std::vector<u8> image = apps::MakeTestImage(96, 24, 7);
  const auto run = runtime::RunConv3x3Vim(sys, image, 96, 24,
                                          apps::SharpenKernel(), 0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  return sys.kernel().timeline().ToChromeTrace();
}

// ----- JSON -----

void WriteJson(const std::vector<Row>& rows, bool exact, bool zero_bounce,
               double adpcm_large_ratio, bool bound_ok, bool off_inert,
               bool all_gates) {
  std::FILE* f = std::fopen("BENCH_iommu.json", "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_iommu.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"iommu\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (usize i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const mem::IommuStats& s = r.iommu_stats;
    const double speedup =
        r.report.total > 0
            ? static_cast<double>(r.sw) / static_cast<double>(r.report.total)
            : 0.0;
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"bytes\": %zu, \"mode\": \"%s\", "
        "\"output_exact\": %s, \"bounce_copies\": %llu, "
        "\"t_dp_ps\": %llu, \"total_ps\": %llu, \"speedup\": %.3f, "
        "\"bound_ratio\": %.4f, \"iotlb_hits\": %llu, "
        "\"iotlb_misses\": %llu, \"zero_copy_bytes\": %llu}%s\n",
        r.app.c_str(), r.bytes, r.mode.c_str(),
        r.output_exact ? "true" : "false",
        static_cast<unsigned long long>(r.bounce_copies),
        static_cast<unsigned long long>(r.report.vim.t_dp),
        static_cast<unsigned long long>(r.report.total), speedup,
        r.bound_ratio, static_cast<unsigned long long>(s.iotlb_hits),
        static_cast<unsigned long long>(s.iotlb_misses),
        static_cast<unsigned long long>(s.zero_copy_bytes),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gates\": {\"outputs_byte_exact\": %s, "
               "\"zero_bounce_copies\": %s, "
               "\"adpcm_large_bound_ratio\": %.4f, "
               "\"adpcm_large_within_1_2x\": %s, "
               "\"iommu_off_inert\": %s},\n",
               exact ? "true" : "false", zero_bounce ? "true" : "false",
               adpcm_large_ratio, bound_ok ? "true" : "false",
               off_inert ? "true" : "false");
  std::fprintf(f, "  \"gates_pass\": %s\n", all_gates ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main() {
  std::printf("== zero-copy IOMMU DMA (DESIGN.md §13, E20) ==\n\n");

  constexpr usize kAdpcmSizes[] = {2048u, 8192u, 65536u};
  constexpr usize kIdeaSizes[] = {8192u, 32768u};
  constexpr usize kAdpcmLarge = 65536u;

  Table table({"app", "input", "mode", "SW(DP) ms", "total ms", "speedup",
               "bounce", "bus-bound x"});
  table.set_title(
      "four transfer implementations; 'bus-bound x' is DP time over the "
      "raw AHB streaming price of the bytes moved");

  std::vector<Row> rows;
  auto add = [&](const Row& row) {
    table.AddRow({row.app, bench::SizeLabel(row.bytes), row.mode,
                  runtime::Ms(row.report.vim.t_dp),
                  runtime::Ms(row.report.total),
                  runtime::Speedup(row.sw, row.report.total),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(row.bounce_copies)),
                  StrFormat("%.2f", row.bound_ratio)});
    rows.push_back(row);
  };
  for (const usize bytes : kAdpcmSizes)
    for (const Mode& m : kModes) add(RunAdpcm(m, bytes));
  for (const usize bytes : kIdeaSizes)
    for (const Mode& m : kModes) add(RunIdea(m, bytes));
  table.Print();

  const bool vcd_inert = VecAddVcd(false) == VecAddVcd(true);
  const bool trace_inert = ConvChromeTrace(false) == ConvChromeTrace(true);

  bool exact = true;
  bool zero_bounce = true;
  double adpcm_large_ratio = 0.0;
  for (const Row& r : rows) {
    if (!r.output_exact) exact = false;
    if (r.iommu && r.bounce_copies != 0) zero_bounce = false;
    if (r.iommu && r.app == "adpcmdecode" && r.bytes == kAdpcmLarge)
      adpcm_large_ratio = r.bound_ratio;
  }
  const bool bound_ok = adpcm_large_ratio > 0.0 && adpcm_large_ratio <= 1.2;
  const bool off_inert = vcd_inert && trace_inert;

  std::printf("\nsummary:\n");
  bool pass = true;
  auto gate = [&](const char* name, bool ok) {
    std::printf("  %-52s %s\n", name, ok ? "pass" : "FAIL");
    if (!ok) pass = false;
  };
  gate("outputs byte-exact across all modes and sizes", exact);
  gate("zero bounce-buffer copies under iommu = on", zero_bounce);
  std::printf("  large adpcm DP time / raw AHB bound:             %.3fx\n",
              adpcm_large_ratio);
  gate("large adpcm within 1.2x of the raw AHB bound", bound_ok);
  gate("iommu = off inert (fig7 VCD byte-identical)", vcd_inert);
  gate("iommu = off inert (conv2d Chrome trace identical)", trace_inert);

  WriteJson(rows, exact, zero_bounce, adpcm_large_ratio, bound_ok, off_inert,
            pass);
  std::printf("wrote BENCH_iommu.json\n");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
