// Ablation: how much headroom do §3.3's online policies leave?
//
// Two-pass Belady bound: pass 1 records the coprocessor's page
// reference string through the IMU access probe; pass 2 replays the
// identical workload with an oracle that evicts the page used farthest
// in the future. The reference string is a function of the program
// only, so it is valid across passes (asserted by the oracle itself).
#include <cstdio>
#include <memory>
#include <numeric>

#include "base/rng.h"
#include "bench/common.h"
#include "cp/registry.h"
#include "os/oracle.h"

namespace vcop {
namespace {

struct Workload {
  std::string name;
  std::vector<u32> in;
  std::vector<u32> perm;
};

Workload MakeGather(const char* name, u32 elements, double locality,
                    u64 seed) {
  Rng rng(seed);
  Workload w;
  w.name = name;
  w.in.resize(elements);
  for (u32& v : w.in) v = static_cast<u32>(rng.Next());
  w.perm.resize(elements);
  std::iota(w.perm.begin(), w.perm.end(), 0u);
  // Shuffle a `1 - locality` fraction of positions globally.
  for (u32 i = elements - 1; i > 0; --i) {
    if (rng.NextDouble() < locality) continue;
    std::swap(w.perm[i], w.perm[rng.NextBelow(i + 1)]);
  }
  return w;
}

u64 RunFaults(const Workload& w, os::PolicyKind kind,
              std::shared_ptr<const os::PageRefTrace> replay,
              std::shared_ptr<os::PageRefTrace> record) {
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  VCOP_CHECK(sys.Load(cp::GatherBitstream()).ok());
  os::OraclePolicy* oracle = nullptr;
  if (replay != nullptr) {
    auto policy = std::make_unique<os::OraclePolicy>(replay);
    oracle = policy.get();
    sys.kernel().vim().SetPolicy(std::move(policy));
  } else {
    sys.kernel().vim().Configure([&] {
      os::VimConfig config;
      config.policy = kind;
      return config;
    }());
  }
  sys.kernel().imu()->set_page_ref_probe(
      [record, oracle](hw::ObjectId object, mem::VirtPage vpage) {
        if (record != nullptr) record->push_back(os::PageRef{object, vpage});
        if (oracle != nullptr) oracle->OnReference(object, vpage);
      });
  auto run = runtime::RunGatherVim(sys, w.in, w.perm);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  for (u32 i = 0; i < w.in.size(); ++i) {
    VCOP_CHECK(run.value().output[i] == w.in[w.perm[i]]);
  }
  return run.value().report.vim.faults;
}

int Main() {
  std::printf(
      "== Ablation: online policies vs the offline Belady bound ==\n\n");

  Table table({"workload", "fifo", "lru", "random", "belady (optimal)",
               "lru gap to optimal"});
  table.set_title("page faults on the gather kernel, 16 KB DP-RAM");

  for (const Workload& w :
       {MakeGather("gather 24 KB, high locality", 6144, 0.9, 1),
        MakeGather("gather 24 KB, mixed", 6144, 0.5, 2),
        MakeGather("gather 24 KB, random", 6144, 0.0, 3),
        MakeGather("gather 48 KB, random", 12288, 0.0, 4)}) {
    auto trace = std::make_shared<os::PageRefTrace>();
    const u64 fifo = RunFaults(w, os::PolicyKind::kFifo, nullptr, trace);
    const u64 lru = RunFaults(w, os::PolicyKind::kLru, nullptr, nullptr);
    const u64 rnd =
        RunFaults(w, os::PolicyKind::kRandom, nullptr, nullptr);
    const u64 opt = RunFaults(
        w, os::PolicyKind::kFifo,
        std::shared_ptr<const os::PageRefTrace>(trace), nullptr);
    table.AddRow(
        {w.name, StrFormat("%llu", static_cast<unsigned long long>(fifo)),
         StrFormat("%llu", static_cast<unsigned long long>(lru)),
         StrFormat("%llu", static_cast<unsigned long long>(rnd)),
         StrFormat("%llu", static_cast<unsigned long long>(opt)),
         StrFormat("%.2fx", static_cast<double>(lru) /
                                static_cast<double>(opt))});
  }
  table.Print();

  std::printf(
      "\nThe oracle bounds what §3.3's 'development of efficient "
      "allocation\nalgorithms in the OS' could still recover: LRU sits "
      "within a small factor\nof optimal under locality and drifts as "
      "the pattern degenerates to random\n(where no policy can do much — "
      "Belady included).\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
