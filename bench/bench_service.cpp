// Service-scale load harness for the ring-transport layer (os/service.h):
// hundreds of tenants publishing bursty mixed adpcm / IDEA / conv3x3
// traffic through per-tenant split rings into one vcopd daemon.
//
// Scenarios, each a fully isolated simulation:
//
//   closed   closed-loop: every tenant keeps one job in flight until it
//            has run its quota. Measures the platform's service
//            capacity (jobs per simulated second) and verifies every
//            tenant's final output against the software reference.
//   open-1x  open-loop: seeded bursty arrival schedule offering the
//            measured capacity, token-bucket admission at 1.5x the
//            per-tenant fair share. Baseline tail latency.
//   open-2x  the same schedule shape at twice the arrival rate — a 2x
//            overload. The transport must degrade by backpressure, not
//            collapse: ring-full rejections absorb the excess while
//            admitted jobs keep a bounded p99 and completions stay
//            fair across tenants (Jain index).
//   suppress completion-interrupt suppression on vs off over an
//            identical workload: the completion streams must be
//            bit-identical — suppression elides wake-ups, never data.
//
// Gates (CI fails on any):
//   * closed-loop outputs bit-exact, all jobs complete;
//   * no starvation at 2x: every tenant completes >= 1 job;
//   * bounded tail at 2x: p99 <= kP99OverloadFactor x the 1x p99;
//   * fairness at 2x: Jain index >= kJainFloor;
//   * suppression on/off completion digests identical.
//
// Tenant count and per-tenant quota scale with SERVICE_TENANTS /
// SERVICE_JOBS (CI smoke runs a reduced fleet). Deterministic for a
// fixed (tenant count, jobs, seed) triple regardless of fleet threads.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/latency_histogram.h"
#include "base/rng.h"
#include "bench/common.h"
#include "cp/adpcm_cp.h"
#include "cp/conv_cp.h"
#include "cp/idea_cp.h"
#include "cp/registry.h"
#include "os/ring.h"
#include "os/service.h"
#include "os/vcopd.h"
#include "sim/fleet.h"

namespace vcop {
namespace {

using bench::kWorkloadSeed;
using runtime::FpgaSystem;
using runtime::HostBuffer;
using runtime::VcopdClient;

// ----- workload knobs -----

u32 EnvOr(const char* name, u32 fallback) {
  if (const char* env = std::getenv(name)) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<u32>(v);
  }
  return fallback;
}

/// 2x-overload tail-latency bound, as a multiple of the 1x p99. The
/// token bucket + ring backpressure keep admitted jobs' queueing
/// bounded; without admission control the 2x tail grows with the run
/// length instead.
constexpr double kP99OverloadFactor = 8.0;
/// Jain fairness floor over per-tenant completions at 2x overload.
constexpr double kJainFloor = 0.80;

enum class App : u8 { kAdpcm, kIdea, kConv };

// Small per-job footprints: the interesting contention is hundreds of
// tenants against one fabric, not one tenant against the pager.
constexpr u32 kAdpcmBytes = 512;
constexpr u32 kIdeaBytes = 512;
constexpr u32 kConvWidth = 24;
constexpr u32 kConvHeight = 12;

// ----- per-tenant state -----

struct TenantState {
  App app = App::kAdpcm;
  os::TenantId id = 0;
  u32 design = 0;
  u32 nparams = 0;
  std::array<u32, os::kRingMaxParams> params{};

  HostBuffer<u8> in_u8, out_u8;
  HostBuffer<i16> out_i16;
  HostBuffer<u16> key_u16;
  HostBuffer<u32> coeffs_u32;
  std::vector<i16> expect_i16;
  std::vector<u8> expect_u8;

  u32 published = 0;
  u32 ring_rejections = 0;  // open-loop arrivals dropped at a full ring
  u32 completed = 0;
  u32 failed = 0;
  std::vector<Picoseconds> publish_at;  // indexed by cookie - 1
  std::vector<os::CompletionDescriptor> reaped;  // in reap order
};

/// Registers the tenant, stages its buffers and reference expectation,
/// and fixes the descriptor payload its jobs will publish.
TenantState Stage(FpgaSystem& sys, os::Vcopd& daemon,
                  os::VcopService& service, App app, u32 index, u64 seed) {
  TenantState t;
  t.app = app;
  t.id = daemon.RegisterTenant(StrFormat("svc-%u", index)).value();
  VcopdClient client(daemon, t.id);
  switch (app) {
    case App::kAdpcm: {
      bench::StagedAdpcm s =
          bench::StageAdpcmTenant(sys, client, kAdpcmBytes, seed);
      t.in_u8 = s.in;
      t.out_i16 = s.out;
      t.expect_i16 = std::move(s.expect);
      t.design = service.RegisterDesign(cp::AdpcmDecodeBitstream());
      t.nparams = 3;
      t.params = {kAdpcmBytes, 0, 0};
      break;
    }
    case App::kIdea: {
      bench::StagedIdea s =
          bench::StageIdeaTenant(sys, client, kIdeaBytes, seed);
      t.in_u8 = s.in;
      t.out_u8 = s.out;
      t.key_u16 = s.key;
      t.expect_u8 = std::move(s.expect);
      t.design = service.RegisterDesign(cp::IdeaBitstream());
      t.nparams = 4;
      t.params = {kIdeaBytes / 8, cp::IdeaCoprocessor::kModeEcb, 0, 0};
      break;
    }
    case App::kConv: {
      const std::vector<u8> image =
          apps::MakeTestImage(kConvWidth, kConvHeight, seed);
      const apps::Conv3x3Kernel kernel = apps::BoxBlurKernel();
      const u32 shift = 3;
      t.expect_u8.resize(image.size());
      apps::Convolve3x3(image, kConvWidth, kConvHeight, kernel, shift,
                        t.expect_u8);
      t.in_u8 = sys.Allocate<u8>(static_cast<u32>(image.size())).value();
      t.in_u8.Fill(image);
      t.out_u8 = sys.Allocate<u8>(static_cast<u32>(image.size())).value();
      t.coeffs_u32 = sys.Allocate<u32>(9).value();
      {
        auto view = t.coeffs_u32.view();
        for (usize i = 0; i < 9; ++i) view[i] = static_cast<u32>(kernel[i]);
      }
      VCOP_CHECK(client.Map(cp::Conv3x3Coprocessor::kObjSrc, t.in_u8,
                            os::Direction::kIn).ok());
      VCOP_CHECK(client.Map(cp::Conv3x3Coprocessor::kObjDst, t.out_u8,
                            os::Direction::kOut).ok());
      VCOP_CHECK(client.Map(cp::Conv3x3Coprocessor::kObjKernel, t.coeffs_u32,
                            os::Direction::kIn).ok());
      t.design = service.RegisterDesign(cp::Conv3x3Bitstream());
      t.nparams = 3;
      t.params = {kConvWidth, kConvHeight, shift};
      break;
    }
  }
  VCOP_CHECK(service.AttachTenant(t.id).ok());
  return t;
}

/// Final-output check: a tenant's jobs run sequentially (one inflight
/// job per tenant) on identical inputs, so after quiescence the output
/// buffer of any tenant that completed >= 1 job must equal the
/// reference.
bool OutputsExact(const TenantState& t) {
  if (t.completed == 0) return true;
  switch (t.app) {
    case App::kAdpcm: return t.out_i16.ToVector() == t.expect_i16;
    case App::kIdea:
    case App::kConv: return t.out_u8.ToVector() == t.expect_u8;
  }
  return false;
}

// ----- scenario runner -----

struct ScenarioParams {
  u32 tenants = 8;
  u32 jobs = 3;  // per-tenant quota
  bool open = false;
  /// Open loop: mean gap between one tenant's consecutive jobs.
  Picoseconds per_job_gap = 0;
  u64 admit_rate = 0;  // jobs per simulated second per tenant (0 = off)
  u32 admit_burst = 16;
  bool suppressed = false;
  /// Closed loop only: publish the whole quota at t=0 under one kick
  /// (requires jobs <= ring entries) instead of notifier-driven
  /// window-1 publishing. The suppression pair uses this so both runs
  /// offer a bit-identical submission schedule.
  bool upfront = false;
  u64 seed = kWorkloadSeed;
};

struct ScenarioResult {
  u64 offered = 0;
  u64 published = 0;
  u64 ring_rejections = 0;
  u64 completed = 0;
  u64 failed = 0;
  u32 starved_tenants = 0;  // tenants with zero completions
  Picoseconds makespan = 0;
  LatencyHistogram latency;  // publish -> completion, admitted jobs
  double jain = 0.0;
  bool outputs_exact = true;
  u64 completion_digest = 0;  // FNV over every reaped completion
  os::VcopServiceStats service;
  os::VcopdStats daemon;

  double throughput_per_ms() const {
    const double ms = static_cast<double>(makespan) / 1e9;
    return ms > 0.0 ? static_cast<double>(completed) / ms : 0.0;
  }
};

bool PublishOne(os::VcopService& service, TenantState& t, Picoseconds now) {
  os::RingDescriptor d;
  d.cookie = static_cast<u64>(t.published) + 1;
  d.design = t.design;
  d.nparams = t.nparams;
  d.params = t.params;
  const Status status = service.Publish(t.id, d);
  if (!status.ok()) {
    // Ring full — the open-loop generator drops the arrival (the edge
    // backpressure the 2x gate is about).
    VCOP_CHECK(status.code() == ErrorCode::kResourceExhausted);
    ++t.ring_rejections;
    return false;
  }
  ++t.published;
  t.publish_at.push_back(now);
  return true;
}

void ReapAll(os::VcopService& service, TenantState& t,
             ScenarioResult& result) {
  while (service.HasCompletions(t.id)) {
    const os::CompletionDescriptor c = service.Reap(t.id).value();
    ++t.completed;
    if (c.code != 0) ++t.failed;
    result.latency.Add(c.finished_at - t.publish_at[c.cookie - 1]);
    t.reaped.push_back(c);
  }
}

ScenarioResult RunScenario(const ScenarioParams& p) {
  os::KernelConfig config = runtime::Epxa1Config();
  config.service.ring_entries = 16;
  config.service.admit_rate = p.admit_rate;
  config.service.admit_burst = p.admit_burst;
  FpgaSystem sys(config);
  os::VcopdConfig daemon_config;
  daemon_config.max_asids = p.tenants + 2;  // hundreds of tenants, each
                                            // with its own ASID
  os::Vcopd daemon(sys.kernel(), daemon_config);
  os::VcopService service(daemon);  // defaults from the platform config
  sim::Simulator& sim = sys.kernel().simulator();

  ScenarioResult result;
  result.offered = static_cast<u64>(p.tenants) * p.jobs;

  std::vector<TenantState> tenants;
  tenants.reserve(p.tenants);
  for (u32 i = 0; i < p.tenants; ++i) {
    const App app = static_cast<App>(i % 3);
    tenants.push_back(Stage(sys, daemon, service, app, i, p.seed + i));
  }

  if (p.suppressed) {
    for (TenantState& t : tenants) service.SetInterruptSuppression(t.id, true);
  } else {
    // Interrupt-driven tenants: reap at the completion instant.
    for (TenantState& t : tenants) {
      TenantState* tp = &t;
      service.SetCompletionNotifier(
          t.id, [&service, tp, &result] { ReapAll(service, *tp, result); });
    }
  }

  if (!p.open) {
    if (p.upfront) {
      // Whole quota at t=0 under one kick per tenant — the submission
      // schedule is bit-identical whether suppression is on or off,
      // which is exactly what the suppression comparison needs.
      VCOP_CHECK_MSG(p.jobs <= service.config().ring_entries,
                     "upfront closed loop needs jobs <= ring entries");
      for (TenantState& t : tenants) {
        for (u32 j = 0; j < p.jobs; ++j) {
          VCOP_CHECK(PublishOne(service, t, sim.now()));
          // Doorbell per publish: every kick past the first lands while
          // the drain is pending and coalesces into it.
          VCOP_CHECK(service.Kick(t.id).ok());
        }
      }
    } else {
      // Window-1 closed loop: the completion notifier publishes the
      // next job until the quota is done (needs notifications).
      VCOP_CHECK_MSG(!p.suppressed,
                     "window-1 closed loop needs completion notifications");
      for (TenantState& t : tenants) {
        TenantState* tp = &t;
        service.SetCompletionNotifier(t.id, [&service, &sim, tp, &result,
                                             jobs = p.jobs] {
          ReapAll(service, *tp, result);
          if (tp->published < jobs &&
              PublishOne(service, *tp, sim.now())) {
            VCOP_CHECK(service.Kick(tp->id).ok());
          }
        });
        VCOP_CHECK(PublishOne(service, t, sim.now()));
        VCOP_CHECK(service.Kick(t.id).ok());
      }
    }
  } else {
    // Open loop: precomputed bursty arrival schedule. Bursts of 1-3
    // jobs share one instant and one doorbell (coalescing on the
    // publish side); gaps are uniform around the configured mean, in
    // integer picoseconds — no libm in the schedule.
    Rng rng(p.seed ^ 0x5e1f5e1f5e1f5e1full);
    for (TenantState& t : tenants) {
      TenantState* tp = &t;
      Picoseconds at = rng.NextBelow(p.per_job_gap + 1);
      u32 remaining = p.jobs;
      while (remaining > 0) {
        const u32 burst =
            std::min(remaining, 1 + static_cast<u32>(rng.NextBelow(3)));
        sim.ScheduleAt(at, [&service, &sim, tp, burst] {
          for (u32 b = 0; b < burst; ++b) {
            // Doorbell per publish; kicks within the burst coalesce
            // into the first one's pending drain.
            if (PublishOne(service, *tp, sim.now())) {
              VCOP_CHECK(service.Kick(tp->id).ok());
            }
          }
        });
        remaining -= burst;
        const u64 mean = static_cast<u64>(burst) * p.per_job_gap;
        at += mean / 2 + rng.NextBelow(mean + 1);
      }
    }
  }

  const Status status = service.RunUntilQuiescent();
  VCOP_CHECK_MSG(status.ok(), status.ToString());

  // Poll-mode tenants (and any straggler) reap after quiescence.
  for (TenantState& t : tenants) ReapAll(service, t, result);

  // ----- aggregate -----
  double sum = 0.0, sum_sq = 0.0;
  u64 digest = 1469598103934665603ull;
  auto mix = [&digest](u64 v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= static_cast<u8>(v >> (8 * i));
      digest *= 1099511628211ull;
    }
  };
  for (TenantState& t : tenants) {
    result.published += t.published;
    result.ring_rejections += t.ring_rejections;
    result.completed += t.completed;
    result.failed += t.failed;
    if (t.completed == 0) ++result.starved_tenants;
    result.outputs_exact &= t.failed == 0 && OutputsExact(t);
    sum += static_cast<double>(t.completed);
    sum_sq +=
        static_cast<double>(t.completed) * static_cast<double>(t.completed);
    mix(t.id);
    for (const os::CompletionDescriptor& c : t.reaped) {
      mix(c.cookie);
      mix(c.code);
      mix(c.preemptions);
      mix(static_cast<u64>(c.submitted_at));
      mix(static_cast<u64>(c.started_at));
      mix(static_cast<u64>(c.finished_at));
    }
  }
  result.completion_digest = digest;
  result.jain = sum_sq > 0.0
                    ? (sum * sum) / (static_cast<double>(p.tenants) * sum_sq)
                    : 0.0;
  result.makespan = service.BuildScheduleReport().makespan;
  result.service = service.stats();
  result.daemon = daemon.stats();
  return result;
}

// ----- reporting -----

void PrintScenario(const char* title, const ScenarioResult& r) {
  std::printf("-- %s --\n", title);
  std::printf(
      "  offered %llu, published %llu, ring-rejected %llu, completed %llu "
      "(%llu failed), starved %u\n",
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.published),
      static_cast<unsigned long long>(r.ring_rejections),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.failed), r.starved_tenants);
  std::printf(
      "  makespan %.1f us, %.2f jobs/sim-ms, latency p50/p99/p999 = "
      "%.1f/%.1f/%.1f us, jain %.3f\n",
      ToMicroseconds(r.makespan), r.throughput_per_ms(),
      ToMicroseconds(r.latency.p50()), ToMicroseconds(r.latency.p99()),
      ToMicroseconds(r.latency.p999()), r.jain);
  std::printf(
      "  transport: %llu kicks (%llu coalesced), %llu drains (max batch "
      "%llu), %llu admission deferrals, %llu daemon backpressure, "
      "%llu notified, %llu suppressed\n\n",
      static_cast<unsigned long long>(r.service.doorbell_kicks),
      static_cast<unsigned long long>(r.service.doorbells_coalesced),
      static_cast<unsigned long long>(r.service.drains),
      static_cast<unsigned long long>(r.service.max_batch),
      static_cast<unsigned long long>(r.service.admission_deferrals),
      static_cast<unsigned long long>(r.service.daemon_backpressure),
      static_cast<unsigned long long>(r.service.completions_notified),
      static_cast<unsigned long long>(r.service.completions_suppressed));
}

void JsonScenario(std::FILE* f, const char* key, const ScenarioResult& r,
                  bool trailing_comma) {
  std::fprintf(
      f,
      "  \"%s\": {\n"
      "    \"offered\": %llu, \"published\": %llu, "
      "\"ring_rejections\": %llu, \"completed\": %llu, \"failed\": %llu,\n"
      "    \"starved_tenants\": %u, \"makespan_us\": %.3f, "
      "\"jobs_per_sim_ms\": %.3f,\n"
      "    \"latency_us\": {\"p50\": %.3f, \"p99\": %.3f, \"p999\": %.3f, "
      "\"min\": %.3f, \"max\": %.3f, \"mean\": %.3f},\n"
      "    \"jain\": %.4f, \"outputs_exact\": %s,\n"
      "    \"reconfigurations\": %llu, \"config_time_us\": %.3f, "
      "\"config_share\": %.4f,\n"
      "    \"transport\": {\"kicks\": %llu, \"coalesced\": %llu, "
      "\"drains\": %llu, \"max_batch\": %llu, \"admission_deferrals\": %llu, "
      "\"daemon_backpressure\": %llu, \"notified\": %llu, "
      "\"suppressed\": %llu}\n"
      "  }%s\n",
      key, static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.published),
      static_cast<unsigned long long>(r.ring_rejections),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.failed), r.starved_tenants,
      ToMicroseconds(r.makespan), r.throughput_per_ms(),
      ToMicroseconds(r.latency.p50()), ToMicroseconds(r.latency.p99()),
      ToMicroseconds(r.latency.p999()), ToMicroseconds(r.latency.min()),
      ToMicroseconds(r.latency.max()), ToMicroseconds(r.latency.mean()),
      r.jain, r.outputs_exact ? "true" : "false",
      static_cast<unsigned long long>(r.daemon.reconfigurations),
      ToMicroseconds(r.daemon.total_config_time),
      r.makespan > 0 ? static_cast<double>(r.daemon.total_config_time) /
                           static_cast<double>(r.makespan)
                     : 0.0,
      static_cast<unsigned long long>(r.service.doorbell_kicks),
      static_cast<unsigned long long>(r.service.doorbells_coalesced),
      static_cast<unsigned long long>(r.service.drains),
      static_cast<unsigned long long>(r.service.max_batch),
      static_cast<unsigned long long>(r.service.admission_deferrals),
      static_cast<unsigned long long>(r.service.daemon_backpressure),
      static_cast<unsigned long long>(r.service.completions_notified),
      static_cast<unsigned long long>(r.service.completions_suppressed),
      trailing_comma ? "," : "");
}

int Main() {
  const u32 tenants = EnvOr("SERVICE_TENANTS", 144);
  const u32 jobs = EnvOr("SERVICE_JOBS", 4);
  std::printf(
      "== ring-transport service layer: %u tenants x %u jobs, "
      "mixed adpcm/IDEA/conv3x3 ==\n\n",
      tenants, jobs);
  int rc = 0;
  bench::WallTimer timer;

  // ----- closed loop: capacity + correctness -----
  ScenarioParams closed_params;
  closed_params.tenants = tenants;
  closed_params.jobs = jobs;
  const ScenarioResult closed = RunScenario(closed_params);
  PrintScenario("closed loop (capacity)", closed);
  if (!closed.outputs_exact) {
    std::printf("FAIL: closed-loop outputs diverged from the reference\n");
    rc = 1;
  }
  if (closed.completed != closed.offered) {
    std::printf("FAIL: closed loop did not complete every job\n");
    rc = 1;
  }

  // Capacity in jobs per simulated second, from the closed-loop run.
  const u64 capacity = closed.makespan > 0
                           ? closed.completed * kPicosecondsPerSecond /
                                 closed.makespan
                           : 0;
  // Token bucket: 1.5x each tenant's fair share of the capacity, small
  // burst — overload must park in the rings, not in the daemon.
  const u64 admit_rate = std::max<u64>(1, capacity * 3 / 2 / tenants);
  // Mean per-tenant inter-job gap at 1x offered load.
  const u64 gap_1x = capacity > 0 ? static_cast<u64>(tenants) *
                                        kPicosecondsPerSecond / capacity
                                  : 1;
  std::printf(
      "  capacity %llu jobs/sim-s -> admit %llu jobs/s/tenant, "
      "1x gap %.1f us\n\n",
      static_cast<unsigned long long>(capacity),
      static_cast<unsigned long long>(admit_rate),
      ToMicroseconds(gap_1x));

  // ----- open loop at 1x and 2x, side by side on the fleet runner ----
  auto open_params = [&](u32 scale) {
    ScenarioParams p;
    p.tenants = tenants;
    p.jobs = jobs;
    p.open = true;
    p.per_job_gap = std::max<u64>(1, gap_1x / scale);
    p.admit_rate = admit_rate;
    p.admit_burst = 2;  // tighter than the burst size: bursts of three
                        // hit the bucket and defer the drain
    p.seed = kWorkloadSeed + 100 + scale;  // distinct arrival streams
    return p;
  };
  const std::vector<ScenarioResult> open_runs =
      sim::FleetMap<ScenarioResult>(2, [&](usize i) {
        return RunScenario(open_params(i == 0 ? 1 : 2));
      });
  const ScenarioResult& open_1x = open_runs[0];
  const ScenarioResult& open_2x = open_runs[1];
  PrintScenario("open loop, 1x offered load", open_1x);
  PrintScenario("open loop, 2x offered load", open_2x);
  if (!open_1x.outputs_exact || !open_2x.outputs_exact) {
    std::printf("FAIL: open-loop outputs diverged from the reference\n");
    rc = 1;
  }
  if (open_2x.starved_tenants > 0) {
    std::printf("FAIL: %u tenants starved at 2x overload\n",
                open_2x.starved_tenants);
    rc = 1;
  }
  const double p99_1x = ToMicroseconds(open_1x.latency.p99());
  const double p99_2x = ToMicroseconds(open_2x.latency.p99());
  if (p99_1x > 0.0 && p99_2x > kP99OverloadFactor * p99_1x) {
    std::printf("FAIL: 2x p99 %.1f us exceeds %.1fx the 1x p99 %.1f us\n",
                p99_2x, kP99OverloadFactor, p99_1x);
    rc = 1;
  }
  if (open_2x.jain < kJainFloor) {
    std::printf("FAIL: 2x Jain index %.3f below %.2f\n", open_2x.jain,
                kJainFloor);
    rc = 1;
  }

  // ----- suppression on/off bit-identity -----
  auto suppression_params = [&](bool suppressed) {
    ScenarioParams p;
    p.tenants = 9;
    p.jobs = 3;
    p.suppressed = suppressed;
    p.upfront = true;  // identical submission schedule for both runs
    p.seed = kWorkloadSeed + 1000;
    return p;
  };
  const std::vector<ScenarioResult> supp_runs =
      sim::FleetMap<ScenarioResult>(2, [&](usize i) {
        return RunScenario(suppression_params(i == 1));
      });
  const ScenarioResult& notified = supp_runs[0];
  const ScenarioResult& suppressed = supp_runs[1];
  PrintScenario("suppression off (interrupt-driven)", notified);
  PrintScenario("suppression on (polled)", suppressed);
  const bool digests_match =
      notified.completion_digest == suppressed.completion_digest &&
      notified.completed == suppressed.completed;
  std::printf("  completion digests %016llx vs %016llx -> %s\n\n",
              static_cast<unsigned long long>(notified.completion_digest),
              static_cast<unsigned long long>(suppressed.completion_digest),
              digests_match ? "identical" : "DIVERGED");
  if (!digests_match) {
    std::printf(
        "FAIL: suppression changed completion content (must only elide "
        "wake-ups)\n");
    rc = 1;
  }
  if (suppressed.service.completions_notified != 0 ||
      notified.service.completions_suppressed != 0) {
    std::printf("FAIL: suppression accounting inconsistent\n");
    rc = 1;
  }

  const double wall_ms = timer.ElapsedMs();
  const u32 fleet_threads = sim::FleetThreadCount();
  std::printf("total wall time %.1f ms (%u fleet threads)\n", wall_ms,
              fleet_threads);

  // ----- JSON -----
  std::FILE* f = std::fopen("BENCH_service.json", "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_service.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"tenants\": %u,\n  \"jobs_per_tenant\": %u,\n",
               tenants, jobs);
  std::fprintf(f, "  \"capacity_jobs_per_sim_s\": %llu,\n",
               static_cast<unsigned long long>(capacity));
  std::fprintf(f, "  \"admit_rate_per_tenant\": %llu,\n",
               static_cast<unsigned long long>(admit_rate));
  JsonScenario(f, "closed", closed, true);
  JsonScenario(f, "open_1x", open_1x, true);
  JsonScenario(f, "open_2x", open_2x, true);
  JsonScenario(f, "suppression_off", notified, true);
  JsonScenario(f, "suppression_on", suppressed, true);
  std::fprintf(
      f,
      "  \"gates\": {\"closed_exact\": %s, \"no_starvation_2x\": %s, "
      "\"p99_bounded_2x\": %s, \"jain_2x\": %s, "
      "\"suppression_identical\": %s},\n",
      closed.outputs_exact && closed.completed == closed.offered ? "true"
                                                                 : "false",
      open_2x.starved_tenants == 0 ? "true" : "false",
      p99_1x <= 0.0 || p99_2x <= kP99OverloadFactor * p99_1x ? "true"
                                                             : "false",
      open_2x.jain >= kJainFloor ? "true" : "false",
      digests_match ? "true" : "false");
  std::fprintf(f, "  \"wall_ms\": %.3f,\n", wall_ms);
  std::fprintf(f, "  \"fleet_threads\": %u,\n", fleet_threads);
  std::fprintf(f, "  \"hardware_concurrency\": %u\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_service.json\n");
  return rc;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
