// Reproduces Figure 9: "Measurements on IDEA kernel. A pure software
// implementation, a normal coprocessor without our virtual interface,
// and a VIM-based coprocessor with the IMU."
//
// Sweeps 4/8/16/32 KB. The normal coprocessor stages in+out at fixed
// DP-RAM offsets and therefore *exceeds available memory* from 16 KB on
// (the figure's crossed-out columns); the VIM-based version handles
// every size unchanged. Paper: SW 26/53/105/211 ms; normal ~18x where
// it fits; VIM ~11-12x everywhere (19 ms at 32 KB).
#include <cstdio>

#include "bench/common.h"

namespace vcop {
namespace {

int Main() {
  std::printf(
      "== Figure 9: IDEA, pure SW vs normal coprocessor vs VIM-based "
      "(EPXA1; core @6 MHz, IMU @24 MHz) ==\n\n");

  Table table({"input", "SW ms", "normal ms", "normal speedup",
               "VIM total ms", "HW ms", "SW(DP) ms", "SW(IMU) ms",
               "VIM speedup", "paper SW ms", "paper VIM"});
  table.set_title(
      "execution time vs input size (normal coprocessor: user-managed "
      "staging)");

  const os::KernelConfig config = runtime::Epxa1Config();
  const char* paper_sw[] = {"26", "53", "105", "211"};
  const char* paper_vim[] = {"11x", "12x", "11x", "11x"};
  int i = 0;
  for (const usize bytes : {4096u, 8192u, 16384u, 32768u}) {
    const bench::Point p = bench::RunIdeaPoint(config, bytes);
    std::string normal_ms = "exceeds memory";
    std::string normal_speedup = "--";
    if (p.manual_fits) {
      normal_ms = runtime::Ms(p.manual.total);
      normal_speedup = runtime::Speedup(p.sw, p.manual.total);
    }
    table.AddRow({bench::SizeLabel(bytes), runtime::Ms(p.sw), normal_ms,
                  normal_speedup, runtime::Ms(p.vim.total),
                  runtime::Ms(p.vim.t_hw), runtime::Ms(p.vim.t_dp),
                  runtime::Ms(p.vim.t_imu),
                  runtime::Speedup(p.sw, p.vim.total), paper_sw[i],
                  paper_vim[i]});
    ++i;
  }
  table.Print();

  std::printf(
      "\nShape checks vs the paper:\n"
      " * normal coprocessor exceeds available memory at 16 KB and 32 KB\n"
      "   (in+out > 16 KB dual-port RAM) — the VIM-based version runs all "
      "sizes\n   with no change to application or coprocessor code.\n"
      " * where both run, the normal coprocessor is faster (~18x vs "
      "~11-12x):\n   the virtualisation tax is the price of portability "
      "(§4.1).\n"
      " * 'for the typical hardware and the VIM-based versions, the "
      "speedup is\n   comparable when no translation misses require "
      "intervention of the OS.'\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
