// Ablation: strided working sets (the convolution domain, extension).
//
// A 3x3 convolution holds a three-row window of its source live. At
// constant pixel count, the image *width* sets how many interface pages
// that window spans — from a few bytes per row (many rows per page) to
// rows wider than the whole dual-port RAM. Interface virtualisation is
// exactly what absorbs this shape change: the application and the core
// are identical in every row of the table.
//
// The per-strategy fault columns show the same sweep through the
// DESIGN.md §10 prefetchers: demand paging (none), blind next-page
// prefetch (seq), and the confidence-gated detectors (stride, adapt).
#include <cstdio>

#include "apps/conv2d.h"
#include "base/table.h"
#include "os/vim.h"
#include "runtime/config.h"
#include "runtime/drivers.h"
#include "runtime/fpga_api.h"
#include "runtime/report.h"

namespace vcop {
namespace {

/// Faults of one conv2d run under `kind` (overlap, depth 2); the
/// output is checked against `expect`.
u64 FaultsUnder(os::PrefetchKind kind, const std::vector<u8>& image,
                u32 width, u32 height, const std::vector<u8>& expect,
                os::ExecutionReport* report = nullptr) {
  os::KernelConfig config = runtime::Epxa1Config();
  config.vim.prefetch = kind;
  config.vim.prefetch_depth = 2;
  config.vim.overlap_prefetch = kind != os::PrefetchKind::kNone;
  runtime::FpgaSystem sys(config);
  auto run = runtime::RunConv3x3Vim(sys, image, width, height,
                                    apps::SharpenKernel(), 0);
  VCOP_CHECK_MSG(run.ok(), run.status().ToString());
  VCOP_CHECK_MSG(run.value().output == expect, "conv output mismatch");
  if (report != nullptr) *report = run.value().report;
  return run.value().report.vim.faults;
}

int Main() {
  std::printf(
      "== Ablation: image width vs paging behaviour (3x3 convolution, "
      "~48 K pixels, EPXA1) ==\n\n");

  Table table({"image", "row bytes", "3-row window", "faults",
               "compulsory", "seq", "stride", "adapt", "SW(DP) ms",
               "total ms"});
  table.set_title(
      "constant pixel count, varying stride (fault columns by prefetch "
      "strategy)");

  struct Shape {
    u32 width;
    u32 height;
  };
  for (const Shape shape : {Shape{64, 768}, Shape{256, 192},
                            Shape{1024, 48}, Shape{2048, 24},
                            Shape{4096, 12}, Shape{8192, 6}}) {
    const std::vector<u8> image =
        apps::MakeTestImage(shape.width, shape.height, 11);
    std::vector<u8> expect(image.size());
    apps::Convolve3x3(image, shape.width, shape.height,
                      apps::SharpenKernel(), 0, expect);

    os::ExecutionReport r;
    const u64 demand = FaultsUnder(os::PrefetchKind::kNone, image,
                                   shape.width, shape.height, expect, &r);
    const u64 seq = FaultsUnder(os::PrefetchKind::kSequential, image,
                                shape.width, shape.height, expect);
    const u64 stride = FaultsUnder(os::PrefetchKind::kStride, image,
                                   shape.width, shape.height, expect);
    const u64 adapt = FaultsUnder(os::PrefetchKind::kAdaptive, image,
                                  shape.width, shape.height, expect);
    const u32 compulsory =
        2 * (static_cast<u32>(image.size()) + 2047) / 2048 + 1;
    table.AddRow(
        {StrFormat("%ux%u", shape.width, shape.height),
         StrFormat("%u", shape.width),
         StrFormat("%u B", 3 * shape.width),
         StrFormat("%llu", static_cast<unsigned long long>(demand)),
         StrFormat("%u", compulsory),
         StrFormat("%llu", static_cast<unsigned long long>(seq)),
         StrFormat("%llu", static_cast<unsigned long long>(stride)),
         StrFormat("%llu", static_cast<unsigned long long>(adapt)),
         runtime::Ms(r.t_dp), runtime::Ms(r.total)});
  }
  table.Print();

  std::printf(
      "\nThe striking result is what does NOT change: across a 128x "
      "swing in row\nstride — including shapes whose three-row window "
      "(24 KB) exceeds the whole\ninterface memory — the fault count "
      "stays a small constant multiple of the\ncompulsory minimum (the "
      "border pass sweeps the image frame once before the\ninterior "
      "does). The window's *column* locality means only one page per "
      "live\nrow is hot at a time, and the VIM discovers that working "
      "set by itself. A\nmanual port would need a different tiling for "
      "every row in this table; here\nthe application and the core are "
      "byte-identical (§2.2's argument,\nquantified).\n\nThe strategy "
      "columns add the cautionary tale: blind sequential prefetch\ncan "
      "*explode* the fault count when rows span multiple pages (its "
      "guesses\nevict the still-live window), while the confidence-gated "
      "detectors track\neach row's stream separately and stay near the "
      "demand-paging figure or\nbelow it.\n");
  return 0;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
