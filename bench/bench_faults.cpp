// Characterises the fault-injection substrate and the VIM's recovery
// machinery: N seeded random fault plans (default 256, override with
// FAULT_PLANS=<n>) run across the four reference workloads. Every run
// must either complete byte-identical to the software model or fail
// with a clean Status; a run that completes with wrong bytes — or an
// aggregate counter pattern showing the recovery paths were never
// exercised — fails the bench (rc 1). Per-site opportunity/injection
// counts and the recovery-counter rollup go to BENCH_faults.json.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/adpcm.h"
#include "apps/conv2d.h"
#include "apps/idea.h"
#include "base/fault.h"
#include "bench/common.h"
#include "os/vim.h"
#include "sim/fleet.h"

namespace vcop {
namespace {

constexpr u32 kNumWorkloads = 4;

const char* WorkloadName(u64 seed) {
  switch (seed % kNumWorkloads) {
    case 0: return "adpcm";
    case 1: return "idea";
    case 2: return "vecadd";
    case 3: return "conv2d";
  }
  return "?";
}

struct Outcome {
  bool ok = false;      // the run returned Status::Ok()
  bool exact = false;   // ... and matched the software reference
  os::VimServiceStats service;
};

/// One workload (picked by seed) on a fresh system under `plan`.
Outcome RunOne(u64 seed, FaultPlan* plan) {
  runtime::FpgaSystem sys(runtime::Epxa1Config());
  if (plan != nullptr) sys.kernel().InstallFaultPlan(plan);
  Outcome out;
  switch (seed % kNumWorkloads) {
    case 0: {
      const std::vector<u8> input = apps::MakeAdpcmStream(2048, seed);
      const auto run = runtime::RunAdpcmVim(sys, input);
      out.ok = run.ok();
      if (run.ok()) {
        std::vector<i16> expect(input.size() * 2);
        apps::AdpcmState state;
        apps::AdpcmDecode(input, expect, state);
        out.exact = run.value().output == expect;
      }
      break;
    }
    case 1: {
      const apps::IdeaSubkeys keys =
          apps::IdeaExpandKey(apps::MakeIdeaKey(seed));
      const std::vector<u8> input = apps::MakeRandomBytes(1024, seed);
      const auto run = runtime::RunIdeaVim(sys, keys, input);
      out.ok = run.ok();
      if (run.ok()) {
        std::vector<u8> expect(input.size());
        apps::IdeaCryptEcb(keys, input, expect);
        out.exact = run.value().output == expect;
      }
      break;
    }
    case 2: {
      const u32 n = 512;
      std::vector<u32> a(n), b(n);
      for (u32 i = 0; i < n; ++i) {
        a[i] = static_cast<u32>(seed) * 1000003u + i;
        b[i] = static_cast<u32>(seed) * 7919u + 3u * i;
      }
      const auto run = runtime::RunVecAddVim(sys, a, b);
      out.ok = run.ok();
      if (run.ok()) {
        std::vector<u32> expect(n);
        for (u32 i = 0; i < n; ++i) expect[i] = a[i] + b[i];
        out.exact = run.value().output == expect;
      }
      break;
    }
    case 3: {
      const u32 width = 48, height = 24;
      const std::vector<u8> image = apps::MakeTestImage(width, height, seed);
      const apps::Conv3x3Kernel kernel = apps::BoxBlurKernel();
      const auto run =
          runtime::RunConv3x3Vim(sys, image, width, height, kernel, 3);
      out.ok = run.ok();
      if (run.ok()) {
        std::vector<u8> expect(image.size());
        apps::Convolve3x3(image, width, height, kernel, 3, expect);
        out.exact = run.value().output == expect;
      }
      break;
    }
  }
  out.service = sys.kernel().vim().service_stats();
  return out;
}

void Accumulate(os::VimServiceStats& into, const os::VimServiceStats& run) {
  into.transfer_retries += run.transfer_retries;
  into.transfer_retry_failures += run.transfer_retry_failures;
  into.watchdog_wakeups += run.watchdog_wakeups;
  into.watchdog_recoveries += run.watchdog_recoveries;
  into.watchdog_hang_aborts += run.watchdog_hang_aborts;
  into.duplicate_irqs_ignored += run.duplicate_irqs_ignored;
  into.spurious_faults_ignored += run.spurious_faults_ignored;
  into.fault_budget_aborts += run.fault_budget_aborts;
  into.tlb_parity_drops += run.tlb_parity_drops;
}

int Main() {
  u64 plans = 256;
  if (const char* env = std::getenv("FAULT_PLANS")) {
    plans = std::strtoull(env, nullptr, 10);
    if (plans == 0) plans = 256;
  }
  std::printf(
      "== fault injection: %llu seeded plans across "
      "adpcm/idea/vecadd/conv2d ==\n\n",
      static_cast<unsigned long long>(plans));

  u64 completed = 0, failed = 0, silent_corruptions = 0;
  u64 injected_total = 0;
  std::array<FaultSiteStats, kNumFaultSites> sites{};
  os::VimServiceStats recovery;
  u64 per_workload_completed[kNumWorkloads] = {};
  u64 per_workload_failed[kNumWorkloads] = {};

  // Each seed is an isolated (plan, system, workload) simulation: fan
  // the sweep out over the fleet, collect per-seed results by index,
  // and aggregate sequentially so every printed number (and the JSON)
  // is identical to the old single-threaded loop.
  struct SeedResult {
    Outcome out;
    u64 injected = 0;
    std::array<FaultSiteStats, kNumFaultSites> sites{};
  };
  const std::vector<SeedResult> results = sim::FleetMap<SeedResult>(
      plans, [](usize i) {
        const u64 seed = static_cast<u64>(i) + 1;
        FaultPlan plan = FaultPlan::Random(seed);
        SeedResult r;
        r.out = RunOne(seed, &plan);
        r.injected = plan.total_injected();
        for (usize s = 0; s < kNumFaultSites; ++s) {
          r.sites[s] = plan.stats(static_cast<FaultSite>(s));
        }
        return r;
      });

  for (u64 seed = 1; seed <= plans; ++seed) {
    const SeedResult& result = results[seed - 1];
    const Outcome& out = result.out;
    if (out.ok && out.exact) {
      ++completed;
      ++per_workload_completed[seed % kNumWorkloads];
    } else if (out.ok) {
      ++silent_corruptions;
      std::printf("FAIL: seed %llu (%s) completed with wrong bytes\n",
                  static_cast<unsigned long long>(seed), WorkloadName(seed));
    } else {
      ++failed;
      ++per_workload_failed[seed % kNumWorkloads];
    }
    injected_total += result.injected;
    for (usize s = 0; s < kNumFaultSites; ++s) {
      sites[s].opportunities += result.sites[s].opportunities;
      sites[s].injected += result.sites[s].injected;
    }
    Accumulate(recovery, out.service);
  }

  Table table({"site", "opportunities", "injected"});
  table.set_title("fault sites (aggregate over all plans)");
  for (usize s = 0; s < kNumFaultSites; ++s) {
    table.AddRow({FaultSiteName(static_cast<FaultSite>(s)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        sites[s].opportunities)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        sites[s].injected))});
  }
  table.Print();

  std::printf(
      "\n  %llu/%llu runs exact, %llu clean failures, %llu silent "
      "corruptions, %llu faults injected\n",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(plans),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(silent_corruptions),
      static_cast<unsigned long long>(injected_total));
  for (u32 w = 0; w < kNumWorkloads; ++w) {
    std::printf("    %-7s %llu completed / %llu failed\n", WorkloadName(w),
                static_cast<unsigned long long>(per_workload_completed[w]),
                static_cast<unsigned long long>(per_workload_failed[w]));
  }
  std::printf(
      "  recovery: %llu transfer retries (%llu exhausted), %llu watchdog "
      "wakeups (%llu recoveries, %llu hang aborts), %llu duplicate + %llu "
      "spurious IRQs ignored, %llu budget aborts, %llu parity drops\n\n",
      static_cast<unsigned long long>(recovery.transfer_retries),
      static_cast<unsigned long long>(recovery.transfer_retry_failures),
      static_cast<unsigned long long>(recovery.watchdog_wakeups),
      static_cast<unsigned long long>(recovery.watchdog_recoveries),
      static_cast<unsigned long long>(recovery.watchdog_hang_aborts),
      static_cast<unsigned long long>(recovery.duplicate_irqs_ignored),
      static_cast<unsigned long long>(recovery.spurious_faults_ignored),
      static_cast<unsigned long long>(recovery.fault_budget_aborts),
      static_cast<unsigned long long>(recovery.tlb_parity_drops));

  int rc = 0;
  if (silent_corruptions > 0) {
    std::printf("FAIL: %llu runs completed with corrupted output\n",
                static_cast<unsigned long long>(silent_corruptions));
    rc = 1;
  }
  if (completed == 0) {
    std::printf("FAIL: no run survived its fault plan\n");
    rc = 1;
  }
  if (injected_total == 0) {
    std::printf("FAIL: the random plans never injected anything\n");
    rc = 1;
  }
  // With the default mix the recovery machinery must actually run; on a
  // heavily reduced smoke sweep (< 64 plans) the rare paths may not
  // trigger, so only gate the aggregate there.
  const u64 recovered = recovery.transfer_retries +
                        recovery.watchdog_recoveries +
                        recovery.duplicate_irqs_ignored +
                        recovery.spurious_faults_ignored +
                        recovery.tlb_parity_drops;
  if (recovered == 0) {
    std::printf("FAIL: no recovery path was ever exercised\n");
    rc = 1;
  }
  if (plans >= 64 && failed == 0) {
    std::printf("FAIL: every plan completed — injection looks inert\n");
    rc = 1;
  }

  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  VCOP_CHECK_MSG(f != nullptr, "cannot open BENCH_faults.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"faults\",\n");
  std::fprintf(
      f,
      "  \"plans\": %llu,\n  \"completed_exact\": %llu,\n"
      "  \"clean_failures\": %llu,\n  \"silent_corruptions\": %llu,\n"
      "  \"injected_total\": %llu,\n",
      static_cast<unsigned long long>(plans),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(silent_corruptions),
      static_cast<unsigned long long>(injected_total));
  std::fprintf(f, "  \"sites\": [");
  for (usize s = 0; s < kNumFaultSites; ++s) {
    std::fprintf(
        f,
        "%s\n    {\"site\": \"%s\", \"opportunities\": %llu, "
        "\"injected\": %llu}",
        s == 0 ? "" : ",", FaultSiteName(static_cast<FaultSite>(s)),
        static_cast<unsigned long long>(sites[s].opportunities),
        static_cast<unsigned long long>(sites[s].injected));
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(
      f,
      "  \"recovery\": {\"transfer_retries\": %llu, "
      "\"transfer_retry_failures\": %llu, \"watchdog_wakeups\": %llu, "
      "\"watchdog_recoveries\": %llu, \"watchdog_hang_aborts\": %llu, "
      "\"duplicate_irqs_ignored\": %llu, \"spurious_faults_ignored\": %llu, "
      "\"fault_budget_aborts\": %llu, \"tlb_parity_drops\": %llu}\n",
      static_cast<unsigned long long>(recovery.transfer_retries),
      static_cast<unsigned long long>(recovery.transfer_retry_failures),
      static_cast<unsigned long long>(recovery.watchdog_wakeups),
      static_cast<unsigned long long>(recovery.watchdog_recoveries),
      static_cast<unsigned long long>(recovery.watchdog_hang_aborts),
      static_cast<unsigned long long>(recovery.duplicate_irqs_ignored),
      static_cast<unsigned long long>(recovery.spurious_faults_ignored),
      static_cast<unsigned long long>(recovery.fault_budget_aborts),
      static_cast<unsigned long long>(recovery.tlb_parity_drops));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_faults.json\n");
  return rc;
}

}  // namespace
}  // namespace vcop

int main() { return vcop::Main(); }
