
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_substrate.cpp" "bench/CMakeFiles/micro_substrate.dir/micro_substrate.cpp.o" "gcc" "bench/CMakeFiles/micro_substrate.dir/micro_substrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vcop_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vcop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/vcop_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cp/CMakeFiles/vcop_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/vcop_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vcop_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/vcop_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
