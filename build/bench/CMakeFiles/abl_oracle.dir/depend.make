# Empty dependencies file for abl_oracle.
# This may be replaced when dependencies are built.
