# Empty dependencies file for abl_stride.
# This may be replaced when dependencies are built.
