file(REMOVE_RECURSE
  "CMakeFiles/abl_stride.dir/abl_stride.cpp.o"
  "CMakeFiles/abl_stride.dir/abl_stride.cpp.o.d"
  "abl_stride"
  "abl_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
