file(REMOVE_RECURSE
  "CMakeFiles/abl_pipelined_imu.dir/abl_pipelined_imu.cpp.o"
  "CMakeFiles/abl_pipelined_imu.dir/abl_pipelined_imu.cpp.o.d"
  "abl_pipelined_imu"
  "abl_pipelined_imu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipelined_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
