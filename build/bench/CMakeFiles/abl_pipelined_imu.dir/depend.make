# Empty dependencies file for abl_pipelined_imu.
# This may be replaced when dependencies are built.
