file(REMOVE_RECURSE
  "CMakeFiles/fig8_adpcm.dir/fig8_adpcm.cpp.o"
  "CMakeFiles/fig8_adpcm.dir/fig8_adpcm.cpp.o.d"
  "fig8_adpcm"
  "fig8_adpcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_adpcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
