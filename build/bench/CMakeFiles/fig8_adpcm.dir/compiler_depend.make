# Empty compiler generated dependencies file for fig8_adpcm.
# This may be replaced when dependencies are built.
