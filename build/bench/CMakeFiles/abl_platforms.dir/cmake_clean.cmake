file(REMOVE_RECURSE
  "CMakeFiles/abl_platforms.dir/abl_platforms.cpp.o"
  "CMakeFiles/abl_platforms.dir/abl_platforms.cpp.o.d"
  "abl_platforms"
  "abl_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
