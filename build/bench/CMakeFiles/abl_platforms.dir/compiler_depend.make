# Empty compiler generated dependencies file for abl_platforms.
# This may be replaced when dependencies are built.
