file(REMOVE_RECURSE
  "CMakeFiles/abl_transfers.dir/abl_transfers.cpp.o"
  "CMakeFiles/abl_transfers.dir/abl_transfers.cpp.o.d"
  "abl_transfers"
  "abl_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
