# Empty compiler generated dependencies file for abl_transfers.
# This may be replaced when dependencies are built.
