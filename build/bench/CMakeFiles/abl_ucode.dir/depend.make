# Empty dependencies file for abl_ucode.
# This may be replaced when dependencies are built.
