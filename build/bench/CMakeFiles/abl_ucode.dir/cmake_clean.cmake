file(REMOVE_RECURSE
  "CMakeFiles/abl_ucode.dir/abl_ucode.cpp.o"
  "CMakeFiles/abl_ucode.dir/abl_ucode.cpp.o.d"
  "abl_ucode"
  "abl_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
