# Empty dependencies file for fig9_idea.
# This may be replaced when dependencies are built.
