file(REMOVE_RECURSE
  "CMakeFiles/fig9_idea.dir/fig9_idea.cpp.o"
  "CMakeFiles/fig9_idea.dir/fig9_idea.cpp.o.d"
  "fig9_idea"
  "fig9_idea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_idea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
