file(REMOVE_RECURSE
  "CMakeFiles/abl_sharing.dir/abl_sharing.cpp.o"
  "CMakeFiles/abl_sharing.dir/abl_sharing.cpp.o.d"
  "abl_sharing"
  "abl_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
