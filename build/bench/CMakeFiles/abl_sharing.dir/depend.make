# Empty dependencies file for abl_sharing.
# This may be replaced when dependencies are built.
