file(REMOVE_RECURSE
  "CMakeFiles/fig7_timing.dir/fig7_timing.cpp.o"
  "CMakeFiles/fig7_timing.dir/fig7_timing.cpp.o.d"
  "fig7_timing"
  "fig7_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
