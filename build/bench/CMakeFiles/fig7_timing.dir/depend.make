# Empty dependencies file for fig7_timing.
# This may be replaced when dependencies are built.
