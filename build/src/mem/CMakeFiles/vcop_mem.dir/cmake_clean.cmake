file(REMOVE_RECURSE
  "CMakeFiles/vcop_mem.dir/ahb.cpp.o"
  "CMakeFiles/vcop_mem.dir/ahb.cpp.o.d"
  "CMakeFiles/vcop_mem.dir/dp_ram.cpp.o"
  "CMakeFiles/vcop_mem.dir/dp_ram.cpp.o.d"
  "CMakeFiles/vcop_mem.dir/transfer.cpp.o"
  "CMakeFiles/vcop_mem.dir/transfer.cpp.o.d"
  "CMakeFiles/vcop_mem.dir/user_memory.cpp.o"
  "CMakeFiles/vcop_mem.dir/user_memory.cpp.o.d"
  "libvcop_mem.a"
  "libvcop_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
