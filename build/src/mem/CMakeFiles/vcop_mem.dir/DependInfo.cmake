
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/ahb.cpp" "src/mem/CMakeFiles/vcop_mem.dir/ahb.cpp.o" "gcc" "src/mem/CMakeFiles/vcop_mem.dir/ahb.cpp.o.d"
  "/root/repo/src/mem/dp_ram.cpp" "src/mem/CMakeFiles/vcop_mem.dir/dp_ram.cpp.o" "gcc" "src/mem/CMakeFiles/vcop_mem.dir/dp_ram.cpp.o.d"
  "/root/repo/src/mem/transfer.cpp" "src/mem/CMakeFiles/vcop_mem.dir/transfer.cpp.o" "gcc" "src/mem/CMakeFiles/vcop_mem.dir/transfer.cpp.o.d"
  "/root/repo/src/mem/user_memory.cpp" "src/mem/CMakeFiles/vcop_mem.dir/user_memory.cpp.o" "gcc" "src/mem/CMakeFiles/vcop_mem.dir/user_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
