file(REMOVE_RECURSE
  "libvcop_mem.a"
)
