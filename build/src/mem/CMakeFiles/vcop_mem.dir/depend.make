# Empty dependencies file for vcop_mem.
# This may be replaced when dependencies are built.
