# Empty dependencies file for vcop_ucode.
# This may be replaced when dependencies are built.
