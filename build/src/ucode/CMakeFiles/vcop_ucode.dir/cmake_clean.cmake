file(REMOVE_RECURSE
  "CMakeFiles/vcop_ucode.dir/assembler.cpp.o"
  "CMakeFiles/vcop_ucode.dir/assembler.cpp.o.d"
  "CMakeFiles/vcop_ucode.dir/compiler.cpp.o"
  "CMakeFiles/vcop_ucode.dir/compiler.cpp.o.d"
  "CMakeFiles/vcop_ucode.dir/estimator.cpp.o"
  "CMakeFiles/vcop_ucode.dir/estimator.cpp.o.d"
  "CMakeFiles/vcop_ucode.dir/isa.cpp.o"
  "CMakeFiles/vcop_ucode.dir/isa.cpp.o.d"
  "CMakeFiles/vcop_ucode.dir/ucode_cp.cpp.o"
  "CMakeFiles/vcop_ucode.dir/ucode_cp.cpp.o.d"
  "libvcop_ucode.a"
  "libvcop_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
