file(REMOVE_RECURSE
  "libvcop_ucode.a"
)
