
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ucode/assembler.cpp" "src/ucode/CMakeFiles/vcop_ucode.dir/assembler.cpp.o" "gcc" "src/ucode/CMakeFiles/vcop_ucode.dir/assembler.cpp.o.d"
  "/root/repo/src/ucode/compiler.cpp" "src/ucode/CMakeFiles/vcop_ucode.dir/compiler.cpp.o" "gcc" "src/ucode/CMakeFiles/vcop_ucode.dir/compiler.cpp.o.d"
  "/root/repo/src/ucode/estimator.cpp" "src/ucode/CMakeFiles/vcop_ucode.dir/estimator.cpp.o" "gcc" "src/ucode/CMakeFiles/vcop_ucode.dir/estimator.cpp.o.d"
  "/root/repo/src/ucode/isa.cpp" "src/ucode/CMakeFiles/vcop_ucode.dir/isa.cpp.o" "gcc" "src/ucode/CMakeFiles/vcop_ucode.dir/isa.cpp.o.d"
  "/root/repo/src/ucode/ucode_cp.cpp" "src/ucode/CMakeFiles/vcop_ucode.dir/ucode_cp.cpp.o" "gcc" "src/ucode/CMakeFiles/vcop_ucode.dir/ucode_cp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vcop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vcop_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
