file(REMOVE_RECURSE
  "CMakeFiles/vcop_cp.dir/adpcm_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/adpcm_cp.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/adpcm_enc_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/adpcm_enc_cp.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/conv_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/conv_cp.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/gather_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/gather_cp.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/histogram_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/histogram_cp.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/idea_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/idea_cp.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/registry.cpp.o"
  "CMakeFiles/vcop_cp.dir/registry.cpp.o.d"
  "CMakeFiles/vcop_cp.dir/vecadd_cp.cpp.o"
  "CMakeFiles/vcop_cp.dir/vecadd_cp.cpp.o.d"
  "libvcop_cp.a"
  "libvcop_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
