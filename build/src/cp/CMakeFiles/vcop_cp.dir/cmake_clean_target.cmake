file(REMOVE_RECURSE
  "libvcop_cp.a"
)
