# Empty dependencies file for vcop_cp.
# This may be replaced when dependencies are built.
