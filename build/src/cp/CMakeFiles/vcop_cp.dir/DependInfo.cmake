
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cp/adpcm_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/adpcm_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/adpcm_cp.cpp.o.d"
  "/root/repo/src/cp/adpcm_enc_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/adpcm_enc_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/adpcm_enc_cp.cpp.o.d"
  "/root/repo/src/cp/conv_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/conv_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/conv_cp.cpp.o.d"
  "/root/repo/src/cp/gather_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/gather_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/gather_cp.cpp.o.d"
  "/root/repo/src/cp/histogram_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/histogram_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/histogram_cp.cpp.o.d"
  "/root/repo/src/cp/idea_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/idea_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/idea_cp.cpp.o.d"
  "/root/repo/src/cp/registry.cpp" "src/cp/CMakeFiles/vcop_cp.dir/registry.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/registry.cpp.o.d"
  "/root/repo/src/cp/vecadd_cp.cpp" "src/cp/CMakeFiles/vcop_cp.dir/vecadd_cp.cpp.o" "gcc" "src/cp/CMakeFiles/vcop_cp.dir/vecadd_cp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vcop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vcop_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vcop_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
