file(REMOVE_RECURSE
  "CMakeFiles/vcop_os.dir/kernel.cpp.o"
  "CMakeFiles/vcop_os.dir/kernel.cpp.o.d"
  "CMakeFiles/vcop_os.dir/object_table.cpp.o"
  "CMakeFiles/vcop_os.dir/object_table.cpp.o.d"
  "CMakeFiles/vcop_os.dir/oracle.cpp.o"
  "CMakeFiles/vcop_os.dir/oracle.cpp.o.d"
  "CMakeFiles/vcop_os.dir/page_manager.cpp.o"
  "CMakeFiles/vcop_os.dir/page_manager.cpp.o.d"
  "CMakeFiles/vcop_os.dir/policy.cpp.o"
  "CMakeFiles/vcop_os.dir/policy.cpp.o.d"
  "CMakeFiles/vcop_os.dir/prefetch.cpp.o"
  "CMakeFiles/vcop_os.dir/prefetch.cpp.o.d"
  "CMakeFiles/vcop_os.dir/scheduler.cpp.o"
  "CMakeFiles/vcop_os.dir/scheduler.cpp.o.d"
  "CMakeFiles/vcop_os.dir/timeline.cpp.o"
  "CMakeFiles/vcop_os.dir/timeline.cpp.o.d"
  "CMakeFiles/vcop_os.dir/vim.cpp.o"
  "CMakeFiles/vcop_os.dir/vim.cpp.o.d"
  "libvcop_os.a"
  "libvcop_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
