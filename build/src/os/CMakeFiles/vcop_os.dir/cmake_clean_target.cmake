file(REMOVE_RECURSE
  "libvcop_os.a"
)
