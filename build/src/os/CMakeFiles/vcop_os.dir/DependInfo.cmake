
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/vcop_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/object_table.cpp" "src/os/CMakeFiles/vcop_os.dir/object_table.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/object_table.cpp.o.d"
  "/root/repo/src/os/oracle.cpp" "src/os/CMakeFiles/vcop_os.dir/oracle.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/oracle.cpp.o.d"
  "/root/repo/src/os/page_manager.cpp" "src/os/CMakeFiles/vcop_os.dir/page_manager.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/page_manager.cpp.o.d"
  "/root/repo/src/os/policy.cpp" "src/os/CMakeFiles/vcop_os.dir/policy.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/policy.cpp.o.d"
  "/root/repo/src/os/prefetch.cpp" "src/os/CMakeFiles/vcop_os.dir/prefetch.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/prefetch.cpp.o.d"
  "/root/repo/src/os/scheduler.cpp" "src/os/CMakeFiles/vcop_os.dir/scheduler.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/scheduler.cpp.o.d"
  "/root/repo/src/os/timeline.cpp" "src/os/CMakeFiles/vcop_os.dir/timeline.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/timeline.cpp.o.d"
  "/root/repo/src/os/vim.cpp" "src/os/CMakeFiles/vcop_os.dir/vim.cpp.o" "gcc" "src/os/CMakeFiles/vcop_os.dir/vim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vcop_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vcop_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
