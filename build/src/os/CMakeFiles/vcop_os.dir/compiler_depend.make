# Empty compiler generated dependencies file for vcop_os.
# This may be replaced when dependencies are built.
