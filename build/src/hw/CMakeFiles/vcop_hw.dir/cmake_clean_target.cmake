file(REMOVE_RECURSE
  "libvcop_hw.a"
)
