# Empty compiler generated dependencies file for vcop_hw.
# This may be replaced when dependencies are built.
