
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/coprocessor.cpp" "src/hw/CMakeFiles/vcop_hw.dir/coprocessor.cpp.o" "gcc" "src/hw/CMakeFiles/vcop_hw.dir/coprocessor.cpp.o.d"
  "/root/repo/src/hw/fabric.cpp" "src/hw/CMakeFiles/vcop_hw.dir/fabric.cpp.o" "gcc" "src/hw/CMakeFiles/vcop_hw.dir/fabric.cpp.o.d"
  "/root/repo/src/hw/imu.cpp" "src/hw/CMakeFiles/vcop_hw.dir/imu.cpp.o" "gcc" "src/hw/CMakeFiles/vcop_hw.dir/imu.cpp.o.d"
  "/root/repo/src/hw/tlb.cpp" "src/hw/CMakeFiles/vcop_hw.dir/tlb.cpp.o" "gcc" "src/hw/CMakeFiles/vcop_hw.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vcop_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
