file(REMOVE_RECURSE
  "CMakeFiles/vcop_hw.dir/coprocessor.cpp.o"
  "CMakeFiles/vcop_hw.dir/coprocessor.cpp.o.d"
  "CMakeFiles/vcop_hw.dir/fabric.cpp.o"
  "CMakeFiles/vcop_hw.dir/fabric.cpp.o.d"
  "CMakeFiles/vcop_hw.dir/imu.cpp.o"
  "CMakeFiles/vcop_hw.dir/imu.cpp.o.d"
  "CMakeFiles/vcop_hw.dir/tlb.cpp.o"
  "CMakeFiles/vcop_hw.dir/tlb.cpp.o.d"
  "libvcop_hw.a"
  "libvcop_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
