file(REMOVE_RECURSE
  "CMakeFiles/vcop_runtime.dir/config.cpp.o"
  "CMakeFiles/vcop_runtime.dir/config.cpp.o.d"
  "CMakeFiles/vcop_runtime.dir/drivers.cpp.o"
  "CMakeFiles/vcop_runtime.dir/drivers.cpp.o.d"
  "CMakeFiles/vcop_runtime.dir/manual_runtime.cpp.o"
  "CMakeFiles/vcop_runtime.dir/manual_runtime.cpp.o.d"
  "CMakeFiles/vcop_runtime.dir/platform_file.cpp.o"
  "CMakeFiles/vcop_runtime.dir/platform_file.cpp.o.d"
  "CMakeFiles/vcop_runtime.dir/report.cpp.o"
  "CMakeFiles/vcop_runtime.dir/report.cpp.o.d"
  "CMakeFiles/vcop_runtime.dir/streaming.cpp.o"
  "CMakeFiles/vcop_runtime.dir/streaming.cpp.o.d"
  "libvcop_runtime.a"
  "libvcop_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
