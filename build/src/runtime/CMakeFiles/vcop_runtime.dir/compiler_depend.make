# Empty compiler generated dependencies file for vcop_runtime.
# This may be replaced when dependencies are built.
