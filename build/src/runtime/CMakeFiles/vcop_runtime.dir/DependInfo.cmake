
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/config.cpp" "src/runtime/CMakeFiles/vcop_runtime.dir/config.cpp.o" "gcc" "src/runtime/CMakeFiles/vcop_runtime.dir/config.cpp.o.d"
  "/root/repo/src/runtime/drivers.cpp" "src/runtime/CMakeFiles/vcop_runtime.dir/drivers.cpp.o" "gcc" "src/runtime/CMakeFiles/vcop_runtime.dir/drivers.cpp.o.d"
  "/root/repo/src/runtime/manual_runtime.cpp" "src/runtime/CMakeFiles/vcop_runtime.dir/manual_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/vcop_runtime.dir/manual_runtime.cpp.o.d"
  "/root/repo/src/runtime/platform_file.cpp" "src/runtime/CMakeFiles/vcop_runtime.dir/platform_file.cpp.o" "gcc" "src/runtime/CMakeFiles/vcop_runtime.dir/platform_file.cpp.o.d"
  "/root/repo/src/runtime/report.cpp" "src/runtime/CMakeFiles/vcop_runtime.dir/report.cpp.o" "gcc" "src/runtime/CMakeFiles/vcop_runtime.dir/report.cpp.o.d"
  "/root/repo/src/runtime/streaming.cpp" "src/runtime/CMakeFiles/vcop_runtime.dir/streaming.cpp.o" "gcc" "src/runtime/CMakeFiles/vcop_runtime.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vcop_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vcop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/vcop_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cp/CMakeFiles/vcop_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/vcop_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vcop_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
