file(REMOVE_RECURSE
  "libvcop_runtime.a"
)
