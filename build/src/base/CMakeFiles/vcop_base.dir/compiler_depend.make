# Empty compiler generated dependencies file for vcop_base.
# This may be replaced when dependencies are built.
