file(REMOVE_RECURSE
  "libvcop_base.a"
)
