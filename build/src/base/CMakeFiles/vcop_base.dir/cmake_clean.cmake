file(REMOVE_RECURSE
  "CMakeFiles/vcop_base.dir/log.cpp.o"
  "CMakeFiles/vcop_base.dir/log.cpp.o.d"
  "CMakeFiles/vcop_base.dir/rng.cpp.o"
  "CMakeFiles/vcop_base.dir/rng.cpp.o.d"
  "CMakeFiles/vcop_base.dir/status.cpp.o"
  "CMakeFiles/vcop_base.dir/status.cpp.o.d"
  "CMakeFiles/vcop_base.dir/table.cpp.o"
  "CMakeFiles/vcop_base.dir/table.cpp.o.d"
  "CMakeFiles/vcop_base.dir/units.cpp.o"
  "CMakeFiles/vcop_base.dir/units.cpp.o.d"
  "libvcop_base.a"
  "libvcop_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
