file(REMOVE_RECURSE
  "libvcop_apps.a"
)
