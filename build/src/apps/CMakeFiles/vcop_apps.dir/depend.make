# Empty dependencies file for vcop_apps.
# This may be replaced when dependencies are built.
