file(REMOVE_RECURSE
  "CMakeFiles/vcop_apps.dir/adpcm.cpp.o"
  "CMakeFiles/vcop_apps.dir/adpcm.cpp.o.d"
  "CMakeFiles/vcop_apps.dir/conv2d.cpp.o"
  "CMakeFiles/vcop_apps.dir/conv2d.cpp.o.d"
  "CMakeFiles/vcop_apps.dir/idea.cpp.o"
  "CMakeFiles/vcop_apps.dir/idea.cpp.o.d"
  "CMakeFiles/vcop_apps.dir/sw_model.cpp.o"
  "CMakeFiles/vcop_apps.dir/sw_model.cpp.o.d"
  "CMakeFiles/vcop_apps.dir/workloads.cpp.o"
  "CMakeFiles/vcop_apps.dir/workloads.cpp.o.d"
  "libvcop_apps.a"
  "libvcop_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
