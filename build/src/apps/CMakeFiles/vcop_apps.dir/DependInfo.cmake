
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adpcm.cpp" "src/apps/CMakeFiles/vcop_apps.dir/adpcm.cpp.o" "gcc" "src/apps/CMakeFiles/vcop_apps.dir/adpcm.cpp.o.d"
  "/root/repo/src/apps/conv2d.cpp" "src/apps/CMakeFiles/vcop_apps.dir/conv2d.cpp.o" "gcc" "src/apps/CMakeFiles/vcop_apps.dir/conv2d.cpp.o.d"
  "/root/repo/src/apps/idea.cpp" "src/apps/CMakeFiles/vcop_apps.dir/idea.cpp.o" "gcc" "src/apps/CMakeFiles/vcop_apps.dir/idea.cpp.o.d"
  "/root/repo/src/apps/sw_model.cpp" "src/apps/CMakeFiles/vcop_apps.dir/sw_model.cpp.o" "gcc" "src/apps/CMakeFiles/vcop_apps.dir/sw_model.cpp.o.d"
  "/root/repo/src/apps/workloads.cpp" "src/apps/CMakeFiles/vcop_apps.dir/workloads.cpp.o" "gcc" "src/apps/CMakeFiles/vcop_apps.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vcop_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
