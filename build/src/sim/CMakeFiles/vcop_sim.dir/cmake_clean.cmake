file(REMOVE_RECURSE
  "CMakeFiles/vcop_sim.dir/clock.cpp.o"
  "CMakeFiles/vcop_sim.dir/clock.cpp.o.d"
  "CMakeFiles/vcop_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vcop_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vcop_sim.dir/simulator.cpp.o"
  "CMakeFiles/vcop_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/vcop_sim.dir/trace.cpp.o"
  "CMakeFiles/vcop_sim.dir/trace.cpp.o.d"
  "libvcop_sim.a"
  "libvcop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
