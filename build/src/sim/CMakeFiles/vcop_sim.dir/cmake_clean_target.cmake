file(REMOVE_RECURSE
  "libvcop_sim.a"
)
