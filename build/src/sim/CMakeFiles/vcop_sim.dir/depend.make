# Empty dependencies file for vcop_sim.
# This may be replaced when dependencies are built.
