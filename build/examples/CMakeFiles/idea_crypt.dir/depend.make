# Empty dependencies file for idea_crypt.
# This may be replaced when dependencies are built.
