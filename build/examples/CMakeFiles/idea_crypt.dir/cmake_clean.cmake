file(REMOVE_RECURSE
  "CMakeFiles/idea_crypt.dir/idea_crypt.cpp.o"
  "CMakeFiles/idea_crypt.dir/idea_crypt.cpp.o.d"
  "idea_crypt"
  "idea_crypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idea_crypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
