# Empty compiler generated dependencies file for adpcm_player.
# This may be replaced when dependencies are built.
