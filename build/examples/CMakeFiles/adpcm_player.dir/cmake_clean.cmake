file(REMOVE_RECURSE
  "CMakeFiles/adpcm_player.dir/adpcm_player.cpp.o"
  "CMakeFiles/adpcm_player.dir/adpcm_player.cpp.o.d"
  "adpcm_player"
  "adpcm_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpcm_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
