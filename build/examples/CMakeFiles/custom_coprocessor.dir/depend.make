# Empty dependencies file for custom_coprocessor.
# This may be replaced when dependencies are built.
