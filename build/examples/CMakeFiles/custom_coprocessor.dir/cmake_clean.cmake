file(REMOVE_RECURSE
  "CMakeFiles/custom_coprocessor.dir/custom_coprocessor.cpp.o"
  "CMakeFiles/custom_coprocessor.dir/custom_coprocessor.cpp.o.d"
  "custom_coprocessor"
  "custom_coprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_coprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
