file(REMOVE_RECURSE
  "CMakeFiles/integration_idea_test.dir/integration_idea_test.cpp.o"
  "CMakeFiles/integration_idea_test.dir/integration_idea_test.cpp.o.d"
  "integration_idea_test"
  "integration_idea_test.pdb"
  "integration_idea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_idea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
