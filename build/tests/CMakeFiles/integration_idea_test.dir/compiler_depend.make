# Empty compiler generated dependencies file for integration_idea_test.
# This may be replaced when dependencies are built.
