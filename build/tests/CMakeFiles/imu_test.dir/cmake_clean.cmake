file(REMOVE_RECURSE
  "CMakeFiles/imu_test.dir/imu_test.cpp.o"
  "CMakeFiles/imu_test.dir/imu_test.cpp.o.d"
  "imu_test"
  "imu_test.pdb"
  "imu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
