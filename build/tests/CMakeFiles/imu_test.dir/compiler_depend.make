# Empty compiler generated dependencies file for imu_test.
# This may be replaced when dependencies are built.
