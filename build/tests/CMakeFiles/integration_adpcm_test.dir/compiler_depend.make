# Empty compiler generated dependencies file for integration_adpcm_test.
# This may be replaced when dependencies are built.
