file(REMOVE_RECURSE
  "CMakeFiles/integration_adpcm_test.dir/integration_adpcm_test.cpp.o"
  "CMakeFiles/integration_adpcm_test.dir/integration_adpcm_test.cpp.o.d"
  "integration_adpcm_test"
  "integration_adpcm_test.pdb"
  "integration_adpcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_adpcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
