file(REMOVE_RECURSE
  "CMakeFiles/idea_test.dir/idea_test.cpp.o"
  "CMakeFiles/idea_test.dir/idea_test.cpp.o.d"
  "idea_test"
  "idea_test.pdb"
  "idea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
