# Empty compiler generated dependencies file for idea_test.
# This may be replaced when dependencies are built.
