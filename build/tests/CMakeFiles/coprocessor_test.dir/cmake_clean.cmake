file(REMOVE_RECURSE
  "CMakeFiles/coprocessor_test.dir/coprocessor_test.cpp.o"
  "CMakeFiles/coprocessor_test.dir/coprocessor_test.cpp.o.d"
  "coprocessor_test"
  "coprocessor_test.pdb"
  "coprocessor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coprocessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
