# Empty compiler generated dependencies file for coprocessor_test.
# This may be replaced when dependencies are built.
