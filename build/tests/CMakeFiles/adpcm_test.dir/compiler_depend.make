# Empty compiler generated dependencies file for adpcm_test.
# This may be replaced when dependencies are built.
