file(REMOVE_RECURSE
  "CMakeFiles/adpcm_test.dir/adpcm_test.cpp.o"
  "CMakeFiles/adpcm_test.dir/adpcm_test.cpp.o.d"
  "adpcm_test"
  "adpcm_test.pdb"
  "adpcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
