# Empty dependencies file for vim_test.
# This may be replaced when dependencies are built.
