file(REMOVE_RECURSE
  "CMakeFiles/vim_test.dir/vim_test.cpp.o"
  "CMakeFiles/vim_test.dir/vim_test.cpp.o.d"
  "vim_test"
  "vim_test.pdb"
  "vim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
