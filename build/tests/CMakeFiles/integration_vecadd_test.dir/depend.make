# Empty dependencies file for integration_vecadd_test.
# This may be replaced when dependencies are built.
