file(REMOVE_RECURSE
  "CMakeFiles/integration_vecadd_test.dir/integration_vecadd_test.cpp.o"
  "CMakeFiles/integration_vecadd_test.dir/integration_vecadd_test.cpp.o.d"
  "integration_vecadd_test"
  "integration_vecadd_test.pdb"
  "integration_vecadd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_vecadd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
