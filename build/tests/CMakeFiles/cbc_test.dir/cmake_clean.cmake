file(REMOVE_RECURSE
  "CMakeFiles/cbc_test.dir/cbc_test.cpp.o"
  "CMakeFiles/cbc_test.dir/cbc_test.cpp.o.d"
  "cbc_test"
  "cbc_test.pdb"
  "cbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
