# Empty compiler generated dependencies file for cbc_test.
# This may be replaced when dependencies are built.
