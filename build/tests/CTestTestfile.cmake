# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/imu_test[1]_include.cmake")
include("/root/repo/build/tests/coprocessor_test[1]_include.cmake")
include("/root/repo/build/tests/adpcm_test[1]_include.cmake")
include("/root/repo/build/tests/idea_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/vim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/ucode_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/conv_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/cbc_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/property_ext_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/integration_vecadd_test[1]_include.cmake")
include("/root/repo/build/tests/integration_adpcm_test[1]_include.cmake")
include("/root/repo/build/tests/integration_idea_test[1]_include.cmake")
