// Synthesis estimation for microcode coprocessors.
//
// §2 names the porting toolchain as "an appropriately augmented OS, a
// compiler, and a synthesiser". The OS is src/os, the compiler is
// ucode/compiler; this is the synthesiser's front half: given a
// program, estimate the PLD resources and achievable clock of the
// sequencer that would execute it, and check the design against a
// platform before producing a loadable bit-stream.
//
// The cost model is a documented engineering estimate (per-functional-
// unit LE counts in the EPXA1's 4-LUT fabric, clock derated by the
// deepest combinational unit used), not a real synthesis flow — the
// useful property is *relative* fidelity: multipliers are expensive and
// slow, logic is cheap, the microcode store grows with program size.
#pragma once

#include <string>

#include "base/status.h"
#include "base/units.h"
#include "hw/fabric.h"
#include "ucode/isa.h"

namespace vcop::ucode {

struct SynthesisEstimate {
  /// Total logic elements: sequencer + register file + the functional
  /// units the program actually uses + the microcode store.
  u32 logic_elements = 0;
  /// Bits of microcode store (one 64-bit word per instruction).
  u32 microcode_bits = 0;
  /// Achievable core clock, limited by the slowest unit instantiated.
  Frequency max_clock;
  /// Which units the design instantiates (for reports).
  bool has_multiplier = false;
  bool has_barrel_shifter = false;
  bool has_adder = false;
  bool has_logic_unit = false;

  std::string ToString() const;
};

/// Estimates the synthesised design for `program`.
SynthesisEstimate EstimateSynthesis(const Program& program);

/// Produces a loadable bit-stream for `program`, clocked at the lower
/// of the estimate's max clock and `requested_clock`, after verifying
/// the design fits `pld_capacity_les`. The IMU clock is set equal to
/// the core clock (the usual same-domain arrangement for sequencers).
Result<hw::Bitstream> SynthesiseBitstream(std::string name,
                                          Program program,
                                          Frequency requested_clock,
                                          u32 pld_capacity_les);

}  // namespace vcop::ucode
