#include "ucode/isa.h"

#include <algorithm>

#include "base/table.h"

namespace vcop::ucode {

std::string_view ToString(Op op) {
  switch (op) {
    case Op::kLoadImm: return "loadi";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kMul: return "mul";
    case Op::kAddImm: return "addi";
    case Op::kParam: return "param";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kJump: return "jmp";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kDelay: return "delay";
    case Op::kHalt: return "halt";
  }
  return "?";
}

namespace {

bool UsesRd(Op op) {
  switch (op) {
    case Op::kLoadImm:
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kMul:
    case Op::kAddImm:
    case Op::kParam:
    case Op::kRead:
      return true;
    default:
      return false;
  }
}

bool UsesRs(Op op) {
  switch (op) {
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kMul:
    case Op::kAddImm:
    case Op::kRead:
    case Op::kWrite:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
      return true;
    default:
      return false;
  }
}

bool UsesRt(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kMul:
    case Op::kWrite:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
      return true;
    default:
      return false;
  }
}

bool IsBranch(Op op) {
  switch (op) {
    case Op::kJump:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Program> Program::Create(std::vector<Instruction> code,
                                u32 num_params) {
  if (code.empty()) {
    return InvalidArgumentError("empty microcode program");
  }
  if (code.size() > (1u << 20)) {
    return InvalidArgumentError("microcode program unreasonably large");
  }
  bool has_halt = false;
  for (usize pc = 0; pc < code.size(); ++pc) {
    const Instruction& instr = code[pc];
    auto bad = [&](const std::string& what) {
      return InvalidArgumentError(StrFormat(
          "instruction %zu (%s): %s", pc,
          std::string(ToString(instr.op)).c_str(), what.c_str()));
    };
    if (UsesRd(instr.op) && instr.rd >= kNumRegisters) {
      return bad("destination register out of range");
    }
    if (UsesRs(instr.op) && instr.rs >= kNumRegisters) {
      return bad("source register rs out of range");
    }
    if (UsesRt(instr.op) && instr.rt >= kNumRegisters) {
      return bad("source register rt out of range");
    }
    if (IsBranch(instr.op) && instr.imm >= code.size()) {
      return bad("branch target beyond program end");
    }
    if ((instr.op == Op::kRead || instr.op == Op::kWrite) &&
        instr.imm >= hw::kMaxObjects) {
      return bad("object id out of range");
    }
    if (instr.op == Op::kParam && instr.imm >= num_params) {
      return bad(StrFormat("parameter %u requested but only %u declared",
                           instr.imm, num_params));
    }
    if (instr.op == Op::kDelay && instr.imm == 0) {
      return bad("delay must be at least one cycle");
    }
    has_halt = has_halt || instr.op == Op::kHalt;
  }
  if (!has_halt) {
    return InvalidArgumentError(
        "program has no halt: the coprocessor would never raise CP_FIN");
  }
  return Program(std::move(code), num_params);
}

std::vector<hw::ObjectId> Program::ReferencedObjects() const {
  std::vector<hw::ObjectId> objects;
  for (const Instruction& instr : code_) {
    if (instr.op == Op::kRead || instr.op == Op::kWrite) {
      objects.push_back(static_cast<hw::ObjectId>(instr.imm));
    }
  }
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()),
                objects.end());
  return objects;
}

std::string Program::Disassemble() const {
  std::string out;
  for (usize pc = 0; pc < code_.size(); ++pc) {
    const Instruction& instr = code_[pc];
    out += StrFormat("%4zu: %-6s", pc,
                     std::string(ToString(instr.op)).c_str());
    switch (instr.op) {
      case Op::kLoadImm:
        out += StrFormat("r%u, %u", instr.rd, instr.imm);
        break;
      case Op::kMov:
        out += StrFormat("r%u, r%u", instr.rd, instr.rs);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kMul:
        out += StrFormat("r%u, r%u, r%u", instr.rd, instr.rs, instr.rt);
        break;
      case Op::kAddImm:
        out += StrFormat("r%u, r%u, %u", instr.rd, instr.rs, instr.imm);
        break;
      case Op::kParam:
        out += StrFormat("r%u, %u", instr.rd, instr.imm);
        break;
      case Op::kRead:
        out += StrFormat("r%u, obj%u[r%u]", instr.rd, instr.imm, instr.rs);
        break;
      case Op::kWrite:
        out += StrFormat("obj%u[r%u], r%u", instr.imm, instr.rs, instr.rt);
        break;
      case Op::kJump:
        out += StrFormat("%u", instr.imm);
        break;
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
        out += StrFormat("r%u, r%u, %u", instr.rs, instr.rt, instr.imm);
        break;
      case Op::kDelay:
        out += StrFormat("%u", instr.imm);
        break;
      case Op::kHalt:
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace vcop::ucode
