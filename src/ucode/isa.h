// A tiny microcode ISA for writing portable coprocessors at runtime.
//
// The paper's coprocessors are VHDL FSMs that address operands as
// (object, element) pairs (Figure 5). This ISA is the same abstraction
// one level up: a register machine whose only memory operations are
// virtual-interface READ/WRITE, so a microcoded core is portable by
// construction — it cannot even express a physical address. One
// instruction retires per core clock cycle (memory operations stall on
// CP_TLBHIT like any coprocessor), which keeps the timing model honest:
// a microcode program *is* its cycle count.
//
// Sixteen 32-bit registers r0..r15. PARAM loads the scalar arguments
// fetched during the start-up phase (§3.2). DELAY models a fixed-depth
// datapath (e.g. "13 cycles of serial ADPCM quantiser").
#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "hw/tlb.h"

namespace vcop::ucode {

inline constexpr u32 kNumRegisters = 16;

enum class Op : u8 {
  kLoadImm,  // rd = imm
  kMov,      // rd = rs
  kAdd,      // rd = rs + rt
  kSub,      // rd = rs - rt
  kAnd,      // rd = rs & rt
  kOr,       // rd = rs | rt
  kXor,      // rd = rs ^ rt
  kShl,      // rd = rs << (rt & 31)
  kShr,      // rd = rs >> (rt & 31)  (logical)
  kMul,      // rd = rs * rt  (low 32 bits)
  kAddImm,   // rd = rs + imm
  kParam,    // rd = param[imm]
  kRead,     // rd = object[imm].elem[rs]   (stalls on CP_TLBHIT)
  kWrite,    // object[imm].elem[rs] = rt   (stalls on CP_TLBHIT)
  kJump,     // pc = imm
  kBeq,      // if (rs == rt) pc = imm
  kBne,      // if (rs != rt) pc = imm
  kBlt,      // if (rs <  rt) pc = imm  (unsigned)
  kBge,      // if (rs >= rt) pc = imm  (unsigned)
  kDelay,    // burn imm cycles (imm >= 1)
  kHalt,     // assert CP_FIN
};

std::string_view ToString(Op op);

struct Instruction {
  Op op = Op::kHalt;
  u8 rd = 0;
  u8 rs = 0;
  u8 rt = 0;
  u32 imm = 0;  // immediate / parameter index / object id / target pc
};

/// A validated microcode program.
class Program {
 public:
  /// Validates `code`: register indices in range, object ids valid,
  /// branch/jump targets within the program, DELAY >= 1, PARAM index
  /// sane, and a reachable... — at least one HALT present.
  static Result<Program> Create(std::vector<Instruction> code,
                                u32 num_params);

  const std::vector<Instruction>& code() const { return code_; }
  u32 num_params() const { return num_params_; }
  usize size() const { return code_.size(); }

  /// Objects the program touches (for documentation and LE estimation).
  std::vector<hw::ObjectId> ReferencedObjects() const;

  /// Human-readable disassembly.
  std::string Disassemble() const;

 private:
  Program(std::vector<Instruction> code, u32 num_params)
      : code_(std::move(code)), num_params_(num_params) {}

  std::vector<Instruction> code_;
  u32 num_params_ = 0;
};

}  // namespace vcop::ucode
