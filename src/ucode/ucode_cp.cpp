#include "ucode/ucode_cp.h"

namespace vcop::ucode {

MicrocodedCoprocessor::MicrocodedCoprocessor(Program program)
    : program_(std::move(program)) {}

void MicrocodedCoprocessor::OnStart() {
  pc_ = 0;
  delay_left_ = 0;
  retired_ = 0;
  for (u32& r : regs_) r = 0;
}

void MicrocodedCoprocessor::Step() {
  VCOP_CHECK_MSG(pc_ < program_.size(), "microcode pc ran off the end");
  const Instruction& instr = program_.code()[pc_];
  u32 next_pc = pc_ + 1;

  switch (instr.op) {
    case Op::kLoadImm:
      regs_[instr.rd] = instr.imm;
      break;
    case Op::kMov:
      regs_[instr.rd] = regs_[instr.rs];
      break;
    case Op::kAdd:
      regs_[instr.rd] = regs_[instr.rs] + regs_[instr.rt];
      break;
    case Op::kSub:
      regs_[instr.rd] = regs_[instr.rs] - regs_[instr.rt];
      break;
    case Op::kAnd:
      regs_[instr.rd] = regs_[instr.rs] & regs_[instr.rt];
      break;
    case Op::kOr:
      regs_[instr.rd] = regs_[instr.rs] | regs_[instr.rt];
      break;
    case Op::kXor:
      regs_[instr.rd] = regs_[instr.rs] ^ regs_[instr.rt];
      break;
    case Op::kShl:
      regs_[instr.rd] = regs_[instr.rs] << (regs_[instr.rt] & 31);
      break;
    case Op::kShr:
      regs_[instr.rd] = regs_[instr.rs] >> (regs_[instr.rt] & 31);
      break;
    case Op::kMul:
      regs_[instr.rd] = regs_[instr.rs] * regs_[instr.rt];
      break;
    case Op::kAddImm:
      regs_[instr.rd] = regs_[instr.rs] + instr.imm;
      break;
    case Op::kParam:
      regs_[instr.rd] = param(instr.imm);
      break;
    case Op::kRead: {
      u32 value = 0;
      if (!TryRead(static_cast<hw::ObjectId>(instr.imm), regs_[instr.rs],
                   value)) {
        return;  // stalled on CP_TLBHIT; retry this instruction
      }
      regs_[instr.rd] = value;
      break;
    }
    case Op::kWrite:
      if (!TryWrite(static_cast<hw::ObjectId>(instr.imm), regs_[instr.rs],
                    regs_[instr.rt])) {
        return;  // stalled
      }
      break;
    case Op::kJump:
      next_pc = instr.imm;
      break;
    case Op::kBeq:
      if (regs_[instr.rs] == regs_[instr.rt]) next_pc = instr.imm;
      break;
    case Op::kBne:
      if (regs_[instr.rs] != regs_[instr.rt]) next_pc = instr.imm;
      break;
    case Op::kBlt:
      if (regs_[instr.rs] < regs_[instr.rt]) next_pc = instr.imm;
      break;
    case Op::kBge:
      if (regs_[instr.rs] >= regs_[instr.rt]) next_pc = instr.imm;
      break;
    case Op::kDelay:
      if (delay_left_ == 0) delay_left_ = instr.imm;
      if (--delay_left_ != 0) return;  // keep burning cycles here
      break;
    case Op::kHalt:
      ++retired_;
      Finish();
      return;
  }
  ++retired_;
  pc_ = next_pc;
}

hw::Bitstream MakeMicrocodeBitstream(std::string name, Program program,
                                     Frequency cp_clock,
                                     Frequency imu_clock) {
  hw::Bitstream bs;
  bs.name = std::move(name);
  // Sequencer + register file (~600 LEs) plus the microcode store.
  bs.logic_elements =
      600 + static_cast<u32>(program.size()) * 2;
  bs.size_bytes =
      40 * 1024 + static_cast<u32>(program.size()) * 8;
  bs.cp_clock = cp_clock;
  bs.imu_clock = imu_clock;
  auto shared = std::make_shared<Program>(std::move(program));
  bs.create = [shared] {
    return std::make_unique<MicrocodedCoprocessor>(*shared);
  };
  return bs;
}

}  // namespace vcop::ucode
