#include "ucode/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "base/table.h"

namespace vcop::ucode {
namespace {

struct Token {
  std::string text;
};

/// Strips comments and splits a line into lowercase tokens, treating
/// ',', '[', ']' as separators.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char raw : line) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (c == ';' || c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
        c == '[' || c == ']') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      continue;
    }
    // A label marker binds to the preceding identifier.
    if (c == ':') {
      current += ':';
      tokens.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::optional<u8> ParseRegister(const std::string& token) {
  if (token.size() < 2 || token[0] != 'r') return std::nullopt;
  u32 value = 0;
  for (usize i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return std::nullopt;
    }
    value = value * 10 + static_cast<u32>(token[i] - '0');
  }
  if (value >= kNumRegisters) return std::nullopt;
  return static_cast<u8>(value);
}

std::optional<u32> ParseObject(const std::string& token) {
  if (token.size() < 4 || token.substr(0, 3) != "obj") return std::nullopt;
  u32 value = 0;
  for (usize i = 3; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return std::nullopt;
    }
    value = value * 10 + static_cast<u32>(token[i] - '0');
  }
  return value;
}

std::optional<u32> ParseImmediate(const std::string& token) {
  if (token.empty()) return std::nullopt;
  u64 value = 0;
  if (token.size() > 2 && token[0] == '0' && token[1] == 'x') {
    for (usize i = 2; i < token.size(); ++i) {
      const char c = token[i];
      u32 digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<u32>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
      value = value * 16 + digit;
      if (value > 0xFFFFFFFFULL) return std::nullopt;
    }
  } else {
    for (const char c : token) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      value = value * 10 + static_cast<u32>(c - '0');
      if (value > 0xFFFFFFFFULL) return std::nullopt;
    }
  }
  return static_cast<u32>(value);
}

struct PendingLabel {
  usize instruction;  // which instruction's imm to patch
  std::string label;
  usize line;
};

Status LineError(usize line, const std::string& message) {
  return InvalidArgumentError(
      StrFormat("line %zu: %s", line, message.c_str()));
}

}  // namespace

Result<Program> Assemble(std::string_view source, u32 num_params) {
  std::vector<Instruction> code;
  std::map<std::string, u32> labels;
  std::vector<PendingLabel> pending;

  usize line_number = 0;
  usize cursor = 0;
  while (cursor <= source.size()) {
    const usize end = source.find('\n', cursor);
    const std::string_view line =
        source.substr(cursor, end == std::string_view::npos
                                  ? std::string_view::npos
                                  : end - cursor);
    cursor = end == std::string_view::npos ? source.size() + 1 : end + 1;
    ++line_number;

    std::vector<std::string> tokens = Tokenize(line);
    // Leading labels (possibly several).
    usize t = 0;
    while (t < tokens.size() && tokens[t].back() == ':') {
      std::string name = tokens[t].substr(0, tokens[t].size() - 1);
      if (name.empty()) return LineError(line_number, "empty label");
      if (labels.count(name) != 0) {
        return LineError(line_number, "duplicate label '" + name + "'");
      }
      labels[name] = static_cast<u32>(code.size());
      ++t;
    }
    if (t >= tokens.size()) continue;  // label-only or blank line

    const std::string& mnemonic = tokens[t];
    const std::vector<std::string> args(tokens.begin() + t + 1,
                                        tokens.end());
    Instruction instr;

    auto need_args = [&](usize n) -> Status {
      if (args.size() != n) {
        return LineError(line_number,
                         StrFormat("'%s' expects %zu operands, got %zu",
                                   mnemonic.c_str(), n, args.size()));
      }
      return Status::Ok();
    };
    auto reg = [&](usize i, u8& out) -> Status {
      const std::optional<u8> r = ParseRegister(args[i]);
      if (!r.has_value()) {
        return LineError(line_number,
                         "'" + args[i] + "' is not a register (r0..r15)");
      }
      out = *r;
      return Status::Ok();
    };
    auto imm = [&](usize i, u32& out) -> Status {
      const std::optional<u32> v = ParseImmediate(args[i]);
      if (!v.has_value()) {
        return LineError(line_number,
                         "'" + args[i] + "' is not an immediate");
      }
      out = *v;
      return Status::Ok();
    };
    auto object = [&](usize i, u32& out) -> Status {
      const std::optional<u32> o = ParseObject(args[i]);
      if (!o.has_value()) {
        return LineError(line_number,
                         "'" + args[i] + "' is not an object (objN)");
      }
      out = *o;
      return Status::Ok();
    };
    auto target = [&](usize i) -> Status {
      // Numeric target or label (patched in pass 2).
      const std::optional<u32> v = ParseImmediate(args[i]);
      if (v.has_value()) {
        instr.imm = *v;
      } else {
        pending.push_back(
            PendingLabel{code.size(), args[i], line_number});
      }
      return Status::Ok();
    };

    if (mnemonic == "loadi") {
      instr.op = Op::kLoadImm;
      VCOP_RETURN_IF_ERROR(need_args(2));
      VCOP_RETURN_IF_ERROR(reg(0, instr.rd));
      VCOP_RETURN_IF_ERROR(imm(1, instr.imm));
    } else if (mnemonic == "mov") {
      instr.op = Op::kMov;
      VCOP_RETURN_IF_ERROR(need_args(2));
      VCOP_RETURN_IF_ERROR(reg(0, instr.rd));
      VCOP_RETURN_IF_ERROR(reg(1, instr.rs));
    } else if (mnemonic == "add" || mnemonic == "sub" || mnemonic == "and" ||
               mnemonic == "or" || mnemonic == "xor" || mnemonic == "shl" ||
               mnemonic == "shr" || mnemonic == "mul") {
      instr.op = mnemonic == "add"   ? Op::kAdd
                 : mnemonic == "sub" ? Op::kSub
                 : mnemonic == "and" ? Op::kAnd
                 : mnemonic == "or"  ? Op::kOr
                 : mnemonic == "xor" ? Op::kXor
                 : mnemonic == "shl" ? Op::kShl
                 : mnemonic == "shr" ? Op::kShr
                                     : Op::kMul;
      VCOP_RETURN_IF_ERROR(need_args(3));
      VCOP_RETURN_IF_ERROR(reg(0, instr.rd));
      VCOP_RETURN_IF_ERROR(reg(1, instr.rs));
      VCOP_RETURN_IF_ERROR(reg(2, instr.rt));
    } else if (mnemonic == "addi") {
      instr.op = Op::kAddImm;
      VCOP_RETURN_IF_ERROR(need_args(3));
      VCOP_RETURN_IF_ERROR(reg(0, instr.rd));
      VCOP_RETURN_IF_ERROR(reg(1, instr.rs));
      VCOP_RETURN_IF_ERROR(imm(2, instr.imm));
    } else if (mnemonic == "param") {
      instr.op = Op::kParam;
      VCOP_RETURN_IF_ERROR(need_args(2));
      VCOP_RETURN_IF_ERROR(reg(0, instr.rd));
      VCOP_RETURN_IF_ERROR(imm(1, instr.imm));
    } else if (mnemonic == "read") {
      instr.op = Op::kRead;
      VCOP_RETURN_IF_ERROR(need_args(3));  // rd, objN, index-reg
      VCOP_RETURN_IF_ERROR(reg(0, instr.rd));
      VCOP_RETURN_IF_ERROR(object(1, instr.imm));
      VCOP_RETURN_IF_ERROR(reg(2, instr.rs));
    } else if (mnemonic == "write") {
      instr.op = Op::kWrite;
      VCOP_RETURN_IF_ERROR(need_args(3));  // objN, index-reg, value-reg
      VCOP_RETURN_IF_ERROR(object(0, instr.imm));
      VCOP_RETURN_IF_ERROR(reg(1, instr.rs));
      VCOP_RETURN_IF_ERROR(reg(2, instr.rt));
    } else if (mnemonic == "jmp") {
      instr.op = Op::kJump;
      VCOP_RETURN_IF_ERROR(need_args(1));
      VCOP_RETURN_IF_ERROR(target(0));
    } else if (mnemonic == "beq" || mnemonic == "bne" || mnemonic == "blt" ||
               mnemonic == "bge") {
      instr.op = mnemonic == "beq"   ? Op::kBeq
                 : mnemonic == "bne" ? Op::kBne
                 : mnemonic == "blt" ? Op::kBlt
                                     : Op::kBge;
      VCOP_RETURN_IF_ERROR(need_args(3));
      VCOP_RETURN_IF_ERROR(reg(0, instr.rs));
      VCOP_RETURN_IF_ERROR(reg(1, instr.rt));
      VCOP_RETURN_IF_ERROR(target(2));
    } else if (mnemonic == "delay") {
      instr.op = Op::kDelay;
      VCOP_RETURN_IF_ERROR(need_args(1));
      VCOP_RETURN_IF_ERROR(imm(0, instr.imm));
    } else if (mnemonic == "halt") {
      instr.op = Op::kHalt;
      VCOP_RETURN_IF_ERROR(need_args(0));
    } else {
      return LineError(line_number,
                       "unknown mnemonic '" + mnemonic + "'");
    }
    code.push_back(instr);
  }

  for (const PendingLabel& p : pending) {
    const auto it = labels.find(p.label);
    if (it == labels.end()) {
      return LineError(p.line, "undefined label '" + p.label + "'");
    }
    code[p.instruction].imm = it->second;
  }

  return Program::Create(std::move(code), num_params);
}

}  // namespace vcop::ucode
