// A small compiler from element-wise expression kernels to microcode.
//
// §2 positions the OS, "a compiler, and a synthesiser" as the porting
// toolchain. This is that compiler for the map-kernel fragment:
//
//     Expr body = (Expr::Input(0) * Expr::Param(1) + Expr::Input(1));
//     auto program = CompileMapKernel({"saxpy", /*output=*/1, body});
//
// compiles to a microcode loop computing out[i] = body for i in
// [0, param 0), with loop-invariant subexpressions (parameters,
// constants) hoisted out of the loop and repeated reads of the same
// input deduplicated within an iteration.
#pragma once

#include <memory>
#include <string>

#include "base/status.h"
#include "hw/tlb.h"
#include "ucode/isa.h"

namespace vcop::ucode {

/// An expression over the loop index's elements. Value-semantic handle
/// over an immutable tree; cheap to copy and compose.
class Expr {
 public:
  /// The current element of `object` (object[i] at loop index i).
  static Expr Input(hw::ObjectId object);
  /// A 32-bit literal.
  static Expr Constant(u32 value);
  /// Scalar parameter `index` of FPGA_EXECUTE (index >= 1; parameter 0
  /// is reserved for the element count).
  static Expr Param(u32 index);
  /// The loop index itself.
  static Expr Index();

  friend Expr operator+(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a, const Expr& b);
  friend Expr operator*(const Expr& a, const Expr& b);
  friend Expr operator&(const Expr& a, const Expr& b);
  friend Expr operator|(const Expr& a, const Expr& b);
  friend Expr operator^(const Expr& a, const Expr& b);
  /// Logical shifts by a (usually constant) amount.
  static Expr Shl(const Expr& a, const Expr& amount);
  static Expr Shr(const Expr& a, const Expr& amount);

  struct Node;
  const Node& node() const { return *node_; }

 private:
  explicit Expr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

struct Expr::Node {
  enum class Kind { kInput, kConstant, kParam, kIndex, kBinary };
  Kind kind = Kind::kConstant;
  hw::ObjectId object = 0;  // kInput
  u32 value = 0;            // kConstant / kParam index
  Op op = Op::kAdd;         // kBinary
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

struct MapKernelSpec {
  std::string name;
  /// Destination object: out[i] receives the body's value.
  hw::ObjectId output = 1;
  Expr body = Expr::Constant(0);
  /// Extra DELAY cycles per element, to model a deeper datapath.
  u32 extra_delay = 0;
};

/// Compiles the kernel. Parameter 0 of the resulting program is the
/// element count; the kernel's Expr::Param indices must start at 1.
/// Fails when the expression needs more temporaries than the register
/// file provides.
Result<Program> CompileMapKernel(const MapKernelSpec& spec);

}  // namespace vcop::ucode
