#include "ucode/estimator.h"

#include "base/table.h"
#include "ucode/ucode_cp.h"

namespace vcop::ucode {

namespace {
// Unit costs in 4-LUT logic elements, EPXA1-class fabric. One shared
// instance per unit regardless of how many instructions use it (the
// sequencer is single-issue).
constexpr u32 kSequencerLes = 380;      // pc, fetch, decode, stall logic
constexpr u32 kRegisterFileLes = 512;   // 16 x 32 in LE registers
constexpr u32 kInterfacePortLes = 210;  // CP_* handshake machinery
constexpr u32 kAdderLes = 64;           // 32-bit carry chain
constexpr u32 kLogicUnitLes = 40;       // and/or/xor
constexpr u32 kBarrelShifterLes = 140;  // 5-stage 32-bit barrel
constexpr u32 kMultiplierLes = 620;     // 32x32 LUT multiplier (no DSPs)
constexpr u32 kCompareLes = 48;         // branch comparator
// Microcode store: LUT-RAM, ~2 LEs per 64-bit word on this fabric.
constexpr u32 kStoreLesPerWord = 2;
}  // namespace

std::string SynthesisEstimate::ToString() const {
  return StrFormat(
      "%u LEs, %u microcode bits, max clock %s (units:%s%s%s%s)",
      logic_elements, microcode_bits, max_clock.ToString().c_str(),
      has_adder ? " add" : "", has_logic_unit ? " logic" : "",
      has_barrel_shifter ? " shift" : "", has_multiplier ? " mul" : "");
}

SynthesisEstimate EstimateSynthesis(const Program& program) {
  SynthesisEstimate est;
  bool has_branch = false;
  for (const Instruction& instr : program.code()) {
    switch (instr.op) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kAddImm:
        est.has_adder = true;
        break;
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
        est.has_logic_unit = true;
        break;
      case Op::kShl:
      case Op::kShr:
        est.has_barrel_shifter = true;
        break;
      case Op::kMul:
        est.has_multiplier = true;
        break;
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
        has_branch = true;
        est.has_adder = true;  // the comparator reuses the adder
        break;
      default:
        break;
    }
  }

  est.microcode_bits = static_cast<u32>(program.size()) * 64;
  est.logic_elements = kSequencerLes + kRegisterFileLes +
                       kInterfacePortLes +
                       static_cast<u32>(program.size()) * kStoreLesPerWord;
  if (est.has_adder) est.logic_elements += kAdderLes;
  if (est.has_logic_unit) est.logic_elements += kLogicUnitLes;
  if (est.has_barrel_shifter) est.logic_elements += kBarrelShifterLes;
  if (est.has_multiplier) est.logic_elements += kMultiplierLes;
  if (has_branch) est.logic_elements += kCompareLes;

  // Clock: the single-cycle contract means the slowest unit sets fmax.
  // LUT carry chains close ~66 MHz on this fabric; the barrel shifter
  // ~50 MHz; a combinational LUT multiplier only ~12 MHz (a real design
  // would pipeline it — cf. the IDEA core's 6 MHz with deep arithmetic).
  u64 mhz = 66;
  if (est.has_barrel_shifter) mhz = std::min<u64>(mhz, 50);
  if (est.has_multiplier) mhz = std::min<u64>(mhz, 12);
  est.max_clock = Frequency::MHz(mhz);
  return est;
}

Result<hw::Bitstream> SynthesiseBitstream(std::string name,
                                          Program program,
                                          Frequency requested_clock,
                                          u32 pld_capacity_les) {
  if (!requested_clock.valid()) {
    return InvalidArgumentError("requested clock must be nonzero");
  }
  const SynthesisEstimate est = EstimateSynthesis(program);
  if (est.logic_elements > pld_capacity_les) {
    return ResourceExhaustedError(StrFormat(
        "design '%s' does not fit: needs %u LEs, the PLD has %u",
        name.c_str(), est.logic_elements, pld_capacity_les));
  }
  const Frequency clock =
      requested_clock.hertz() <= est.max_clock.hertz() ? requested_clock
                                                       : est.max_clock;
  hw::Bitstream bs =
      MakeMicrocodeBitstream(std::move(name), std::move(program), clock,
                             clock);
  bs.logic_elements = est.logic_elements;
  return bs;
}

}  // namespace vcop::ucode
