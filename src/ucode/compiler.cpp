#include "ucode/compiler.h"

#include <algorithm>
#include <map>
#include <vector>

#include "base/table.h"

namespace vcop::ucode {

using Node = Expr::Node;

Expr Expr::Input(hw::ObjectId object) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kInput;
  node->object = object;
  return Expr(node);
}

Expr Expr::Constant(u32 value) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kConstant;
  node->value = value;
  return Expr(node);
}

Expr Expr::Param(u32 index) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kParam;
  node->value = index;
  return Expr(node);
}

Expr Expr::Index() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kIndex;
  return Expr(node);
}

// The friend operators can see Expr::node_ directly.
Expr operator+(const Expr& a, const Expr& b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kAdd;
  node->lhs = a.node_;
  node->rhs = b.node_;
  return Expr(node);
}
Expr operator-(const Expr& a, const Expr& b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kSub;
  node->lhs = a.node_;
  node->rhs = b.node_;
  return Expr(node);
}
Expr operator*(const Expr& a, const Expr& b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kMul;
  node->lhs = a.node_;
  node->rhs = b.node_;
  return Expr(node);
}
Expr operator&(const Expr& a, const Expr& b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kAnd;
  node->lhs = a.node_;
  node->rhs = b.node_;
  return Expr(node);
}
Expr operator|(const Expr& a, const Expr& b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kOr;
  node->lhs = a.node_;
  node->rhs = b.node_;
  return Expr(node);
}
Expr operator^(const Expr& a, const Expr& b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kXor;
  node->lhs = a.node_;
  node->rhs = b.node_;
  return Expr(node);
}
Expr Expr::Shl(const Expr& a, const Expr& amount) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kShl;
  node->lhs = a.node_;
  node->rhs = amount.node_;
  return Expr(node);
}
Expr Expr::Shr(const Expr& a, const Expr& amount) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBinary;
  node->op = Op::kShr;
  node->lhs = a.node_;
  node->rhs = amount.node_;
  return Expr(node);
}

namespace {

/// Compilation context: register assignments and emitted code.
class MapCompiler {
 public:
  explicit MapCompiler(const MapKernelSpec& spec) : spec_(spec) {}

  Result<Program> Compile();

 private:
  // Register plan:
  //   r0 = loop index, r1 = element count (parameter 0),
  //   r2..floor-1 = expression temporaries + per-iteration input cache,
  //   floor..r15 = hoisted loop invariants (params, constants).
  static constexpr u8 kIndexReg = 0;
  static constexpr u8 kCountReg = 1;
  static constexpr u8 kFirstTemp = 2;

  Status CollectInvariants(const Node& node);
  Result<u8> Evaluate(const Node& node);
  Result<u8> AllocTemp();
  void FreeTemp(u8 reg);

  const MapKernelSpec& spec_;
  std::vector<Instruction> code_;
  // Hoisted values: key is {kind, value} for params/constants.
  std::map<std::pair<int, u32>, u8> invariants_;
  // Per-iteration cached input reads: object -> register.
  std::map<hw::ObjectId, u8> input_regs_;
  u8 hoist_floor_ = 16;  // next hoisted register - grows downward
  std::vector<bool> temp_in_use_ =
      std::vector<bool>(kNumRegisters, false);
  u32 max_param_ = 0;
};

Result<u8> MapCompiler::AllocTemp() {
  for (u8 r = kFirstTemp; r < hoist_floor_; ++r) {
    if (!temp_in_use_[r]) {
      temp_in_use_[r] = true;
      return r;
    }
  }
  return ResourceExhaustedError(
      StrFormat("kernel '%s' needs more temporaries than the %u-register "
                "file provides",
                spec_.name.c_str(), kNumRegisters));
}

void MapCompiler::FreeTemp(u8 reg) {
  if (reg >= kFirstTemp && reg < hoist_floor_ &&
      input_regs_.end() ==
          std::find_if(input_regs_.begin(), input_regs_.end(),
                       [reg](const auto& kv) { return kv.second == reg; })) {
    temp_in_use_[reg] = false;
  }
}

Status MapCompiler::CollectInvariants(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kConstant:
    case Node::Kind::kParam: {
      if (node.kind == Node::Kind::kParam) {
        if (node.value == 0) {
          return InvalidArgumentError(
              "Expr::Param(0) is reserved for the element count");
        }
        max_param_ = std::max(max_param_, node.value);
      }
      const std::pair<int, u32> key{static_cast<int>(node.kind),
                                    node.value};
      if (invariants_.count(key) != 0) return Status::Ok();
      if (hoist_floor_ <= kFirstTemp + 2) {
        return ResourceExhaustedError(
            "too many distinct parameters/constants to hoist");
      }
      --hoist_floor_;
      invariants_[key] = hoist_floor_;
      return Status::Ok();
    }
    case Node::Kind::kInput: {
      if (input_regs_.count(node.object) != 0) return Status::Ok();
      // Reserve a persistent per-iteration register for this input.
      Result<u8> reg = AllocTemp();
      if (!reg.ok()) return reg.status();
      input_regs_[node.object] = reg.value();
      return Status::Ok();
    }
    case Node::Kind::kIndex:
      return Status::Ok();
    case Node::Kind::kBinary: {
      VCOP_RETURN_IF_ERROR(CollectInvariants(*node.lhs));
      return CollectInvariants(*node.rhs);
    }
  }
  return InternalError("unreachable expression kind");
}

Result<u8> MapCompiler::Evaluate(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kConstant:
    case Node::Kind::kParam:
      return invariants_.at(
          {static_cast<int>(node.kind), node.value});
    case Node::Kind::kInput:
      return input_regs_.at(node.object);
    case Node::Kind::kIndex:
      return kIndexReg;
    case Node::Kind::kBinary: {
      Result<u8> lhs = Evaluate(*node.lhs);
      if (!lhs.ok()) return lhs;
      Result<u8> rhs = Evaluate(*node.rhs);
      if (!rhs.ok()) return rhs;
      Result<u8> dst = AllocTemp();
      if (!dst.ok()) return dst;
      Instruction instr;
      instr.op = node.op;
      instr.rd = dst.value();
      instr.rs = lhs.value();
      instr.rt = rhs.value();
      code_.push_back(instr);
      FreeTemp(lhs.value());
      FreeTemp(rhs.value());
      return dst;
    }
  }
  return InternalError("unreachable expression kind");
}

Result<Program> MapCompiler::Compile() {
  VCOP_RETURN_IF_ERROR(CollectInvariants(spec_.body.node()));
  if (input_regs_.count(spec_.output) != 0) {
    // Reading and writing the same object is fine (e.g. y = a*x + y).
  }

  auto emit = [this](Instruction instr) { code_.push_back(instr); };

  // Prologue: n, then the hoisted invariants.
  {
    Instruction instr;
    instr.op = Op::kParam;
    instr.rd = kCountReg;
    instr.imm = 0;
    emit(instr);
  }
  for (const auto& [key, reg] : invariants_) {
    Instruction instr;
    if (key.first == static_cast<int>(Node::Kind::kParam)) {
      instr.op = Op::kParam;
    } else {
      instr.op = Op::kLoadImm;
    }
    instr.rd = reg;
    instr.imm = key.second;
    emit(instr);
  }
  {
    Instruction instr;
    instr.op = Op::kLoadImm;
    instr.rd = kIndexReg;
    instr.imm = 0;
    emit(instr);
  }

  const u32 loop_top = static_cast<u32>(code_.size());
  // bge i, n, done — target patched after the loop body.
  const usize exit_branch = code_.size();
  {
    Instruction instr;
    instr.op = Op::kBge;
    instr.rs = kIndexReg;
    instr.rt = kCountReg;
    emit(instr);
  }
  // Per-iteration input reads.
  for (const auto& [object, reg] : input_regs_) {
    Instruction instr;
    instr.op = Op::kRead;
    instr.rd = reg;
    instr.imm = object;
    instr.rs = kIndexReg;
    emit(instr);
  }
  // Body.
  Result<u8> result = Evaluate(spec_.body.node());
  if (!result.ok()) return result.status();
  if (spec_.extra_delay > 0) {
    Instruction instr;
    instr.op = Op::kDelay;
    instr.imm = spec_.extra_delay;
    emit(instr);
  }
  {
    Instruction instr;
    instr.op = Op::kWrite;
    instr.imm = spec_.output;
    instr.rs = kIndexReg;
    instr.rt = result.value();
    emit(instr);
  }
  FreeTemp(result.value());
  {
    Instruction instr;
    instr.op = Op::kAddImm;
    instr.rd = kIndexReg;
    instr.rs = kIndexReg;
    instr.imm = 1;
    emit(instr);
  }
  {
    Instruction instr;
    instr.op = Op::kJump;
    instr.imm = loop_top;
    emit(instr);
  }
  code_[exit_branch].imm = static_cast<u32>(code_.size());
  {
    Instruction instr;
    instr.op = Op::kHalt;
    emit(instr);
  }

  return Program::Create(std::move(code_), max_param_ + 1);
}

}  // namespace

Result<Program> CompileMapKernel(const MapKernelSpec& spec) {
  MapCompiler compiler(spec);
  return compiler.Compile();
}

}  // namespace vcop::ucode
