// Two-pass assembler for the microcode ISA.
//
// Syntax (one instruction per line; ';' or '#' start a comment):
//
//     ; C[i] = A[i] + B[i]
//             param  r7, 0          ; r7 = SIZE
//             loadi  r0, 0          ; i = 0
//     loop:   bge    r0, r7, done
//             read   r1, obj0[r0]
//             read   r2, obj1[r0]
//             add    r3, r1, r2
//             write  obj2[r0], r3
//             addi   r0, r0, 1
//             jmp    loop
//     done:   halt
//
// Registers are r0..r15; objects are obj0..obj14 (obj15 is the
// reserved parameter page); labels end with ':' and may share a line
// with an instruction. Immediates are decimal or 0x-hex.
#pragma once

#include <string_view>

#include "base/status.h"
#include "ucode/isa.h"

namespace vcop::ucode {

/// Assembles `source` into a validated Program. `num_params` declares
/// how many scalar parameters the coprocessor will be started with
/// (PARAM indices are checked against it).
Result<Program> Assemble(std::string_view source, u32 num_params);

}  // namespace vcop::ucode
