// MicrocodedCoprocessor: executes a ucode::Program on the portable
// coprocessor interface — one instruction per core cycle, with READ and
// WRITE stalling on CP_TLBHIT exactly like a hand-written FSM.
//
// This is the library's answer to "I want a new accelerator without
// writing C++": assemble a program at runtime, wrap it in a bit-stream
// and run it through the unchanged VIM machinery.
#pragma once

#include <memory>
#include <string>

#include "base/status.h"
#include "base/units.h"
#include "hw/coprocessor.h"
#include "hw/fabric.h"
#include "ucode/isa.h"

namespace vcop::ucode {

class MicrocodedCoprocessor final : public hw::Coprocessor {
 public:
  explicit MicrocodedCoprocessor(Program program);

  std::string_view name() const override { return "ucode"; }

  /// Instructions retired so far in the current run.
  u64 instructions_retired() const { return retired_; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  Program program_;
  u32 pc_ = 0;
  u32 regs_[kNumRegisters] = {};
  u32 delay_left_ = 0;
  u64 retired_ = 0;
};

/// Wraps `program` as a loadable bit-stream. The configuration size and
/// logic-element estimate scale with the program (a microcode store and
/// a fixed sequencer datapath).
hw::Bitstream MakeMicrocodeBitstream(std::string name, Program program,
                                     Frequency cp_clock,
                                     Frequency imu_clock);

}  // namespace vcop::ucode
