#include "sim/trace.h"

#include <algorithm>
#include <optional>

#include "base/table.h"

namespace vcop::sim {

SignalId Tracer::AddSignal(std::string name, u32 width) {
  VCOP_CHECK_MSG(width >= 1 && width <= 64, "signal width must be 1..64");
  signals_.push_back(Signal{std::move(name), width, {}});
  return static_cast<SignalId>(signals_.size() - 1);
}

void Tracer::Record(SignalId signal, Picoseconds t, u64 value) {
  VCOP_CHECK_MSG(signal < signals_.size(), "unknown signal id");
  Signal& s = signals_[signal];
  if (s.width < 64) value &= LowMask(s.width);
  if (!s.changes.empty()) {
    VCOP_CHECK_MSG(t >= s.changes.back().time,
                   "trace times must be non-decreasing");
    if (s.changes.back().value == value) return;
    if (s.changes.back().time == t) {
      // Same-timestamp overwrite (delta-cycle style): keep latest.
      s.changes.back().value = value;
      return;
    }
  }
  s.changes.push_back(Change{t, value});
}

usize Tracer::num_changes() const {
  usize n = 0;
  for (const Signal& s : signals_) n += s.changes.size();
  return n;
}

std::optional<u64> Tracer::ValueAt(SignalId signal, Picoseconds t) const {
  VCOP_CHECK_MSG(signal < signals_.size(), "unknown signal id");
  const auto& changes = signals_[signal].changes;
  auto it = std::upper_bound(
      changes.begin(), changes.end(), t,
      [](Picoseconds lhs, const Change& c) { return lhs < c.time; });
  if (it == changes.begin()) return std::nullopt;
  return std::prev(it)->value;
}

namespace {

// VCD identifier for signal i: printable chars from '!' (33) upward.
std::string VcdId(usize i) {
  std::string id;
  do {
    id += static_cast<char>('!' + i % 94);
    i /= 94;
  } while (i != 0);
  return id;
}

std::string VcdBits(u64 v, u32 width) {
  std::string bits(width, '0');
  for (u32 b = 0; b < width; ++b) {
    if ((v >> b) & 1) bits[width - 1 - b] = '1';
  }
  return bits;
}

}  // namespace

std::string Tracer::ToVcd() const {
  std::string out;
  out += "$timescale 1ps $end\n$scope module vcop $end\n";
  for (usize i = 0; i < signals_.size(); ++i) {
    out += StrFormat("$var wire %u %s %s $end\n", signals_[i].width,
                     VcdId(i).c_str(), signals_[i].name.c_str());
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  // Merge-sort all changes by time.
  struct Item {
    Picoseconds time;
    usize signal;
    usize index;
  };
  std::vector<Item> items;
  for (usize s = 0; s < signals_.size(); ++s) {
    for (usize c = 0; c < signals_[s].changes.size(); ++c) {
      items.push_back(Item{signals_[s].changes[c].time, s, c});
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.time < b.time; });

  std::optional<Picoseconds> current_time;
  for (const Item& item : items) {
    if (!current_time || *current_time != item.time) {
      out += StrFormat("#%llu\n",
                       static_cast<unsigned long long>(item.time));
      current_time = item.time;
    }
    const Signal& s = signals_[item.signal];
    const u64 v = s.changes[item.index].value;
    if (s.width == 1) {
      out += StrFormat("%llu%s\n", static_cast<unsigned long long>(v & 1),
                       VcdId(item.signal).c_str());
    } else {
      out += "b" + VcdBits(v, s.width) + " " + VcdId(item.signal) + "\n";
    }
  }
  return out;
}

std::string Tracer::ToAscii(Picoseconds from, Picoseconds to,
                            Picoseconds step) const {
  VCOP_CHECK_MSG(step > 0 && to >= from, "bad ASCII trace window");
  const usize columns = static_cast<usize>((to - from) / step) + 1;

  usize name_width = 0;
  for (const Signal& s : signals_) name_width = std::max(name_width, s.name.size());

  std::string out;
  for (usize si = 0; si < signals_.size(); ++si) {
    const Signal& s = signals_[si];
    std::string lane = s.name;
    lane.append(name_width - s.name.size() + 2, ' ');
    std::optional<u64> prev;
    for (usize col = 0; col < columns; ++col) {
      const Picoseconds t = from + col * step;
      const std::optional<u64> v = ValueAt(static_cast<SignalId>(si), t);
      if (s.width == 1) {
        if (!v.has_value()) {
          lane += 'x';
        } else if (prev.has_value() && *prev != *v) {
          lane += (*v != 0) ? '/' : '\\';
        } else {
          lane += (*v != 0) ? '^' : '_';
        }
      } else {
        if (!v.has_value()) {
          lane += "..";
        } else if (!prev.has_value() || *prev != *v) {
          lane += StrFormat("%02llx", static_cast<unsigned long long>(*v));
        } else {
          lane += "==";
        }
      }
      prev = v;
    }
    out += lane;
    out += '\n';
  }
  return out;
}

}  // namespace vcop::sim
