// Discrete-event queue: the heart of the simulation kernel.
//
// Events are (timestamp, priority, sequence) ordered; sequence numbers
// make same-timestamp ordering deterministic (FIFO among equal times),
// which matters when clock domains share edges — e.g. the 24 MHz IMU
// clock and the 6 MHz IDEA core clock coincide every fourth IMU edge,
// and the IMU must tick first so that data asserted "on the 4th rising
// edge" (paper Figure 7) is visible to the coprocessor sampling that
// edge.
//
// The storage is an owned 4-ary heap of plain (time, priority, seq,
// slot) keys over a stable pool of inline small-buffer callbacks
// (InlineFunction): pushing or popping an event performs no heap
// allocation for captures up to InlineFunction::kInlineBytes, and
// DispatchOne moves the winning callback out of its pool slot before
// running it (no const_cast through priority_queue::top, which the
// previous implementation needed). Keeping the callbacks out of the
// heap array matters: sift moves then shuffle 24-byte keys instead of
// relocating whole callback buffers through their type-erased move op.
// A 4-ary layout halves the tree depth of a binary heap, trading
// slightly wider sift-down comparisons for fewer entry moves.
#pragma once

#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "sim/inline_function.h"

namespace vcop::sim {

/// A time-ordered queue of callbacks.
///
/// Same-timestamp events dispatch by ascending `priority`, then FIFO.
/// Clock domains use their creation index as priority so that, on
/// coincident edges, the earlier-created domain always ticks first —
/// regardless of when each domain's edge event happened to be enqueued.
class EventQueue {
 public:
  using Action = InlineFunction;

  /// Priority of events scheduled without an explicit one (after all
  /// clock edges of that timestamp).
  static constexpr u32 kDefaultPriority = 1000;

  /// Schedules `action` at absolute time `t`. `t` must not be earlier
  /// than the timestamp of the event currently being dispatched.
  void ScheduleAt(Picoseconds t, Action action) {
    ScheduleAt(t, kDefaultPriority, std::move(action));
  }

  /// Same, with an explicit same-timestamp priority (lower runs first).
  void ScheduleAt(Picoseconds t, u32 priority, Action action);

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }

  usize size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  Picoseconds NextTime() const;

  /// Priority of the earliest pending event. Precondition: !empty().
  u32 NextPriority() const;

  /// Pops and runs the earliest event; advances now(). Precondition:
  /// !empty().
  void DispatchOne();

  /// Advances now() without dispatching — used by clock domains that
  /// coalesce several of their own edges into one dispatched event.
  /// `t` must not pass the earliest pending event.
  void AdvanceNow(Picoseconds t);

  /// Current simulation time: the timestamp of the last dispatched
  /// event (0 before any dispatch).
  Picoseconds now() const { return now_; }

  /// Total number of events dispatched so far. Edges a clock domain
  /// skips or coalesces never appear here — this is the host-side work
  /// metric BENCH_kernel.json reports.
  u64 dispatched() const { return dispatched_; }

 private:
  struct Entry {
    Picoseconds time;
    u32 priority;
    u32 slot;  // index into slots_; callbacks never move during sifts
    u64 seq;
  };

  /// Strict ordering: earlier (time, priority, seq) dispatches first.
  static bool Before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  void SiftUp(usize i);
  void SiftDown(usize i);

  std::vector<Entry> heap_;  // 4-ary: children of i are 4i+1 .. 4i+4
  std::vector<Action> slots_;     // one live callback per pending event
  std::vector<u32> free_slots_;   // recycled slots_ indices
  Picoseconds now_ = 0;
  u64 next_seq_ = 0;
  u64 dispatched_ = 0;
};

}  // namespace vcop::sim
