// Discrete-event queue: the heart of the simulation kernel.
//
// Events are (timestamp, sequence) ordered; sequence numbers make
// same-timestamp ordering deterministic (FIFO among equal times), which
// matters when clock domains share edges — e.g. the 24 MHz IMU clock and
// the 6 MHz IDEA core clock coincide every fourth IMU edge, and the IMU
// must tick first so that data asserted "on the 4th rising edge"
// (paper Figure 7) is visible to the coprocessor sampling that edge.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::sim {

/// A time-ordered queue of callbacks.
///
/// Same-timestamp events dispatch by ascending `priority`, then FIFO.
/// Clock domains use their creation index as priority so that, on
/// coincident edges, the earlier-created domain always ticks first —
/// regardless of when each domain's edge event happened to be enqueued.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Priority of events scheduled without an explicit one (after all
  /// clock edges of that timestamp).
  static constexpr u32 kDefaultPriority = 1000;

  /// Schedules `action` at absolute time `t`. `t` must not be earlier
  /// than the timestamp of the event currently being dispatched.
  void ScheduleAt(Picoseconds t, Action action) {
    ScheduleAt(t, kDefaultPriority, std::move(action));
  }

  /// Same, with an explicit same-timestamp priority (lower runs first).
  void ScheduleAt(Picoseconds t, u32 priority, Action action);

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }

  usize size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  Picoseconds NextTime() const;

  /// Pops and runs the earliest event; advances now(). Precondition:
  /// !empty().
  void DispatchOne();

  /// Current simulation time: the timestamp of the last dispatched
  /// event (0 before any dispatch).
  Picoseconds now() const { return now_; }

  /// Total number of events dispatched so far.
  u64 dispatched() const { return dispatched_; }

 private:
  struct Entry {
    Picoseconds time;
    u32 priority;
    u64 seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Picoseconds now_ = 0;
  u64 next_seq_ = 0;
  u64 dispatched_ = 0;
};

}  // namespace vcop::sim
