#include "sim/fleet.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace vcop::sim {

u32 FleetThreadCount(u32 requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("VCOP_FLEET_THREADS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<u32>(n);
  }
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void RunFleet(usize count, const std::function<void(usize)>& task,
              u32 threads) {
  if (count == 0) return;
  u32 workers = FleetThreadCount(threads);
  if (workers > count) workers = static_cast<u32>(count);
  if (workers <= 1) {
    // Degenerate pool: run inline. Keeps single-thread runs (and the
    // reference timing numbers in BENCH_fastforward.json) free of any
    // thread setup cost, and exceptions propagate naturally.
    for (usize i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<usize> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const usize i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (u32 t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace vcop::sim
