// Clock domains and clocked modules.
//
// A ClockDomain ticks its attached modules on every rising edge while at
// least one module reports active(); it then goes dormant and must be
// Kick()ed to resume. Edge timestamps come from Frequency::EdgeTime's
// global grid, so a dormant period never shifts the phase of the clock —
// exactly like gating a real oscillator-derived clock.
//
// Edge batching: a module that knows it has nothing to do for the next
// N-1 edges (an IMU counting translation cycles, a coprocessor burning
// a fixed compute delay) reports that through NextInterestingEdge();
// the domain then schedules one event at the Nth edge and credits the
// skipped edges through OnEdgesSkipped() when it fires. The interesting
// edge itself is always *ticked* (OnRisingEdge runs at its exact
// timestamp), so edge-accurate behaviour — translation at the 4th
// rising edge, Figure 7 — is preserved while the event count drops by
// the batch factor. External state changes that make an earlier edge
// interesting must Kick()/KickAt() the domain, which pulls the pending
// event forward; batching can only ever be cancelled early, never
// overshoot.
#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::sim {

class Simulator;

/// Interface for hardware models driven by a clock edge.
class ClockedModule {
 public:
  virtual ~ClockedModule() = default;

  /// Returned by NextInterestingEdge when the module needs no edge at
  /// all until some external event Kick()s its domain.
  static constexpr u64 kNeverInteresting = ~0ULL;

  /// Called once per rising edge of the attached domain, in attach order.
  virtual void OnRisingEdge() = 0;

  /// While any attached module is active, the domain keeps ticking.
  /// An inactive module whose state is changed externally (a request
  /// arrives, the OS un-stalls it) must Kick() its domain.
  virtual bool active() const = 0;

  /// Batching hint: how many edges ahead, counting the upcoming edge
  /// (whose timestamp is `next_edge_time`) as 1, the module next needs
  /// OnRisingEdge to run. 1 (the default) means "tick every edge";
  /// kNeverInteresting means "none until kicked". Skipped edges are
  /// reported through OnEdgesSkipped before the interesting edge ticks.
  virtual u64 NextInterestingEdge(Picoseconds next_edge_time) const {
    (void)next_edge_time;
    return 1;
  }

  /// Batching credit: `count` edges starting at `first_edge_time` were
  /// skipped under this module's (or a co-attached module's) hint. The
  /// module must apply whatever per-edge bookkeeping OnRisingEdge would
  /// have done (cycle counters, delay countdowns) — re-checking its
  /// state first, since it may have changed since the hint was given.
  virtual void OnEdgesSkipped(u64 count, Picoseconds first_edge_time) {
    (void)count;
    (void)first_edge_time;
  }
};

class ClockDomain {
 public:
  /// Constructed via Simulator::AddClockDomain. `priority` orders
  /// coincident edges across domains (lower ticks first; the Simulator
  /// assigns creation order).
  ClockDomain(Simulator& sim, std::string name, Frequency freq,
              u32 priority);

  ClockDomain(const ClockDomain&) = delete;
  ClockDomain& operator=(const ClockDomain&) = delete;

  /// Attaches a module; modules tick in attach order. The module must
  /// outlive the domain's last tick.
  void Attach(ClockedModule& module);

  /// Ensures the domain is scheduled for its next grid edge at or after
  /// the current simulation time. Idempotent while a pending edge is
  /// already at or before that point; pulls a batched-ahead pending
  /// edge back otherwise.
  void Kick();

  /// Ensures the domain ticks its first grid edge at or after time `t`
  /// (>= now). This is how a module wakes a *different* domain for a
  /// known future time — e.g. the IMU waking the coprocessor clock at
  /// the data-valid edge — without an intermediate trampoline event.
  void KickAt(Picoseconds t);

  const std::string& name() const { return name_; }
  Frequency frequency() const { return freq_; }
  u32 priority() const { return priority_; }

  /// Number of rising edges elapsed while running (batched/skipped
  /// edges count: they occurred, the modules just did not need them).
  u64 edges_ticked() const { return edges_ticked_; }

  /// Index (on the global grid) of the most recently elapsed edge.
  u64 current_edge() const { return next_edge_ == 0 ? 0 : next_edge_ - 1; }

  /// Timestamp of the first grid edge strictly after the current
  /// simulation time. Cheap while this domain's own tick is running —
  /// the current edge index is already known, so no time->cycle
  /// conversion is needed.
  Picoseconds NextEdgeTimeAfterNow() const;

 private:
  /// Earliest not-yet-elapsed grid edge at or after time `t`.
  u64 FirstEdgeAtOrAfter(Picoseconds t) const;

  /// Applies module hints to pick the edge to actually tick, starting
  /// from `candidate` (whose grid timestamp the caller already knows).
  /// Returns candidate when batching is disabled or no module asks to
  /// skip. Never overshoots an outstanding demand.
  u64 ApplyHints(u64 candidate, Picoseconds candidate_time) const;

  void ScheduleTick(u64 edge);
  void ScheduleTick(u64 edge, Picoseconds edge_time);
  void TickEvent(u64 token);
  void EraseMetDemands(u64 ticked_edge);

  Simulator& sim_;
  std::string name_;
  Frequency freq_;
  u32 priority_;
  std::vector<ClockedModule*> modules_;
  u64 next_edge_ = 0;     // earliest edge not yet ticked or credited
  u64 pending_edge_ = 0;  // edge the live scheduled event will tick
  Picoseconds pending_time_ = 0;  // timestamp of pending_edge_
  u64 token_ = 0;         // invalidates superseded edge events
  bool scheduled_ = false;
  bool in_tick_ = false;  // TickEvent loop is on the call stack
  // The pending event resumes the domain from dormancy: the edges slept
  // through until it fires never happen (no tick, no credit), and an
  // earlier kick arriving first may still pull the resume point back.
  bool pending_is_resume_ = false;
  u64 edges_ticked_ = 0;
  // Memo for FirstEdgeAtOrAfter's time->grid-edge conversion. The grid
  // is immutable, so the entry is keyed on the query time alone; bursts
  // of kicks at one timestamp (every module issuing during a tick) then
  // cost one divide instead of one each. (0,0) is a correct entry: edge
  // 0 is at t=0.
  mutable Picoseconds grid_memo_t_ = 0;
  mutable u64 grid_memo_edge_ = 0;
  // Outstanding KickAt demands: edges promised to tick even though the
  // modules' own hints cannot foresee them (e.g. the IMU waking the
  // coprocessor clock at a future data-valid time). A demand is met by
  // ticking exactly that edge; batching never skips past one, and the
  // domain re-arms instead of going dormant while one is pending.
  // Almost always empty or a single element.
  std::vector<u64> demands_;
};

}  // namespace vcop::sim
