// Clock domains and clocked modules.
//
// A ClockDomain ticks its attached modules on every rising edge while at
// least one module reports active(); it then goes dormant and must be
// Kick()ed to resume. Edge timestamps come from Frequency::EdgeTime's
// global grid, so a dormant period never shifts the phase of the clock —
// exactly like gating a real oscillator-derived clock.
#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::sim {

class Simulator;

/// Interface for hardware models driven by a clock edge.
class ClockedModule {
 public:
  virtual ~ClockedModule() = default;

  /// Called once per rising edge of the attached domain, in attach order.
  virtual void OnRisingEdge() = 0;

  /// While any attached module is active, the domain keeps ticking.
  /// An inactive module whose state is changed externally (a request
  /// arrives, the OS un-stalls it) must Kick() its domain.
  virtual bool active() const = 0;
};

class ClockDomain {
 public:
  /// Constructed via Simulator::AddClockDomain. `priority` orders
  /// coincident edges across domains (lower ticks first; the Simulator
  /// assigns creation order).
  ClockDomain(Simulator& sim, std::string name, Frequency freq,
              u32 priority);

  ClockDomain(const ClockDomain&) = delete;
  ClockDomain& operator=(const ClockDomain&) = delete;

  /// Attaches a module; modules tick in attach order. The module must
  /// outlive the domain's last tick.
  void Attach(ClockedModule& module);

  /// Ensures the domain is scheduled for its next grid edge strictly
  /// after the current simulation time. Idempotent while scheduled.
  void Kick();

  const std::string& name() const { return name_; }
  Frequency frequency() const { return freq_; }

  /// Number of rising edges dispatched so far.
  u64 edges_ticked() const { return edges_ticked_; }

  /// Index (on the global grid) of the most recently dispatched edge.
  u64 current_edge() const { return next_edge_ == 0 ? 0 : next_edge_ - 1; }

 private:
  void ScheduleNextEdge();
  void Tick();

  Simulator& sim_;
  std::string name_;
  Frequency freq_;
  u32 priority_;
  std::vector<ClockedModule*> modules_;
  u64 next_edge_ = 0;       // grid index of the next edge to dispatch
  bool scheduled_ = false;  // an edge event is pending in the queue
  u64 edges_ticked_ = 0;
};

}  // namespace vcop::sim
