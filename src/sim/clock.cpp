#include "sim/clock.h"

#include <algorithm>

#include "sim/simulator.h"

namespace vcop::sim {

ClockDomain::ClockDomain(Simulator& sim, std::string name, Frequency freq,
                         u32 priority)
    : sim_(sim), name_(std::move(name)), freq_(freq), priority_(priority) {
  VCOP_CHECK_MSG(freq.valid(), "clock domain needs a nonzero frequency");
}

void ClockDomain::Attach(ClockedModule& module) {
  modules_.push_back(&module);
  Kick();
}

void ClockDomain::Kick() { KickAt(sim_.now()); }

void ClockDomain::KickAt(Picoseconds t) {
  VCOP_CHECK_MSG(t >= sim_.now(), "KickAt in the past");
  // Fast idempotent return for the dominant call pattern: a kick at the
  // current time while an event is already pending at or before it (a
  // same-timestamp event still in the queue). Edge times strictly
  // increase, so pending_time_ <= t implies pending_edge_ <= the grid
  // candidate this kick would compute — the slow path would return
  // without doing anything, and a now-kick records no demand.
  if (scheduled_ && !in_tick_ && t == sim_.now() && pending_time_ <= t) {
    return;
  }
  if (!sim_.tuning().batch_edges && t > sim_.now()) {
    // Reference engine: a future wake goes through a trampoline event
    // that kicks at its deadline, exactly like the seed kernel did.
    sim_.queue().ScheduleAt(t, EventQueue::kDefaultPriority,
                            [this] { Kick(); });
    return;
  }
  const u64 candidate = FirstEdgeAtOrAfter(t);
  // A future-time kick is a promise the modules' hints cannot see (the
  // caller knows something becomes interesting at `t`); record it so
  // batching never skips the edge and dormancy re-arms for it. A kick
  // from inside our own tick loop is recorded unconditionally — the
  // loop replays demands_ before scheduling or sleeping.
  if (t > sim_.now() || in_tick_) demands_.push_back(candidate);
  if (in_tick_) {
    // Called from inside this domain's own tick loop (a module issued
    // an access whose response wakes its own clock). The running loop
    // honours demands_ before scheduling or sleeping; rescheduling here
    // would clobber its state.
    return;
  }
  if (scheduled_) {
    // Idempotent while the pending edge is already early enough; a
    // batched-ahead event is pulled back (the superseded event becomes
    // a stale-token no-op). The skipped-edge base next_edge_ keeps its
    // value: edges between it and the new pending edge were skipped
    // while running and still get credited at dispatch.
    if (pending_edge_ <= candidate) return;
    ScheduleTick(candidate);
    return;
  }
  if (t > sim_.now()) {
    // Future promise to a dormant domain. Arm the demanded edge without
    // advancing the credit base: the edges until then are dormant (never
    // ticked, never credited), and leaving next_edge_ at the dormancy
    // floor lets an earlier kick arriving before the promise fires pull
    // the resume point back — the reference engine's trampoline would
    // have ticked that earlier edge too. (ApplyHints is moot here: the
    // demand recorded above already clamps any batching to `candidate`.)
    pending_is_resume_ = true;
    ScheduleTick(candidate);
    return;
  }
  // Resuming from dormancy now: edges slept through never happened (the
  // domain was gated), so the credit base advances to the resume edge.
  next_edge_ = candidate;
  const Picoseconds candidate_time = freq_.EdgeTime(candidate);
  const u64 target = ApplyHints(candidate, candidate_time);
  ScheduleTick(target,
               target == candidate ? candidate_time : freq_.EdgeTime(target));
}

Picoseconds ClockDomain::NextEdgeTimeAfterNow() const {
  // Mid-tick the current edge index is in hand (the inline-coalescing
  // loop keeps pending_edge_/pending_time_ at the edge being ticked),
  // so the next edge is one multiply away instead of a full CyclesAt.
  if (in_tick_ && pending_time_ == sim_.now()) {
    return freq_.EdgeTime(pending_edge_ + 1);
  }
  return freq_.EdgeTime(freq_.CyclesAt(sim_.now()) + 1);
}

u64 ClockDomain::FirstEdgeAtOrAfter(Picoseconds t) const {
  // Resume on the global grid: the first edge at or after `t`. (An edge
  // exactly at `t` is allowed if it has not elapsed yet — that is the
  // `next_edge_` lower bound.)
  if (t != grid_memo_t_) {
    const u64 at = freq_.CyclesAt(t);
    grid_memo_edge_ = freq_.EdgeTime(at) == t ? at : at + 1;
    grid_memo_t_ = t;
  }
  return std::max(grid_memo_edge_, next_edge_);
}

u64 ClockDomain::ApplyHints(u64 candidate, Picoseconds candidate_time) const {
  if (!sim_.tuning().batch_edges) return candidate;
  u64 hint = ClockedModule::kNeverInteresting;
  for (ClockedModule* m : modules_) {
    hint = std::min(hint, m->NextInterestingEdge(candidate_time));
  }
  // All-kNeverInteresting (or a buggy 0) still ticks the candidate: a
  // kick is an explicit demand for an edge, and an extra tick is always
  // harmless — modules re-hint from it.
  if (hint == 0 || hint == ClockedModule::kNeverInteresting) hint = 1;
  u64 target = candidate + (hint - 1);
  // Never batch past a promised wake: a demanded edge must tick exactly.
  for (const u64 d : demands_) {
    if (d >= candidate && d < target) target = d;
  }
  return target;
}

void ClockDomain::EraseMetDemands(u64 ticked_edge) {
  if (demands_.empty()) return;
  demands_.erase(
      std::remove_if(demands_.begin(), demands_.end(),
                     [ticked_edge](u64 d) { return d <= ticked_edge; }),
      demands_.end());
}

void ClockDomain::ScheduleTick(u64 edge) {
  ScheduleTick(edge, freq_.EdgeTime(edge));
}

void ClockDomain::ScheduleTick(u64 edge, Picoseconds edge_time) {
  pending_edge_ = edge;
  pending_time_ = edge_time;
  ++token_;
  scheduled_ = true;
  const u64 token = token_;
  sim_.queue().ScheduleAt(edge_time, priority_,
                          [this, token] { TickEvent(token); });
}

void ClockDomain::TickEvent(u64 token) {
  if (token != token_) return;  // superseded by a pull-earlier reschedule
  scheduled_ = false;
  in_tick_ = true;
  if (pending_is_resume_) {
    // Waking from dormancy at a promised (or pulled-back) edge: the
    // edges slept through never happened, so none are credited.
    next_edge_ = pending_edge_;
    pending_is_resume_ = false;
  }
  u32 inline_left = sim_.tuning().max_inline_ticks;
  while (true) {
    // Credit edges batched over since the last tick, then tick the
    // interesting edge itself at its exact timestamp.
    if (pending_edge_ > next_edge_) {
      const u64 skipped = pending_edge_ - next_edge_;
      const Picoseconds first_skipped = freq_.EdgeTime(next_edge_);
      for (ClockedModule* m : modules_) {
        m->OnEdgesSkipped(skipped, first_skipped);
      }
      edges_ticked_ += skipped;
    }
    next_edge_ = pending_edge_ + 1;
    ++edges_ticked_;
    EraseMetDemands(pending_edge_);
    bool any_active = false;
    for (ClockedModule* m : modules_) {
      m->OnRisingEdge();
      any_active = any_active || m->active();
    }
    if (!any_active) {
      if (!demands_.empty()) {
        // A promised wake is still outstanding: re-arm for the earliest
        // demanded edge instead of sleeping, with dormant (resume)
        // semantics — the edges slept through until then never happen.
        const u64 d = *std::min_element(demands_.begin(), demands_.end());
        const Picoseconds d_time = freq_.EdgeTime(d);
        if (sim_.tuning().fastforward && inline_left > 0 &&
            sim_.InlineTickAllowed(d_time, priority_)) {
          // Fast-forward: resume from dormancy inside this same
          // dispatched event. Identical to scheduling the wake and
          // dispatching it next — which InlineTickAllowed guarantees
          // it would be — minus the event-queue round trip. The edges
          // slept through still never happen (no tick, no credit).
          --inline_left;
          next_edge_ = d;
          pending_edge_ = d;
          pending_time_ = d_time;
          sim_.queue().AdvanceNow(d_time);
          continue;
        }
        in_tick_ = false;
        pending_is_resume_ = true;
        ScheduleTick(d, d_time);
        return;
      }
      in_tick_ = false;
      return;  // dormant until the next Kick
    }

    const Picoseconds next_time = freq_.EdgeTime(next_edge_);
    const u64 target = ApplyHints(next_edge_, next_time);
    const Picoseconds target_time =
        target == next_edge_ ? next_time : freq_.EdgeTime(target);
    if (inline_left > 0 && sim_.InlineTickAllowed(target_time, priority_)) {
      // Coalesce: run the next interesting edge in this same dispatched
      // event. Global ordering is preserved because the simulator only
      // allows it while no other pending event would run first.
      --inline_left;
      pending_edge_ = target;
      pending_time_ = target_time;
      sim_.queue().AdvanceNow(target_time);
      continue;
    }
    in_tick_ = false;
    ScheduleTick(target, target_time);
    return;
  }
}

}  // namespace vcop::sim
