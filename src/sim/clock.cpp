#include "sim/clock.h"

#include "sim/simulator.h"

namespace vcop::sim {

ClockDomain::ClockDomain(Simulator& sim, std::string name, Frequency freq,
                         u32 priority)
    : sim_(sim), name_(std::move(name)), freq_(freq), priority_(priority) {
  VCOP_CHECK_MSG(freq.valid(), "clock domain needs a nonzero frequency");
}

void ClockDomain::Attach(ClockedModule& module) {
  modules_.push_back(&module);
  Kick();
}

void ClockDomain::Kick() {
  if (scheduled_) return;
  // Resume on the global grid: the first edge at or after now. (An edge
  // exactly at `now` is allowed if it has not been dispatched yet —
  // that is the `next_edge_` lower bound.)
  const u64 at_now = freq_.CyclesAt(sim_.now());
  const u64 candidate =
      freq_.EdgeTime(at_now) == sim_.now() ? at_now : at_now + 1;
  next_edge_ = std::max(next_edge_, candidate);
  ScheduleNextEdge();
}

void ClockDomain::ScheduleNextEdge() {
  scheduled_ = true;
  sim_.queue().ScheduleAt(freq_.EdgeTime(next_edge_), priority_,
                          [this] { Tick(); });
}

void ClockDomain::Tick() {
  scheduled_ = false;
  ++edges_ticked_;
  ++next_edge_;
  bool any_active = false;
  for (ClockedModule* m : modules_) {
    m->OnRisingEdge();
    any_active = any_active || m->active();
  }
  if (any_active) ScheduleNextEdge();
}

}  // namespace vcop::sim
