#include "sim/simulator.h"

namespace vcop::sim {

ClockDomain& Simulator::AddClockDomain(std::string name, Frequency freq) {
  const u32 priority = static_cast<u32>(domains_.size());
  domains_.push_back(
      std::make_unique<ClockDomain>(*this, std::move(name), freq, priority));
  return *domains_.back();
}

bool Simulator::RunUntil(const std::function<bool()>& predicate,
                         u64 max_events) {
  // Expose the stop predicate so clock domains stop coalescing ticks
  // the moment it fires — the loop below must observe the same
  // post-event states it would without coalescing.
  const std::function<bool()>* saved = run_predicate_;
  run_predicate_ = &predicate;
  bool fired = false;
  if (predicate()) {
    fired = true;
  } else {
    for (u64 i = 0; i < max_events && !queue_.empty(); ++i) {
      queue_.DispatchOne();
      if (predicate()) {
        fired = true;
        break;
      }
    }
  }
  run_predicate_ = saved;
  return fired;
}

bool Simulator::RunToIdle(u64 max_events) {
  for (u64 i = 0; i < max_events; ++i) {
    if (queue_.empty()) return true;
    queue_.DispatchOne();
  }
  return queue_.empty();
}

u64 Simulator::DrainAssertQuiescent() {
  u64 edges_before = 0;
  for (const auto& d : domains_) edges_before += d->edges_ticked();
  const u64 dispatched_before = queue_.dispatched();
  const bool drained = RunToIdle();
  u64 edges_after = 0;
  for (const auto& d : domains_) edges_after += d->edges_ticked();
  (void)drained;
  (void)edges_after;
#ifndef NDEBUG
  VCOP_CHECK_MSG(drained, "event queue failed to drain at end of run");
  VCOP_CHECK_MSG(edges_after == edges_before,
                 "trailing events still ticked clock edges at end of run");
#endif
  return queue_.dispatched() - dispatched_before;
}

void Simulator::RunUntilTime(Picoseconds t) {
  // The horizon keeps coalescing domains from running edges past `t`
  // inside the final dispatched event.
  const Picoseconds saved = horizon_;
  horizon_ = t;
  while (!queue_.empty() && queue_.NextTime() <= t) {
    queue_.DispatchOne();
  }
  horizon_ = saved;
}

}  // namespace vcop::sim
