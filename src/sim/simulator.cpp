#include "sim/simulator.h"

namespace vcop::sim {

ClockDomain& Simulator::AddClockDomain(std::string name, Frequency freq) {
  const u32 priority = static_cast<u32>(domains_.size());
  domains_.push_back(
      std::make_unique<ClockDomain>(*this, std::move(name), freq, priority));
  return *domains_.back();
}

bool Simulator::RunUntil(const std::function<bool()>& predicate,
                         u64 max_events) {
  if (predicate()) return true;
  for (u64 i = 0; i < max_events && !queue_.empty(); ++i) {
    queue_.DispatchOne();
    if (predicate()) return true;
  }
  return false;
}

bool Simulator::RunToIdle(u64 max_events) {
  for (u64 i = 0; i < max_events; ++i) {
    if (queue_.empty()) return true;
    queue_.DispatchOne();
  }
  return queue_.empty();
}

void Simulator::RunUntilTime(Picoseconds t) {
  while (!queue_.empty() && queue_.NextTime() <= t) {
    queue_.DispatchOne();
  }
}

}  // namespace vcop::sim
