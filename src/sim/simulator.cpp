#include "sim/simulator.h"

namespace vcop::sim {

ClockDomain& Simulator::AddClockDomain(std::string name, Frequency freq) {
  const u32 priority = static_cast<u32>(domains_.size());
  domains_.push_back(
      std::make_unique<ClockDomain>(*this, std::move(name), freq, priority));
  return *domains_.back();
}

bool Simulator::RunUntil(const std::function<bool()>& predicate,
                         u64 max_events) {
  // Expose the stop predicate so clock domains stop coalescing ticks
  // the moment it fires — the loop below must observe the same
  // post-event states it would without coalescing.
  const std::function<bool()>* saved = run_predicate_;
  run_predicate_ = &predicate;
  bool fired = false;
  if (predicate()) {
    fired = true;
  } else {
    for (u64 i = 0; i < max_events && !queue_.empty(); ++i) {
      queue_.DispatchOne();
      if (predicate()) {
        fired = true;
        break;
      }
    }
  }
  run_predicate_ = saved;
  return fired;
}

bool Simulator::RunToIdle(u64 max_events) {
  for (u64 i = 0; i < max_events; ++i) {
    if (queue_.empty()) return true;
    queue_.DispatchOne();
  }
  return queue_.empty();
}

void Simulator::RunUntilTime(Picoseconds t) {
  // The horizon keeps coalescing domains from running edges past `t`
  // inside the final dispatched event.
  const Picoseconds saved = horizon_;
  horizon_ = t;
  while (!queue_.empty() && queue_.NextTime() <= t) {
    queue_.DispatchOne();
  }
  horizon_ = saved;
}

}  // namespace vcop::sim
