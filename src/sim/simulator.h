// The Simulator: event loop + clock-domain registry.
//
// Modelled hardware (IMU, coprocessors) lives on ClockDomains that tick
// their modules on rising edges; modelled software (the OS cost model)
// schedules plain timed events. Both share one timeline.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"

namespace vcop::sim {

/// Host-side performance knobs for the event kernel. All of them are
/// pure optimisations: simulated timestamps, tick counts, statistics
/// and results are bit-identical in every combination (enforced by
/// tests/kernel_fastpath_test). Turning everything off reproduces the
/// seed engine event-for-event — that is the reference the fast path
/// is benchmarked against in bench/bench_kernel.
struct SimTuning {
  /// Honour ClockedModule::NextInterestingEdge hints: schedule one
  /// event at the next interesting edge instead of one per edge.
  bool batch_edges = true;
  /// Let a clock domain run several of its own (interesting) edges in
  /// one dispatched event while no other pending event would interleave.
  bool coalesce_ticks = true;
  /// Cap on coalesced edges per dispatched event; bounds how long one
  /// event runs and keeps a perpetually-active domain preemptible by
  /// the dispatch budget.
  u32 max_inline_ticks = 64;
  /// Fast-forward tier (opt-in, platform key `fastforward`): models may
  /// complete a provably uneventful stretch analytically — the IMU
  /// resolves a guaranteed TLB-hit access at issue time with the
  /// completion timestamps computed from the clock grid, and a dormant
  /// clock domain resumes at a demanded future edge inside the current
  /// dispatched event instead of scheduling a wake. Both jumps are
  /// admitted per-instance by AnalyticJumpAllowed / InlineTickAllowed,
  /// which decline at every uncertain edge (pending event, horizon,
  /// fired stop predicate); reports stay bit-identical
  /// (tests/fastforward_diff_test).
  bool fastforward = false;
};

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: clock domains hold back-references.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Creates a clock domain ticking at `freq`. Domains created earlier
  /// dispatch first on coincident edges (see EventQueue ordering) —
  /// create the IMU's domain before the coprocessor's.
  ClockDomain& AddClockDomain(std::string name, Frequency freq);

  /// Schedules a one-shot action at absolute time `t` (>= now()).
  void ScheduleAt(Picoseconds t, EventQueue::Action action) {
    queue_.ScheduleAt(t, std::move(action));
  }

  /// Schedules an action `delay` after now().
  void ScheduleAfter(Picoseconds delay, EventQueue::Action action) {
    queue_.ScheduleAt(queue_.now() + delay, std::move(action));
  }

  /// Runs until `predicate` returns true (checked after every event),
  /// the queue drains, or `max_events` more events have been dispatched.
  /// Returns true iff the predicate fired.
  bool RunUntil(const std::function<bool()>& predicate,
                u64 max_events = kDefaultMaxEvents);

  /// Runs until the queue is empty or `max_events` dispatched.
  /// Returns true iff the queue drained.
  bool RunToIdle(u64 max_events = kDefaultMaxEvents);

  /// Dispatches events up to and including time `t`.
  void RunUntilTime(Picoseconds t);

  Picoseconds now() const { return queue_.now(); }
  u64 events_dispatched() const { return queue_.dispatched(); }
  EventQueue& queue() { return queue_; }

  const SimTuning& tuning() const { return tuning_; }
  void set_tuning(const SimTuning& tuning) { tuning_ = tuning; }

  /// Whether a clock domain may run an edge at time `t` (with the
  /// domain's coincident-edge `priority`) inline in the event it is
  /// currently dispatching, instead of scheduling it. Allowed only
  /// while that preserves the exact global dispatch order: no pending
  /// event may sort before (t, priority), the active RunUntil predicate
  /// must not have fired, and `t` must not pass a RunUntilTime horizon.
  bool InlineTickAllowed(Picoseconds t, u32 priority) const {
    if (!tuning_.coalesce_ticks) return false;
    if (t > horizon_) return false;
    if (!queue_.empty()) {
      const Picoseconds head = queue_.NextTime();
      if (head < t) return false;
      if (head == t && queue_.NextPriority() < priority) return false;
    }
    if (run_predicate_ != nullptr && (*run_predicate_)()) return false;
    return true;
  }

  /// Whether a model may complete work scheduled to finish at time `t`
  /// analytically, right now, without dispatching the events in
  /// between. Allowed only under SimTuning::fastforward and only while
  /// nothing could interleave before `t`: no pending event at or before
  /// `t` (which could change the state the analytic result depends on —
  /// TLB content, fault-plan opportunity order), `t` within any
  /// RunUntilTime horizon, and the active RunUntil predicate not fired.
  bool AnalyticJumpAllowed(Picoseconds t) const {
    if (!tuning_.fastforward) return false;
    if (t > horizon_) return false;
    if (!queue_.empty() && queue_.NextTime() <= t) return false;
    if (run_predicate_ != nullptr && (*run_predicate_)()) return false;
    return true;
  }

  /// End-of-run debug check: drains whatever is still pending (stale
  /// clock-domain tokens, superseded wake events) and asserts — in
  /// Debug builds — that the residue was quiescent: the queue drains
  /// and no clock domain ticks another edge while doing so. A domain
  /// that still ticks means a trailing event carrying real work was
  /// silently dropped by the caller's stop condition. Returns the
  /// number of residual events dispatched.
  u64 DrainAssertQuiescent();

  /// Default per-Run dispatch budget: generous for our workloads (a full
  /// 32 KB IDEA run is under ~2M edges) but finite, so a wedged model
  /// fails loudly instead of spinning forever.
  static constexpr u64 kDefaultMaxEvents = 500'000'000;

 private:
  static constexpr Picoseconds kNoHorizon =
      std::numeric_limits<Picoseconds>::max();

  EventQueue queue_;
  std::vector<std::unique_ptr<ClockDomain>> domains_;
  SimTuning tuning_{};
  Picoseconds horizon_ = kNoHorizon;
  const std::function<bool()>* run_predicate_ = nullptr;
};

}  // namespace vcop::sim
