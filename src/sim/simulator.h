// The Simulator: event loop + clock-domain registry.
//
// Modelled hardware (IMU, coprocessors) lives on ClockDomains that tick
// their modules on rising edges; modelled software (the OS cost model)
// schedules plain timed events. Both share one timeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"

namespace vcop::sim {

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: clock domains hold back-references.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Creates a clock domain ticking at `freq`. Domains created earlier
  /// dispatch first on coincident edges (see EventQueue ordering) —
  /// create the IMU's domain before the coprocessor's.
  ClockDomain& AddClockDomain(std::string name, Frequency freq);

  /// Schedules a one-shot action at absolute time `t` (>= now()).
  void ScheduleAt(Picoseconds t, EventQueue::Action action) {
    queue_.ScheduleAt(t, std::move(action));
  }

  /// Schedules an action `delay` after now().
  void ScheduleAfter(Picoseconds delay, EventQueue::Action action) {
    queue_.ScheduleAt(queue_.now() + delay, std::move(action));
  }

  /// Runs until `predicate` returns true (checked after every event),
  /// the queue drains, or `max_events` more events have been dispatched.
  /// Returns true iff the predicate fired.
  bool RunUntil(const std::function<bool()>& predicate,
                u64 max_events = kDefaultMaxEvents);

  /// Runs until the queue is empty or `max_events` dispatched.
  /// Returns true iff the queue drained.
  bool RunToIdle(u64 max_events = kDefaultMaxEvents);

  /// Dispatches events up to and including time `t`.
  void RunUntilTime(Picoseconds t);

  Picoseconds now() const { return queue_.now(); }
  u64 events_dispatched() const { return queue_.dispatched(); }
  EventQueue& queue() { return queue_; }

  /// Default per-Run dispatch budget: generous for our workloads (a full
  /// 32 KB IDEA run is under ~2M edges) but finite, so a wedged model
  /// fails loudly instead of spinning forever.
  static constexpr u64 kDefaultMaxEvents = 500'000'000;

 private:
  EventQueue queue_;
  std::vector<std::unique_ptr<ClockDomain>> domains_;
};

}  // namespace vcop::sim
