// Parallel fleet runner: many fully-isolated simulator instances, one
// per worker thread, over an index grid.
//
// Every simulation in this codebase is a value: a task builds its own
// FpgaSystem (simulator, memories, IMU, VIM) from a shared *read-only*
// config, runs it, and returns a result — no globals are written on the
// hot path. That makes the (seed × tenant-mix × design) sweeps of the
// torture harness and the benches embarrassingly parallel: the fleet
// runner fans the index space out over a worker pool with dynamic
// (atomic-claim) load balancing, while results land in a vector slot
// keyed by index — so aggregation order, and therefore every printed
// table and JSON artifact, is deterministic regardless of thread count
// or scheduling.
//
// Determinism argument: task i sees only (i, the immutable inputs) and
// writes only results[i]; the happens-before edges are fork (inputs
// published before workers start) and join (all writes complete before
// the caller reads). Worker count changes who computes an index, never
// what it computes or where it lands. The tsan CI job runs the
// differential and torture suites under ThreadSanitizer to keep this
// honest.
#pragma once

#include <functional>
#include <vector>

#include "base/types.h"

namespace vcop::sim {

/// Worker threads to use: `requested` if nonzero, else the
/// VCOP_FLEET_THREADS environment variable, else the hardware
/// concurrency (at least 1).
u32 FleetThreadCount(u32 requested = 0);

/// Runs task(0) .. task(count-1) on a pool of `threads` workers
/// (FleetThreadCount rules). Indices are claimed dynamically, one at a
/// time, so long tasks do not serialize behind a static partition. The
/// first exception thrown by any task is rethrown in the caller after
/// all workers stop; remaining unclaimed indices are skipped.
void RunFleet(usize count, const std::function<void(usize)>& task,
              u32 threads = 0);

/// Typed convenience: results by index, deterministic regardless of
/// thread count. R must be default-constructible and movable.
template <typename R, typename Fn>
std::vector<R> FleetMap(usize count, Fn&& fn, u32 threads = 0) {
  std::vector<R> results(count);
  RunFleet(
      count, [&](usize i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace vcop::sim
