// Waveform tracing: records signal transitions on the simulation
// timeline and renders them as a VCD file (for GTKWave et al.) or as an
// ASCII timing diagram like the paper's Figure 7.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/bitops.h"

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::sim {

/// Handle for a registered signal.
using SignalId = u32;

/// A change-based waveform recorder.
///
/// Signals are registered once with a name and bit width; values are
/// recorded as 64-bit integers (the IMU port needs at most 32 data bits).
/// Only changes are stored.
class Tracer {
 public:
  /// Registers a signal; `width` in bits (1..64). Initial value is X
  /// until the first Record.
  SignalId AddSignal(std::string name, u32 width);

  /// Records `value` on `signal` at time `t`. Times must be
  /// non-decreasing per signal. Recording the current value is a no-op.
  void Record(SignalId signal, Picoseconds t, u64 value);

  /// Number of stored transitions across all signals.
  usize num_changes() const;

  /// Renders the full trace as a Value Change Dump (VCD) document with
  /// 1 ps timescale.
  std::string ToVcd() const;

  /// Renders an ASCII timing diagram of the window [from, to], sampled
  /// at `step` picoseconds per column. 1-bit signals render as
  /// `_/▔`-style lanes; multi-bit signals as hex values at change
  /// points. This reproduces the look of the paper's Figure 7.
  std::string ToAscii(Picoseconds from, Picoseconds to, Picoseconds step) const;

  /// Value of `signal` at time `t` (last recorded change at or before
  /// t). Returns nullopt before the first change.
  std::optional<u64> ValueAt(SignalId signal, Picoseconds t) const;

 private:
  struct Change {
    Picoseconds time;
    u64 value;
  };
  struct Signal {
    std::string name;
    u32 width;
    std::vector<Change> changes;
  };

  std::vector<Signal> signals_;
};

}  // namespace vcop::sim
