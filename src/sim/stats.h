// Lightweight statistics accumulators shared by hardware and OS models.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"

namespace vcop::sim {

/// Streaming summary of a scalar series: count / min / max / mean.
/// Used for e.g. fault-service latencies and per-access stall lengths.
class Summary {
 public:
  void Add(double v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
  }

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

 private:
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets);
/// values beyond the last bucket land in an overflow bucket.
class Histogram {
 public:
  Histogram(double bucket_width, usize num_buckets)
      : bucket_width_(bucket_width), counts_(num_buckets + 1, 0) {
    VCOP_CHECK_MSG(bucket_width > 0 && num_buckets > 0, "bad histogram shape");
  }

  void Add(double v) {
    const auto idx = static_cast<usize>(v / bucket_width_);
    counts_[std::min(idx, counts_.size() - 1)]++;
    summary_.Add(v);
  }

  u64 bucket(usize i) const { return counts_[i]; }
  u64 overflow() const { return counts_.back(); }
  usize num_buckets() const { return counts_.size() - 1; }
  const Summary& summary() const { return summary_; }

 private:
  double bucket_width_;
  std::vector<u64> counts_;
  Summary summary_;
};

}  // namespace vcop::sim
