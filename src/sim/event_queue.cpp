#include "sim/event_queue.h"

#include <utility>

namespace vcop::sim {

void EventQueue::ScheduleAt(Picoseconds t, u32 priority, Action action) {
  VCOP_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  VCOP_CHECK_MSG(static_cast<bool>(action), "null event action");
  heap_.push(Entry{t, priority, next_seq_++, std::move(action)});
}

Picoseconds EventQueue::NextTime() const {
  VCOP_CHECK_MSG(!heap_.empty(), "NextTime on empty queue");
  return heap_.top().time;
}

void EventQueue::DispatchOne() {
  VCOP_CHECK_MSG(!heap_.empty(), "DispatchOne on empty queue");
  // priority_queue::top is const; move the action out via const_cast —
  // safe because the entry is popped immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  const Picoseconds t = top.time;
  Action action = std::move(top.action);
  heap_.pop();
  now_ = t;
  ++dispatched_;
  action();
}

}  // namespace vcop::sim
