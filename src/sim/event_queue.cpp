#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace vcop::sim {

void EventQueue::ScheduleAt(Picoseconds t, u32 priority, Action action) {
  VCOP_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  VCOP_CHECK_MSG(static_cast<bool>(action), "null event action");
  u32 slot;
  if (free_slots_.empty()) {
    slot = static_cast<u32>(slots_.size());
    slots_.push_back(std::move(action));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(action);
  }
  heap_.push_back(Entry{t, priority, slot, next_seq_++});
  SiftUp(heap_.size() - 1);
}

Picoseconds EventQueue::NextTime() const {
  VCOP_CHECK_MSG(!heap_.empty(), "NextTime on empty queue");
  return heap_.front().time;
}

u32 EventQueue::NextPriority() const {
  VCOP_CHECK_MSG(!heap_.empty(), "NextPriority on empty queue");
  return heap_.front().priority;
}

void EventQueue::DispatchOne() {
  VCOP_CHECK_MSG(!heap_.empty(), "DispatchOne on empty queue");
  // Move the winning callback out of its pool slot before re-heapifying;
  // the action runs from a local, so handlers may freely schedule more
  // events (reallocating heap_ and slots_) while executing.
  const Entry top = heap_.front();
  if (heap_.size() > 1) heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  Action action = std::move(slots_[top.slot]);
  free_slots_.push_back(top.slot);
  now_ = top.time;
  ++dispatched_;
  action();
}

void EventQueue::AdvanceNow(Picoseconds t) {
  VCOP_CHECK_MSG(t >= now_, "cannot advance time backwards");
  VCOP_CHECK_MSG(heap_.empty() || t <= heap_.front().time,
                 "AdvanceNow past a pending event");
  now_ = t;
}

void EventQueue::SiftUp(usize i) {
  while (i != 0) {
    const usize parent = (i - 1) / 4;
    if (!Before(heap_[i], heap_[parent])) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(usize i) {
  const usize n = heap_.size();
  while (true) {
    const usize first_child = 4 * i + 1;
    if (first_child >= n) return;
    usize best = first_child;
    const usize last_child = std::min(first_child + 4, n);
    for (usize c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], heap_[i])) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace vcop::sim
