// A move-only `void()` callable with inline small-buffer storage.
//
// The event queue dispatches tens of millions of closures per run;
// std::function heap-allocates captures beyond its (implementation
// defined, typically 16-byte) small-object limit and must stay
// copyable, which forces copy-constructible captures and a vtable-ish
// manager call per copy. InlineFunction is the minimal replacement the
// kernel needs: move-only (actions are moved, never copied — see
// EventQueueTest.ActionsAreMovedNotCopied), with a 48-byte inline
// buffer sized for the largest closure the simulator schedules (the
// VIM's overlapped-prefetch completion, ~40 bytes of captures). Larger
// captures spill to one heap allocation instead of failing to compile.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "base/types.h"

namespace vcop::sim {

class InlineFunction {
 public:
  /// Captures up to this many bytes live in the entry itself; every
  /// scheduled closure in the hot paths must stay under it (guaranteed
  /// minimum per the kernel contract: 32 bytes).
  static constexpr usize kInlineBytes = 48;

  InlineFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the payload into `dst` from `src` and destroys
    /// the `src` payload (a destructive move: one call per heap swap).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace vcop::sim
