// AMBA AHB bus timing model (processor side of the dual-port RAM).
//
// On the EPXA1 the ARM reaches the dual-port memory through the AHB
// (§4). The VIM's page loads/unloads are therefore sequences of 32-bit
// bus beats executed by the processor; this model prices such sequences.
// It is a timing model only — data movement itself is performed by the
// TransferEngine on the functional memories.
#pragma once

#include "base/bitops.h"
#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::mem {

/// Cost parameters of one AHB master doing word transfers.
struct AhbTiming {
  /// Arbitration + address-phase cycles at the start of a burst.
  u32 setup_cycles = 2;
  /// Data-phase cycles per 32-bit beat within a burst.
  u32 cycles_per_beat = 1;
  /// Longest burst in beats (INCR16 on AHB); longer transfers are split
  /// into multiple bursts, each paying setup again.
  u32 max_burst_beats = 16;
  /// CPU cycles of load/store + loop overhead per word, on top of the
  /// bus beats (the ARM is the DMA engine here — the paper's VIM copies
  /// with the processor, there is no DMA controller in the EPXA1 path).
  u32 cpu_cycles_per_word = 8;
};

class AhbModel {
 public:
  AhbModel(AhbTiming timing, Frequency bus_clock)
      : timing_(timing), clock_(bus_clock) {
    VCOP_CHECK_MSG(bus_clock.valid(), "AHB clock must be nonzero");
    VCOP_CHECK_MSG(timing.max_burst_beats >= 1, "burst length must be >= 1");
  }

  /// Bus + CPU cycles needed to move `bytes` (rounded up to whole
  /// 32-bit words) across the AHB in bursts.
  u64 CyclesFor(u64 bytes) const {
    const u64 words = DivCeil(bytes, 4);
    const u64 bursts = DivCeil(words, timing_.max_burst_beats);
    return bursts * timing_.setup_cycles +
           words * (timing_.cycles_per_beat + timing_.cpu_cycles_per_word);
  }

  /// Wall time of CyclesFor(bytes) on the bus clock.
  Picoseconds TimeFor(u64 bytes) const {
    return clock_.Duration(CyclesFor(bytes));
  }

  /// Effective throughput in bytes/second for large transfers.
  double ThroughputBytesPerSecond() const;

  const AhbTiming& timing() const { return timing_; }
  Frequency clock() const { return clock_; }

 private:
  AhbTiming timing_;
  Frequency clock_;
};

}  // namespace vcop::mem
