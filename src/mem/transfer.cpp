#include "mem/transfer.h"

#include <vector>

namespace vcop::mem {

std::string_view ToString(CopyMode mode) {
  switch (mode) {
    case CopyMode::kDoubleCopy: return "double-copy";
    case CopyMode::kSingleCopy: return "single-copy";
    case CopyMode::kDma: return "dma";
  }
  return "?";
}

TransferEngine::TransferEngine(AhbModel ahb, Frequency cpu_clock,
                               CopyMode mode, u32 sdram_cycles_per_word)
    : ahb_(ahb),
      cpu_clock_(cpu_clock),
      mode_(mode),
      sdram_cycles_per_word_(sdram_cycles_per_word) {
  VCOP_CHECK_MSG(cpu_clock.valid(), "CPU clock must be nonzero");
}

Picoseconds TransferEngine::PriceTransfer(u32 len) const {
  // One pass touching the DP-RAM (AHB side) ...
  const Picoseconds ahb_pass = ahb_.TimeFor(len);
  // ... and one pass touching user SDRAM on the CPU.
  const u64 words = DivCeil(len, 4);
  const Picoseconds sdram_pass =
      cpu_clock_.Duration(words * sdram_cycles_per_word_);
  switch (mode_) {
    case CopyMode::kSingleCopy:
      // Direct copy: the single loop pays both ends at once; the slower
      // of the two dominates but the CPU executes both accesses
      // serially, so the costs add.
      return ahb_pass + sdram_pass;
    case CopyMode::kDoubleCopy:
      // user<->bounce (SDRAM both ends), then bounce<->DP (SDRAM+AHB):
      // the data is touched twice.
      return 2 * sdram_pass + ahb_pass + sdram_pass;
    case CopyMode::kDma: {
      // Channel programming on the CPU, then bus-limited streaming:
      // each word pays the AHB beat plus two cycles of SDRAM access,
      // no per-word CPU work.
      constexpr u64 kDmaSetupCpuCycles = 200;
      const u64 bursts = DivCeil(words, ahb_.timing().max_burst_beats);
      const u64 bus_cycles =
          bursts * ahb_.timing().setup_cycles +
          words * (ahb_.timing().cycles_per_beat + 2);
      return cpu_clock_.Duration(kDmaSetupCpuCycles) +
             ahb_.clock().Duration(bus_cycles);
    }
  }
  VCOP_CHECK(false);
  return 0;
}

Picoseconds TransferEngine::PriceDirect(u32 len) const {
  // Pure bus streaming: the DMA master reads/writes user SDRAM pages by
  // scatter-gather (the IOMMU resolved them already) and the DP-RAM
  // directly. Per word: one AHB beat plus two SDRAM access cycles; per
  // INCR burst: the setup cycles. No CPU pass ever touches the data.
  const u64 words = DivCeil(len, 4);
  const u64 bursts = DivCeil(words, ahb_.timing().max_burst_beats);
  const u64 bus_cycles = bursts * ahb_.timing().setup_cycles +
                         words * (ahb_.timing().cycles_per_beat + 2);
  return ahb_.clock().Duration(bus_cycles);
}

TransferResult TransferEngine::LoadDirect(const UserMemory& user,
                                          UserAddr src, DualPortRam& dp,
                                          u32 dst, u32 len) {
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbError)) {
    TransferResult r;
    r.time = PriceDirect(len);
    r.bus_error = true;
    total_time_ += r.time;
    return r;
  }
  auto view = user.View(src, len);
  dp.Write(DualPortRam::Port::kProcessor, dst, view);
  TransferResult r;
  r.bytes = len;
  r.time = PriceDirect(len);
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbRetry)) {
    r.retried_beats = 1;
    r.time += ahb_.clock().Duration(ahb_.timing().setup_cycles +
                                    ahb_.timing().cycles_per_beat);
  }
  bytes_loaded_ += len;
  total_time_ += r.time;
  return r;
}

TransferResult TransferEngine::StoreDirect(DualPortRam& dp, u32 src,
                                           UserMemory& user, UserAddr dst,
                                           u32 len) {
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbError)) {
    TransferResult r;
    r.time = PriceDirect(len);
    r.bus_error = true;
    total_time_ += r.time;
    return r;
  }
  std::vector<u8> buf(len);
  dp.Read(DualPortRam::Port::kProcessor, src, buf);
  user.WriteBytes(dst, buf);
  TransferResult r;
  r.bytes = len;
  r.time = PriceDirect(len);
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbRetry)) {
    r.retried_beats = 1;
    r.time += ahb_.clock().Duration(ahb_.timing().setup_cycles +
                                    ahb_.timing().cycles_per_beat);
  }
  bytes_stored_ += len;
  total_time_ += r.time;
  return r;
}

BurstResult TransferEngine::StoreBurstDirect(
    DualPortRam& dp, UserMemory& user,
    std::span<const StoreSegment> segments) {
  BurstResult r;
  u32 done_len = 0;
  std::vector<u8> buf;
  for (const StoreSegment& seg : segments) {
    if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbError)) {
      r.bus_error = true;
      r.time = PriceDirect(done_len + seg.len);
      bytes_stored_ += r.bytes;
      total_time_ += r.time;
      return r;
    }
    buf.resize(seg.len);
    dp.Read(DualPortRam::Port::kProcessor, seg.src, buf);
    user.WriteBytes(seg.dst, buf);
    done_len += seg.len;
    r.bytes += seg.len;
    ++r.completed_segments;
  }
  r.time = PriceDirect(done_len);
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbRetry)) {
    r.retried_beats = 1;
    r.time += ahb_.clock().Duration(ahb_.timing().setup_cycles +
                                    ahb_.timing().cycles_per_beat);
  }
  bytes_stored_ += r.bytes;
  total_time_ += r.time;
  return r;
}

TransferResult TransferEngine::LoadPage(const UserMemory& user, UserAddr src,
                                        DualPortRam& dp, u32 dst, u32 len) {
  if (mode_ == CopyMode::kDoubleCopy) ++bounce_copies_;
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbError)) {
    // The transfer errors mid-pass: no data reaches the DP-RAM, but the
    // bus time was wasted. The VIM decides whether to retry.
    TransferResult r;
    r.time = PriceTransfer(len);
    r.bus_error = true;
    total_time_ += r.time;
    return r;
  }
  auto view = user.View(src, len);
  dp.Write(DualPortRam::Port::kProcessor, dst, view);
  TransferResult r;
  r.bytes = len;
  r.time = PriceTransfer(len);
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbRetry)) {
    // The slave RETRYed one beat; the transfer still succeeds but the
    // beat was run twice.
    r.retried_beats = 1;
    r.time += ahb_.clock().Duration(ahb_.timing().setup_cycles +
                                    ahb_.timing().cycles_per_beat);
  }
  bytes_loaded_ += len;
  total_time_ += r.time;
  return r;
}

TransferResult TransferEngine::StorePage(DualPortRam& dp, u32 src,
                                         UserMemory& user, UserAddr dst,
                                         u32 len) {
  if (mode_ == CopyMode::kDoubleCopy) ++bounce_copies_;
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbError)) {
    TransferResult r;
    r.time = PriceTransfer(len);
    r.bus_error = true;
    total_time_ += r.time;
    return r;
  }
  std::vector<u8> buf(len);
  dp.Read(DualPortRam::Port::kProcessor, src, buf);
  user.WriteBytes(dst, buf);
  TransferResult r;
  r.bytes = len;
  r.time = PriceTransfer(len);
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbRetry)) {
    r.retried_beats = 1;
    r.time += ahb_.clock().Duration(ahb_.timing().setup_cycles +
                                    ahb_.timing().cycles_per_beat);
  }
  bytes_stored_ += len;
  total_time_ += r.time;
  return r;
}

BurstResult TransferEngine::StoreBurst(
    DualPortRam& dp, UserMemory& user,
    std::span<const StoreSegment> segments) {
  BurstResult r;
  // Each segment is one fault-injection opportunity, mirroring the
  // per-page store path, so a FaultPlan hits burst and non-burst runs
  // at comparable rates.
  u32 done_len = 0;
  std::vector<u8> buf;
  for (const StoreSegment& seg : segments) {
    if (mode_ == CopyMode::kDoubleCopy) ++bounce_copies_;
    if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbError)) {
      // The transaction errors inside this segment: earlier segments
      // landed, this segment's bus pass is wasted time, later segments
      // never start. The caller retries from completed_segments.
      r.bus_error = true;
      r.time = PriceBurst(done_len + seg.len);
      bytes_stored_ += r.bytes;
      total_time_ += r.time;
      return r;
    }
    buf.resize(seg.len);
    dp.Read(DualPortRam::Port::kProcessor, seg.src, buf);
    user.WriteBytes(seg.dst, buf);
    done_len += seg.len;
    r.bytes += seg.len;
    ++r.completed_segments;
  }
  r.time = PriceBurst(done_len);
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kAhbRetry)) {
    r.retried_beats = 1;
    r.time += ahb_.clock().Duration(ahb_.timing().setup_cycles +
                                    ahb_.timing().cycles_per_beat);
  }
  bytes_stored_ += r.bytes;
  total_time_ += r.time;
  return r;
}

}  // namespace vcop::mem
