// TransferEngine: the VIM's data mover between user-space memory and
// the dual-port RAM.
//
// It both *performs* the copy (functional) and *prices* it (timing).
// Two modes reproduce a detail the paper calls out in §4.1: their simple
// VIM "makes two transfers each time a page is loaded or unloaded from
// the dual-port memory" (user space -> kernel bounce buffer -> DP-RAM).
// kDoubleCopy models that; kSingleCopy models the fixed VIM the authors
// say they are working on, and backs the abl_transfers experiment.
#pragma once

#include <span>
#include <string_view>

#include "base/fault.h"
#include "base/units.h"
#include "mem/ahb.h"
#include "mem/dp_ram.h"
#include "mem/user_memory.h"

namespace vcop::mem {

enum class CopyMode {
  kDoubleCopy,  // paper's implementation: two passes over the data
  kSingleCopy,  // direct user<->DP copy: one pass
  /// A platform with a DMA controller on the AHB: the CPU programs the
  /// channel (fixed cost) and the data streams SDRAM<->DP-RAM at bus
  /// speed without per-word CPU work. Not available on the paper's
  /// EPXA1 path — modelled as the obvious platform upgrade.
  kDma,
};

std::string_view ToString(CopyMode mode);

/// Outcome of one transfer: where the data went and what it cost.
struct TransferResult {
  u64 bytes = 0;
  Picoseconds time = 0;
  /// The transfer aborted with an AHB bus error: no data moved, but the
  /// wasted bus pass was still paid for in `time`. The caller (VIM)
  /// decides whether to retry.
  bool bus_error = false;
  /// Beats that were RETRYed by the slave and re-run (time only).
  u32 retried_beats = 0;
  /// The IOMMU raised a translation fault for this access (set by
  /// mem::Iommu, never by the engine itself): no data moved, the wasted
  /// bus/walk time is in `time`. Serviced through the VIM retry path.
  bool iommu_fault = false;
};

/// One piece of a scatter-gather burst store: `len` bytes from DP-RAM
/// offset `src` to user address `dst`.
struct StoreSegment {
  u32 src = 0;
  UserAddr dst = 0;
  u32 len = 0;
};

/// Outcome of one scatter-gather burst (StoreBurst).
struct BurstResult {
  u64 bytes = 0;
  Picoseconds time = 0;
  bool bus_error = false;
  u32 retried_beats = 0;
  /// Segments fully written back. On a bus error this is the index of
  /// the failing segment: data for segments [0, completed_segments)
  /// reached user memory, the failing segment's bus pass was wasted,
  /// and later segments were never started. The caller retries from
  /// `completed_segments`.
  u32 completed_segments = 0;
  /// As TransferResult::iommu_fault, for the segment at
  /// `completed_segments` (set by mem::Iommu only).
  bool iommu_fault = false;
};

class TransferEngine {
 public:
  /// `sdram_cycles_per_word`: CPU cost per word of the user-space side
  /// of a copy (SDRAM access + loop). Charged once per pass.
  TransferEngine(AhbModel ahb, Frequency cpu_clock, CopyMode mode,
                 u32 sdram_cycles_per_word);

  /// Copies `len` bytes from user memory into the DP-RAM.
  TransferResult LoadPage(const UserMemory& user, UserAddr src,
                          DualPortRam& dp, u32 dst, u32 len);

  /// Copies `len` bytes from the DP-RAM back to user memory.
  /// (`dp` is non-const because reads update its traffic counters.)
  TransferResult StorePage(DualPortRam& dp, u32 src, UserMemory& user,
                           UserAddr dst, u32 len);

  /// Writes several DP-RAM ranges back to user memory as ONE bus
  /// transaction: words from consecutive segments pack into shared
  /// bursts, and fixed per-transaction costs (the DMA channel setup in
  /// kDma mode) are paid once instead of once per segment. A
  /// single-segment burst costs exactly PriceTransfer(len); 2 KB pages
  /// are whole multiples of INCR16, so in the CPU copy modes a burst of
  /// aligned pages costs cycle-for-cycle the sum of per-page stores —
  /// the savings there come only from packing partial tail pages. (In
  /// picoseconds the two can differ by less than one clock period per
  /// pass: Frequency::Duration floors each cycles->time conversion,
  /// and the burst converts once where the per-page path converts once
  /// per page.)
  BurstResult StoreBurst(DualPortRam& dp, UserMemory& user,
                         std::span<const StoreSegment> segments);

  /// Zero-copy paths used by the IOMMU (mem/iommu.h): the DMA master
  /// scatter-gathers straight between user pages and the DP-RAM, so the
  /// data crosses the bus exactly once and the CPU never touches it.
  /// Functionally identical to LoadPage/StorePage/StoreBurst (same
  /// fault-injection opportunities) but priced at PriceDirect — the raw
  /// AHB streaming bound with no CPU-copy passes.
  TransferResult LoadDirect(const UserMemory& user, UserAddr src,
                            DualPortRam& dp, u32 dst, u32 len);
  TransferResult StoreDirect(DualPortRam& dp, u32 src, UserMemory& user,
                             UserAddr dst, u32 len);
  BurstResult StoreBurstDirect(DualPortRam& dp, UserMemory& user,
                               std::span<const StoreSegment> segments);

  /// Time that moving `len` bytes would take in the current mode,
  /// without performing it (used by planners/prefetchers).
  Picoseconds PriceTransfer(u32 len) const;

  /// Raw AHB/DMA streaming bound for `len` bytes: burst setup plus
  /// beat+SDRAM cycles per word on the bus clock — no per-word CPU work,
  /// no bounce passes, no channel-programming cost (under the IOMMU the
  /// scatter-gather list is the channel program, built once per fault
  /// service and priced as the IO-TLB walk). This is the analytic bound
  /// bench_iommu gates against.
  Picoseconds PriceDirect(u32 len) const;

  /// Time StoreBurst would charge for segments totalling `total_len`
  /// bytes (identical to PriceTransfer — the burst model is "one
  /// transfer of the combined length").
  Picoseconds PriceBurst(u32 total_len) const { return PriceTransfer(total_len); }

  CopyMode mode() const { return mode_; }
  void set_mode(CopyMode mode) { mode_ = mode; }

  /// Installs (or clears, with nullptr) the fault plan consulted on
  /// every transfer. Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Cumulative counters.
  u64 total_bytes_loaded() const { return bytes_loaded_; }
  u64 total_bytes_stored() const { return bytes_stored_; }
  Picoseconds total_time() const { return total_time_; }
  /// Passes through the kernel bounce buffer (kDoubleCopy transfers
  /// only). The bench_iommu gate: stays zero when every page transfer
  /// takes the direct path.
  u64 bounce_copies() const { return bounce_copies_; }

 private:
  AhbModel ahb_;
  Frequency cpu_clock_;
  CopyMode mode_;
  u32 sdram_cycles_per_word_;
  u64 bytes_loaded_ = 0;
  u64 bytes_stored_ = 0;
  u64 bounce_copies_ = 0;
  Picoseconds total_time_ = 0;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace vcop::mem
