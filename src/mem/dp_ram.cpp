#include "mem/dp_ram.h"

#include <cstring>

#include "base/table.h"

namespace vcop::mem {

DualPortRam::DualPortRam(u32 size_bytes) : bytes_(size_bytes, 0) {
  VCOP_CHECK_MSG(size_bytes >= 1, "dual-port RAM needs a nonzero size");
}

void DualPortRam::CheckRange(u32 addr, usize len) const {
  VCOP_CHECK_MSG(static_cast<u64>(addr) + len <= bytes_.size(),
                 StrFormat("DP-RAM access [%u, %zu) out of bounds (size %zu)",
                           addr, addr + len, bytes_.size()));
}

void DualPortRam::Read(Port port, u32 addr, std::span<u8> data) {
  CheckRange(addr, data.size());
  std::memcpy(data.data(), bytes_.data() + addr, data.size());
  stats_[Index(port)].bytes_read += data.size();
}

void DualPortRam::Write(Port port, u32 addr, std::span<const u8> data) {
  CheckRange(addr, data.size());
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
  stats_[Index(port)].bytes_written += data.size();
}

u32 DualPortRam::ReadWord(Port port, u32 addr, u32 width) {
  VCOP_CHECK_MSG(width == 1 || width == 2 || width == 4,
                 "word width must be 1, 2 or 4 bytes");
  VCOP_CHECK_MSG(addr % width == 0, "unaligned IMU word access");
  CheckRange(addr, width);
  u32 value = 0;
  for (u32 i = 0; i < width; ++i) {
    value |= static_cast<u32>(bytes_[addr + i]) << (8 * i);
  }
  stats_[Index(port)].bytes_read += width;
  return value;
}

void DualPortRam::WriteWord(Port port, u32 addr, u32 width, u32 value) {
  VCOP_CHECK_MSG(width == 1 || width == 2 || width == 4,
                 "word width must be 1, 2 or 4 bytes");
  VCOP_CHECK_MSG(addr % width == 0, "unaligned IMU word access");
  CheckRange(addr, width);
  for (u32 i = 0; i < width; ++i) {
    bytes_[addr + i] = static_cast<u8>(value >> (8 * i));
  }
  stats_[Index(port)].bytes_written += width;
}

}  // namespace vcop::mem
