#include "mem/ahb.h"

namespace vcop::mem {

double AhbModel::ThroughputBytesPerSecond() const {
  // Asymptotic: per max-length burst, setup + beats*(bus+cpu) cycles
  // move 4*beats bytes.
  const double cycles_per_burst =
      timing_.setup_cycles +
      static_cast<double>(timing_.max_burst_beats) *
          (timing_.cycles_per_beat + timing_.cpu_cycles_per_word);
  const double bytes_per_burst = 4.0 * timing_.max_burst_beats;
  return bytes_per_burst / cycles_per_burst *
         static_cast<double>(clock_.hertz());
}

}  // namespace vcop::mem
