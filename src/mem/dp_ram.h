// Dual-port RAM model.
//
// The EPXA1's on-chip dual-port memory is accessible by the PLD directly
// (port B, used by the IMU on behalf of the coprocessor) and by the ARM
// processor over the AHB (port A, used by the VIM when loading/unloading
// pages). Functionally it is a flat byte array; the model additionally
// counts per-port traffic so experiments can report interface-memory
// bandwidth use.
#pragma once

#include <span>
#include <vector>

#include "base/status.h"
#include "base/types.h"

namespace vcop::mem {

class DualPortRam {
 public:
  enum class Port { kProcessor = 0, kCoprocessor = 1 };

  /// `size_bytes` >= 1. (EPXA1: 16 KB.)
  explicit DualPortRam(u32 size_bytes);

  u32 size() const { return static_cast<u32>(bytes_.size()); }

  /// Reads `data.size()` bytes at `addr` through `port`.
  /// addr + len must be within the RAM.
  void Read(Port port, u32 addr, std::span<u8> data);

  /// Writes `data` at `addr` through `port`.
  void Write(Port port, u32 addr, std::span<const u8> data);

  /// Word helpers used by the IMU datapath (little-endian, matching the
  /// ARM side). `width` in {1, 2, 4} bytes; `addr` must be
  /// width-aligned — the IMU never issues unaligned element accesses.
  u32 ReadWord(Port port, u32 addr, u32 width);
  void WriteWord(Port port, u32 addr, u32 width, u32 value);

  /// Per-port byte counters (reads, writes).
  u64 bytes_read(Port port) const { return stats_[Index(port)].bytes_read; }
  u64 bytes_written(Port port) const {
    return stats_[Index(port)].bytes_written;
  }

  /// Direct backing-store view for tests and the transfer engine.
  std::span<u8> raw() { return bytes_; }
  std::span<const u8> raw() const { return bytes_; }

 private:
  static usize Index(Port port) { return static_cast<usize>(port); }
  void CheckRange(u32 addr, usize len) const;

  struct PortStats {
    u64 bytes_read = 0;
    u64 bytes_written = 0;
  };

  std::vector<u8> bytes_;
  PortStats stats_[2];
};

}  // namespace vcop::mem
