// IOMMU: virtual-address DMA for the transfer engine.
//
// The paper's VIM copies every page through the CPU (§4.1 even does it
// twice). The IOMMU removes the CPU from the data path entirely: the
// DMA master issues *user virtual addresses*, and an IO-TLB in front of
// the bus translates (asid, vpage) -> user frame, walking the owning
// tenant's address-space tables on a miss. Pages referenced by an
// in-flight DMA are pinned so the OS cannot reclaim them under the
// device; shootdowns keep the IO-TLB coherent with FlushAsid/context
// switch. Modelled on the ARMv8 IOMMU/RDMA thesis (PAPERS.md).
//
// Layering: mem::Iommu knows nothing about the OS. The VIM installs a
// `walker` callback that validates a (asid, page) pair against the
// owning AddressSpace; everything else — IO-TLB, pinning, pricing via
// TransferEngine::*Direct — lives here.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "base/fault.h"
#include "base/units.h"
#include "mem/transfer.h"

namespace vcop::mem {

/// Address-space id as seen by the IOMMU. Mirrors hw::Asid (u16)
/// without pulling hw/ headers into mem/.
using IommuAsid = u16;

/// Counters for the IO-TLB and the zero-copy data path.
struct IommuStats {
  u64 iotlb_hits = 0;
  u64 iotlb_misses = 0;
  u64 iotlb_evictions = 0;   // valid entries displaced by refills
  u64 walks = 0;             // page-table walks performed (= installs)
  u64 shootdowns = 0;        // invalidate operations issued
  u64 entries_shot_down = 0; // live entries those operations removed
  u64 translation_faults = 0;
  u64 iotlb_parity_drops = 0;  // corrupt entries detected at use
  u64 pages_pinned = 0;
  u64 pages_unpinned = 0;
  u64 zero_copy_loads = 0;
  u64 zero_copy_stores = 0;
  u64 zero_copy_bytes = 0;
};

class Iommu {
 public:
  /// Validates that `asid` may DMA the 4 KB user page at `page_base`.
  /// Installed by the VIM; called once per IO-TLB miss.
  using Walker = std::function<bool(IommuAsid asid, UserAddr page_base)>;

  /// One scatter-gather element of a burst store, tagged with its
  /// owning address space (a coalesced write-back sweep may mix pages
  /// of different tenants).
  struct BurstSegment {
    IommuAsid asid = 0;
    StoreSegment seg;
  };

  Iommu(TransferEngine& engine, Frequency clock)
      : engine_(engine), clock_(clock) {}

  /// `iotlb_entries` must be a power of two (platform key contract);
  /// `walk_cycles` is the per-miss table-walk cost on `clock`.
  void Configure(bool enabled, u32 iotlb_entries, u32 walk_cycles);
  bool enabled() const { return enabled_; }

  void set_walker(Walker walker) { walker_ = std::move(walker); }
  /// Fault plan consulted per translated page (kIotlbCorrupt on hits,
  /// kIommuTranslationFault on walks). Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Zero-copy DMA: translate every user page the access touches, pin
  /// it for the duration, and stream over the bus via the engine's
  /// direct path. On a translation fault the result carries
  /// iommu_fault = true, no data moves, and the walk time already
  /// spent is in `time` — the VIM services it like a bus error.
  TransferResult LoadToDp(IommuAsid asid, UserMemory& user, UserAddr src,
                          DualPortRam& dp, u32 dst, u32 len);
  TransferResult StoreFromDp(IommuAsid asid, DualPortRam& dp, u32 src,
                             UserMemory& user, UserAddr dst, u32 len);
  /// Scatter-gather burst store. On a translation fault at segment i,
  /// segments [0, completed_segments) landed, iommu_fault is set and
  /// the caller retries from completed_segments — same contract as the
  /// engine's AHB burst errors.
  BurstResult StoreBurstFromDp(DualPortRam& dp, UserMemory& user,
                               std::span<const BurstSegment> segments);

  /// Pin bookkeeping for *asynchronous* DMAs (the VIM's overlapped
  /// prefetch pins at schedule time and unpins at completion).
  void PinRange(UserMemory& user, UserAddr addr, u32 len);
  void UnpinRange(UserMemory& user, UserAddr addr, u32 len);

  /// IO-TLB shootdowns. Return the number of live entries removed.
  u64 InvalidateAsid(IommuAsid asid);
  u64 InvalidateAll();
  /// Single-page shootdown, used by the fault-recovery path to drop a
  /// possibly-stale entry before retrying.
  u64 InvalidatePage(IommuAsid asid, UserAddr addr);

  u32 live_entries() const;
  u32 live_entries_of(IommuAsid asid) const;
  const IommuStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool valid = false;
    IommuAsid asid = 0;
    u32 vpage = 0;  // user VA >> kUserPageShift
    u32 frame = 0;  // user frame number (flat space: identity map)
  };

  struct Translation {
    bool ok = true;
    Picoseconds time = 0;  // walk cycles spent, success or not
  };

  /// Translates every 4 KB page of [addr, addr+len), refilling the
  /// IO-TLB as needed. Stops at the first faulting page.
  Translation Translate(IommuAsid asid, UserAddr addr, u32 len);
  /// As Translate, accumulating walk time into `t`; false on fault.
  bool TranslateRange(IommuAsid asid, UserAddr addr, u32 len, Translation& t);
  bool TranslateOnePage(IommuAsid asid, u32 vpage, Translation& t);

  TransferEngine& engine_;
  Frequency clock_;
  bool enabled_ = false;
  u32 walk_cycles_ = 0;
  std::vector<Entry> iotlb_;
  u32 evict_cursor_ = 0;
  Walker walker_;
  FaultPlan* fault_plan_ = nullptr;
  IommuStats stats_;
};

}  // namespace vcop::mem
