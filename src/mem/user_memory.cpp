#include "mem/user_memory.h"

#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

#include "base/bitops.h"
#include "base/table.h"

namespace vcop::mem {
namespace {

// Anonymous mmap hands out zero pages that the kernel materialises only
// on first touch, and munmap returns them without a pass over the
// buffer. calloc is not enough here: glibc keeps a freed chunk this
// size in its arena and memsets it on the next calloc, which puts the
// full SDRAM wipe back on every system construction.
u8* MapZeroed(u32 bytes) {
#if defined(__unix__) || defined(__APPLE__)
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return p == MAP_FAILED ? nullptr : static_cast<u8*>(p);
#else
  return static_cast<u8*>(std::calloc(bytes, 1));
#endif
}

void UnmapZeroed(u8* p, u32 bytes) {
#if defined(__unix__) || defined(__APPLE__)
  ::munmap(p, bytes);
#else
  (void)bytes;
  std::free(p);
#endif
}

}  // namespace

UserMemory::UserMemory(u32 capacity_bytes)
    : backing_(MapZeroed(capacity_bytes)), capacity_(capacity_bytes) {
  VCOP_CHECK_MSG(capacity_bytes >= 64, "user memory unrealistically small");
  VCOP_CHECK_MSG(backing_ != nullptr, "user memory allocation failed");
}

UserMemory::~UserMemory() {
  if (backing_ != nullptr) UnmapZeroed(backing_, capacity_);
}

Result<UserAddr> UserMemory::Allocate(u32 size) {
  if (size == 0) return InvalidArgumentError("cannot allocate 0 bytes");
  const u32 base = static_cast<u32>(AlignUp(next_, 16));
  if (static_cast<u64>(base) + size > capacity_) {
    return ResourceExhaustedError(
        StrFormat("user memory exhausted: %u bytes requested, %zu free", size,
                  static_cast<usize>(capacity_ - base)));
  }
  next_ = base + size;
  regions_.push_back(Region{base, size});
  return base;
}

bool UserMemory::Contains(UserAddr addr, u32 len) const {
  for (const Region& r : regions_) {
    if (addr >= r.base && static_cast<u64>(addr) + len <=
                              static_cast<u64>(r.base) + r.size) {
      return true;
    }
  }
  return false;
}

std::span<u8> UserMemory::View(UserAddr addr, u32 len) {
  VCOP_CHECK_MSG(Contains(addr, len),
                 StrFormat("user memory access [%u,+%u) not allocated", addr,
                           len));
  return std::span<u8>(backing_ + addr, len);
}

std::span<const u8> UserMemory::View(UserAddr addr, u32 len) const {
  VCOP_CHECK_MSG(Contains(addr, len),
                 StrFormat("user memory access [%u,+%u) not allocated", addr,
                           len));
  return std::span<const u8>(backing_ + addr, len);
}

void UserMemory::WriteBytes(UserAddr addr, std::span<const u8> data) {
  auto dst = View(addr, static_cast<u32>(data.size()));
  std::memcpy(dst.data(), data.data(), data.size());
}

void UserMemory::ReadBytes(UserAddr addr, std::span<u8> data) const {
  auto src = View(addr, static_cast<u32>(data.size()));
  std::memcpy(data.data(), src.data(), data.size());
}

void UserMemory::Pin(UserAddr addr, u32 len) {
  if (len == 0) return;
  const u32 first = addr >> kUserPageShift;
  const u32 last = static_cast<u32>((static_cast<u64>(addr) + len - 1) >>
                                    kUserPageShift);
  for (u32 page = first; page <= last; ++page) ++pins_[page];
}

void UserMemory::Unpin(UserAddr addr, u32 len) {
  if (len == 0) return;
  const u32 first = addr >> kUserPageShift;
  const u32 last = static_cast<u32>((static_cast<u64>(addr) + len - 1) >>
                                    kUserPageShift);
  for (u32 page = first; page <= last; ++page) {
    auto it = pins_.find(page);
    VCOP_CHECK_MSG(it != pins_.end() && it->second > 0,
                   StrFormat("unpin of unpinned user page %u", page));
    if (--it->second == 0) pins_.erase(it);
  }
}

u32 UserMemory::PinCount(UserAddr addr) const {
  auto it = pins_.find(addr >> kUserPageShift);
  return it == pins_.end() ? 0 : it->second;
}

bool UserMemory::AnyPinned(UserAddr addr, u32 len) const {
  if (len == 0) return false;
  const u32 first = addr >> kUserPageShift;
  const u32 last = static_cast<u32>((static_cast<u64>(addr) + len - 1) >>
                                    kUserPageShift);
  for (u32 page = first; page <= last; ++page) {
    if (pins_.count(page) != 0) return true;
  }
  return false;
}

Status UserMemory::Reclaim(UserAddr base) {
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if (it->base != base) continue;
    if (AnyPinned(it->base, it->size)) {
      return FailedPreconditionError(StrFormat(
          "region [%u,+%u) has DMA-pinned pages; unpin before reclaim",
          it->base, it->size));
    }
    regions_.erase(it);
    return Status::Ok();
  }
  return NotFoundError(StrFormat("no region allocated at %u", base));
}

}  // namespace vcop::mem
