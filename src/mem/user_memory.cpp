#include "mem/user_memory.h"

#include <cstring>

#include "base/bitops.h"
#include "base/table.h"

namespace vcop::mem {

UserMemory::UserMemory(u32 capacity_bytes) : backing_(capacity_bytes, 0) {
  VCOP_CHECK_MSG(capacity_bytes >= 64, "user memory unrealistically small");
}

Result<UserAddr> UserMemory::Allocate(u32 size) {
  if (size == 0) return InvalidArgumentError("cannot allocate 0 bytes");
  const u32 base = static_cast<u32>(AlignUp(next_, 16));
  if (static_cast<u64>(base) + size > backing_.size()) {
    return ResourceExhaustedError(
        StrFormat("user memory exhausted: %u bytes requested, %zu free", size,
                  backing_.size() - base));
  }
  next_ = base + size;
  regions_.push_back(Region{base, size});
  return base;
}

bool UserMemory::Contains(UserAddr addr, u32 len) const {
  for (const Region& r : regions_) {
    if (addr >= r.base && static_cast<u64>(addr) + len <=
                              static_cast<u64>(r.base) + r.size) {
      return true;
    }
  }
  return false;
}

std::span<u8> UserMemory::View(UserAddr addr, u32 len) {
  VCOP_CHECK_MSG(Contains(addr, len),
                 StrFormat("user memory access [%u,+%u) not allocated", addr,
                           len));
  return std::span<u8>(backing_.data() + addr, len);
}

std::span<const u8> UserMemory::View(UserAddr addr, u32 len) const {
  VCOP_CHECK_MSG(Contains(addr, len),
                 StrFormat("user memory access [%u,+%u) not allocated", addr,
                           len));
  return std::span<const u8>(backing_.data() + addr, len);
}

void UserMemory::WriteBytes(UserAddr addr, std::span<const u8> data) {
  auto dst = View(addr, static_cast<u32>(data.size()));
  std::memcpy(dst.data(), data.data(), data.size());
}

void UserMemory::ReadBytes(UserAddr addr, std::span<u8> data) const {
  auto src = View(addr, static_cast<u32>(data.size()));
  std::memcpy(data.data(), src.data(), data.size());
}

}  // namespace vcop::mem
