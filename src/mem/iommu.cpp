#include "mem/iommu.h"

#include "base/bitops.h"

namespace vcop::mem {
namespace {

u32 PagesTouched(UserAddr addr, u32 len) {
  if (len == 0) return 0;
  const u32 first = addr >> kUserPageShift;
  const u32 last = static_cast<u32>((static_cast<u64>(addr) + len - 1) >>
                                    kUserPageShift);
  return last - first + 1;
}

}  // namespace

void Iommu::Configure(bool enabled, u32 iotlb_entries, u32 walk_cycles) {
  VCOP_CHECK_MSG(!enabled || IsPowerOfTwo(iotlb_entries),
                 "iotlb_entries must be a power of two");
  enabled_ = enabled;
  walk_cycles_ = walk_cycles;
  iotlb_.assign(enabled ? iotlb_entries : 0, Entry{});
  evict_cursor_ = 0;
}

bool Iommu::TranslateOnePage(IommuAsid asid, u32 vpage, Translation& t) {
  // Probe the IO-TLB (fully associative, like the coprocessor TLB).
  for (Entry& e : iotlb_) {
    if (!e.valid || e.asid != asid || e.vpage != vpage) continue;
    if (fault_plan_ &&
        fault_plan_->ShouldInject(FaultSite::kIotlbCorrupt)) {
      // Parity caught a damaged entry at use: drop it and re-walk —
      // transparent recovery, the access itself still succeeds.
      e.valid = false;
      ++stats_.iotlb_parity_drops;
      break;
    }
    ++stats_.iotlb_hits;
    return true;
  }
  ++stats_.iotlb_misses;

  // Walk the owning address space's tables.
  ++stats_.walks;
  t.time += clock_.Duration(walk_cycles_);
  if (fault_plan_ &&
      fault_plan_->ShouldInject(FaultSite::kIommuTranslationFault)) {
    ++stats_.translation_faults;
    return false;
  }
  if (walker_ && !walker_(asid, vpage << kUserPageShift)) {
    ++stats_.translation_faults;
    return false;
  }

  // Refill: take an invalid slot if one exists, else round-robin evict.
  Entry* victim = nullptr;
  for (Entry& e : iotlb_) {
    if (!e.valid) {
      victim = &e;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &iotlb_[evict_cursor_];
    evict_cursor_ = (evict_cursor_ + 1) & (static_cast<u32>(iotlb_.size()) - 1);
    ++stats_.iotlb_evictions;
  }
  victim->valid = true;
  victim->asid = asid;
  victim->vpage = vpage;
  victim->frame = vpage;  // flat simulated SDRAM: identity frame map
  return true;
}

bool Iommu::TranslateRange(IommuAsid asid, UserAddr addr, u32 len,
                           Translation& t) {
  VCOP_CHECK_MSG(enabled_, "IOMMU translate while disabled");
  if (len == 0) return true;
  const u32 first = addr >> kUserPageShift;
  const u32 last = static_cast<u32>((static_cast<u64>(addr) + len - 1) >>
                                    kUserPageShift);
  for (u32 vpage = first; vpage <= last; ++vpage) {
    if (!TranslateOnePage(asid, vpage, t)) return false;
  }
  return true;
}

Iommu::Translation Iommu::Translate(IommuAsid asid, UserAddr addr, u32 len) {
  Translation t;
  t.ok = TranslateRange(asid, addr, len, t);
  return t;
}

TransferResult Iommu::LoadToDp(IommuAsid asid, UserMemory& user,
                               UserAddr src, DualPortRam& dp, u32 dst,
                               u32 len) {
  Translation t = Translate(asid, src, len);
  if (!t.ok) {
    TransferResult r;
    r.time = t.time;
    r.iommu_fault = true;
    return r;
  }
  PinRange(user, src, len);
  TransferResult r = engine_.LoadDirect(user, src, dp, dst, len);
  UnpinRange(user, src, len);
  r.time += t.time;
  if (!r.bus_error) {
    ++stats_.zero_copy_loads;
    stats_.zero_copy_bytes += r.bytes;
  }
  return r;
}

TransferResult Iommu::StoreFromDp(IommuAsid asid, DualPortRam& dp, u32 src,
                                  UserMemory& user, UserAddr dst, u32 len) {
  Translation t = Translate(asid, dst, len);
  if (!t.ok) {
    TransferResult r;
    r.time = t.time;
    r.iommu_fault = true;
    return r;
  }
  PinRange(user, dst, len);
  TransferResult r = engine_.StoreDirect(dp, src, user, dst, len);
  UnpinRange(user, dst, len);
  r.time += t.time;
  if (!r.bus_error) {
    ++stats_.zero_copy_stores;
    stats_.zero_copy_bytes += r.bytes;
  }
  return r;
}

BurstResult Iommu::StoreBurstFromDp(DualPortRam& dp, UserMemory& user,
                                    std::span<const BurstSegment> segments) {
  // Translate a prefix of the scatter-gather list, stopping at the
  // first faulting segment, then hand that prefix to the engine as one
  // burst. Segments the engine completes have landed; the caller
  // retries from completed_segments either way.
  Translation t;
  std::vector<StoreSegment> translated;
  translated.reserve(segments.size());
  bool faulted = false;
  for (const BurstSegment& bs : segments) {
    if (!TranslateRange(bs.asid, bs.seg.dst, bs.seg.len, t)) {
      faulted = true;
      break;
    }
    translated.push_back(bs.seg);
  }
  for (const StoreSegment& seg : translated) PinRange(user, seg.dst, seg.len);
  BurstResult r = translated.empty()
                      ? BurstResult{}
                      : engine_.StoreBurstDirect(dp, user, translated);
  for (const StoreSegment& seg : translated) {
    UnpinRange(user, seg.dst, seg.len);
  }
  r.time += t.time;
  if (faulted && !r.bus_error && r.completed_segments == translated.size()) {
    r.iommu_fault = true;
  }
  if (r.bytes > 0) {
    ++stats_.zero_copy_stores;
    stats_.zero_copy_bytes += r.bytes;
  }
  return r;
}

void Iommu::PinRange(UserMemory& user, UserAddr addr, u32 len) {
  user.Pin(addr, len);
  stats_.pages_pinned += PagesTouched(addr, len);
}

void Iommu::UnpinRange(UserMemory& user, UserAddr addr, u32 len) {
  user.Unpin(addr, len);
  stats_.pages_unpinned += PagesTouched(addr, len);
}

u64 Iommu::InvalidateAsid(IommuAsid asid) {
  ++stats_.shootdowns;
  u64 removed = 0;
  for (Entry& e : iotlb_) {
    if (e.valid && e.asid == asid) {
      e.valid = false;
      ++removed;
    }
  }
  stats_.entries_shot_down += removed;
  return removed;
}

u64 Iommu::InvalidateAll() {
  ++stats_.shootdowns;
  u64 removed = 0;
  for (Entry& e : iotlb_) {
    if (e.valid) {
      e.valid = false;
      ++removed;
    }
  }
  stats_.entries_shot_down += removed;
  return removed;
}

u64 Iommu::InvalidatePage(IommuAsid asid, UserAddr addr) {
  ++stats_.shootdowns;
  const u32 vpage = addr >> kUserPageShift;
  u64 removed = 0;
  for (Entry& e : iotlb_) {
    if (e.valid && e.asid == asid && e.vpage == vpage) {
      e.valid = false;
      ++removed;
    }
  }
  stats_.entries_shot_down += removed;
  return removed;
}

u32 Iommu::live_entries() const {
  u32 n = 0;
  for (const Entry& e : iotlb_) n += e.valid ? 1 : 0;
  return n;
}

u32 Iommu::live_entries_of(IommuAsid asid) const {
  u32 n = 0;
  for (const Entry& e : iotlb_) n += (e.valid && e.asid == asid) ? 1 : 0;
  return n;
}

}  // namespace vcop::mem
