// Page geometry of the interface memory.
//
// The paper's EPXA1 dual-port RAM is "logically organised in eight 2KB
// pages (the total size is therefore of 16KB)" (§4). PageGeometry captures
// that organisation and the virtual-page arithmetic the IMU and VIM share.
#pragma once

#include "base/bitops.h"
#include "base/status.h"
#include "base/types.h"

namespace vcop::mem {

/// Index of a physical page frame inside the dual-port RAM.
using FrameId = u32;

/// Index of a virtual page inside a mapped object's byte range.
using VirtPage = u32;

class PageGeometry {
 public:
  /// `page_bytes` must be a power of two; `num_frames` >= 1.
  PageGeometry(u32 page_bytes, u32 num_frames)
      : page_bytes_(page_bytes), num_frames_(num_frames) {
    VCOP_CHECK_MSG(IsPowerOfTwo(page_bytes), "page size must be 2^k");
    VCOP_CHECK_MSG(num_frames >= 1, "need at least one page frame");
  }

  u32 page_bytes() const { return page_bytes_; }
  u32 num_frames() const { return num_frames_; }
  u32 total_bytes() const { return page_bytes_ * num_frames_; }
  u32 page_shift() const { return Log2(page_bytes_); }
  u32 offset_mask() const { return page_bytes_ - 1; }

  /// Virtual page containing byte `offset` of an object.
  VirtPage PageOf(u64 offset) const {
    return static_cast<VirtPage>(offset >> page_shift());
  }

  /// Offset of `offset` within its page.
  u32 OffsetIn(u64 offset) const {
    return static_cast<u32>(offset & offset_mask());
  }

  /// Physical byte address (within the DP-RAM) of frame `frame`.
  u32 FrameBase(FrameId frame) const {
    VCOP_CHECK_MSG(frame < num_frames_, "frame id out of range");
    return frame * page_bytes_;
  }

  /// Number of pages spanned by an object of `size` bytes.
  u32 PagesFor(u64 size) const {
    return static_cast<u32>(DivCeil(size, page_bytes_));
  }

 private:
  u32 page_bytes_;
  u32 num_frames_;
};

}  // namespace vcop::mem
