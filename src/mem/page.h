// Page geometry of the interface memory.
//
// The paper's EPXA1 dual-port RAM is "logically organised in eight 2KB
// pages (the total size is therefore of 16KB)" (§4). PageGeometry captures
// that organisation and the virtual-page arithmetic the IMU and VIM share.
#pragma once

#include "base/bitops.h"
#include "base/status.h"
#include "base/types.h"

namespace vcop::mem {

/// Index of a physical page frame inside the dual-port RAM.
using FrameId = u32;

/// Index of a virtual page inside a mapped object's byte range.
using VirtPage = u32;

/// User pages are the host MMU's 4 KB granule — the unit the IOMMU pins
/// and translates. This is deliberately distinct from the VIM's dual-port
/// page granule (PageGeometry::page_bytes, 2 KB on the EPXA1) and from
/// any per-object page-size override: user-VA arithmetic always shifts by
/// kUserPageShift, DP-RAM frame arithmetic never does.
inline constexpr u32 kUserPageShift = 12;
inline constexpr u32 kUserPageBytes = 1u << kUserPageShift;

/// Bounds of the per-object page-size override (ISSUE 9): superpages for
/// streaming objects up to 8 KB, small pages down to 512 B.
inline constexpr u32 kMinObjectPageBytes = 512;
inline constexpr u32 kMaxObjectPageBytes = 8192;

/// Whether `bytes` is an acceptable per-object page size: a power of two
/// within [kMinObjectPageBytes, kMaxObjectPageBytes]. (Whether it is also
/// >= the platform's frame granule depends on the PageGeometry in force
/// and is checked where both are known.)
inline constexpr bool IsValidObjectPageBytes(u32 bytes) {
  return bytes >= kMinObjectPageBytes && bytes <= kMaxObjectPageBytes &&
         (bytes & (bytes - 1)) == 0;
}

class PageGeometry {
 public:
  /// `page_bytes` must be a power of two; `num_frames` >= 1.
  PageGeometry(u32 page_bytes, u32 num_frames)
      : page_bytes_(page_bytes), num_frames_(num_frames) {
    VCOP_CHECK_MSG(IsPowerOfTwo(page_bytes), "page size must be 2^k");
    VCOP_CHECK_MSG(num_frames >= 1, "need at least one page frame");
  }

  u32 page_bytes() const { return page_bytes_; }
  u32 num_frames() const { return num_frames_; }
  u32 total_bytes() const { return page_bytes_ * num_frames_; }
  u32 page_shift() const { return Log2(page_bytes_); }
  u32 offset_mask() const { return page_bytes_ - 1; }

  /// Virtual page containing byte `offset` of an object.
  VirtPage PageOf(u64 offset) const {
    return static_cast<VirtPage>(offset >> page_shift());
  }

  /// Offset of `offset` within its page.
  u32 OffsetIn(u64 offset) const {
    return static_cast<u32>(offset & offset_mask());
  }

  /// Physical byte address (within the DP-RAM) of frame `frame`.
  u32 FrameBase(FrameId frame) const {
    VCOP_CHECK_MSG(frame < num_frames_, "frame id out of range");
    return frame * page_bytes_;
  }

  /// Number of pages spanned by an object of `size` bytes.
  u32 PagesFor(u64 size) const {
    return static_cast<u32>(DivCeil(size, page_bytes_));
  }

  /// Number of contiguous frames backing one page of `object_page_bytes`.
  /// The frame granule stays page_bytes(); a per-object superpage is a
  /// run of `SpanOf(...)` consecutive frames. Object page sizes below the
  /// granule are rejected.
  u32 SpanOf(u32 object_page_bytes) const {
    VCOP_CHECK_MSG(IsPowerOfTwo(object_page_bytes),
                   "object page size must be 2^k");
    VCOP_CHECK_MSG(object_page_bytes >= page_bytes_,
                   "object page size below the frame granule");
    return object_page_bytes / page_bytes_;
  }

 private:
  u32 page_bytes_;
  u32 num_frames_;
};

}  // namespace vcop::mem
