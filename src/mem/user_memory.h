// Simulated user-space memory of the application process.
//
// In the paper, mapped objects (the A/B/C vectors, the ADPCM input
// stream, the IDEA plaintext/ciphertext) live in ordinary user-space
// SDRAM; the VIM copies pages between that memory and the dual-port RAM.
// UserMemory models the process's address space as allocatable regions
// in a flat 32-bit space, mirroring malloc'd buffers.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "mem/page.h"  // kUserPageShift / kUserPageBytes

namespace vcop::mem {

/// A user-space virtual address in the simulated process.
using UserAddr = u32;

class UserMemory {
 public:
  /// `capacity_bytes` bounds the total allocatable space (EPXA1 board:
  /// 64 MB SDRAM).
  explicit UserMemory(u32 capacity_bytes);
  ~UserMemory();
  UserMemory(const UserMemory&) = delete;
  UserMemory& operator=(const UserMemory&) = delete;

  /// Allocates `size` bytes (16-byte aligned), zero-initialised.
  /// Fails with RESOURCE_EXHAUSTED when the space is exhausted.
  Result<UserAddr> Allocate(u32 size);

  /// Whether [addr, addr+len) lies inside an allocated region.
  bool Contains(UserAddr addr, u32 len) const;

  /// Raw access used by the software baselines and the VIM's copies.
  /// The range must be allocated.
  std::span<u8> View(UserAddr addr, u32 len);
  std::span<const u8> View(UserAddr addr, u32 len) const;

  /// Convenience typed stores/loads (little-endian).
  void WriteBytes(UserAddr addr, std::span<const u8> data);
  void ReadBytes(UserAddr addr, std::span<u8> data) const;

  u32 capacity() const { return capacity_; }
  u32 allocated() const { return next_; }

  /// DMA page pinning. A DMA master holding a physical reference to a
  /// user page pins it; the OS must not reclaim (unmap) a pinned page —
  /// the device would scribble over whatever replaced it. Pins are
  /// per-4KB-page refcounts, so overlapping in-flight DMAs stack.
  void Pin(UserAddr addr, u32 len);
  void Unpin(UserAddr addr, u32 len);
  /// Refcount of the page containing `addr` (0 = unpinned).
  u32 PinCount(UserAddr addr) const;
  /// Whether any page of [addr, addr+len) is pinned.
  bool AnyPinned(UserAddr addr, u32 len) const;
  /// Total pages currently holding a nonzero pin count.
  usize pinned_pages() const { return pins_.size(); }

  /// Unmaps the region allocated at exactly `base`. Refuses with
  /// FAILED_PRECONDITION while any of its pages is pinned by a DMA —
  /// the reclaim-vs-pin contract tests/iommu_test.cpp exercises.
  Status Reclaim(UserAddr base);

 private:
  // mmap-backed so the OS hands out zero pages lazily: a fleet sweep
  // constructs thousands of systems, and eagerly memset-ing the full
  // SDRAM (16-64 MB) per construction would dominate short runs.
  u8* backing_ = nullptr;
  u32 capacity_ = 0;
  u32 next_ = 16;  // address 0 stays unmapped, as a null-pointer guard
  struct Region {
    UserAddr base;
    u32 size;
  };
  std::vector<Region> regions_;
  // page number -> pin refcount; entries erased at zero so
  // pinned_pages() is exact.
  std::unordered_map<u32, u32> pins_;
};

}  // namespace vcop::mem
