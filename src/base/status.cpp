#include "base/status.h"

#include <cstdio>
#include <cstdlib>

namespace vcop {

std::string_view ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

Status::Status(ErrorCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  VCOP_CHECK_MSG(code != ErrorCode::kOk,
                 "error Status must not carry ErrorCode::kOk");
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out{vcop::ToString(code_)};
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "VCOP_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace vcop
