// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every stochastic element of the system — random replacement policy,
// workload generators, property-test inputs — draws from an explicitly
// seeded Rng so that simulations and tests are bit-reproducible.
#pragma once

#include "base/status.h"
#include "base/types.h"

namespace vcop {

/// xoshiro256** by Blackman & Vigna: fast, high quality, and — unlike
/// std::mt19937 — guaranteed identical across standard libraries.
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via SplitMix64.
  explicit Rng(u64 seed);

  /// Next raw 64-bit value.
  u64 Next();

  /// Uniform in [0, bound); bound > 0. Uses rejection sampling, so the
  /// distribution is exactly uniform.
  u64 NextBelow(u64 bound);

  /// Uniform in [lo, hi] inclusive; lo <= hi.
  u64 NextInRange(u64 lo, u64 hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p in [0, 1].
  bool NextBool(double p = 0.5);

 private:
  u64 state_[4];
};

}  // namespace vcop
