// ASCII table builder used by the benchmark harnesses to print
// paper-style result tables (Figure 8 / Figure 9 rows, ablation sweeps).
#pragma once

#include <string>
#include <vector>

#include "base/types.h"

namespace vcop {

/// Accumulates rows of string cells and renders them with aligned
/// columns, a header rule, and an optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row. Rows shorter than the header are padded with "";
  /// longer rows extend the column count.
  void AddRow(std::vector<std::string> cells);

  /// Appends a cell-by-cell row built from heterogeneous values.
  /// (Callers format numbers themselves; the table only aligns.)
  usize num_rows() const { return rows_.size(); }

  void set_title(std::string title) { title_ = std::move(title); }

  /// Renders the table. Numeric-looking cells are right-aligned,
  /// everything else left-aligned.
  std::string ToString() const;

  /// Renders directly to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string, e.g. StrFormat("%.2f", x).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vcop
