// Deterministic fault-injection substrate.
//
// A FaultPlan is a seeded description of which hardware misbehaviours
// fire, and when. Hardware models hold an optional `FaultPlan*`; at
// every point where the real device could fail (an AHB transfer, an
// interrupt delivery, a TLB entry write, ...) they ask
// `plan->ShouldInject(site)`. Each call counts one *opportunity* for
// that site; the plan decides — from a fixed schedule ("the 3rd AHB
// transfer errors") or a seeded Bernoulli draw — whether the fault
// fires. With no plan installed (the default), every hook is a null
// pointer test and the simulation is bit-identical to the fault-free
// engine.
//
// Determinism: the plan owns its own Rng, and opportunities are counted
// in simulation order, which is itself deterministic. Running the same
// workload under the same plan therefore injects the exact same faults
// at the exact same points, making every torture-test failure
// replayable from its seed alone.
#pragma once

#include <array>

#include "base/rng.h"
#include "base/types.h"

namespace vcop {

/// Where a fault can be injected. One enumerator per distinct hardware
/// failure mode modelled; see DESIGN.md §9 for the taxonomy.
enum class FaultSite : u8 {
  kAhbError = 0,    // AHB transfer aborts with a bus error (no data moved)
  kAhbRetry,        // AHB slave issues RETRY; the beat is re-run (time only)
  kIrqDrop,         // an interrupt edge is lost before reaching the CPU
  kIrqDuplicate,    // an interrupt edge is seen twice by the CPU
  kTlbParity,       // a TLB entry write is corrupted (parity bit records it)
  kSpuriousFault,   // the IMU re-raises a page-fault IRQ it already raised
  kCpStall,         // the coprocessor port stalls for extra cycles
  kCpHang,          // the coprocessor wedges: no response ever arrives
  kConfigError,     // configuration-port programming fails
  kDoorbellLost,    // a tenant's doorbell write never reaches the service
  kDescriptorCorrupt,  // a submission-ring descriptor is damaged in
                       // shared memory between publish and drain
  kIommuTranslationFault,  // the IOMMU's page walk fails transiently for
                           // one DMA access (serviced via the VIM retry
                           // path like a bus error)
  kIotlbCorrupt,    // an IO-TLB entry is damaged at rest; detected at use
                    // (parity), dropped and re-walked transparently
  kNumSites,        // sentinel — keep last
};

constexpr usize kNumFaultSites = static_cast<usize>(FaultSite::kNumSites);

/// Returns a short stable name for a site ("ahb_error", "irq_drop", ...).
const char* FaultSiteName(FaultSite site);

/// Per-site bookkeeping, readable after a run for reporting.
struct FaultSiteStats {
  u64 opportunities = 0;  // times the hardware asked
  u64 injected = 0;       // times the plan said "fire"
};

class FaultPlan {
 public:
  /// The default plan never injects anything.
  FaultPlan() = default;

  /// A randomized plan for the torture harness: each site is armed with
  /// a probability scaled by `intensity` (1.0 = the default mix). The
  /// catastrophic sites (kCpHang, kConfigError) are schedule-driven and
  /// rare — armed on a small fraction of seeds, at a random nth
  /// opportunity — because a per-opportunity probability would wedge
  /// nearly every run.
  static FaultPlan Random(u64 seed, double intensity = 1.0);

  /// Arms a one-shot fault at the `nth` opportunity for `site`
  /// (1-based). Multiple calls accumulate (up to a small fixed number
  /// of slots per site).
  void At(FaultSite site, u64 nth);

  /// Arms a Bernoulli fault: every opportunity for `site` fires with
  /// probability `p`, drawn from the plan's seeded Rng.
  void WithProbability(FaultSite site, double p);

  /// True if no fault is armed anywhere — i.e. installing this plan is
  /// guaranteed to be behaviour- and timing-neutral.
  bool empty() const;

  /// Counts an opportunity for `site` and decides whether the fault
  /// fires there. Called by the hardware models only.
  bool ShouldInject(FaultSite site);

  const FaultSiteStats& stats(FaultSite site) const {
    return stats_[static_cast<usize>(site)];
  }
  u64 total_injected() const;
  u64 seed() const { return seed_; }

 private:
  struct SiteConfig {
    double probability = 0.0;
    // One-shot schedule slots (opportunity ordinals, 1-based; 0 = unused).
    std::array<u64, 4> schedule{};
    u32 scheduled = 0;
  };

  std::array<SiteConfig, kNumFaultSites> sites_{};
  std::array<FaultSiteStats, kNumFaultSites> stats_{};
  u64 seed_ = 0;
  bool any_armed_ = false;
  Rng rng_{0};
};

}  // namespace vcop
