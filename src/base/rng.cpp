#include "base/rng.h"

namespace vcop {
namespace {

u64 SplitMix64(u64& x) {
  x += 0x9E3779B97F4A7C15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 s = seed;
  for (u64& word : state_) word = SplitMix64(s);
}

u64 Rng::Next() {
  const u64 result = Rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

u64 Rng::NextBelow(u64 bound) {
  VCOP_CHECK_MSG(bound > 0, "NextBelow bound must be positive");
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const u64 limit = ~u64{0} - (~u64{0} % bound);
  u64 v;
  do {
    v = Next();
  } while (v >= limit);
  return v % bound;
}

u64 Rng::NextInRange(u64 lo, u64 hi) {
  VCOP_CHECK_MSG(lo <= hi, "NextInRange requires lo <= hi");
  const u64 span = hi - lo;
  if (span == ~u64{0}) return Next();
  return lo + NextBelow(span + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace vcop
