#include "base/table.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace vcop {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'x' && c != '%' &&
               c != 'e' && c != ' ') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  // Column widths over header + all rows.
  usize cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<usize> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (usize c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      const usize pad = width[c] - cell.size();
      const bool right = align_numeric && LooksNumeric(cell);
      if (c) out += "  ";
      if (right) out.append(pad, ' ');
      out += cell;
      if (!right) out.append(pad, ' ');
    }
    // Trim trailing spaces for tidy diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(header_, /*align_numeric=*/false);
  usize rule = 0;
  for (usize c = 0; c < cols; ++c) rule += width[c] + (c ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row, /*align_numeric=*/true);
  return out;
}

void Table::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<usize>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace vcop
