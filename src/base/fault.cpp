#include "base/fault.h"

namespace vcop {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAhbError: return "ahb_error";
    case FaultSite::kAhbRetry: return "ahb_retry";
    case FaultSite::kIrqDrop: return "irq_drop";
    case FaultSite::kIrqDuplicate: return "irq_duplicate";
    case FaultSite::kTlbParity: return "tlb_parity";
    case FaultSite::kSpuriousFault: return "spurious_fault";
    case FaultSite::kCpStall: return "cp_stall";
    case FaultSite::kCpHang: return "cp_hang";
    case FaultSite::kConfigError: return "config_error";
    case FaultSite::kDoorbellLost: return "doorbell_lost";
    case FaultSite::kDescriptorCorrupt: return "descriptor_corrupt";
    case FaultSite::kIommuTranslationFault: return "iommu_translation_fault";
    case FaultSite::kIotlbCorrupt: return "iotlb_corrupt";
    case FaultSite::kNumSites: break;
  }
  return "unknown";
}

FaultPlan FaultPlan::Random(u64 seed, double intensity) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.rng_ = Rng(seed);

  // Per-opportunity probabilities for the recoverable sites. The mix is
  // tuned so a typical plan injects a handful of faults per kernel run:
  // enough to exercise every recovery path across a few thousand seeds
  // without drowning every run in its fault budget.
  const struct {
    FaultSite site;
    double base;
  } kMix[] = {
      {FaultSite::kAhbError, 0.02},
      {FaultSite::kAhbRetry, 0.05},
      {FaultSite::kIrqDrop, 0.05},
      {FaultSite::kIrqDuplicate, 0.05},
      {FaultSite::kTlbParity, 0.03},
      {FaultSite::kSpuriousFault, 0.05},
      {FaultSite::kCpStall, 0.01},
  };
  // Deliberately absent from the mix: the ring-transport sites
  // (kDoorbellLost, kDescriptorCorrupt) and the IOMMU sites
  // (kIommuTranslationFault, kIotlbCorrupt). They only present
  // opportunities when the respective subsystem is attached/enabled,
  // which the randomized torture grid does not do — arming them here
  // would silently change plan shapes (every probability draw shifts
  // the Rng stream) without ever firing. Their deterministic coverage
  // lives in tests/torture_test.cpp and tests/iommu_test.cpp.
  for (const auto& m : kMix) {
    // Each site is only armed on a subset of seeds so plans differ in
    // *shape*, not just in where the coin flips land.
    if (plan.rng_.NextBool(0.5)) {
      double p = m.base * intensity;
      if (p > 1.0) p = 1.0;
      plan.WithProbability(m.site, p);
    }
  }

  // Catastrophic faults are schedule-driven and rare: ~1 in 16 plans
  // wedges the coprocessor once, ~1 in 16 fails a configuration.
  if (plan.rng_.NextBool(1.0 / 16.0)) {
    plan.At(FaultSite::kCpHang, plan.rng_.NextInRange(1, 64));
  }
  if (plan.rng_.NextBool(1.0 / 16.0)) {
    plan.At(FaultSite::kConfigError, plan.rng_.NextInRange(1, 4));
  }
  return plan;
}

void FaultPlan::At(FaultSite site, u64 nth) {
  VCOP_CHECK_MSG(nth > 0, "fault schedule ordinals are 1-based");
  SiteConfig& cfg = sites_[static_cast<usize>(site)];
  if (cfg.scheduled < cfg.schedule.size()) {
    cfg.schedule[cfg.scheduled++] = nth;
    any_armed_ = true;
  }
}

void FaultPlan::WithProbability(FaultSite site, double p) {
  sites_[static_cast<usize>(site)].probability = p;
  if (p > 0.0) any_armed_ = true;
}

bool FaultPlan::empty() const { return !any_armed_; }

bool FaultPlan::ShouldInject(FaultSite site) {
  SiteConfig& cfg = sites_[static_cast<usize>(site)];
  FaultSiteStats& st = stats_[static_cast<usize>(site)];
  const u64 ordinal = ++st.opportunities;

  bool fire = false;
  for (u32 i = 0; i < cfg.scheduled; ++i) {
    if (cfg.schedule[i] == ordinal) {
      fire = true;
      break;
    }
  }
  // The Bernoulli draw is made even when a scheduled fault already
  // fired, so arming extra schedule slots does not shift the random
  // stream of later opportunities.
  if (cfg.probability > 0.0 && rng_.NextBool(cfg.probability)) fire = true;

  if (fire) ++st.injected;
  return fire;
}

u64 FaultPlan::total_injected() const {
  u64 total = 0;
  for (const auto& st : stats_) total += st.injected;
  return total;
}

}  // namespace vcop
