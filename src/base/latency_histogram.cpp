#include "base/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace vcop {

Picoseconds PercentileNearestRank(std::vector<Picoseconds> samples,
                                  double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const usize index = static_cast<usize>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(samples.size() - 1)));
  return samples[index];
}

u32 LatencyHistogram::BucketIndex(Picoseconds sample) {
  // Values below one full sub-bucket resolution land in the first
  // octave, indexed linearly.
  if (sample < kSubBuckets) return static_cast<u32>(sample);
  const u32 octave = 63 - static_cast<u32>(std::countl_zero(sample));
  // Top 3 bits below the leading one select the linear sub-bucket.
  const u32 sub = static_cast<u32>(sample >> (octave - 3)) & (kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

Picoseconds LatencyHistogram::BucketUpperBound(u32 bucket) {
  if (bucket < kSubBuckets) return bucket;
  const u32 octave = bucket / kSubBuckets;
  const u32 sub = bucket % kSubBuckets;
  // The bucket covers [2^octave + sub*w, 2^octave + (sub+1)*w) with
  // sub-bucket width w = 2^(octave-3); report the last value inside.
  const Picoseconds base = Picoseconds{1} << octave;
  const Picoseconds width = Picoseconds{1} << (octave - 3);
  return base + (sub + 1) * width - 1;
}

void LatencyHistogram::Add(Picoseconds sample) {
  ++buckets_[BucketIndex(sample)];
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (u32 i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

Picoseconds LatencyHistogram::mean() const {
  return count_ == 0 ? 0 : static_cast<Picoseconds>(sum_ / count_);
}

Picoseconds LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  const double rank_d =
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(count_));
  const u64 rank = std::max<u64>(1, static_cast<u64>(rank_d));
  u64 seen = 0;
  for (u32 i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

}  // namespace vcop
