// Physical units for the simulation: picosecond timestamps and clock
// frequencies, plus drift-free cycle<->time conversion.
//
// The modelled SoC mixes four clock domains (ARM 133 MHz, ADPCM core
// 40 MHz, IDEA memory subsystem 24 MHz, IDEA core 6 MHz). None of their
// periods is an integer number of picoseconds, so the conversion from a
// cycle *count* to a timestamp is done as one 128-bit multiply-divide per
// query — edge k of an f-Hz clock is at floor(k * 1e12 / f) ps — rather
// than by accumulating a rounded period, which would drift.
#pragma once

#include <compare>
#include <string>

#include "base/status.h"
#include "base/types.h"

namespace vcop {

/// A simulation timestamp in integer picoseconds since t=0.
/// 2^63 ps ≈ 106 days of simulated time — far beyond any experiment here.
using Picoseconds = u64;

constexpr Picoseconds kPicosecondsPerSecond = 1'000'000'000'000ULL;

/// A clock frequency in hertz. Strongly typed so a raw cycle count can
/// never be mistaken for a frequency in an interface.
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(u64 hertz) : hertz_(hertz) {}

  static constexpr Frequency MHz(u64 mhz) { return Frequency(mhz * 1'000'000); }
  static constexpr Frequency KHz(u64 khz) { return Frequency(khz * 1'000); }

  constexpr u64 hertz() const { return hertz_; }
  constexpr bool valid() const { return hertz_ > 0; }

  /// Timestamp of rising edge `cycle` (edge 0 at t=0). Drift-free:
  /// computed as floor(cycle * 1e12 / hertz) with 128-bit intermediate.
  Picoseconds EdgeTime(u64 cycle) const;

  /// Number of complete cycles of this clock elapsed at time `t`,
  /// i.e. the largest k with EdgeTime(k) <= t.
  u64 CyclesAt(Picoseconds t) const;

  /// Duration of `cycles` cycles, rounded down to integer picoseconds.
  Picoseconds Duration(u64 cycles) const { return EdgeTime(cycles); }

  /// e.g. "133 MHz", "24 MHz", "1.5 MHz" (two decimals max).
  std::string ToString() const;

  friend constexpr auto operator<=>(Frequency, Frequency) = default;

 private:
  u64 hertz_ = 0;
};

/// Converts a picosecond duration to fractional milliseconds
/// (for report tables matching the paper's ms axes).
double ToMilliseconds(Picoseconds t);

/// Converts a picosecond duration to fractional microseconds.
double ToMicroseconds(Picoseconds t);

/// Formats a duration with an auto-selected unit, e.g. "3.42 ms".
std::string FormatDuration(Picoseconds t);

}  // namespace vcop
