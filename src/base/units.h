// Physical units for the simulation: picosecond timestamps and clock
// frequencies, plus drift-free cycle<->time conversion.
//
// The modelled SoC mixes four clock domains (ARM 133 MHz, ADPCM core
// 40 MHz, IDEA memory subsystem 24 MHz, IDEA core 6 MHz). None of their
// periods is an integer number of picoseconds, so the conversion from a
// cycle *count* to a timestamp is done as one 128-bit multiply-divide per
// query — edge k of an f-Hz clock is at floor(k * 1e12 / f) ps — rather
// than by accumulating a rounded period, which would drift.
#pragma once

#include <bit>
#include <compare>
#include <limits>
#include <numeric>
#include <string>

#include "base/status.h"
#include "base/types.h"

namespace vcop {

/// A simulation timestamp in integer picoseconds since t=0.
/// 2^63 ps ≈ 106 days of simulated time — far beyond any experiment here.
using Picoseconds = u64;

constexpr Picoseconds kPicosecondsPerSecond = 1'000'000'000'000ULL;

/// A clock frequency in hertz. Strongly typed so a raw cycle count can
/// never be mistaken for a frequency in an interface.
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(u64 hertz) : hertz_(hertz) {
    if (hertz > 0) {
      const u64 g = std::gcd(kPicosecondsPerSecond, hertz);
      ps_num_ = kPicosecondsPerSecond / g;
      ps_den_ = hertz / g;
      edge_fast_max_ = std::numeric_limits<u64>::max() / ps_num_;
      cycles_fast_max_ = std::numeric_limits<u64>::max() / ps_den_;
      div_num_ = U64Div(ps_num_);
      div_den_ = U64Div(ps_den_);
    }
  }

  static constexpr Frequency MHz(u64 mhz) { return Frequency(mhz * 1'000'000); }
  static constexpr Frequency KHz(u64 khz) { return Frequency(khz * 1'000); }

  constexpr u64 hertz() const { return hertz_; }
  constexpr bool valid() const { return hertz_ > 0; }

  /// Timestamp of rising edge `cycle` (edge 0 at t=0). Drift-free:
  /// floor(cycle * 1e12 / hertz), computed with the reduced fraction
  /// 1e12/hertz = ps_num_/ps_den_ so the modelled MHz-scale clocks
  /// (whose ps_den_ fits in a few bits) stay in 64-bit arithmetic; odd
  /// frequencies or huge cycle counts fall back to a 128-bit divide.
  Picoseconds EdgeTime(u64 cycle) const {
    VCOP_CHECK_MSG(valid(), "EdgeTime on a zero frequency");
    if (cycle <= edge_fast_max_) return div_den_.Divide(cycle * ps_num_);
    return EdgeTimeWide(cycle);
  }

  /// Number of complete cycles of this clock elapsed at time `t`,
  /// i.e. the largest k with EdgeTime(k) <= t.
  u64 CyclesAt(Picoseconds t) const {
    VCOP_CHECK_MSG(valid(), "CyclesAt on a zero frequency");
    u64 k = t <= cycles_fast_max_ ? div_num_.Divide(t * ps_den_)
                                  : CyclesAtWide(t);
    // floor(t*den/num) can be off by one from the true inverse because
    // EdgeTime itself floors; nudge onto the defining inequality.
    while (EdgeTime(k) > t) --k;
    while (EdgeTime(k + 1) <= t) ++k;
    return k;
  }

  /// Duration of `cycles` cycles, rounded down to integer picoseconds.
  Picoseconds Duration(u64 cycles) const { return EdgeTime(cycles); }

  /// e.g. "133 MHz", "24 MHz", "1.5 MHz" (two decimals max).
  std::string ToString() const;

  friend constexpr bool operator==(Frequency a, Frequency b) {
    return a.hertz_ == b.hertz_;
  }
  friend constexpr auto operator<=>(Frequency a, Frequency b) {
    return a.hertz_ <=> b.hertz_;
  }

 private:
  /// Division by a fixed u64 divisor as one multiply-high: the classic
  /// ceil(2^p / d) reciprocal. With p = 63 + floor(log2 d) the
  /// multiplier fits 64 bits and floor(n/d) == (n * mul) >> p exactly
  /// for every n < 2^p / d — proved by frac(n/d) + n*(mul*d - 2^p) /
  /// (d * 2^p) < 1 under that bound. Callers guard with exact_below and
  /// fall back to a hardware divide; divides dominate the simulation
  /// kernel's edge<->time conversions, so this is worth the ceremony.
  struct U64Div {
    u64 d = 1;
    u64 mul = 0;
    u32 shift = 0;
    u64 exact_below = 0;  // multiply path exact for dividends < this

    constexpr U64Div() = default;
    constexpr explicit U64Div(u64 divisor) : d(divisor) {
      shift = 63 + (std::bit_width(d) - 1);
      const unsigned __int128 p = static_cast<unsigned __int128>(1) << shift;
      mul = static_cast<u64>((p + d - 1) / d);
      const unsigned __int128 limit = p / d;
      exact_below = limit > std::numeric_limits<u64>::max()
                        ? std::numeric_limits<u64>::max()
                        : static_cast<u64>(limit);
    }

    u64 Divide(u64 n) const {
      if (n < exact_below) {
        return static_cast<u64>(
            (static_cast<unsigned __int128>(n) * mul) >> shift);
      }
      return n / d;
    }
  };

  Picoseconds EdgeTimeWide(u64 cycle) const;
  u64 CyclesAtWide(Picoseconds t) const;

  u64 hertz_ = 0;
  // Reduced fraction: 1e12 / hertz_ == ps_num_ / ps_den_ exactly.
  u64 ps_num_ = 0;
  u64 ps_den_ = 1;
  u64 edge_fast_max_ = 0;    // largest cycle with cycle*ps_num_ in 64 bits
  u64 cycles_fast_max_ = 0;  // largest t with t*ps_den_ in 64 bits
  U64Div div_num_;           // divide-by-ps_num_ reciprocal
  U64Div div_den_;           // divide-by-ps_den_ reciprocal
};

/// Converts a picosecond duration to fractional milliseconds
/// (for report tables matching the paper's ms axes).
double ToMilliseconds(Picoseconds t);

/// Converts a picosecond duration to fractional microseconds.
double ToMicroseconds(Picoseconds t);

/// Formats a duration with an auto-selected unit, e.g. "3.42 ms".
std::string FormatDuration(Picoseconds t);

}  // namespace vcop
