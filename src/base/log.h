// Minimal leveled logger.
//
// The simulator is quiet by default (benchmarks print their own tables);
// VIM fault traces and IMU state transitions become visible at kDebug,
// which the tests use to assert on behaviour narratives.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace vcop {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns "DEBUG", "INFO", "WARN" or "ERROR".
std::string_view ToString(LogLevel level);

/// Process-wide logging configuration. Each simulator is
/// single-threaded (one event loop), but fleet runs (sim/fleet.h) emit
/// from several simulators at once, so the contract is: configure
/// (set_sink / set_min_level) only while no fleet is running; emitting
/// is concurrency-safe as long as the sink is — the default sink is a
/// single fprintf per message, which stdio serialises.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// The process-wide instance.
  static Logger& Get();

  /// Messages below `level` are dropped. Default: kWarning.
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Replaces the output sink (default writes to stderr). Tests install
  /// a capturing sink; pass nullptr to restore the default.
  void set_sink(Sink sink);

  /// Emits `message` at `level` if enabled.
  void Log(LogLevel level, std::string_view message);

 private:
  Logger();
  LogLevel min_level_ = LogLevel::kWarning;
  Sink sink_;
};

/// Convenience wrappers: VCOP_LOG(kDebug, "message " + detail);
#define VCOP_LOG(level, msg) \
  ::vcop::Logger::Get().Log(::vcop::LogLevel::level, (msg))

}  // namespace vcop
