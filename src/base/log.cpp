#include "base/log.h"

#include <cstdio>

namespace vcop {

std::string_view ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

namespace {
void DefaultSink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[vcop %.*s] %.*s\n",
               static_cast<int>(ToString(level).size()), ToString(level).data(),
               static_cast<int>(message.size()), message.data());
}
}  // namespace

Logger::Logger() : sink_(DefaultSink) {}

Logger& Logger::Get() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) {
  sink_ = sink ? std::move(sink) : Sink(DefaultSink);
}

void Logger::Log(LogLevel level, std::string_view message) {
  if (level < min_level_) return;
  sink_(level, message);
}

}  // namespace vcop
