// Error handling primitives: `Status`, `Result<T>` and the VCOP_CHECK macros.
//
// The simulator is a library first: fatal conditions in *user input*
// (bad configuration, out-of-range mapping, dataset too large) are reported
// as `Status`/`Result` values the caller can inspect, while violations of
// internal invariants abort via VCOP_CHECK — they indicate a bug in vcop
// itself, never in the client.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace vcop {

/// Machine-readable error categories. Kept deliberately small; the
/// human-readable message carries the detail.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kOutOfRange,        // address/index beyond a modelled resource
  kResourceExhausted, // no free page / FPGA already loaded / table full
  kFailedPrecondition,// call sequence violated (e.g. EXECUTE before LOAD)
  kNotFound,          // unknown object id / bitstream / register
  kUnavailable,       // resource exists but cannot be used right now
  kInternal,          // invariant violation surfaced as a value (rare)
};

/// Returns the canonical spelling of an error code, e.g. "OUT_OF_RANGE".
std::string_view ToString(ErrorCode code);

/// A success-or-error value. Cheap to copy on the success path
/// (no allocation when ok).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status; `code` must not be kOk.
  Status(ErrorCode code, std::string message);

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>" — for logs and test failures.
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Convenience factories mirroring the ErrorCode enumerators.
Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

/// Aborts with a diagnostic when `expr` is false. Used only for *internal*
/// invariants — never for validating client input.
#define VCOP_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::vcop::internal::CheckFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                     \
  } while (false)

/// VCOP_CHECK with an explanatory message.
#define VCOP_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::vcop::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                     \
  } while (false)

/// Propagates an error Status from an expression yielding Status.
#define VCOP_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::vcop::Status vcop_status_ = (expr);           \
    if (!vcop_status_.ok()) return vcop_status_;    \
  } while (false)

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr / std::expected (which libstdc++ 12 does not ship).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status: `return InvalidArgumentError(...)`.
  /// Precondition: `status` is not OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }

  /// The error (OK when a value is present).
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts with the carried error otherwise —
  /// never silently returns garbage.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  /// value() or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    VCOP_CHECK_MSG(value_.has_value(),
                   "Result::value() on error: " + status_.ToString());
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace vcop
