// Latency statistics shared by the scheduler's fairness digests and the
// bench reporting.
//
// Two tools, for two sample-count regimes:
//
//   * PercentileNearestRank — the exact nearest-rank percentile over a
//     materialised sample vector. Right for per-tenant digests of tens
//     to thousands of samples (ScheduleReport::TenantFairness, the
//     bench_vcopd tables), where exactness matters because the values
//     are gated byte-for-byte.
//   * LatencyHistogram — a log-bucketed histogram for service-scale
//     runs (bench_service: hundreds of tenants, tens of thousands of
//     jobs), where storing every sample per tenant is wasteful and a
//     bounded relative error is fine. Buckets are log2 octaves split
//     into 8 linear sub-buckets, so any reported quantile is within
//     ~+13% of the true value; min and max are tracked exactly.
//
// Both are deterministic: identical sample streams produce identical
// digests, so JSON artifacts built from them are byte-stable.
#pragma once

#include <array>
#include <vector>

#include "base/types.h"
#include "base/units.h"

namespace vcop {

/// Exact nearest-rank percentile of a sample set (q in [0, 1]);
/// 0 when empty. Sorts a copy — pass by value and move when possible.
Picoseconds PercentileNearestRank(std::vector<Picoseconds> samples,
                                  double q);

/// Fixed-footprint log-bucketed histogram of latency samples.
class LatencyHistogram {
 public:
  /// 8 linear sub-buckets per power-of-two octave, 64 octaves: covers
  /// the whole Picoseconds range in 512 counters.
  static constexpr u32 kSubBuckets = 8;
  static constexpr u32 kBuckets = 64 * kSubBuckets;

  void Add(Picoseconds sample);
  void Merge(const LatencyHistogram& other);

  u64 count() const { return count_; }
  Picoseconds min() const { return count_ == 0 ? 0 : min_; }
  Picoseconds max() const { return max_; }
  Picoseconds mean() const;

  /// Quantile estimate (q in [0, 1]): the upper bound of the bucket
  /// holding the nearest-rank sample, clamped to the exact max. Within
  /// one sub-bucket width (~13%) of the true value by construction.
  Picoseconds Percentile(double q) const;

  Picoseconds p50() const { return Percentile(0.50); }
  Picoseconds p99() const { return Percentile(0.99); }
  Picoseconds p999() const { return Percentile(0.999); }

 private:
  static u32 BucketIndex(Picoseconds sample);
  /// Inclusive upper bound of the value range mapping to `bucket`.
  static Picoseconds BucketUpperBound(u32 bucket);

  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  unsigned __int128 sum_ = 0;
  Picoseconds min_ = 0;
  Picoseconds max_ = 0;
};

}  // namespace vcop
