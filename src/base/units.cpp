#include "base/units.h"

#include <cstdio>

namespace vcop {

Picoseconds Frequency::EdgeTimeWide(u64 cycle) const {
  const unsigned __int128 num =
      static_cast<unsigned __int128>(cycle) * ps_num_;
  return static_cast<Picoseconds>(num / ps_den_);
}

u64 Frequency::CyclesAtWide(Picoseconds t) const {
  // First estimate of floor(t * f / 1e12); the caller nudges it onto the
  // defining inequality EdgeTime(k) <= t < EdgeTime(k+1).
  const unsigned __int128 num = static_cast<unsigned __int128>(t) * ps_den_;
  return static_cast<u64>(num / ps_num_);
}

std::string Frequency::ToString() const {
  char buf[32];
  if (hertz_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llu MHz",
                  static_cast<unsigned long long>(hertz_ / 1'000'000));
  } else if (hertz_ >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2f MHz", hertz_ / 1e6);
  } else if (hertz_ % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llu kHz",
                  static_cast<unsigned long long>(hertz_ / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%llu Hz",
                  static_cast<unsigned long long>(hertz_));
  }
  return buf;
}

double ToMilliseconds(Picoseconds t) { return static_cast<double>(t) / 1e9; }

double ToMicroseconds(Picoseconds t) { return static_cast<double>(t) / 1e6; }

std::string FormatDuration(Picoseconds t) {
  char buf[32];
  if (t >= 1'000'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ToMilliseconds(t));
  } else if (t >= 1'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f us", ToMicroseconds(t));
  } else if (t >= 1'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f ns", static_cast<double>(t) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ps",
                  static_cast<unsigned long long>(t));
  }
  return buf;
}

}  // namespace vcop
