#include "base/units.h"

#include <cstdio>

namespace vcop {

Picoseconds Frequency::EdgeTime(u64 cycle) const {
  VCOP_CHECK_MSG(valid(), "EdgeTime on a zero frequency");
  const unsigned __int128 num =
      static_cast<unsigned __int128>(cycle) * kPicosecondsPerSecond;
  return static_cast<Picoseconds>(num / hertz_);
}

u64 Frequency::CyclesAt(Picoseconds t) const {
  VCOP_CHECK_MSG(valid(), "CyclesAt on a zero frequency");
  // k <= t * f / 1e12 < k+1, so floor(t*f/1e12) is the answer unless
  // EdgeTime rounding makes edge k land exactly on t; floor handles that
  // too because EdgeTime(k) <= exact k-th edge time.
  const unsigned __int128 num = static_cast<unsigned __int128>(t) * hertz_;
  u64 k = static_cast<u64>(num / kPicosecondsPerSecond);
  // Guard against off-by-one from EdgeTime's floor: move k up/down until
  // EdgeTime(k) <= t < EdgeTime(k+1).
  while (EdgeTime(k) > t) --k;
  while (EdgeTime(k + 1) <= t) ++k;
  return k;
}

std::string Frequency::ToString() const {
  char buf[32];
  if (hertz_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llu MHz",
                  static_cast<unsigned long long>(hertz_ / 1'000'000));
  } else if (hertz_ >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2f MHz", hertz_ / 1e6);
  } else if (hertz_ % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llu kHz",
                  static_cast<unsigned long long>(hertz_ / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%llu Hz",
                  static_cast<unsigned long long>(hertz_));
  }
  return buf;
}

double ToMilliseconds(Picoseconds t) { return static_cast<double>(t) / 1e9; }

double ToMicroseconds(Picoseconds t) { return static_cast<double>(t) / 1e6; }

std::string FormatDuration(Picoseconds t) {
  char buf[32];
  if (t >= 1'000'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ToMilliseconds(t));
  } else if (t >= 1'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f us", ToMicroseconds(t));
  } else if (t >= 1'000ULL) {
    std::snprintf(buf, sizeof buf, "%.2f ns", static_cast<double>(t) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ps",
                  static_cast<unsigned long long>(t));
  }
  return buf;
}

}  // namespace vcop
