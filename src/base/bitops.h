// Bit-manipulation helpers shared by the hardware models.
//
// The IMU splits coprocessor addresses into page-number / page-offset
// fields, the TLB matches tag bits, and registers pack multiple fields —
// these helpers keep that arithmetic explicit and tested in one place.
#pragma once

#include <bit>

#include "base/status.h"
#include "base/types.h"

namespace vcop {

/// True iff `v` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two. Precondition: IsPowerOfTwo(v).
constexpr u32 Log2(u64 v) {
  return static_cast<u32>(std::bit_width(v) - 1);
}

/// A mask with the low `n` bits set; n in [0, 64].
constexpr u64 LowMask(u32 n) {
  return n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
}

/// Extracts bits [lo, lo+width) of `v` (width >= 1, lo+width <= 64).
constexpr u64 ExtractBits(u64 v, u32 lo, u32 width) {
  return (v >> lo) & LowMask(width);
}

/// Returns `v` with bits [lo, lo+width) replaced by the low `width`
/// bits of `field`.
constexpr u64 DepositBits(u64 v, u32 lo, u32 width, u64 field) {
  const u64 mask = LowMask(width) << lo;
  return (v & ~mask) | ((field << lo) & mask);
}

/// Rounds `v` up to the next multiple of power-of-two `align`.
constexpr u64 AlignUp(u64 v, u64 align) {
  return (v + align - 1) & ~(align - 1);
}

/// Rounds `v` down to a multiple of power-of-two `align`.
constexpr u64 AlignDown(u64 v, u64 align) { return v & ~(align - 1); }

/// Ceiling division for unsigned operands; b > 0.
constexpr u64 DivCeil(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace vcop
