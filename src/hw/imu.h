// The Interface Management Unit — the paper's central hardware piece.
//
// The IMU sits between a *portable* coprocessor (which addresses data as
// (object id, element index) pairs) and the *platform-specific* dual-port
// RAM. Per access it:
//   1. registers the request launched on the CP_* lines,
//   2. translates (object, index) through its CAM TLB over several
//      cycles — "four cycles are needed from the moment when the
//      coprocessor generates an access to the moment when the data is
//      read or written" (§4, Figure 7),
//   3. on a hit: performs the dual-port RAM access and asserts CP_TLBHIT,
//   4. on a miss: latches the access into AR, sets SR.fault, stalls the
//      coprocessor and raises an interrupt for the OS (§3.2/§3.3).
//
// A pipelined translation mode models the paper's announced follow-up
// ("a pipelined implementation of the IMU which is expected to mask
// almost completely the translation overhead", §4.1).
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "base/fault.h"
#include "base/status.h"
#include "base/types.h"
#include "hw/cp_port.h"
#include "hw/imu_regs.h"
#include "hw/interrupt.h"
#include "hw/tlb.h"
#include "mem/dp_ram.h"
#include "mem/page.h"
#include "sim/clock.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace vcop::hw {

struct ImuConfig {
  /// Data is valid on this rising edge, counting the issue edge as the
  /// first (Figure 7: 4). Must be >= 2.
  u32 access_latency_cycles = 4;
  /// Pipelined translation: lookup completes combinationally and a new
  /// access can be accepted every cycle.
  bool pipelined = false;
  /// Number of TLB entries (EPXA1 system: 8, one per DP-RAM page).
  u32 tlb_entries = 8;
  /// Extension beyond the paper's IMU: per-object *limit registers*
  /// (segment-style bounds). A coprocessor access at or beyond an
  /// object's element count faults with SR.limit set even when it would
  /// land inside a mapped page — which the paper's design (and a plain
  /// MMU) cannot catch. Costs one comparator per access in hardware.
  bool bounds_check = false;
  /// Extension: a single-entry posted-write buffer. Writes are
  /// acknowledged to the coprocessor on its next edge while the
  /// translation retires in the background; the core only stalls if it
  /// issues another access before the buffer drains. Cuts the write
  /// cost from access_latency_cycles to 2 core cycles when the IMU
  /// shares the core clock.
  bool posted_writes = false;
  /// Host-side optimisation (no simulated-hardware meaning): remember
  /// the last successful translation and skip the CAM scan while the
  /// TLB generation, object and page all still match. Statistics and
  /// timing are bit-identical either way.
  bool translation_cache = true;
  /// Two-level mode: treat the shared TLB passed at construction as a
  /// backing L2 behind a private L1 micro-TLB of `tlb_entries` entries,
  /// instead of using it directly as the (only) CAM. Requires a shared
  /// TLB. Off by default — single-level behaviour is bit-identical to
  /// the seed.
  bool shared_tlb_is_l2 = false;
  /// Extra IMU cycles charged when a translation is served by an L2
  /// fill rather than an L1 hit (the micro-TLB refill handshake).
  u32 l2_hit_penalty_cycles = 2;
};

struct ImuStats {
  u64 accesses = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 faults = 0;
  /// Simulated time the coprocessor spent stalled on faults, i.e. from
  /// interrupt raise to OS resolution. This is OS service time as seen
  /// from the hardware side.
  Picoseconds fault_stall_time = 0;
  /// Sum over completed accesses of (data-valid time − issue time):
  /// raw interface latency including translation.
  Picoseconds access_latency_time = 0;
};

class Imu final : public sim::ClockedModule, public CoprocessorPort {
 public:
  /// The IMU is wired to its platform at construction: page geometry of
  /// the interface memory, the dual-port RAM itself, and the interrupt
  /// line to the processor. When `shared_tlb` is non-null the IMU uses
  /// it instead of owning a private TLB — this models partial
  /// reconfiguration under vcopd, where successive per-job IMU
  /// instances front the same physical CAM so ASID-tagged entries
  /// survive tenant switches. The shared TLB must outlive the IMU.
  Imu(const ImuConfig& config, mem::PageGeometry geometry,
      mem::DualPortRam& dp_ram, InterruptLine& irq, sim::Simulator& sim,
      Tlb* shared_tlb = nullptr);

  /// Clock wiring: `own` is the IMU/memory-subsystem clock; `cp` is the
  /// coprocessor's clock domain (kicked when a response becomes ready).
  /// Must be called before the coprocessor starts.
  void BindClocks(sim::ClockDomain& own, sim::ClockDomain& cp);

  // ----- OS-side interface (used by the VIM through the kernel) -----

  /// Programs the object descriptor table: elements of `object` are
  /// `width` bytes (1, 2 or 4). Virtual byte offset = index * width.
  void SetObjectWidth(ObjectId object, u32 width);

  /// Programs the object's limit register (element count). Only
  /// consulted when ImuConfig::bounds_check is enabled; 0 = no limit.
  void SetObjectLimit(ObjectId object, u32 elem_count);

  /// True when the pending fault is a limit violation (extension).
  bool limit_fault() const { return (sr_ & kSrLimitFault) != 0; }

  /// Direct access to the TLB (the OS installs/invalidates entries
  /// during fault handling, like an MMU with a software-managed TLB).
  /// In two-level mode this is the L1 micro-TLB; the backing L2 is
  /// reached through xlat().l2().
  Tlb& tlb() { return *tlb_; }
  const Tlb& tlb() const { return *tlb_; }

  /// The translation front-end (L1 + optional L2). Single-level IMUs
  /// get a pass-through hierarchy whose lookups delegate 1:1 to tlb().
  TlbHierarchy& xlat() { return xlat_; }
  const TlbHierarchy& xlat() const { return xlat_; }

  /// Programs object `object`'s page size in bytes (a power of two, at
  /// least the platform frame granule; superpages span several
  /// contiguous frames). 0 restores the platform default. Affects how
  /// the IMU splits a byte offset into (vpage, page offset).
  void SetObjectPageBytes(ObjectId object, u32 bytes);

  /// Programs the address-space tag this IMU presents on every TLB
  /// access. Clears the host-side translation cache (cached indices
  /// were found under the old tag). Default 0 = kernel space.
  void SetAsid(Asid asid) {
    asid_ = asid;
    for (TcEntry& tc : tc_) tc.valid = false;
  }
  Asid asid() const { return asid_; }

  u32 ReadRegister(ImuRegister reg) const;

  /// CP_START: begins a coprocessor run. Resets per-run state.
  void AssertStart();

  /// Acknowledges the end-of-operation interrupt (clears SR.end).
  void AckEnd();

  /// Emergency stop used by the OS when a run must be aborted (e.g. the
  /// coprocessor faulted on an object the application never mapped):
  /// drops any in-flight access and returns the IMU to idle.
  void HardStop();

  /// Resolves a pending fault after the OS has (re)mapped the page:
  /// clears SR.fault and lets the translation restart (§3.3 "the OS
  /// allows the IMU to restart the translation and lets the coprocessor
  /// exit from the stalled state").
  void ResolveFault();

  /// Callback invoked (zero simulated cost) when the coprocessor
  /// releases the parameter page, so the OS page manager can reuse the
  /// frame. Installed by the VIM.
  void set_param_release_hook(std::function<void()> hook) {
    param_release_hook_ = std::move(hook);
  }

  /// Observation probe fired once per accepted access with the page it
  /// touches — the page reference string. The stream depends only on
  /// the coprocessor program, never on paging decisions, which is what
  /// makes the two-pass Belady oracle (os/oracle.h) sound. No simulated
  /// cost; nullptr disables.
  void set_page_ref_probe(
      std::function<void(ObjectId, mem::VirtPage)> probe) {
    page_ref_probe_ = std::move(probe);
  }

  /// Optional waveform tracing of the CP_* signals (Figure 7).
  /// Pass nullptr to disable.
  void AttachTracer(sim::Tracer* tracer);

  const ImuStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ImuStats{}; }
  const mem::PageGeometry& geometry() const { return geometry_; }
  bool fault_pending() const { return (sr_ & kSrFaultPending) != 0; }
  bool busy() const { return (sr_ & kSrBusy) != 0; }
  /// True when a kCpHang fault wedged the datapath: no response will
  /// ever arrive and only HardStop (the VIM's watchdog abort) recovers.
  bool hung() const { return state_ == State::kHung; }

  /// Installs (or clears) the fault plan consulted at the coprocessor
  /// port (kCpStall, kCpHang, kSpuriousFault). Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// OS-side veto over the fast-forward tier: when installed, an access
  /// is only resolved analytically while the gate returns true. The VIM
  /// uses it to decline fast-forwarding while background activity of
  /// its own (overlapped prefetch in flight, a fault service being
  /// costed) could touch translations. nullptr = no veto.
  void set_fastforward_gate(std::function<bool()> gate) {
    ff_gate_ = std::move(gate);
  }

  // ----- CoprocessorPort (coprocessor-side interface) -----
  bool CanIssue() const override;
  void Issue(const CpAccess& access) override;
  bool ResponseReady() const override;
  u32 ConsumeResponse() override;
  bool BackToBack() const override { return config_.pipelined; }
  void ReleaseParamPage() override;
  void SignalFinish() override;

  // ----- sim::ClockedModule -----
  void OnRisingEdge() override;
  bool active() const override;
  /// While translating, the IMU only needs the edge on which the
  /// translation completes; the observation-counting edges in between
  /// are batched and credited through OnEdgesSkipped.
  u64 NextInterestingEdge(Picoseconds next_edge_time) const override;
  void OnEdgesSkipped(u64 count, Picoseconds first_edge_time) override;

 private:
  enum class State {
    kIdle,          // no outstanding access
    kTranslating,   // counting translation cycles
    kFaultStalled,  // TLB missed; waiting for the OS
    kResponding,    // translated; data valid at ready_at_
    kHung,          // fault injection wedged the datapath for good
  };

  /// Performs the TLB lookup and, on a hit, the DP-RAM access;
  /// otherwise raises the fault. Runs "at the end of" translation —
  /// `when` is the translation-complete timestamp, which is the current
  /// simulation time on the cycle-stepped path and a future edge
  /// computed from the clock grid on the fast-forward path.
  void TranslateAt(Picoseconds when);
  void Translate() { TranslateAt(sim_.now()); }

  /// Fast-forward tier: when this access is provably a fault-free TLB
  /// hit and nothing can interleave before it completes, run the
  /// translation analytically at issue time (with the timestamps the
  /// cycle-stepped engine would produce) and never wake the IMU clock.
  /// Returns false — leaving all state untouched — at any uncertain
  /// edge: TLB miss, armed CP-port fault site, posted write, attached
  /// tracer, OS veto, or a pending event before the completion time.
  bool TryFastForward();

  /// First IMU-grid edge strictly after the current simulation time.
  Picoseconds NextOwnEdgeTime() const;

  /// First IMU-grid edge strictly after `t` (grid math only; no domain
  /// state consulted — usable for future timestamps).
  Picoseconds OwnEdgeStrictlyAfter(Picoseconds t) const;

  u32 ObservationsNeeded() const {
    return config_.pipelined ? 0 : config_.access_latency_cycles - 2;
  }

  void TraceSignals();

  ImuConfig config_;
  mem::PageGeometry geometry_;
  mem::DualPortRam& dp_ram_;
  InterruptLine& irq_;
  sim::Simulator& sim_;
  sim::ClockDomain* own_domain_ = nullptr;
  sim::ClockDomain* cp_domain_ = nullptr;
  // Memo for NextOwnEdgeTime, keyed on the query time (the IMU grid is
  // immutable). Repeated calls within one timestamp — issue, trace,
  // response — then share one cycle conversion.
  mutable Picoseconds next_edge_memo_for_ = 0;
  mutable Picoseconds next_edge_memo_ = 0;
  mutable bool next_edge_memo_valid_ = false;

  std::unique_ptr<Tlb> owned_tlb_;  // null when fronting a shared TLB
  Tlb* tlb_;
  TlbHierarchy xlat_;  // fronts tlb_, plus the shared L2 when configured
  Asid asid_ = 0;
  std::array<u32, kMaxObjects> elem_width_{};  // bytes; 0 = unprogrammed
  std::array<u32, kMaxObjects> elem_limit_{};  // elements; 0 = unlimited
  // Per-object page shift; 0 = the platform geometry's shift.
  std::array<u32, kMaxObjects> page_shift_{};

  u32 ObjectPageShift(ObjectId object) const {
    const u32 s = page_shift_[object];
    return s != 0 ? s : geometry_.page_shift();
  }

  State state_ = State::kIdle;
  bool started_ = false;
  // Posted-write lifecycle: the CP-side acknowledgement and the
  // IMU-side retirement proceed independently.
  bool posted_ = false;        // current access is a posted write
  bool cp_consumed_ = false;   // core took the early acknowledgement
  Picoseconds ack_at_ = 0;     // when the acknowledgement is visible
  bool finish_pending_ = false;  // CP_FIN deferred until buffer drains
  CpAccess current_{};
  Picoseconds issue_time_ = 0;
  Picoseconds observe_floor_ = 0;  // observe only edges strictly after
  u32 observations_ = 0;
  Picoseconds ready_at_ = 0;  // valid in State::kResponding
  u32 rdata_ = 0;
  Picoseconds fault_raised_at_ = 0;

  u32 sr_ = 0;
  u32 cr_ = kCrEnable;
  u32 ar_ = 0;

  // Last-translation cache (see ImuConfig::translation_cache): one
  // entry per object, valid while the TLB generation matches, i.e. no
  // entry was installed or invalidated since the hit was recorded. Per
  // object because coprocessor FSMs interleave streams (IDEA alternates
  // input reads and output writes every block) — a shared entry would
  // thrash on exactly the streaming pattern the cache exists for.
  struct TcEntry {
    bool valid = false;
    u64 generation = 0;
    mem::VirtPage vpage = 0;
    u32 index = 0;
  };
  std::array<TcEntry, kMaxObjects> tc_{};

  std::function<void()> param_release_hook_;
  std::function<bool()> ff_gate_;
  std::function<void(ObjectId, mem::VirtPage)> page_ref_probe_;
  ImuStats stats_;
  FaultPlan* fault_plan_ = nullptr;

  // Tracing. CP_ACCESS/CP_TLBHIT stay asserted through the edge that
  // samples them; their deassertion is held pending until the next
  // issue (or CP_FIN) so back-to-back accesses render as in hardware.
  sim::Tracer* tracer_ = nullptr;
  sim::SignalId sig_access_ = 0, sig_wr_ = 0, sig_obj_ = 0, sig_addr_ = 0,
                sig_tlbhit_ = 0, sig_din_ = 0, sig_fault_ = 0;
  std::optional<Picoseconds> trace_deassert_at_;
};

}  // namespace vcop::hw
