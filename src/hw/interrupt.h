// Interrupt line from the IMU to the processor (INT_PLD in Figure 4).
#pragma once

#include <functional>

#include "base/fault.h"
#include "base/status.h"
#include "base/types.h"

namespace vcop::hw {

enum class InterruptCause : u8 {
  kPageFault = 1,       // TLB miss: OS must (re)map a page (§3.3)
  kEndOfOperation = 2,  // CP_FIN: OS must copy back dirty data (§3.3)
};

/// A single edge-triggered interrupt line. The handler runs at the
/// simulation timestamp of Raise(); the OS models its own handling
/// latency by scheduling follow-up events.
class InterruptLine {
 public:
  using Handler = std::function<void(InterruptCause)>;

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Installs (or clears) the fault plan consulted on every edge.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Signals the processor. A handler must be connected — the platform
  /// wiring installs it before any coprocessor can run. Under a fault
  /// plan the edge can be lost (never reaches the CPU) or seen twice.
  void Raise(InterruptCause cause) {
    VCOP_CHECK_MSG(static_cast<bool>(handler_),
                   "interrupt raised with no handler connected");
    ++raised_;
    if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kIrqDrop)) {
      ++dropped_;
      return;
    }
    if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kIrqDuplicate)) {
      ++duplicated_;
      handler_(cause);
    }
    handler_(cause);
  }

  u64 times_raised() const { return raised_; }
  u64 times_dropped() const { return dropped_; }
  u64 times_duplicated() const { return duplicated_; }

 private:
  Handler handler_;
  u64 raised_ = 0;
  u64 dropped_ = 0;
  u64 duplicated_ = 0;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace vcop::hw
