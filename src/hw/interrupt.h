// Interrupt line from the IMU to the processor (INT_PLD in Figure 4).
#pragma once

#include <functional>

#include "base/status.h"
#include "base/types.h"

namespace vcop::hw {

enum class InterruptCause : u8 {
  kPageFault = 1,       // TLB miss: OS must (re)map a page (§3.3)
  kEndOfOperation = 2,  // CP_FIN: OS must copy back dirty data (§3.3)
};

/// A single edge-triggered interrupt line. The handler runs at the
/// simulation timestamp of Raise(); the OS models its own handling
/// latency by scheduling follow-up events.
class InterruptLine {
 public:
  using Handler = std::function<void(InterruptCause)>;

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Signals the processor. A handler must be connected — the platform
  /// wiring installs it before any coprocessor can run.
  void Raise(InterruptCause cause) {
    VCOP_CHECK_MSG(static_cast<bool>(handler_),
                   "interrupt raised with no handler connected");
    ++raised_;
    handler_(cause);
  }

  u64 times_raised() const { return raised_; }

 private:
  Handler handler_;
  u64 raised_ = 0;
};

}  // namespace vcop::hw
