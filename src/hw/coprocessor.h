// Portable coprocessor base class — the C++ analogue of the paper's
// Figure-5 coding style for coprocessors.
//
// A concrete coprocessor is a clocked FSM that addresses its operands
// purely as (object id, element index); it never sees physical
// addresses, the interface-memory size, or the platform bus. The base
// class provides:
//   * the CP_START / parameter-fetch phase (§3.2: "once its operation
//     is started, the coprocessor looks for parameters in a memory page
//     designated to parameter passing", then invalidates that page),
//   * TryRead/TryWrite access helpers that drive the port and model the
//     multi-cycle CP_TLBHIT handshake,
//   * CP_FIN signalling via Finish().
//
// Subclasses implement OnStart() (latch parameters, reset registers)
// and Step() (one FSM transition per rising clock edge).
#pragma once

#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "hw/cp_port.h"
#include "sim/clock.h"

namespace vcop::hw {

class Coprocessor : public sim::ClockedModule {
 public:
  ~Coprocessor() override = default;

  /// Connects the coprocessor to the platform's interface. Done by the
  /// fabric at configuration time.
  void BindPort(CoprocessorPort& port) { port_ = &port; }

  /// CP_START: begins a run that first fetches `num_params` 32-bit
  /// scalar parameters from the parameter page (object kParamObject).
  /// Invoked by the platform (through the IMU start machinery).
  void Start(u32 num_params);

  /// Human-readable core name, e.g. "adpcmdecode".
  virtual std::string_view name() const = 0;

  /// Emergency reset used by the OS abort path: the FSM returns to idle
  /// without signalling CP_FIN.
  void Abort();

  bool running() const { return phase_ != Phase::kIdle; }
  bool finished() const { return finished_once_; }

  /// Total rising edges consumed while running (the core's cycle count).
  u64 cycles_run() const { return cycles_run_; }

  // sim::ClockedModule:
  void OnRisingEdge() final;
  bool active() const final;
  /// Hint for the clock domain: during a BeginDelay countdown only the
  /// edge after the delay matters; while blocked on an access, no edge
  /// does (the interface wakes the clock). Otherwise every edge steps
  /// the FSM.
  u64 NextInterestingEdge(Picoseconds next_edge_time) const final;
  /// Credits batched-over edges exactly as OnRisingEdge would have
  /// counted them: cycles_run_ advances per edge and the delay
  /// countdown burns down.
  void OnEdgesSkipped(u64 count, Picoseconds first_edge_time) final;

 protected:
  /// Parameters fetched during the start-up phase.
  u32 param(usize i) const {
    VCOP_CHECK_MSG(i < params_.size(), "parameter index out of range");
    return params_[i];
  }
  usize num_params() const { return params_.size(); }

  /// Non-blocking element read. Returns false while the access is in
  /// flight; returns true exactly once, with the data in `out`, on the
  /// edge where CP_TLBHIT is sampled high. Call with the same
  /// (object, index) until it succeeds — the FSM stays in its state.
  bool TryRead(ObjectId object, u32 index, u32& out);

  /// Non-blocking element write with the same completion contract.
  bool TryWrite(ObjectId object, u32 index, u32 value);

  /// Asserts CP_FIN. Call from Step() when the computation is done.
  void Finish();

  /// Models a fixed compute latency: the FSM consumes the next `cycles`
  /// rising edges doing nothing observable (cycles_run advances), and
  /// Step() runs again on the edge after. Call from Step(), typically
  /// on the edge that captured the operands — identical timing to a
  /// hand-written countdown state, but the clock domain can batch the
  /// whole delay into a single event.
  void BeginDelay(u32 cycles) { delay_cycles_ = cycles; }

  /// Hook: parameters are available; initialise the FSM.
  virtual void OnStart() = 0;

  /// Hook: one clock cycle of the FSM.
  virtual void Step() = 0;

 private:
  enum class Phase { kIdle, kParamFetch, kRunning };

  bool StepParamFetch();

  CoprocessorPort* port_ = nullptr;
  Phase phase_ = Phase::kIdle;
  std::vector<u32> params_;
  u32 params_read_ = 0;
  bool finished_once_ = false;
  u64 cycles_run_ = 0;

  // Outstanding-access bookkeeping for TryRead/TryWrite.
  bool outstanding_ = false;
  CpAccess outstanding_access_{};
  bool consumed_this_tick_ = false;
  u32 delay_cycles_ = 0;  // remaining BeginDelay edges
};

}  // namespace vcop::hw
