#include "hw/imu.h"

#include "base/log.h"
#include "base/table.h"

namespace vcop::hw {

Imu::Imu(const ImuConfig& config, mem::PageGeometry geometry,
         mem::DualPortRam& dp_ram, InterruptLine& irq, sim::Simulator& sim,
         Tlb* shared_tlb)
    : config_(config),
      geometry_(geometry),
      dp_ram_(dp_ram),
      irq_(irq),
      sim_(sim),
      owned_tlb_(shared_tlb == nullptr || config.shared_tlb_is_l2
                     ? std::make_unique<Tlb>(config.tlb_entries)
                     : nullptr),
      tlb_(owned_tlb_ != nullptr ? owned_tlb_.get() : shared_tlb),
      xlat_(tlb_, config.shared_tlb_is_l2 ? shared_tlb : nullptr) {
  VCOP_CHECK_MSG(!config.shared_tlb_is_l2 || shared_tlb != nullptr,
                 "two-level mode needs a shared TLB to use as L2");
  VCOP_CHECK_MSG(config.access_latency_cycles >= 2,
                 "IMU access latency must be at least 2 cycles");
  VCOP_CHECK_MSG(geometry.total_bytes() <= dp_ram.size(),
                 "page geometry exceeds the dual-port RAM");
  if (config.pipelined) cr_ |= kCrPipelined;
}

void Imu::BindClocks(sim::ClockDomain& own, sim::ClockDomain& cp) {
  own_domain_ = &own;
  cp_domain_ = &cp;
}

void Imu::SetObjectWidth(ObjectId object, u32 width) {
  VCOP_CHECK_MSG(object < kMaxObjects, "object id out of range");
  VCOP_CHECK_MSG(width == 1 || width == 2 || width == 4,
                 "element width must be 1, 2 or 4 bytes");
  elem_width_[object] = width;
}

void Imu::SetObjectLimit(ObjectId object, u32 elem_count) {
  VCOP_CHECK_MSG(object < kMaxObjects, "object id out of range");
  elem_limit_[object] = elem_count;
}

void Imu::SetObjectPageBytes(ObjectId object, u32 bytes) {
  VCOP_CHECK_MSG(object < kMaxObjects, "object id out of range");
  if (bytes == 0) {
    page_shift_[object] = 0;
    return;
  }
  VCOP_CHECK_MSG(IsPowerOfTwo(bytes), "object page size must be 2^k");
  VCOP_CHECK_MSG(bytes >= geometry_.page_bytes(),
                 "object page size below the frame granule");
  page_shift_[object] = Log2(bytes);
}

u32 Imu::ReadRegister(ImuRegister reg) const {
  switch (reg) {
    case ImuRegister::kAR: return ar_;
    case ImuRegister::kSR: return sr_;
    case ImuRegister::kCR: return cr_;
  }
  VCOP_CHECK(false);
  return 0;
}

void Imu::AssertStart() {
  VCOP_CHECK_MSG(!started_, "coprocessor already started");
  VCOP_CHECK_MSG(state_ == State::kIdle, "IMU busy at start");
  started_ = true;
  posted_ = false;
  cp_consumed_ = false;
  finish_pending_ = false;
  sr_ = kSrBusy;
  // Object widths and TLB content are (re)programmed by the OS around
  // each run; nothing to reset here.
}

void Imu::AckEnd() { sr_ &= ~kSrEndPending; }

void Imu::HardStop() {
  started_ = false;
  state_ = State::kIdle;
  posted_ = false;
  cp_consumed_ = false;
  finish_pending_ = false;
  sr_ = 0;
}

void Imu::ResolveFault() {
  VCOP_CHECK_MSG(state_ == State::kFaultStalled,
                 "ResolveFault without a pending fault");
  sr_ &= ~kSrFaultPending;
  stats_.fault_stall_time += sim_.now() - fault_raised_at_;
  if (tracer_ != nullptr) tracer_->Record(sig_fault_, sim_.now(), 0);
  state_ = State::kTranslating;
  observations_ = 0;
  observe_floor_ = sim_.now();
  if (ObservationsNeeded() == 0) {
    Translate();
  } else if (own_domain_ != nullptr) {
    own_domain_->Kick();
  }
  if (fault_plan_ &&
      fault_plan_->ShouldInject(FaultSite::kSpuriousFault)) {
    // A glitch re-raises the page-fault line after the fault was
    // already serviced. The VIM's idempotent handler must notice that
    // SR no longer shows a pending fault and ignore the edge.
    irq_.Raise(InterruptCause::kPageFault);
  }
}

void Imu::AttachTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  sig_access_ = tracer_->AddSignal("cp_access", 1);
  sig_wr_ = tracer_->AddSignal("cp_wr", 1);
  sig_obj_ = tracer_->AddSignal("cp_obj", 4);
  sig_addr_ = tracer_->AddSignal("cp_addr", 28);
  sig_tlbhit_ = tracer_->AddSignal("cp_tlbhit", 1);
  sig_din_ = tracer_->AddSignal("cp_din", 32);
  sig_fault_ = tracer_->AddSignal("imu_fault", 1);
}

// ----- CoprocessorPort -----

bool Imu::CanIssue() const {
  return started_ && state_ == State::kIdle && (cr_ & kCrEnable) != 0;
}

void Imu::Issue(const CpAccess& access) {
  VCOP_CHECK_MSG(CanIssue(), "Issue on a busy or stopped interface");
  current_ = access;
  issue_time_ = sim_.now();
  observe_floor_ = sim_.now();
  observations_ = 0;
  ++stats_.accesses;
  if (access.write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  if (page_ref_probe_ && elem_width_[access.object] != 0) {
    const u64 offset =
        static_cast<u64>(access.index) * elem_width_[access.object];
    page_ref_probe_(access.object,
                    static_cast<mem::VirtPage>(
                        offset >> ObjectPageShift(access.object)));
  }
  if (tracer_ != nullptr) {
    const Picoseconds now = sim_.now();
    if (trace_deassert_at_.has_value() && *trace_deassert_at_ < now) {
      // The previous access's strobes dropped before this issue.
      tracer_->Record(sig_access_, *trace_deassert_at_, 0);
      tracer_->Record(sig_tlbhit_, *trace_deassert_at_, 0);
    }
    trace_deassert_at_.reset();
    tracer_->Record(sig_access_, now, 1);
    tracer_->Record(sig_tlbhit_, now, 0);
    tracer_->Record(sig_wr_, now, access.write ? 1 : 0);
    tracer_->Record(sig_obj_, now, access.object);
    tracer_->Record(sig_addr_, now, access.index);
  }
  posted_ = config_.posted_writes && access.write;
  cp_consumed_ = false;
  if (posted_ && cp_domain_ != nullptr) {
    // Early acknowledgement: visible at the core's next rising edge.
    const Frequency f = cp_domain_->frequency();
    ack_at_ = f.EdgeTime(f.CyclesAt(sim_.now()) + 1);
    cp_domain_->KickAt(ack_at_);
  }
  state_ = State::kTranslating;
  if (ObservationsNeeded() == 0) {
    Translate();
  } else if (TryFastForward()) {
    // Resolved analytically; the IMU clock never wakes for this access.
  } else if (own_domain_ != nullptr) {
    own_domain_->Kick();
  }
}

bool Imu::ResponseReady() const {
  if (posted_ && !cp_consumed_) return sim_.now() >= ack_at_;
  return state_ == State::kResponding && sim_.now() >= ready_at_;
}

u32 Imu::ConsumeResponse() {
  VCOP_CHECK_MSG(ResponseReady(), "ConsumeResponse before CP_TLBHIT");
  if (posted_) {
    cp_consumed_ = true;
    if (state_ == State::kResponding || state_ == State::kIdle) {
      // Already retired in the background.
      state_ = State::kIdle;
      posted_ = false;
    }
    // Otherwise the buffer is still draining (translating or waiting
    // for the OS); CanIssue stays false until it retires.
    if (tracer_ != nullptr) trace_deassert_at_ = NextOwnEdgeTime();
    return 0;
  }
  state_ = State::kIdle;
  if (tracer_ != nullptr) {
    // Hold the strobes through the consuming edge; they drop on the
    // following edge unless a new access re-asserts them first.
    trace_deassert_at_ = NextOwnEdgeTime();
  }
  return rdata_;
}

void Imu::ReleaseParamPage() {
  const std::optional<u32> idx = tlb_->Probe(kParamObject, 0, asid_);
  if (idx.has_value()) tlb_->Invalidate(*idx);
  if (Tlb* l2 = xlat_.l2(); l2 != nullptr) {
    const std::optional<u32> l2_idx = l2->Probe(kParamObject, 0, asid_);
    if (l2_idx.has_value()) l2->Invalidate(*l2_idx);
  }
  sr_ |= kSrParamReleased;
  if (param_release_hook_) param_release_hook_();
}

void Imu::SignalFinish() {
  VCOP_CHECK_MSG(started_, "CP_FIN while not started");
  if (posted_ && state_ != State::kIdle) {
    // A posted write is still draining; raise the end interrupt once it
    // retires so the OS never sweeps a page with a write in flight.
    finish_pending_ = true;
    return;
  }
  VCOP_CHECK_MSG(state_ == State::kIdle,
                 "CP_FIN with an access outstanding");
  if (tracer_ != nullptr && trace_deassert_at_.has_value()) {
    tracer_->Record(sig_access_, *trace_deassert_at_, 0);
    tracer_->Record(sig_tlbhit_, *trace_deassert_at_, 0);
    trace_deassert_at_.reset();
  }
  started_ = false;
  sr_ &= ~kSrBusy;
  sr_ |= kSrEndPending;
  irq_.Raise(InterruptCause::kEndOfOperation);
}

// ----- ClockedModule -----

void Imu::OnRisingEdge() {
  if (state_ != State::kTranslating) return;
  if (sim_.now() <= observe_floor_) return;
  ++observations_;
  if (observations_ >= ObservationsNeeded()) Translate();
}

bool Imu::active() const { return state_ == State::kTranslating; }

u64 Imu::NextInterestingEdge(Picoseconds next_edge_time) const {
  if (state_ != State::kTranslating) return kNeverInteresting;
  // Edges at or before the observation floor do not count (OnRisingEdge
  // ignores them); by grid monotonicity at most the upcoming edge can
  // be at or below the floor.
  const u64 need = ObservationsNeeded() - observations_;
  return next_edge_time <= observe_floor_ ? need + 1 : need;
}

void Imu::OnEdgesSkipped(u64 count, Picoseconds first_edge_time) {
  if (state_ != State::kTranslating) return;
  // Mirror OnRisingEdge for each skipped edge: every one strictly after
  // the floor counts as an observation. Only the first skipped edge can
  // be at or below the floor (edge times strictly increase).
  observations_ +=
      static_cast<u32>(count - (first_edge_time <= observe_floor_ ? 1 : 0));
}

// ----- internals -----

Picoseconds Imu::NextOwnEdgeTime() const {
  VCOP_CHECK_MSG(own_domain_ != nullptr, "IMU clock not bound");
  const Picoseconds now = sim_.now();
  if (!next_edge_memo_valid_ || next_edge_memo_for_ != now) {
    next_edge_memo_ = own_domain_->NextEdgeTimeAfterNow();
    next_edge_memo_for_ = now;
    next_edge_memo_valid_ = true;
  }
  return next_edge_memo_;
}

Picoseconds Imu::OwnEdgeStrictlyAfter(Picoseconds t) const {
  const Frequency f = own_domain_->frequency();
  return f.EdgeTime(f.CyclesAt(t) + 1);
}

bool Imu::TryFastForward() {
  if (!sim_.tuning().fastforward) return false;
  if (own_domain_ == nullptr || cp_domain_ == nullptr) return false;
  // Uncertain edges the analytic path cannot model: a posted write's
  // independent ack/retire lifecycle, waveform tracing of the
  // in-between edges, or an OS veto (background VIM activity that may
  // touch translations). Armed CP-port fault sites need no veto:
  // TranslateAt replays their RNG draws at the same simulated time and
  // in the same order as the cycle engine (the AnalyticJumpAllowed
  // check below admits the jump only when nothing else can interleave
  // a draw), and its hang/stall outcomes depend only on `when`.
  if (posted_ || tracer_ != nullptr) return false;
  if (ff_gate_ && !ff_gate_()) return false;
  // Pure hit probe, mirroring TranslateAt's lookup exactly: the access
  // must translate without a fault of any kind. Nothing can change the
  // TLB between this probe and the analytic TranslateAt below — the
  // AnalyticJumpAllowed check admits the jump only when no event is
  // pending at or before the translation-complete edge.
  const u32 width = elem_width_[current_.object];
  if (width == 0) return false;
  if (config_.bounds_check && elem_limit_[current_.object] != 0 &&
      current_.index >= elem_limit_[current_.object]) {
    return false;
  }
  const u64 offset = static_cast<u64>(current_.index) * width;
  const mem::VirtPage vpage = static_cast<mem::VirtPage>(
      offset >> ObjectPageShift(current_.object));
  const TcEntry& tc = tc_[current_.object];
  if (!(config_.translation_cache && tc.valid &&
        tc.generation == tlb_->generation() && tc.vpage == vpage)) {
    // Probes L1 only: an access that would be served by an L2 fill
    // mutates the L1 and charges the fill penalty, so it declines the
    // jump and goes through the cycle engine.
    const std::optional<u32> idx = tlb_->Probe(current_.object, vpage, asid_);
    // Probe does not screen parity like Lookup does: a corrupt match
    // would be a miss on the real path, so it declines the jump here.
    if (!idx.has_value() || !tlb_->entry(*idx).parity_ok) return false;
  }
  // The whole burst on the clock grid: with N observation edges needed
  // strictly after the issue edge, translation completes at the Nth
  // IMU edge after the one at or before issue time, and data is valid
  // on the edge after that (exactly where the cycle-stepped engine
  // lands — see NextInterestingEdge/OnRisingEdge).
  const Frequency f = own_domain_->frequency();
  const u64 base = f.CyclesAt(sim_.now());
  const Picoseconds translate_time = f.EdgeTime(base + ObservationsNeeded());
  if (!sim_.AnalyticJumpAllowed(translate_time)) return false;
  TranslateAt(translate_time);
  return true;
}

void Imu::TranslateAt(Picoseconds when) {
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kCpHang)) {
    // The datapath wedges: no DP-RAM access, no fault, no kick. The
    // clock domain goes idle and only the VIM's watchdog (which sees no
    // progress) can recover via HardStop + abort.
    state_ = State::kHung;
    return;
  }
  const u32 width = elem_width_[current_.object];
  const bool limit_violation =
      config_.bounds_check && elem_limit_[current_.object] != 0 &&
      current_.index >= elem_limit_[current_.object];
  std::optional<u32> entry;
  u64 offset = 0;
  bool filled_from_l2 = false;
  if (width != 0 && !limit_violation) {
    offset = static_cast<u64>(current_.index) * width;
    const mem::VirtPage vpage = static_cast<mem::VirtPage>(
        offset >> ObjectPageShift(current_.object));
    TcEntry& tc = tc_[current_.object];
    if (config_.translation_cache && tc.valid &&
        tc.generation == tlb_->generation() && tc.vpage == vpage) {
      // Same page as this object's last hit and the TLB has not changed
      // since: skip the CAM scan. NoteHit leaves statistics and the
      // accessed bit exactly as a matching Lookup would.
      tlb_->NoteHit(tc.index);
      entry = tc.index;
    } else {
      entry = xlat_.Lookup(current_.object, vpage, asid_);
      filled_from_l2 = xlat_.last_fill_from_l2();
      tc.valid = entry.has_value();
      if (tc.valid) {
        tc.generation = tlb_->generation();
        tc.vpage = vpage;
        tc.index = *entry;
      }
    }
  } else {
    // Limit violation, or an access to an object the OS never
    // described: always a fault; the VIM will fail the run with a
    // diagnostic (there is no mapping to provide). Counted as a TLB
    // miss for consistency.
    entry = std::nullopt;
  }

  if (limit_violation) sr_ |= kSrLimitFault;
  if (!entry.has_value()) {
    ar_ = PackAr(current_.object, current_.index);
    sr_ |= kSrFaultPending;
    state_ = State::kFaultStalled;
    fault_raised_at_ = when;
    ++stats_.faults;
    if (tracer_ != nullptr) tracer_->Record(sig_fault_, when, 1);
    VCOP_LOG(kDebug, StrFormat("IMU fault: obj=%u index=%u",
                               current_.object, current_.index));
    irq_.Raise(InterruptCause::kPageFault);
    return;
  }

  const TlbEntry& e = tlb_->entry(*entry);
  // Page offset under the object's own page size: a superpage maps a
  // contiguous run of frames starting at e.frame, so the offset can
  // safely extend past the first frame.
  const u32 page_off = static_cast<u32>(
      offset & ((u64{1} << ObjectPageShift(current_.object)) - 1));
  const u32 paddr = geometry_.FrameBase(e.frame) + page_off;
  if (current_.write) {
    dp_ram_.WriteWord(mem::DualPortRam::Port::kCoprocessor, paddr, width,
                      current_.wdata);
    tlb_->MarkDirty(*entry);
    rdata_ = 0;
  } else {
    rdata_ =
        dp_ram_.ReadWord(mem::DualPortRam::Port::kCoprocessor, paddr, width);
  }
  ar_ = PackAr(current_.object, current_.index);

  ready_at_ = when == sim_.now() ? NextOwnEdgeTime() : OwnEdgeStrictlyAfter(when);
  if (filled_from_l2) {
    // Micro-TLB refill handshake: the data arrives later by the L2 hit
    // penalty. Only possible in two-level mode.
    ready_at_ +=
        own_domain_->frequency().Duration(config_.l2_hit_penalty_cycles);
  }
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kCpStall)) {
    // The port holds CP_TLBHIT low for extra cycles (e.g. DP-RAM
    // arbitration loss); the access completes late but correctly.
    ready_at_ += own_domain_->frequency().Duration(16);
  }
  stats_.access_latency_time += ready_at_ - issue_time_;
  if (posted_) {
    // Background retirement of the posted write; the core was (or will
    // be) acknowledged independently at ack_at_.
    if (cp_consumed_) {
      state_ = State::kIdle;
      posted_ = false;
      if (finish_pending_) {
        finish_pending_ = false;
        SignalFinish();
      }
    } else {
      state_ = State::kResponding;
    }
    return;
  }
  state_ = State::kResponding;
  if (tracer_ != nullptr) {
    tracer_->Record(sig_tlbhit_, ready_at_, 1);
    if (!current_.write) tracer_->Record(sig_din_, ready_at_, rdata_);
  }
  if (cp_domain_ != nullptr) {
    // Wake the coprocessor exactly when the data becomes valid; its
    // next grid edge at or after ready_at_ samples CP_TLBHIT high.
    cp_domain_->KickAt(ready_at_);
  }
}

}  // namespace vcop::hw
