// The portable coprocessor-side port — the paper's Figure 4 left edge.
//
// A coprocessor sees only these signals:
//   CP_OBJ / CP_ADDR      virtual address (object id + element index)
//   CP_DIN / CP_DOUT      data lines
//   CP_ACCESS / CP_WR     access strobes
//   CP_TLBHIT             translation-complete / data-valid
//   CP_START / CP_FIN     invocation handshake
//
// Everything to the right of this interface (TLB, dual-port RAM wiring,
// bus protocol) is platform-specific and hidden — that is the paper's
// portability claim. CoprocessorPort is the abstract boundary; the Imu
// implements it for the modelled EPXA1-like platform.
#pragma once

#include "base/status.h"
#include "base/types.h"
#include "hw/tlb.h"

namespace vcop::hw {

/// One coprocessor memory access in flight on the port.
struct CpAccess {
  ObjectId object = 0;  // CP_OBJ
  u32 index = 0;        // CP_ADDR: *element* index, not a byte address
  bool write = false;   // CP_WR
  u32 wdata = 0;        // CP_DOUT (writes only)
};

class CoprocessorPort {
 public:
  virtual ~CoprocessorPort() = default;

  /// True when no access is outstanding and the interface will accept
  /// Issue() this cycle.
  virtual bool CanIssue() const = 0;

  /// Drives CP_OBJ/CP_ADDR/CP_ACCESS (and CP_DOUT/CP_WR for writes).
  /// Precondition: CanIssue().
  virtual void Issue(const CpAccess& access) = 0;

  /// CP_TLBHIT as the coprocessor samples it *now*: true once the
  /// translation (and DP-RAM access) of the outstanding request has
  /// completed and the result is stable on the port.
  virtual bool ResponseReady() const = 0;

  /// Latches CP_DIN and releases the port for the next access.
  /// Returns the read data (zero for writes).
  /// Precondition: ResponseReady().
  virtual u32 ConsumeResponse() = 0;

  /// True when the interface accepts a new access in the same cycle a
  /// response is consumed (pipelined IMU). Non-pipelined interfaces
  /// return false and the FSM issues on the following edge.
  virtual bool BackToBack() const = 0;

  /// Invalidates the parameter-passing page after start-up parameter
  /// fetch, "making it available for data mapping purposes" (§3.2).
  virtual void ReleaseParamPage() = 0;

  /// Asserts CP_FIN: the coprocessor has finished its operation.
  virtual void SignalFinish() = 0;
};

}  // namespace vcop::hw
