#include "hw/tlb.h"

namespace vcop::hw {

Tlb::Tlb(u32 num_entries) : entries_(num_entries) {
  VCOP_CHECK_MSG(num_entries >= 1, "TLB needs at least one entry");
}

std::optional<u32> Tlb::Lookup(ObjectId object, mem::VirtPage vpage,
                               Asid asid) {
  ++stats_.lookups;
  const std::optional<u32> idx = Probe(object, vpage, asid);
  if (idx.has_value()) {
    if (!entries_[*idx].parity_ok) {
      // The CAM match hit a corrupted entry: the parity check rejects
      // it, the entry is dropped, and the access takes the miss path so
      // the OS re-installs a good mapping.
      ++stats_.parity_errors;
      const TlbEntry old = entries_[*idx];
      entries_[*idx] = TlbEntry{};
      ++generation_;
      if (parity_drop_hook_) parity_drop_hook_(old);
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    entries_[*idx].accessed = true;
  } else {
    ++stats_.misses;
  }
  return idx;
}

void Tlb::NoteHit(u32 index) {
  VCOP_CHECK_MSG(index < entries_.size(), "TLB index out of range");
  VCOP_CHECK_MSG(entries_[index].valid, "NoteHit on invalid entry");
  ++stats_.lookups;
  ++stats_.hits;
  entries_[index].accessed = true;
}

std::optional<u32> Tlb::Probe(ObjectId object, mem::VirtPage vpage,
                              Asid asid) const {
  for (u32 i = 0; i < entries_.size(); ++i) {
    const TlbEntry& e = entries_[i];
    if (e.valid && e.object == object && e.vpage == vpage &&
        e.asid == asid) {
      return i;
    }
  }
  return std::nullopt;
}

void Tlb::Install(u32 index, ObjectId object, mem::VirtPage vpage,
                  mem::FrameId frame, Asid asid) {
  VCOP_CHECK_MSG(index < entries_.size(), "TLB index out of range");
  VCOP_CHECK_MSG(object < kMaxObjects, "object id out of range");
  TlbEntry entry;
  entry.valid = true;
  entry.object = object;
  entry.asid = asid;
  entry.vpage = vpage;
  entry.frame = frame;
  if (fault_plan_ && fault_plan_->ShouldInject(FaultSite::kTlbParity)) {
    entry.parity_ok = false;
  }
  entries_[index] = entry;
  ++stats_.installs;
  ++generation_;
}

TlbEntry Tlb::Invalidate(u32 index) {
  VCOP_CHECK_MSG(index < entries_.size(), "TLB index out of range");
  TlbEntry old = entries_[index];
  entries_[index] = TlbEntry{};
  ++generation_;
  return old;
}

void Tlb::InvalidateAll() {
  for (TlbEntry& e : entries_) e = TlbEntry{};
  ++generation_;
}

u32 Tlb::InvalidateAsid(Asid asid) {
  u32 dropped = 0;
  for (TlbEntry& e : entries_) {
    if (e.valid && e.asid == asid) {
      e = TlbEntry{};
      ++dropped;
    }
  }
  if (dropped != 0) ++generation_;
  return dropped;
}

void Tlb::MarkDirty(u32 index) {
  VCOP_CHECK_MSG(index < entries_.size(), "TLB index out of range");
  VCOP_CHECK_MSG(entries_[index].valid, "MarkDirty on invalid entry");
  entries_[index].dirty = true;
}

void Tlb::ClearDirty(u32 index) {
  VCOP_CHECK_MSG(index < entries_.size(), "TLB index out of range");
  VCOP_CHECK_MSG(entries_[index].valid, "ClearDirty on invalid entry");
  entries_[index].dirty = false;
}

std::vector<mem::FrameId> Tlb::HarvestAccessed() {
  std::vector<mem::FrameId> touched;
  for (TlbEntry& e : entries_) {
    if (e.valid && e.accessed) {
      touched.push_back(e.frame);
      e.accessed = false;
    }
  }
  return touched;
}

std::optional<u32> Tlb::FindByFrame(mem::FrameId frame) const {
  for (u32 i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].frame == frame) return i;
  }
  return std::nullopt;
}

std::optional<u32> Tlb::FindFree() const {
  for (u32 i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) return i;
  }
  return std::nullopt;
}

const TlbEntry& Tlb::entry(u32 index) const {
  VCOP_CHECK_MSG(index < entries_.size(), "TLB index out of range");
  return entries_[index];
}

std::optional<u32> TlbHierarchy::Lookup(ObjectId object,
                                        mem::VirtPage vpage, Asid asid) {
  last_fill_from_l2_ = false;
  const std::optional<u32> l1_idx = l1_->Lookup(object, vpage, asid);
  if (l1_idx.has_value() || l2_ == nullptr) return l1_idx;

  // L1 missed; probe the shared L2 (its parity screening applies — a
  // corrupt L2 entry is dropped there and the access faults).
  const std::optional<u32> l2_idx = l2_->Lookup(object, vpage, asid);
  if (!l2_idx.has_value()) return std::nullopt;
  const TlbEntry l2e = l2_->entry(*l2_idx);

  // Hardware fill into L1: a free slot if one exists, else round-robin.
  u32 slot;
  if (const std::optional<u32> free = l1_->FindFree(); free.has_value()) {
    slot = *free;
  } else {
    slot = fill_cursor_++ % l1_->num_entries();
  }
  const TlbEntry victim = l1_->entry(slot);
  if (victim.valid) {
    ++stats_.l1_fill_evictions;
    if (victim.dirty) {
      // The victim usually still lives in L2 (fills copy, they don't
      // move); merge the dirty bit there. Only if the OS has since
      // recycled the L2 twin does the dirtiness need to escape to the
      // OS via the evict hook.
      const std::optional<u32> twin =
          l2_->Probe(victim.object, victim.vpage, victim.asid);
      if (twin.has_value() && l2_->entry(*twin).frame == victim.frame) {
        l2_->MarkDirty(*twin);
        ++stats_.dirty_merges;
      } else {
        ++stats_.orphan_evictions;
        if (evict_hook_) evict_hook_(victim);
      }
    }
  }
  // The L2 entry's dirty bit stays in L2; the L1 copy starts clean, so
  // no write-back information is lost or duplicated.
  l1_->Install(slot, object, vpage, l2e.frame, asid);
  ++stats_.l1_fills;
  if (!l1_->entry(slot).parity_ok) {
    // The fill itself was corrupted on the way into the CAM. Treat the
    // access as a miss: the OS fault path re-installs a good entry (the
    // corrupt one is dropped by its own parity check on the next match).
    return std::nullopt;
  }
  last_fill_from_l2_ = true;
  return slot;
}

u32 TlbHierarchy::InvalidateAsid(Asid asid) {
  u32 dropped = l1_->InvalidateAsid(asid);
  if (l2_ != nullptr) dropped += l2_->InvalidateAsid(asid);
  return dropped;
}

void TlbHierarchy::InvalidateAll() {
  l1_->InvalidateAll();
  if (l2_ != nullptr) l2_->InvalidateAll();
}

}  // namespace vcop::hw
