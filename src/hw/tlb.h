// The IMU's Translation Lookaside Buffer.
//
// "The key part of the IMU is actually the TLB that performs address
// translation for coprocessor accesses. [...] an upper part of the
// coprocessor address is matched to the patterns in the translation
// table. [...] The TLB also contains invalidity and dirtiness
// information, like in typical VMM systems." (§3.2)
//
// Entries are fully associative (the EPXA1 implementation used a CAM).
// The tag is the pair (object id, virtual page); the payload is a
// physical frame of the dual-port RAM. Entries are installed and
// invalidated only by the OS (the VIM); the IMU itself only looks up
// and sets dirty bits.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "base/fault.h"
#include "base/status.h"
#include "base/types.h"
#include "mem/page.h"

namespace vcop::hw {

/// Coprocessor-visible object identifier (0..15; "a number agreed by
/// the hardware and software designers", §3.1).
using ObjectId = u8;

constexpr ObjectId kMaxObjects = 16;

/// Reserved object id through which the coprocessor reads its scalar
/// parameters from the parameter-passing page (§3.2).
constexpr ObjectId kParamObject = kMaxObjects - 1;

/// Address-space identifier widening the CAM tag for multi-tenant
/// service (os/vcopd.h): entries of one tenant survive a switch to
/// another without a full flush, exactly like ASID-tagged MMU TLBs.
/// 0 is the kernel's default (single-tenant) space, so every legacy
/// call site that never mentions ASIDs keeps its exact behaviour.
using Asid = u16;

struct TlbEntry {
  bool valid = false;
  bool dirty = false;
  /// Set by the IMU on every translation hit; harvested and cleared by
  /// the OS to approximate recency (like an MMU's accessed bit).
  bool accessed = false;
  ObjectId object = 0;
  Asid asid = 0;
  mem::VirtPage vpage = 0;
  mem::FrameId frame = 0;
  /// Parity over the tag+payload, recomputed by the CAM on every match.
  /// A corrupted entry (fault injection) fails the check; the hardware
  /// then treats the entry as invalid and the lookup as a miss, so the
  /// OS refill path repairs the mapping instead of the coprocessor
  /// silently reading the wrong frame.
  bool parity_ok = true;
};

struct TlbStats {
  u64 lookups = 0;
  u64 hits = 0;
  u64 misses = 0;
  /// Matches discarded because the entry failed its parity check.
  u64 parity_errors = 0;
  /// Entries written by the OS (refills + prefetch installs); installs
  /// minus misses approximates speculative TLB traffic.
  u64 installs = 0;
};

class Tlb {
 public:
  /// `num_entries` >= 1. The EPXA1 system uses 8 (one per DP-RAM page).
  explicit Tlb(u32 num_entries);

  u32 num_entries() const { return static_cast<u32>(entries_.size()); }

  /// CAM lookup: returns the index of the valid entry matching
  /// (asid, object, vpage), or nullopt on a miss. Updates hit/miss
  /// counters.
  std::optional<u32> Lookup(ObjectId object, mem::VirtPage vpage,
                            Asid asid = 0);

  /// Lookup without touching the statistics (used by the OS when it
  /// inspects IMU state during fault handling).
  std::optional<u32> Probe(ObjectId object, mem::VirtPage vpage,
                           Asid asid = 0) const;

  /// Records a hit on entry `index` without a CAM scan — the IMU's
  /// last-translation cache uses this when its cached entry is provably
  /// still current (same generation()). Statistics and the accessed bit
  /// end up exactly as if Lookup had matched `index`.
  void NoteHit(u32 index);

  /// Incremented whenever the set of valid mappings can change
  /// (Install / Invalidate / InvalidateAll — not dirty/accessed-bit
  /// traffic). A cached lookup result is valid iff its generation
  /// still matches.
  u64 generation() const { return generation_; }

  /// OS interface: writes entry `index` (clears dirty).
  void Install(u32 index, ObjectId object, mem::VirtPage vpage,
               mem::FrameId frame, Asid asid = 0);

  /// OS interface: invalidates entry `index`; returns the entry as it
  /// was (so the OS can propagate its dirty bit to the page tables).
  TlbEntry Invalidate(u32 index);

  /// Invalidates every entry (used at FPGA_EXECUTE start / end).
  void InvalidateAll();

  /// Invalidates only the entries tagged `asid` (tenant teardown /
  /// scoped end-of-operation sweeps). Returns how many were dropped.
  u32 InvalidateAsid(Asid asid);

  /// IMU datapath: marks entry `index` dirty after a write access.
  void MarkDirty(u32 index);

  /// OS interface: clears the dirty bit after the page was cleaned
  /// (written back without being evicted).
  void ClearDirty(u32 index);

  /// Returns the frames of entries accessed since the last harvest and
  /// clears their accessed bits. OS-side recency source for LRU.
  std::vector<mem::FrameId> HarvestAccessed();

  /// Finds the valid entry mapping physical frame `frame`, if any.
  std::optional<u32> FindByFrame(mem::FrameId frame) const;

  /// Finds an invalid entry to install into, if any.
  std::optional<u32> FindFree() const;

  const TlbEntry& entry(u32 index) const;
  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  /// Installs (or clears) the fault plan; kTlbParity opportunities are
  /// counted at Install time (the corruption happens on the write).
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Called with the dropped entry (as it was) whenever a lookup
  /// discards a parity-corrupt entry, so the OS can propagate its dirty
  /// bit before the mapping disappears.
  void set_parity_drop_hook(std::function<void(const TlbEntry&)> hook) {
    parity_drop_hook_ = std::move(hook);
  }

 private:
  std::vector<TlbEntry> entries_;
  TlbStats stats_;
  u64 generation_ = 0;
  FaultPlan* fault_plan_ = nullptr;
  std::function<void(const TlbEntry&)> parity_drop_hook_;
};

/// Counters of the L1<-L2 fill machinery (per-level lookup traffic lives
/// in each level's own TlbStats).
struct TlbHierarchyStats {
  /// L1 entries written from an L2 hit.
  u64 l1_fills = 0;
  /// Fills that displaced a valid L1 entry.
  u64 l1_fill_evictions = 0;
  /// Displaced dirty L1 entries whose dirtiness was merged into the
  /// matching L2 entry (still mapped there, nothing escapes the TLBs).
  u64 dirty_merges = 0;
  /// Displaced entries with no L2 twin — handed to the evict hook so the
  /// OS can fold their dirty bit into its page state.
  u64 orphan_evictions = 0;
};

/// Two-level translation front-end: a small per-coprocessor L1 micro-TLB
/// backed by a (typically shared, larger) L2. With no L2 configured the
/// hierarchy is a transparent pass-through to the single CAM — lookups
/// delegate 1:1 and every statistic lands exactly where it always did.
///
/// The hierarchy owns only the datapath (lookup + hardware fill). The OS
/// keeps installing, sweeping and invalidating the individual levels
/// through l1()/l2() — mirroring how the VIM already drives the CAM.
class TlbHierarchy {
 public:
  /// `l1` must be non-null; `l2` may be null (single-level mode).
  TlbHierarchy(Tlb* l1, Tlb* l2) : l1_(l1), l2_(l2) {
    VCOP_CHECK_MSG(l1 != nullptr, "hierarchy needs an L1");
  }

  bool two_level() const { return l2_ != nullptr; }
  Tlb& l1() { return *l1_; }
  const Tlb& l1() const { return *l1_; }
  /// Null when single-level.
  Tlb* l2() { return l2_; }
  const Tlb* l2() const { return l2_; }

  /// Datapath lookup. Probes L1; on an L1 miss with an L2 configured,
  /// probes L2 and — on an L2 hit — fills the mapping into L1 and
  /// returns the L1 index. Returns nullopt when both levels miss (or the
  /// L1 fill itself was parity-corrupted: the fill is left in place for
  /// the OS to repair via the fault path, and the access faults).
  std::optional<u32> Lookup(ObjectId object, mem::VirtPage vpage,
                            Asid asid = 0);

  /// Whether the last successful Lookup was served by an L2 fill (the
  /// IMU charges the L2 penalty for those).
  bool last_fill_from_l2() const { return last_fill_from_l2_; }

  /// Invalidates `asid` in both levels; returns the total dropped.
  u32 InvalidateAsid(Asid asid);

  /// Invalidates every entry in both levels.
  void InvalidateAll();

  /// Called with a displaced L1 victim (as it was) when a fill evicts an
  /// entry that has no matching L2 twin, so the OS can fold its dirty
  /// bit into the page state before the mapping disappears.
  void set_evict_hook(std::function<void(const TlbEntry&)> hook) {
    evict_hook_ = std::move(hook);
  }

  const TlbHierarchyStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbHierarchyStats{}; }

 private:
  Tlb* l1_;
  Tlb* l2_;
  TlbHierarchyStats stats_;
  u32 fill_cursor_ = 0;
  bool last_fill_from_l2_ = false;
  std::function<void(const TlbEntry&)> evict_hook_;
};

}  // namespace vcop::hw
