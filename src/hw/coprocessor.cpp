#include "hw/coprocessor.h"

#include <algorithm>

namespace vcop::hw {

void Coprocessor::Start(u32 num_params) {
  VCOP_CHECK_MSG(port_ != nullptr, "coprocessor started with no port bound");
  VCOP_CHECK_MSG(phase_ == Phase::kIdle, "coprocessor already running");
  params_.assign(num_params, 0);
  params_read_ = 0;
  finished_once_ = false;
  cycles_run_ = 0;
  outstanding_ = false;
  delay_cycles_ = 0;
  phase_ = Phase::kParamFetch;
}

void Coprocessor::Abort() {
  phase_ = Phase::kIdle;
  outstanding_ = false;
  delay_cycles_ = 0;
}

void Coprocessor::OnRisingEdge() {
  if (phase_ == Phase::kIdle) return;
  ++cycles_run_;
  if (delay_cycles_ > 0) {
    // Mid-BeginDelay: the edge is consumed by the modelled compute
    // latency; the FSM does not step.
    --delay_cycles_;
    return;
  }
  consumed_this_tick_ = false;
  if (phase_ == Phase::kParamFetch) {
    StepParamFetch();
    return;
  }
  Step();
  if (phase_ == Phase::kRunning && consumed_this_tick_ && !outstanding_ &&
      port_->BackToBack()) {
    if (delay_cycles_ > 0) {
      // The consume edge overlaps the first delay cycle, exactly as a
      // hand-written countdown state stepping on this edge would.
      --delay_cycles_;
    } else {
      // Pipelined interface: the FSM may launch its next access in the
      // same cycle it captured the previous response (Mealy-style issue).
      consumed_this_tick_ = false;
      Step();
    }
  }
}

bool Coprocessor::active() const {
  if (phase_ == Phase::kIdle) return false;
  // Blocked on an in-flight access: the IMU wakes our clock domain when
  // the response (or the fault resolution) lands.
  if (outstanding_ && !port_->ResponseReady()) return false;
  return true;
}

u64 Coprocessor::NextInterestingEdge(Picoseconds next_edge_time) const {
  (void)next_edge_time;
  if (phase_ == Phase::kIdle) return kNeverInteresting;
  if (outstanding_ && !port_->ResponseReady()) return kNeverInteresting;
  // Delay edges just burn down the countdown; the FSM steps again on
  // the (delay_cycles_ + 1)-th edge from here.
  if (delay_cycles_ > 0) return static_cast<u64>(delay_cycles_) + 1;
  return 1;
}

void Coprocessor::OnEdgesSkipped(u64 count, Picoseconds first_edge_time) {
  (void)first_edge_time;
  if (phase_ == Phase::kIdle) return;
  // Each skipped edge would have run OnRisingEdge: the cycle counter
  // advances regardless, and delay edges burn the countdown. (Skipped
  // edges never step the FSM — the hints above guarantee the FSM only
  // needed the countdown or was blocked.)
  cycles_run_ += count;
  const u64 burned = std::min<u64>(count, delay_cycles_);
  delay_cycles_ -= static_cast<u32>(burned);
}

bool Coprocessor::StepParamFetch() {
  if (params_read_ < params_.size()) {
    u32 value = 0;
    if (TryRead(kParamObject, params_read_, value)) {
      params_[params_read_] = value;
      ++params_read_;
    }
  }
  if (params_read_ >= params_.size()) {
    // "When the parameters are read, the coprocessor finishes
    // initialisation and continues with normal operation. At the same
    // time it invalidates the parameter-passing page." (§3.2)
    port_->ReleaseParamPage();
    OnStart();
    phase_ = Phase::kRunning;
    return true;
  }
  return false;
}

bool Coprocessor::TryRead(ObjectId object, u32 index, u32& out) {
  VCOP_CHECK_MSG(port_ != nullptr, "no port bound");
  if (outstanding_) {
    VCOP_CHECK_MSG(!outstanding_access_.write &&
                       outstanding_access_.object == object &&
                       outstanding_access_.index == index,
                   "FSM changed its access target while one is in flight");
    if (!port_->ResponseReady()) return false;
    out = port_->ConsumeResponse();
    outstanding_ = false;
    consumed_this_tick_ = true;
    return true;
  }
  if (port_->CanIssue()) {
    outstanding_access_ = CpAccess{object, index, /*write=*/false, 0};
    port_->Issue(outstanding_access_);
    outstanding_ = true;
  }
  return false;
}

bool Coprocessor::TryWrite(ObjectId object, u32 index, u32 value) {
  VCOP_CHECK_MSG(port_ != nullptr, "no port bound");
  if (outstanding_) {
    VCOP_CHECK_MSG(outstanding_access_.write &&
                       outstanding_access_.object == object &&
                       outstanding_access_.index == index,
                   "FSM changed its access target while one is in flight");
    if (!port_->ResponseReady()) return false;
    port_->ConsumeResponse();
    outstanding_ = false;
    consumed_this_tick_ = true;
    return true;
  }
  if (port_->CanIssue()) {
    outstanding_access_ = CpAccess{object, index, /*write=*/true, value};
    port_->Issue(outstanding_access_);
    outstanding_ = true;
  }
  return false;
}

void Coprocessor::Finish() {
  VCOP_CHECK_MSG(phase_ == Phase::kRunning, "Finish outside a run");
  VCOP_CHECK_MSG(!outstanding_, "Finish with an access outstanding");
  phase_ = Phase::kIdle;
  finished_once_ = true;
  port_->SignalFinish();
}

}  // namespace vcop::hw
