#include "hw/coprocessor.h"

namespace vcop::hw {

void Coprocessor::Start(u32 num_params) {
  VCOP_CHECK_MSG(port_ != nullptr, "coprocessor started with no port bound");
  VCOP_CHECK_MSG(phase_ == Phase::kIdle, "coprocessor already running");
  params_.assign(num_params, 0);
  params_read_ = 0;
  finished_once_ = false;
  cycles_run_ = 0;
  outstanding_ = false;
  phase_ = Phase::kParamFetch;
}

void Coprocessor::Abort() {
  phase_ = Phase::kIdle;
  outstanding_ = false;
}

void Coprocessor::OnRisingEdge() {
  if (phase_ == Phase::kIdle) return;
  ++cycles_run_;
  consumed_this_tick_ = false;
  if (phase_ == Phase::kParamFetch) {
    StepParamFetch();
    return;
  }
  Step();
  if (phase_ == Phase::kRunning && consumed_this_tick_ && !outstanding_ &&
      port_->BackToBack()) {
    // Pipelined interface: the FSM may launch its next access in the
    // same cycle it captured the previous response (Mealy-style issue).
    consumed_this_tick_ = false;
    Step();
  }
}

bool Coprocessor::active() const {
  if (phase_ == Phase::kIdle) return false;
  // Blocked on an in-flight access: the IMU wakes our clock domain when
  // the response (or the fault resolution) lands.
  if (outstanding_ && !port_->ResponseReady()) return false;
  return true;
}

bool Coprocessor::StepParamFetch() {
  if (params_read_ < params_.size()) {
    u32 value = 0;
    if (TryRead(kParamObject, params_read_, value)) {
      params_[params_read_] = value;
      ++params_read_;
    }
  }
  if (params_read_ >= params_.size()) {
    // "When the parameters are read, the coprocessor finishes
    // initialisation and continues with normal operation. At the same
    // time it invalidates the parameter-passing page." (§3.2)
    port_->ReleaseParamPage();
    OnStart();
    phase_ = Phase::kRunning;
    return true;
  }
  return false;
}

bool Coprocessor::TryRead(ObjectId object, u32 index, u32& out) {
  VCOP_CHECK_MSG(port_ != nullptr, "no port bound");
  if (outstanding_) {
    VCOP_CHECK_MSG(!outstanding_access_.write &&
                       outstanding_access_.object == object &&
                       outstanding_access_.index == index,
                   "FSM changed its access target while one is in flight");
    if (!port_->ResponseReady()) return false;
    out = port_->ConsumeResponse();
    outstanding_ = false;
    consumed_this_tick_ = true;
    return true;
  }
  if (port_->CanIssue()) {
    outstanding_access_ = CpAccess{object, index, /*write=*/false, 0};
    port_->Issue(outstanding_access_);
    outstanding_ = true;
  }
  return false;
}

bool Coprocessor::TryWrite(ObjectId object, u32 index, u32 value) {
  VCOP_CHECK_MSG(port_ != nullptr, "no port bound");
  if (outstanding_) {
    VCOP_CHECK_MSG(outstanding_access_.write &&
                       outstanding_access_.object == object &&
                       outstanding_access_.index == index,
                   "FSM changed its access target while one is in flight");
    if (!port_->ResponseReady()) return false;
    port_->ConsumeResponse();
    outstanding_ = false;
    consumed_this_tick_ = true;
    return true;
  }
  if (port_->CanIssue()) {
    outstanding_access_ = CpAccess{object, index, /*write=*/true, value};
    port_->Issue(outstanding_access_);
    outstanding_ = true;
  }
  return false;
}

void Coprocessor::Finish() {
  VCOP_CHECK_MSG(phase_ == Phase::kRunning, "Finish outside a run");
  VCOP_CHECK_MSG(!outstanding_, "Finish with an access outstanding");
  phase_ = Phase::kIdle;
  finished_once_ = true;
  port_->SignalFinish();
}

}  // namespace vcop::hw
