#include "hw/fabric.h"

#include "base/table.h"

namespace vcop::hw {

FpgaFabric::FpgaFabric(u32 capacity_les, u64 config_bytes_per_second)
    : capacity_les_(capacity_les),
      config_bytes_per_second_(config_bytes_per_second) {
  VCOP_CHECK_MSG(capacity_les >= 1, "PLD capacity must be nonzero");
  VCOP_CHECK_MSG(config_bytes_per_second >= 1,
                 "configuration throughput must be nonzero");
}

Result<Picoseconds> FpgaFabric::Configure(const Bitstream& bitstream) {
  if (coprocessor_ != nullptr) {
    return ResourceExhaustedError(
        StrFormat("PLD already configured with '%s' (exclusive use)",
                  bitstream_.name.c_str()));
  }
  const Result<Picoseconds> priced = PriceConfigure(bitstream);
  if (!priced.ok()) return priced;
  if (InjectConfigError()) {
    return UnavailableError(
        StrFormat("configuration of '%s' failed (CRC error on the "
                  "configuration stream)",
                  bitstream.name.c_str()));
  }
  bitstream_ = bitstream;
  coprocessor_ = bitstream.create();
  VCOP_CHECK_MSG(coprocessor_ != nullptr, "bitstream factory returned null");
  return priced;
}

Result<Picoseconds> FpgaFabric::PriceConfigure(
    const Bitstream& bitstream) const {
  if (bitstream.logic_elements > capacity_les_) {
    return ResourceExhaustedError(StrFormat(
        "design '%s' needs %u LEs but the PLD has %u",
        bitstream.name.c_str(), bitstream.logic_elements, capacity_les_));
  }
  if (!bitstream.create) {
    return InvalidArgumentError("bitstream has no core factory");
  }
  if (!bitstream.cp_clock.valid() || !bitstream.imu_clock.valid()) {
    return InvalidArgumentError(
        StrFormat("bitstream '%s' has unspecified clocks",
                  bitstream.name.c_str()));
  }
  const unsigned __int128 ps =
      static_cast<unsigned __int128>(bitstream.size_bytes) *
      kPicosecondsPerSecond / config_bytes_per_second_;
  return static_cast<Picoseconds>(ps);
}

bool FpgaFabric::InjectConfigError() {
  return fault_plan_ != nullptr &&
         fault_plan_->ShouldInject(FaultSite::kConfigError);
}

void FpgaFabric::Release() {
  coprocessor_.reset();
  bitstream_ = Bitstream{};
}

const Bitstream& FpgaFabric::current_bitstream() const {
  VCOP_CHECK_MSG(coprocessor_ != nullptr, "no design loaded");
  return bitstream_;
}

}  // namespace vcop::hw
