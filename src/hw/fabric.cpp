#include "hw/fabric.h"

#include "base/table.h"

namespace vcop::hw {

FpgaFabric::FpgaFabric(u32 capacity_les, u64 config_bytes_per_second)
    : capacity_les_(capacity_les),
      config_bytes_per_second_(config_bytes_per_second) {
  VCOP_CHECK_MSG(capacity_les >= 1, "PLD capacity must be nonzero");
  VCOP_CHECK_MSG(config_bytes_per_second >= 1,
                 "configuration throughput must be nonzero");
}

Result<Picoseconds> FpgaFabric::Configure(const Bitstream& bitstream) {
  if (coprocessor_ != nullptr) {
    return ResourceExhaustedError(
        StrFormat("PLD already configured with '%s' (exclusive use)",
                  bitstream_.name.c_str()));
  }
  const Result<Picoseconds> priced = PriceConfigure(bitstream);
  if (!priced.ok()) return priced;
  if (InjectConfigError()) {
    return UnavailableError(
        StrFormat("configuration of '%s' failed (CRC error on the "
                  "configuration stream)",
                  bitstream.name.c_str()));
  }
  bitstream_ = bitstream;
  coprocessor_ = bitstream.create();
  VCOP_CHECK_MSG(coprocessor_ != nullptr, "bitstream factory returned null");
  return priced;
}

Result<Picoseconds> FpgaFabric::PriceConfigure(
    const Bitstream& bitstream) const {
  if (bitstream.logic_elements > capacity_les_) {
    return ResourceExhaustedError(StrFormat(
        "design '%s' needs %u LEs but the PLD has %u",
        bitstream.name.c_str(), bitstream.logic_elements, capacity_les_));
  }
  if (!bitstream.create) {
    return InvalidArgumentError("bitstream has no core factory");
  }
  if (!bitstream.cp_clock.valid() || !bitstream.imu_clock.valid()) {
    return InvalidArgumentError(
        StrFormat("bitstream '%s' has unspecified clocks",
                  bitstream.name.c_str()));
  }
  const unsigned __int128 ps =
      static_cast<unsigned __int128>(bitstream.size_bytes) *
      kPicosecondsPerSecond / config_bytes_per_second_;
  return static_cast<Picoseconds>(ps);
}

bool FpgaFabric::InjectConfigError() {
  return fault_plan_ != nullptr &&
         fault_plan_->ShouldInject(FaultSite::kConfigError);
}

void FpgaFabric::SetConfigSlots(u32 n) {
  VCOP_CHECK_MSG(n >= 1, "configuration cache needs at least one slot");
  slots_.assign(n, Slot{});
  active_design_.clear();
  slot_tick_ = 0;
  slot_stats_ = ConfigSlotStats{};
}

bool FpgaFabric::DesignResident(const std::string& name) const {
  for (const Slot& slot : slots_) {
    if (!slot.design.empty() && slot.design == name) return true;
  }
  return false;
}

Result<SlotAcquire> FpgaFabric::AcquireDesign(const Bitstream& bitstream) {
  if (bitstream.name == active_design_) return SlotAcquire{};

  // Hit on a dormant slot: rewrite only the region-select frame.
  for (Slot& slot : slots_) {
    if (slot.design != bitstream.name) continue;
    if (InjectConfigError()) {
      // The activation frame was corrupted mid-write; the slot's
      // configuration can no longer be trusted.
      slot = Slot{};
      return UnavailableError(
          StrFormat("activation of resident design '%s' failed (CRC "
                    "error on the configuration stream)",
                    bitstream.name.c_str()));
    }
    const unsigned __int128 ps =
        static_cast<unsigned __int128>(kSlotActivationBytes) *
        kPicosecondsPerSecond / config_bytes_per_second_;
    const Picoseconds time = static_cast<Picoseconds>(ps);
    slot.last_used = ++slot_tick_;
    active_design_ = bitstream.name;
    ++slot_stats_.hits;
    slot_stats_.activation_time += time;
    SlotAcquire acquired;
    acquired.time = time;
    acquired.activated = true;
    return acquired;
  }

  // Miss: full configuration into the LRU slot.
  const Result<Picoseconds> priced = PriceConfigure(bitstream);
  if (!priced.ok()) return priced.status();
  if (InjectConfigError()) {
    // The stream never completed; every slot keeps its previous design.
    return UnavailableError(
        StrFormat("configuration of '%s' failed (CRC error on the "
                  "configuration stream)",
                  bitstream.name.c_str()));
  }
  Slot* victim = &slots_.front();
  for (Slot& slot : slots_) {
    if (slot.design.empty()) {
      victim = &slot;
      break;
    }
    if (slot.last_used < victim->last_used) victim = &slot;
  }
  if (!victim->design.empty()) ++slot_stats_.evictions;
  victim->design = bitstream.name;
  victim->last_used = ++slot_tick_;
  active_design_ = bitstream.name;
  ++slot_stats_.misses;
  slot_stats_.configure_time += priced.value();
  SlotAcquire acquired;
  acquired.time = priced.value();
  acquired.reconfigured = true;
  return acquired;
}

void FpgaFabric::Release() {
  coprocessor_.reset();
  bitstream_ = Bitstream{};
}

const Bitstream& FpgaFabric::current_bitstream() const {
  VCOP_CHECK_MSG(coprocessor_ != nullptr, "no design loaded");
  return bitstream_;
}

}  // namespace vcop::hw
