// Processor-visible IMU registers (Figure 4: AR, SR, CR).
//
// The OS talks to the IMU through three memory-mapped registers:
//   AR — address register: object id + element index of the most recent
//        coprocessor access; "by examining this register, the OS can
//        determine which memory access possibly caused an access fault".
//   SR — status register: busy / fault-pending / end-of-operation /
//        parameter-page-released flags.
//   CR — control register: enable and translation-mode bits.
#pragma once

#include "base/bitops.h"
#include "base/types.h"
#include "hw/tlb.h"

namespace vcop::hw {

enum class ImuRegister : u8 { kAR = 0, kSR = 1, kCR = 2 };

// --- SR bit layout ---
inline constexpr u32 kSrBusy = 1u << 0;           // coprocessor running
inline constexpr u32 kSrFaultPending = 1u << 1;   // TLB miss awaiting OS
inline constexpr u32 kSrEndPending = 1u << 2;     // CP_FIN seen, not acked
inline constexpr u32 kSrParamReleased = 1u << 3;  // param page given back
/// Extension (not in the paper's IMU): the faulting access violated the
/// object's limit register — set together with kSrFaultPending.
inline constexpr u32 kSrLimitFault = 1u << 4;

// --- CR bit layout ---
inline constexpr u32 kCrEnable = 1u << 0;     // interface enabled
inline constexpr u32 kCrPipelined = 1u << 1;  // pipelined translation mode

// --- AR packing: [31:28] object id, [27:0] element index ---
inline constexpr u32 kArIndexBits = 28;

constexpr u32 PackAr(ObjectId object, u32 index) {
  return (static_cast<u32>(object) << kArIndexBits) |
         (index & static_cast<u32>(LowMask(kArIndexBits)));
}

constexpr ObjectId ArObject(u32 ar) {
  return static_cast<ObjectId>(ar >> kArIndexBits);
}

constexpr u32 ArIndex(u32 ar) {
  return ar & static_cast<u32>(LowMask(kArIndexBits));
}

}  // namespace vcop::hw
