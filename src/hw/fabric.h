// FPGA fabric (PLD) model: configuration bit-streams and the
// reconfigurable resource itself.
//
// FPGA_LOAD "loads a coprocessor definition in the reconfigurable
// hardware and ensures the exclusive use of the resource. The argument
// of the call is a pointer to the configuration bit-stream." (§3.1)
// Here a Bitstream bundles what a real bit-stream determines implicitly:
// the synthesised core (as a C++ cycle-level model factory), its
// resource usage, and the clock frequencies the design closed timing at
// (the paper runs adpcmdecode at 40 MHz and IDEA at 6 MHz with a 24 MHz
// memory subsystem).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "base/fault.h"
#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/coprocessor.h"

namespace vcop::hw {

struct Bitstream {
  std::string name;
  /// Configuration stream size; determines load time.
  u32 size_bytes = 0;
  /// PLD logic elements the design occupies.
  u32 logic_elements = 0;
  /// Clock the coprocessor core runs at.
  Frequency cp_clock;
  /// Clock the IMU / memory subsystem runs at (may differ: IDEA's core
  /// runs at 6 MHz while its memory subsystem runs at 24 MHz, §4.1).
  Frequency imu_clock;
  /// Instantiates the synthesised core.
  std::function<std::unique_ptr<Coprocessor>()> create;
};

class FpgaFabric {
 public:
  /// `capacity_les`: PLD size in logic elements.
  /// `config_bytes_per_second`: configuration-port throughput.
  FpgaFabric(u32 capacity_les, u64 config_bytes_per_second);

  /// Loads `bitstream`. Fails when a design is already loaded
  /// (exclusive use, §3.1) or when it does not fit the PLD.
  /// On success returns the configuration time.
  Result<Picoseconds> Configure(const Bitstream& bitstream);

  /// Validates `bitstream` against the PLD and prices its configuration
  /// time without loading anything. vcopd uses this to model partial
  /// reconfiguration: it instantiates per-job cores itself and only
  /// needs the fit check and the configuration-port transfer time.
  Result<Picoseconds> PriceConfigure(const Bitstream& bitstream) const;

  /// Unloads the current design, releasing the resource.
  void Release();

  bool loaded() const { return coprocessor_ != nullptr; }
  Coprocessor* coprocessor() { return coprocessor_.get(); }
  const Bitstream& current_bitstream() const;

  u32 capacity_les() const { return capacity_les_; }

  /// Installs (or clears) the fault plan consulted on the configuration
  /// port (kConfigError). Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Counts one configuration attempt against the fault plan; true when
  /// the programming fails (CRC error on the configuration stream).
  /// Configure calls this internally; vcopd's partial-reconfiguration
  /// path (which prices but never calls Configure) calls it directly.
  bool InjectConfigError();

 private:
  u32 capacity_les_;
  u64 config_bytes_per_second_;
  Bitstream bitstream_{};
  std::unique_ptr<Coprocessor> coprocessor_;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace vcop::hw
