// FPGA fabric (PLD) model: configuration bit-streams and the
// reconfigurable resource itself.
//
// FPGA_LOAD "loads a coprocessor definition in the reconfigurable
// hardware and ensures the exclusive use of the resource. The argument
// of the call is a pointer to the configuration bit-stream." (§3.1)
// Here a Bitstream bundles what a real bit-stream determines implicitly:
// the synthesised core (as a C++ cycle-level model factory), its
// resource usage, and the clock frequencies the design closed timing at
// (the paper runs adpcmdecode at 40 MHz and IDEA at 6 MHz with a 24 MHz
// memory subsystem).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/fault.h"
#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/coprocessor.h"

namespace vcop::hw {

struct Bitstream {
  std::string name;
  /// Configuration stream size; determines load time.
  u32 size_bytes = 0;
  /// PLD logic elements the design occupies.
  u32 logic_elements = 0;
  /// Clock the coprocessor core runs at.
  Frequency cp_clock;
  /// Clock the IMU / memory subsystem runs at (may differ: IDEA's core
  /// runs at 6 MHz while its memory subsystem runs at 24 MHz, §4.1).
  Frequency imu_clock;
  /// Instantiates the synthesised core.
  std::function<std::unique_ptr<Coprocessor>()> create;
};

/// Configuration-cache counters (multi-slot partial reconfiguration).
struct ConfigSlotStats {
  u64 hits = 0;        // design already resident in some slot
  u64 misses = 0;      // full configuration-port transfer paid
  u64 evictions = 0;   // a resident design was displaced (LRU)
  Picoseconds activation_time = 0;  // total slot-activation time
  Picoseconds configure_time = 0;   // total full-configuration time
};

/// Outcome of a configuration-cache probe (AcquireDesign).
struct SlotAcquire {
  Picoseconds time = 0;      // what the probe cost on the config port
  bool reconfigured = false; // miss: a full configuration was paid
  bool activated = false;    // hit on a non-active slot was switched in
};

class FpgaFabric {
 public:
  /// `capacity_les`: PLD size in logic elements.
  /// `config_bytes_per_second`: configuration-port throughput.
  FpgaFabric(u32 capacity_les, u64 config_bytes_per_second);

  /// Bytes a slot activation moves over the configuration port: with a
  /// design already resident in a partial-reconfiguration region, only
  /// the region-select frame and interface mux state are rewritten, not
  /// the bit-stream. Priced like any other configuration-port transfer.
  static constexpr u32 kSlotActivationBytes = 256;

  /// Loads `bitstream`. Fails when a design is already loaded
  /// (exclusive use, §3.1) or when it does not fit the PLD.
  /// On success returns the configuration time.
  Result<Picoseconds> Configure(const Bitstream& bitstream);

  /// Validates `bitstream` against the PLD and prices its configuration
  /// time without loading anything. vcopd uses this to model partial
  /// reconfiguration: it instantiates per-job cores itself and only
  /// needs the fit check and the configuration-port transfer time.
  Result<Picoseconds> PriceConfigure(const Bitstream& bitstream) const;

  /// Unloads the current design, releasing the resource.
  void Release();

  bool loaded() const { return coprocessor_ != nullptr; }
  Coprocessor* coprocessor() { return coprocessor_.get(); }
  const Bitstream& current_bitstream() const;

  u32 capacity_les() const { return capacity_les_; }

  /// Installs (or clears) the fault plan consulted on the configuration
  /// port (kConfigError). Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Counts one configuration attempt against the fault plan; true when
  /// the programming fails (CRC error on the configuration stream).
  /// Configure calls this internally; vcopd's partial-reconfiguration
  /// path (which prices but never calls Configure) calls it directly.
  bool InjectConfigError();

  // ----- multi-slot configuration cache (partial reconfiguration) -----
  //
  // The PLD is split into `n` partial-reconfiguration regions, each able
  // to hold one configured design. AcquireDesign is a cache probe:
  //   * hit on the active slot — free (the design is already wired up);
  //   * hit on a dormant slot — a slot activation, priced as a
  //     kSlotActivationBytes configuration-port transfer;
  //   * miss — a full configuration into the LRU slot (evicting its
  //     resident design when occupied).
  // With one slot (the default) this degenerates to exactly the classic
  // switch-every-alternation model vcopd has always used.

  /// Resizes the configuration cache to `n` >= 1 slots, dropping any
  /// resident designs. Called once at platform construction.
  void SetConfigSlots(u32 n);
  u32 config_slots() const { return static_cast<u32>(slots_.size()); }

  /// Probes the cache for `bitstream` and makes it the active design,
  /// paying activation (hit) or full configuration (miss) as needed.
  /// Both paths consult the kConfigError fault site; a CRC fault fails
  /// the acquire cleanly (an activation fault additionally evicts the
  /// damaged slot — its configuration can no longer be trusted).
  Result<SlotAcquire> AcquireDesign(const Bitstream& bitstream);

  /// Whether `name` is configured in some slot (active or dormant).
  bool DesignResident(const std::string& name) const;

  /// Name of the active slot's design ("" when none yet).
  const std::string& active_design() const { return active_design_; }

  const ConfigSlotStats& slot_stats() const { return slot_stats_; }

 private:
  struct Slot {
    std::string design;  // "" = empty
    u64 last_used = 0;   // LRU tick
  };

  u32 capacity_les_;
  u64 config_bytes_per_second_;
  Bitstream bitstream_{};
  std::unique_ptr<Coprocessor> coprocessor_;
  FaultPlan* fault_plan_ = nullptr;

  std::vector<Slot> slots_{1};
  std::string active_design_;
  u64 slot_tick_ = 0;
  ConfigSlotStats slot_stats_;
};

}  // namespace vcop::hw
