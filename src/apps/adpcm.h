// IMA/DVI ADPCM codec — the paper's "common multimedia benchmark,
// adpcmdecode" (§4.1), from the MediaBench suite.
//
// ADPCM compresses 16-bit PCM audio to 4-bit codes; *decoding* therefore
// "produces 4 times the input data size" (§4.1) — the property that
// makes it a good interface-virtualisation stressor: a 2 KB input emits
// 8 KB of output, so input + output fit the 16 KB dual-port RAM only for
// the smallest size, and page faults appear from 4 KB inputs onward.
//
// This is the bit-exact reference implementation; the coprocessor FSM in
// src/cp/adpcm_cp.* must produce identical output.
#pragma once

#include <span>

#include "base/types.h"

namespace vcop::apps {

/// Predictor state carried across sample blocks.
struct AdpcmState {
  i16 valprev = 0;  // previous predicted output value
  u8 index = 0;     // index into the step-size table (0..88)
};

/// Encodes `pcm.size()` 16-bit samples into 4-bit codes, two per output
/// byte (low nibble first, as in the MediaBench coder).
/// `out.size()` must be pcm.size()/2; pcm.size() must be even.
void AdpcmEncode(std::span<const i16> pcm, std::span<u8> out,
                 AdpcmState& state);

/// Decodes 4-bit codes (two per input byte, low nibble first) into
/// 16-bit samples. `out.size()` must be 2*in.size().
void AdpcmDecode(std::span<const u8> in, std::span<i16> out,
                 AdpcmState& state);

/// Single-sample decode step, exposed so the coprocessor FSM and the
/// reference share one transition function: consumes `code` (4 bits),
/// updates `state`, returns the reconstructed sample.
i16 AdpcmDecodeSample(u8 code, AdpcmState& state);

/// Single-sample encode step (mirror of AdpcmDecodeSample).
u8 AdpcmEncodeSample(i16 sample, AdpcmState& state);

}  // namespace vcop::apps
