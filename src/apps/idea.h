// IDEA block cipher (Lai–Massey, 1991) — the paper's "complex
// cryptographic algorithm" (§4.1).
//
// IDEA encrypts 64-bit blocks under a 128-bit key with 8 full rounds
// plus an output half-round, built from three 16-bit group operations:
// XOR, addition mod 2^16, and multiplication mod 2^16+1 (with 0
// representing 2^16). The multiplication makes it expensive in software
// on a multiplier-weak ARM — hence the paper's 11–18x coprocessor
// speedups — while mapping well to hardware.
//
// This is the bit-exact reference; the coprocessor FSM in
// src/cp/idea_cp.* must match it. (IDEA's patents expired in 2011/2012;
// the algorithm is public domain today.)
#pragma once

#include <array>
#include <span>

#include "base/types.h"

namespace vcop::apps {

inline constexpr usize kIdeaBlockBytes = 8;
inline constexpr usize kIdeaKeyBytes = 16;
inline constexpr usize kIdeaRounds = 8;
inline constexpr usize kIdeaSubkeys = 6 * kIdeaRounds + 4;  // 52

using IdeaKey = std::array<u8, kIdeaKeyBytes>;
using IdeaSubkeys = std::array<u16, kIdeaSubkeys>;

/// Multiplication in GF(2^16+1) with 0 ≡ 2^16 (the "mul" operation).
u16 IdeaMul(u16 a, u16 b);

/// Multiplicative inverse in GF(2^16+1); IdeaMul(x, IdeaMulInv(x)) == 1
/// for all x (0 is its own inverse under the 0 ≡ 2^16 convention).
u16 IdeaMulInv(u16 x);

/// Expands a 128-bit key into the 52 encryption subkeys.
IdeaSubkeys IdeaExpandKey(const IdeaKey& key);

/// Derives the decryption subkeys from the encryption subkeys.
IdeaSubkeys IdeaInvertKey(const IdeaSubkeys& ek);

/// Transforms one 64-bit block in place under `subkeys` (use the
/// encryption subkeys to encrypt, the inverted ones to decrypt).
void IdeaCryptBlock(const IdeaSubkeys& subkeys, std::span<u8, kIdeaBlockBytes> block);

/// ECB over a whole buffer; sizes must be equal multiples of 8.
void IdeaCryptEcb(const IdeaSubkeys& subkeys, std::span<const u8> in,
                  std::span<u8> out);

/// A 64-bit initialisation vector for the chained modes.
using IdeaIv = std::array<u8, kIdeaBlockBytes>;

/// CBC encryption: C_i = E(P_i ^ C_{i-1}), C_0 chained from `iv`.
/// Unlike ECB, equal plaintext blocks encrypt differently.
void IdeaCbcEncrypt(const IdeaSubkeys& ek, const IdeaIv& iv,
                    std::span<const u8> in, std::span<u8> out);

/// CBC decryption with the *inverted* key schedule:
/// P_i = D(C_i) ^ C_{i-1}.
void IdeaCbcDecrypt(const IdeaSubkeys& dk, const IdeaIv& iv,
                    std::span<const u8> in, std::span<u8> out);

}  // namespace vcop::apps
