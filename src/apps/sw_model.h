// ARM software-execution timing model for the pure-software baselines.
//
// We do not have the paper's 133 MHz ARM922T; software execution *time*
// is therefore modelled as (calibrated cycles per work unit) x (units),
// while the computation itself runs bit-exactly on the host. The two
// calibration constants are derived from the paper's own reported
// numbers and each derivation is documented below; everything downstream
// (speedups, crossovers) is emergent, not fitted.
#pragma once

#include <span>

#include "apps/adpcm.h"
#include "apps/idea.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::apps {

struct ArmTimingModel {
  /// The EPXA1 ARM-stripe clock (§4: "an ARM processor running at
  /// 133 MHz").
  Frequency cpu_clock = Frequency::MHz(133);

  /// ADPCM decode cost. Derivation: Figure 8 reports ~18 ms for the
  /// pure-software decode of an 8 KB input; 8 KB = 16384 samples, so
  /// 18 ms * 133 MHz / 16384 = 146 cycles/sample. (Plausible for the
  /// table-driven decoder with uncached SDRAM on an ARM9.)
  u32 cycles_per_adpcm_sample = 146;

  /// IDEA encryption cost. Derivation: Figure 9 reports 26/53/105/211 ms
  /// for 4/8/16/32 KB; 4 KB = 512 blocks, so 26 ms * 133 MHz / 512 =
  /// 6754 cycles/block — consistent with 34 mul-mod-65537 operations
  /// per block on a core with a multi-cycle multiplier.
  u32 cycles_per_idea_block = 6754;

  /// Call/setup overhead per invocation (argument marshalling, state
  /// setup). Second-order; kept small and identical for both kernels.
  u32 call_overhead_cycles = 300;

  /// Time to decode `input_bytes` of ADPCM (2 samples per byte).
  Picoseconds AdpcmDecodeTime(usize input_bytes) const;

  /// Time to encrypt/decrypt `bytes` of IDEA ECB (8 bytes per block).
  Picoseconds IdeaEcbTime(usize bytes) const;
};

/// Result of running a software baseline: the modelled wall time (the
/// output data lands in the caller's buffer).
struct SwRunResult {
  Picoseconds time = 0;
};

/// Runs the reference ADPCM decoder and prices it with `model`.
SwRunResult RunSoftwareAdpcmDecode(const ArmTimingModel& model,
                                   std::span<const u8> in,
                                   std::span<i16> out);

/// Runs the reference IDEA ECB transform and prices it with `model`.
SwRunResult RunSoftwareIdea(const ArmTimingModel& model,
                            const IdeaSubkeys& subkeys,
                            std::span<const u8> in, std::span<u8> out);

}  // namespace vcop::apps
