#include "apps/sw_model.h"

#include "base/status.h"

namespace vcop::apps {

Picoseconds ArmTimingModel::AdpcmDecodeTime(usize input_bytes) const {
  const u64 samples = static_cast<u64>(input_bytes) * 2;
  return cpu_clock.Duration(samples * cycles_per_adpcm_sample +
                            call_overhead_cycles);
}

Picoseconds ArmTimingModel::IdeaEcbTime(usize bytes) const {
  const u64 blocks = static_cast<u64>(bytes) / kIdeaBlockBytes;
  return cpu_clock.Duration(blocks * cycles_per_idea_block +
                            call_overhead_cycles);
}

SwRunResult RunSoftwareAdpcmDecode(const ArmTimingModel& model,
                                   std::span<const u8> in,
                                   std::span<i16> out) {
  AdpcmState state;
  AdpcmDecode(in, out, state);
  return SwRunResult{model.AdpcmDecodeTime(in.size())};
}

SwRunResult RunSoftwareIdea(const ArmTimingModel& model,
                            const IdeaSubkeys& subkeys,
                            std::span<const u8> in, std::span<u8> out) {
  IdeaCryptEcb(subkeys, in, out);
  return SwRunResult{model.IdeaEcbTime(in.size())};
}

}  // namespace vcop::apps
