#include "apps/idea.h"

#include "base/status.h"

namespace vcop::apps {

u16 IdeaMul(u16 a, u16 b) {
  // Multiplication mod 2^16+1 with 0 representing 2^16 (a group of
  // order 2^16 on {1..2^16}). Low-high decomposition avoids a 32-bit
  // modulo: for p = a*b != 0, p mod (2^16+1) = lo - hi (+2^16+1 if
  // lo < hi).
  if (a == 0) return static_cast<u16>(0x10001u - b);  // 2^16 * b
  if (b == 0) return static_cast<u16>(0x10001u - a);
  const u32 p = static_cast<u32>(a) * b;
  const u16 lo = static_cast<u16>(p);
  const u16 hi = static_cast<u16>(p >> 16);
  return static_cast<u16>(lo - hi + (lo < hi ? 1 : 0));
}

u16 IdeaMulInv(u16 x) {
  // Extended Euclid in Z_{2^16+1}; 0 (≡ 2^16) is its own inverse, as is 1.
  if (x <= 1) return x;
  u32 t1 = 0x10001u / x;
  u32 y = 0x10001u % x;
  if (y == 1) {
    return static_cast<u16>((1 - t1) & 0xFFFF);
  }
  u32 t0 = 1;
  u32 q;
  do {
    q = x / y;
    x = static_cast<u16>(x % y);
    t0 += q * t1;
    if (x == 1) return static_cast<u16>(t0);
    q = y / x;
    y = y % x;
    t1 += q * t0;
  } while (y != 1);
  return static_cast<u16>((1 - t1) & 0xFFFF);
}

IdeaSubkeys IdeaExpandKey(const IdeaKey& key) {
  IdeaSubkeys ek{};
  // First 8 subkeys are the key itself, big-endian 16-bit words.
  for (usize i = 0; i < 8; ++i) {
    ek[i] = static_cast<u16>((key[2 * i] << 8) | key[2 * i + 1]);
  }
  // Each further batch of 8 comes from rotating the 128-bit key left by
  // 25 bits, expressed here on the u16 array.
  for (usize i = 8; i < kIdeaSubkeys; ++i) {
    const usize batch = (i / 8) * 8;
    const usize j = i % 8;
    const u16 a = ek[batch - 8 + ((j + 1) & 7)];
    const u16 b = ek[batch - 8 + ((j + 2) & 7)];
    ek[i] = static_cast<u16>((a << 9) | (b >> 7));
  }
  return ek;
}

IdeaSubkeys IdeaInvertKey(const IdeaSubkeys& ek) {
  IdeaSubkeys dk{};
  // Decryption round r undoes encryption round (8-r): its transform
  // keys are the inverses of that round's input keys (of the output
  // half-round for r = 0), with the two addition keys swapped except at
  // the boundaries because of the x2/x3 crossing; its MA keys are taken
  // unchanged from encryption round (7-r).
  for (usize r = 0; r < kIdeaRounds; ++r) {
    const usize d = 6 * r;
    const usize e = 6 * (kIdeaRounds - r);  // 48 for r==0: output keys
    const bool swap = r != 0;
    dk[d + 0] = IdeaMulInv(ek[e + 0]);
    dk[d + 1] = static_cast<u16>(-(swap ? ek[e + 2] : ek[e + 1]));
    dk[d + 2] = static_cast<u16>(-(swap ? ek[e + 1] : ek[e + 2]));
    dk[d + 3] = IdeaMulInv(ek[e + 3]);
    dk[d + 4] = ek[6 * (kIdeaRounds - 1 - r) + 4];
    dk[d + 5] = ek[6 * (kIdeaRounds - 1 - r) + 5];
  }
  // Decryption output transform = inverse of encryption round-0 input.
  const usize d = 6 * kIdeaRounds;
  dk[d + 0] = IdeaMulInv(ek[0]);
  dk[d + 1] = static_cast<u16>(-ek[1]);
  dk[d + 2] = static_cast<u16>(-ek[2]);
  dk[d + 3] = IdeaMulInv(ek[3]);
  return dk;
}

namespace {

u16 Load16(const u8* p) { return static_cast<u16>((p[0] << 8) | p[1]); }

void Store16(u8* p, u16 v) {
  p[0] = static_cast<u8>(v >> 8);
  p[1] = static_cast<u8>(v);
}

}  // namespace

void IdeaCryptBlock(const IdeaSubkeys& k,
                    std::span<u8, kIdeaBlockBytes> block) {
  u16 x1 = Load16(&block[0]);
  u16 x2 = Load16(&block[2]);
  u16 x3 = Load16(&block[4]);
  u16 x4 = Load16(&block[6]);

  usize i = 0;
  for (usize round = 0; round < kIdeaRounds; ++round) {
    x1 = IdeaMul(x1, k[i + 0]);
    x2 = static_cast<u16>(x2 + k[i + 1]);
    x3 = static_cast<u16>(x3 + k[i + 2]);
    x4 = IdeaMul(x4, k[i + 3]);

    const u16 t0 = IdeaMul(static_cast<u16>(x1 ^ x3), k[i + 4]);
    const u16 t1 = IdeaMul(static_cast<u16>((x2 ^ x4) + t0), k[i + 5]);
    const u16 t2 = static_cast<u16>(t0 + t1);

    x1 ^= t1;
    x4 ^= t2;
    const u16 x2_old = x2;
    x2 = static_cast<u16>(x3 ^ t1);
    x3 = static_cast<u16>(x2_old ^ t2);
    i += 6;
  }

  // Output transform (note x2/x3 cross back).
  const u16 y1 = IdeaMul(x1, k[i + 0]);
  const u16 y2 = static_cast<u16>(x3 + k[i + 1]);
  const u16 y3 = static_cast<u16>(x2 + k[i + 2]);
  const u16 y4 = IdeaMul(x4, k[i + 3]);

  Store16(&block[0], y1);
  Store16(&block[2], y2);
  Store16(&block[4], y3);
  Store16(&block[6], y4);
}

void IdeaCbcEncrypt(const IdeaSubkeys& ek, const IdeaIv& iv,
                    std::span<const u8> in, std::span<u8> out) {
  VCOP_CHECK_MSG(in.size() == out.size(), "CBC in/out sizes must match");
  VCOP_CHECK_MSG(in.size() % kIdeaBlockBytes == 0,
                 "CBC length must be a multiple of the block size");
  IdeaIv chain = iv;
  for (usize off = 0; off < in.size(); off += kIdeaBlockBytes) {
    u8 block[kIdeaBlockBytes];
    for (usize b = 0; b < kIdeaBlockBytes; ++b) {
      block[b] = static_cast<u8>(in[off + b] ^ chain[b]);
    }
    IdeaCryptBlock(ek, std::span<u8, kIdeaBlockBytes>(block));
    for (usize b = 0; b < kIdeaBlockBytes; ++b) {
      out[off + b] = block[b];
      chain[b] = block[b];
    }
  }
}

void IdeaCbcDecrypt(const IdeaSubkeys& dk, const IdeaIv& iv,
                    std::span<const u8> in, std::span<u8> out) {
  VCOP_CHECK_MSG(in.size() == out.size(), "CBC in/out sizes must match");
  VCOP_CHECK_MSG(in.size() % kIdeaBlockBytes == 0,
                 "CBC length must be a multiple of the block size");
  IdeaIv chain = iv;
  for (usize off = 0; off < in.size(); off += kIdeaBlockBytes) {
    u8 block[kIdeaBlockBytes];
    IdeaIv cipher;
    for (usize b = 0; b < kIdeaBlockBytes; ++b) {
      block[b] = in[off + b];
      cipher[b] = in[off + b];
    }
    IdeaCryptBlock(dk, std::span<u8, kIdeaBlockBytes>(block));
    for (usize b = 0; b < kIdeaBlockBytes; ++b) {
      out[off + b] = static_cast<u8>(block[b] ^ chain[b]);
      chain[b] = cipher[b];
    }
  }
}

void IdeaCryptEcb(const IdeaSubkeys& subkeys, std::span<const u8> in,
                  std::span<u8> out) {
  VCOP_CHECK_MSG(in.size() == out.size(), "ECB in/out sizes must match");
  VCOP_CHECK_MSG(in.size() % kIdeaBlockBytes == 0,
                 "ECB length must be a multiple of the block size");
  for (usize off = 0; off < in.size(); off += kIdeaBlockBytes) {
    u8 block[kIdeaBlockBytes];
    for (usize b = 0; b < kIdeaBlockBytes; ++b) block[b] = in[off + b];
    IdeaCryptBlock(subkeys, std::span<u8, kIdeaBlockBytes>(block));
    for (usize b = 0; b < kIdeaBlockBytes; ++b) out[off + b] = block[b];
  }
}

}  // namespace vcop::apps
