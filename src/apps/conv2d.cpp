#include "apps/conv2d.h"

#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace vcop::apps {

Conv3x3Kernel BoxBlurKernel() {
  return Conv3x3Kernel{1, 1, 1, 1, 1, 1, 1, 1, 1};  // use shift 3 (~/9)
}

Conv3x3Kernel SharpenKernel() {
  return Conv3x3Kernel{0, -1, 0, -1, 5, -1, 0, -1, 0};  // shift 0
}

Conv3x3Kernel SobelXKernel() {
  return Conv3x3Kernel{-1, 0, 1, -2, 0, 2, -1, 0, 1};  // shift 0
}

Conv3x3Kernel EmbossKernel() {
  return Conv3x3Kernel{-2, -1, 0, -1, 1, 1, 0, 1, 2};  // shift 0
}

void Convolve3x3(std::span<const u8> src, u32 width, u32 height,
                 const Conv3x3Kernel& kernel, u32 shift,
                 std::span<u8> dst) {
  VCOP_CHECK_MSG(width >= 3 && height >= 3, "image must be at least 3x3");
  VCOP_CHECK_MSG(src.size() == static_cast<usize>(width) * height,
                 "source size mismatch");
  VCOP_CHECK_MSG(dst.size() == src.size(), "destination size mismatch");

  // Border: copy-through.
  for (u32 x = 0; x < width; ++x) {
    dst[x] = src[x];
    dst[static_cast<usize>(height - 1) * width + x] =
        src[static_cast<usize>(height - 1) * width + x];
  }
  for (u32 y = 0; y < height; ++y) {
    dst[static_cast<usize>(y) * width] = src[static_cast<usize>(y) * width];
    dst[static_cast<usize>(y) * width + width - 1] =
        src[static_cast<usize>(y) * width + width - 1];
  }

  for (u32 y = 1; y + 1 < height; ++y) {
    for (u32 x = 1; x + 1 < width; ++x) {
      i64 acc = 0;
      for (u32 ky = 0; ky < 3; ++ky) {
        for (u32 kx = 0; kx < 3; ++kx) {
          const usize idx =
              static_cast<usize>(y + ky - 1) * width + (x + kx - 1);
          acc += static_cast<i64>(kernel[ky * 3 + kx]) * src[idx];
        }
      }
      acc >>= shift;
      if (acc < 0) acc = 0;
      if (acc > 255) acc = 255;
      dst[static_cast<usize>(y) * width + x] = static_cast<u8>(acc);
    }
  }
}

std::vector<u8> MakeTestImage(u32 width, u32 height, u64 seed) {
  Rng rng(seed);
  std::vector<u8> image(static_cast<usize>(width) * height);
  // Diagonal gradient background.
  for (u32 y = 0; y < height; ++y) {
    for (u32 x = 0; x < width; ++x) {
      image[static_cast<usize>(y) * width + x] =
          static_cast<u8>((x * 2 + y * 3) & 0xFF);
    }
  }
  // A few bright rectangles (skipped on images too small to hold one).
  if (width < 8 || height < 8) return image;
  for (int blob = 0; blob < 5; ++blob) {
    const u32 bw = 2 + static_cast<u32>(rng.NextBelow(width / 4));
    const u32 bh = 2 + static_cast<u32>(rng.NextBelow(height / 4));
    const u32 bx = static_cast<u32>(rng.NextBelow(width - bw));
    const u32 by = static_cast<u32>(rng.NextBelow(height - bh));
    const u8 level = static_cast<u8>(128 + rng.NextBelow(128));
    for (u32 y = by; y < by + bh; ++y) {
      for (u32 x = bx; x < bx + bw; ++x) {
        image[static_cast<usize>(y) * width + x] = level;
      }
    }
  }
  return image;
}

}  // namespace vcop::apps
