// Workload generators for the experiments.
//
// The paper drives both benchmarks "by simply changing the input data
// size" (§4.1). These helpers produce deterministic inputs of any size:
// audio-like PCM for the ADPCM pipeline and pseudo-random payloads for
// IDEA, both seeded so that every run of a bench binary sees identical
// data.
#pragma once

#include <vector>

#include "apps/idea.h"
#include "base/rng.h"
#include "base/types.h"

namespace vcop::apps {

/// `num_samples` of synthetic audio: a sum of two sine-ish waves plus
/// low-level noise, spanning most of the 16-bit range. Deterministic in
/// `seed`.
std::vector<i16> MakeAudioPcm(usize num_samples, u64 seed);

/// An ADPCM-encoded stream of `num_bytes` bytes (2*num_bytes samples of
/// synthetic audio, encoded with a fresh predictor). This is the input
/// the adpcmdecode experiments feed to software and coprocessor alike.
std::vector<u8> MakeAdpcmStream(usize num_bytes, u64 seed);

/// `num_bytes` of uniform pseudo-random payload (IDEA plaintext).
std::vector<u8> MakeRandomBytes(usize num_bytes, u64 seed);

/// A fixed, documented 128-bit IDEA benchmark key derived from `seed`.
IdeaKey MakeIdeaKey(u64 seed);

}  // namespace vcop::apps
