#include "apps/adpcm.h"

#include "base/status.h"

namespace vcop::apps {
namespace {

// Standard IMA ADPCM tables (Intel/DVI).
constexpr i8 kIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8,
};

constexpr i16 kStepSizeTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

i32 ClampIndex(i32 index) {
  if (index < 0) return 0;
  if (index > 88) return 88;
  return index;
}

i32 ClampSample(i32 v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return v;
}

}  // namespace

i16 AdpcmDecodeSample(u8 code, AdpcmState& state) {
  const i32 step = kStepSizeTable[state.index];

  // Reconstruct the difference: step*code/4 + step/8, computed with
  // shifts exactly as the reference coder does.
  i32 diff = step >> 3;
  if (code & 4) diff += step;
  if (code & 2) diff += step >> 1;
  if (code & 1) diff += step >> 2;
  if (code & 8) diff = -diff;

  const i32 valprev = ClampSample(state.valprev + diff);
  state.valprev = static_cast<i16>(valprev);
  state.index = static_cast<u8>(ClampIndex(state.index + kIndexTable[code]));
  return state.valprev;
}

u8 AdpcmEncodeSample(i16 sample, AdpcmState& state) {
  const i32 step = kStepSizeTable[state.index];
  i32 diff = sample - state.valprev;
  u8 code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }

  // Quantise |diff| to 3 bits against the current step size.
  i32 tempstep = step;
  if (diff >= tempstep) {
    code |= 4;
    diff -= tempstep;
  }
  tempstep >>= 1;
  if (diff >= tempstep) {
    code |= 2;
    diff -= tempstep;
  }
  tempstep >>= 1;
  if (diff >= tempstep) {
    code |= 1;
  }

  // Update the predictor through the shared decode step so encoder and
  // decoder stay in lock-step.
  AdpcmDecodeSample(code, state);
  return code;
}

void AdpcmEncode(std::span<const i16> pcm, std::span<u8> out,
                 AdpcmState& state) {
  VCOP_CHECK_MSG(pcm.size() % 2 == 0, "ADPCM encodes samples in pairs");
  VCOP_CHECK_MSG(out.size() == pcm.size() / 2,
                 "ADPCM output must be half the sample count in bytes");
  for (usize i = 0; i < pcm.size(); i += 2) {
    const u8 lo = AdpcmEncodeSample(pcm[i], state);
    const u8 hi = AdpcmEncodeSample(pcm[i + 1], state);
    out[i / 2] = static_cast<u8>(lo | (hi << 4));
  }
}

void AdpcmDecode(std::span<const u8> in, std::span<i16> out,
                 AdpcmState& state) {
  VCOP_CHECK_MSG(out.size() == in.size() * 2,
                 "ADPCM decode emits two samples per input byte");
  for (usize i = 0; i < in.size(); ++i) {
    out[2 * i] = AdpcmDecodeSample(in[i] & 0x0F, state);
    out[2 * i + 1] = AdpcmDecodeSample(in[i] >> 4, state);
  }
}

}  // namespace vcop::apps
