// 3x3 image convolution — a third application domain for the library
// (not from the paper's evaluation), chosen for its *strided* access
// pattern: the coprocessor walks three image rows simultaneously, so
// the interface working set is rows-not-bytes and the paging behaviour
// changes qualitatively with image width (a wide image's three-row
// window can exceed the whole dual-port RAM).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "base/types.h"

namespace vcop::apps {

/// 3x3 signed integer kernel, row-major.
using Conv3x3Kernel = std::array<i32, 9>;

/// Classic kernels for the examples/tests.
Conv3x3Kernel BoxBlurKernel();    // all ones, shift 3 recommended? (sum 9)
Conv3x3Kernel SharpenKernel();    // center 5, cross -1 — wait, see .cpp
Conv3x3Kernel SobelXKernel();     // horizontal gradient
Conv3x3Kernel EmbossKernel();

/// Convolves `src` (width x height, row-major u8) with `kernel`,
/// right-shifts by `shift`, clamps to 0..255. Border pixels (the
/// one-pixel frame) are copied through unchanged. dst.size() ==
/// src.size() == width*height; width, height >= 3.
void Convolve3x3(std::span<const u8> src, u32 width, u32 height,
                 const Conv3x3Kernel& kernel, u32 shift,
                 std::span<u8> dst);

/// Deterministic synthetic test image (gradients + blobs).
std::vector<u8> MakeTestImage(u32 width, u32 height, u64 seed);

}  // namespace vcop::apps
