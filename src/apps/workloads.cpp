#include "apps/workloads.h"

#include <cmath>

#include "apps/adpcm.h"
#include "base/status.h"

namespace vcop::apps {

std::vector<i16> MakeAudioPcm(usize num_samples, u64 seed) {
  Rng rng(seed);
  std::vector<i16> pcm(num_samples);
  const double f1 = 2.0 * M_PI / 97.0;   // ~455 Hz at 44.1 kHz
  const double f2 = 2.0 * M_PI / 31.0;   // a brighter partial
  for (usize i = 0; i < num_samples; ++i) {
    const double t = static_cast<double>(i);
    const double wave = 9000.0 * std::sin(f1 * t) + 4000.0 * std::sin(f2 * t);
    const double noise = (rng.NextDouble() - 0.5) * 600.0;
    double v = wave + noise;
    if (v > 32767.0) v = 32767.0;
    if (v < -32768.0) v = -32768.0;
    pcm[i] = static_cast<i16>(v);
  }
  return pcm;
}

std::vector<u8> MakeAdpcmStream(usize num_bytes, u64 seed) {
  const std::vector<i16> pcm = MakeAudioPcm(num_bytes * 2, seed);
  std::vector<u8> stream(num_bytes);
  AdpcmState state;
  AdpcmEncode(pcm, stream, state);
  return stream;
}

std::vector<u8> MakeRandomBytes(usize num_bytes, u64 seed) {
  Rng rng(seed);
  std::vector<u8> bytes(num_bytes);
  for (u8& b : bytes) b = static_cast<u8>(rng.NextBelow(256));
  return bytes;
}

IdeaKey MakeIdeaKey(u64 seed) {
  Rng rng(seed ^ 0x1DEA1DEA1DEA1DEAULL);
  IdeaKey key{};
  for (u8& b : key) b = static_cast<u8>(rng.NextBelow(256));
  return key;
}

}  // namespace vcop::apps
