// The "typical coprocessor" baseline: no OS, no virtualisation.
//
// This is the middle version of the paper's Figure 3 and the "normal
// coprocessor" bars of Figure 9: the *application* stages data into the
// dual-port RAM at fixed physical offsets it must compute itself, runs
// the core against a platform-specific direct port (one-cycle DP-RAM
// access, no translation), and copies results back. It is faster than
// the VIM when everything fits — and it simply fails with
// "exceeds available memory" when the dataset does not (the paper's
// 16 KB and 32 KB IDEA columns), unless the programmer writes the
// chunking loop by hand.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "base/status.h"
#include "base/units.h"
#include "hw/cp_port.h"
#include "hw/fabric.h"
#include "mem/dp_ram.h"
#include "os/calibration.h"
#include "sim/simulator.h"

namespace vcop::runtime {

/// Platform-specific direct port: translates (object, index) through a
/// fixed, user-supplied base-offset table — the hard-coded address
/// arithmetic the paper's virtualisation removes. Single-cycle DP-RAM
/// access with back-to-back issue.
///
/// Besides the DP-RAM, the port exposes a small core *register file*
/// (processor-writable configuration registers): scalar parameters and
/// the key schedule of a hand-built coprocessor live there, not in the
/// data memory — which is how the paper's normal IDEA coprocessor can
/// process an 8 KB dataset on a 16 KB dual-port RAM (in + out fill it
/// completely).
class DirectPort final : public hw::CoprocessorPort {
 public:
  static constexpr u32 kRegisterFileBytes = 1024;

  DirectPort(sim::Simulator& sim, mem::DualPortRam& dp_ram);

  void BindCpDomain(sim::ClockDomain& cp_domain) { cp_domain_ = &cp_domain; }

  /// Fixes the physical base byte offset and element width of `object`
  /// in the dual-port RAM.
  void SetObject(hw::ObjectId object, u32 base_offset, u32 elem_width);

  /// Places `object` in the core register file instead (base offset
  /// within the register file).
  void SetRegisterObject(hw::ObjectId object, u32 base_offset,
                         u32 elem_width);

  /// Processor-side write into the register file.
  void WriteRegisterFile(u32 offset, std::span<const u8> data);

  void Start() { started_ = true; finished_ = false; }
  bool finished() const { return finished_; }

  // hw::CoprocessorPort:
  bool CanIssue() const override;
  void Issue(const hw::CpAccess& access) override;
  bool ResponseReady() const override;
  u32 ConsumeResponse() override;
  bool BackToBack() const override { return true; }
  void ReleaseParamPage() override {}  // nothing to release: fixed layout
  void SignalFinish() override;

 private:
  struct Mapping {
    bool valid = false;
    bool registers = false;  // lives in the register file, not DP-RAM
    u32 base = 0;
    u32 width = 4;
  };

  sim::Simulator& sim_;
  mem::DualPortRam& dp_ram_;
  sim::ClockDomain* cp_domain_ = nullptr;
  Mapping map_[hw::kMaxObjects];
  std::vector<u8> reg_file_ = std::vector<u8>(kRegisterFileBytes, 0);
  bool started_ = false;
  bool finished_ = false;
  bool outstanding_ = false;
  Picoseconds ready_at_ = 0;
  u32 rdata_ = 0;
};

/// One dataset of a manual run: copied in before the run (if `in` is
/// non-empty) and/or copied out after it (if `out` is non-empty).
struct ManualObject {
  hw::ObjectId id = 0;
  u32 elem_width = 4;
  u32 size_bytes = 0;
  /// Small read-only configuration data (key schedules, coefficient
  /// tables) staged into the core register file rather than the data
  /// memory. Register objects must fit DirectPort::kRegisterFileBytes
  /// together with the scalar parameters.
  bool in_registers = false;
  std::span<const u8> in{};  // data to stage before the run
  std::span<u8> out{};       // where to copy results after the run
};

struct ManualRunResult {
  Picoseconds total = 0;
  Picoseconds t_hw = 0;    // core + direct memory accesses
  Picoseconds t_copy = 0;  // user-code staging copies
  u64 cp_cycles = 0;
};

/// Runs one bit-stream over a fixed layout in a private simulation.
class ManualRunner {
 public:
  /// `dp_ram_bytes` is the interface memory the user must fit into.
  ManualRunner(const os::CostModel& costs, u32 dp_ram_bytes);

  /// Packs params + objects into the DP-RAM in declaration order.
  /// Fails with RESOURCE_EXHAUSTED ("exceeds available memory") when
  /// the layout does not fit — the Figure 9 crossed-out columns.
  Result<ManualRunResult> Run(const hw::Bitstream& bitstream,
                              std::span<const ManualObject> objects,
                              std::span<const u32> params);

 private:
  os::CostModel costs_;
  u32 dp_ram_bytes_;
};

}  // namespace vcop::runtime
