// The user-level programming interface — the C++ shape of Figure 6.
//
//   FpgaSystem sys(Epxa1Config());
//   auto a = sys.Allocate<u32>(n).value();       // int A[];
//   VCOP_CHECK(sys.Load(VecAddBitstream()).ok()); // FPGA_LOAD(ADD_bitstream)
//   sys.Map(0, a, Direction::kIn);               // FPGA_MAP_OBJECT(0, A, ..)
//   ...
//   auto report = sys.Execute({n});              // FPGA_EXECUTE(SIZE)
//
// "The semantics is similar to a function call with parameters passed
// by reference. There is no dependence on the available memory size."
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <initializer_list>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/status.h"
#include "hw/fabric.h"
#include "os/kernel.h"
#include "os/service.h"
#include "os/vcopd.h"

namespace vcop::runtime {

/// A typed handle to a buffer in the simulated process's user memory.
/// T must be trivially copyable (it crosses the software/hardware
/// boundary as raw bytes).
template <typename T>
class HostBuffer {
 public:
  HostBuffer() = default;
  HostBuffer(mem::UserMemory* memory, mem::UserAddr addr, u32 count)
      : memory_(memory), addr_(addr), count_(count) {}

  mem::UserAddr addr() const { return addr_; }
  u32 size() const { return count_; }             // element count
  u32 size_bytes() const { return count_ * static_cast<u32>(sizeof(T)); }
  bool valid() const { return memory_ != nullptr; }

  /// Host-side view of the buffer. Allocation is 16-byte aligned, so
  /// the reinterpret is well-aligned for any element type used here.
  std::span<T> view() {
    auto bytes = memory_->View(addr_, size_bytes());
    return std::span<T>(reinterpret_cast<T*>(bytes.data()), count_);
  }
  std::span<const T> view() const {
    auto bytes =
        static_cast<const mem::UserMemory*>(memory_)->View(addr_,
                                                           size_bytes());
    return std::span<const T>(reinterpret_cast<const T*>(bytes.data()),
                              count_);
  }

  /// Copies `data` into the buffer (data.size() must equal size()).
  void Fill(std::span<const T> data) {
    VCOP_CHECK_MSG(data.size() == count_, "Fill size mismatch");
    std::copy(data.begin(), data.end(), view().begin());
  }

  /// Copies the buffer out.
  std::vector<T> ToVector() const {
    auto v = view();
    return std::vector<T>(v.begin(), v.end());
  }

 private:
  mem::UserMemory* memory_ = nullptr;
  mem::UserAddr addr_ = 0;
  u32 count_ = 0;
};

/// Facade over the simulated kernel: allocation + the three syscalls.
class FpgaSystem {
 public:
  explicit FpgaSystem(const os::KernelConfig& config) : kernel_(config) {}

  /// Allocates `count` elements of T in the process address space.
  template <typename T>
  Result<HostBuffer<T>> Allocate(u32 count) {
    static_assert(std::is_trivially_copyable_v<T>);
    Result<mem::UserAddr> addr =
        kernel_.user_memory().Allocate(count * static_cast<u32>(sizeof(T)));
    if (!addr.ok()) return addr.status();
    return HostBuffer<T>(&kernel_.user_memory(), addr.value(), count);
  }

  /// FPGA_LOAD.
  Status Load(const hw::Bitstream& bitstream) {
    return kernel_.FpgaLoad(bitstream);
  }

  /// FPGA_MAP_OBJECT with the element width taken from the buffer type.
  template <typename T>
  Status Map(hw::ObjectId id, const HostBuffer<T>& buffer,
             os::Direction direction) {
    return kernel_.FpgaMapObject(id, buffer.addr(), buffer.size_bytes(),
                                 static_cast<u32>(sizeof(T)), direction);
  }

  Status Unmap(hw::ObjectId id) { return kernel_.FpgaUnmapObject(id); }

  /// Remaps `id` to a (possibly different) buffer: unmap + map.
  template <typename T>
  Status Remap(hw::ObjectId id, const HostBuffer<T>& buffer,
               os::Direction direction) {
    if (kernel_.vim().objects().Find(id) != nullptr) {
      VCOP_RETURN_IF_ERROR(Unmap(id));
    }
    return Map(id, buffer, direction);
  }

  /// FPGA_EXECUTE.
  Result<os::ExecutionReport> Execute(std::initializer_list<u32> params) {
    return kernel_.FpgaExecute(std::span<const u32>(params.begin(),
                                                    params.size()));
  }
  Result<os::ExecutionReport> Execute(std::span<const u32> params) {
    return kernel_.FpgaExecute(params);
  }

  Status Unload() { return kernel_.FpgaUnload(); }

  os::Kernel& kernel() { return kernel_; }
  const os::KernelConfig& config() const { return kernel_.config(); }

 private:
  os::Kernel kernel_;
};

/// Per-tenant facade over the vcopd service daemon — the asynchronous,
/// multi-tenant counterpart of FpgaSystem's blocking calls. Buffers
/// still live in the one simulated user memory; allocate them through
/// the FpgaSystem (or kernel) that owns the daemon's platform.
class VcopdClient {
 public:
  /// Direct-call mode: Submit goes straight into the daemon, exactly
  /// as before the ring transport existed (the compatibility shim —
  /// behaviour and outputs are untouched by the service layer).
  VcopdClient(os::Vcopd& daemon, os::TenantId tenant)
      : daemon_(&daemon), tenant_(tenant) {}

  /// Ring-backed mode: SubmitRinged publishes descriptors into the
  /// tenant's submission ring and rings the doorbell; completions come
  /// back through the completion ring (Await/Reap). The tenant must
  /// already be attached to `service`.
  VcopdClient(os::VcopService& service, os::TenantId tenant)
      : daemon_(&service.daemon()), service_(&service), tenant_(tenant) {}

  os::TenantId tenant() const { return tenant_; }
  bool ring_backed() const { return service_ != nullptr; }

  /// FPGA_MAP_OBJECT into this tenant's private object table.
  template <typename T>
  Status Map(hw::ObjectId id, const HostBuffer<T>& buffer,
             os::Direction direction) {
    return daemon_->MapObject(tenant_, id, buffer.addr(),
                              buffer.size_bytes(),
                              static_cast<u32>(sizeof(T)), direction);
  }

  /// Same with an explicit element width (cores that address a byte
  /// buffer as 32-bit elements, e.g. IDEA's in/out streams).
  template <typename T>
  Status Map(hw::ObjectId id, const HostBuffer<T>& buffer, u32 elem_width,
             os::Direction direction) {
    return daemon_->MapObject(tenant_, id, buffer.addr(),
                              buffer.size_bytes(), elem_width, direction);
  }

  Status Unmap(hw::ObjectId id) {
    return daemon_->UnmapObject(tenant_, id);
  }

  /// Asynchronous FPGA_EXECUTE: enqueue and return a ticket. The
  /// optional callback fires on the simulated timeline at completion.
  Result<os::Ticket> Submit(
      const hw::Bitstream& bitstream, std::span<const u32> params,
      std::function<void(const os::JobResult&)> on_complete = nullptr) {
    return daemon_->Submit(tenant_, bitstream, params,
                           std::move(on_complete));
  }
  Result<os::Ticket> Submit(
      const hw::Bitstream& bitstream, std::initializer_list<u32> params,
      std::function<void(const os::JobResult&)> on_complete = nullptr) {
    return Submit(bitstream,
                  std::span<const u32>(params.begin(), params.size()),
                  std::move(on_complete));
  }

  const os::JobResult* Poll(os::Ticket ticket) const {
    return daemon_->Poll(ticket);
  }
  Result<os::JobResult> Wait(os::Ticket ticket) {
    return daemon_->Wait(ticket);
  }

  // ----- ring-backed operations (require the service constructor) ----

  /// Ring-backed FPGA_EXECUTE: publishes one descriptor and kicks the
  /// doorbell. Returns the completion cookie. A full submission ring
  /// reports ResourceExhausted immediately — the edge backpressure
  /// signal; nothing blocks.
  Result<u64> SubmitRinged(const hw::Bitstream& bitstream,
                           std::span<const u32> params) {
    VCOP_CHECK_MSG(service_ != nullptr, "client is not ring-backed");
    if (params.size() > os::kRingMaxParams) {
      return InvalidArgumentError(
          "too many scalar parameters for a ring descriptor");
    }
    os::RingDescriptor descriptor;
    descriptor.cookie = next_cookie_++;
    descriptor.design = service_->RegisterDesign(bitstream);
    descriptor.nparams = static_cast<u32>(params.size());
    std::copy(params.begin(), params.end(), descriptor.params.begin());
    VCOP_RETURN_IF_ERROR(service_->Publish(tenant_, descriptor));
    VCOP_RETURN_IF_ERROR(service_->Kick(tenant_));
    return descriptor.cookie;
  }
  Result<u64> SubmitRinged(const hw::Bitstream& bitstream,
                           std::initializer_list<u32> params) {
    return SubmitRinged(bitstream,
                        std::span<const u32>(params.begin(), params.size()));
  }

  /// Drives the service until `cookie`'s completion arrives, reaping
  /// (and stashing) other completions along the way.
  Result<os::CompletionDescriptor> Await(u64 cookie) {
    VCOP_CHECK_MSG(service_ != nullptr, "client is not ring-backed");
    for (int pass = 0; pass < 2; ++pass) {
      while (service_->HasCompletions(tenant_)) {
        Result<os::CompletionDescriptor> reaped = service_->Reap(tenant_);
        if (!reaped.ok()) return reaped.status();
        reaped_.push_back(reaped.value());
      }
      for (auto it = reaped_.begin(); it != reaped_.end(); ++it) {
        if (it->cookie == cookie) {
          const os::CompletionDescriptor found = *it;
          reaped_.erase(it);
          return found;
        }
      }
      if (pass == 0) VCOP_RETURN_IF_ERROR(service_->RunUntilQuiescent());
    }
    return NotFoundError("no completion for this cookie");
  }

 private:
  os::Vcopd* daemon_;
  os::VcopService* service_ = nullptr;
  os::TenantId tenant_;
  u64 next_cookie_ = 1;
  /// Completions reaped while awaiting a different cookie.
  std::deque<os::CompletionDescriptor> reaped_;
};

}  // namespace vcop::runtime
