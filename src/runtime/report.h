// Formatting helpers for execution reports — the bench binaries print
// tables in the same decomposition as the paper's Figures 8 and 9.
#pragma once

#include <string>

#include "base/table.h"
#include "os/kernel.h"
#include "runtime/manual_runtime.h"

namespace vcop::runtime {

/// "3.42" (milliseconds, two decimals).
std::string Ms(Picoseconds t);

/// "1.6x" speedup of `baseline` over `t`.
std::string Speedup(Picoseconds baseline, Picoseconds t);

/// One-line summary: total with HW/DP/IMU/invoke split and fault counts.
std::string Describe(const os::ExecutionReport& report);

/// Multi-line human-readable block used by the examples.
std::string DescribeDetailed(const os::ExecutionReport& report);

/// One-line summary of a manual (non-VIM) run.
std::string Describe(const ManualRunResult& result);

}  // namespace vcop::runtime
