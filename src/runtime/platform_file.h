// Textual platform descriptions.
//
// The paper's porting story is "recompile the kernel module for the new
// board" (§4). For a library, the equivalent is a board file: a small
// `key = value` document describing the platform, parsed into a
// KernelConfig at runtime, so adding a board needs no recompilation at
// all.
//
//     name         = MYBOARD
//     dp_ram_kb    = 64
//     page_kb      = 2
//     tlb_entries  = 16
//     cpu_mhz      = 200
//     imu_latency  = 4
//     pipelined    = false
//     posted_writes= false
//     bounds_check = false
//     pld_les      = 16640
//     policy       = lru          ; fifo | lru | random
//     copy_mode    = single       ; double | single | dma
//     prefetch     = sequential   ; none | sequential
//     prefetch_depth = 2
//     overlap      = true
//
// Unknown keys and malformed values are errors (a silently ignored
// typo in a board file is a debugging session).
#pragma once

#include <string_view>

#include "base/status.h"
#include "os/kernel.h"

namespace vcop::runtime {

/// Parses a board file into a KernelConfig, starting from the EPXA1
/// defaults (every key is optional).
Result<os::KernelConfig> ParsePlatformFile(std::string_view text);

/// Renders `config` as a board file (round-trips through the parser).
std::string WritePlatformFile(const os::KernelConfig& config);

}  // namespace vcop::runtime
